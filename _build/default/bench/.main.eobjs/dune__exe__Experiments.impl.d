bench/experiments.ml: Arith Compare Constraints Ctables Datalog Float Format Incomplete List Logic Option Printf Probdb Random Relational Sys Zeroone
