bench/main.mli:
