(* The per-theorem experiments E1-E20 (see DESIGN.md and EXPERIMENTS.md).

   The paper is pure theory — no measured tables — so each experiment
   regenerates the empirical content of a theorem, proposition, or
   worked example: exact values where the paper states them, convergence
   series for the limit objects, and complexity-scaling curves where the
   paper proves hardness/tractability boundaries. *)

module RInstance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Schema = Relational.Schema
module Query = Logic.Query
module F = Logic.Formula
module Parser = Logic.Parser
module Ucq = Logic.Ucq
module Naive = Incomplete.Naive
module Support = Incomplete.Support
module Certain = Incomplete.Certain
module Dependency = Constraints.Dependency
module Chase = Constraints.Chase
module Sat = Constraints.Sat
module Support_poly = Zeroone.Support_poly
module Measure = Zeroone.Measure
module Alt_measure = Zeroone.Alt_measure
module Owa = Zeroone.Owa
module Conditional = Zeroone.Conditional
module Constructions = Zeroone.Constructions
module Sep = Compare.Sep
module Order = Compare.Order
module Best = Compare.Best
module Ucq_compare = Compare.Ucq_compare
module Pworld = Probdb.Pworld
module R = Arith.Rat
module P = Arith.Poly

let header id title = Printf.printf "\n== %s: %s ==\n%!" id title
let rowf fmt = Printf.printf fmt
let rat = R.to_string
let ratf r = R.to_float r

let time_it f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

(* Deterministic small "random" incomplete databases over R(2), S(2). *)
let rs_schema = Schema.make [ ("R", 2); ("S", 2) ]

let random_value rng =
  if Random.State.int rng 2 = 0 then Value.null (Random.State.int rng 3)
  else Value.named ("e" ^ string_of_int (Random.State.int rng 3))

let random_rs_instance rng =
  let rows n = List.init n (fun _ -> [ random_value rng; random_value rng ]) in
  RInstance.of_rows rs_schema
    [ ("R", rows (1 + Random.State.int rng 3));
      ("S", rows (Random.State.int rng 3))
    ]

let fo_query_suite =
  [ Parser.query_exn "Q() := exists x. exists y. R(x, y) & !S(x, y)";
    Parser.query_exn "Q() := forall x. forall y. R(x, y) -> S(x, y)";
    Parser.query_exn "Q() := exists x. R(x, x)";
    Parser.query_exn "Q() := exists x. exists y. R(x, y) & S(y, x)"
  ]

let intro_schema = Parser.schema_exn "R1(customer, product); R2(customer, product)"

let intro_db () =
  Parser.instance_exn intro_schema
    "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) };
     R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"

let intro_query () = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)"

(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1" "intro example — measuring and comparing certainty (§1)";
  let d = intro_db () and q = intro_query () in
  let a = Parser.tuple_exn "('c1', ~1)" and b = Parser.tuple_exn "('c2', ~2)" in
  rowf "certain answers: %d   naive answers: %d\n"
    (Relation.cardinal (Certain.certain_answers d q))
    (Relation.cardinal (Naive.answers d q));
  let ks = List.map (fun i -> RInstance.max_constant d + i) [ 1; 2; 4; 8; 16 ] in
  rowf "%6s  %-14s %-14s\n" "k" "mu^k(c1,~1)" "mu^k(c2,~2)";
  List.iter
    (fun k ->
      rowf "%6d  %-14s %-14s\n" k
        (rat (Support.mu_k d q a ~k))
        (rat (Support.mu_k d q b ~k)))
    ks;
  rowf "(c1,~1) strictly below (c2,~2): %b   Best = " (Order.lt d q a b);
  Relation.iter (fun t -> rowf "%s " (Tuple.to_string t)) (Best.best d q);
  rowf "\nwith FD customer->product: naive answers after chase = %d (paper: both tuples die)\n"
    (match
       Chase.chase [ { Dependency.fd_relation = "R1"; fd_lhs = [ 0 ]; fd_rhs = 1 } ] d
     with
    | Chase.Success c -> Relation.cardinal (Naive.answers c q)
    | Chase.Failure _ -> -1)

let e2 () =
  header "E2" "the 0-1 law (Theorem 1): mu in {0,1} and mu = naive";
  let rng = Random.State.make [| 2018; 6; 10 |] in
  let trials = 60 in
  let checked = ref 0 and violations = ref 0 in
  for _ = 1 to trials do
    let d = random_rs_instance rng in
    List.iter
      (fun q ->
        let mu = Measure.mu_symbolic d q Tuple.empty in
        let naive = Naive.boolean d q in
        incr checked;
        if not ((R.is_zero mu || R.is_one mu) && R.is_one mu = naive) then
          incr violations)
      fo_query_suite
  done;
  rowf "checked %d (database, query) pairs: %d violations (paper: 0)\n" !checked
    !violations;
  (* one visible convergence series *)
  let d =
    RInstance.of_rows rs_schema [ ("R", [ [ Value.null 1; Value.null 2 ] ]) ]
  in
  let q = Parser.query_exn "Q() := exists x. exists y. R(x, y) & x != y" in
  rowf "sample series for Q = 'the two nulls differ' (limit 1):\n";
  List.iter
    (fun k -> rowf "  k = %3d  mu^k = %-10s ~ %.4f\n" k (rat (Support.mu_k_boolean d q ~k)) (ratf (Support.mu_k_boolean d q ~k)))
    [ 2; 4; 8; 16; 32 ];
  rowf "symbolic |Supp^k| = %s over k^2\n"
    (P.to_string (Support_poly.of_query d q Tuple.empty))

let e3 () =
  header "E3" "valuation- vs instance-counting measures (Theorem 2)";
  let d =
    RInstance.of_rows rs_schema
      [ ("R", [ [ Value.named "one"; Value.null 1 ]; [ Value.named "one"; Value.null 2 ] ]) ]
  in
  let q = Parser.query_exn "exists x. exists y. exists z. R(x, y) & R(x, z) & y != z" in
  let k0 = RInstance.max_constant d in
  rowf "%6s  %-12s %-12s (paper: different values, same limit 1)\n" "k" "mu^k" "m^k";
  List.iter
    (fun i ->
      let k = k0 + i in
      rowf "%6d  %-12s %-12s\n" k
        (rat (Support.mu_k_boolean d q ~k))
        (rat (Alt_measure.m_k_boolean d q ~k)))
    [ 1; 2; 4; 8; 12 ]

let e4 () =
  header "E4" "open-world measure (Proposition 2)";
  let w = Constructions.owa_witness () in
  rowf "Q1 = not exists x. U(x): naive = %b, owa-m^k below (paper: 2^-k -> 0)\n"
    (Naive.boolean w.Constructions.ow_instance w.Constructions.ow_q1);
  rowf "%6s  %-10s %-10s\n" "k" "Q1" "Q2";
  List.iter
    (fun k ->
      rowf "%6d  %-10s %-10s\n" k
        (rat (Owa.owa_m_k w.Constructions.ow_instance w.Constructions.ow_q1 ~k))
        (rat (Owa.owa_m_k w.Constructions.ow_instance w.Constructions.ow_q2 ~k)))
    [ 1; 2; 3; 4; 5 ]

let e5 () =
  header "E5" "the implication measure degenerates (Proposition 3)";
  let d =
    RInstance.of_rows rs_schema [ ("R", [ [ Value.null 1; Value.null 2 ] ]) ]
  in
  let sigma_mu0 = Parser.formula_exn "exists x. R(x, x)" in
  let sigma_mu1 = Parser.formula_exn "exists x. exists y. R(x, y) & x != y" in
  let q_mu0 = Parser.query_exn "exists x. exists y. S(x, y)" in
  let q_mu1 = Parser.query_exn "exists x. exists y. R(x, y)" in
  rowf "%-14s %-10s %-12s %-14s\n" "mu(Sigma)" "mu(Q)" "mu(Sigma->Q)" "paper says";
  let cases =
    [ (sigma_mu0, q_mu0, "1 (vacuous)"); (sigma_mu0, q_mu1, "1 (vacuous)");
      (sigma_mu1, q_mu0, "mu(Q) = 0"); (sigma_mu1, q_mu1, "mu(Q) = 1")
    ]
  in
  List.iter
    (fun (sigma, q, expect) ->
      let ms = Measure.mu_symbolic d (Query.boolean sigma) Tuple.empty in
      let mq = Measure.mu_symbolic d q Tuple.empty in
      let mi = Conditional.mu_implication ~sigma d q Tuple.empty in
      rowf "%-14s %-10s %-12s %-14s\n" (rat ms) (rat mq) (rat mi) expect)
    cases

let e6 () =
  header "E6" "conditional probabilities 1/3 and 2/3 (§4 example)";
  let e = Constructions.section4_example () in
  List.iter
    (fun (t, expect) ->
      let r =
        Conditional.mu_cond_report ~sigma:e.Constructions.s4_sigma
          e.Constructions.s4_instance e.Constructions.s4_query t
      in
      rowf "mu(Q|Sigma,D,%s) = %-5s (paper: %s)  num=%s den=%s\n"
        (Tuple.to_string t) (rat r.Conditional.value) expect
        (P.to_string r.Conditional.numerator)
        (P.to_string r.Conditional.denominator))
    [ (e.Constructions.s4_tuple_third, "1/3");
      (e.Constructions.s4_tuple_two_thirds, "2/3")
    ]

let e7 () =
  header "E7" "convergence of mu^k(Q|Sigma) (Theorem 3)";
  (* FD case: genuine k-dependence, limit 0 (0-1 law recovered). *)
  let d =
    RInstance.of_rows rs_schema
      [ ("R", [ [ Value.named "one"; Value.null 1 ]; [ Value.named "one"; Value.null 2 ] ]) ]
  in
  let fd = { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  let sigma = Dependency.set_to_formula rs_schema [ Dependency.Fd fd ] in
  let q = Parser.query_exn "Q() := R('one', 'one')" in
  rowf "FD case, Q = R(one,one): mu^k(Q|Sigma) = 1/k -> 0\n";
  let k0 = RInstance.max_constant d in
  List.iter
    (fun i ->
      let k = k0 + i in
      rowf "  k = %3d  %-10s\n" k (rat (Conditional.mu_cond_k ~sigma d q Tuple.empty ~k)))
    [ 1; 2; 4; 8; 16 ];
  let report = Conditional.mu_cond_report ~sigma d q Tuple.empty in
  rowf "  symbolic: num %s / den %s -> limit %s\n"
    (P.to_string report.Conditional.numerator)
    (P.to_string report.Conditional.denominator)
    (rat report.Conditional.value);
  (* IND case: the measure is a non-trivial rational, constant in k. *)
  let w = Constructions.rational_witness ~p:3 ~r:7 in
  let report =
    Conditional.mu_cond_report ~sigma:w.Constructions.rw_sigma
      w.Constructions.rw_instance w.Constructions.rw_query Tuple.empty
  in
  rowf "IND case (Prop 4 witness 3/7): num %s / den %s -> limit %s\n"
    (P.to_string report.Conditional.numerator)
    (P.to_string report.Conditional.denominator)
    (rat report.Conditional.value)

let e8 () =
  header "E8" "every rational is realizable (Proposition 4)";
  rowf "%-8s %-8s %s\n" "target" "measured" "ok";
  List.iter
    (fun (p, r) ->
      let w = Constructions.rational_witness ~p ~r in
      let got =
        Conditional.mu_cond_boolean ~sigma:w.Constructions.rw_sigma
          w.Constructions.rw_instance w.Constructions.rw_query
      in
      rowf "%d/%-6d %-8s %b\n" p r (rat got) (R.equal got w.Constructions.rw_expected))
    [ (1, 1); (1, 2); (1, 3); (2, 3); (3, 4); (2, 5); (5, 8); (3, 7); (7, 11); (9, 10) ]

let e9 () =
  header "E9" "constraints break the naive connection (§4.3 example)";
  let e = Constructions.naive_breaks () in
  rowf "Q naively true:          %b (paper: true)\n"
    (Naive.boolean e.Constructions.nb_instance e.Constructions.nb_query);
  rowf "Sigma->Q naively true:   %b (paper: true)\n"
    (Naive.sentence e.Constructions.nb_instance
       (F.Implies (e.Constructions.nb_sigma, e.Constructions.nb_query.Query.body)));
  rowf "mu(Q|Sigma,D):           %s (paper: 0)\n"
    (rat
       (Conditional.mu_cond_boolean ~sigma:e.Constructions.nb_sigma
          e.Constructions.nb_instance e.Constructions.nb_query))

let orders_schema =
  Schema.make_with_attrs [ ("Orders", [ "id"; "customer" ]); ("Customers", [ "cid" ]) ]

let orders_instance ~rows ~nulls =
  (* [rows] orders; the first [nulls] reference unresolved customers. *)
  let order i =
    let cust =
      if i < nulls then Value.null i
      else Value.named ("cust" ^ string_of_int (i mod 5))
    in
    [ Value.named ("o" ^ string_of_int i); cust ]
  in
  RInstance.of_rows orders_schema
    [ ("Orders", List.init rows order);
      ("Customers", List.init 5 (fun i -> [ Value.named ("cust" ^ string_of_int i) ]))
    ]

let e10 () =
  header "E10" "Prop 6: satisfiability is polynomial; counting is hard";
  let cs =
    [ Dependency.key "Orders" [ 0 ]; Dependency.key "Customers" [ 0 ];
      Dependency.foreign_key "Orders" [ 1 ] "Customers" [ 0 ]
    ]
  in
  rowf "satisfiability (polynomial procedure) vs database size:\n";
  rowf "%8s %12s\n" "rows" "seconds";
  List.iter
    (fun rows ->
      let d = orders_instance ~rows ~nulls:(min rows 3) in
      let _, dt = time_it (fun () -> Sat.unary_keys_fks orders_schema cs d) in
      rowf "%8d %12.6f\n" rows dt)
    [ 8; 16; 32; 64; 128 ];
  rowf "exact support counting (the #P-hard numerator) vs number of nulls:\n";
  let unary_schema = Schema.make [ ("Ref", 1); ("Dom", 1) ] in
  let sigma =
    Dependency.set_to_formula unary_schema [ Dependency.ind "Ref" [ 0 ] "Dom" [ 0 ] ]
  in
  rowf "%8s %12s %16s\n" "nulls" "seconds" "Bell(m) classes";
  List.iter
    (fun m ->
      let d =
        RInstance.of_rows unary_schema
          [ ("Ref", List.init m (fun i -> [ Value.null i ]));
            ("Dom", [ [ Value.named "d0" ]; [ Value.named "d1" ] ])
          ]
      in
      let _, dt = time_it (fun () -> Support_poly.of_sentence d sigma) in
      rowf "%8d %12.6f %16s\n" m dt
        (Arith.Bigint.to_string (Arith.Combinat.bell m)))
    [ 1; 2; 3; 4; 5; 6; 7 ]

let e11 () =
  header "E11" "almost-certainly-true constraints change nothing (Theorem 4)";
  let rng = Random.State.make [| 4; 4; 4 |] in
  let sigma = Parser.formula_exn "forall x. forall y. R(x, y) -> S(x, y)" in
  let q = List.hd fo_query_suite in
  let applicable = ref 0 and agreements = ref 0 in
  for _ = 1 to 60 do
    (* build S ⊇ R so that Σ: R ⊆ S is naively true by construction *)
    let r_rows =
      List.init
        (1 + Random.State.int rng 2)
        (fun _ -> [ random_value rng; random_value rng ])
    in
    let extra = List.init (Random.State.int rng 2) (fun _ -> [ random_value rng; random_value rng ]) in
    let d = RInstance.of_rows rs_schema [ ("R", r_rows); ("S", r_rows @ extra) ] in
    if Naive.sentence d sigma then begin
      incr applicable;
      if
        R.equal
          (Conditional.mu_cond ~sigma d q Tuple.empty)
          (Measure.mu_symbolic d q Tuple.empty)
      then incr agreements
    end
  done;
  rowf "instances with Sigma naively true: %d;  mu(Q|Sigma) = mu(Q) on %d (paper: all)\n"
    !applicable !agreements

let e12 () =
  header "E12" "FDs: chase shortcut vs direct conditional (Thm 5 / Cor 4)";
  let fd = { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  let sigma = Dependency.set_to_formula rs_schema [ Dependency.Fd fd ] in
  let q = List.hd fo_query_suite in
  let make_instance m =
    (* m null pairs sharing keys: the chase has real work to do *)
    RInstance.of_rows rs_schema
      [ ("R",
         List.concat
           (List.init m (fun i ->
                [ [ Value.named ("key" ^ string_of_int i); Value.null (2 * i) ];
                  [ Value.named ("key" ^ string_of_int i); Value.null ((2 * i) + 1) ]
                ])))
      ]
  in
  rowf "%8s %14s %16s %18s %8s\n" "nulls" "chase (s)" "direct-FO (s)"
    "direct-struct (s)" "equal";
  List.iter
    (fun m ->
      let d = make_instance m in
      let via_chase, t_chase =
        time_it (fun () -> Conditional.mu_cond_fds [ fd ] d q Tuple.empty)
      in
      let direct, t_direct =
        if m <= 2 then time_it (fun () -> Conditional.mu_cond ~sigma d q Tuple.empty)
        else (via_chase, Float.nan)
      in
      let direct2, t_direct2 =
        time_it (fun () ->
            Conditional.mu_cond_deps_direct [ Dependency.Fd fd ] d q Tuple.empty)
      in
      rowf "%8d %14.6f %16.6f %18.6f %8b\n" (2 * m) t_chase t_direct t_direct2
        (R.equal via_chase direct && R.equal via_chase direct2))
    [ 1; 2; 3 ];
  rowf
    "(chase flat; compiled-FO conditional explodes first; the structural fast \
     path buys one more doubling before Bell(m) wins)\n"

let e13 () =
  header "E13" "best answers for R minus S (§5 example)";
  let d =
    RInstance.of_rows rs_schema
      [ ("R", [ [ Value.named "1"; Value.null 1 ]; [ Value.named "2"; Value.null 2 ] ]);
        ("S", [ [ Value.named "1"; Value.null 2 ]; [ Value.null 3; Value.null 1 ] ])
      ]
  in
  let q = Parser.query_exn "Q(x, y) := R(x, y) & !S(x, y)" in
  rowf "certain answers: %d (paper: 0)\n"
    (Relation.cardinal (Certain.certain_answers d q));
  rowf "Best(Q,D) = ";
  Relation.iter (fun t -> rowf "%s " (Tuple.to_string t)) (Best.best d q);
  rowf " (paper: {(2,~2)})\n"

let e14 () =
  header "E14" "cost of FO comparisons grows with the number of nulls (Thms 6-7)";
  let q = intro_query () in
  let make_db extra =
    (* intro database padded with extra null-carrying rows *)
    let base = intro_db () in
    List.fold_left
      (fun d i ->
        RInstance.add_tuple "R1"
          (Tuple.of_list [ Value.named ("cx" ^ string_of_int i); Value.null (10 + i) ])
          d)
      base
      (List.init extra (fun i -> i))
  in
  rowf "%8s %12s %14s\n" "nulls" "sep (s)" "best (s)";
  List.iter
    (fun extra ->
      let d = make_db extra in
      let a = Parser.tuple_exn "('c1', ~1)" and b = Parser.tuple_exn "('c2', ~2)" in
      let _, t_sep = time_it (fun () -> Sep.sep d q a b) in
      let _, t_best =
        if extra <= 1 then time_it (fun () -> ignore (Best.best d q))
        else ((), Float.nan)
      in
      rowf "%8d %12.6f %14.6f\n" (3 + extra) t_sep t_best)
    [ 0; 1; 2; 3 ]

let e15 () =
  header "E15" "Theorem 8: UCQ comparisons in polynomial time";
  let q = Parser.query_exn "Q(x) := exists y. R(x, y) & S(y, x)" in
  let u = Option.get (Ucq.of_query q) in
  let make_db m =
    RInstance.of_rows rs_schema
      [ ("R", List.init m (fun i -> [ Value.named ("a" ^ string_of_int i); Value.null i ]));
        ("S", List.init m (fun i -> [ Value.null i; Value.named ("a" ^ string_of_int i) ]))
      ]
  in
  rowf "%8s %14s %14s %8s\n" "nulls" "generic (s)" "Thm 8 (s)" "agree";
  List.iter
    (fun m ->
      let d = make_db m in
      let a = Tuple.of_list [ Value.named "a0" ] in
      let b = Tuple.of_list [ Value.null (m - 1) ] in
      let fast, t_fast = time_it (fun () -> Ucq_compare.sep d u a b) in
      let slow, t_slow =
        if m <= 4 then time_it (fun () -> Sep.sep d q a b) else (fast, Float.nan)
      in
      rowf "%8d %14.6f %14.6f %8b\n" m t_slow t_fast (fast = slow))
    [ 1; 2; 3; 4; 5 ];
  rowf "(the generic class search is exponential in nulls; Theorem 8 is polynomial)\n"

let e16 () =
  header "E16" "naive evaluation cannot decide support orderings (§5.1)";
  let schema = Schema.make [ ("R", 2) ] in
  let d =
    RInstance.of_rows schema
      [ ("R", [ [ Value.named "1"; Value.null 7 ]; [ Value.null 7; Value.named "2" ] ]) ]
  in
  let q = Parser.query_exn "Q(x, y) := R(x, y)" in
  let a = Tuple.consts [ "1"; "2" ] and b = Tuple.consts [ "1"; "1" ] in
  rowf "naive(Q(a) -> Q(b)): %b (suggests a below b)\n"
    (Naive.sentence d (F.Implies (Query.instantiate q a, Query.instantiate q b)));
  rowf "a actually below b:  %b (paper: false — naive evaluation misleads)\n"
    (Order.leq d q a b)

let e17 () =
  header "E17" "best vs almost-certain are orthogonal (Proposition 7)";
  let w = Constructions.orthogonality_witness () in
  let line label inst q t =
    rowf "%-24s best=%-5b mu=%s\n" label (Best.is_best inst q t)
      (rat (Measure.to_rat (Measure.mu inst q t)))
  in
  line "base, tuple a" w.Constructions.og_base_instance w.Constructions.og_base_query
    w.Constructions.og_a;
  line "base, tuple b" w.Constructions.og_base_instance w.Constructions.og_base_query
    w.Constructions.og_b;
  line "ext, tuple a" w.Constructions.og_ext_instance w.Constructions.og_ext_query
    w.Constructions.og_a;
  line "ext, tuple b" w.Constructions.og_ext_instance w.Constructions.og_ext_query
    w.Constructions.og_b;
  rowf "(paper: all four best/non-best x mu=1/mu=0 combinations occur)\n"

let e18 () =
  header "E18" "Best_mu (Proposition 8)";
  let w = Constructions.orthogonality_witness () in
  let show label inst q =
    rowf "%-6s Best = " label;
    Relation.iter (fun t -> rowf "%s " (Tuple.to_string t)) (Best.best inst q);
    rowf "  Best_mu = ";
    Relation.iter (fun t -> rowf "%s " (Tuple.to_string t)) (Best.best_mu inst q);
    rowf "\n"
  in
  show "base" w.Constructions.og_base_instance w.Constructions.og_base_query;
  show "ext" w.Constructions.og_ext_instance w.Constructions.og_ext_query

let e19 () =
  header "E19" "Pos-forall-G queries: certain = almost certainly true (Cor 3)";
  let rng = Random.State.make [| 19; 19 |] in
  let queries =
    [ Parser.query_exn "Q(x) := exists y. R(x, y)";
      Parser.query_exn "Q(x) := forall y. forall z. S(y, z) -> R(x, y)";
      Parser.query_exn "Q(x, y) := R(x, y) | S(x, y)"
    ]
  in
  List.iter
    (fun q ->
      if not (Logic.Fragment.is_pos_forall_guard q.Query.body) then
        rowf "NOT in the fragment: %s\n" (Query.to_string q))
    queries;
  (* a query that looks guarded but has a free variable inside the
     guard — genuinely outside Pos∀G, where the equality can fail *)
  rowf "control: 'forall y. S(x, y) -> exists z. R(x, z)' in fragment: %b (should be false)\n"
    (Logic.Fragment.is_pos_forall_guard
       (Parser.query_exn "Q(x) := forall y. S(x, y) -> (exists z. R(x, z))").Query.body);
  let checked = ref 0 and agreements = ref 0 in
  for _ = 1 to 25 do
    let d = random_rs_instance rng in
    List.iter
      (fun q ->
        incr checked;
        if
          Relation.equal (Certain.certain_answers d q)
            (Measure.almost_certain_answers d q)
        then incr agreements)
      queries
  done;
  rowf "checked %d pairs: certain = almost-certainly-true on %d (paper: all)\n"
    !checked !agreements

let e20 () =
  header "E20" "mu^k three ways (probabilistic databases, §3.2 remark)";
  let d = intro_db () in
  let q = Parser.query_exn "Q() := exists x. exists y. R1(x, y) & !R2(x, y)" in
  let sp = Support_poly.of_sentences d [ Query.instantiate q Tuple.empty ] in
  rowf "%6s %-14s %-14s %-14s %10s\n" "k" "enumeration" "polynomial" "prob. worlds"
    "#worlds";
  List.iter
    (fun k ->
      let brute = Support.mu_k_boolean d q ~k in
      let sym = Support_poly.mu_k_exact sp ~sentence:0 ~k in
      let worlds = Pworld.of_incomplete d ~k in
      let prob = Pworld.prob_sentence worlds q.Query.body in
      rowf "%6d %-14s %-14s %-14s %10d\n" k (rat brute) (rat sym) (rat prob)
        (Pworld.world_count worlds))
    (List.map (fun i -> RInstance.max_constant d + i) [ 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper (its §6 future-work directions)          *)
(* ------------------------------------------------------------------ *)

let e21 () =
  header "E21" "extension: non-uniform distributions (§6 'Other distributions')";
  let d =
    RInstance.of_rows rs_schema [ ("R", [ [ Value.null 1; Value.null 2 ] ]) ]
  in
  let q = Parser.query_exn "Q() := exists x. R(x, x)" in
  let module W = Zeroone.Weighted in
  rowf "Q = 'the two nulls collide'; uniform µ = 0 by the 0-1 law.\n";
  rowf "%6s %-12s %-14s %-14s\n" "k" "uniform" "favourite(10)" "geometric(1/2)";
  List.iter
    (fun k ->
      rowf "%6d %-12s %-14s %-14s\n" k
        (rat (W.mu_k_boolean W.uniform d q ~k))
        (rat (W.mu_k_boolean (W.favourite ~code:1 ~weight:(R.of_int 10)) d q ~k))
        (rat (W.mu_k_boolean (W.geometric ~ratio:R.half) d q ~k)))
    [ 2; 4; 8; 16 ];
  rowf
    "(geometric mass never spreads out: the measure converges to 1/3, not 0 — \
     the 0-1 law is distribution-dependent)\n"

let e22 () =
  header "E22" "extension: SQL nulls and approximation quality (§6)";
  let d = intro_db () in
  let q = intro_query () in
  let module A = Zeroone.Approx in
  let describe name scheme =
    let r = A.evaluate scheme d q in
    rowf
      "%-22s returned=%d missed=%d spurious(benign)=%d spurious(harmful)=%d \
       recall=%s precision=%s\n"
      name
      (Relation.cardinal r.A.returned)
      (Relation.cardinal r.A.missed)
      (Relation.cardinal r.A.spurious_benign)
      (Relation.cardinal r.A.spurious_harmful)
      (rat (A.recall r)) (rat (A.precision r))
  in
  describe "SQL 3VL" A.sql_scheme;
  describe "naive (marked nulls)" (fun d q -> Naive.answers d q);
  describe "naive, null-free" A.naive_null_free_scheme;
  let self_join = Parser.formula_exn "exists x. R1(x, x)" in
  let d2 =
    RInstance.of_rows intro_schema
      [ ("R1", [ [ Value.null 9; Value.null 9 ] ]) ]
  in
  rowf "repeated null ~9: certain %b, naive %b, SQL says %s\n"
    (Certain.is_certain_sentence d2 self_join)
    (Naive.sentence d2 self_join)
    (Logic.Sql3vl.to_string3 (Logic.Sql3vl.sentence_holds d2 self_join))

let e23 () =
  header "E23" "extension: Codd nulls and relational algebra";
  let d = intro_db () in
  let c = Incomplete.Codd.coddify d in
  rowf "intro database is Codd: %b; coddified has %d nulls (was %d)\n"
    (Incomplete.Codd.is_codd d)
    (RInstance.null_count c) (RInstance.null_count d);
  let q = Parser.formula_exn "exists x. exists y. R1(x, y) & R2(x, y)" in
  rowf "Q = 'some purchase from both suppliers': certain on D: %b, on coddify(D): %b\n"
    (Certain.is_certain_sentence d q)
    (Certain.is_certain_sentence c q);
  rowf "(forgetting null equalities loses certainty — [[D]] ⊆ [[coddify D]])\n";
  let module Ra = Logic.Ra in
  let expr = Ra.Diff (Ra.Rel "R1", Ra.Rel "R2") in
  let direct = Ra.eval d expr in
  let compiled = Logic.Eval.answers d (Ra.to_query intro_schema expr) in
  rowf "RA plan %s: direct eval %d tuples; compiled-to-FO eval agrees: %b\n"
    (Ra.to_string expr) (Relation.cardinal direct)
    (Relation.equal direct compiled)

let e24 () =
  header "E24" "extension: the 0-1 law beyond FO (datalog / transitive closure)";
  let graph_schema = Schema.make [ ("E", 2) ] in
  let program =
    Datalog.Program.parse_exn graph_schema
      "TC(x, y) := E(x, y). TC(x, z) := E(x, y), TC(y, z)."
  in
  let q = Zeroone.Generic.of_datalog graph_schema program ~goal:"TC" in
  let d =
    RInstance.of_rows graph_schema
      [ ("E",
         [ [ Value.named "src"; Value.null 1 ];
           [ Value.null 2; Value.named "dst" ]
         ])
      ]
  in
  rowf "graph: src -> ~1, ~2 -> dst;  query: TC (not FO-expressible)\n";
  let t = Tuple.consts [ "src"; "dst" ] in
  let k0 = RInstance.max_constant d in
  rowf "%6s %-14s\n" "k" "mu^k(src,dst)";
  List.iter
    (fun i ->
      let k = k0 + i in
      rowf "%6d %-14s\n" k (rat (Zeroone.Generic.mu_k d q t ~k)))
    [ 1; 2; 4; 8 ];
  rowf "symbolic mu = %s;  naive membership = %b  (Theorem 1 for a generic, recursive query)\n"
    (rat (Zeroone.Generic.mu_symbolic d q t))
    (Relation.mem t (Zeroone.Generic.naive_answers d q));
  (* a tuple with mu = 1 *)
  let t1 = Tuple.of_list [ Value.named "src"; Value.null 1 ] in
  rowf "mu(src,~1) = %s and certain = %b (the edge is explicit)\n"
    (rat (Zeroone.Generic.mu_symbolic d q t1))
    (Zeroone.Generic.is_certain d q t1)

let e25 () =
  header "E25" "extension: c-tables represent, measures grade (IL84 + Thm 1)";
  let d =
    RInstance.of_rows rs_schema
      [ ("R", [ [ Value.named "one"; Value.null 1 ]; [ Value.named "two"; Value.null 2 ] ]);
        ("S", [ [ Value.named "one"; Value.null 2 ]; [ Value.null 3; Value.null 1 ] ])
      ]
  in
  let module CT = Ctables.Ctable in
  let module Ra = Logic.Ra in
  let plan = Ra.Diff (Ra.Rel "R", Ra.Rel "S") in
  let ct = CT.eval d plan in
  rowf "plan %s compiled to a c-table:\n%s" (Ra.to_string plan)
    (Format.asprintf "%a" CT.pp ct);
  rowf "certain tuples from conditions: %d (paper's §5 example: none)\n"
    (Relation.cardinal (CT.certain_tuples ct));
  (* representation theorem spot-check over the constants of D plus two
     fresh values — sufficient by genericity *)
  let top = RInstance.max_constant d in
  let domain = RInstance.constants d @ [ top + 1; top + 2 ] in
  let nulls = RInstance.nulls d in
  let ok =
    List.for_all
      (fun codes ->
        let v = Incomplete.Valuation.of_list (List.combine nulls codes) in
        Relation.equal (CT.instantiate v ct)
          (Ra.eval (Incomplete.Valuation.instance v d) plan))
      (Arith.Combinat.tuples domain (List.length nulls))
  in
  rowf "IL84 closure check over %d^%d representative valuations: %b\n"
    (List.length domain) (List.length nulls) ok;
  (* the measures grade what the c-table represents *)
  let q = Ra.to_query rs_schema plan in
  Relation.iter
    (fun t ->
      rowf "  row %s : mu = %s\n" (Tuple.to_string t)
        (rat (Measure.to_rat (Measure.mu d q t))))
    (CT.possible_tuples ct)

let all =
  [ ("e1_intro", e1); ("e2_zero_one", e2); ("e3_alt_measure", e3);
    ("e4_owa", e4); ("e5_implication", e5); ("e6_conditional_example", e6);
    ("e7_convergence", e7); ("e8_rational_sweep", e8); ("e9_naive_breaks", e9);
    ("e10_sat_vs_count", e10); ("e11_acc_constraints", e11); ("e12_chase", e12);
    ("e13_best_example", e13); ("e14_fo_scaling", e14); ("e15_ucq", e15);
    ("e16_naive_no_help", e16); ("e17_orthogonal", e17); ("e18_best_mu", e18);
    ("e19_posforallg", e19); ("e20_probdb", e20); ("e21_weighted", e21);
    ("e22_sql_approx", e22); ("e23_codd_ra", e23); ("e24_datalog", e24);
    ("e25_ctables", e25)
  ]
