(* Benchmark harness: regenerates every experiment E1-E20 (the paper's
   theorems, propositions and worked examples — see EXPERIMENTS.md) and
   then runs bechamel micro-benchmarks over the computational kernels.

   Run with:  dune exec bench/main.exe
   Only experiments: dune exec bench/main.exe -- --experiments
   Only timings:     dune exec bench/main.exe -- --timings *)

module RInstance = Relational.Instance
module Value = Relational.Value
module Tuple = Relational.Tuple
module Parser = Logic.Parser
module Query = Logic.Query
module Dependency = Constraints.Dependency

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmark kernels: one per experiment family                   *)
(* ------------------------------------------------------------------ *)

let intro_db = lazy (Experiments.intro_db ())
let intro_q = lazy (Experiments.intro_query ())

let kernel_naive () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore (Incomplete.Naive.answers d q)

let kernel_mu_symbolic () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore (Zeroone.Measure.mu_symbolic d q (Parser.tuple_exn "('c1', ~1)"))

let kernel_mu_k_bruteforce () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore (Incomplete.Support.mu_k d q (Parser.tuple_exn "('c1', ~1)") ~k:6)

let kernel_certain () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore (Incomplete.Certain.certain_answers d q)

let section4 = lazy (Zeroone.Constructions.section4_example ())

let kernel_conditional () =
  let e = Lazy.force section4 in
  ignore
    (Zeroone.Conditional.mu_cond ~sigma:e.Zeroone.Constructions.s4_sigma
       e.Zeroone.Constructions.s4_instance e.Zeroone.Constructions.s4_query
       e.Zeroone.Constructions.s4_tuple_third)

let chase_input =
  lazy
    (RInstance.of_rows Experiments.rs_schema
       [ ("R",
          List.concat
            (List.init 4 (fun i ->
                 [ [ Value.named ("key" ^ string_of_int i); Value.null (2 * i) ];
                   [ Value.named ("key" ^ string_of_int i); Value.null ((2 * i) + 1) ]
                 ])))
       ])

let kernel_chase () =
  let fd = { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  ignore (Constraints.Chase.chase [ fd ] (Lazy.force chase_input))

let sat_input = lazy (Experiments.orders_instance ~rows:64 ~nulls:3)

let kernel_sat () =
  let cs =
    [ Dependency.key "Orders" [ 0 ]; Dependency.key "Customers" [ 0 ];
      Dependency.foreign_key "Orders" [ 1 ] "Customers" [ 0 ]
    ]
  in
  ignore
    (Constraints.Sat.unary_keys_fks Experiments.orders_schema cs
       (Lazy.force sat_input))

let kernel_sep_generic () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore
    (Compare.Sep.sep d q (Parser.tuple_exn "('c1', ~1)")
       (Parser.tuple_exn "('c2', ~2)"))

let ucq_ctx =
  lazy
    (let q = Parser.query_exn "Q(x) := exists y. R(x, y) & S(y, x)" in
     let u = Option.get (Logic.Ucq.of_query q) in
     let d =
       RInstance.of_rows Experiments.rs_schema
         [ ("R",
            List.init 3 (fun i ->
                [ Value.named ("a" ^ string_of_int i); Value.null i ]));
           ("S",
            List.init 3 (fun i ->
                [ Value.null i; Value.named ("a" ^ string_of_int i) ]))
         ]
     in
     (d, u))

let kernel_sep_ucq () =
  let d, u = Lazy.force ucq_ctx in
  ignore
    (Compare.Ucq_compare.sep d u
       (Tuple.of_list [ Value.named "a0" ])
       (Tuple.of_list [ Value.null 2 ]))

let kernel_best () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore (Compare.Best.best d q)

let probdb_sentence =
  lazy
    (Parser.query_exn "Q() := exists x. exists y. R1(x, y) & !R2(x, y)").Query.body

let kernel_probdb () =
  let d = Lazy.force intro_db in
  let worlds = Probdb.Pworld.of_incomplete d ~k:5 in
  ignore (Probdb.Pworld.prob_sentence worlds (Lazy.force probdb_sentence))

let tests =
  Test.make_grouped ~name:"certainty" ~fmt:"%s/%s"
    [ Test.make ~name:"e2_naive_eval" (Staged.stage kernel_naive);
      Test.make ~name:"e2_mu_symbolic" (Staged.stage kernel_mu_symbolic);
      Test.make ~name:"e2_mu_k_bruteforce_k6" (Staged.stage kernel_mu_k_bruteforce);
      Test.make ~name:"e13_certain_answers" (Staged.stage kernel_certain);
      Test.make ~name:"e6_conditional_measure" (Staged.stage kernel_conditional);
      Test.make ~name:"e12_chase_8_nulls" (Staged.stage kernel_chase);
      Test.make ~name:"e10_sat_64_rows" (Staged.stage kernel_sat);
      Test.make ~name:"e14_sep_generic" (Staged.stage kernel_sep_generic);
      Test.make ~name:"e15_sep_ucq_thm8" (Staged.stage kernel_sep_ucq);
      Test.make ~name:"e13_best_answers" (Staged.stage kernel_best);
      Test.make ~name:"e20_probdb_mu_k5" (Staged.stage kernel_probdb)
    ]

let run_timings () =
  print_endline "\n== bechamel micro-benchmarks (ns/run, OLS estimate) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%12.1f" t
        | Some [] | None -> "     (n/a)"
      in
      Printf.printf "  %-40s %s ns/run\n" name estimate)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let run_experiments () =
  print_endline "=====================================================";
  print_endline " Certain Answers Meet Zero-One Laws  --  experiments";
  print_endline " (one block per theorem/proposition/example; see";
  print_endline "  EXPERIMENTS.md for the paper-vs-measured record)";
  print_endline "=====================================================";
  List.iter
    (fun (name, f) ->
      let t0 = Sys.time () in
      f ();
      Printf.printf "[%s: %.2fs]\n%!" name (Sys.time () -. t0))
    Experiments.all

let () =
  let args = Array.to_list Sys.argv in
  let experiments = List.mem "--experiments" args in
  let timings = List.mem "--timings" args in
  match (experiments, timings) with
  | true, false -> run_experiments ()
  | false, true -> run_timings ()
  | _, _ ->
      run_experiments ();
      run_timings ()
