examples/chase_repair.ml: Arith Constraints Incomplete List Logic Printf Relational Zeroone
