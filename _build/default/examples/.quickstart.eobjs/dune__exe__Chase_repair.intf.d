examples/chase_repair.mli:
