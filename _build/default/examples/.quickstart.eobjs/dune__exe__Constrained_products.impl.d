examples/constrained_products.ml: Arith Constraints Incomplete List Logic Printf Relational Zeroone
