examples/constrained_products.mli:
