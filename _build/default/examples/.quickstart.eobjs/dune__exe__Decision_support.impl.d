examples/decision_support.ml: Compare Incomplete List Logic Printf Relational
