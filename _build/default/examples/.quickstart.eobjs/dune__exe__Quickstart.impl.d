examples/quickstart.ml: Arith Compare Constraints Incomplete List Logic Printf Relational
