examples/quickstart.mli:
