examples/recursive_reachability.ml: Arith Datalog Format List Printf Relational Zeroone
