examples/recursive_reachability.mli:
