examples/sql_nulls.ml: Arith Incomplete List Logic Printf Relational Zeroone
