examples/sql_nulls.mli:
