(* Chase-based repair and key/foreign-key satisfiability.

   An order-management database arrives from two half-migrated systems:
   customer references are partly unresolved (nulls), and the business
   rules are classic RDBMS constraints — keys and foreign keys. We
   (1) chase the functional dependencies to propagate known values,
   (2) decide in polynomial time whether the constraints are
   satisfiable at all (Proposition 6), and (3) use Corollary 4 to
   answer a query with certainty under the FDs.

   Run with:  dune exec examples/chase_repair.exe *)

module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Parser = Logic.Parser
module Dependency = Constraints.Dependency
module Chase = Constraints.Chase
module Sat = Constraints.Sat
module R = Arith.Rat

let () =
  let schema =
    Parser.schema_exn
      "Orders(id, customer, status); Customers(cid)"
  in
  let db =
    Parser.instance_exn schema
      "Orders = { ('o1', ~1, 'delayed'),
                  ('o1', ~2, ~3),
                  ('o2', 'noor', 'shipped'),
                  ('o3', ~2, 'delayed') };
       Customers = { ('noor'), ('omar') }"
  in
  print_endline "Incoming (incomplete) database:";
  print_endline (Instance.to_string db);

  (* --- 1. Chase the key FDs ---------------------------------------- *)
  (* 'id' is a key of Orders: it determines customer and status. *)
  let cs =
    [ Dependency.key_of_attrs schema "Orders" [ "id" ];
      Dependency.key_of_attrs schema "Customers" [ "cid" ];
      Dependency.foreign_key "Orders" [ 1 ] "Customers" [ 0 ]
    ]
  in
  let fds = Dependency.fds_of_schema schema cs in
  Printf.printf "Chasing with %d FDs derived from the keys...\n" (List.length fds);
  let steps, outcome = Chase.trace fds db in
  List.iter
    (fun (fd, from_v, to_v) ->
      Printf.printf "  %s  forces  %s := %s\n"
        (Dependency.to_string ~schema (Dependency.Fd fd))
        (Relational.Value.to_string from_v)
        (Relational.Value.to_string to_v))
    steps;
  let chased =
    match outcome with
    | Chase.Failure (fd, t, u) ->
        Printf.printf "chase failed on %s: %s vs %s — data is inconsistent\n"
          (Dependency.to_string ~schema (Dependency.Fd fd))
          (Tuple.to_string t) (Tuple.to_string u);
        exit 1
    | Chase.Success chased -> chased
  in
  print_endline "\nAfter the chase (o1's two rows merged, ~3 resolved):";
  print_endline (Instance.to_string chased);

  (* --- 2. Satisfiability of the keys + foreign keys (Prop 6) -------- *)
  (match Sat.unary_keys_fks schema cs db with
  | Sat.Satisfiable v ->
      Printf.printf "Constraints satisfiable; witness valuation %s\n"
        (Incomplete.Valuation.to_string v)
  | Sat.Unsatisfiable reason -> Printf.printf "Unsatisfiable: %s\n" reason);

  (* --- 3. Query answering with certainty under FDs (Corollary 4) --- *)
  let q =
    Parser.query_exn "Q() := exists c. Orders('o1', c, 'delayed') & Orders('o3', c, 'delayed')"
  in
  Printf.printf "\nQuery: do orders o1 and o3 belong to the same customer (both delayed)?\n";
  let mu = Zeroone.Conditional.mu_cond_fds fds db q Tuple.empty in
  Printf.printf "µ(Q|Σ_FD, D) = %s  — %s\n" (R.to_string mu)
    (if R.is_one mu then "almost certainly yes" else "almost certainly no");

  (* The same decision through the fully symbolic conditional measure. *)
  let sigma = Dependency.set_to_formula schema (List.map (fun f -> Dependency.Fd f) fds) in
  let direct = Zeroone.Conditional.mu_cond_boolean ~sigma db q in
  Printf.printf "symbolic cross-check: %s (Theorem 5 in action)\n" (R.to_string direct);
  print_endline "\nDone."
