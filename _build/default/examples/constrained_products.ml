(* Conditional certainty under integrity constraints (§4 of the paper).

   A product catalogue constrains which values a null can take: an
   inclusion dependency forces the first column of R into the reference
   table U. Under constraints the 0-1 law fails — the measure of
   certainty becomes a genuine rational number — yet it always
   converges (Theorem 3), and every rational is realizable
   (Proposition 4).

   Run with:  dune exec examples/constrained_products.exe *)

module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module R = Arith.Rat
module P = Arith.Poly
module Constructions = Zeroone.Constructions
module Conditional = Zeroone.Conditional

let () =
  (* --- The paper's own example: measures 1/3 and 2/3 --------------- *)
  let e = Constructions.section4_example () in
  print_endline "Database (paper, §4):";
  print_endline (Instance.to_string e.Constructions.s4_instance);
  print_endline "Constraint Σ: first column of R must appear in U";
  Printf.printf "Query: %s\n\n" (Query.to_string e.Constructions.s4_query);

  let report_for t =
    Conditional.mu_cond_report ~sigma:e.Constructions.s4_sigma
      e.Constructions.s4_instance e.Constructions.s4_query t
  in
  List.iter
    (fun t ->
      let r = report_for t in
      Printf.printf "µ(Q|Σ,D,%s) = %s    (numerator %s, denominator %s)\n"
        (Tuple.to_string t)
        (R.to_string r.Conditional.value)
        (P.to_string r.Conditional.numerator)
        (P.to_string r.Conditional.denominator))
    [ e.Constructions.s4_tuple_third; e.Constructions.s4_tuple_two_thirds ];

  (* --- Every rational is realizable (Proposition 4) ----------------- *)
  print_endline "\nProposition 4 sweep: constructing µ(Q|Σ,D) = p/r on demand";
  List.iter
    (fun (p, r) ->
      let w = Constructions.rational_witness ~p ~r in
      let got =
        Conditional.mu_cond_boolean ~sigma:w.Constructions.rw_sigma
          w.Constructions.rw_instance w.Constructions.rw_query
      in
      Printf.printf "  target %d/%-2d   measured %-6s  %s\n" p r (R.to_string got)
        (if R.equal got w.Constructions.rw_expected then "ok" else "MISMATCH"))
    [ (1, 2); (1, 3); (2, 3); (3, 4); (5, 8); (7, 11) ];

  (* --- Constraints break the naive-evaluation connection (§4.3) ----- *)
  let nb = Constructions.naive_breaks () in
  print_endline "\n§4.3: naive evaluation is no longer a guide under constraints:";
  Printf.printf "  Q naively true?        %b\n"
    (Incomplete.Naive.boolean nb.Constructions.nb_instance nb.Constructions.nb_query);
  Printf.printf "  µ(Q|Σ,D)             = %s\n"
    (R.to_string
       (Conditional.mu_cond_boolean ~sigma:nb.Constructions.nb_sigma
          nb.Constructions.nb_instance nb.Constructions.nb_query));

  (* --- But FDs restore the 0-1 law (Theorem 5 / Corollary 4) -------- *)
  print_endline "\nWith only functional dependencies the 0-1 law returns:";
  let schema = Logic.Parser.schema_exn "Emp(name, dept); Mgr(dept, boss)" in
  let db =
    Logic.Parser.instance_exn schema
      "Emp = { ('ada', ~1), ('ada', ~2) }; Mgr = { (~1, 'grace'), (~2, ~3) }"
  in
  let fd = { Constraints.Dependency.fd_relation = "Emp"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  let q = Logic.Parser.query_exn "Q() := exists d. Emp('ada', d) & Mgr(d, 'grace')" in
  let sigma =
    Constraints.Dependency.set_to_formula schema [ Constraints.Dependency.Fd fd ]
  in
  let direct = Conditional.mu_cond_boolean ~sigma db q in
  let via_chase = Conditional.mu_cond_fds [ fd ] db q Tuple.empty in
  Printf.printf "  µ(Q|Σ_FD,D) directly   = %s\n" (R.to_string direct);
  Printf.printf "  µ(Q, chase_Σ(D))       = %s   (Theorem 5: equal, and 0 or 1)\n"
    (R.to_string via_chase);
  print_endline "\nDone."
