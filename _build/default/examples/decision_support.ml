(* Decision support: ranking uncertain answers.

   A retailer integrates shipment data from three regional warehouses;
   many destination fields are still unresolved (nulls). Marketing wants
   "customers who received a delayed shipment that was NOT re-routed" —
   a query with negation, for which certain answers are hopeless — and
   asks for a ranked list instead.

   This example exercises the §5 machinery: supports, the ⊴/◁
   orderings, Best(Q,D), Best_µ(Q,D), and — because a second, positive
   query is a UCQ — the polynomial-time algorithms of Theorem 8.

   Run with:  dune exec examples/decision_support.exe *)

module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Query = Logic.Query
module Ucq = Logic.Ucq
module Parser = Logic.Parser

let () =
  let schema =
    Parser.schema_exn "Delayed(customer, shipment); Rerouted(customer, shipment)"
  in
  (* ~1, ~2, ~3: shipment ids pending reconciliation; ~4: an unreadable
     customer id on a re-routing slip. *)
  let db =
    Parser.instance_exn schema
      "Delayed  = { ('ana', ~1), ('bob', ~1), ('bob', ~2), ('eve', ~3) };
       Rerouted = { ('ana', ~2), ('bob', ~1), (~4, ~1), ('eve', ~3) }"
  in
  print_endline "Integrated shipment data (with nulls):";
  print_endline (Instance.to_string db);

  let q = Parser.query_exn "Q(c, s) := Delayed(c, s) & !Rerouted(c, s)" in
  Printf.printf "Query: %s\n\n" (Query.to_string q);

  Printf.printf "Certain answers: %d\n"
    (Relation.cardinal (Incomplete.Certain.certain_answers db q));

  let naive = Incomplete.Naive.answers db q in
  print_endline "Candidates from naive evaluation (µ = 1 for each):";
  Relation.iter (fun t -> Printf.printf "  %s\n" (Tuple.to_string t)) naive;

  (* Rank the naive answers by pairwise support comparison. *)
  print_endline "\nPairwise support comparisons (a ⊴ b means b at least as good):";
  let cands = Relation.to_list naive in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Tuple.equal a b) then begin
            if Compare.Order.lt db q a b then
              Printf.printf "  %s ◁ %s   — %s is strictly better\n"
                (Tuple.to_string a) (Tuple.to_string b) (Tuple.to_string b)
            else if Compare.Order.equiv db q a b then
              Printf.printf "  %s ≡ %s   — equally supported\n"
                (Tuple.to_string a) (Tuple.to_string b)
          end)
        cands)
    cands;

  let best = Compare.Best.best db q in
  print_endline "\nBest answers (maximal support, never empty):";
  Relation.iter (fun t -> Printf.printf "  %s\n" (Tuple.to_string t)) best;

  let best_mu = Compare.Best.best_mu db q in
  print_endline "Best AND almost certainly true (Best_µ):";
  Relation.iter (fun t -> Printf.printf "  %s\n" (Tuple.to_string t)) best_mu;

  (* The full ranking: iterate "best of the rest" to stratify every
     candidate by support. *)
  print_endline "\nRanked answer strata (naive answers only, best first):";
  List.iteri
    (fun i stratum ->
      if not (Relation.is_empty stratum) then begin
        Printf.printf "  rank %d:" i;
        Relation.iter (fun t -> Printf.printf " %s" (Tuple.to_string t)) stratum;
        print_newline ()
      end)
    (Compare.Rank.strata ~candidates:(Relation.to_list naive) db q);

  (* A positive follow-up question — "customers with any delayed or
     re-routed shipment" — is a union of conjunctive queries, so
     Theorem 8 applies and comparisons run in polynomial time. *)
  let q2 =
    Parser.query_exn
      "Q2(c) := (exists s. Delayed(c, s)) | (exists s. Rerouted(c, s))"
  in
  Printf.printf "\nUCQ follow-up: %s\n" (Query.to_string q2);
  (match Ucq.of_query q2 with
  | None -> assert false
  | Some u ->
      let best_fast = Compare.Ucq_compare.best db u in
      let best_slow = Compare.Best.best db q2 in
      print_endline "Best answers by the Theorem 8 polynomial algorithm:";
      Relation.iter (fun t -> Printf.printf "  %s\n" (Tuple.to_string t)) best_fast;
      Printf.printf "Generic (exponential) algorithm agrees: %b\n"
        (Relation.equal best_fast best_slow));

  print_endline "\nDone."
