(* Quickstart: the running example from the paper's introduction.

   Two suppliers report which products customers buy; some product ids
   are missing (marked nulls). We ask for products bought only from the
   first supplier, and instead of settling for the empty set of certain
   answers we *measure* how certain each candidate answer is.

   Run with:  dune exec examples/quickstart.exe *)

module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Query = Logic.Query
module Parser = Logic.Parser
module R = Arith.Rat

let () =
  (* 1. Declare the schema and the incomplete database. The same null
     (~1) in several places is the *same* unknown value. *)
  let schema = Parser.schema_exn "R1(customer, product); R2(customer, product)" in
  let db =
    Parser.instance_exn schema
      "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) };
       R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"
  in
  print_endline "The incomplete database D:";
  print_endline (Instance.to_string db);

  (* 2. Products bought only from supplier 1. *)
  let q = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)" in
  Printf.printf "Query: %s\n\n" (Query.to_string q);

  (* 3. Certain answers are empty — the classical story ends here. *)
  let certain = Incomplete.Certain.certain_answers db q in
  Printf.printf "Certain answers: %s\n"
    (if Relation.is_empty certain then "∅" else "non-empty!");

  (* 4. But naive evaluation returns two tuples, and by the 0-1 law
     (Theorem 1) they are exactly the answers that are almost certainly
     true: true under a random interpretation of the nulls with
     probability tending to 1. *)
  let naive = Incomplete.Naive.answers db q in
  print_endline "Almost certainly true answers (= naive evaluation):";
  Relation.iter (fun t -> Printf.printf "  %s\n" (Tuple.to_string t)) naive;

  (* 5. Watch µ^k converge for (c1,~1): the fraction of valuations of
     the nulls into {c1..ck} that keep the tuple in the answer. *)
  let a = Parser.tuple_exn "('c1', ~1)" in
  let b = Parser.tuple_exn "('c2', ~2)" in
  let ks = List.map (fun i -> Instance.max_constant db + i) [ 1; 2; 4; 8; 16; 32 ] in
  Printf.printf "\nµ^k for %s:\n" (Tuple.to_string a);
  List.iter
    (fun (k, v) -> Printf.printf "  k = %3d  µ^k = %-10s ≈ %.4f\n" k (R.to_string v) (R.to_float v))
    (Incomplete.Support.mu_k_series db q a ~ks);

  (* 6. Both tuples are almost certainly true, but they are not equally
     good: every valuation supporting (c1,~1) also supports (c2,~2),
     and not conversely. (c2,~2) is the best answer. *)
  Printf.printf "\n(c1,~1) ⊴ (c2,~2): %b\n" (Compare.Order.leq db q a b);
  Printf.printf "(c1,~1) ◁ (c2,~2): %b (strictly better)\n"
    (Compare.Order.lt db q a b);
  let best = Compare.Best.best db q in
  print_endline "Best answers:";
  Relation.iter (fun t -> Printf.printf "  %s\n" (Tuple.to_string t)) best;

  (* 7. Under the constraint "customer determines product" the nulls ~1
     and ~2 must be equal, and both candidate answers die: chase the
     database and re-evaluate (Corollary 4). *)
  let fd = { Constraints.Dependency.fd_relation = "R1"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  (match Constraints.Chase.chase [ fd ] db with
  | Constraints.Chase.Failure _ -> assert false
  | Constraints.Chase.Success chased ->
      let after = Incomplete.Naive.answers chased q in
      Printf.printf
        "\nWith FD customer → product, almost certain answers: %s\n"
        (if Relation.is_empty after then "∅ — the likely answers vanish" else "?"));
  print_endline "\n(That is the whole paper in one example.)"
