(* Recursive queries over incomplete data: datalog meets the 0-1 law.

   A network inventory has links whose endpoints are partially unknown
   (unresolved device ids). Reachability is not first-order expressible,
   but Theorem 1 holds for EVERY generic query — so the measure
   machinery applies to a recursive datalog program unchanged. We ask
   which reachability facts are certain, which are almost certain, and
   how likely the uncertain ones are.

   Run with:  dune exec examples/recursive_reachability.exe *)

module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Schema = Relational.Schema
module Program = Datalog.Program
module Generic = Zeroone.Generic
module R = Arith.Rat

let () =
  let schema = Schema.make_with_attrs [ ("Link", [ "from"; "to" ]) ] in
  (* core -> ~1 -> edge ;  core -> gw ;  ~2 -> edge *)
  let d =
    Instance.of_rows schema
      [ ("Link",
         [ [ Value.named "core"; Value.null 1 ];
           [ Value.null 1; Value.named "edge" ];
           [ Value.named "core"; Value.named "gw" ];
           [ Value.null 2; Value.named "edge" ]
         ])
      ]
  in
  print_endline "Network links (with unresolved device ids ~1, ~2):";
  print_endline (Instance.to_string d);

  let program =
    Program.parse_exn schema
      "Reach(x, y) := Link(x, y). Reach(x, z) := Link(x, y), Reach(y, z)."
  in
  print_endline "Recursive program:";
  Format.printf "%a@." Program.pp program;

  let q = Generic.of_datalog schema program ~goal:"Reach" in

  (* 1. Naive evaluation = almost certainly true reachability. *)
  let naive = Generic.naive_answers d q in
  Printf.printf "Almost certainly true reachability facts (%d):\n"
    (Relation.cardinal naive);
  Relation.iter (fun t -> Printf.printf "  %s\n" (Tuple.to_string t)) naive;

  (* 2. Which of them are CERTAIN (true under every resolution)? *)
  print_endline "\nOf these, certain under every resolution of ~1, ~2:";
  Relation.iter
    (fun t ->
      if Generic.is_certain d q t then Printf.printf "  %s\n" (Tuple.to_string t))
    naive;

  (* 3. A fact that is neither certain nor almost certain: gw -> edge
     needs v(~1) = gw or v(~2) = gw. Exactly how unlikely is it? *)
  let t = Tuple.consts [ "gw"; "edge" ] in
  Printf.printf "\nIs gw -> edge reachable?  µ = %s"
    (R.to_string (Generic.mu_symbolic d q t));
  print_endline "  (almost certainly not, but not impossible:)";
  let k0 = Instance.max_constant d in
  List.iter
    (fun i ->
      let k = k0 + i in
      let v = Generic.mu_k d q t ~k in
      Printf.printf "  k = %3d   µ^k = %-10s ≈ %.4f\n" k (R.to_string v)
        (R.to_float v))
    [ 1; 2; 4; 8 ];

  (* 4. The 0-1 law beyond FO, checked exhaustively on this graph. *)
  let violations = ref 0 in
  List.iter
    (fun vals ->
      let t = Tuple.of_list vals in
      let mu = Generic.mu_symbolic d q t in
      let naive_mem = Relation.mem t naive in
      if not ((R.is_zero mu || R.is_one mu) && R.is_one mu = naive_mem) then
        incr violations)
    (Arith.Combinat.tuples (Instance.adom d) 2);
  Printf.printf
    "\n0-1 law checked on all %d candidate pairs: %d violations (Theorem 1 \
     holds for recursive queries too).\n"
    (List.length (Arith.Combinat.tuples (Instance.adom d) 2))
    !violations;
  print_endline "\nDone."
