(* SQL nulls, three-valued logic, and the quality of approximations.

   The paper's closing section (§6) asks two practical questions:
   how do its notions read under SQL's nulls (which follow a 3-valued
   logic, not the marked-null semantics), and how good are the cheap
   approximation schemes that real systems use instead of computing
   certain answers? This example runs both machineries side by side.

   Run with:  dune exec examples/sql_nulls.exe *)

module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Parser = Logic.Parser
module Sql3vl = Logic.Sql3vl
module Naive = Incomplete.Naive
module Certain = Incomplete.Certain
module Approx = Zeroone.Approx
module R = Arith.Rat

let () =
  (* --- Three regimes on one sentence -------------------------------- *)
  let schema = Parser.schema_exn "Emp(name, dept)" in
  let d = Parser.instance_exn schema "Emp = { ('ada', ~1), ('tim', ~1) }" in
  print_endline "Employees with the same (unknown) department:";
  print_endline (Instance.to_string d);
  let same_dept =
    Parser.formula_exn "exists d. Emp('ada', d) & Emp('tim', d)"
  in
  Printf.printf "  'ada and tim share a department'\n";
  Printf.printf "  marked nulls, certain:   %b   (the same ~1 IS the same value)\n"
    (Certain.is_certain_sentence d same_dept);
  Printf.printf "  naive evaluation:        %b\n" (Naive.sentence d same_dept);
  Printf.printf "  SQL 3-valued logic:      %s  (SQL cannot see the repetition)\n"
    (Sql3vl.to_string3 (Sql3vl.sentence_holds d same_dept));

  (* --- Grading approximation schemes with µ ------------------------- *)
  let schema = Parser.schema_exn "R1(c, p); R2(c, p)" in
  let db =
    Parser.instance_exn schema
      "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) };
       R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"
  in
  let q = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)" in
  Printf.printf "\nGrading approximation schemes on the intro example, %s:\n"
    (Logic.Query.to_string q);
  let describe name scheme =
    let r = Approx.evaluate scheme db q in
    Printf.printf
      "  %-22s returned %d | missed certain %d | spurious benign (µ=1) %d | \
       spurious harmful (µ=0) %d\n"
      name
      (Relation.cardinal r.Approx.returned)
      (Relation.cardinal r.Approx.missed)
      (Relation.cardinal r.Approx.spurious_benign)
      (Relation.cardinal r.Approx.spurious_harmful)
  in
  describe "SQL 3VL (True only)" Approx.sql_scheme;
  describe "naive evaluation" (fun d q -> Naive.answers d q);
  describe "naive, null-free" Approx.naive_null_free_scheme;
  print_endline
    "\n  Naive evaluation over-approximates, but every spurious answer is\n\
    \  almost certainly true -- the 0-1 law explains why systems get away\n\
    \  with it (this is the measure-based quality assessment proposed in §6).";

  (* --- SQL's discarded Unknowns are exactly the interesting ones ---- *)
  let maybe = Sql3vl.maybe_answers db q in
  Printf.printf "\nSQL's discarded 'unknown' tuples for Q: %d of them, e.g.:\n"
    (Relation.cardinal maybe);
  List.iteri
    (fun i t -> if i < 4 then Printf.printf "  %s\n" (Tuple.to_string t))
    (Relation.to_list maybe);
  print_endline "\nDone."
