lib/arith/bigint.ml: Array Buffer Format Lazy List Printf Stdlib String
