lib/arith/bigint.mli: Format
