lib/arith/combinat.mli: Bigint
