lib/arith/poly.ml: Array Format List Rat
