lib/arith/poly.mli: Bigint Format Rat
