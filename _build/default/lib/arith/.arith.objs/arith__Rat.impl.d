lib/arith/rat.ml: Bigint Format String
