module B = Bigint

let factorial n =
  if n < 0 then invalid_arg "Combinat.factorial: negative"
  else begin
    let rec go acc i = if i > n then acc else go (B.mul_int acc i) (i + 1) in
    go B.one 2
  end

let falling_factorial n f =
  if f < 0 then invalid_arg "Combinat.falling_factorial: negative length"
  else begin
    let rec go acc i =
      if i >= f then acc else go (B.mul_int acc (n - i)) (i + 1)
    in
    go B.one 0
  end

let binomial n r =
  if r < 0 || r > n then B.zero
  else begin
    let r = min r (n - r) in
    B.div (falling_factorial n r) (factorial r)
  end

let power b n =
  if n < 0 then invalid_arg "Combinat.power: negative exponent"
  else B.pow (B.of_int b) n

let stirling2 n b =
  if n < 0 || b < 0 then B.zero
  else if n = 0 && b = 0 then B.one
  else if n = 0 || b = 0 || b > n then B.zero
  else begin
    (* S(n,b) = b*S(n-1,b) + S(n-1,b-1), by rows. *)
    let prev = Array.make (b + 1) B.zero in
    prev.(0) <- B.one;
    let cur = Array.make (b + 1) B.zero in
    for i = 1 to n do
      cur.(0) <- (if i = 0 then B.one else B.zero);
      for j = 1 to min i b do
        cur.(j) <- B.add (B.mul_int prev.(j) j) prev.(j - 1)
      done;
      for j = min i b + 1 to b do
        cur.(j) <- B.zero
      done;
      Array.blit cur 0 prev 0 (b + 1)
    done;
    prev.(b)
  end

let bell n =
  if n < 0 then invalid_arg "Combinat.bell: negative"
  else begin
    let rec go acc b =
      if b > n then acc else go (B.add acc (stirling2 n b)) (b + 1)
    in
    if n = 0 then B.one else go B.zero 1
  end

let set_partitions elements =
  (* Insert each element in turn either into an existing block or as a
     new singleton block; blocks keep insertion order. *)
  let insert x partition =
    let rec with_each_block prefix = function
      | [] -> []
      | block :: rest ->
          (List.rev_append prefix ((block @ [ x ]) :: rest))
          :: with_each_block (block :: prefix) rest
    in
    with_each_block [] partition @ [ partition @ [ [ x ] ] ]
  in
  List.fold_left
    (fun partitions x -> List.concat_map (insert x) partitions)
    [ [] ] elements

let injective_partial_maps b targets =
  let rec go slot used =
    if slot >= b then [ [] ]
    else begin
      let rest_none = go (slot + 1) used in
      let with_none = List.map (fun tl -> None :: tl) rest_none in
      let with_some =
        List.concat_map
          (fun t ->
            if List.mem t used then []
            else List.map (fun tl -> Some t :: tl) (go (slot + 1) (t :: used)))
          targets
      in
      with_none @ with_some
    end
  in
  List.map Array.of_list (go 0 [])

let tuples dom n =
  let rec go n =
    if n <= 0 then [ [] ]
    else begin
      let rest = go (n - 1) in
      List.concat_map (fun x -> List.map (fun tl -> x :: tl) rest) dom
    end
  in
  go n

let sublists l =
  List.fold_right
    (fun x acc -> List.map (fun s -> x :: s) acc @ acc)
    l [ [] ]

let subsets_upto n l =
  let rec go n l =
    if n <= 0 then [ [] ]
    else
      match l with
      | [] -> [ [] ]
      | x :: rest ->
          List.map (fun s -> x :: s) (go (n - 1) rest) @ go n rest
  in
  go n l

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun (x, rest) -> List.map (fun p -> x :: p) (permutations rest))
        (let rec picks prefix = function
           | [] -> []
           | x :: rest ->
               (x, List.rev_append prefix rest) :: picks (x :: prefix) rest
         in
         picks [] l)

let injections xs ys =
  let rec go xs available =
    match xs with
    | [] -> [ [] ]
    | x :: rest ->
        List.concat_map
          (fun (y, remaining) ->
            List.map (fun assoc -> (x, y) :: assoc) (go rest remaining))
          (let rec picks prefix = function
             | [] -> []
             | y :: more ->
                 (y, List.rev_append prefix more) :: picks (y :: prefix) more
           in
           picks [] available)
  in
  go xs ys

let pairs l =
  List.concat_map
    (fun (i, x) ->
      List.filter_map
        (fun (j, y) -> if i <> j then Some (x, y) else None)
        (List.mapi (fun j y -> (j, y)) l))
    (List.mapi (fun i x -> (i, x)) l)

let range lo hi =
  let rec go acc i = if i < lo then acc else go (i :: acc) (i - 1) in
  go [] hi
