(** Combinatorial counting and enumeration.

    The enumeration functions drive the valuation-equivalence-class
    machinery (set partitions of the nulls of a database, injective
    partial maps of blocks into the anchor set) and the brute-force
    enumeration of [V^k(D)] used to cross-check symbolic results. *)

(** {1 Counting (exact, in {!Bigint})} *)

val factorial : int -> Bigint.t
(** @raise Invalid_argument on negative input. *)

val binomial : int -> int -> Bigint.t
(** [binomial n r]; zero when [r < 0] or [r > n]. *)

val falling_factorial : int -> int -> Bigint.t
(** [falling_factorial n f] is [n·(n−1)···(n−f+1)], the number of
    injective maps from an [f]-set into an [n]-set; [1] when [f = 0];
    [0] when [f > n ≥ 0].
    @raise Invalid_argument if [f < 0]. *)

val power : int -> int -> Bigint.t
(** [power b n] = [b^n] for [n ≥ 0]. @raise Invalid_argument if [n < 0]. *)

val bell : int -> Bigint.t
(** Number of set partitions of an [n]-set.
    @raise Invalid_argument on negative input. *)

val stirling2 : int -> int -> Bigint.t
(** Stirling numbers of the second kind: partitions of an [n]-set into
    exactly [b] blocks. Zero outside the valid range. *)

(** {1 Enumeration} *)

val set_partitions : 'a list -> 'a list list list
(** All set partitions of the given elements (assumed distinct). Each
    partition is a list of non-empty blocks; blocks preserve the input
    order of their elements, and the blocks are ordered by their first
    element's position in the input. [set_partitions [] = [[]]]. *)

val injective_partial_maps : int -> 'a list -> 'a option array list
(** [injective_partial_maps b targets] enumerates all ways to assign to
    each of [b] slots either [None] or [Some t] with [t] drawn from
    [targets] (assumed distinct), such that all [Some] values are
    pairwise distinct. There are [Σ_j C(b,j)·P(|targets|,j)] of them. *)

val tuples : 'a list -> int -> 'a list list
(** [tuples dom n]: all [n]-tuples over [dom] ([|dom|^n] of them). *)

val subsets_upto : int -> 'a list -> 'a list list
(** All sublists of size [≤ n], preserving order. Includes [[]]. *)

val sublists : 'a list -> 'a list list
(** All sublists (the power set), preserving order. *)

val permutations : 'a list -> 'a list list
(** All permutations. Beware the factorial blow-up. *)

val injections : 'a list -> 'b list -> ('a * 'b) list list
(** [injections xs ys]: all injective maps from [xs] into [ys]
    represented as association lists ([P(|ys|,|xs|)] of them; empty
    when [|xs| > |ys|]). *)

val pairs : 'a list -> ('a * 'a) list
(** All ordered pairs of distinct positions, i.e. [(x,y)] with [x]
    before or after [y] in the list, [x ≠ y] positionally. *)

val range : int -> int -> int list
(** [range lo hi] is [[lo; lo+1; …; hi]]; empty if [lo > hi]. *)
