(* Dense representation: [coeffs.(i)] is the coefficient of k^i, with no
   most-significant zero. The zero polynomial is the empty array. *)

type t = Rat.t array

let zero : t = [||]

let normalize (a : Rat.t array) : t =
  let rec top i = if i >= 0 && Rat.is_zero a.(i) then top (i - 1) else i in
  let t = top (Array.length a - 1) in
  if t < 0 then [||]
  else if t = Array.length a - 1 then a
  else Array.sub a 0 (t + 1)

let const c = normalize [| c |]
let const_int n = const (Rat.of_int n)
let one = const Rat.one
let x = normalize [| Rat.zero; Rat.one |]

let of_coeffs l = normalize (Array.of_list l)

let monomial c d =
  if d < 0 then invalid_arg "Poly.monomial: negative degree"
  else if Rat.is_zero c then zero
  else begin
    let a = Array.make (d + 1) Rat.zero in
    a.(d) <- c;
    a
  end

let degree (p : t) = Array.length p - 1
let coeff (p : t) i = if i >= 0 && i < Array.length p then p.(i) else Rat.zero

let leading_coeff (p : t) =
  if Array.length p = 0 then invalid_arg "Poly.leading_coeff: zero polynomial"
  else p.(Array.length p - 1)

let coeffs (p : t) = Array.to_list p
let is_zero (p : t) = Array.length p = 0

let equal (p : t) (q : t) =
  Array.length p = Array.length q
  && begin
       let rec go i =
         i < 0 || (Rat.equal p.(i) q.(i) && go (i - 1))
       in
       go (Array.length p - 1)
     end

let neg (p : t) : t = Array.map Rat.neg p

let add (p : t) (q : t) : t =
  let lp = Array.length p and lq = Array.length q in
  let l = max lp lq in
  normalize
    (Array.init l (fun i ->
         Rat.add
           (if i < lp then p.(i) else Rat.zero)
           (if i < lq then q.(i) else Rat.zero)))

let sub p q = add p (neg q)

let mul (p : t) (q : t) : t =
  if is_zero p || is_zero q then zero
  else begin
    let lp = Array.length p and lq = Array.length q in
    let r = Array.make (lp + lq - 1) Rat.zero in
    for i = 0 to lp - 1 do
      for j = 0 to lq - 1 do
        r.(i + j) <- Rat.add r.(i + j) (Rat.mul p.(i) q.(j))
      done
    done;
    normalize r
  end

let scale c (p : t) : t =
  if Rat.is_zero c then zero else normalize (Array.map (Rat.mul c) p)

let pow p n =
  if n < 0 then invalid_arg "Poly.pow: negative exponent"
  else begin
    let rec go acc b n =
      if n = 0 then acc
      else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
      else go acc (mul b b) (n lsr 1)
    in
    go one p n
  end

let sum = List.fold_left add zero

let falling_factorial ~shift f =
  if f < 0 then invalid_arg "Poly.falling_factorial: negative length"
  else begin
    (* (k - shift)(k - shift - 1)...(k - shift - f + 1) *)
    let rec go acc i =
      if i >= f then acc
      else go (mul acc (of_coeffs [ Rat.of_int (-(shift + i)); Rat.one ])) (i + 1)
    in
    go one 0
  end

let eval (p : t) (v : Rat.t) =
  (* Horner. *)
  let acc = ref Rat.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Rat.add (Rat.mul !acc v) p.(i)
  done;
  !acc

let eval_int p n = eval p (Rat.of_int n)
let eval_bigint p b = eval p (Rat.of_bigint b)

type ratio_limit = Finite of Rat.t | Infinite | Undefined

let limit_ratio p q =
  if is_zero q then Undefined
  else if is_zero p then Finite Rat.zero
  else begin
    let dp = degree p and dq = degree q in
    if dp < dq then Finite Rat.zero
    else if dp > dq then Infinite
    else Finite (Rat.div (leading_coeff p) (leading_coeff q))
  end

let pp fmt (p : t) =
  if is_zero p then Format.pp_print_string fmt "0"
  else begin
    let first = ref true in
    for i = Array.length p - 1 downto 0 do
      let c = p.(i) in
      if not (Rat.is_zero c) then begin
        if !first then begin
          first := false;
          if Rat.sign c < 0 then Format.pp_print_string fmt "-"
        end
        else if Rat.sign c < 0 then Format.pp_print_string fmt " - "
        else Format.pp_print_string fmt " + ";
        let a = Rat.abs c in
        if i = 0 then Rat.pp fmt a
        else begin
          if not (Rat.is_one a) then begin
            Rat.pp fmt a;
            Format.pp_print_string fmt "*"
          end;
          if i = 1 then Format.pp_print_string fmt "k"
          else Format.fprintf fmt "k^%d" i
        end
      end
    done
  end

let to_string p = Format.asprintf "%a" pp p
