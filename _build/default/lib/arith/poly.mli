(** Univariate polynomials over {!Rat}, in the indeterminate [k].

    This is the central object of the proof of Theorem 3 of the paper:
    for a generic Boolean query [q] and database [D], the cardinality
    [|Supp^k(q,D)|] is a polynomial in [k], and limits of ratios of such
    cardinalities are ratios of leading coefficients. The module offers
    exact ring operations, falling factorials, evaluation and the
    limit-of-ratio operation. *)

type t

(** {1 Constants and construction} *)

val zero : t
val one : t

val x : t
(** The indeterminate [k]. *)

val const : Rat.t -> t
val const_int : int -> t

val of_coeffs : Rat.t list -> t
(** [of_coeffs [a0; a1; …]] is [a0 + a1·k + …]. Trailing zeros allowed. *)

val monomial : Rat.t -> int -> t
(** [monomial c d] is [c·k^d]. @raise Invalid_argument if [d < 0]. *)

val falling_factorial : shift:int -> int -> t
(** [falling_factorial ~shift:a f] is the degree-[f] polynomial
    [(k−a)(k−a−1)···(k−a−f+1)] — the number of injective maps from an
    [f]-element set into a [k−a]-element set. [f = 0] yields [one].
    @raise Invalid_argument if [f < 0]. *)

(** {1 Accessors} *)

val degree : t -> int
(** Degree; [-1] for the zero polynomial. *)

val coeff : t -> int -> Rat.t
(** Coefficient of [k^i] (zero beyond the degree). *)

val leading_coeff : t -> Rat.t
(** @raise Invalid_argument on the zero polynomial. *)

val coeffs : t -> Rat.t list
(** Coefficients from degree 0 up, with no trailing zero (empty for 0). *)

val is_zero : t -> bool
val equal : t -> t -> bool

(** {1 Ring operations} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : Rat.t -> t -> t
val pow : t -> int -> t
val sum : t list -> t

(** {1 Evaluation} *)

val eval : t -> Rat.t -> Rat.t
val eval_int : t -> int -> Rat.t
val eval_bigint : t -> Bigint.t -> Rat.t

(** {1 Asymptotics} *)

type ratio_limit =
  | Finite of Rat.t  (** the ratio converges to this rational *)
  | Infinite  (** the ratio grows without bound *)
  | Undefined  (** denominator is the zero polynomial *)

val limit_ratio : t -> t -> ratio_limit
(** [limit_ratio p q] is [lim_{k→∞} p(k)/q(k)]: zero if
    [deg p < deg q], the ratio of leading coefficients if degrees are
    equal, [Infinite] if [deg p > deg q], and [Undefined] if [q = 0].
    (When [p] and [q] have non-negative leading coefficients, as all
    support-counting polynomials do, this is the usual real limit.) *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
