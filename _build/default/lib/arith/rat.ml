(* Canonical rationals: den > 0 and gcd(num, den) = 1. *)

module B = Bigint

type t = { num : B.t; den : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    if B.is_zero num then { num = B.zero; den = B.one }
    else
      let g = B.gcd num den in
      { num = B.div num g; den = B.div den g }
  end

let zero = { num = B.zero; den = B.one }
let one = { num = B.one; den = B.one }
let half = { num = B.one; den = B.two }
let of_int n = { num = B.of_int n; den = B.one }
let of_ints p q = make (B.of_int p) (B.of_int q)
let of_bigint b = { num = b; den = B.one }
let num t = t.num
let den t = t.den
let is_zero t = B.is_zero t.num
let is_one t = B.equal t.num t.den
let is_integer t = B.equal t.den B.one
let sign t = B.sign t.num

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den
     (both denominators positive). *)
  B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let equal a b = B.equal a.num b.num && B.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let neg t = { t with num = B.neg t.num }

let add a b =
  make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (B.mul a.num b.num) (B.mul a.den b.den)

let inv t =
  if is_zero t then raise Division_by_zero else make t.den t.num

let div a b = mul a (inv b)
let abs t = { t with num = B.abs t.num }

let pow t n =
  if n >= 0 then { num = B.pow t.num n; den = B.pow t.den n }
  else inv { num = B.pow t.num (-n); den = B.pow t.den (-n) }

let mul_int t n = make (B.mul_int t.num n) t.den
let div_int t n = make t.num (B.mul_int t.den n)

let to_float t = B.to_float t.num /. B.to_float t.den

let to_string t =
  if is_integer t then B.to_string t.num
  else B.to_string t.num ^ "/" ^ B.to_string t.den

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (B.of_string s)
  | Some i ->
      let p = String.sub s 0 i in
      let q = String.sub s (i + 1) (String.length s - i - 1) in
      make (B.of_string p) (B.of_string q)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end

let pp fmt t = Format.pp_print_string fmt (to_string t)
