(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is strictly
    positive and the numerator and denominator are coprime. All measures
    of certainty in this library ([µ^k], [µ(Q|Σ,D)], …) are values of
    this type — no floating point is used in any computation. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val half : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the canonical form of [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints p q] is [p/q]. @raise Division_by_zero if [q = 0]. *)

val of_bigint : Bigint.t -> t

val of_string : string -> t
(** Parses ["p"], ["p/q"] or ["-p/q"] decimal forms. *)

(** {1 Accessors} *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val to_float : t -> float
(** Approximate, for display only. *)

val to_string : t -> string
(** ["p/q"], or just ["p"] when the denominator is 1. *)

(** {1 Predicates and comparisons} *)

val is_zero : t -> bool
val is_one : t -> bool
val is_integer : t -> bool
val sign : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val abs : t -> t
val pow : t -> int -> t
(** Integer power; negative exponents invert.
    @raise Division_by_zero when raising zero to a negative power. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
