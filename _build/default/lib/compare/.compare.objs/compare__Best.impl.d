lib/compare/best.ml: Arith Incomplete List Logic Order Relational
