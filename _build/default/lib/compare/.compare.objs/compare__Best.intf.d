lib/compare/best.mli: Logic Relational
