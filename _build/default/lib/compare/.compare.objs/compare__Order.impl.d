lib/compare/order.ml: List Sep
