lib/compare/order.mli: Logic Relational
