lib/compare/rank.ml: Best List Logic Order Relational
