lib/compare/rank.mli: Logic Relational
