lib/compare/sep.ml: Incomplete Int List Logic Option Relational
