lib/compare/sep.mli: Incomplete Logic Relational
