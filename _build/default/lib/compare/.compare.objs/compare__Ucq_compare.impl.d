lib/compare/ucq_compare.ml: Arith Incomplete Int List Logic Relational
