lib/compare/ucq_compare.mli: Logic Relational
