module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Query = Logic.Query

let candidates inst q =
  List.map Tuple.of_list
    (Arith.Combinat.tuples (Instance.adom inst) (Query.arity q))

let is_best inst q a =
  not (List.exists (fun b -> Order.lt inst q a b) (candidates inst q))

let best inst q =
  let cands = candidates inst q in
  List.fold_left
    (fun acc a ->
      if List.exists (fun b -> Order.lt inst q a b) cands then acc
      else Relation.add a acc)
    (Relation.empty (Query.arity q))
    cands

let best_mu inst q =
  Relation.filter (fun a -> Incomplete.Naive.tuple_in inst q a) (best inst q)
