(** Best answers: support-maximal candidate tuples (§5).

    [Best(Q,D) = {ā | ¬∃b̄ : ā ◁ b̄}], with [b̄] ranging over all tuples
    of matching arity over the active domain. Unlike certain answers,
    [Best(Q,D)] is never empty on a non-empty database, and when
    certain answers exist they are exactly the best answers. Theorem 7:
    computing it is [P^NP[log n]]-complete for FO queries — here it is
    realized with exponential-in-nulls oracle calls ({!Sep}).

    [Best_µ(Q,D)] (§5.2, Proposition 8) keeps only the best answers
    that are also almost certainly true; by Theorem 1 the [µ = 1] filter
    is naïve evaluation. *)

val best : Relational.Instance.t -> Logic.Query.t -> Relational.Relation.t

val is_best :
  Relational.Instance.t -> Logic.Query.t -> Relational.Tuple.t -> bool
(** Is there no strictly better tuple over the active domain? *)

val best_mu : Relational.Instance.t -> Logic.Query.t -> Relational.Relation.t
(** [Best_µ(Q,D) = Best(Q,D) ∩ {ā | µ(Q,D,ā) = 1}]. *)

val candidates :
  Relational.Instance.t -> Logic.Query.t -> Relational.Tuple.t list
(** The candidate space: all tuples of the query's arity over
    [adom(D)]. *)
