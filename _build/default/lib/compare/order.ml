let leq inst q a b = not (Sep.sep inst q a b)
let lt inst q a b = leq inst q a b && Sep.sep inst q b a
let equiv inst q a b = leq inst q a b && leq inst q b a

let comparison_matrix inst q candidates =
  List.concat_map
    (fun a -> List.map (fun b -> (a, b, leq inst q a b)) candidates)
    candidates
