(** The support orderings [⊴] and [◁] on candidate answers (§5).

    [ā ⊴_{Q,D} b̄] iff [Supp(Q,D,ā) ⊆ Supp(Q,D,b̄)] — [b̄] is at least as
    well supported; [ā ◁ b̄] is the strict version. Theorem 6: for FO
    queries, deciding [⊴] is coNP-complete and [◁] is DP-complete in
    data complexity; the implementations here are exact and exponential
    in the number of nulls. *)

val leq :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Relational.Tuple.t ->
  bool
(** [ā ⊴ b̄], i.e. [¬Sep(ā,b̄)]. *)

val lt :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Relational.Tuple.t ->
  bool
(** [ā ◁ b̄], i.e. [¬Sep(ā,b̄) ∧ Sep(b̄,ā)]. *)

val equiv :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Relational.Tuple.t ->
  bool
(** Equal supports. *)

val comparison_matrix :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t list ->
  (Relational.Tuple.t * Relational.Tuple.t * bool) list
(** All [⊴] facts among the given candidates (for display). *)
