module Relation = Relational.Relation
module Tuple = Relational.Tuple

let strata ?candidates inst q =
  let candidates =
    match candidates with Some c -> c | None -> Best.candidates inst q
  in
  let arity = Logic.Query.arity q in
  (* Repeatedly peel the ◁-maximal layer. Termination: each round
     removes at least one candidate (a finite preorder always has
     maximal elements). *)
  let rec peel remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let maximal, rest =
          List.partition
            (fun a -> not (List.exists (fun b -> Order.lt inst q a b) remaining))
            remaining
        in
        let maximal, rest =
          if maximal = [] then
            (* Cannot happen for a preorder, but never loop forever. *)
            ([ List.hd remaining ], List.tl remaining)
          else (maximal, rest)
        in
        peel rest (Relation.of_list arity maximal :: acc)
  in
  peel candidates []

let top_k ~k inst q =
  let rec take acc = function
    | [] -> List.rev acc
    | stratum :: rest ->
        let acc = List.rev_append (Relation.to_list stratum) acc in
        if List.length acc >= k then List.rev acc else take acc rest
  in
  take [] (strata inst q)

let rank_of inst q tuple =
  let rec go i = function
    | [] -> raise Not_found
    | stratum :: rest -> if Relation.mem tuple stratum then i else go (i + 1) rest
  in
  go 0 (strata inst q)
