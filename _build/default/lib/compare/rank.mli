(** Ranking answers by support (a user-facing refinement of §5).

    The [⊴] preorder compares candidate answers by their sets of
    supporting valuations; [Best(Q,D)] is its top stratum. Iterating —
    remove the best answers, take the best of the rest — stratifies all
    candidates into a ranked list of equivalence layers, which is the
    natural "top-k answers over incomplete data" interface suggested by
    the paper's comparison framework.

    Within a stratum, answers are pairwise [⊴]-maximal among the
    remaining candidates (they may be equivalent or incomparable).
    Candidates with empty support (impossible answers) always form the
    final stratum when present. Cost: quadratically many [Sep] calls,
    each exponential in the number of nulls — same regime as
    Theorem 7. *)

val strata :
  ?candidates:Relational.Tuple.t list ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Relation.t list
(** The full ranking, best stratum first. Candidates default to all
    tuples of matching arity over the active domain. The strata
    partition the candidates. *)

val top_k :
  k:int ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t list
(** At least [k] answers (complete strata are never split), best first;
    fewer only if there are fewer candidates. *)

val rank_of :
  Relational.Instance.t -> Logic.Query.t -> Relational.Tuple.t -> int
(** 0-based stratum index of a tuple among the active-domain
    candidates. @raise Not_found if the tuple is not a candidate. *)
