module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Classes = Incomplete.Classes
module Support = Incomplete.Support

let witness inst q a b =
  if Tuple.arity a <> Query.arity q || Tuple.arity b <> Query.arity q then
    invalid_arg "Sep: tuple arity does not match the query"
  else begin
    let sa = Query.instantiate q a and sb = Query.instantiate q b in
    let anchor_set = Support.anchor_set_sentences inst [ sa; sb ] in
    let nulls =
      List.sort_uniq Int.compare
        (Instance.nulls inst @ Tuple.nulls a @ Tuple.nulls b)
    in
    List.find_map
      (fun cls ->
        let v = Classes.representative ~anchor_set cls in
        if
          Support.sentence_in_support inst sa v
          && not (Support.sentence_in_support inst sb v)
        then Some v
        else None)
      (Classes.enumerate ~anchor_set ~nulls)
  end

let sep inst q a b = Option.is_some (witness inst q a b)
