(** The separation predicate [Sep(Q,D,ā,b̄)] (paper §5).

    [Sep(Q,D,ā,b̄)] holds when [Supp(Q,D,ā) − Supp(Q,D,b̄) ≠ ∅]: some
    valuation witnesses [ā] but not [b̄]. All support comparisons reduce
    to it:
    [ā ⊴ b̄ ⇔ ¬Sep(ā,b̄)] and [ā ◁ b̄ ⇔ ¬Sep(ā,b̄) ∧ Sep(b̄,ā)].

    The generic decision procedure searches the valuation equivalence
    classes (complete by the small-range argument in the proof of
    Theorem 8); it is exact for any query with decidable evaluation but
    exponential in the number of nulls — consistent with Theorem 6's
    coNP/DP-completeness. *)

val sep :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Relational.Tuple.t ->
  bool
(** [sep D Q ā b̄ = Sep(Q,D,ā,b̄)].
    @raise Invalid_argument on arity mismatches. *)

val witness :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Relational.Tuple.t ->
  Incomplete.Valuation.t option
(** A valuation in [Supp(Q,D,ā) − Supp(Q,D,b̄)], if any. *)
