module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Schema = Relational.Schema
module Query = Logic.Query
module Formula = Logic.Formula
module Ucq = Logic.Ucq
module Eval = Logic.Eval
module Valuation = Incomplete.Valuation
module Combinat = Arith.Combinat

(* Apply a valuation where defined, leaving other nulls in place. *)
let apply_partial_value v = function
  | Value.Const _ as c -> c
  | Value.Null n as orig -> (
      match Valuation.find v n with Some c -> Value.const c | None -> orig)

let apply_partial_instance v inst = Instance.map_values (apply_partial_value v) inst
let apply_partial_tuple v t = Tuple.map (apply_partial_value v) t

let facts inst =
  Instance.fold (fun rel tuple acc -> (rel, tuple) :: acc) inst []

let sub_instance schema fact_list =
  List.fold_left
    (fun acc (rel, tuple) -> Instance.add_tuple rel tuple acc)
    (Instance.empty schema) fact_list

let ucq_constants (u : Ucq.t) =
  List.concat_map
    (fun (c : Ucq.cq) ->
      List.concat_map
        (fun (_, ts) ->
          List.filter_map
            (function
              | Formula.Val (Value.Const code) -> Some code
              | Formula.Val (Value.Null _) | Formula.Var _ -> None)
            ts)
        c.Ucq.atoms)
    u.Ucq.disjuncts

let sep inst (u : Ucq.t) a b =
  let q = Ucq.to_query u in
  if Tuple.arity a <> Query.arity q || Tuple.arity b <> Query.arity q then
    invalid_arg "Ucq_compare.sep: tuple arity does not match the query"
  else begin
    let schema = Instance.schema inst in
    let nulls =
      List.sort_uniq Int.compare
        (Instance.nulls inst @ Tuple.nulls a @ Tuple.nulls b)
    in
    let m = List.length nulls in
    let base_consts =
      List.sort_uniq Int.compare
        (Instance.constants inst @ ucq_constants u @ Tuple.constants a
        @ Tuple.constants b)
    in
    let top = List.fold_left max 0 base_consts in
    let fresh = List.init m (fun i -> top + i + 1) in
    let anchor = base_consts @ fresh in
    let bound = Ucq.max_atoms u + Query.arity q in
    let a_components = Tuple.to_list a in
    List.exists
      (fun fact_list ->
        let d' = sub_instance schema fact_list in
        let adom' = Instance.adom d' in
        List.for_all (fun v -> List.exists (Value.equal v) adom') a_components
        && begin
             let nulls' = Instance.nulls d' in
             List.exists
               (fun codes ->
                 let v = Valuation.of_list (List.combine nulls' codes) in
                 let va = apply_partial_tuple v a in
                 let vd' = apply_partial_instance v d' in
                 Eval.tuple_in_answer vd' q va
                 && begin
                      let vb = apply_partial_tuple v b in
                      let vd = apply_partial_instance v inst in
                      not (Eval.tuple_in_answer vd q vb)
                    end)
               (Combinat.tuples anchor (List.length nulls'))
           end)
      (Combinat.subsets_upto bound (facts inst))
  end

let leq inst u a b = not (sep inst u a b)
let lt inst u a b = leq inst u a b && sep inst u b a

let candidates inst (u : Ucq.t) =
  List.map Tuple.of_list
    (Combinat.tuples (Instance.adom inst) (List.length u.Ucq.free))

let best inst u =
  let cands = candidates inst u in
  List.fold_left
    (fun acc a ->
      if List.exists (fun b -> lt inst u a b) cands then acc
      else Relation.add a acc)
    (Relation.empty (List.length u.Ucq.free))
    cands

let best_mu inst u =
  let q = Ucq.to_query u in
  Relation.filter (fun a -> Incomplete.Naive.tuple_in inst q a) (best inst u)
