(** Polynomial-time comparisons for unions of conjunctive queries
    (Theorem 8).

    Naïve evaluation does not help with support comparisons even for
    UCQs (§5.1 gives a counterexample), but the small-witness
    characterisation of Theorem 8 does: [Sep(Q,D,ā,b̄)] holds iff there
    are a sub-database [D' ⊆ D] with at most [p + k] tuples whose active
    domain contains every component of [ā] ([p] = maximal number of
    atoms in a disjunct, [k] = arity), and a valuation [v'] of the nulls
    of [D'] with range in [A = Const(D) ∪ C ∪ A_m] such that
    [v'(ā) ∈ Q(v'(D'))] and [v'(b̄) ∉ Q^naïve(v'(D))].

    For a fixed query this yields polynomial data complexity for
    [⊴]-comparison, [◁]-comparison and [BestAnswer] — in contrast to
    the coNP/DP/[P^NP[log n]]-completeness of the general case
    (experiment E15 demonstrates the gap). Agreement with the generic
    {!Sep} procedure is property-tested. *)

val sep :
  Relational.Instance.t ->
  Logic.Ucq.t ->
  Relational.Tuple.t ->
  Relational.Tuple.t ->
  bool

val leq :
  Relational.Instance.t ->
  Logic.Ucq.t ->
  Relational.Tuple.t ->
  Relational.Tuple.t ->
  bool

val lt :
  Relational.Instance.t ->
  Logic.Ucq.t ->
  Relational.Tuple.t ->
  Relational.Tuple.t ->
  bool

val best : Relational.Instance.t -> Logic.Ucq.t -> Relational.Relation.t

val best_mu : Relational.Instance.t -> Logic.Ucq.t -> Relational.Relation.t
(** Proposition 8 for UCQs: still polynomial time. *)
