lib/constraints/chase.ml: Dependency List Relational
