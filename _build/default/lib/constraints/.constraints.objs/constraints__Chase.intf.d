lib/constraints/chase.mli: Dependency Relational
