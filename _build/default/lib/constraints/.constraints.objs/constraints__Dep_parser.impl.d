lib/constraints/dep_parser.ml: Dependency List Logic Printf Relational
