lib/constraints/dep_parser.mli: Dependency Relational
