lib/constraints/dependency.ml: Format Fun Hashtbl List Logic Printf Relational String
