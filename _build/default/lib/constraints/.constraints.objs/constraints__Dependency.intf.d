lib/constraints/dependency.mli: Format Logic Relational
