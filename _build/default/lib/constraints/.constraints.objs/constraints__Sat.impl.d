lib/constraints/sat.ml: Chase Dependency Hashtbl Incomplete Int List Option Printf Relational Set
