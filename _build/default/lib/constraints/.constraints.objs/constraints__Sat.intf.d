lib/constraints/sat.mli: Dependency Incomplete Relational
