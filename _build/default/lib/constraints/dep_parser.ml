module Schema = Relational.Schema
open Logic.Lexer

exception Parse_error of string

type state = { mutable tokens : token list; schema : Schema.t }

let fail msg = raise (Parse_error msg)
let peek st = match st.tokens with t :: _ -> t | [] -> EOF

let next st =
  match st.tokens with
  | t :: rest ->
      st.tokens <- rest;
      t
  | [] -> EOF

let expect st t =
  let got = next st in
  if got <> t then
    fail
      (Printf.sprintf "expected %s but found %s" (token_to_string t)
         (token_to_string got))

let ident st =
  match next st with
  | IDENT s -> s
  | t -> fail ("expected identifier, found " ^ token_to_string t)

(* A column reference: attribute name or 1-based position. *)
let column st rel =
  match next st with
  | INT i ->
      if i < 1 then fail "column positions are 1-based"
      else begin
        match Schema.arity_opt st.schema rel with
        | Some a when i > a ->
            fail (Printf.sprintf "column %d out of range for %s" i rel)
        | Some _ | None -> i - 1
      end
  | IDENT attr -> (
      try Schema.attr_index st.schema rel attr
      with Not_found ->
        fail (Printf.sprintf "unknown attribute %s of %s" attr rel))
  | t -> fail ("expected a column, found " ^ token_to_string t)

let rec columns st rel =
  let c = column st rel in
  match peek st with
  | COMMA ->
      ignore (next st);
      c :: columns st rel
  | _ -> [ c ]

let check_relation st r =
  if not (Schema.mem r st.schema) then fail ("unknown relation " ^ r)

let bracketed_columns st =
  let r = ident st in
  check_relation st r;
  expect st LBRACKET;
  let cols = columns st r in
  expect st RBRACKET;
  (r, cols)

let declaration st =
  match next st with
  | IDENT "fd" ->
      let r = ident st in
      check_relation st r;
      expect st COLON;
      let lhs = columns st r in
      expect st ARROW;
      let rhs = column st r in
      Dependency.fd r lhs rhs
  | IDENT "key" ->
      let r = ident st in
      check_relation st r;
      expect st COLON;
      let cols = columns st r in
      Dependency.key r cols
  | IDENT "ind" ->
      let src, src_cols = bracketed_columns st in
      expect st LEQ;
      let dst, dst_cols = bracketed_columns st in
      if List.length src_cols <> List.length dst_cols then
        fail "inclusion dependency with mismatched column counts"
      else Dependency.ind src src_cols dst dst_cols
  | IDENT "fk" ->
      let src, src_cols = bracketed_columns st in
      expect st ARROW;
      let dst, dst_cols = bracketed_columns st in
      if List.length src_cols <> List.length dst_cols then
        fail "foreign key with mismatched column counts"
      else Dependency.foreign_key src src_cols dst dst_cols
  | t -> fail ("expected fd/key/ind/fk, found " ^ token_to_string t)

let parse_exn schema input =
  let st = { tokens = tokenize input; schema } in
  let rec go acc =
    match peek st with
    | EOF -> List.rev acc
    | SEMI ->
        ignore (next st);
        go acc
    | _ -> go (declaration st :: acc)
  in
  go []

let parse schema input =
  match parse_exn schema input with
  | cs -> Ok cs
  | exception Parse_error msg -> Error msg
  | exception Lex_error (msg, pos) ->
      Error (Printf.sprintf "%s (at offset %d)" msg pos)
