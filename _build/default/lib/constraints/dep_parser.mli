(** Parser for the constraint surface syntax.

    {v
      fd R : customer -> product
      fd R : a, b -> c
      key U : name
      ind R[product] <= Products[id]     -- or 1-based positions: R[2] <= Products[1]
      fk Orders[customer] -> Customers[id]
    v}

    Declarations are separated by semicolons or newlines; [--]/[#]
    comments run to end of line. Columns may be attribute names (when
    the schema declares them) or 1-based positions. *)

exception Parse_error of string

val parse :
  Relational.Schema.t -> string -> (Dependency.t list, string) result

val parse_exn : Relational.Schema.t -> string -> Dependency.t list
