module Schema = Relational.Schema
module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module F = Logic.Formula

type fd = { fd_relation : string; fd_lhs : int list; fd_rhs : int }

type ind = {
  ind_src : string;
  ind_src_cols : int list;
  ind_dst : string;
  ind_dst_cols : int list;
}

type key = { key_relation : string; key_cols : int list }

type foreign_key = {
  fk_src : string;
  fk_src_cols : int list;
  fk_dst : string;
  fk_dst_cols : int list;
}

type t = Fd of fd | Ind of ind | Key of key | ForeignKey of foreign_key

let fd r lhs rhs = Fd { fd_relation = r; fd_lhs = lhs; fd_rhs = rhs }

let ind src src_cols dst dst_cols =
  if List.length src_cols <> List.length dst_cols then
    invalid_arg "Dependency.ind: column lists of different lengths"
  else
    Ind { ind_src = src; ind_src_cols = src_cols; ind_dst = dst; ind_dst_cols = dst_cols }

let key r cols = Key { key_relation = r; key_cols = cols }

let foreign_key src src_cols dst dst_cols =
  if List.length src_cols <> List.length dst_cols then
    invalid_arg "Dependency.foreign_key: column lists of different lengths"
  else
    ForeignKey
      { fk_src = src; fk_src_cols = src_cols; fk_dst = dst; fk_dst_cols = dst_cols }

let fd_of_attrs schema r lhs rhs =
  fd r (List.map (Schema.attr_index schema r) lhs) (Schema.attr_index schema r rhs)

let key_of_attrs schema r cols = key r (List.map (Schema.attr_index schema r) cols)

(* ------------------------------------------------------------------ *)
(* Compilation to first-order sentences                                 *)
(* ------------------------------------------------------------------ *)

let check_positions what arity positions =
  List.iter
    (fun p ->
      if p < 0 || p >= arity then
        invalid_arg (Printf.sprintf "Dependency.%s: position %d out of range" what p))
    positions

let vars prefix n = List.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let fd_formula schema { fd_relation = r; fd_lhs; fd_rhs } =
  let arity = Schema.arity schema r in
  check_positions "fd" arity (fd_rhs :: fd_lhs);
  let xs = vars "x" arity and ys = vars "y" arity in
  let tx = List.map F.var xs and ty = List.map F.var ys in
  let same_lhs =
    F.conj
      (List.map (fun i -> F.Eq (List.nth tx i, List.nth ty i)) fd_lhs)
  in
  F.forall (xs @ ys)
    (F.Implies
       ( F.conj [ F.Atom (r, tx); F.Atom (r, ty); same_lhs ],
         F.Eq (List.nth tx fd_rhs, List.nth ty fd_rhs) ))

let ind_formula schema { ind_src; ind_src_cols; ind_dst; ind_dst_cols } =
  let sa = Schema.arity schema ind_src and da = Schema.arity schema ind_dst in
  check_positions "ind (source)" sa ind_src_cols;
  check_positions "ind (destination)" da ind_dst_cols;
  let xs = vars "x" sa and ys = vars "y" da in
  let tx = List.map F.var xs and ty = List.map F.var ys in
  let agree =
    F.conj
      (List.map2
         (fun i j -> F.Eq (List.nth tx i, List.nth ty j))
         ind_src_cols ind_dst_cols)
  in
  F.forall xs
    (F.Implies
       (F.Atom (ind_src, tx), F.exists ys (F.And (F.Atom (ind_dst, ty), agree))))

let key_fds schema { key_relation = r; key_cols } =
  let arity = Schema.arity schema r in
  check_positions "key" arity key_cols;
  List.filter_map
    (fun a ->
      if List.mem a key_cols then None
      else Some { fd_relation = r; fd_lhs = key_cols; fd_rhs = a })
    (List.init arity Fun.id)

let rec to_formula schema = function
  | Fd f -> fd_formula schema f
  | Ind i -> ind_formula schema i
  | Key k -> F.conj (List.map (fd_formula schema) (key_fds schema k))
  | ForeignKey fk ->
      F.And
        ( to_formula schema
            (Ind
               { ind_src = fk.fk_src;
                 ind_src_cols = fk.fk_src_cols;
                 ind_dst = fk.fk_dst;
                 ind_dst_cols = fk.fk_dst_cols
               }),
          to_formula schema (Key { key_relation = fk.fk_dst; key_cols = fk.fk_dst_cols }) )

let set_to_formula schema cs = F.conj (List.map (to_formula schema) cs)

(* ------------------------------------------------------------------ *)
(* Direct checks                                                        *)
(* ------------------------------------------------------------------ *)

let project_cols tuple cols = List.map (Tuple.get tuple) cols

let fd_holds inst { fd_relation = r; fd_lhs; fd_rhs } =
  let rel = Instance.relation inst r in
  let seen : (Value.t list, Value.t) Hashtbl.t = Hashtbl.create 16 in
  Relation.for_all
    (fun t ->
      let lhs = project_cols t fd_lhs in
      let rhs = Tuple.get t fd_rhs in
      match Hashtbl.find_opt seen lhs with
      | Some rhs' -> Value.equal rhs rhs'
      | None ->
          Hashtbl.add seen lhs rhs;
          true)
    rel

let ind_holds inst { ind_src; ind_src_cols; ind_dst; ind_dst_cols } =
  let src = Instance.relation inst ind_src in
  let dst = Instance.relation inst ind_dst in
  Relation.for_all
    (fun t ->
      let wanted = project_cols t ind_src_cols in
      Relation.exists
        (fun u ->
          List.for_all2 Value.equal wanted (project_cols u ind_dst_cols))
        dst)
    src

let key_holds inst k =
  (* A key is the conjunction of its FDs on the given instance. *)
  let arity = Relation.arity (Instance.relation inst k.key_relation) in
  List.for_all (fd_holds inst)
    (List.filter_map
       (fun a ->
         if List.mem a k.key_cols then None
         else Some { fd_relation = k.key_relation; fd_lhs = k.key_cols; fd_rhs = a })
       (List.init arity Fun.id))

let rec holds inst = function
  | Fd f -> fd_holds inst f
  | Ind i -> ind_holds inst i
  | Key k -> key_holds inst k
  | ForeignKey fk ->
      holds inst
        (Ind
           { ind_src = fk.fk_src;
             ind_src_cols = fk.fk_src_cols;
             ind_dst = fk.fk_dst;
             ind_dst_cols = fk.fk_dst_cols
           })
      && holds inst (Key { key_relation = fk.fk_dst; key_cols = fk.fk_dst_cols })

let all_hold inst cs = List.for_all (holds inst) cs

let declared_keys cs =
  List.filter_map
    (function
      | Key k -> Some (k.key_relation, k.key_cols)
      | ForeignKey fk -> Some (fk.fk_dst, fk.fk_dst_cols)
      | Fd _ | Ind _ -> None)
    cs

let keys_null_free inst cs =
  List.for_all
    (fun (r, cols) ->
      Relation.for_all
        (fun t -> List.for_all (fun c -> Value.is_const (Tuple.get t c)) cols)
        (Instance.relation inst r))
    (declared_keys cs)

let fds_of_schema schema cs =
  List.concat_map
    (function
      | Fd f -> [ f ]
      | Key k -> key_fds schema k
      | ForeignKey fk ->
          key_fds schema { key_relation = fk.fk_dst; key_cols = fk.fk_dst_cols }
      | Ind _ -> [])
    cs

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let col_name schema r i =
  match schema with
  | Some s -> (
      match Schema.attrs s r with
      | Some attrs -> ( try List.nth attrs i with Failure _ -> string_of_int (i + 1))
      | None -> string_of_int (i + 1))
  | None -> string_of_int (i + 1)

let cols_str schema r cols =
  String.concat ", " (List.map (col_name schema r) cols)

let pp schema fmt = function
  | Fd f ->
      Format.fprintf fmt "fd %s : %s -> %s" f.fd_relation
        (cols_str schema f.fd_relation f.fd_lhs)
        (col_name schema f.fd_relation f.fd_rhs)
  | Ind i ->
      Format.fprintf fmt "ind %s[%s] <= %s[%s]" i.ind_src
        (cols_str schema i.ind_src i.ind_src_cols)
        i.ind_dst
        (cols_str schema i.ind_dst i.ind_dst_cols)
  | Key k ->
      Format.fprintf fmt "key %s : %s" k.key_relation
        (cols_str schema k.key_relation k.key_cols)
  | ForeignKey fk ->
      Format.fprintf fmt "fk %s[%s] -> %s[%s]" fk.fk_src
        (cols_str schema fk.fk_src fk.fk_src_cols)
        fk.fk_dst
        (cols_str schema fk.fk_dst fk.fk_dst_cols)

let to_string ?schema c = Format.asprintf "%a" (pp schema) c
