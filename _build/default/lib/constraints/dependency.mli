(** Integrity constraints: functional dependencies, inclusion
    dependencies, keys and foreign keys (paper §4).

    Every constraint compiles to a first-order sentence, so a set [Σ] of
    constraints is a generic Boolean query as the paper requires. Keys
    carry, in addition to their functional dependency, the RDBMS-style
    requirement that key attributes of the {e incomplete} database hold
    no nulls (paper §4.3: "attributes declared as keys cannot be
    nulls"); that part is a syntactic condition on [D] itself, checked
    by {!keys_null_free}, not part of the compiled sentence. *)

type fd = {
  fd_relation : string;
  fd_lhs : int list;  (** 0-based determining positions [X] *)
  fd_rhs : int;  (** 0-based determined position [A] *)
}

type ind = {
  ind_src : string;
  ind_src_cols : int list;
  ind_dst : string;
  ind_dst_cols : int list;  (** [π_src_cols(src) ⊆ π_dst_cols(dst)] *)
}

type key = { key_relation : string; key_cols : int list }

type foreign_key = {
  fk_src : string;
  fk_src_cols : int list;
  fk_dst : string;
  fk_dst_cols : int list;  (** which must be a key of [fk_dst] *)
}

type t =
  | Fd of fd
  | Ind of ind
  | Key of key
  | ForeignKey of foreign_key

(** {1 Constructors} *)

val fd : string -> int list -> int -> t
val ind : string -> int list -> string -> int list -> t
(** @raise Invalid_argument if the column lists have different
    lengths. *)

val key : string -> int list -> t
val foreign_key : string -> int list -> string -> int list -> t

val fd_of_attrs : Relational.Schema.t -> string -> string list -> string -> t
(** FD by attribute names. @raise Not_found for unknown attributes. *)

val key_of_attrs : Relational.Schema.t -> string -> string list -> t

(** {1 Semantics} *)

val to_formula : Relational.Schema.t -> t -> Logic.Formula.t
(** The FO sentence asserting the constraint (a key contributes its
    functional dependencies; its null-freeness is {e not} part of the
    sentence — see the module preamble).
    @raise Invalid_argument on positions out of range. *)

val set_to_formula : Relational.Schema.t -> t list -> Logic.Formula.t
(** The conjunction of all constraint sentences ([True] for []). *)

val holds : Relational.Instance.t -> t -> bool
(** Direct structural check on a (typically complete) instance, without
    going through FO evaluation; agreement with {!to_formula} on
    complete instances is a test. On incomplete instances this checks
    the naïve reading (nulls as themselves). *)

val all_hold : Relational.Instance.t -> t list -> bool

val keys_null_free : Relational.Instance.t -> t list -> bool
(** Does the incomplete database put constants in every position
    declared key (directly or as a foreign-key target)? *)

val fds_of_schema : Relational.Schema.t -> t list -> fd list
(** All FDs contributed by a constraint set: explicit FDs, plus for
    every key (and foreign-key target) on relation [R] with columns
    [X], the FDs [X → A] for every other position [A] of [R]. *)

val pp : Relational.Schema.t option -> Format.formatter -> t -> unit
val to_string : ?schema:Relational.Schema.t -> t -> string
