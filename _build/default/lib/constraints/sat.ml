module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Valuation = Incomplete.Valuation

type verdict = Satisfiable of Valuation.t | Unsatisfiable of string

let validate_unary cs =
  List.iter
    (function
      | Dependency.Key { Dependency.key_cols = [ _ ]; _ } -> ()
      | Dependency.ForeignKey
          { Dependency.fk_src_cols = [ _ ]; fk_dst_cols = [ _ ]; _ } ->
          ()
      | _ ->
          invalid_arg
            "Sat.unary_keys_fks: constraint set must contain only unary keys \
             and unary foreign keys")
    cs

module ISet = Set.Make (Int)

let unary_keys_fks schema cs inst =
  validate_unary cs;
  if not (Dependency.keys_null_free inst cs) then
    Unsatisfiable "a declared key column contains a null"
  else begin
    match Chase.chase_constraints schema cs inst with
    | Chase.Failure (fd, _, _) ->
        Unsatisfiable
          (Printf.sprintf
             "two tuples of %s share a key value but clash on a constant column"
             fd.Dependency.fd_relation)
    | Chase.Success chased -> begin
        (* Collect, for every null, the intersection of the target key
           value sets it must fall into; check constants directly. *)
        let fks =
          List.filter_map
            (function
              | Dependency.ForeignKey fk -> Some fk
              | Dependency.Key _ | Dependency.Fd _ | Dependency.Ind _ -> None)
            cs
        in
        let exception Unsat of string in
        try
          let demands : (int, ISet.t) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun fk ->
              let src_col = List.hd fk.Dependency.fk_src_cols in
              let dst_col = List.hd fk.Dependency.fk_dst_cols in
              let targets =
                Relation.fold
                  (fun t acc ->
                    match Tuple.get t dst_col with
                    | Value.Const c -> ISet.add c acc
                    | Value.Null _ -> acc (* excluded by null-free check *))
                  (Instance.relation chased fk.Dependency.fk_dst)
                  ISet.empty
              in
              Relation.iter
                (fun t ->
                  match Tuple.get t src_col with
                  | Value.Const c ->
                      if not (ISet.mem c targets) then
                        raise
                          (Unsat
                             (Printf.sprintf
                                "constant %s of %s has no key match in %s"
                                (Relational.Names.to_string c)
                                fk.Dependency.fk_src fk.Dependency.fk_dst))
                  | Value.Null n ->
                      let current =
                        Option.value ~default:targets (Hashtbl.find_opt demands n)
                      in
                      Hashtbl.replace demands n (ISet.inter current targets))
                (Instance.relation chased fk.Dependency.fk_src))
            fks;
          (* Build a witnessing valuation: constrained nulls take any
             element of their demand set; free nulls take fresh codes. *)
          let fresh = ref (Instance.max_constant chased) in
          let assignment =
            List.map
              (fun n ->
                match Hashtbl.find_opt demands n with
                | Some set -> (
                    match ISet.min_elt_opt set with
                    | Some c -> (n, c)
                    | None ->
                        raise
                          (Unsat
                             (Printf.sprintf
                                "null ~%d has no admissible foreign-key target"
                                n)))
                | None ->
                    incr fresh;
                    (n, !fresh))
              (Instance.nulls chased)
          in
          Satisfiable (Valuation.of_list assignment)
        with Unsat reason -> Unsatisfiable reason
      end
  end

let satisfiable_generic schema cs inst =
  Dependency.keys_null_free inst cs
  && Incomplete.Certain.is_possible_sentence inst
       (Dependency.set_to_formula schema cs)
