(** Satisfiability of constraints in an incomplete database.

    [Σ] is {e satisfiable in D} when [v(D) ⊨ Σ] for at least one
    valuation [v]. In general this is intractable (it encodes the
    complement of homomorphism problems), but Proposition 6 of the paper
    gives a polynomial-time procedure for {e unary keys and foreign
    keys} under the RDBMS reading (key attributes of [D] are not null):

    + check that every declared key column of [D] is null-free;
    + chase [D] with the key FDs — a constant/constant clash means two
      tuples share a key value but can never be merged: unsatisfiable;
    + after the chase, key uniqueness holds for {e every} valuation
      (tuples sharing a key value have been merged), so only the
      foreign-key inclusions remain: each source-column entry must land
      in the (fixed, null-free) set of target key values — a constant
      must already be there; a null must have a non-empty intersection
      of the target value sets over all foreign keys constraining it.

    The generic fallback {!satisfiable_generic} decides satisfiability
    for arbitrary generic constraint sentences by the valuation-class
    search (exponential in the number of nulls). *)

type verdict =
  | Satisfiable of Incomplete.Valuation.t
      (** a witnessing valuation for the nulls of the chased database,
          extended arbitrarily to merged nulls *)
  | Unsatisfiable of string  (** human-readable reason *)

val unary_keys_fks : Relational.Schema.t -> Dependency.t list ->
  Relational.Instance.t -> verdict
(** The Proposition 6 polynomial-time procedure.
    @raise Invalid_argument if the constraint set contains anything
    other than unary keys and unary foreign keys. *)

val satisfiable_generic :
  Relational.Schema.t -> Dependency.t list -> Relational.Instance.t -> bool
(** Is there a valuation [v] with [v(D) ⊨ Σ] (and keys null-free)?
    Exact, exponential in the number of nulls. *)
