lib/core/alt_measure.ml: Arith Incomplete Int List Logic Relational Set
