lib/core/alt_measure.mli: Arith Logic Relational
