lib/core/approx.ml: Arith Incomplete Logic Relational
