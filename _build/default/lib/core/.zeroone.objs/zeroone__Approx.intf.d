lib/core/approx.mli: Arith Logic Relational
