lib/core/conditional.ml: Arith Constraints Incomplete Int List Logic Relational Support_poly
