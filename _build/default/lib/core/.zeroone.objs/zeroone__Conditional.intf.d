lib/core/conditional.mli: Arith Constraints Logic Relational
