lib/core/constructions.ml: Arith Constraints List Logic Relational
