lib/core/constructions.mli: Arith Constraints Logic Relational
