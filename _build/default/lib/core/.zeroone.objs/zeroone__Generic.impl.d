lib/core/generic.ml: Arith Datalog Incomplete Int List Logic Relational
