lib/core/generic.mli: Arith Datalog Incomplete Logic Relational
