lib/core/measure.ml: Arith Format Incomplete Logic Relational Support_poly
