lib/core/measure.mli: Arith Format Logic Relational
