lib/core/owa.ml: Arith Incomplete List Logic Printf Relational Set
