lib/core/owa.mli: Arith Logic Relational
