lib/core/support_poly.ml: Arith Incomplete Int List Logic Relational
