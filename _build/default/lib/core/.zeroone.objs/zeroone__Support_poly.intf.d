lib/core/support_poly.mli: Arith Incomplete Logic Relational
