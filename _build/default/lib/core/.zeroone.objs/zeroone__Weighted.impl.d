lib/core/weighted.ml: Arith Incomplete Int List Logic Relational
