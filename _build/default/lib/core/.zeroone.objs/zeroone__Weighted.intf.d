lib/core/weighted.mli: Arith Logic Relational
