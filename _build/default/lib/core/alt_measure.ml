module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Enumerate = Incomplete.Enumerate
module Support = Incomplete.Support
module Valuation = Incomplete.Valuation
module Rat = Arith.Rat

(* The measure counts distinct v(D); but for non-Boolean queries the
   witnessed object is the pair (v(D), v(ā)) collapsed on v(D) only, per
   equation (1) of the paper: |{v(D) | v ∈ Supp^k(Q,D,ā)}|. Note the
   same v(D) can arise both from supporting and non-supporting
   valuations; it is counted in the numerator as soon as one supporting
   valuation produces it. *)

module DSet = Set.Make (Instance)

let sets inst q tuple ~k =
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)
  in
  Enumerate.fold_valuations ~nulls ~k
    (fun (num, den) v ->
      let image = Valuation.instance v inst in
      let den = DSet.add image den in
      let num =
        if Support.in_support inst q tuple v then DSet.add image num else num
      in
      (num, den))
    (DSet.empty, DSet.empty)

let m_k inst q tuple ~k =
  let num, den = sets inst q tuple ~k in
  if DSet.is_empty den then Rat.zero
  else Rat.of_ints (DSet.cardinal num) (DSet.cardinal den)

let m_k_boolean inst q ~k =
  if Query.arity q <> 0 then invalid_arg "Alt_measure.m_k_boolean: query not Boolean"
  else m_k inst q Tuple.empty ~k

let m_k_series inst q tuple ~ks = List.map (fun k -> (k, m_k inst q tuple ~k)) ks

let semantics_size inst ~k =
  let nulls = Instance.nulls inst in
  let worlds =
    Enumerate.fold_valuations ~nulls ~k
      (fun acc v -> DSet.add (Valuation.instance v inst) acc)
      DSet.empty
  in
  DSet.cardinal worlds
