(** The alternative, instance-counting measure [m^k] (paper §3.3).

    Instead of counting valuations, [m^k] counts the distinct complete
    databases they produce:
    [m^k(Q,D,ā) = |{v(D) | v ∈ Supp^k(Q,D,ā)}| / |{v(D) | v ∈ V^k(D)}|].
    These numerators and denominators genuinely differ from the
    valuation counts (different valuations may produce the same
    instance), yet Theorem 2 shows the limits coincide:
    [m(Q,D,ā) = µ(Q,D,ā)]. This module computes [m^k] by brute-force
    enumeration so the theorem can be checked empirically (experiment
    E3). *)

val m_k :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Arith.Rat.t
(** [m^k(Q,D,ā)]. Enumerates the [k^m] valuations; intended for small
    instances. By convention 0 when the semantics is empty. *)

val m_k_boolean :
  Relational.Instance.t -> Logic.Query.t -> k:int -> Arith.Rat.t

val m_k_series :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  ks:int list ->
  (int * Arith.Rat.t) list

val semantics_size : Relational.Instance.t -> k:int -> int
(** [|[[D]]^k|]: the number of distinct complete databases representable
    with the first [k] constants. *)
