module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Query = Logic.Query
module Rat = Arith.Rat

type scheme = Instance.t -> Query.t -> Relation.t

let sql_scheme inst q = Logic.Sql3vl.answers inst q

let naive_null_free_scheme inst q =
  Relation.filter
    (fun t -> not (Tuple.has_null t))
    (Incomplete.Naive.answers inst q)

type report = {
  certain : Relation.t;
  returned : Relation.t;
  missed : Relation.t;
  spurious_benign : Relation.t;
  spurious_harmful : Relation.t;
}

let evaluate scheme inst q =
  let certain = Incomplete.Certain.certain_answers inst q in
  let returned = scheme inst q in
  let spurious = Relation.diff returned certain in
  let benign, harmful =
    Relation.fold
      (fun t (benign, harmful) ->
        if Incomplete.Naive.tuple_in inst q t then (Relation.add t benign, harmful)
        else (benign, Relation.add t harmful))
      spurious
      (Relation.empty (Query.arity q), Relation.empty (Query.arity q))
  in
  { certain;
    returned;
    missed = Relation.diff certain returned;
    spurious_benign = benign;
    spurious_harmful = harmful
  }

let sound r =
  Relation.is_empty r.spurious_benign && Relation.is_empty r.spurious_harmful

let complete r = Relation.is_empty r.missed

let recall r =
  if Relation.is_empty r.certain then Rat.one
  else
    Rat.of_ints
      (Relation.cardinal (Relation.inter r.certain r.returned))
      (Relation.cardinal r.certain)

let precision r =
  if Relation.is_empty r.returned then Rat.one
  else
    Rat.of_ints
      (Relation.cardinal (Relation.inter r.certain r.returned))
      (Relation.cardinal r.returned)
