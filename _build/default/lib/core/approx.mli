(** Quality of certain-answer approximations (paper §6, "Quality of
    Approximations").

    Computing certain answers is intractable for relational algebra, so
    practical systems run cheap {e approximation schemes} — e.g. SQL's
    three-valued evaluation, or naïve evaluation restricted to
    null-free tuples. The paper proposes using the measure [µ] to
    quantify how good such schemes are: answers an approximation misses
    and answers it wrongly returns can each be classified by their
    likelihood. This module implements that proposal:

    - {b missed}: certain answers the scheme fails to return
      (completeness defects — each has [µ = 1] by definition);
    - {b spurious} returns split by the 0–1 law into {e benign}
      ([µ = 1]: not certain, but almost certainly true — a user would
      usually be happy to see them) and {e harmful} ([µ = 0]: almost
      certainly false).

    Two classic schemes are provided: SQL 3VL evaluation
    ({!sql_scheme}) and null-free naïve evaluation
    ({!naive_null_free_scheme}). *)

type scheme =
  Relational.Instance.t -> Logic.Query.t -> Relational.Relation.t

val sql_scheme : scheme
(** SQL's WHERE semantics: tuples whose condition is 3VL-[True]. *)

val naive_null_free_scheme : scheme
(** Naïve evaluation restricted to null-free tuples. *)

type report = {
  certain : Relational.Relation.t;
  returned : Relational.Relation.t;  (** what the scheme produced *)
  missed : Relational.Relation.t;  (** certain ∖ returned *)
  spurious_benign : Relational.Relation.t;
      (** returned ∖ certain with [µ = 1] *)
  spurious_harmful : Relational.Relation.t;
      (** returned ∖ certain with [µ = 0] *)
}

val evaluate : scheme -> Relational.Instance.t -> Logic.Query.t -> report
(** Exact comparison against the certain answers (exponential in the
    number of nulls — this is an offline quality-assessment tool). *)

val sound : report -> bool
(** No spurious answers at all ([returned ⊆ certain]). *)

val complete : report -> bool
(** Nothing missed ([certain ⊆ returned]). *)

val recall : report -> Arith.Rat.t
(** [|certain ∩ returned| / |certain|]; 1 when there are no certain
    answers. *)

val precision : report -> Arith.Rat.t
(** [|certain ∩ returned| / |returned|]; 1 when nothing is returned. *)
