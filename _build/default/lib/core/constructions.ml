module Instance = Relational.Instance
module Schema = Relational.Schema
module Tuple = Relational.Tuple
module Value = Relational.Value
module F = Logic.Formula
module Query = Logic.Query
module Dependency = Constraints.Dependency
module Rat = Arith.Rat

let num i = Value.named (string_of_int i)

type rational_witness = {
  rw_instance : Instance.t;
  rw_schema : Schema.t;
  rw_sigma : F.t;
  rw_deps : Dependency.t list;
  rw_query : Query.t;
  rw_expected : Rat.t;
}

let rational_witness ~p ~r =
  if p <= 0 || p > r then
    invalid_arg "Constructions.rational_witness: need 0 < p <= r"
  else begin
    let schema = Schema.make [ ("R", 2); ("S", 2); ("U", 1) ] in
    let diag = List.init (p - 1) (fun i -> [ num (i + 1); num (i + 1) ]) in
    let inst =
      Instance.of_rows schema
        [ ("R", diag @ [ [ Value.null 0; num p ] ]);
          ("S", [ [ Value.null 0; Value.null 0 ] ]);
          ("U", List.init r (fun i -> [ num (i + 1) ]))
        ]
    in
    let deps = [ Dependency.ind "R" [ 0 ] "U" [ 0 ] ] in
    let sigma = Dependency.set_to_formula schema deps in
    let query =
      Query.boolean
        (F.exists [ "x"; "y" ]
           (F.And
              ( F.Atom ("R", [ F.var "x"; F.var "y" ]),
                F.Atom ("S", [ F.var "x"; F.var "y" ]) )))
    in
    { rw_instance = inst;
      rw_schema = schema;
      rw_sigma = sigma;
      rw_deps = deps;
      rw_query = query;
      rw_expected = Rat.of_ints p r
    }
  end

type section4_example = {
  s4_instance : Instance.t;
  s4_schema : Schema.t;
  s4_sigma : F.t;
  s4_query : Query.t;
  s4_tuple_third : Tuple.t;
  s4_tuple_two_thirds : Tuple.t;
}

let section4_example () =
  let schema = Schema.make [ ("R", 2); ("U", 1) ] in
  let inst =
    Instance.of_rows schema
      [ ("R", [ [ num 2; num 1 ]; [ Value.null 0; Value.null 0 ] ]);
        ("U", [ [ num 1 ]; [ num 2 ]; [ num 3 ] ])
      ]
  in
  let sigma =
    Dependency.set_to_formula schema [ Dependency.ind "R" [ 0 ] "U" [ 0 ] ]
  in
  let query = Query.make [ "x"; "y" ] (F.Atom ("R", [ F.var "x"; F.var "y" ])) in
  { s4_instance = inst;
    s4_schema = schema;
    s4_sigma = sigma;
    s4_query = query;
    s4_tuple_third = Tuple.of_list [ num 1; Value.null 0 ];
    s4_tuple_two_thirds = Tuple.of_list [ num 2; Value.null 0 ]
  }

type naive_breaks = {
  nb_instance : Instance.t;
  nb_schema : Schema.t;
  nb_sigma : F.t;
  nb_query : Query.t;
}

let naive_breaks () =
  let schema = Schema.make [ ("R", 1); ("S", 1); ("U", 1); ("V", 1) ] in
  let inst =
    Instance.of_rows schema
      [ ("R", [ [ Value.null 0 ] ]);
        ("S", [ [ Value.null 1 ] ]);
        ("U", [ [ Value.null 0 ] ]);
        ("V", [ [ num 1 ] ])
      ]
  in
  let sigma =
    Dependency.set_to_formula schema
      [ Dependency.ind "R" [ 0 ] "V" [ 0 ]; Dependency.ind "S" [ 0 ] "V" [ 0 ] ]
  in
  let query =
    Query.boolean
      (F.Forall
         ( "x",
           F.Implies
             ( F.Atom ("U", [ F.var "x" ]),
               F.And (F.Atom ("R", [ F.var "x" ]), F.Not (F.Atom ("S", [ F.var "x" ])))
             ) ))
  in
  { nb_instance = inst; nb_schema = schema; nb_sigma = sigma; nb_query = query }

type owa_witness = {
  ow_instance : Instance.t;
  ow_schema : Schema.t;
  ow_q1 : Query.t;
  ow_q2 : Query.t;
}

let owa_witness () =
  let schema = Schema.make [ ("U", 1) ] in
  let inst = Instance.empty schema in
  let q1 = Query.boolean ~name:"Q1" (F.Not (F.Exists ("x", F.Atom ("U", [ F.var "x" ])))) in
  let q2 = Query.boolean ~name:"Q2" (F.Exists ("x", F.Atom ("U", [ F.var "x" ]))) in
  { ow_instance = inst; ow_schema = schema; ow_q1 = q1; ow_q2 = q2 }

type orthogonality_witness = {
  og_base_instance : Instance.t;
  og_base_query : Query.t;
  og_ext_instance : Instance.t;
  og_ext_query : Query.t;
  og_schema : Schema.t;
  og_a : Tuple.t;
  og_b : Tuple.t;
  og_g : Tuple.t;
}

let orthogonality_witness () =
  let schema = Schema.make [ ("A", 1); ("B", 1); ("G", 1); ("R", 2) ] in
  let a = Value.named "a" and b = Value.named "b" and g = Value.named "g" in
  let base =
    Instance.of_rows schema
      [ ("A", [ [ a ] ]);
        ("B", [ [ b ] ]);
        ("R", [ [ Value.null 0; Value.null 1 ] ])
      ]
  in
  let ext = Instance.of_rows (Instance.schema base) [ ("G", [ [ g ] ]) ] in
  let ext = Instance.union base ext in
  let loop = F.Exists ("y", F.Atom ("R", [ F.var "y"; F.var "y" ])) in
  let q_body =
    F.Or
      ( F.And (F.Atom ("B", [ F.var "x" ]), loop),
        F.And (F.Atom ("A", [ F.var "x" ]), F.Not loop) )
  in
  let q = Query.make ~name:"Q" [ "x" ] q_body in
  let q' = Query.make ~name:"Q'" [ "x" ] (F.Or (F.Atom ("G", [ F.var "x" ]), q_body)) in
  { og_base_instance = base;
    og_base_query = q;
    og_ext_instance = ext;
    og_ext_query = q';
    og_schema = schema;
    og_a = Tuple.of_list [ a ];
    og_b = Tuple.of_list [ b ];
    og_g = Tuple.of_list [ g ]
  }
