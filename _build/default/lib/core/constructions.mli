(** The paper's witness constructions, packaged as generators.

    Each function builds the exact database/constraints/query used in
    the corresponding proof, so the claimed values can be recomputed and
    asserted (tests) and printed (benchmark experiments). *)

(** Proposition 4: for every rational [s = p/r ∈ (0,1]] there are [D],
    a single inclusion dependency [Σ] and a Boolean conjunctive query
    [Q] with [µ(Q|Σ,D) = s]. *)
type rational_witness = {
  rw_instance : Relational.Instance.t;
  rw_schema : Relational.Schema.t;
  rw_sigma : Logic.Formula.t;
  rw_deps : Constraints.Dependency.t list;
  rw_query : Logic.Query.t;
  rw_expected : Arith.Rat.t;
}

val rational_witness : p:int -> r:int -> rational_witness
(** @raise Invalid_argument unless [0 < p ≤ r]. *)

(** The worked example of §4 (conditional probabilities 1/3 and 2/3):
    [R = {(2,1),(⊥,⊥)}], [U = {1,2,3}], [Σ : π₁(R) ⊆ U], [Q] returns
    [R]. *)
type section4_example = {
  s4_instance : Relational.Instance.t;
  s4_schema : Relational.Schema.t;
  s4_sigma : Logic.Formula.t;
  s4_query : Logic.Query.t;
  s4_tuple_third : Relational.Tuple.t;  (** [(1,⊥)], measure 1/3 *)
  s4_tuple_two_thirds : Relational.Tuple.t;  (** [(2,⊥)], measure 2/3 *)
}

val section4_example : unit -> section4_example

(** The §4.3 example where constraints break the naïve-evaluation
    connection: [R={⊥}, S={⊥'}, U={⊥}, V={1}], [Σ: R ⊆ V, S ⊆ V],
    [Q = ∀x U(x) → (R(x) ∧ ¬S(x))]: both [Q] and [Σ → Q] are naïvely
    true but [µ(Q|Σ,D) = 0]. *)
type naive_breaks = {
  nb_instance : Relational.Instance.t;
  nb_schema : Relational.Schema.t;
  nb_sigma : Logic.Formula.t;
  nb_query : Logic.Query.t;
}

val naive_breaks : unit -> naive_breaks

(** Proposition 2 (open world): [D] with one empty unary relation [U];
    [Q1 = ¬∃x U(x)] is naïvely true with [owa-m = 0], and [Q2 = ∃x U(x)]
    is naïvely false with [owa-m = 1]. *)
type owa_witness = {
  ow_instance : Relational.Instance.t;
  ow_schema : Relational.Schema.t;
  ow_q1 : Logic.Query.t;
  ow_q2 : Logic.Query.t;
}

val owa_witness : unit -> owa_witness

(** Proposition 7: all four combinations of best/non-best ×
    almost-certainly-true/false are realizable. The base database has
    [A = {a}], [B = {b}], [R = {(⊥,⊥')}] and
    [Q(x) = (B(x) ∧ ∃y R(y,y)) ∨ (A(x) ∧ ¬∃y R(y,y))]; the extension
    adds [G = {g}] and [Q'(x) = G(x) ∨ Q(x)]. *)
type orthogonality_witness = {
  og_base_instance : Relational.Instance.t;
  og_base_query : Logic.Query.t;
  og_ext_instance : Relational.Instance.t;
  og_ext_query : Logic.Query.t;
  og_schema : Relational.Schema.t;
  og_a : Relational.Tuple.t;  (** best, µ = 1 (base); non-best, µ = 1 (ext) *)
  og_b : Relational.Tuple.t;  (** best, µ = 0 (base); non-best, µ = 0 (ext) *)
  og_g : Relational.Tuple.t;  (** the only best answer of the extension *)
}

val orthogonality_witness : unit -> orthogonality_witness
