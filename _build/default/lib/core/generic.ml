module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Query = Logic.Query
module Classes = Incomplete.Classes
module Valuation = Incomplete.Valuation
module Enumerate = Incomplete.Enumerate
module Poly = Arith.Poly
module Rat = Arith.Rat
module B = Arith.Bigint

type t = {
  name : string;
  arity : int;
  constants : int list;
  eval : Instance.t -> Relation.t;
}

let of_fo q =
  { name = q.Query.name;
    arity = Query.arity q;
    constants = Query.constants q;
    eval = (fun inst -> Logic.Eval.answers inst q)
  }

let of_ra schema e =
  let q = Logic.Ra.to_query schema e in
  { (of_fo q) with name = Logic.Ra.to_string e }

let of_datalog schema program ~goal =
  (match Datalog.Program.well_formed schema program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generic.of_datalog: " ^ msg));
  let arity =
    match List.assoc_opt goal (Datalog.Program.idb_predicates program) with
    | Some a -> Some a
    | None -> Schema.arity_opt schema goal
  in
  match arity with
  | None -> invalid_arg ("Generic.of_datalog: unknown goal " ^ goal)
  | Some arity ->
      { name = "datalog:" ^ goal;
        arity;
        constants = Datalog.Program.constants program;
        eval = (fun inst -> Datalog.Program.query inst program goal)
      }

let naive_answers inst q = q.eval inst

let in_support inst q tuple v =
  if Tuple.arity tuple <> q.arity then
    invalid_arg "Generic.in_support: arity mismatch"
  else begin
    let complete = Valuation.instance v inst in
    Relation.mem (Valuation.tuple v tuple) (q.eval complete)
  end

let anchor_and_nulls inst q tuple =
  let anchor_set =
    List.sort_uniq Int.compare
      (q.constants @ Instance.constants inst @ Tuple.constants tuple)
  in
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)
  in
  (anchor_set, nulls)

let mu_k inst q tuple ~k =
  let _, nulls = anchor_and_nulls inst q tuple in
  let total = Enumerate.count ~nulls ~k in
  if B.is_zero total then Rat.zero
  else begin
    let supporting =
      Enumerate.fold_valuations ~nulls ~k
        (fun acc v -> if in_support inst q tuple v then B.succ acc else acc)
        B.zero
    in
    Rat.make supporting total
  end

let support_poly inst q tuple =
  let anchor_set, nulls = anchor_and_nulls inst q tuple in
  List.fold_left
    (fun acc cls ->
      let v = Classes.representative ~anchor_set cls in
      if in_support inst q tuple v then
        Poly.add acc (Classes.count_poly ~anchor_set cls)
      else acc)
    Poly.zero
    (Classes.enumerate ~anchor_set ~nulls)

let mu_symbolic inst q tuple =
  let _, nulls = anchor_and_nulls inst q tuple in
  let p = support_poly inst q tuple in
  match Poly.limit_ratio p (Poly.pow Poly.x (List.length nulls)) with
  | Poly.Finite r -> r
  | Poly.Infinite | Poly.Undefined -> assert false

let is_certain inst q tuple =
  let anchor_set, nulls = anchor_and_nulls inst q tuple in
  List.for_all
    (fun cls -> in_support inst q tuple (Classes.representative ~anchor_set cls))
    (Classes.enumerate ~anchor_set ~nulls)
