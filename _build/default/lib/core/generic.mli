(** Measures for arbitrary generic queries.

    Theorem 1 is stated for {e every} generic query — anything that
    commutes with permutations of the constants fixing a finite set [C]
    — not just first-order ones. This module packages a query as a pair
    (evaluation function, genericity constants) and runs the full
    measure machinery on it: naïve evaluation, brute-force [µ^k], the
    symbolic measure, and the 0–1-law check. Datalog programs (with
    recursion, hence beyond FO) are the motivating instance; experiment
    E24 verifies the 0–1 law on transitive closure over incomplete
    graphs.

    {b Caller's obligation}: [eval] must be [C]-generic for the declared
    [constants] (true for any logic-defined query, for datalog programs,
    for relational algebra plans, …). Genericity is what makes class
    representatives decisive; it cannot be checked mechanically here. *)

type t = {
  name : string;
  arity : int;
  constants : int list;  (** the genericity set [C] *)
  eval : Relational.Instance.t -> Relational.Relation.t;
}

val of_fo : Logic.Query.t -> t
val of_ra : Relational.Schema.t -> Logic.Ra.t -> t
val of_datalog : Relational.Schema.t -> Datalog.Program.t -> goal:string -> t
(** The query returning the [goal] predicate of the program's fixpoint.
    @raise Invalid_argument if the program is ill-formed for the schema
    or the goal is not one of its predicates. *)

val naive_answers : Relational.Instance.t -> t -> Relational.Relation.t
(** Evaluation on the incomplete instance itself — naïve evaluation. *)

val in_support :
  Relational.Instance.t ->
  t ->
  Relational.Tuple.t ->
  Incomplete.Valuation.t ->
  bool
(** [v(ā) ∈ Q(v(D))]. *)

val mu_k :
  Relational.Instance.t -> t -> Relational.Tuple.t -> k:int -> Arith.Rat.t

val mu_symbolic :
  Relational.Instance.t -> t -> Relational.Tuple.t -> Arith.Rat.t
(** The limit measure via the class machinery; by Theorem 1 it is 0 or
    1 and coincides with naïve evaluation — for datalog too. *)

val is_certain :
  Relational.Instance.t -> t -> Relational.Tuple.t -> bool
(** Exact certainty over valuation classes (exponential in nulls). *)
