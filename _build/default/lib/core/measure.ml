module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Query = Logic.Query
module Naive = Incomplete.Naive
module Support = Incomplete.Support
module Poly = Arith.Poly
module Rat = Arith.Rat

type verdict = Almost_certainly_true | Almost_certainly_false

let mu inst q tuple =
  if Naive.tuple_in inst q tuple then Almost_certainly_true
  else Almost_certainly_false

let mu_boolean inst q =
  if Query.arity q <> 0 then invalid_arg "Measure.mu_boolean: query not Boolean"
  else mu inst q Tuple.empty

let mu_symbolic inst q tuple =
  let sp = Support_poly.of_sentences inst [ Query.instantiate q tuple ] in
  match sp.Support_poly.polys with
  | [ p ] -> (
      match Poly.limit_ratio p sp.Support_poly.total with
      | Poly.Finite r -> r
      | Poly.Infinite ->
          (* impossible: |Supp^k| ≤ |V^k| = k^m *)
          assert false
      | Poly.Undefined ->
          (* m = 0 never yields a zero total (k^0 = 1) *)
          assert false)
  | _ -> assert false

let to_rat = function
  | Almost_certainly_true -> Rat.one
  | Almost_certainly_false -> Rat.zero

let is_almost_certainly_true = function
  | Almost_certainly_true -> true
  | Almost_certainly_false -> false

let almost_certain_answers inst q = Naive.answers inst q
let mu_k_series inst q tuple ~ks = Support.mu_k_series inst q tuple ~ks

let pp_verdict fmt = function
  | Almost_certainly_true -> Format.pp_print_string fmt "almost certainly true"
  | Almost_certainly_false -> Format.pp_print_string fmt "almost certainly false"
