(** The measure of certainty [µ(Q,D,ā)] and the 0–1 law (Theorem 1).

    [µ(Q,D,ā) = lim_k µ^k(Q,D,ā)] always exists and is 0 or 1 for
    generic queries, and equals 1 exactly when naïve evaluation returns
    the tuple. Two independent computations are provided:

    - {!mu}: via Theorem 1 — evaluate naïvely (linear in the cost of
      query evaluation; this is the paper's Corollary 2);
    - {!mu_symbolic}: via the support polynomial — the limit of
      [|Supp^k| / k^m] as a ratio of polynomials.

    Their agreement on every instance {e is} the 0–1 law; the test
    suite and benchmark E2 exercise it. *)

type verdict =
  | Almost_certainly_true  (** [µ = 1] *)
  | Almost_certainly_false  (** [µ = 0] *)

val mu :
  Relational.Instance.t -> Logic.Query.t -> Relational.Tuple.t -> verdict
(** Theorem 1: [µ = 1] iff [ā ∈ Q^naïve(D)]. *)

val mu_boolean : Relational.Instance.t -> Logic.Query.t -> verdict

val mu_symbolic :
  Relational.Instance.t -> Logic.Query.t -> Relational.Tuple.t -> Arith.Rat.t
(** [lim_k |Supp^k(Q,D,ā)| / k^m] computed from the support polynomial.
    The 0–1 law asserts this is 0 or 1 and matches {!mu}. *)

val to_rat : verdict -> Arith.Rat.t
val is_almost_certainly_true : verdict -> bool

val almost_certain_answers :
  Relational.Instance.t -> Logic.Query.t -> Relational.Relation.t
(** The almost-certainly-true answers — by Theorem 1, exactly
    [Q^naïve(D)]. *)

val mu_k_series :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  ks:int list ->
  (int * Arith.Rat.t) list
(** Brute-force [µ^k] samples (re-exported from
    {!Incomplete.Support.mu_k_series} for convenience). *)

val pp_verdict : Format.formatter -> verdict -> unit
