module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Schema = Relational.Schema
module Query = Logic.Query
module Eval = Logic.Eval
module Enumerate = Incomplete.Enumerate
module Valuation = Incomplete.Valuation
module Combinat = Arith.Combinat
module Rat = Arith.Rat

module DSet = Set.Make (Instance)

let tuple_space schema k =
  List.fold_left
    (fun acc r -> acc + int_of_float (float_of_int k ** float_of_int (Schema.arity schema r)))
    0 (Schema.relations schema)

(* All complete instances over constants {1..k}. *)
let all_complete_instances schema k =
  let domain = List.map Value.const (Combinat.range 1 k) in
  let relation_choices r =
    let arity = Schema.arity schema r in
    let tuples = List.map Tuple.of_list (Combinat.tuples domain arity) in
    List.map (Relation.of_list arity) (Combinat.sublists tuples)
  in
  List.fold_left
    (fun insts r ->
      List.concat_map
        (fun inst ->
          List.map (fun rel -> Instance.set_relation r rel inst) (relation_choices r))
        insts)
    [ Instance.empty schema ]
    (Schema.relations schema)

let minimal_worlds inst k =
  (* The images v(D) for v ∈ V^k(D); an owa member must contain one. *)
  Enumerate.fold_valuations ~nulls:(Instance.nulls inst) ~k
    (fun acc v -> DSet.add (Valuation.instance v inst) acc)
    DSet.empty

let contains_some_world worlds e =
  DSet.exists
    (fun w ->
      List.for_all
        (fun r ->
          Relation.subset (Instance.relation w r) (Instance.relation e r))
        (Schema.relations (Instance.schema w)))
    worlds

let owa_semantics_k inst ~k =
  let schema = Instance.schema inst in
  let worlds = minimal_worlds inst k in
  List.filter (contains_some_world worlds) (all_complete_instances schema k)

let owa_m_k ?(max_tuple_space = 20) inst q ~k =
  if Query.arity q <> 0 then invalid_arg "Owa.owa_m_k: query not Boolean"
  else begin
    let schema = Instance.schema inst in
    if tuple_space schema k > max_tuple_space then
      invalid_arg
        (Printf.sprintf
           "Owa.owa_m_k: tuple space %d exceeds the limit %d — owa enumeration \
            is doubly exponential"
           (tuple_space schema k) max_tuple_space)
    else if List.exists (fun c -> c > k) (Instance.constants inst) then
      invalid_arg "Owa.owa_m_k: k smaller than a constant of the database"
    else begin
      let members = owa_semantics_k inst ~k in
      let satisfying =
        List.length
          (List.filter (fun e -> Eval.boolean_answer e q) members)
      in
      match members with
      | [] -> Rat.zero
      | _ -> Rat.of_ints satisfying (List.length members)
    end
  end

let owa_m_k_series ?max_tuple_space inst q ~ks =
  List.map (fun k -> (k, owa_m_k ?max_tuple_space inst q ~k)) ks
