(** Open-world measure (paper §3.4, Proposition 2).

    Under open-world semantics,
    [[D]]_owa = {v(D) ∪ D' | v a valuation, D' finite and complete};
    restricting to active domains inside [{c1..ck}] gives the finite
    family over which [owa-m^k(Q,D)] is the fraction of members
    satisfying [Q]. Proposition 2 shows the connection with naïve
    evaluation breaks down: a query can be naïvely true yet have
    [owa-m = 0], and vice versa.

    Enumeration is doubly exponential in nature ([2^(Σ k^arity)]
    candidate databases); {!owa_m_k} guards against blow-up and is meant
    for the small instances of the paper's examples (experiment E4). *)

val owa_m_k :
  ?max_tuple_space:int ->
  Relational.Instance.t ->
  Logic.Query.t ->
  k:int ->
  Arith.Rat.t
(** [owa-m^k(Q,D)] for a Boolean query.
    @raise Invalid_argument if the query is not Boolean, or if the
    total tuple space [Σ_R k^arity(R)] exceeds [max_tuple_space]
    (default 20), or if [k] is smaller than a constant of [D]. *)

val owa_m_k_series :
  ?max_tuple_space:int ->
  Relational.Instance.t ->
  Logic.Query.t ->
  ks:int list ->
  (int * Arith.Rat.t) list

val owa_semantics_k :
  Relational.Instance.t -> k:int -> Relational.Instance.t list
(** The finite family [[D]]_owa^k itself (for inspection and tests). *)
