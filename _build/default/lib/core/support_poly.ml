module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Formula = Logic.Formula
module Classes = Incomplete.Classes
module Support = Incomplete.Support
module Poly = Arith.Poly

type t = {
  anchor_set : int list;
  nulls : int list;
  polys : Poly.t list;
  total : Poly.t;
}

let of_predicates ~anchor_set ~nulls inst predicates =
  let classes = Classes.enumerate ~anchor_set ~nulls in
  let polys =
    List.fold_left
      (fun acc cls ->
        let v = Classes.representative ~anchor_set cls in
        let complete = Incomplete.Valuation.instance v inst in
        let weight = Classes.count_poly ~anchor_set cls in
        List.map2
          (fun p predicate ->
            if predicate v complete then Poly.add p weight else p)
          acc predicates)
      (List.map (fun _ -> Poly.zero) predicates)
      classes
  in
  { anchor_set; nulls; polys; total = Poly.pow Poly.x (List.length nulls) }

let of_sentences inst sentences =
  let anchor_set = Support.anchor_set_sentences inst sentences in
  let nulls =
    List.sort_uniq Int.compare
      (Instance.nulls inst @ List.concat_map Formula.nulls sentences)
  in
  let classes = Classes.enumerate ~anchor_set ~nulls in
  let polys =
    List.fold_left
      (fun acc cls ->
        let v = Classes.representative ~anchor_set cls in
        let weight = Classes.count_poly ~anchor_set cls in
        List.map2
          (fun p sentence ->
            if Support.sentence_in_support inst sentence v then
              Poly.add p weight
            else p)
          acc sentences)
      (List.map (fun _ -> Poly.zero) sentences)
      classes
  in
  { anchor_set;
    nulls;
    polys;
    total = Poly.pow Poly.x (List.length nulls)
  }

let of_sentence inst sentence =
  match (of_sentences inst [ sentence ]).polys with
  | [ p ] -> p
  | _ -> assert false

let of_query inst q tuple = of_sentence inst (Query.instantiate q tuple)

let mu_k_exact t ~sentence ~k =
  let p = List.nth t.polys sentence in
  let total = Poly.eval_int t.total k in
  if Arith.Rat.is_zero total then Arith.Rat.zero
  else Arith.Rat.div (Poly.eval_int p k) total
