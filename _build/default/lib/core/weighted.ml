module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Enumerate = Incomplete.Enumerate
module Support = Incomplete.Support
module Valuation = Incomplete.Valuation
module Rat = Arith.Rat

type scheme = k:int -> int -> Rat.t

let uniform ~k:_ _ = Rat.one

let geometric ~ratio ~k:_ code = Rat.pow ratio code

let zipf ~k:_ code = Rat.of_ints 1 code

let favourite ~code ~weight ~k:_ c = if c = code then weight else Rat.one

let valuation_weight scheme ~k v =
  List.fold_left
    (fun acc (_, code) -> Rat.mul acc (scheme ~k code))
    Rat.one (Valuation.bindings v)

let mu_k scheme inst q tuple ~k =
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)
  in
  (* total mass = W^m with W = Σ_{i≤k} w(i); accumulate supporting mass
     valuation by valuation. *)
  let total_per_null =
    List.fold_left
      (fun acc code -> Rat.add acc (scheme ~k code))
      Rat.zero
      (Arith.Combinat.range 1 k)
  in
  if Rat.is_zero total_per_null || Rat.sign total_per_null < 0 then
    invalid_arg "Weighted.mu_k: weights must be positive"
  else begin
    let supporting =
      Enumerate.fold_valuations ~nulls ~k
        (fun acc v ->
          if Support.in_support inst q tuple v then
            Rat.add acc (valuation_weight scheme ~k v)
          else acc)
        Rat.zero
    in
    Rat.div supporting (Rat.pow total_per_null (List.length nulls))
  end

let mu_k_boolean scheme inst q ~k =
  if Query.arity q <> 0 then
    invalid_arg "Weighted.mu_k_boolean: query not Boolean"
  else mu_k scheme inst q Tuple.empty ~k

let mu_k_series scheme inst q tuple ~ks =
  List.map (fun k -> (k, mu_k scheme inst q tuple ~k)) ks
