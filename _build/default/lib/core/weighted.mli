(** Non-uniform distributions over valuations (paper §6, "Other
    distributions" and "Preferences").

    The paper's measure draws the value of each null uniformly from
    [{c1..ck}] and lists non-uniform distributions as future work. This
    module implements the natural generalisation: a {e weight scheme}
    assigns each constant code a positive rational weight (possibly
    depending on [k]); nulls draw values independently with probability
    proportional to the weights, and

    [µ_w^k(Q,D,ā) = Σ {Π_nulls w(v(⊥))/W_k | v ∈ Supp^k(Q,D,ā)}].

    With uniform weights this is exactly [µ^k] (a property test). With
    skewed weights the 0–1 law can fail: e.g. putting half the total
    mass on one constant forever makes "the two nulls collide" have
    limit ≥ 1/4 even though its uniform measure is 0 — the experiment
    E21 exhibits this, quantifying the paper's remark that other
    distributions genuinely change the theory. *)

type scheme = k:int -> int -> Arith.Rat.t
(** [scheme ~k code] is the (unnormalized) weight of constant [code]
    when drawing from [{c1..ck}]; must be positive for [1 ≤ code ≤ k].
    Normalization is handled internally. *)

val uniform : scheme
val geometric : ratio:Arith.Rat.t -> scheme
(** [geometric ~ratio ~k i = ratio^i]; with [ratio < 1] most of the
    mass sits on small codes independently of [k]. *)

val zipf : scheme
(** Weight [1/i] for code [i]. *)

val favourite : code:int -> weight:Arith.Rat.t -> scheme
(** [favourite ~code ~weight]: constant [code] gets [weight], everyone
    else gets 1 — a crude model of a preferred interpretation. *)

val mu_k :
  scheme ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Arith.Rat.t
(** Weighted measure by enumeration of [V^k(D)] (exact; exponential in
    the number of nulls). *)

val mu_k_boolean :
  scheme -> Relational.Instance.t -> Logic.Query.t -> k:int -> Arith.Rat.t

val mu_k_series :
  scheme ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  ks:int list ->
  (int * Arith.Rat.t) list
