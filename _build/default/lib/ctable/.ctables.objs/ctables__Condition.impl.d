lib/ctable/condition.ml: Format Incomplete Int List Relational
