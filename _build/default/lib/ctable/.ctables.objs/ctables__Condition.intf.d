lib/ctable/condition.mli: Format Incomplete Relational
