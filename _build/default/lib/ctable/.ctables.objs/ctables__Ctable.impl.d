lib/ctable/ctable.ml: Arith Condition Format Incomplete Int List Logic Relational
