lib/ctable/ctable.mli: Condition Format Incomplete Logic Relational
