module Value = Relational.Value
module Valuation = Incomplete.Valuation

type t =
  | True
  | False
  | Eq of Value.t * Value.t
  | Not of t
  | And of t * t
  | Or of t * t

let eq a b =
  match (a, b) with
  | Value.Const x, Value.Const y -> if x = y then True else False
  | _, _ -> if Value.equal a b then True else Eq (a, b)

let neq a b = match eq a b with True -> False | False -> True | c -> Not c

let conj = function
  | [] -> True
  | c :: rest -> List.fold_left (fun acc d -> And (acc, d)) c rest

let disj = function
  | [] -> False
  | c :: rest -> List.fold_left (fun acc d -> Or (acc, d)) c rest

let rec simplify = function
  | True -> True
  | False -> False
  | Eq (a, b) -> eq a b
  | Not c -> (
      match simplify c with
      | True -> False
      | False -> True
      | Not d -> d
      | c -> Not c)
  | And (c, d) -> (
      match (simplify c, simplify d) with
      | False, _ | _, False -> False
      | True, d -> d
      | c, True -> c
      | c, d -> And (c, d))
  | Or (c, d) -> (
      match (simplify c, simplify d) with
      | True, _ | _, True -> True
      | False, d -> d
      | c, False -> c
      | c, d -> Or (c, d))

let rec eval v = function
  | True -> true
  | False -> false
  | Eq (a, b) -> Value.equal (Valuation.value v a) (Valuation.value v b)
  | Not c -> not (eval v c)
  | And (c, d) -> eval v c && eval v d
  | Or (c, d) -> eval v c || eval v d

let rec fold_values f acc = function
  | True | False -> acc
  | Eq (a, b) -> f (f acc a) b
  | Not c -> fold_values f acc c
  | And (c, d) | Or (c, d) -> fold_values f (fold_values f acc c) d

let nulls c =
  fold_values
    (fun acc v -> match Value.null_id v with Some n -> n :: acc | None -> acc)
    [] c
  |> List.sort_uniq Int.compare

let constants c =
  fold_values
    (fun acc v -> match Value.const_code v with Some x -> x :: acc | None -> acc)
    [] c
  |> List.sort_uniq Int.compare

let satisfiable c =
  let ns = nulls c in
  let cs = constants c in
  (* mentioned constants plus one fresh value per null suffice: any
     model can be renamed into this range without changing truth. *)
  let base = List.fold_left max 0 cs in
  let domain = cs @ List.mapi (fun i _ -> base + i + 1) ns in
  let rec search assigned = function
    | [] -> eval (Valuation.of_list assigned) c
    | n :: rest ->
        List.exists (fun d -> search ((n, d) :: assigned) rest) domain
  in
  if domain = [] then eval Valuation.empty c else search [] ns

let valid c = not (satisfiable (Not c))

let equal (a : t) (b : t) = a = b

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Eq (a, b) -> Format.fprintf fmt "%s = %s" (Value.to_string a) (Value.to_string b)
  | Not (Eq (a, b)) ->
      Format.fprintf fmt "%s != %s" (Value.to_string a) (Value.to_string b)
  | Not c -> Format.fprintf fmt "!(%a)" pp c
  | And (c, d) -> Format.fprintf fmt "(%a & %a)" pp c pp d
  | Or (c, d) -> Format.fprintf fmt "(%a | %a)" pp c pp d

let to_string c = Format.asprintf "%a" pp c
