(** Conditions for conditional tables.

    Boolean combinations of (in)equalities between values (constants
    and nulls), attached to c-table rows. Under a valuation every
    condition evaluates to a Boolean; no three-valued reading here —
    c-tables quantify over valuations, they do not propagate unknowns. *)

type t =
  | True
  | False
  | Eq of Relational.Value.t * Relational.Value.t
  | Not of t
  | And of t * t
  | Or of t * t

val eq : Relational.Value.t -> Relational.Value.t -> t
(** Simplifies on the spot when both sides are constants or identical. *)

val neq : Relational.Value.t -> Relational.Value.t -> t
val conj : t list -> t
val disj : t list -> t

val simplify : t -> t
(** Constant folding; no complete minimization. *)

val eval : Incomplete.Valuation.t -> t -> bool
(** @raise Invalid_argument when an unassigned null occurs. *)

val nulls : t -> int list
(** Null ids mentioned, sorted, deduplicated. *)

val constants : t -> int list

val satisfiable : t -> bool
(** Is some valuation of the mentioned nulls a model? Decided by
    enumerating valuations over the mentioned constants plus enough
    fresh ones (exponential in the number of nulls in the condition —
    conditions are small). *)

val valid : t -> bool
(** True under every valuation. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
