module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Instance = Relational.Instance
module Valuation = Incomplete.Valuation
module Ra = Logic.Ra

type row = { tuple : Tuple.t; cond : Condition.t }
type t = { arity : int; table_rows : row list }

let make arity rows =
  List.iter
    (fun r ->
      if Tuple.arity r.tuple <> arity then
        invalid_arg "Ctable.make: row arity mismatch")
    rows;
  { arity;
    table_rows =
      List.filter_map
        (fun r ->
          let cond = Condition.simplify r.cond in
          if Condition.satisfiable cond then Some { r with cond } else None)
        rows
  }

let arity t = t.arity
let rows t = t.table_rows

let of_relation rel =
  make (Relation.arity rel)
    (List.map
       (fun tuple -> { tuple; cond = Condition.True })
       (Relation.to_list rel))

let of_instance_relation inst name = of_relation (Instance.relation inst name)

let instantiate v t =
  List.fold_left
    (fun acc r ->
      if Condition.eval v r.cond then Relation.add (Valuation.tuple v r.tuple) acc
      else acc)
    (Relation.empty t.arity) t.table_rows

let nulls t =
  List.concat_map
    (fun r -> Tuple.nulls r.tuple @ Condition.nulls r.cond)
    t.table_rows
  |> List.sort_uniq Int.compare

let constants t =
  List.concat_map
    (fun r -> Tuple.constants r.tuple @ Condition.constants r.cond)
    t.table_rows
  |> List.sort_uniq Int.compare

(* ------------------------------------------------------------------ *)
(* Relational algebra (the Imieliński–Lipski closure construction)      *)
(* ------------------------------------------------------------------ *)

let rec pred_condition tuple = function
  | Ra.Eq_col (i, j) -> Condition.eq (Tuple.get tuple i) (Tuple.get tuple j)
  | Ra.Eq_const (i, v) -> Condition.eq (Tuple.get tuple i) v
  | Ra.Neq_col (i, j) -> Condition.neq (Tuple.get tuple i) (Tuple.get tuple j)
  | Ra.Neq_const (i, v) -> Condition.neq (Tuple.get tuple i) v
  | Ra.And_p (p, q) ->
      Condition.And (pred_condition tuple p, pred_condition tuple q)
  | Ra.Or_p (p, q) ->
      Condition.Or (pred_condition tuple p, pred_condition tuple q)

let tuples_equal_condition u w =
  Condition.conj
    (List.map2 Condition.eq (Tuple.to_list u) (Tuple.to_list w))

let eval inst e =
  (match Ra.well_formed (Instance.schema inst) e with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ctable.eval: " ^ msg));
  let rec go = function
    | Ra.Rel r -> of_instance_relation inst r
    | Ra.Select (p, e1) ->
        let t1 = go e1 in
        make t1.arity
          (List.map
             (fun r ->
               { r with cond = Condition.And (r.cond, pred_condition r.tuple p) })
             t1.table_rows)
    | Ra.Project (cols, e1) ->
        let t1 = go e1 in
        make (List.length cols)
          (List.map
             (fun r ->
               { r with
                 tuple = Tuple.of_list (List.map (Tuple.get r.tuple) cols)
               })
             t1.table_rows)
    | Ra.Product (e1, e2) ->
        let t1 = go e1 and t2 = go e2 in
        make (t1.arity + t2.arity)
          (List.concat_map
             (fun r1 ->
               List.map
                 (fun r2 ->
                   { tuple =
                       Tuple.of_list (Tuple.to_list r1.tuple @ Tuple.to_list r2.tuple);
                     cond = Condition.And (r1.cond, r2.cond)
                   })
                 t2.table_rows)
             t1.table_rows)
    | Ra.Union (e1, e2) ->
        let t1 = go e1 and t2 = go e2 in
        make t1.arity (t1.table_rows @ t2.table_rows)
    | Ra.Diff (e1, e2) ->
        let t1 = go e1 and t2 = go e2 in
        make t1.arity
          (List.map
             (fun r1 ->
               let killers =
                 List.map
                   (fun r2 ->
                     Condition.Not
                       (Condition.And
                          (r2.cond, tuples_equal_condition r1.tuple r2.tuple)))
                   t2.table_rows
               in
               { r1 with cond = Condition.conj (r1.cond :: killers) })
             t1.table_rows)
  in
  go e

(* ------------------------------------------------------------------ *)
(* Certainty                                                            *)
(* ------------------------------------------------------------------ *)

let possible_tuples t =
  List.fold_left
    (fun acc r -> Relation.add r.tuple acc)
    (Relation.empty t.arity) t.table_rows

let certain_tuples t =
  let consts = List.map Value.const (constants t) in
  let candidates =
    List.map Tuple.of_list (Arith.Combinat.tuples consts t.arity)
  in
  List.fold_left
    (fun acc cand ->
      let covering =
        Condition.disj
          (List.map
             (fun r ->
               Condition.And (r.cond, tuples_equal_condition r.tuple cand))
             t.table_rows)
      in
      if Condition.valid covering then Relation.add cand acc else acc)
    (Relation.empty t.arity) candidates

let pp fmt t =
  Format.fprintf fmt "c-table (arity %d):@." t.arity;
  List.iter
    (fun r ->
      Format.fprintf fmt "  %s  if  %s@." (Tuple.to_string r.tuple)
        (Condition.to_string r.cond))
    t.table_rows
