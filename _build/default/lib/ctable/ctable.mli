(** Conditional tables (c-tables) — Imieliński & Lipski's representation
    system (the paper's reference [27]).

    A c-table is a finite set of rows, each a tuple over
    [Const ∪ Null] guarded by a {!Condition.t}; under a valuation [v]
    it denotes the relation containing [v(t̄)] for every row whose
    condition is true under [v]. The fundamental theorem is {e closure
    under relational algebra}: for every RA expression [e] over c-tables
    [T] there is a c-table [eval T e] with
    [instantiate v (eval T e) = Ra.eval (instantiate v T) e] for every
    valuation — including difference, which ordinary naïve tables cannot
    represent. {!eval} implements the classical construction and the
    test suite property-checks the theorem against possible-world
    enumeration.

    In this reproduction c-tables complement the measure machinery: they
    {e represent} query answers exactly, while the paper's measures
    {e grade} them; [certain_tuples]/[possible_tuples] tie the two
    views together. *)

type row = { tuple : Relational.Tuple.t; cond : Condition.t }
type t

val make : int -> row list -> t
(** @raise Invalid_argument on arity mismatches. *)

val arity : t -> int
val rows : t -> row list
(** Rows with unsatisfiable conditions are dropped at construction;
    otherwise order and multiplicity are preserved (set collapse
    happens at instantiation). *)

val of_relation : Relational.Relation.t -> t
(** Every tuple guarded by [True] — a naïve table. *)

val of_instance_relation : Relational.Instance.t -> string -> t

val instantiate : Incomplete.Valuation.t -> t -> Relational.Relation.t
(** The denoted relation under one valuation.
    @raise Invalid_argument if a null is unassigned. *)

val nulls : t -> int list
val constants : t -> int list

(** {1 Relational algebra on c-tables} *)

val eval : Relational.Instance.t -> Logic.Ra.t -> t
(** Evaluates an RA plan over the c-tables of the given (incomplete)
    instance — base relations become naïve-style c-tables whose tuples
    may contain nulls — using the closure construction: selections move
    into conditions, difference guards each left row with the negated
    match conditions of every right row.
    @raise Invalid_argument on ill-formed plans. *)

(** {1 Certainty} *)

val certain_tuples : t -> Relational.Relation.t
(** Null-free tuples denoted under {e every} valuation: tuples [t̄]
    such that the disjunction of the conditions of rows matching [t̄]
    is valid. (Exponential in condition nulls; rows' own nulls make a
    tuple non-certain here only when no constant row covers it.) *)

val possible_tuples : t -> Relational.Relation.t
(** Tuples (possibly with nulls) whose row condition is satisfiable. *)

val pp : Format.formatter -> t -> unit
