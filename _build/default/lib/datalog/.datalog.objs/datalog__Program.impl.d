lib/datalog/program.ml: Format Int List Logic Printf Relational Result String
