lib/datalog/program.mli: Format Logic Relational
