module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module F = Logic.Formula

type atom = { pred : string; args : F.term list }
type rule = { head : atom; body : atom list }
type t = { rules : rule list }

let atom pred args = { pred; args }
let rule head body = { head; body }
let make rules = { rules }

let all_atoms t =
  List.concat_map (fun r -> r.head :: r.body) t.rules

let idb_predicates t =
  let heads =
    List.map (fun r -> (r.head.pred, List.length r.head.args)) t.rules
  in
  let sorted = List.sort_uniq compare heads in
  let names = List.map fst sorted in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Datalog: an IDB predicate is used with two arities"
  else sorted

let constants t =
  List.concat_map
    (fun a ->
      List.filter_map
        (function
          | F.Val (Value.Const c) -> Some c
          | F.Val (Value.Null _) | F.Var _ -> None)
        a.args)
    (all_atoms t)
  |> List.sort_uniq Int.compare

let atom_vars a =
  List.filter_map (function F.Var x -> Some x | F.Val _ -> None) a.args

let well_formed schema t =
  let idb =
    match idb_predicates t with
    | preds -> Ok preds
    | exception Invalid_argument msg -> Error msg
  in
  Result.bind idb (fun idb ->
      let arity_of pred =
        match List.assoc_opt pred idb with
        | Some a -> Some a
        | None -> Schema.arity_opt schema pred
      in
      let check_rule r =
        let head_vars = atom_vars r.head in
        let body_vars = List.concat_map atom_vars r.body in
        if List.exists (fun p -> Schema.mem p schema) (List.map fst idb) then
          Error "an IDB predicate redefines an EDB relation"
        else if List.exists (fun v -> not (List.mem v body_vars)) head_vars
        then
          Error
            (Printf.sprintf "rule for %s is not range-restricted" r.head.pred)
        else begin
          let bad_atom =
            List.find_opt
              (fun a ->
                match arity_of a.pred with
                | None -> true
                | Some ar -> ar <> List.length a.args)
              (r.head :: r.body)
          in
          match bad_atom with
          | Some a ->
              Error (Printf.sprintf "unknown predicate or wrong arity: %s" a.pred)
          | None -> Ok ()
        end
      in
      List.fold_left
        (fun acc r -> Result.bind acc (fun () -> check_rule r))
        (Ok ()) t.rules)

(* All extensions of [env] matching the body atoms against [inst]. *)
let rec matches inst env = function
  | [] -> [ env ]
  | a :: rest ->
      let rel = Instance.relation inst a.pred in
      Relation.fold
        (fun tuple acc ->
          let rec unify env i = function
            | [] -> Some env
            | t :: ts -> (
                let actual = Tuple.get tuple i in
                match t with
                | F.Val v ->
                    if Value.equal v actual then unify env (i + 1) ts else None
                | F.Var x -> (
                    match List.assoc_opt x env with
                    | Some v ->
                        if Value.equal v actual then unify env (i + 1) ts
                        else None
                    | None -> unify ((x, actual) :: env) (i + 1) ts))
          in
          match unify env 0 a.args with
          | Some env' -> matches inst env' rest @ acc
          | None -> acc)
        rel []

let instantiate_head env a =
  Tuple.of_list
    (List.map
       (function
         | F.Val v -> v
         | F.Var x -> (
             match List.assoc_opt x env with
             | Some v -> v
             | None -> invalid_arg "Datalog: unbound head variable"))
       a.args)

let eval inst t =
  (match well_formed (Instance.schema inst) t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Datalog.eval: " ^ msg));
  let idb = idb_predicates t in
  let combined_schema =
    List.fold_left
      (fun s (p, a) -> Schema.add p a s)
      (Instance.schema inst) idb
  in
  let start =
    Instance.fold
      (fun rel tuple acc -> Instance.add_tuple rel tuple acc)
      inst
      (Instance.empty combined_schema)
  in
  let step current =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc env ->
            Instance.add_tuple r.head.pred (instantiate_head env r.head) acc)
          acc
          (matches current [] r.body))
      current t.rules
  in
  let rec fixpoint current =
    let next = step current in
    if Instance.equal next current then current else fixpoint next
  in
  fixpoint start

let query inst t pred =
  let result = eval inst t in
  Instance.relation result pred

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_exn schema input =
  let open Logic.Lexer in
  let tokens = ref (tokenize input) in
  let peek () = match !tokens with tok :: _ -> tok | [] -> EOF in
  let next () =
    match !tokens with
    | tok :: rest ->
        tokens := rest;
        tok
    | [] -> EOF
  in
  let expect tok =
    let got = next () in
    if got <> tok then
      raise
        (Parse_error
           (Printf.sprintf "expected %s, found %s" (token_to_string tok)
              (token_to_string got)))
  in
  let term () =
    match next () with
    | IDENT x -> F.Var x
    | QUOTED s -> F.Val (Value.named s)
    | INT n -> F.Val (Value.named (string_of_int n))
    | NULLID n -> F.Val (Value.null n)
    | tok -> raise (Parse_error ("expected a term, found " ^ token_to_string tok))
  in
  let parse_atom () =
    match next () with
    | IDENT pred ->
        expect LPAREN;
        let rec terms acc =
          if peek () = RPAREN then List.rev acc
          else begin
            let t = term () in
            match peek () with
            | COMMA ->
                ignore (next ());
                terms (t :: acc)
            | _ -> List.rev (t :: acc)
          end
        in
        let args = terms [] in
        expect RPAREN;
        { pred; args }
    | tok -> raise (Parse_error ("expected an atom, found " ^ token_to_string tok))
  in
  let parse_rule () =
    let head = parse_atom () in
    match next () with
    | DOT -> { head; body = [] }
    | ASSIGN ->
        let rec body acc =
          let a = parse_atom () in
          match next () with
          | COMMA -> body (a :: acc)
          | DOT -> List.rev (a :: acc)
          | tok ->
              raise
                (Parse_error ("expected , or . in rule body, found " ^ token_to_string tok))
        in
        { head; body = body [] }
    | tok ->
        raise (Parse_error ("expected := or . after rule head, found " ^ token_to_string tok))
  in
  let rec rules acc =
    if peek () = EOF then List.rev acc else rules (parse_rule () :: acc)
  in
  let program = { rules = rules [] } in
  match well_formed schema program with
  | Ok () -> program
  | Error msg -> raise (Parse_error msg)

let parse schema input =
  match parse_exn schema input with
  | p -> Ok p
  | exception Parse_error msg -> Error msg
  | exception Logic.Lexer.Lex_error (msg, pos) ->
      Error (Printf.sprintf "%s (at offset %d)" msg pos)

let pp fmt t =
  let pp_atom fmt a =
    Format.fprintf fmt "%s(%s)" a.pred
      (String.concat ", "
         (List.map (Format.asprintf "%a" F.pp_term) a.args))
  in
  List.iter
    (fun r ->
      if r.body = [] then Format.fprintf fmt "%a.@." pp_atom r.head
      else
        Format.fprintf fmt "%a := %s.@." pp_atom r.head
          (String.concat ", "
             (List.map (Format.asprintf "%a" pp_atom) r.body)))
    t.rules
