(** Positive datalog.

    The paper's Theorem 1 is {e not} limited to first-order logic: it
    holds for every generic query, and the text stresses that this makes
    it "quite different from 0–1 laws in logic" — fixed-point queries
    qualify, even though FO does not express them. This engine provides
    such queries: positive datalog programs with recursion, evaluated by
    naïve fixpoint iteration. Programs are generic (their constants are
    the genericity set [C]), so all measure machinery applies through
    {!Zeroone.Generic}; experiment E24 checks the 0–1 law on transitive
    closure over incomplete graphs.

    Rules are range-restricted: every head variable must occur in the
    body. IDB predicates (those appearing in heads) must not collide
    with EDB relations. Evaluation over an incomplete instance treats
    nulls as constants — exactly naïve evaluation, as everywhere else in
    this library. *)

type atom = { pred : string; args : Logic.Formula.term list }

type rule = { head : atom; body : atom list }
(** [head :- body]. An empty body makes the rule a fact (its arguments
    must then be values). *)

type t = { rules : rule list }

(** {1 Convenience constructors} *)

val atom : string -> Logic.Formula.term list -> atom
val rule : atom -> atom list -> rule
val make : rule list -> t

(** {1 Static structure} *)

val idb_predicates : t -> (string * int) list
(** Head predicates with their arities, sorted by name.
    @raise Invalid_argument if a predicate is used with two arities. *)

val constants : t -> int list
(** Constant codes mentioned by the program (its genericity set). *)

val well_formed : Relational.Schema.t -> t -> (unit, string) result
(** Checks range restriction, arity consistency, EDB arities against
    the schema, and that no IDB predicate redefines an EDB relation. *)

(** {1 Evaluation} *)

val eval : Relational.Instance.t -> t -> Relational.Instance.t
(** Least fixpoint: the instance over the combined EDB + IDB schema
    containing the input and every derivable IDB fact.
    @raise Invalid_argument if the program is not well-formed for the
    instance's schema. *)

val query : Relational.Instance.t -> t -> string -> Relational.Relation.t
(** The relation computed for one IDB predicate (or an EDB relation,
    returned as-is).
    @raise Not_found for unknown predicates. *)

(** {1 Parsing} *)

val parse : Relational.Schema.t -> string -> (t, string) result
(** Surface syntax, one rule per [.]-terminated clause, with [:=]
    between head and body (facts omit the body):
    {v
      TC(x, y) := E(x, y).
      TC(x, z) := E(x, y), TC(y, z).
      Source('a').
    v} *)

val parse_exn : Relational.Schema.t -> string -> t

val pp : Format.formatter -> t -> unit
