lib/incomplete/certain.ml: Arith Classes Fun Int List Logic Relational Support
