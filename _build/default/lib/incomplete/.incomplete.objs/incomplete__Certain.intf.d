lib/incomplete/certain.mli: Classes Logic Relational
