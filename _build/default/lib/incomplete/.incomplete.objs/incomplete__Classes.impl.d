lib/incomplete/classes.ml: Arith Array Format Fun Int List Option Relational String Valuation
