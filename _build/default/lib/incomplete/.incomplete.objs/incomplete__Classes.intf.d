lib/incomplete/classes.mli: Arith Format Valuation
