lib/incomplete/codd.ml: Array Hashtbl Int List Option Relational
