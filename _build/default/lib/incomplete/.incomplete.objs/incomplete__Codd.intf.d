lib/incomplete/codd.mli: Relational
