lib/incomplete/enumerate.ml: Arith List Valuation
