lib/incomplete/enumerate.mli: Arith Valuation
