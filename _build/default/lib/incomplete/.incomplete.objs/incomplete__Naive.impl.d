lib/incomplete/naive.ml: Arith Enumerate Int List Logic Relational Valuation
