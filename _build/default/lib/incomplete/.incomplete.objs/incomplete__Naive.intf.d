lib/incomplete/naive.mli: Logic Relational Valuation
