lib/incomplete/support.ml: Arith Enumerate Int List Logic Relational Valuation
