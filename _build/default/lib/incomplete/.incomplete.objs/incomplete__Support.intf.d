lib/incomplete/support.mli: Arith Logic Relational Valuation
