lib/incomplete/valuation.ml: Format Int List Map Printf Relational
