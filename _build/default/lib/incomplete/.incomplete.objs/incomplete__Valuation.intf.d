lib/incomplete/valuation.mli: Format Relational
