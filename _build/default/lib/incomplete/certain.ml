module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Query = Logic.Query
module Formula = Logic.Formula

let all_nulls inst tuple =
  List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)

let witnessing_classes inst q tuple =
  (* Anchor on the constants of the instantiated sentence Q(ā) too, so
     tuples carrying constants from outside the database are handled. *)
  let anchor_set =
    Support.anchor_set_sentences inst [ Query.instantiate q tuple ]
  in
  let nulls = all_nulls inst tuple in
  List.map
    (fun c ->
      let v = Classes.representative ~anchor_set c in
      (c, Support.in_support inst q tuple v))
    (Classes.enumerate ~anchor_set ~nulls)

let is_certain inst q tuple =
  List.for_all snd (witnessing_classes inst q tuple)

let is_possible inst q tuple =
  List.exists snd (witnessing_classes inst q tuple)

let candidates inst m =
  List.map Tuple.of_list (Arith.Combinat.tuples (Instance.adom inst) m)

let filter_candidates pred inst q =
  let m = Query.arity q in
  List.fold_left
    (fun acc t -> if pred inst q t then Relation.add t acc else acc)
    (Relation.empty m) (candidates inst m)

let certain_answers inst q = filter_candidates is_certain inst q

let certain_answers_null_free inst q =
  Relation.filter (fun t -> not (Tuple.has_null t)) (certain_answers inst q)

let possible_answers inst q = filter_candidates is_possible inst q

let sentence_classes inst sentence =
  let anchor_set = Support.anchor_set_sentences inst [ sentence ] in
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ Formula.nulls sentence)
  in
  List.map
    (fun c ->
      let v = Classes.representative ~anchor_set c in
      Support.sentence_in_support inst sentence v)
    (Classes.enumerate ~anchor_set ~nulls)

let is_certain_sentence inst sentence =
  List.for_all Fun.id (sentence_classes inst sentence)

let is_possible_sentence inst sentence =
  List.exists Fun.id (sentence_classes inst sentence)
