module Combinat = Arith.Combinat
module Poly = Arith.Poly

type t = { partition : int list list; anchors : int option list }

let enumerate ~anchor_set ~nulls =
  let partitions = Combinat.set_partitions nulls in
  List.concat_map
    (fun partition ->
      let maps =
        Combinat.injective_partial_maps (List.length partition) anchor_set
      in
      List.map (fun m -> { partition; anchors = Array.to_list m }) maps)
    partitions

let free_block_count c =
  List.length (List.filter Option.is_none c.anchors)

let representative ~anchor_set c =
  let used = List.filter_map Fun.id c.anchors in
  let base = List.fold_left max 0 (anchor_set @ used) in
  let next = ref base in
  let assignments =
    List.map2
      (fun block anchor ->
        let code =
          match anchor with
          | Some code -> code
          | None ->
              incr next;
              !next
        in
        List.map (fun n -> (n, code)) block)
      c.partition c.anchors
  in
  Valuation.of_list (List.concat assignments)

let count_poly ~anchor_set c =
  Poly.falling_factorial ~shift:(List.length anchor_set) (free_block_count c)

let classify ~anchor_set ~nulls v =
  if not (Valuation.defined_on v nulls) then
    invalid_arg "Classes.classify: valuation misses a null"
  else begin
    (* Group nulls by their image, blocks ordered by first occurrence
       of the image. *)
    let images = List.map (fun n -> (n, Valuation.find_exn v n)) nulls in
    let codes =
      List.fold_left
        (fun acc (_, c) -> if List.mem c acc then acc else acc @ [ c ])
        [] images
    in
    let partition =
      List.map
        (fun c ->
          List.filter_map (fun (n, c') -> if c' = c then Some n else None) images)
        codes
    in
    let anchors =
      List.map (fun c -> if List.mem c anchor_set then Some c else None) codes
    in
    { partition; anchors }
  end

let canonical c =
  (* Sort blocks (with their anchors) by smallest null id, and sort
     null ids inside blocks, for order-insensitive comparison. *)
  let entries =
    List.map2
      (fun block anchor -> (List.sort Int.compare block, anchor))
      c.partition c.anchors
  in
  List.sort compare entries

let same_class a b = canonical a = canonical b

let total_poly ~anchor_set ~nulls =
  Poly.sum (List.map (count_poly ~anchor_set) (enumerate ~anchor_set ~nulls))

let pp fmt c =
  Format.pp_print_string fmt "[";
  List.iteri
    (fun i (block, anchor) ->
      if i > 0 then Format.pp_print_string fmt "; ";
      Format.fprintf fmt "{%s}"
        (String.concat "," (List.map (fun n -> "~" ^ string_of_int n) block));
      match anchor with
      | Some code -> Format.fprintf fmt "->%s" (Relational.Names.to_string code)
      | None -> Format.pp_print_string fmt "->*")
    (List.combine c.partition c.anchors);
  Format.pp_print_string fmt "]"
