(** Valuation equivalence classes.

    The central combinatorial device, taken from the proofs of
    Theorems 1, 3 and 8: fix the {e anchor set} [A = C ∪ Const(D)]
    (genericity constants of the query/constraints plus the constants of
    the database). Every valuation [v] determines
    - the partition [ρ] of [Null(D)] given by the kernel of [v]
      (nulls in the same block receive the same constant);
    - an injective partial map [σ] from the blocks of [ρ] into [A]
      (the blocks whose value lands in the anchor set);
    - an injective map of the remaining "free" blocks to constants
      outside [A].

    Two valuations with the same [(ρ, σ)] are related by a bijection of
    [Const] fixing [A] pointwise, so by [C]-genericity the truth of
    [v(ā) ∈ Q(v(D))] depends only on the class. The number of
    valuations of a class with range in [{c1..ck}] is the falling
    factorial [(k−|A|)(k−|A|−1)⋯] with one factor per free block — a
    polynomial in [k]. Summing class polynomials over the classes whose
    representative satisfies the property yields [|Supp^k(q,D)|] as a
    polynomial, which is how Theorem 3 and all symbolic measures are
    computed. *)

type t = {
  partition : int list list;  (** blocks of null ids *)
  anchors : int option list;  (** per block: [Some code] in [A], or free *)
}

val enumerate : anchor_set:int list -> nulls:int list -> t list
(** All classes: set partitions crossed with injective partial
    anchor maps. Their number depends only on [|A|] and [m]. *)

val free_block_count : t -> int

val representative : anchor_set:int list -> t -> Valuation.t
(** A canonical member: free blocks receive distinct constants beyond
    [max(anchor_set)] (and beyond any code in the class's anchors). *)

val count_poly : anchor_set:int list -> t -> Arith.Poly.t
(** The polynomial in [k] counting the members with range ⊆ [{c1..ck}]
    (valid for [k ≥ max(anchor_set)]). *)

val classify : anchor_set:int list -> nulls:int list -> Valuation.t -> t
(** The class of a given valuation.
    @raise Invalid_argument if the valuation misses a null. *)

val same_class : t -> t -> bool

val total_poly : anchor_set:int list -> nulls:int list -> Arith.Poly.t
(** Sum of all class polynomials; must equal [k^m] — this identity is a
    property test of the whole machinery. *)

val pp : Format.formatter -> t -> unit
