module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value

let occurrence_counts inst =
  let counts = Hashtbl.create 16 in
  Instance.fold
    (fun _ tuple () ->
      Array.iter
        (function
          | Value.Null n ->
              Hashtbl.replace counts n
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts n))
          | Value.Const _ -> ())
        (Tuple.to_array tuple))
    inst ();
  counts

let repeated_nulls inst =
  let counts = occurrence_counts inst in
  Hashtbl.fold (fun n c acc -> if c > 1 then n :: acc else acc) counts []
  |> List.sort Int.compare

let is_codd inst = repeated_nulls inst = []

let coddify inst =
  let repeated = repeated_nulls inst in
  if repeated = [] then inst
  else begin
    let next = ref (List.fold_left max (-1) (Instance.nulls inst)) in
    let fresh () =
      incr next;
      !next
    in
    (* Walk the instance relation by relation, rewriting each occurrence
       of a repeated null to a fresh id. Tuples are rebuilt value by
       value so two occurrences within one tuple also split. *)
    let rewrite_tuple tuple =
      Tuple.of_list
        (List.map
           (function
             | Value.Null n when List.mem n repeated -> Value.null (fresh ())
             | v -> v)
           (Tuple.to_list tuple))
    in
    List.fold_left
      (fun acc name ->
        let rel = Instance.relation inst name in
        let rewritten =
          Relation.fold
            (fun t r -> Relation.add (rewrite_tuple t) r)
            rel
            (Relation.empty (Relation.arity rel))
        in
        Instance.set_relation name rewritten acc)
      inst
      (Relational.Schema.relations (Instance.schema inst))
  end
