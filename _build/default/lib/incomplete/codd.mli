(** Codd nulls (paper §2 and §6).

    Codd nulls are marked nulls that occur {e at most once} in the
    database — the usual simplified model of SQL's [NULL]. Marked nulls
    are strictly more expressive: repeating a null across positions
    asserts that the same unknown value occurs there. Forgetting that
    assertion ("coddification") relaxes the semantics:
    [[D]] ⊆ [[coddify D]], so certain truth can only be lost and
    possible truth can only be gained — both facts are property-tested.

    The paper's results hold for both models; this module provides the
    bridge used by those tests and by downstream users who want the
    weaker Codd reading of their data. *)

val is_codd : Relational.Instance.t -> bool
(** Does every null occur exactly once? *)

val coddify : Relational.Instance.t -> Relational.Instance.t
(** Replaces every occurrence of a repeated null with a fresh null id
    (distinct per occurrence; ids chosen above all existing ones). The
    result {!is_codd}. Instances already in Codd form are returned
    unchanged (same null ids). *)

val repeated_nulls : Relational.Instance.t -> int list
(** The null ids occurring more than once, sorted. *)
