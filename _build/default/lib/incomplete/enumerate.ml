module B = Arith.Bigint

let fold_valuations ~nulls ~k f acc =
  let rec go acc assigned = function
    | [] -> f acc (Valuation.of_list assigned)
    | n :: rest ->
        let acc = ref acc in
        for c = 1 to k do
          acc := go !acc ((n, c) :: assigned) rest
        done;
        !acc
  in
  if k < 0 then invalid_arg "Enumerate.fold_valuations: negative k"
  else go acc [] nulls

let all_valuations ~nulls ~k =
  List.rev (fold_valuations ~nulls ~k (fun acc v -> v :: acc) [])

let count ~nulls ~k = Arith.Combinat.power k (List.length nulls)

let fold_bijective ~nulls ~avoid ~k f acc =
  let rec go acc used assigned = function
    | [] -> f acc (Valuation.of_list assigned)
    | n :: rest ->
        let acc = ref acc in
        for c = 1 to k do
          if (not (List.mem c avoid)) && not (List.mem c used) then
            acc := go !acc (c :: used) ((n, c) :: assigned) rest
        done;
        !acc
  in
  go acc [] [] nulls

let count_bijective ~nulls ~avoid ~k =
  let a = List.length (List.filter (fun c -> c <= k && c >= 1) avoid) in
  Arith.Combinat.falling_factorial (k - a) (List.length nulls)

let fresh_bijective ~nulls ~avoid =
  let base = List.fold_left max 0 avoid in
  Valuation.of_list (List.mapi (fun i n -> (n, base + i + 1)) nulls)
