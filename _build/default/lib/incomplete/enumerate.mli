(** Enumeration of the finite valuation spaces [V^k(D)].

    [V^k(D)] is the set of valuations whose range lies in the first [k]
    constants [{c1,…,ck}] (represented by codes [1..k]); it has [k^m]
    elements for [m] nulls. These enumerations drive the brute-force
    computation of [µ^k] that cross-checks the symbolic machinery. *)

val fold_valuations :
  nulls:int list -> k:int -> ('a -> Valuation.t -> 'a) -> 'a -> 'a
(** Folds over all of [V^k(D)] without materializing the list. *)

val all_valuations : nulls:int list -> k:int -> Valuation.t list
(** Materialized version; beware the [k^m] blow-up. *)

val count : nulls:int list -> k:int -> Arith.Bigint.t
(** [k^m]. *)

val fold_bijective :
  nulls:int list -> avoid:int list -> k:int -> ('a -> Valuation.t -> 'a) -> 'a -> 'a
(** Folds over the [C]-bijective valuations with range in [{c1..ck}]:
    injective, range disjoint from [avoid]. *)

val count_bijective : nulls:int list -> avoid:int list -> k:int -> Arith.Bigint.t
(** Number of the above: the falling factorial [(k−a)·…] where [a] is
    the number of codes of [avoid] that are [≤ k]. *)

val fresh_bijective : nulls:int list -> avoid:int list -> Valuation.t
(** One canonical [C]-bijective valuation assigning to each null a
    distinct constant beyond [max(avoid)] — the witness used by naïve
    evaluation (Definition 3). *)
