module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Eval = Logic.Eval
module Query = Logic.Query
module Formula = Logic.Formula

let answers inst q = Eval.answers inst q
let boolean inst q = Eval.boolean_answer inst q
let tuple_in inst q tuple = Eval.tuple_in_answer inst q tuple

let answers_via_bijective ?valuation inst (q : Query.t) =
  let avoid =
    List.sort_uniq Int.compare (Query.constants q @ Instance.constants inst)
  in
  let nulls = Instance.nulls inst in
  let v =
    match valuation with
    | Some v ->
        if not (Valuation.defined_on v nulls) then
          invalid_arg "Naive.answers_via_bijective: valuation misses nulls"
        else if not (Valuation.is_bijective_for ~avoid v) then
          invalid_arg "Naive.answers_via_bijective: valuation not C-bijective"
        else v
    | None -> Enumerate.fresh_bijective ~nulls ~avoid
  in
  let complete = Valuation.instance v inst in
  let concrete_answers = Eval.answers complete q in
  (* v⁻¹(Q(v(D))): tuples over adom(D) whose image is an answer. *)
  let m = Query.arity q in
  let candidates =
    Relation.of_list m
      (List.map Tuple.of_list
         (Arith.Combinat.tuples (Instance.adom inst) m))
  in
  Valuation.preimage_relation v candidates concrete_answers

let sentence inst f =
  if not (Formula.is_sentence f) then
    invalid_arg "Naive.sentence: formula has free variables"
  else Eval.sentence_holds inst f
