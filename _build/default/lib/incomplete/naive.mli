(** Naïve evaluation (Definitions 2–3 and Proposition 1 of the paper).

    Naïve evaluation treats nulls as if they were pairwise-distinct
    fresh constants. The paper defines it via an arbitrary [C]-bijective
    valuation [v] as [Q^naïve(D) = v⁻¹(Q(v(D)))]; Proposition 1 shows
    the choice of [v] is irrelevant. Evaluating the formula directly on
    the incomplete instance (nulls compared structurally) computes the
    same thing; both implementations are provided and their agreement is
    a test, not an assumption. *)

val answers : Relational.Instance.t -> Logic.Query.t -> Relational.Relation.t
(** [Q^naïve(D)] by direct structural evaluation. *)

val boolean : Relational.Instance.t -> Logic.Query.t -> bool
(** Boolean naïve evaluation. @raise Invalid_argument if not Boolean. *)

val tuple_in : Relational.Instance.t -> Logic.Query.t -> Relational.Tuple.t -> bool
(** [ā ∈ Q^naïve(D)]? *)

val answers_via_bijective :
  ?valuation:Valuation.t ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Relation.t
(** Definition 3 literally: apply a [C]-bijective valuation [v]
    (a canonical fresh one unless supplied), evaluate on [v(D)], pull
    the result back through [v⁻¹].
    @raise Invalid_argument if the supplied valuation is not
    [C]-bijective for the query's constants and [Const(D)]. *)

val sentence : Relational.Instance.t -> Logic.Formula.t -> bool
(** Naïve truth of a sentence. @raise Invalid_argument on free
    variables. *)
