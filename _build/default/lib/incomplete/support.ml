module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Formula = Logic.Formula
module Eval = Logic.Eval
module B = Arith.Bigint
module Rat = Arith.Rat

let anchor_set inst q =
  List.sort_uniq Int.compare (Query.constants q @ Instance.constants inst)

let anchor_set_sentences inst sentences =
  List.sort_uniq Int.compare
    (Instance.constants inst @ List.concat_map Formula.constants sentences)

let sentence_in_support inst sentence v =
  let complete = Valuation.instance v inst in
  let concrete = Formula.map_values (Valuation.value v) sentence in
  Eval.sentence_holds complete concrete

let in_support inst q tuple v =
  if Tuple.arity tuple <> Query.arity q then
    invalid_arg "Support.in_support: arity mismatch"
  else sentence_in_support inst (Query.instantiate q tuple) v

let supp_count inst q tuple ~k =
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)
  in
  Enumerate.fold_valuations ~nulls ~k
    (fun acc v -> if in_support inst q tuple v then B.succ acc else acc)
    B.zero

let mu_k inst q tuple ~k =
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)
  in
  let total = Enumerate.count ~nulls ~k in
  if B.is_zero total then Rat.zero
  else Rat.make (supp_count inst q tuple ~k) total

let mu_k_boolean inst q ~k =
  if Query.arity q <> 0 then invalid_arg "Support.mu_k_boolean: query not Boolean"
  else mu_k inst q Tuple.empty ~k

let mu_k_series inst q tuple ~ks =
  List.map (fun k -> (k, mu_k inst q tuple ~k)) ks

let support_valuations inst q tuple ~k =
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)
  in
  List.rev
    (Enumerate.fold_valuations ~nulls ~k
       (fun acc v -> if in_support inst q tuple v then v :: acc else acc)
       [])
