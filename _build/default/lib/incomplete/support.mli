(** Supports of query answers and the finite measures [µ^k].

    [Supp(Q,D,ā)] is the set of valuations [v] with [v(ā) ∈ Q(v(D))];
    [µ^k(Q,D,ā) = |Supp^k(Q,D,ā)| / |V^k(D)|] is the probability that a
    valuation drawn uniformly from [V^k(D)] witnesses [ā] (paper §3.2).
    This module computes these quantities by brute-force enumeration —
    the ground truth against which the symbolic machinery
    ([Zeroone.Support_poly]) is verified. *)

val anchor_set : Relational.Instance.t -> Logic.Query.t -> int list
(** [C ∪ Const(D)]: the query's genericity constants plus the
    database's constants, sorted. *)

val anchor_set_sentences :
  Relational.Instance.t -> Logic.Formula.t list -> int list
(** Anchor set for a family of sentences evaluated on the same
    database (e.g. [Σ ∧ Q(ā)] and [Σ]). *)

val in_support :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Valuation.t ->
  bool
(** [v ∈ Supp(Q,D,ā)], i.e. [v(ā) ∈ Q(v(D))].
    @raise Invalid_argument on arity mismatch or if the valuation
    misses a null of [D] or [ā]. *)

val sentence_in_support :
  Relational.Instance.t -> Logic.Formula.t -> Valuation.t -> bool
(** [v(D) ⊨ φ[v]] for a sentence [φ] (whose nulls, if any, are replaced
    through [v] as well). *)

val supp_count :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Arith.Bigint.t
(** [|Supp^k(Q,D,ā)|] by enumeration of all [k^m] valuations. *)

val mu_k :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Arith.Rat.t
(** [µ^k(Q,D,ā)]. By convention 1 when [D] has no nulls and the tuple
    is an answer, 0 when it is not ([V^k(D)] is the singleton empty
    valuation). *)

val mu_k_boolean : Relational.Instance.t -> Logic.Query.t -> k:int -> Arith.Rat.t
(** [µ^k(Q,D)] for Boolean [Q]. *)

val mu_k_series :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  ks:int list ->
  (int * Arith.Rat.t) list
(** The convergence series [(k, µ^k)] — the paper's limit object,
    sampled. *)

val support_valuations :
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Valuation.t list
(** The materialized [Supp^k(Q,D,ā)] (for small [k] and few nulls). *)
