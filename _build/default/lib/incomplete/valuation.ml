module IMap = Map.Make (Int)
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Instance = Relational.Instance

type t = int IMap.t

let empty = IMap.empty

let of_list pairs =
  List.fold_left
    (fun m (n, c) ->
      if c < 1 then invalid_arg "Valuation.of_list: constant codes are positive"
      else if IMap.mem n m then
        invalid_arg
          (Printf.sprintf "Valuation.of_list: null ~%d assigned twice" n)
      else IMap.add n c m)
    IMap.empty pairs

let of_fun nulls f = of_list (List.map (fun n -> (n, f n)) nulls)
let bindings = IMap.bindings
let find t n = IMap.find_opt n t

let find_exn t n =
  match IMap.find_opt n t with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Valuation: null ~%d unassigned" n)

let defined_on t nulls = List.for_all (fun n -> IMap.mem n t) nulls
let domain t = List.map fst (IMap.bindings t)

let range t =
  IMap.bindings t |> List.map snd |> List.sort_uniq Int.compare

let is_injective t =
  let values = List.map snd (IMap.bindings t) in
  List.length (List.sort_uniq Int.compare values) = List.length values

let is_bijective_for ~avoid t =
  is_injective t && List.for_all (fun c -> not (List.mem c avoid)) (range t)

let equal = IMap.equal Int.equal
let compare = IMap.compare Int.compare

let value t = function
  | Value.Const _ as v -> v
  | Value.Null n -> Value.const (find_exn t n)

let tuple t tup = Tuple.map (value t) tup
let instance t inst = Instance.map_values (value t) inst

let preimage_relation t candidates answers =
  Relation.filter (fun tup -> Relation.mem (tuple t tup) answers) candidates

let pp fmt t =
  Format.pp_print_string fmt "{";
  List.iteri
    (fun i (n, c) ->
      if i > 0 then Format.pp_print_string fmt ", ";
      Format.fprintf fmt "~%d -> %s" n (Relational.Names.to_string c))
    (IMap.bindings t);
  Format.pp_print_string fmt "}"

let to_string t = Format.asprintf "%a" pp t
