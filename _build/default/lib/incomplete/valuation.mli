(** Valuations: assignments of constants to nulls.

    A valuation [v : Null(D) → Const] replaces each null of a database
    by a constant; [v(D)] is a complete database and the semantics of
    [D] is [[D]] = {v(D) | v} (closed-world, §2 of the paper). *)

type t

val empty : t

val of_list : (int * int) list -> t
(** [(null id, constant code)] pairs.
    @raise Invalid_argument on duplicate null ids or codes [< 1]. *)

val of_fun : int list -> (int -> int) -> t
(** [of_fun nulls f] tabulates [f] on the given null ids. *)

val bindings : t -> (int * int) list
(** Sorted by null id. *)

val find : t -> int -> int option
val find_exn : t -> int -> int

val defined_on : t -> int list -> bool
(** Is the valuation defined on all the given null ids? *)

val domain : t -> int list
val range : t -> int list
(** Constant codes in the range, sorted, deduplicated. *)

val is_injective : t -> bool

val is_bijective_for : avoid:int list -> t -> bool
(** [C]-bijectivity (Definition 2): injective with range disjoint from
    [avoid] (which callers set to [Const(D) ∪ C]). *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Application} *)

val value : t -> Relational.Value.t -> Relational.Value.t
(** Replaces a null by its image ([Invalid_argument] if unassigned);
    constants are unchanged. *)

val tuple : t -> Relational.Tuple.t -> Relational.Tuple.t
val instance : t -> Relational.Instance.t -> Relational.Instance.t

val preimage_relation :
  t -> Relational.Relation.t -> Relational.Relation.t -> Relational.Relation.t
(** [preimage_relation v candidates answers]: the tuples [t] of
    [candidates] with [v(t) ∈ answers] — the [v⁻¹(…)] step of naïve
    evaluation via bijective valuations (Definition 3). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
