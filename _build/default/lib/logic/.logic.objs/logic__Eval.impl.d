lib/logic/eval.ml: Array Formula List Query Relational
