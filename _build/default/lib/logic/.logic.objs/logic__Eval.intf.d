lib/logic/eval.mli: Formula Query Relational
