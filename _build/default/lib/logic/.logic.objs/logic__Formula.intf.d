lib/logic/formula.mli: Format Relational
