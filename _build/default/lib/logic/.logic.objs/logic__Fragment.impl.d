lib/logic/fragment.ml: Formula Fun List Option String
