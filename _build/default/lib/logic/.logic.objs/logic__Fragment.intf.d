lib/logic/fragment.mli: Formula
