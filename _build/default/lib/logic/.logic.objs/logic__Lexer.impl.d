lib/logic/lexer.ml: List Printf String
