lib/logic/lexer.mli:
