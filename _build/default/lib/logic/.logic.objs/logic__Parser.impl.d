lib/logic/parser.ml: Formula Lexer List Printf Query Relational
