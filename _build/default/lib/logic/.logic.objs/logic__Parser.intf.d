lib/logic/parser.mli: Formula Query Relational
