lib/logic/query.ml: Format Formula List String
