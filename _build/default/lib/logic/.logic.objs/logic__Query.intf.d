lib/logic/query.mli: Format Formula Relational
