lib/logic/ra.ml: Format Formula List Printf Query Relational Result String
