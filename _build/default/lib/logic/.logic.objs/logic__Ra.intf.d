lib/logic/ra.mli: Format Query Relational
