lib/logic/ra_opt.ml: Fun List Ra
