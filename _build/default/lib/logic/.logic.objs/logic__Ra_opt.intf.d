lib/logic/ra_opt.mli: Ra Relational
