lib/logic/sql3vl.ml: Eval Formula List Query Relational
