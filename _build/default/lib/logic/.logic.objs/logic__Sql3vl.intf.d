lib/logic/sql3vl.mli: Formula Query Relational
