lib/logic/ucq.ml: Format Formula List Option Printf Query Relational String
