lib/logic/ucq.mli: Format Formula Query Relational
