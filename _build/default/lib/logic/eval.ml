module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Instance = Relational.Instance

type env = (string * Value.t) list

let domain inst f =
  let adom = Instance.adom inst in
  let from_formula =
    List.filter_map
      (fun c ->
        let v = Value.const c in
        if List.exists (Value.equal v) adom then None else Some v)
      (Formula.constants f)
  in
  adom @ from_formula

let term_value env = function
  | Formula.Val v -> v
  | Formula.Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> invalid_arg ("Eval: unbound variable " ^ x))

let holds ?domain:dom inst env f =
  let dom = match dom with Some d -> d | None -> domain inst f in
  let rec go env f =
    match f with
    | Formula.True -> true
    | Formula.False -> false
    | Formula.Atom (r, ts) ->
        let tuple = Tuple.of_list (List.map (term_value env) ts) in
        Relation.mem tuple (Instance.relation inst r)
    | Formula.Eq (a, b) -> Value.equal (term_value env a) (term_value env b)
    | Formula.Not g -> not (go env g)
    | Formula.And (g, h) -> go env g && go env h
    | Formula.Or (g, h) -> go env g || go env h
    | Formula.Implies (g, h) -> (not (go env g)) || go env h
    | Formula.Exists (x, g) -> List.exists (fun v -> go ((x, v) :: env) g) dom
    | Formula.Forall (x, g) -> List.for_all (fun v -> go ((x, v) :: env) g) dom
  in
  go env f

let sentence_holds ?domain inst f = holds ?domain inst [] f

let answers ?domain:dom inst (q : Query.t) =
  let dom = match dom with Some d -> d | None -> domain inst q.Query.body in
  (* Answer variables range over adom(D) only — an m-ary query returns a
     subset of adom(D)^m (§2); quantified variables additionally see the
     query's own constants. *)
  let adom = Instance.adom inst in
  let m = Query.arity q in
  let result = ref (Relation.empty m) in
  let rec assign env = function
    | [] -> begin
        if holds ~domain:dom inst env q.Query.body then
          let tuple =
            Tuple.of_list (List.map (fun x -> List.assoc x env) q.Query.free)
          in
          result := Relation.add tuple !result
      end
    | x :: rest -> List.iter (fun v -> assign ((x, v) :: env) rest) adom
  in
  assign [] q.Query.free;
  !result

let boolean_answer ?domain inst q =
  if Query.arity q <> 0 then invalid_arg "Eval.boolean_answer: query not Boolean"
  else sentence_holds ?domain inst q.Query.body

let tuple_in_answer ?domain:dom inst (q : Query.t) tuple =
  if Tuple.arity tuple <> Query.arity q then
    invalid_arg "Eval.tuple_in_answer: arity mismatch"
  else begin
    let sentence = Query.instantiate q tuple in
    let dom = match dom with Some d -> d | None -> domain inst sentence in
    (* An answer tuple must come from the active domain (queries do not
       invent values), so reject tuples outside it up front. *)
    let adom = Instance.adom inst in
    let in_dom v = List.exists (Value.equal v) adom in
    Array.for_all in_dom (Tuple.to_array tuple)
    && sentence_holds ~domain:dom inst sentence
  end
