(** Active-domain evaluation of first-order formulas on instances.

    Quantifiers range over the {e evaluation domain}: the active domain
    of the instance plus the constants mentioned in the formula. This is
    the standard generic semantics of relational calculus; queries never
    invent values (paper §2, "Query languages").

    Evaluation is defined uniformly on complete and incomplete
    instances. On an incomplete instance, values compare by structural
    equality — a null equals itself and differs from every constant and
    every other null — so evaluating directly on [D] {e is} naïve
    evaluation in the sense of Definition 3 (this coincidence with the
    bijective-valuation definition is Proposition 1, and is verified in
    the test suite). *)

type env = (string * Relational.Value.t) list

val domain : Relational.Instance.t -> Formula.t -> Relational.Value.t list
(** The evaluation domain: [adom(D)] plus the formula's constants. *)

val holds :
  ?domain:Relational.Value.t list ->
  Relational.Instance.t ->
  env ->
  Formula.t ->
  bool
(** Truth of a formula under an environment binding its free variables.
    @raise Invalid_argument if a free variable is unbound. *)

val sentence_holds :
  ?domain:Relational.Value.t list -> Relational.Instance.t -> Formula.t -> bool

val answers :
  ?domain:Relational.Value.t list ->
  Relational.Instance.t ->
  Query.t ->
  Relational.Relation.t
(** All tuples over the evaluation domain satisfying the query body.
    For a Boolean query the result is the nullary relation containing
    the empty tuple iff the sentence holds. *)

val boolean_answer :
  ?domain:Relational.Value.t list -> Relational.Instance.t -> Query.t -> bool
(** @raise Invalid_argument if the query is not Boolean. *)

val tuple_in_answer :
  ?domain:Relational.Value.t list ->
  Relational.Instance.t ->
  Query.t ->
  Relational.Tuple.t ->
  bool
(** [tuple_in_answer D Q ā]: does [ā ∈ Q(D)]? Cheaper than computing all
    answers. @raise Invalid_argument on arity mismatch. *)
