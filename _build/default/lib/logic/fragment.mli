(** Syntactic fragments of first-order logic used in the paper.

    - conjunctive queries (CQ): the [∃,∧]-fragment over relational atoms;
    - unions of conjunctive queries (UCQ): the [∃,∧,∨]-fragment;
    - Pos∀G (Compton's positive FO with universal guards): atomic
      formulas closed under [∧], [∨], [∃], [∀] and the guarded rule
      [∀x̄ (α(x̄) → φ)] with [α] an atom over distinct variables.
      For Pos∀G queries naïve evaluation computes certain answers
      (Gheerbrant–Libkin–Sirangelo), which gives the paper's
      Corollary 3. *)

val is_conjunctive : Formula.t -> bool
(** Built from relational atoms and [True] with [∧] and [∃] only. *)

val is_ucq : Formula.t -> bool
(** Built from relational atoms, [True], [False] with [∧], [∨], [∃]. *)

val is_positive : Formula.t -> bool
(** No negation and no implication (quantifiers unrestricted). *)

val is_pos_forall_guard : Formula.t -> bool
(** Membership in Pos∀G. *)

val is_quantifier_free : Formula.t -> bool
