type token =
  | IDENT of string
  | QUOTED of string
  | INT of int
  | NULLID of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | DOT
  | AMP
  | BAR
  | BANG
  | EQUAL
  | NEQ
  | ARROW
  | LEQ
  | ASSIGN
  | KW_EXISTS
  | KW_FORALL
  | KW_TRUE
  | KW_FALSE
  | EOF

exception Lex_error of string * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let keyword = function
  | "exists" -> Some KW_EXISTS
  | "forall" -> Some KW_FORALL
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let take_while p =
    let start = !pos in
    while !pos < n && p input.[!pos] do
      advance ()
    done;
    String.sub input start (!pos - start)
  in
  let skip_line () =
    while !pos < n && input.[!pos] <> '\n' do
      advance ()
    done
  in
  while !pos < n do
    let c = input.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else if c = '#' then skip_line ()
    else if c = '-' && !pos + 1 < n && input.[!pos + 1] = '-' then skip_line ()
    else if c = '-' && !pos + 1 < n && input.[!pos + 1] = '>' then begin
      advance ();
      advance ();
      emit ARROW
    end
    else if is_ident_start c then begin
      let word = take_while is_ident_char in
      match keyword word with Some t -> emit t | None -> emit (IDENT word)
    end
    else if is_digit c then begin
      let digits = take_while is_digit in
      emit (INT (int_of_string digits))
    end
    else if c = '\'' then begin
      advance ();
      let content = take_while (fun c -> c <> '\'') in
      match peek () with
      | Some '\'' ->
          advance ();
          emit (QUOTED content)
      | Some _ | None -> raise (Lex_error ("unterminated quoted constant", !pos))
    end
    else if c = '~' then begin
      advance ();
      let digits = take_while is_digit in
      if digits = "" then raise (Lex_error ("null id expected after ~", !pos))
      else emit (NULLID (int_of_string digits))
    end
    else begin
      advance ();
      match c with
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '{' -> emit LBRACE
      | '}' -> emit RBRACE
      | '[' -> emit LBRACKET
      | ']' -> emit RBRACKET
      | ',' -> emit COMMA
      | ';' -> emit SEMI
      | '.' -> emit DOT
      | '&' -> emit AMP
      | '|' -> emit BAR
      | '=' -> emit EQUAL
      | ':' ->
          if peek () = Some '=' then begin
            advance ();
            emit ASSIGN
          end
          else emit COLON
      | '!' ->
          if peek () = Some '=' then begin
            advance ();
            emit NEQ
          end
          else emit BANG
      | '<' ->
          if peek () = Some '=' then begin
            advance ();
            emit LEQ
          end
          else raise (Lex_error ("unexpected character <", !pos - 1))
      | _ ->
          raise
            (Lex_error (Printf.sprintf "unexpected character %c" c, !pos - 1))
    end
  done;
  emit EOF;
  List.rev !tokens

let token_to_string = function
  | IDENT s -> s
  | QUOTED s -> "'" ^ s ^ "'"
  | INT n -> string_of_int n
  | NULLID n -> "~" ^ string_of_int n
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | DOT -> "."
  | AMP -> "&"
  | BAR -> "|"
  | BANG -> "!"
  | EQUAL -> "="
  | NEQ -> "!="
  | ARROW -> "->"
  | LEQ -> "<="
  | ASSIGN -> ":="
  | KW_EXISTS -> "exists"
  | KW_FORALL -> "forall"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | EOF -> "<eof>"
