(** Hand-rolled lexer for the query/database surface language.

    The surface syntax (used by the CLI, the examples and the tests):
    {v
      formulas:   R(x, y) & !S(x, y)
                  exists y. E('c', y) & E(y, x)
                  forall x. U(x) -> (R(x) & !S(x))
      queries:    Q(x, y) := R(x, y) & !S(x, y)
      constants:  'alice'  or  42   (integer literals are names too)
      nulls:      ~1 ~2              (marked nulls, in database literals)
      databases:  R = { ('c1', ~1), ('c2', ~2) }; S = { ... }
      schemas:    R(customer, product); U(name)
      FDs:        R : customer -> product
      INDs:       R[2] <= U[1]       (1-based column lists)
    v} *)

type token =
  | IDENT of string
  | QUOTED of string  (** ['name'] constant literal *)
  | INT of int
  | NULLID of int  (** [~i] *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | DOT
  | AMP
  | BAR
  | BANG
  | EQUAL
  | NEQ
  | ARROW  (** [->] *)
  | LEQ  (** [<=] *)
  | ASSIGN  (** [:=] *)
  | KW_EXISTS
  | KW_FORALL
  | KW_TRUE
  | KW_FALSE
  | EOF

exception Lex_error of string * int
(** Message and character offset. *)

val tokenize : string -> token list
(** @raise Lex_error on invalid input. Comments run from [--] or [#] to
    end of line. *)

val token_to_string : token -> string
