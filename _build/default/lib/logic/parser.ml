module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Instance = Relational.Instance
open Lexer

exception Parse_error of string

type state = { mutable tokens : token list }

let fail msg = raise (Parse_error msg)

let peek st = match st.tokens with t :: _ -> t | [] -> EOF

let next st =
  match st.tokens with
  | t :: rest ->
      st.tokens <- rest;
      t
  | [] -> EOF

let expect st t =
  let got = next st in
  if got <> t then
    fail
      (Printf.sprintf "expected %s but found %s" (token_to_string t)
         (token_to_string got))

let ident st =
  match next st with
  | IDENT s -> s
  | t -> fail ("expected identifier, found " ^ token_to_string t)

(* A value literal: quoted constant, integer constant, bare-identifier
   constant (only where [allow_bare] — database literals), or null. *)
let value_literal ~allow_bare st =
  match next st with
  | QUOTED s -> Value.named s
  | INT n -> Value.named (string_of_int n)
  | NULLID n -> Value.null n
  | IDENT s when allow_bare -> Value.named s
  | t -> fail ("expected a value, found " ^ token_to_string t)

(* Terms in formulas: bare identifiers are variables. *)
let term st =
  match peek st with
  | IDENT x ->
      ignore (next st);
      Formula.Var x
  | QUOTED _ | INT _ | NULLID _ -> Formula.Val (value_literal ~allow_bare:false st)
  | t -> fail ("expected a term, found " ^ token_to_string t)

let rec comma_separated st parse_one stop =
  if peek st = stop then []
  else begin
    let first = parse_one st in
    match peek st with
    | COMMA ->
        ignore (next st);
        first :: comma_separated st parse_one stop
    | _ -> [ first ]
  end

(* formula   := implies
   implies   := or [ -> implies ]
   or        := and ( | and )*
   and       := unary ( & unary )*
   unary     := ! unary | quantifier | atomic [ (=|!=) term ]
   quantifier:= (exists|forall) ident+ . implies *)
let rec parse_formula st = parse_implies st

and parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | ARROW ->
      ignore (next st);
      Formula.Implies (lhs, parse_implies st)
  | _ -> lhs

and parse_or st =
  let lhs = parse_and st in
  let rec go acc =
    match peek st with
    | BAR ->
        ignore (next st);
        go (Formula.Or (acc, parse_and st))
    | _ -> acc
  in
  go lhs

and parse_and st =
  let lhs = parse_unary st in
  let rec go acc =
    match peek st with
    | AMP ->
        ignore (next st);
        go (Formula.And (acc, parse_unary st))
    | _ -> acc
  in
  go lhs

and parse_unary st =
  match peek st with
  | BANG ->
      ignore (next st);
      Formula.Not (parse_unary st)
  | KW_EXISTS | KW_FORALL ->
      let quant = next st in
      let rec vars acc =
        match peek st with
        | IDENT x ->
            ignore (next st);
            vars (x :: acc)
        | DOT ->
            ignore (next st);
            List.rev acc
        | t -> fail ("expected variable or '.', found " ^ token_to_string t)
      in
      let xs = vars [] in
      if xs = [] then fail "quantifier binds no variables"
      else begin
        let body = parse_implies st in
        if quant = KW_EXISTS then Formula.exists xs body
        else Formula.forall xs body
      end
  | _ -> parse_atomic st

and parse_atomic st =
  match peek st with
  | KW_TRUE ->
      ignore (next st);
      Formula.True
  | KW_FALSE ->
      ignore (next st);
      Formula.False
  | LPAREN ->
      ignore (next st);
      let f = parse_formula st in
      expect st RPAREN;
      f
  | IDENT name when (match st.tokens with _ :: LPAREN :: _ -> true | _ -> false)
    ->
      ignore (next st);
      expect st LPAREN;
      let ts = comma_separated st term RPAREN in
      expect st RPAREN;
      Formula.Atom (name, ts)
  | IDENT _ | QUOTED _ | INT _ | NULLID _ -> begin
      let lhs = term st in
      match next st with
      | EQUAL -> Formula.Eq (lhs, term st)
      | NEQ -> Formula.Not (Formula.Eq (lhs, term st))
      | t -> fail ("expected = or != after term, found " ^ token_to_string t)
    end
  | t -> fail ("expected a formula, found " ^ token_to_string t)

let parse_formula_string input =
  let st = { tokens = tokenize input } in
  let f = parse_formula st in
  expect st EOF;
  f

let parse_query_string input =
  let st = { tokens = tokenize input } in
  (* Try the headed form  Name(x, y) := body. *)
  let headed =
    match st.tokens with
    | IDENT _ :: LPAREN :: _ ->
        let rec find_assign depth = function
          | LPAREN :: rest -> find_assign (depth + 1) rest
          | RPAREN :: rest -> if depth = 1 then rest else find_assign (depth - 1) rest
          | _ :: rest when depth > 0 -> find_assign depth rest
          | ASSIGN :: _ -> []
          | toks -> toks
        in
        (* headed iff after the closing paren of the head comes := *)
        (match find_assign 1 (List.tl (List.tl st.tokens)) with
        | ASSIGN :: _ -> true
        | _ -> false)
    | _ -> false
  in
  if headed then begin
    let name = ident st in
    expect st LPAREN;
    let vars = comma_separated st (fun st -> ident st) RPAREN in
    expect st RPAREN;
    expect st ASSIGN;
    let body = parse_formula st in
    expect st EOF;
    Query.make ~name vars body
  end
  else begin
    let body = parse_formula st in
    expect st EOF;
    Query.make (Formula.free_vars body) body
  end

let parse_value_string input =
  let st = { tokens = tokenize input } in
  let v = value_literal ~allow_bare:true st in
  expect st EOF;
  v

let parse_tuple st =
  expect st LPAREN;
  let vs = comma_separated st (value_literal ~allow_bare:true) RPAREN in
  expect st RPAREN;
  Tuple.of_list vs

let parse_tuple_string input =
  let st = { tokens = tokenize input } in
  let t = parse_tuple st in
  expect st EOF;
  t

let parse_schema_string input =
  let st = { tokens = tokenize input } in
  let rec decls acc =
    match peek st with
    | EOF -> List.rev acc
    | SEMI ->
        ignore (next st);
        decls acc
    | IDENT _ ->
        let name = ident st in
        expect st LPAREN;
        let attrs = comma_separated st (fun st -> ident st) RPAREN in
        expect st RPAREN;
        decls ((name, attrs) :: acc)
    | t -> fail ("expected a relation declaration, found " ^ token_to_string t)
  in
  Schema.make_with_attrs (decls [])

let parse_instance_string schema input =
  let st = { tokens = tokenize input } in
  let rec entries inst =
    match peek st with
    | EOF -> inst
    | SEMI ->
        ignore (next st);
        entries inst
    | IDENT _ ->
        let name = ident st in
        expect st EQUAL;
        expect st LBRACE;
        let tuples = comma_separated st parse_tuple RBRACE in
        expect st RBRACE;
        let inst =
          List.fold_left (fun inst t -> Instance.add_tuple name t inst) inst tuples
        in
        entries inst
    | t -> fail ("expected a relation assignment, found " ^ token_to_string t)
  in
  entries (Instance.empty schema)

let wrap f input =
  match f input with
  | result -> Ok result
  | exception Parse_error msg -> Error msg
  | exception Lex_error (msg, pos) ->
      Error (Printf.sprintf "%s (at offset %d)" msg pos)
  | exception Invalid_argument msg -> Error msg

let formula = wrap parse_formula_string
let formula_exn = parse_formula_string
let query = wrap parse_query_string
let query_exn = parse_query_string
let value = wrap parse_value_string
let value_exn = parse_value_string
let tuple = wrap parse_tuple_string
let tuple_exn = parse_tuple_string
let schema = wrap parse_schema_string
let schema_exn = parse_schema_string
let instance s = wrap (parse_instance_string s)
let instance_exn = parse_instance_string
