(** Recursive-descent parser for the surface language (see {!Lexer}).

    Entry points return [Result] values; the [_exn] variants raise
    {!Parse_error} and are convenient in examples and tests. *)

exception Parse_error of string

val formula : string -> (Formula.t, string) result
val formula_exn : string -> Formula.t

val query : string -> (Query.t, string) result
(** Either ["Q(x, y) := body"] or a bare formula, in which case the
    answer variables are the free variables in order of first
    occurrence (a sentence yields a Boolean query). *)

val query_exn : string -> Query.t

val value : string -> (Relational.Value.t, string) result
(** A constant literal (['name'], [42], bare identifier) or a null
    ([~i]). *)

val value_exn : string -> Relational.Value.t

val tuple : string -> (Relational.Tuple.t, string) result
(** [("('a', ~1, 42)")], parentheses required; [()] is the empty
    tuple. *)

val tuple_exn : string -> Relational.Tuple.t

val schema : string -> (Relational.Schema.t, string) result
(** ["R(customer, product); U(name)"] — semicolon- or
    whitespace-separated declarations with named attributes. *)

val schema_exn : string -> Relational.Schema.t

val instance :
  Relational.Schema.t -> string -> (Relational.Instance.t, string) result
(** ["R = { ('c1', ~1), ('c2', ~2) }; S = { }"]. Relations not
    mentioned are empty. In database literals, bare identifiers are
    named constants (there are no variables in data). *)

val instance_exn : Relational.Schema.t -> string -> Relational.Instance.t
