type t = { name : string; free : string list; body : Formula.t }

let make ?(name = "Q") free body =
  let sorted = List.sort String.compare free in
  let rec has_dup = function
    | a :: (b :: _ as rest) -> a = b || has_dup rest
    | _ -> false
  in
  if has_dup sorted then invalid_arg "Query.make: duplicate answer variable"
  else begin
    let fv = Formula.free_vars body in
    match List.find_opt (fun x -> not (List.mem x free)) fv with
    | Some x -> invalid_arg ("Query.make: unbound variable " ^ x)
    | None -> { name; free; body }
  end

let boolean ?(name = "Q") body =
  if not (Formula.is_sentence body) then
    invalid_arg "Query.boolean: formula has free variables"
  else { name; free = []; body }

let arity q = List.length q.free
let constants q = Formula.constants q.body
let negate q = { q with name = "not_" ^ q.name; body = Formula.Not q.body }
let instantiate q tuple = Formula.instantiate q.free tuple q.body
let well_formed schema q = Formula.well_formed schema q.body

let pp fmt q =
  if q.free = [] then Format.fprintf fmt "%s() := %a" q.name Formula.pp q.body
  else
    Format.fprintf fmt "%s(%s) := %a" q.name
      (String.concat ", " q.free)
      Formula.pp q.body

let to_string q = Format.asprintf "%a" pp q
