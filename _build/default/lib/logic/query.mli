(** Queries: formulas with an ordered list of answer variables.

    An [m]-ary query maps a database [D] to a subset of [adom(D)^m]
    (paper §2); a Boolean query has [m = 0]. Queries in this library are
    generic by construction (they are logical formulas), with genericity
    constants [C] given by {!constants}. *)

type t = { name : string; free : string list; body : Formula.t }

val make : ?name:string -> string list -> Formula.t -> t
(** [make free body]. The free variables of [body] must all be listed in
    [free] (extra answer variables are allowed and range over the
    domain).
    @raise Invalid_argument if [body] has a free variable not in [free]
    or if [free] contains duplicates. *)

val boolean : ?name:string -> Formula.t -> t
(** A Boolean (0-ary) query. @raise Invalid_argument if not a sentence. *)

val arity : t -> int

val constants : t -> int list
(** The genericity constants [C] of the query. *)

val negate : t -> t
(** Same free variables, negated body. (The complement query; note the
    complement of a generic query is generic — used in the proof of
    Theorem 1.) *)

val instantiate : t -> Relational.Tuple.t -> Formula.t
(** [instantiate q ā] is the sentence [Q(ā)].
    @raise Invalid_argument on arity mismatch. *)

val well_formed : Relational.Schema.t -> t -> (unit, string) result
val pp : Format.formatter -> t -> unit
val to_string : t -> string
