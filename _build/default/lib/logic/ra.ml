module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance

type pred =
  | Eq_col of int * int
  | Eq_const of int * Value.t
  | Neq_col of int * int
  | Neq_const of int * Value.t
  | And_p of pred * pred
  | Or_p of pred * pred

type t =
  | Rel of string
  | Select of pred * t
  | Project of int list * t
  | Product of t * t
  | Union of t * t
  | Diff of t * t

(* ------------------------------------------------------------------ *)
(* Static checks                                                        *)
(* ------------------------------------------------------------------ *)

let rec pred_max_col = function
  | Eq_col (i, j) | Neq_col (i, j) -> max i j
  | Eq_const (i, _) | Neq_const (i, _) -> i
  | And_p (p, q) | Or_p (p, q) -> max (pred_max_col p) (pred_max_col q)

let rec pred_min_col = function
  | Eq_col (i, j) | Neq_col (i, j) -> min i j
  | Eq_const (i, _) | Neq_const (i, _) -> i
  | And_p (p, q) | Or_p (p, q) -> min (pred_min_col p) (pred_min_col q)

let rec arity schema = function
  | Rel r -> (
      match Schema.arity_opt schema r with
      | Some a -> Ok a
      | None -> Error (Printf.sprintf "unknown relation %s" r))
  | Select (p, e) -> (
      match arity schema e with
      | Error _ as err -> err
      | Ok a ->
          if pred_min_col p < 0 || pred_max_col p >= a then
            Error "selection predicate references a column out of range"
          else Ok a)
  | Project (cols, e) -> (
      match arity schema e with
      | Error _ as err -> err
      | Ok a ->
          if List.exists (fun c -> c < 0 || c >= a) cols then
            Error "projection references a column out of range"
          else Ok (List.length cols))
  | Product (e1, e2) -> (
      match (arity schema e1, arity schema e2) with
      | Ok a1, Ok a2 -> Ok (a1 + a2)
      | (Error _ as err), _ | _, (Error _ as err) -> err)
  | Union (e1, e2) | Diff (e1, e2) -> (
      match (arity schema e1, arity schema e2) with
      | Ok a1, Ok a2 ->
          if a1 = a2 then Ok a1
          else Error (Printf.sprintf "arity mismatch: %d vs %d" a1 a2)
      | (Error _ as err), _ | _, (Error _ as err) -> err)

let well_formed schema e = Result.map (fun _ -> ()) (arity schema e)

let rec positive_pred = function
  | Eq_col _ | Eq_const _ -> true
  | Neq_col _ | Neq_const _ -> false
  | And_p (p, q) | Or_p (p, q) -> positive_pred p && positive_pred q

let rec is_spju = function
  | Rel _ -> true
  | Select (p, e) -> positive_pred p && is_spju e
  | Project (_, e) -> is_spju e
  | Product (e1, e2) | Union (e1, e2) -> is_spju e1 && is_spju e2
  | Diff _ -> false

(* ------------------------------------------------------------------ *)
(* Direct evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let rec eval_pred tuple = function
  | Eq_col (i, j) -> Value.equal (Tuple.get tuple i) (Tuple.get tuple j)
  | Eq_const (i, v) -> Value.equal (Tuple.get tuple i) v
  | Neq_col (i, j) -> not (Value.equal (Tuple.get tuple i) (Tuple.get tuple j))
  | Neq_const (i, v) -> not (Value.equal (Tuple.get tuple i) v)
  | And_p (p, q) -> eval_pred tuple p && eval_pred tuple q
  | Or_p (p, q) -> eval_pred tuple p || eval_pred tuple q

let product r1 r2 =
  let a = Relation.arity r1 + Relation.arity r2 in
  Relation.fold
    (fun t1 acc ->
      Relation.fold
        (fun t2 acc ->
          Relation.add
            (Tuple.of_list (Tuple.to_list t1 @ Tuple.to_list t2))
            acc)
        r2 acc)
    r1 (Relation.empty a)

let eval inst e =
  (match well_formed (Instance.schema inst) e with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ra.eval: " ^ msg));
  let rec go = function
    | Rel r -> Instance.relation inst r
    | Select (p, e) -> Relation.filter (fun t -> eval_pred t p) (go e)
    | Project (cols, e) -> Relation.project cols (go e)
    | Product (e1, e2) -> product (go e1) (go e2)
    | Union (e1, e2) -> Relation.union (go e1) (go e2)
    | Diff (e1, e2) -> Relation.diff (go e1) (go e2)
  in
  go e

(* ------------------------------------------------------------------ *)
(* Compilation to first-order logic                                     *)
(* ------------------------------------------------------------------ *)

let to_query ?(name = "RA") schema e =
  (match well_formed schema e with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ra.to_query: " ^ msg));
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "v%d" !counter
  in
  let pred_formula vars p =
    let col i = Formula.Var (List.nth vars i) in
    let rec go = function
      | Eq_col (i, j) -> Formula.Eq (col i, col j)
      | Eq_const (i, v) -> Formula.Eq (col i, Formula.Val v)
      | Neq_col (i, j) -> Formula.Not (Formula.Eq (col i, col j))
      | Neq_const (i, v) -> Formula.Not (Formula.Eq (col i, Formula.Val v))
      | And_p (p, q) -> Formula.And (go p, go q)
      | Or_p (p, q) -> Formula.Or (go p, go q)
    in
    go p
  in
  (* compile returns (column variables, body). *)
  let rec compile = function
    | Rel r ->
        let a = Schema.arity schema r in
        let vars = List.init a (fun _ -> fresh ()) in
        (vars, Formula.Atom (r, List.map (fun x -> Formula.Var x) vars))
    | Select (p, e) ->
        let vars, body = compile e in
        (vars, Formula.And (body, pred_formula vars p))
    | Project (cols, e) ->
        let vars, body = compile e in
        let out = List.map (fun _ -> fresh ()) cols in
        let equalities =
          List.map2
            (fun z c -> Formula.Eq (Formula.Var z, Formula.Var (List.nth vars c)))
            out cols
        in
        (out, Formula.exists vars (Formula.conj (body :: equalities)))
    | Product (e1, e2) ->
        let vars1, body1 = compile e1 in
        let vars2, body2 = compile e2 in
        (vars1 @ vars2, Formula.And (body1, body2))
    | Union (e1, e2) ->
        let vars1, body1 = compile e1 in
        let vars2, body2 = compile e2 in
        (* align e2's columns with e1's variables *)
        let body2 =
          Formula.subst
            (List.map2 (fun x2 x1 -> (x2, Formula.Var x1)) vars2 vars1)
            body2
        in
        (vars1, Formula.Or (body1, body2))
    | Diff (e1, e2) ->
        let vars1, body1 = compile e1 in
        let vars2, body2 = compile e2 in
        let body2 =
          Formula.subst
            (List.map2 (fun x2 x1 -> (x2, Formula.Var x1)) vars2 vars1)
            body2
        in
        (vars1, Formula.And (body1, Formula.Not body2))
  in
  let vars, body = compile e in
  Query.make ~name vars body

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let rec pp_pred fmt = function
  | Eq_col (i, j) -> Format.fprintf fmt "#%d = #%d" i j
  | Eq_const (i, v) -> Format.fprintf fmt "#%d = %s" i (Value.to_string v)
  | Neq_col (i, j) -> Format.fprintf fmt "#%d != #%d" i j
  | Neq_const (i, v) -> Format.fprintf fmt "#%d != %s" i (Value.to_string v)
  | And_p (p, q) -> Format.fprintf fmt "(%a & %a)" pp_pred p pp_pred q
  | Or_p (p, q) -> Format.fprintf fmt "(%a | %a)" pp_pred p pp_pred q

let rec pp fmt = function
  | Rel r -> Format.pp_print_string fmt r
  | Select (p, e) -> Format.fprintf fmt "select[%a](%a)" pp_pred p pp e
  | Project (cols, e) ->
      Format.fprintf fmt "project[%s](%a)"
        (String.concat "," (List.map string_of_int cols))
        pp e
  | Product (e1, e2) -> Format.fprintf fmt "(%a x %a)" pp e1 pp e2
  | Union (e1, e2) -> Format.fprintf fmt "(%a union %a)" pp e1 pp e2
  | Diff (e1, e2) -> Format.fprintf fmt "(%a minus %a)" pp e1 pp e2

let to_string e = Format.asprintf "%a" pp e
