(** Relational algebra.

    The paper treats relational calculus and relational algebra as
    interchangeable (§2: conjunctive queries are the select-project-join
    fragment, UCQs add union; §5 speaks of "queries in relational
    algebra/calculus"). This module provides the algebraic side: an AST
    with a direct set-at-a-time evaluator, and a compiler into
    first-order {!Query}s so that all the measure/comparison machinery
    applies to algebra plans unchanged. Direct evaluation and the
    compiled query agree on every instance — a property the test suite
    checks on randomized inputs.

    Selection predicates compare columns (0-based) and constants.
    Evaluating an expression directly over an {e incomplete} instance
    compares nulls structurally, which is exactly naïve evaluation. *)

type pred =
  | Eq_col of int * int  (** column = column *)
  | Eq_const of int * Relational.Value.t  (** column = value *)
  | Neq_col of int * int
  | Neq_const of int * Relational.Value.t
  | And_p of pred * pred
  | Or_p of pred * pred

type t =
  | Rel of string  (** a base relation *)
  | Select of pred * t
  | Project of int list * t  (** keep these columns, in order *)
  | Product of t * t
  | Union of t * t
  | Diff of t * t

(** {1 Static checks} *)

val arity : Relational.Schema.t -> t -> (int, string) result
(** Output arity; [Error] on unknown relations, column references out
    of range, or arity mismatches in [Union]/[Diff]. *)

val well_formed : Relational.Schema.t -> t -> (unit, string) result

val is_spju : t -> bool
(** Select–project–join–union fragment (no difference; selections
    positive): the algebraic counterpart of UCQs. *)

(** {1 Evaluation} *)

val eval : Relational.Instance.t -> t -> Relational.Relation.t
(** Direct set-at-a-time evaluation.
    @raise Invalid_argument on ill-formed expressions. *)

(** {1 Compilation to first-order logic} *)

val to_query : ?name:string -> Relational.Schema.t -> t -> Query.t
(** An FO query equivalent to the expression (answer variables in
    column order).
    @raise Invalid_argument on ill-formed expressions. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
