open Ra

(* --- predicate column manipulation --------------------------------- *)

let rec map_pred_cols f = function
  | Eq_col (i, j) -> Eq_col (f i, f j)
  | Eq_const (i, v) -> Eq_const (f i, v)
  | Neq_col (i, j) -> Neq_col (f i, f j)
  | Neq_const (i, v) -> Neq_const (f i, v)
  | And_p (p, q) -> And_p (map_pred_cols f p, map_pred_cols f q)
  | Or_p (p, q) -> Or_p (map_pred_cols f p, map_pred_cols f q)

let rec pred_cols = function
  | Eq_col (i, j) | Neq_col (i, j) -> [ i; j ]
  | Eq_const (i, _) | Neq_const (i, _) -> [ i ]
  | And_p (p, q) | Or_p (p, q) -> pred_cols p @ pred_cols q

(* Split a predicate into its top-level conjuncts. *)
let rec conjuncts = function
  | And_p (p, q) -> conjuncts p @ conjuncts q
  | p -> [ p ]

let conj_of = function
  | [] -> None
  | p :: rest -> Some (List.fold_left (fun acc q -> And_p (acc, q)) p rest)

(* --- one bottom-up rewriting pass ----------------------------------- *)

let rewrite_once schema e =
  let arity_exn e =
    match Ra.arity schema e with
    | Ok a -> a
    | Error msg -> invalid_arg ("Ra_opt: " ^ msg)
  in
  let rec go e =
    let e =
      match e with
      | Rel _ -> e
      | Select (p, e1) -> Select (p, go e1)
      | Project (cols, e1) -> Project (cols, go e1)
      | Product (e1, e2) -> Product (go e1, go e2)
      | Union (e1, e2) -> Union (go e1, go e2)
      | Diff (e1, e2) -> Diff (go e1, go e2)
    in
    match e with
    (* selection cascade *)
    | Select (p, Select (q, e1)) -> Select (And_p (p, q), e1)
    (* push selection through union / difference (left side) *)
    | Select (p, Union (e1, e2)) -> Union (Select (p, e1), Select (p, e2))
    | Select (p, Diff (e1, e2)) -> Diff (Select (p, e1), e2)
    (* push selection through projection: remap columns *)
    | Select (p, Project (cols, e1)) ->
        let remap i =
          match List.nth_opt cols i with
          | Some c -> c
          | None -> invalid_arg "Ra_opt: selection column out of range"
        in
        Project (cols, Select (map_pred_cols remap p, e1))
    (* split a conjunctive selection across a product *)
    | Select (p, Product (e1, e2)) -> begin
        let a1 = arity_exn e1 in
        let left, rest =
          List.partition
            (fun c -> List.for_all (fun i -> i < a1) (pred_cols c))
            (conjuncts p)
        in
        let right, mixed =
          List.partition
            (fun c -> List.for_all (fun i -> i >= a1) (pred_cols c))
            rest
        in
        if left = [] && right = [] then Select (p, Product (e1, e2))
        else begin
          let e1' =
            match conj_of left with None -> e1 | Some q -> Select (q, e1)
          in
          let e2' =
            match conj_of right with
            | None -> e2
            | Some q -> Select (map_pred_cols (fun i -> i - a1) q, e2)
          in
          let core = Product (e1', e2') in
          match conj_of mixed with None -> core | Some q -> Select (q, core)
        end
      end
    (* projection fusion *)
    | Project (outer, Project (inner, e1)) ->
        Project (List.map (fun i -> List.nth inner i) outer, e1)
    (* identity projection removal *)
    | Project (cols, e1) when cols = List.init (arity_exn e1) Fun.id -> e1
    | e -> e
  in
  go e

let size e =
  let rec go = function
    | Rel _ -> 1
    | Select (_, e) | Project (_, e) -> 1 + go e
    | Product (e1, e2) | Union (e1, e2) | Diff (e1, e2) -> 1 + go e1 + go e2
  in
  go e

let selection_depths e =
  let rec go = function
    | Rel _ -> []
    | Select (_, e1) -> (size e1 :: go e1)
    | Project (_, e1) -> go e1
    | Product (e1, e2) | Union (e1, e2) | Diff (e1, e2) -> go e1 @ go e2
  in
  go e

let optimize schema e =
  (match Ra.well_formed schema e with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ra_opt.optimize: " ^ msg));
  let rec fixpoint e n =
    let e' = rewrite_once schema e in
    if e' = e || n > 100 then e else fixpoint e' (n + 1)
  in
  fixpoint e 0
