(** Algebraic rewriting for relational-algebra plans.

    Classic equivalence-preserving rewrites — selection cascading and
    pushdown (through projection, union, difference, and into the sides
    of a product), projection fusion, identity-projection removal —
    applied bottom-up to a fixpoint. On set semantics over [Const ∪
    Null] every rule preserves {!Ra.eval} exactly (property-tested on
    random complete and incomplete instances), so optimized plans can be
    fed to the measure machinery interchangeably with their originals.

    The optimizer is deliberately small: it is the substrate for the
    "ablation" comparisons in the benchmark (evaluate a plan before and
    after pushdown), not a cost-based planner. *)

val optimize : Relational.Schema.t -> Ra.t -> Ra.t
(** Fixpoint of all rewrites; idempotent; preserves {!Ra.eval}.
    @raise Invalid_argument if the plan is not well-formed for the
    schema. *)

val size : Ra.t -> int
(** Number of operators, for before/after comparisons. *)

val selection_depths : Ra.t -> int list
(** For each selection in the plan, the number of operators below it —
    pushdown drives these numbers down; used by the ablation bench. *)
