module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Instance = Relational.Instance

type bool3 = True | False | Unknown

let band a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | Unknown, (True | Unknown) | True, Unknown -> Unknown

let bor a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | Unknown, (False | Unknown) | False, Unknown -> Unknown

let bnot = function True -> False | False -> True | Unknown -> Unknown
let of_bool b = if b then True else False

let to_string3 = function
  | True -> "true"
  | False -> "false"
  | Unknown -> "unknown"

let eq_value a b =
  match (a, b) with
  | Value.Null _, _ | _, Value.Null _ -> Unknown
  | Value.Const x, Value.Const y -> of_bool (x = y)

let tuple_match candidate stored =
  let n = Tuple.arity candidate in
  let rec go acc i =
    if i >= n then acc
    else
      match band acc (eq_value (Tuple.get candidate i) (Tuple.get stored i)) with
      | False -> False
      | acc -> go acc (i + 1)
  in
  go True 0

let membership rel candidate =
  Relation.fold (fun stored acc -> bor acc (tuple_match candidate stored)) rel False

let term_value env = function
  | Formula.Val v -> v
  | Formula.Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> invalid_arg ("Sql3vl: unbound variable " ^ x))

let holds inst env f =
  let domain = Eval.domain inst f in
  let rec go env = function
    | Formula.True -> True
    | Formula.False -> False
    | Formula.Atom (r, ts) ->
        let candidate = Tuple.of_list (List.map (term_value env) ts) in
        membership (Instance.relation inst r) candidate
    | Formula.Eq (a, b) -> eq_value (term_value env a) (term_value env b)
    | Formula.Not g -> bnot (go env g)
    | Formula.And (g, h) -> band (go env g) (go env h)
    | Formula.Or (g, h) -> bor (go env g) (go env h)
    | Formula.Implies (g, h) -> bor (bnot (go env g)) (go env h)
    | Formula.Exists (x, g) ->
        List.fold_left (fun acc v -> bor acc (go ((x, v) :: env) g)) False domain
    | Formula.Forall (x, g) ->
        List.fold_left (fun acc v -> band acc (go ((x, v) :: env) g)) True domain
  in
  go env f

let sentence_holds inst f =
  if not (Formula.is_sentence f) then
    invalid_arg "Sql3vl.sentence_holds: formula has free variables"
  else holds inst [] f

let answers_with verdict inst (q : Query.t) =
  let m = Query.arity q in
  let result = ref (Relation.empty m) in
  let adom = Instance.adom inst in
  let rec assign env = function
    | [] ->
        if holds inst env q.Query.body = verdict then
          result :=
            Relation.add
              (Tuple.of_list (List.map (fun x -> List.assoc x env) q.Query.free))
              !result
    | x :: rest -> List.iter (fun v -> assign ((x, v) :: env) rest) adom
  in
  assign [] q.Query.free;
  !result

let answers inst q = answers_with True inst q
let maybe_answers inst q = answers_with Unknown inst q
