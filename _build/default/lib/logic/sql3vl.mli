(** SQL-style three-valued evaluation (paper §6, "SQL nulls").

    The paper's future-work section asks how its results read under SQL
    nulls, which are neither marked nor Codd nulls: SQL evaluates
    conditions in a three-valued logic where any comparison touching a
    null is [Unknown], and a query returns the tuples whose condition is
    [True] (so both [False] and [Unknown] are filtered out).

    This module implements that semantics over our instances so the
    regimes can be compared executably:

    - on complete databases, 3VL evaluation coincides with the ordinary
      Boolean semantics (a test);
    - on incomplete databases it differs from naïve evaluation with
      marked nulls: naïvely [⊥1 = ⊥1] is true and [⊥1 = ⊥2] is false,
      while SQL makes both [Unknown];
    - returning only [True] tuples makes SQL evaluation {e sound but
      incomplete} for certain answers on positive queries, and unsound
      in general (Libkin, "SQL's three-valued logic and certain
      answers", 2016) — the test suite exhibits both phenomena.

    Atom membership: a tuple belongs to a relation if some stored tuple
    matches it with all comparisons [True]; if no [True] match exists
    but some match is [Unknown] (i.e. agrees on all non-null positions),
    membership is [Unknown]. *)

type bool3 = True | False | Unknown

val band : bool3 -> bool3 -> bool3
val bor : bool3 -> bool3 -> bool3
val bnot : bool3 -> bool3
val of_bool : bool -> bool3
val to_string3 : bool3 -> string

val eq_value : Relational.Value.t -> Relational.Value.t -> bool3
(** SQL comparison: [Unknown] as soon as either side is a null. *)

val holds :
  Relational.Instance.t ->
  (string * Relational.Value.t) list ->
  Formula.t ->
  bool3
(** Three-valued truth under an environment; quantifiers fold [bor] /
    [band] over the active domain (plus the formula's constants).
    @raise Invalid_argument on unbound variables. *)

val sentence_holds : Relational.Instance.t -> Formula.t -> bool3

val answers : Relational.Instance.t -> Query.t -> Relational.Relation.t
(** The tuples over the active domain whose condition evaluates to
    [True] — SQL's WHERE semantics. *)

val maybe_answers : Relational.Instance.t -> Query.t -> Relational.Relation.t
(** The tuples evaluating to [Unknown] (SQL discards them; surfacing
    them is one of the paper's suggested refinements). *)
