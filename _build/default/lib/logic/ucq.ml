module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Instance = Relational.Instance

type cq = { exvars : string list; atoms : (string * Formula.term list) list }
type t = { free : string list; disjuncts : cq list }

(* Rename every quantified variable to a globally fresh name so that
   disjunct combination never captures. *)
let standardize_apart f =
  let counter = ref 0 in
  let fresh base =
    incr counter;
    Printf.sprintf "%s~%d" base !counter
  in
  let rec go ren f =
    let rename_term = function
      | Formula.Var x as t -> (
          match List.assoc_opt x ren with
          | Some x' -> Formula.Var x'
          | None -> t)
      | Formula.Val _ as t -> t
    in
    match f with
    | Formula.True | Formula.False -> f
    | Formula.Atom (r, ts) -> Formula.Atom (r, List.map rename_term ts)
    | Formula.Eq (a, b) -> Formula.Eq (rename_term a, rename_term b)
    | Formula.Not g -> Formula.Not (go ren g)
    | Formula.And (g, h) -> Formula.And (go ren g, go ren h)
    | Formula.Or (g, h) -> Formula.Or (go ren g, go ren h)
    | Formula.Implies (g, h) -> Formula.Implies (go ren g, go ren h)
    | Formula.Exists (x, g) ->
        let x' = fresh x in
        Formula.Exists (x', go ((x, x') :: ren) g)
    | Formula.Forall (x, g) ->
        let x' = fresh x in
        Formula.Forall (x', go ((x, x') :: ren) g)
  in
  go [] f

(* Normalization into a list of disjuncts; assumes bound variables are
   standardized apart and the formula is in the ∃,∧,∨ fragment. *)
let rec norm f : cq list option =
  match f with
  | Formula.True -> Some [ { exvars = []; atoms = [] } ]
  | Formula.False -> Some []
  | Formula.Atom (r, ts) -> Some [ { exvars = []; atoms = [ (r, ts) ] } ]
  | Formula.Or (g, h) -> (
      match (norm g, norm h) with
      | Some dg, Some dh -> Some (dg @ dh)
      | _, _ -> None)
  | Formula.And (g, h) -> (
      match (norm g, norm h) with
      | Some dg, Some dh ->
          Some
            (List.concat_map
               (fun cg ->
                 List.map
                   (fun ch ->
                     { exvars = cg.exvars @ ch.exvars;
                       atoms = cg.atoms @ ch.atoms
                     })
                   dh)
               dg)
      | _, _ -> None)
  | Formula.Exists (x, g) ->
      Option.map
        (List.map (fun c ->
             (* Drop the variable if the disjunct does not mention it
                (∃ over ∨ may leave some disjuncts without x). *)
             let mentions =
               List.exists
                 (fun (_, ts) -> List.mem (Formula.Var x) ts)
                 c.atoms
             in
             if mentions then { c with exvars = x :: c.exvars } else c))
        (norm g)
  | Formula.Eq _ | Formula.Not _ | Formula.Implies _ | Formula.Forall _ -> None

let of_query (q : Query.t) =
  match norm (standardize_apart q.Query.body) with
  | None -> None
  | Some disjuncts -> Some { free = q.Query.free; disjuncts }

let max_atoms t =
  List.fold_left (fun m c -> max m (List.length c.atoms)) 0 t.disjuncts

let to_query ?(name = "Q") t =
  let cq_formula c =
    Formula.exists c.exvars
      (Formula.conj (List.map (fun (r, ts) -> Formula.Atom (r, ts)) c.atoms))
  in
  Query.make ~name t.free (Formula.disj (List.map cq_formula t.disjuncts))

let cq_holds inst c env =
  (* Backtracking homomorphism search: process atoms left to right,
     extending the partial assignment of existential variables by
     matching each atom against the tuples of its relation. *)
  let value_of env = function
    | Formula.Val v -> Some v
    | Formula.Var x -> List.assoc_opt x env
  in
  let match_atom env (r, ts) k =
    let rel = Instance.relation inst r in
    Relation.exists
      (fun tuple ->
        let rec unify env i = function
          | [] -> k env
          | t :: rest -> (
              let actual = Tuple.get tuple i in
              match value_of env t with
              | Some v -> Value.equal v actual && unify env (i + 1) rest
              | None -> (
                  match t with
                  | Formula.Var x -> unify ((x, actual) :: env) (i + 1) rest
                  | Formula.Val _ -> assert false))
        in
        unify env 0 ts)
      rel
  in
  let rec go env = function
    | [] -> true
    | atom :: rest -> match_atom env atom (fun env' -> go env' rest)
  in
  go env c.atoms

let pp fmt t =
  let pp_cq fmt c =
    let atoms =
      String.concat " & "
        (List.map
           (fun (r, ts) ->
             Printf.sprintf "%s(%s)" r
               (String.concat ", "
                  (List.map (Format.asprintf "%a" Formula.pp_term) ts)))
           c.atoms)
    in
    let atoms = if atoms = "" then "true" else atoms in
    if c.exvars = [] then Format.pp_print_string fmt atoms
    else Format.fprintf fmt "exists %s. %s" (String.concat " " c.exvars) atoms
  in
  if t.disjuncts = [] then Format.pp_print_string fmt "false"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "  |  ")
      pp_cq fmt t.disjuncts
