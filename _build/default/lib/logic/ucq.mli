(** Structured unions of conjunctive queries.

    Theorem 8's polynomial-time algorithms need the query as an explicit
    union [Q1 ∨ … ∨ Qr] where each [Qi(x̄) = ∃ȳ α1 ∧ … ∧ αp] with
    relational atoms [αj]. This module normalizes any formula of the
    [∃,∧,∨]-fragment into that shape (pushing [∃] through [∨] and
    distributing [∧] over [∨], after standardizing bound variables
    apart) and exposes the parameter [p = max_i p_i] used by the
    small-witness bound [p + k] of the theorem. *)

type cq = {
  exvars : string list;  (** existentially quantified variables [ȳ] *)
  atoms : (string * Formula.term list) list;  (** the conjuncts *)
}

type t = {
  free : string list;  (** answer variables [x̄], shared by disjuncts *)
  disjuncts : cq list;
}

val of_query : Query.t -> t option
(** [None] if the query body is not in the [∃,∧,∨]-fragment over
    relational atoms. An unsatisfiable body ([False]) yields an empty
    disjunct list; a trivially true Boolean body yields a disjunct with
    no atoms. *)

val max_atoms : t -> int
(** The parameter [p]: the largest number of atoms in a disjunct
    (0 for the empty union). *)

val to_query : ?name:string -> t -> Query.t
(** Rebuilds a {!Query.t} in the normalized shape. *)

val cq_holds :
  Relational.Instance.t ->
  cq ->
  (string * Relational.Value.t) list ->
  bool
(** Satisfaction of one disjunct under a binding of the free variables:
    does some assignment of the existential variables into the active
    domain make all atoms hold? Implemented by backtracking over atoms
    (homomorphism search), not by enumerating assignments. *)

val pp : Format.formatter -> t -> unit
