lib/probdb/pworld.ml: Arith Incomplete List Logic Map Option Relational
