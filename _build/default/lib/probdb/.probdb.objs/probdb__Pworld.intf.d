lib/probdb/pworld.mli: Arith Logic Relational
