module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Query = Logic.Query
module Eval = Logic.Eval
module Enumerate = Incomplete.Enumerate
module Valuation = Incomplete.Valuation
module Rat = Arith.Rat

module DMap = Map.Make (Instance)

type t = Rat.t DMap.t

let of_worlds pairs =
  let merged =
    List.fold_left
      (fun m (inst, p) ->
        if Rat.sign p < 0 then
          invalid_arg "Pworld.of_worlds: negative probability"
        else if Rat.is_zero p then m
        else
          DMap.update inst
            (fun existing ->
              Some (Rat.add p (Option.value ~default:Rat.zero existing)))
            m)
      DMap.empty pairs
  in
  let total = DMap.fold (fun _ p acc -> Rat.add p acc) merged Rat.zero in
  if not (Rat.is_one total) then
    invalid_arg
      ("Pworld.of_worlds: probabilities sum to " ^ Rat.to_string total)
  else merged

let of_incomplete inst ~k =
  let nulls = Instance.nulls inst in
  let m = List.length nulls in
  if m > 0 && k < 1 then
    invalid_arg "Pworld.of_incomplete: k must be at least 1"
  else begin
    let p = Rat.inv (Rat.of_bigint (Arith.Combinat.power k m)) in
    let merged =
      Enumerate.fold_valuations ~nulls ~k
        (fun acc v ->
          DMap.update (Valuation.instance v inst)
            (fun existing ->
              Some (Rat.add p (Option.value ~default:Rat.zero existing)))
            acc)
        DMap.empty
    in
    merged
  end

let worlds t = DMap.bindings t
let world_count t = DMap.cardinal t

let prob_sentence t sentence =
  DMap.fold
    (fun inst p acc ->
      if Eval.sentence_holds inst sentence then Rat.add p acc else acc)
    t Rat.zero

let prob_tuple t q tuple =
  if Tuple.has_null tuple then
    invalid_arg "Pworld.prob_tuple: tuple must be null-free"
  else
    DMap.fold
      (fun inst p acc ->
        if Eval.tuple_in_answer inst q tuple then Rat.add p acc else acc)
      t Rat.zero

let expected_answer_count t q =
  DMap.fold
    (fun inst p acc ->
      Rat.add acc (Rat.mul_int p (Relation.cardinal (Eval.answers inst q))))
    t Rat.zero

let map_worlds f t =
  DMap.fold
    (fun inst p acc ->
      DMap.update (f inst)
        (fun existing -> Some (Rat.add p (Option.value ~default:Rat.zero existing)))
        acc)
    t DMap.empty
