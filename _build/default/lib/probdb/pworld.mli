(** A small possible-worlds probabilistic database engine.

    The paper remarks (§3.2) that each individual value [µ^k(Q,D)] can
    be cast as query evaluation over a probabilistic database. This
    module realizes the remark: an incomplete database [D] with the
    uniform distribution over [V^k(D)] induces a finite distribution
    over complete databases (worlds), and [µ^k] is the probability of
    the query's truth under it. It serves as a third, independent
    computation of [µ^k] (besides brute-force valuation counting and
    the support polynomial), used for cross-validation in experiment
    E20. *)

type t
(** A finite distribution over complete instances. Probabilities are
    exact rationals summing to 1 (enforced at construction). *)

val of_worlds : (Relational.Instance.t * Arith.Rat.t) list -> t
(** Merges duplicate worlds, drops zero-probability ones.
    @raise Invalid_argument if probabilities are negative or do not sum
    to 1. *)

val of_incomplete : Relational.Instance.t -> k:int -> t
(** The distribution of [v(D)] for [v] uniform on [V^k(D)]. Worlds
    reachable by several valuations aggregate their probabilities, so
    the world count can be far below [k^m].
    @raise Invalid_argument if [k < 1] and the database has nulls. *)

val worlds : t -> (Relational.Instance.t * Arith.Rat.t) list
val world_count : t -> int

val prob_sentence : t -> Logic.Formula.t -> Arith.Rat.t
(** Probability that a Boolean query is true. *)

val prob_tuple :
  t -> Logic.Query.t -> Relational.Tuple.t -> Arith.Rat.t
(** Probability that a (null-free) tuple is an answer.
    @raise Invalid_argument if the tuple contains nulls — a world has
    no nulls left, so null-carrying answers are a property of the
    valuation, not of the world; use {!Incomplete.Support} for those. *)

val expected_answer_count : t -> Logic.Query.t -> Arith.Rat.t
(** Expected cardinality of the answer relation. *)

val map_worlds : (Relational.Instance.t -> Relational.Instance.t) -> t -> t
