lib/relational/instance.ml: Arith Array Format Int List Map Relation Schema String Tuple Value
