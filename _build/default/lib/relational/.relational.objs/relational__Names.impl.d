lib/relational/names.ml: Hashtbl
