lib/relational/names.mli:
