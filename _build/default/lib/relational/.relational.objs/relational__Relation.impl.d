lib/relational/relation.ml: Format Int List Printf Set Tuple
