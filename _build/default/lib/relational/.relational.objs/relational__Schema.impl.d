lib/relational/schema.ml: Format List Map Option String
