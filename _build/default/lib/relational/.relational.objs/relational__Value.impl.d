lib/relational/value.ml: Format Int Names Printf
