module SMap = Map.Make (String)

type t = { schema : Schema.t; relations : Relation.t SMap.t }

let empty schema =
  let relations =
    List.fold_left
      (fun m name -> SMap.add name (Relation.empty (Schema.arity schema name)) m)
      SMap.empty (Schema.relations schema)
  in
  { schema; relations }

let schema t = t.schema

let relation t name =
  match SMap.find_opt name t.relations with
  | Some r -> r
  | None -> raise Not_found

let set_relation name r t =
  match Schema.arity_opt t.schema name with
  | None -> invalid_arg ("Instance.set_relation: unknown relation " ^ name)
  | Some a when a <> Relation.arity r ->
      invalid_arg ("Instance.set_relation: arity mismatch for " ^ name)
  | Some _ -> { t with relations = SMap.add name r t.relations }

let add_tuple name tuple t =
  match SMap.find_opt name t.relations with
  | None -> invalid_arg ("Instance.add_tuple: unknown relation " ^ name)
  | Some r -> { t with relations = SMap.add name (Relation.add tuple r) t.relations }

let of_rows schema rows =
  List.fold_left
    (fun inst (name, tuples) ->
      List.fold_left
        (fun inst row -> add_tuple name (Tuple.of_list row) inst)
        inst tuples)
    (empty schema) rows

let mem t name tuple = Relation.mem tuple (relation t name)

let fold f t acc =
  SMap.fold
    (fun name r acc -> Relation.fold (fun tuple acc -> f name tuple acc) r acc)
    t.relations acc

let total_tuples t = fold (fun _ _ n -> n + 1) t 0

let nulls t =
  SMap.fold (fun _ r acc -> Relation.nulls r @ acc) t.relations []
  |> List.sort_uniq Int.compare

let constants t =
  SMap.fold (fun _ r acc -> Relation.constants r @ acc) t.relations []
  |> List.sort_uniq Int.compare

let adom t =
  List.map Value.const (constants t) @ List.map Value.null (nulls t)

let null_count t = List.length (nulls t)
let is_complete t = nulls t = []
let max_constant t = List.fold_left max 0 (constants t)

let map_values f t =
  { t with relations = SMap.map (Relation.map_values f) t.relations }

let subst_nulls f t =
  map_values (function Value.Const _ as c -> c | Value.Null i -> f i) t

let union a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Instance.union: different schemas"
  else
    { a with
      relations =
        SMap.merge
          (fun _ ra rb ->
            match (ra, rb) with
            | Some ra, Some rb -> Some (Relation.union ra rb)
            | Some r, None | None, Some r -> Some r
            | None, None -> None)
          a.relations b.relations
    }

let equal a b = SMap.equal Relation.equal a.relations b.relations

let compare a b =
  SMap.compare Relation.compare a.relations b.relations

let isomorphic a b =
  let na = nulls a and nb = nulls b in
  List.length na = List.length nb
  && begin
       let try_map assoc =
         let f i = Value.null (List.assoc i assoc) in
         equal (subst_nulls f a) b
       in
       List.exists
         (fun perm -> try_map (List.combine na perm))
         (Arith.Combinat.permutations nb)
     end

let pp fmt t =
  let names = Schema.relations t.schema in
  let non_empty = List.filter (fun n -> not (Relation.is_empty (relation t n))) names in
  if non_empty = [] then Format.fprintf fmt "(empty instance)"
  else
    List.iteri
      (fun idx name ->
        if idx > 0 then Format.pp_print_newline fmt ();
        let r = relation t name in
        let rows =
          List.map
            (fun tup -> List.map Value.to_string (Tuple.to_list tup))
            (Relation.to_list r)
        in
        let arity = Relation.arity r in
        let header =
          match Schema.attrs t.schema name with
          | Some attrs -> attrs
          | None -> List.init arity (fun i -> "col" ^ string_of_int i)
        in
        let widths = Array.of_list (List.map String.length header) in
        List.iter
          (fun row ->
            List.iteri
              (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
              row)
          rows;
        let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
        Format.fprintf fmt "%s:@." name;
        if arity > 0 then begin
          Format.fprintf fmt "  | %s |@."
            (String.concat " | " (List.mapi pad header));
          Format.fprintf fmt "  |%s|@."
            (String.concat "+"
               (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)));
          List.iter
            (fun row ->
              Format.fprintf fmt "  | %s |@."
                (String.concat " | " (List.mapi pad row)))
            rows
        end
        else Format.fprintf fmt "  (nullary, %d tuple(s))@." (Relation.cardinal r))
      non_empty

let to_string t = Format.asprintf "%a" pp t
