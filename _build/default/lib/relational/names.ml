let table : (string, int) Hashtbl.t = Hashtbl.create 64
let reverse : (int, string) Hashtbl.t = Hashtbl.create 64
let next = ref 1

let intern name =
  match Hashtbl.find_opt table name with
  | Some code -> code
  | None ->
      let code = !next in
      incr next;
      Hashtbl.add table name code;
      Hashtbl.add reverse code name;
      code

let name_of code = Hashtbl.find_opt reverse code

let to_string code =
  match name_of code with Some n -> n | None -> "#" ^ string_of_int code

let fresh () =
  let code = !next in
  incr next;
  code

let registered_count () = !next - 1

let reset () =
  Hashtbl.reset table;
  Hashtbl.reset reverse;
  next := 1
