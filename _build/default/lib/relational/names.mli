(** Interning of display names for constants.

    The theory works with an abstract countably infinite set [Const]
    enumerated as [c1, c2, …]; only the *number* of available constants
    matters for generic queries (paper, §3.2). We therefore represent
    constants as positive integers, and this module maintains a global
    bijection between human-readable names and constant codes so that
    examples can speak of ["Alice"] or ["c1"] while all counting
    machinery works over [1..k].

    The registry is global and monotone; {!reset} exists for tests. *)

val intern : string -> int
(** Returns the code for this name, allocating the next free positive
    code on first use. *)

val name_of : int -> string option
(** The display name registered for a code, if any. *)

val to_string : int -> string
(** The display name if registered, otherwise ["#<code>"]. *)

val fresh : unit -> int
(** Allocates a constant code with no display name (useful as a "brand
    new constant not occurring anywhere", e.g. for bijective
    valuations). *)

val registered_count : unit -> int
(** Number of codes allocated so far. *)

val reset : unit -> unit
(** Clears the registry. Only for test isolation. *)
