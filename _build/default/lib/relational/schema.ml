module SMap = Map.Make (String)

type decl = { arity : int; attrs : string list option }
type t = decl SMap.t

let empty = SMap.empty

let add name arity t =
  if arity < 0 then invalid_arg "Schema.add: negative arity"
  else if SMap.mem name t then
    invalid_arg ("Schema.add: duplicate relation " ^ name)
  else SMap.add name { arity; attrs = None } t

let add_with_attrs name attrs t =
  let sorted = List.sort String.compare attrs in
  let rec has_dup = function
    | a :: (b :: _ as rest) -> a = b || has_dup rest
    | _ -> false
  in
  if has_dup sorted then
    invalid_arg ("Schema.add_with_attrs: duplicate attribute in " ^ name)
  else if SMap.mem name t then
    invalid_arg ("Schema.add_with_attrs: duplicate relation " ^ name)
  else SMap.add name { arity = List.length attrs; attrs = Some attrs } t

let make decls = List.fold_left (fun t (n, a) -> add n a t) empty decls

let make_with_attrs decls =
  List.fold_left (fun t (n, attrs) -> add_with_attrs n attrs t) empty decls

let mem name t = SMap.mem name t
let arity t name = (SMap.find name t).arity
let arity_opt t name = Option.map (fun d -> d.arity) (SMap.find_opt name t)
let attrs t name = (SMap.find name t).attrs

let attr_index t rel attr =
  match (SMap.find rel t).attrs with
  | None -> raise Not_found
  | Some names ->
      let rec go i = function
        | [] -> raise Not_found
        | a :: rest -> if a = attr then i else go (i + 1) rest
      in
      go 0 names

let relations t = SMap.bindings t |> List.map fst

let equal a b =
  SMap.equal (fun d1 d2 -> d1.arity = d2.arity && d1.attrs = d2.attrs) a b

let pp fmt t =
  SMap.iter
    (fun name d ->
      match d.attrs with
      | Some attrs ->
          Format.fprintf fmt "%s(%s)@." name (String.concat ", " attrs)
      | None -> Format.fprintf fmt "%s/%d@." name d.arity)
    t
