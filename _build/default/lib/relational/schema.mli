(** Relational schemas: relation names with arities and (optionally)
    named attributes.

    Attribute names are used by the constraint language (functional
    dependencies [X → A], inclusion dependencies) and by pretty
    printing; the logic layer addresses columns positionally. *)

type t

val empty : t

val make : (string * int) list -> t
(** [make [("R", 2); …]] declares relations with the given arities.
    @raise Invalid_argument on duplicate names or negative arities. *)

val make_with_attrs : (string * string list) list -> t
(** [make_with_attrs [("R", ["customer"; "product"]); …]] declares
    relations with named attributes (the arity is the number of
    attributes).
    @raise Invalid_argument on duplicate relation or attribute names. *)

val add : string -> int -> t -> t
val add_with_attrs : string -> string list -> t -> t

val mem : string -> t -> bool

val arity : t -> string -> int
(** @raise Not_found for unknown relations. *)

val arity_opt : t -> string -> int option

val attrs : t -> string -> string list option
(** Attribute names, if declared. *)

val attr_index : t -> string -> string -> int
(** [attr_index schema rel attr]: 0-based position of [attr] in [rel].
    @raise Not_found if the relation or attribute is unknown. *)

val relations : t -> string list
(** Relation names in alphabetical order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
