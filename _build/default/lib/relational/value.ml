type t = Const of int | Null of int

let const code =
  if code < 1 then invalid_arg "Value.const: codes are positive"
  else Const code

let named name = Const (Names.intern name)

let null id =
  if id < 0 then invalid_arg "Value.null: negative null identifier"
  else Null id

let is_null = function Null _ -> true | Const _ -> false
let is_const = function Const _ -> true | Null _ -> false
let const_code = function Const c -> Some c | Null _ -> None
let null_id = function Null n -> Some n | Const _ -> None

let equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Null x, Null y -> x = y
  | Const _, Null _ | Null _, Const _ -> false

let compare a b =
  match (a, b) with
  | Const x, Const y -> Int.compare x y
  | Null x, Null y -> Int.compare x y
  | Const _, Null _ -> -1
  | Null _, Const _ -> 1

let hash = function Const c -> (2 * c) land max_int | Null n -> ((2 * n) + 1) land max_int

let to_string = function
  | Const c -> Names.to_string c
  | Null n -> Printf.sprintf "_|_%d" n

let pp fmt v = Format.pp_print_string fmt (to_string v)
