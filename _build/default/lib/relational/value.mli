(** Database values: constants and marked nulls.

    Following the paper (§2), databases are populated from two disjoint
    countably infinite sets: constants [Const] (represented as positive
    integer codes, see {!Names}) and marked nulls [Null] (represented as
    non-negative integer identifiers, printed [⊥i]). The same null
    identifier occurring in several positions denotes the same unknown
    value — these are marked (labelled) nulls, not SQL/Codd nulls. *)

type t =
  | Const of int  (** a constant, identified by its code [≥ 1] *)
  | Null of int  (** a marked null [⊥i] *)

val const : int -> t
(** @raise Invalid_argument if the code is [< 1]. *)

val named : string -> t
(** The constant whose display name is the given string (interned). *)

val null : int -> t
(** @raise Invalid_argument if the identifier is negative. *)

val is_null : t -> bool
val is_const : t -> bool

val const_code : t -> int option
val null_id : t -> int option

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
