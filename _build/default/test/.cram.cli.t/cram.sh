  $ certainty naive \
  >   --schema "R1(customer, product); R2(customer, product)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)"
  $ certainty certain \
  >   --schema "R(a, b)" \
  >   --db "R = { ('x', ~1) }" \
  >   --query "Q(a, b) := R(a, b)"
  $ certainty measure \
  >   --schema "R1(c, p); R2(c, p)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)" \
  >   --tuple "('c2', ~2)" --ks 3,4,6
  $ certainty conditional \
  >   --schema "R(a, b); U(u)" \
  >   --db "R = { (2, 1), (~1, ~1) }; U = { (1), (2), (3) }" \
  >   --query "Q(x, y) := R(x, y)" \
  >   --constraints "ind R[1] <= U[1]" \
  >   --tuple "(1, ~1)"
  $ certainty best \
  >   --schema "R(a, b); S(a, b)" \
  >   --db "R = { (1, ~1), (2, ~2) }; S = { (1, ~2), (~3, ~1) }" \
  >   --query "Q(x, y) := R(x, y) & !S(x, y)"
  $ certainty chase \
  >   --schema "R(k, v)" \
  >   --db "R = { ('a', ~1), ('a', 'seen'), ('b', ~2) }" \
  >   --constraints "fd R : k -> v"
  $ certainty sat \
  >   --schema "Orders(id, cust); Customers(cid)" \
  >   --db "Orders = { ('o1', ~1) }; Customers = { ('alice') }" \
  >   --constraints "key Orders : id; key Customers : cid; fk Orders[cust] -> Customers[cid]"
  $ certainty sat \
  >   --schema "Orders(id, cust); Customers(cid)" \
  >   --db "Orders = { ('o1', ~1) }; Customers = { }" \
  >   --constraints "key Customers : cid; fk Orders[cust] -> Customers[cid]"
  $ certainty approx \
  >   --schema "R(a, b); S(a, b)" \
  >   --db "R = { (1, ~1), (2, ~2) }; S = { (1, ~2), (~3, ~1) }" \
  >   --query "Q(x, y) := R(x, y) & !S(x, y)" \
  >   --scheme naive
  $ certainty naive --schema "R(a" --db "R = { }" --query "R(x)"
  $ certainty naive --schema "R(a)" --db "R = { }" --query "S(x)"
  $ certainty datalog \
  >   --schema "E(src, dst)" \
  >   --db "E = { ('a', ~1), (~1, 'c') }" \
  >   --program "TC(x, y) := E(x, y). TC(x, z) := E(x, y), TC(y, z)." \
  >   --goal TC
