test/test_arith.ml: Alcotest Arith Array Fun Int List Printf QCheck QCheck_alcotest
