test/test_compare.ml: Alcotest Arith Compare Incomplete List Logic QCheck QCheck_alcotest Relational Zeroone
