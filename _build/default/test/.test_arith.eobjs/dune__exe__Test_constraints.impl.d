test/test_constraints.ml: Alcotest Constraints Incomplete List Logic Option QCheck QCheck_alcotest Relational Result
