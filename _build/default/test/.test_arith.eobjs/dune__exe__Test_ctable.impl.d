test/test_ctable.ml: Alcotest Ctables Incomplete List Logic QCheck QCheck_alcotest Relational
