test/test_ctable.mli:
