test/test_datalog.ml: Alcotest Arith Datalog Format Incomplete List Logic Printf QCheck QCheck_alcotest Relational Result Zeroone
