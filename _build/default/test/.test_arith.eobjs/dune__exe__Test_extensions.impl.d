test/test_extensions.ml: Alcotest Arith Incomplete List Logic Printf QCheck QCheck_alcotest Relational Zeroone
