test/test_incomplete.ml: Alcotest Arith Format Hashtbl Incomplete Int List Logic Option Printf QCheck QCheck_alcotest Relational
