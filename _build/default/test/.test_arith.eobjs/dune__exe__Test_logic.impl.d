test/test_logic.ml: Alcotest List Logic Relational Result
