test/test_probdb.ml: Alcotest Arith Incomplete List Logic Probdb QCheck QCheck_alcotest Relational
