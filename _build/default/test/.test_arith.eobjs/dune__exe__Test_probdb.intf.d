test/test_probdb.mli:
