test/test_ra.ml: Alcotest List Logic QCheck QCheck_alcotest Relational Result
