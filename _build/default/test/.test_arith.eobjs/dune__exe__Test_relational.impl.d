test/test_relational.ml: Alcotest Format Fun List QCheck QCheck_alcotest Relational
