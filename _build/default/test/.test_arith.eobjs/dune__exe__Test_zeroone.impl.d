test/test_zeroone.ml: Alcotest Arith Constraints Incomplete List Logic Printf QCheck QCheck_alcotest Relational Zeroone
