(* Tests for the exact-arithmetic substrate: Bigint, Rat, Poly, Combinat. *)

module B = Arith.Bigint
module R = Arith.Rat
module P = Arith.Poly
module C = Arith.Combinat

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let bigint_t = Alcotest.testable B.pp B.equal
let rat_t = Alcotest.testable R.pp R.equal
let poly_t = Alcotest.testable P.pp P.equal

(* ------------------------------------------------------------------ *)
(* Bigint: unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_bigint_roundtrip () =
  List.iter
    (fun n ->
      check (Alcotest.option int_t) (string_of_int n) (Some n)
        (B.to_int_opt (B.of_int n)))
    [ 0; 1; -1; 42; -42; 999_999_999; 1_000_000_000; -1_000_000_001;
      max_int; min_int; max_int - 1; min_int + 1 ]

let test_bigint_strings () =
  List.iter
    (fun s -> check string_t s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-999999999999999999999999"; "1000000000"; "999999999" ];
  check bigint_t "leading zeros" (B.of_int 7) (B.of_string "007");
  check bigint_t "plus sign" (B.of_int 12) (B.of_string "+12")

let test_bigint_add_sub () =
  let a = B.of_string "99999999999999999999" in
  let b = B.of_string "1" in
  check bigint_t "carry chain" (B.of_string "100000000000000000000") (B.add a b);
  check bigint_t "a - a" B.zero (B.sub a a);
  check bigint_t "a + (-a)" B.zero (B.add a (B.neg a));
  check bigint_t "sub to negative" (B.of_int (-5)) (B.sub (B.of_int 10) (B.of_int 15))

let test_bigint_mul () =
  let a = B.of_string "123456789123456789" in
  let b = B.of_string "987654321987654321" in
  check bigint_t "big product"
    (B.of_string "121932631356500531347203169112635269")
    (B.mul a b);
  check bigint_t "sign" (B.of_int 6) (B.mul (B.of_int (-2)) (B.of_int (-3)));
  check bigint_t "by zero" B.zero (B.mul a B.zero)

let test_bigint_divmod () =
  let cases =
    [ (17, 5); (-17, 5); (17, -5); (-17, -5); (0, 3); (12, 4); (1, 7);
      (1000000007, 97); (999999999, 1000000000) ]
  in
  List.iter
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      check bigint_t
        (Printf.sprintf "%d / %d" a b)
        (B.of_int (a / b)) q;
      check bigint_t (Printf.sprintf "%d mod %d" a b) (B.of_int (a mod b)) r)
    cases;
  let big = B.of_string "123456789012345678901234567890" in
  let q, r = B.divmod big (B.of_string "987654321") in
  check bigint_t "reconstruction" big
    (B.add (B.mul q (B.of_string "987654321")) r);
  Alcotest.check_raises "division by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_bigint_pow_gcd () =
  check bigint_t "2^100"
    (B.of_string "1267650600228229401496703205376")
    (B.pow B.two 100);
  check bigint_t "x^0" B.one (B.pow (B.of_int 123) 0);
  check bigint_t "gcd" (B.of_int 6) (B.gcd (B.of_int 54) (B.of_int (-24)));
  check bigint_t "gcd with zero" (B.of_int 5) (B.gcd B.zero (B.of_int 5));
  check bigint_t "gcd 0 0" B.zero (B.gcd B.zero B.zero)

let test_bigint_compare () =
  check bool_t "order" true B.Infix.(B.of_int (-3) < B.of_int 2);
  check bool_t "negative order" true B.Infix.(B.of_int (-30) < B.of_int (-3));
  check bigint_t "min" (B.of_int (-3)) (B.min (B.of_int (-3)) (B.of_int 2));
  check bigint_t "max" (B.of_int 2) (B.max (B.of_int (-3)) (B.of_int 2));
  check bool_t "to_int overflow" true
    (B.to_int_opt (B.mul (B.of_int max_int) (B.of_int 2)) = None)

(* Bigint: properties against native ints (small values can't overflow). *)

let small_int = QCheck.int_range (-10000) 10000

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add matches int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_opt (B.add (B.of_int a) (B.of_int b)) = Some (a + b))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul matches int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_opt (B.mul (B.of_int a) (B.of_int b)) = Some (a * b))

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"bigint divmod matches int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.to_int_opt q = Some (a / b) && B.to_int_opt r = Some (a mod b))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint string roundtrip" ~count:500
    (QCheck.list small_int) (fun parts ->
      (* Build moderately large numbers by horner over random digits. *)
      let n =
        List.fold_left
          (fun acc p -> B.add (B.mul acc (B.of_int 10007)) (B.of_int p))
          B.zero parts
      in
      B.equal n (B.of_string (B.to_string n)))

let prop_mul_distributes =
  QCheck.Test.make ~name:"bigint distributivity" ~count:300
    (QCheck.triple small_int small_int small_int) (fun (a, b, c) ->
      let a = B.of_int a and b = B.of_int b and c = B.of_int c in
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

(* ------------------------------------------------------------------ *)
(* Rat                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rat_canonical () =
  check rat_t "reduce" (R.of_ints 1 2) (R.of_ints 2 4);
  check rat_t "sign in denominator" (R.of_ints (-1) 2) (R.of_ints 1 (-2));
  check rat_t "zero" R.zero (R.of_ints 0 17);
  check string_t "print" "2/3" (R.to_string (R.of_ints 4 6));
  check string_t "print integer" "5" (R.to_string (R.of_ints 10 2));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (R.of_ints 1 0))

let test_rat_arith () =
  check rat_t "1/3 + 1/6" R.half (R.add (R.of_ints 1 3) (R.of_ints 1 6));
  check rat_t "2/3 * 3/4" R.half (R.mul (R.of_ints 2 3) (R.of_ints 3 4));
  check rat_t "div" (R.of_ints 8 9) (R.div (R.of_ints 2 3) (R.of_ints 3 4));
  check rat_t "pow" (R.of_ints 8 27) (R.pow (R.of_ints 2 3) 3);
  check rat_t "pow negative" (R.of_ints 9 4) (R.pow (R.of_ints 2 3) (-2));
  check bool_t "compare" true R.Infix.(R.of_ints 1 3 < R.half);
  check rat_t "of_string" (R.of_ints (-3) 7) (R.of_string "-3/7")

let prop_rat_field =
  QCheck.Test.make ~name:"rat field laws" ~count:300
    (QCheck.quad small_int (QCheck.int_range 1 500) small_int
       (QCheck.int_range 1 500)) (fun (p1, q1, p2, q2) ->
      let a = R.of_ints p1 q1 and b = R.of_ints p2 q2 in
      R.equal (R.add a b) (R.add b a)
      && R.equal (R.mul a b) (R.mul b a)
      && R.equal (R.sub (R.add a b) b) a
      && (R.is_zero b || R.equal (R.mul (R.div a b) b) a))

(* ------------------------------------------------------------------ *)
(* Poly                                                                 *)
(* ------------------------------------------------------------------ *)

let test_poly_basics () =
  let p = P.of_coeffs [ R.of_int 1; R.of_int 2; R.of_int 3 ] in
  check int_t "degree" 2 (P.degree p);
  check rat_t "leading" (R.of_int 3) (P.leading_coeff p);
  check rat_t "eval" (R.of_int 17) (P.eval_int p 2);
  check int_t "zero degree" (-1) (P.degree P.zero);
  check poly_t "normalization"
    (P.of_coeffs [ R.of_int 1 ])
    (P.of_coeffs [ R.of_int 1; R.zero; R.zero ])

let test_poly_falling_factorial () =
  (* (k-2)(k-3): shift 2, length 2 *)
  let p = P.falling_factorial ~shift:2 2 in
  check rat_t "at k=5" (R.of_int 6) (P.eval_int p 5);
  check rat_t "at k=3" (R.zero) (P.eval_int p 2);
  check poly_t "length 0 is 1" P.one (P.falling_factorial ~shift:7 0);
  (* Consistency with the numeric falling factorial. *)
  for k = 0 to 8 do
    let sym = P.eval_int (P.falling_factorial ~shift:3 2) k in
    let num = C.falling_factorial (k - 3) 2 in
    if k - 3 >= 0 then
      check rat_t (Printf.sprintf "num vs sym at %d" k) (R.of_bigint num) sym
  done

let test_poly_limit_ratio () =
  let p = P.of_coeffs [ R.zero; R.of_int 2; R.of_int 3 ] in
  let q = P.of_coeffs [ R.of_int 1; R.zero; R.of_int 6 ] in
  (match P.limit_ratio p q with
  | P.Finite r -> check rat_t "same degree" R.half r
  | P.Infinite | P.Undefined -> Alcotest.fail "expected finite limit");
  (match P.limit_ratio (P.of_coeffs [ R.one ]) q with
  | P.Finite r -> check rat_t "lower degree" R.zero r
  | P.Infinite | P.Undefined -> Alcotest.fail "expected 0");
  (match P.limit_ratio q (P.of_coeffs [ R.one ]) with
  | P.Infinite -> ()
  | P.Finite _ | P.Undefined -> Alcotest.fail "expected infinite");
  match P.limit_ratio p P.zero with
  | P.Undefined -> ()
  | P.Finite _ | P.Infinite -> Alcotest.fail "expected undefined"

let prop_poly_ring =
  let small_poly =
    QCheck.map
      (fun l -> P.of_coeffs (List.map R.of_int l))
      (QCheck.list_of_size (QCheck.Gen.int_range 0 5) (QCheck.int_range (-9) 9))
  in
  QCheck.Test.make ~name:"poly ring laws" ~count:200
    (QCheck.triple small_poly small_poly small_poly) (fun (p, q, r) ->
      P.equal (P.mul p (P.add q r)) (P.add (P.mul p q) (P.mul p r))
      && P.equal (P.mul p q) (P.mul q p)
      && P.equal (P.add p (P.neg p)) P.zero)

let prop_poly_eval_hom =
  let small_poly =
    QCheck.map
      (fun l -> P.of_coeffs (List.map R.of_int l))
      (QCheck.list_of_size (QCheck.Gen.int_range 0 5) (QCheck.int_range (-9) 9))
  in
  QCheck.Test.make ~name:"poly evaluation is a hom" ~count:200
    (QCheck.triple small_poly small_poly (QCheck.int_range (-20) 20))
    (fun (p, q, k) ->
      R.equal (P.eval_int (P.mul p q) k) (R.mul (P.eval_int p k) (P.eval_int q k))
      && R.equal (P.eval_int (P.add p q) k)
           (R.add (P.eval_int p k) (P.eval_int q k)))

(* ------------------------------------------------------------------ *)
(* Combinat                                                             *)
(* ------------------------------------------------------------------ *)

let test_combinat_counting () =
  check bigint_t "5!" (B.of_int 120) (C.factorial 5);
  check bigint_t "0!" B.one (C.factorial 0);
  check bigint_t "C(10,3)" (B.of_int 120) (C.binomial 10 3);
  check bigint_t "C(10,0)" B.one (C.binomial 10 0);
  check bigint_t "C(3,5)" B.zero (C.binomial 3 5);
  check bigint_t "P(5,2)" (B.of_int 20) (C.falling_factorial 5 2);
  check bigint_t "P(2,3)" B.zero (C.falling_factorial 2 3);
  check bigint_t "2^10" (B.of_int 1024) (C.power 2 10);
  check bigint_t "bell 0" B.one (C.bell 0);
  check bigint_t "bell 5" (B.of_int 52) (C.bell 5);
  check bigint_t "bell 8" (B.of_int 4140) (C.bell 8);
  check bigint_t "S(4,2)" (B.of_int 7) (C.stirling2 4 2);
  check bigint_t "S(5,3)" (B.of_int 25) (C.stirling2 5 3)

let test_set_partitions () =
  check int_t "partitions of 0" 1 (List.length (C.set_partitions []));
  check int_t "partitions of 3" 5 (List.length (C.set_partitions [ 1; 2; 3 ]));
  check int_t "partitions of 5" 52
    (List.length (C.set_partitions [ 1; 2; 3; 4; 5 ]));
  (* Each partition covers all elements exactly once. *)
  List.iter
    (fun p ->
      let elts = List.concat p |> List.sort Int.compare in
      check (Alcotest.list int_t) "cover" [ 1; 2; 3; 4 ] elts)
    (C.set_partitions [ 1; 2; 3; 4 ])

let test_injective_partial_maps () =
  (* b slots into t targets: sum_j C(b,j) P(t,j). For b=2, t=3: 1 + 2*3 + 6 = 13. *)
  check int_t "2 slots 3 targets" 13
    (List.length (C.injective_partial_maps 2 [ 10; 20; 30 ]));
  check int_t "0 slots" 1 (List.length (C.injective_partial_maps 0 [ 1 ]));
  (* all assignments injective *)
  List.iter
    (fun m ->
      let somes = Array.to_list m |> List.filter_map Fun.id in
      check int_t "injective" (List.length somes)
        (List.length (List.sort_uniq Int.compare somes)))
    (C.injective_partial_maps 3 [ 1; 2; 3; 4 ])

let test_enumeration_sizes () =
  check int_t "tuples" 8 (List.length (C.tuples [ 1; 2 ] 3));
  check int_t "tuples of arity 0" 1 (List.length (C.tuples [ 1; 2 ] 0));
  check int_t "sublists" 16 (List.length (C.sublists [ 1; 2; 3; 4 ]));
  check int_t "subsets_upto" 7 (List.length (C.subsets_upto 2 [ 1; 2; 3 ]));
  check int_t "permutations" 24 (List.length (C.permutations [ 1; 2; 3; 4 ]));
  check int_t "injections" 6 (List.length (C.injections [ 1; 2 ] [ 4; 5; 6 ]));
  check int_t "injections too big" 0
    (List.length (C.injections [ 1; 2; 3 ] [ 4; 5 ]));
  check int_t "pairs" 6 (List.length (C.pairs [ 1; 2; 3 ]));
  check (Alcotest.list int_t) "range" [ 2; 3; 4 ] (C.range 2 4);
  check (Alcotest.list int_t) "empty range" [] (C.range 3 2)

let prop_partitions_count_is_bell =
  QCheck.Test.make ~name:"set_partitions count = Bell" ~count:20
    (QCheck.int_range 0 6) (fun n ->
      let elems = C.range 1 n in
      B.equal (B.of_int (List.length (C.set_partitions elems))) (C.bell n))

let prop_stirling_consistent =
  QCheck.Test.make ~name:"stirling2 counts partitions by block count" ~count:20
    (QCheck.pair (QCheck.int_range 0 6) (QCheck.int_range 0 6)) (fun (n, b) ->
      let elems = C.range 1 n in
      let count =
        List.length
          (List.filter (fun p -> List.length p = b) (C.set_partitions elems))
      in
      B.equal (B.of_int count) (C.stirling2 n b))

(* ------------------------------------------------------------------ *)
(* Edge cases                                                           *)
(* ------------------------------------------------------------------ *)

let test_bigint_edges () =
  check bool_t "of_string rejects empty" true
    (match B.of_string "" with exception Invalid_argument _ -> true | _ -> false);
  check bool_t "of_string rejects junk" true
    (match B.of_string "12x4" with exception Invalid_argument _ -> true | _ -> false);
  check bool_t "of_string rejects bare sign" true
    (match B.of_string "-" with exception Invalid_argument _ -> true | _ -> false);
  check bigint_t "succ/pred" (B.of_int 5) (B.pred (B.succ (B.of_int 5)));
  check bigint_t "mul_int" (B.of_int (-21)) (B.mul_int (B.of_int 7) (-3));
  check bigint_t "add_int" (B.of_int 4) (B.add_int (B.of_int 7) (-3));
  check int_t "sign of zero" 0 (B.sign B.zero);
  check int_t "sign positive" 1 (B.sign (B.of_string "999999999999999999999"));
  check bool_t "to_float" true (B.to_float (B.of_int (-2)) = -2.0);
  check bool_t "hash consistent" true
    (B.hash (B.of_string "123456789012345678")
    = B.hash (B.add (B.of_string "123456789012345677") B.one));
  (* exact min_int/max_int boundary round trips *)
  let q, r = B.divmod (B.of_int min_int) (B.of_int max_int) in
  check bigint_t "min_int reconstruction" (B.of_int min_int)
    (B.add (B.mul q (B.of_int max_int)) r);
  Alcotest.check_raises "negative pow"
    (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (B.pow B.two (-1)))

let test_rat_edges () =
  check bool_t "of_string fraction" true (R.equal (R.of_ints 2 3) (R.of_string "4/6"));
  check rat_t "min" (R.of_ints 1 3) (R.min (R.of_ints 1 3) R.half);
  check rat_t "max" R.half (R.max (R.of_ints 1 3) R.half);
  check rat_t "abs" R.half (R.abs (R.neg R.half));
  check int_t "sign" (-1) (R.sign (R.of_ints (-3) 7));
  check bool_t "is_integer" true (R.is_integer (R.of_ints 14 7));
  check bool_t "not integer" false (R.is_integer R.half);
  check rat_t "mul_int" (R.of_int 3) (R.mul_int R.half 6);
  check rat_t "div_int" (R.of_ints 1 4) (R.div_int R.half 2);
  check bool_t "inv of zero" true
    (match R.inv R.zero with exception Division_by_zero -> true | _ -> false);
  check bool_t "pow 0^-1" true
    (match R.pow R.zero (-1) with exception Division_by_zero -> true | _ -> false)

let test_poly_printing () =
  let p = P.of_coeffs [ R.zero; R.of_int (-1); R.one ] in
  check string_t "k^2 - k" "k^2 - k" (P.to_string p);
  check string_t "zero" "0" (P.to_string P.zero);
  check string_t "constant" "5" (P.to_string (P.const_int 5));
  check string_t "negative leading" "-k + 1"
    (P.to_string (P.of_coeffs [ R.one; R.of_int (-1) ]));
  check string_t "fractional coefficient" "1/2*k"
    (P.to_string (P.of_coeffs [ R.zero; R.half ]));
  check string_t "just k" "k" (P.to_string P.x)

let test_poly_edges () =
  check rat_t "coeff beyond degree" R.zero (P.coeff P.x 5);
  check poly_t "scale by zero" P.zero (P.scale R.zero P.x);
  check poly_t "monomial" (P.of_coeffs [ R.zero; R.zero; R.of_int 3 ])
    (P.monomial (R.of_int 3) 2);
  check poly_t "sum" (P.of_coeffs [ R.of_int 2 ]) (P.sum [ P.one; P.one ]);
  check rat_t "eval_bigint" (R.of_int 100)
    (P.eval_bigint (P.mul P.x P.x) (B.of_int 10));
  check poly_t "pow" (P.mul P.x (P.mul P.x P.x)) (P.pow P.x 3);
  Alcotest.check_raises "leading coeff of zero"
    (Invalid_argument "Poly.leading_coeff: zero polynomial") (fun () ->
      ignore (P.leading_coeff P.zero))

let test_combinat_edges () =
  check int_t "injections content" 2
    (List.length (C.injections [ 1 ] [ 7; 8 ]));
  List.iter
    (fun assoc ->
      check int_t "assoc length" 1 (List.length assoc))
    (C.injections [ 1 ] [ 7; 8 ]);
  check int_t "subsets_upto big n = power set" 8
    (List.length (C.subsets_upto 99 [ 1; 2; 3 ]));
  check int_t "permutations of empty" 1 (List.length (C.permutations []));
  check bigint_t "stirling out of range" B.zero (C.stirling2 3 5);
  check bigint_t "falling factorial f=0" B.one (C.falling_factorial 7 0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_matches_int; prop_mul_matches_int; prop_divmod_matches_int;
      prop_string_roundtrip; prop_mul_distributes; prop_rat_field;
      prop_poly_ring; prop_poly_eval_hom; prop_partitions_count_is_bell;
      prop_stirling_consistent ]

let () =
  Alcotest.run "arith"
    [ ( "bigint",
        [ Alcotest.test_case "int roundtrip" `Quick test_bigint_roundtrip;
          Alcotest.test_case "strings" `Quick test_bigint_strings;
          Alcotest.test_case "add/sub" `Quick test_bigint_add_sub;
          Alcotest.test_case "mul" `Quick test_bigint_mul;
          Alcotest.test_case "divmod" `Quick test_bigint_divmod;
          Alcotest.test_case "pow/gcd" `Quick test_bigint_pow_gcd;
          Alcotest.test_case "compare" `Quick test_bigint_compare
        ] );
      ( "rat",
        [ Alcotest.test_case "canonical form" `Quick test_rat_canonical;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith
        ] );
      ( "poly",
        [ Alcotest.test_case "basics" `Quick test_poly_basics;
          Alcotest.test_case "falling factorial" `Quick test_poly_falling_factorial;
          Alcotest.test_case "limit ratio" `Quick test_poly_limit_ratio
        ] );
      ( "combinat",
        [ Alcotest.test_case "counting" `Quick test_combinat_counting;
          Alcotest.test_case "set partitions" `Quick test_set_partitions;
          Alcotest.test_case "injective partial maps" `Quick
            test_injective_partial_maps;
          Alcotest.test_case "enumeration sizes" `Quick test_enumeration_sizes
        ] );
      ( "edge-cases",
        [ Alcotest.test_case "bigint" `Quick test_bigint_edges;
          Alcotest.test_case "rat" `Quick test_rat_edges;
          Alcotest.test_case "poly printing" `Quick test_poly_printing;
          Alcotest.test_case "poly" `Quick test_poly_edges;
          Alcotest.test_case "combinat" `Quick test_combinat_edges
        ] );
      ("properties", qcheck_cases)
    ]
