(* Tests for support comparisons (§5): Sep, ⊴/◁ (Theorem 6), Best
   (Theorem 7), the UCQ polynomial algorithms (Theorem 8), the §5.1
   naive-evaluation counterexample, and the orthogonality of best vs µ
   (Propositions 7-8). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module F = Logic.Formula
module Query = Logic.Query
module Ucq = Logic.Ucq
module Parser = Logic.Parser
module Naive = Incomplete.Naive
module Certain = Incomplete.Certain
module Sep = Compare.Sep
module Order = Compare.Order
module Best = Compare.Best
module Ucq_compare = Compare.Ucq_compare
module Measure = Zeroone.Measure
module Constructions = Zeroone.Constructions

let check = Alcotest.check
let bool_t = Alcotest.bool
let relation_t = Alcotest.testable Relation.pp Relation.equal

(* ------------------------------------------------------------------ *)
(* The §5 example: R ∖ S with Best = {(2,⊥2)}                           *)
(* ------------------------------------------------------------------ *)

let s5_schema = Schema.make [ ("R", 2); ("S", 2) ]

let s5_db () =
  Instance.of_rows s5_schema
    [ ("R", [ [ Value.named "1"; Value.null 1 ]; [ Value.named "2"; Value.null 2 ] ]);
      ("S", [ [ Value.named "1"; Value.null 2 ]; [ Value.null 3; Value.null 1 ] ])
    ]

let s5_query () = Parser.query_exn "Q(x, y) := R(x, y) & !S(x, y)"

let test_s5_certain_empty () =
  check relation_t "certain empty" (Relation.empty 2)
    (Certain.certain_answers (s5_db ()) (s5_query ()))

let test_s5_ordering () =
  let d = s5_db () and q = s5_query () in
  let a = Tuple.of_list [ Value.named "1"; Value.null 1 ] in
  let b = Tuple.of_list [ Value.named "2"; Value.null 2 ] in
  (* Supp(a) = {v⊥1≠v⊥2 ∧ v⊥3≠1}; Supp(b) = {v⊥1≠v⊥2 ∨ v⊥3≠2}: a ◁ b. *)
  check bool_t "a ⊴ b" true (Order.leq d q a b);
  check bool_t "b not ⊴ a" false (Order.leq d q b a);
  check bool_t "a ◁ b" true (Order.lt d q a b);
  check bool_t "not b ◁ a" false (Order.lt d q b a);
  check bool_t "not equivalent" false (Order.equiv d q a b);
  (* A separating valuation for (b, a) exists and is genuine. *)
  match Sep.witness d q b a with
  | None -> Alcotest.fail "expected a separating valuation"
  | Some v ->
      check bool_t "witness supports b" true
        (Incomplete.Support.in_support d q b v);
      check bool_t "witness rejects a" false
        (Incomplete.Support.in_support d q a v)

let test_s5_best () =
  let d = s5_db () and q = s5_query () in
  let b = Tuple.of_list [ Value.named "2"; Value.null 2 ] in
  let best = Best.best d q in
  check relation_t "Best = {(2,⊥2)}" (Relation.of_list 2 [ b ]) best;
  check bool_t "is_best b" true (Best.is_best d q b);
  check bool_t "not is_best a" false
    (Best.is_best d q (Tuple.of_list [ Value.named "1"; Value.null 1 ]))

(* ------------------------------------------------------------------ *)
(* Intro example: (c2,⊥2) is the best likely answer                     *)
(* ------------------------------------------------------------------ *)

let intro_schema = Parser.schema_exn "R1(c, p); R2(c, p)"

let intro_db () =
  Parser.instance_exn intro_schema
    "R1 = { ('ca', ~1), ('cb', ~1), ('cb', ~2) };
     R2 = { ('ca', ~2), ('cb', ~1), (~3, ~1) }"

let test_intro_best () =
  let d = intro_db () in
  let q = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)" in
  let a = Tuple.of_list [ Value.named "ca"; Value.null 1 ] in
  let b = Tuple.of_list [ Value.named "cb"; Value.null 2 ] in
  check bool_t "a ◁ b (intro)" true (Order.lt d q a b);
  check bool_t "b is best" true (Best.is_best d q b);
  check bool_t "a is not best" false (Best.is_best d q a);
  (* "no other tuple has more valuations supporting it": everything is
     ⊴ b. *)
  List.iter
    (fun t -> check bool_t ("⊴ b: " ^ Tuple.to_string t) true (Order.leq d q t b))
    (Best.candidates d q)

(* ------------------------------------------------------------------ *)
(* When certain answers exist, they are the best answers                *)
(* ------------------------------------------------------------------ *)

let test_certain_nonempty_is_best () =
  let d = intro_db () in
  let q = Parser.query_exn "Q(x, y) := R1(x, y)" in
  let certain = Certain.certain_answers d q in
  check bool_t "certain nonempty" false (Relation.is_empty certain);
  check relation_t "Best = certain" certain (Best.best d q)

(* ------------------------------------------------------------------ *)
(* §5.1: naive evaluation does not decide ⊴                             *)
(* ------------------------------------------------------------------ *)

let test_naive_no_help () =
  (* D: R = {(1,⊥),(⊥,2)} (same null), Q returns R, ā=(1,2), b̄=(1,1).
     Naive evaluation of Q(ā)→Q(b̄) is true (neither tuple is naively in
     R), but ā ⊴ b̄ fails: Supp(ā)={⊥↦1,⊥↦2} ⊄ Supp(b̄)={⊥↦1}. *)
  let schema = Schema.make [ ("R", 2) ] in
  let d =
    Instance.of_rows schema
      [ ("R", [ [ Value.named "1"; Value.null 7 ]; [ Value.null 7; Value.named "2" ] ]) ]
  in
  let q = Parser.query_exn "Q(x, y) := R(x, y)" in
  let a = Tuple.consts [ "1"; "2" ] in
  let b = Tuple.consts [ "1"; "1" ] in
  let implication =
    F.Implies (Query.instantiate q a, Query.instantiate q b)
  in
  check bool_t "naive implication true" true (Naive.sentence d implication);
  check bool_t "but a ⊴ b is false" false (Order.leq d q a b);
  check bool_t "while b ⊴ a holds" true (Order.leq d q b a)

(* ------------------------------------------------------------------ *)
(* Theorem 8: UCQ polynomial algorithm = generic algorithm              *)
(* ------------------------------------------------------------------ *)

let ucq_queries =
  [ Parser.query_exn "Q(x, y) := R(x, y)";
    Parser.query_exn "Q(x) := exists y. R(x, y) & S(y, x)";
    Parser.query_exn "Q(x, y) := R(x, y) | S(x, y)";
    Parser.query_exn "Q(x) := (exists y. R(x, y)) | S(x, x)"
  ]

let value_gen =
  QCheck.map
    (fun i ->
      if i >= 0 then Value.null (i mod 3)
      else Value.named ("u" ^ string_of_int (-i mod 3)))
    (QCheck.int_range (-6) 5)

let rs_instance_gen =
  QCheck.map
    (fun (r_rows, s_rows) ->
      Instance.of_rows s5_schema
        [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
          ("S", List.map (fun (a, b) -> [ a; b ]) s_rows)
        ])
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
          (QCheck.pair value_gen value_gen))
       (QCheck.list_of_size (QCheck.Gen.int_range 0 2)
          (QCheck.pair value_gen value_gen)))

let prop_ucq_sep_matches_generic =
  QCheck.Test.make ~name:"Thm 8: UCQ sep = generic sep" ~count:25
    rs_instance_gen (fun d ->
      List.for_all
        (fun q ->
          match Ucq.of_query q with
          | None -> QCheck.assume_fail ()
          | Some u ->
              let adom = Instance.adom d in
              let cands =
                List.map Tuple.of_list
                  (Arith.Combinat.tuples adom (Query.arity q))
              in
              (* compare on a sample of pairs to keep the cost down *)
              let sample =
                match cands with
                | [] -> []
                | c0 :: _ ->
                    let last = List.nth cands (List.length cands - 1) in
                    [ (c0, last); (last, c0); (c0, c0) ]
              in
              List.for_all
                (fun (a, b) ->
                  Ucq_compare.sep d u a b = Sep.sep d q a b)
                sample)
        ucq_queries)

let test_ucq_best_matches_generic () =
  let d = s5_db () in
  List.iter
    (fun q ->
      match Ucq.of_query q with
      | None -> Alcotest.fail "expected UCQ"
      | Some u ->
          check relation_t (Query.to_string q) (Best.best d q)
            (Ucq_compare.best d u))
    [ List.nth ucq_queries 0; List.nth ucq_queries 3 ]

let test_ucq_s5_like_example () =
  (* A positive-query variant of the §5 ordering. *)
  let d = s5_db () in
  let q = Parser.query_exn "Q(x, y) := R(x, y)" in
  match Ucq.of_query q with
  | None -> Alcotest.fail "expected UCQ"
  | Some u ->
      let in_r = Tuple.of_list [ Value.named "1"; Value.null 1 ] in
      let not_in_r = Tuple.of_list [ Value.named "1"; Value.named "2" ] in
      (* in_r has full support; not_in_r only some *)
      check bool_t "partial ⊴ full" true (Ucq_compare.leq d u not_in_r in_r);
      check bool_t "full not ⊴ partial" false (Ucq_compare.leq d u in_r not_in_r);
      check bool_t "strict" true (Ucq_compare.lt d u not_in_r in_r)

(* ------------------------------------------------------------------ *)
(* Propositions 7-8: best vs µ are orthogonal; Best_µ                   *)
(* ------------------------------------------------------------------ *)

let test_orthogonality () =
  let w = Constructions.orthogonality_witness () in
  let d = w.Constructions.og_base_instance in
  let q = w.Constructions.og_base_query in
  let a = w.Constructions.og_a and b = w.Constructions.og_b in
  (* base: both a and b are best; µ(a)=1, µ(b)=0 *)
  check bool_t "a best (base)" true (Best.is_best d q a);
  check bool_t "b best (base)" true (Best.is_best d q b);
  check bool_t "µ(a)=1" true
    (Measure.is_almost_certainly_true (Measure.mu d q a));
  check bool_t "µ(b)=0" false
    (Measure.is_almost_certainly_true (Measure.mu d q b));
  (* extension: only g is best; µ values unchanged *)
  let d' = w.Constructions.og_ext_instance in
  let q' = w.Constructions.og_ext_query in
  check bool_t "g best (ext)" true (Best.is_best d' q' w.Constructions.og_g);
  check bool_t "a not best (ext)" false (Best.is_best d' q' a);
  check bool_t "b not best (ext)" false (Best.is_best d' q' b);
  check bool_t "µ(a)=1 (ext)" true
    (Measure.is_almost_certainly_true (Measure.mu d' q' a));
  check bool_t "µ(b)=0 (ext)" false
    (Measure.is_almost_certainly_true (Measure.mu d' q' b))

let test_best_mu () =
  let w = Constructions.orthogonality_witness () in
  let d = w.Constructions.og_base_instance in
  let q = w.Constructions.og_base_query in
  (* Best = {a,b} but Best_µ = {a}: the best answers that are almost
     certainly true. *)
  check relation_t "Best_µ base" (Relation.of_list 1 [ w.Constructions.og_a ])
    (Best.best_mu d q);
  let d' = w.Constructions.og_ext_instance in
  let q' = w.Constructions.og_ext_query in
  check relation_t "Best_µ ext" (Relation.of_list 1 [ w.Constructions.og_g ])
    (Best.best_mu d' q')

(* ------------------------------------------------------------------ *)
(* Ranking (strata of the ⊴ preorder)                                   *)
(* ------------------------------------------------------------------ *)

let test_rank_strata () =
  let d = s5_db () and q = s5_query () in
  let b = Tuple.of_list [ Value.named "2"; Value.null 2 ] in
  let a = Tuple.of_list [ Value.named "1"; Value.null 1 ] in
  let strata = Compare.Rank.strata d q in
  (* top stratum = Best *)
  check relation_t "top = best" (Best.best d q) (List.hd strata);
  (* strata partition the candidate space *)
  let total = List.fold_left (fun n s -> n + Relation.cardinal s) 0 strata in
  check Alcotest.int "partition" (List.length (Best.candidates d q)) total;
  let disjoint =
    let rec go seen = function
      | [] -> true
      | s :: rest ->
          Relation.is_empty (Relation.inter seen s) && go (Relation.union seen s) rest
    in
    go (Relation.empty 2) strata
  in
  check bool_t "disjoint" true disjoint;
  check Alcotest.int "rank of best" 0 (Compare.Rank.rank_of d q b);
  check bool_t "a ranked below b" true (Compare.Rank.rank_of d q a > 0);
  (* strictly better tuples never rank below worse ones *)
  check bool_t "monotone" true
    (Compare.Rank.rank_of d q b < Compare.Rank.rank_of d q a)

let test_rank_top_k () =
  let d = s5_db () and q = s5_query () in
  let b = Tuple.of_list [ Value.named "2"; Value.null 2 ] in
  (match Compare.Rank.top_k ~k:1 d q with
  | [ t ] -> check bool_t "top-1 is best" true (Tuple.equal t b)
  | other ->
      Alcotest.failf "expected exactly the best answer, got %d" (List.length other));
  let top5 = Compare.Rank.top_k ~k:5 d q in
  check bool_t "at least 5" true (List.length top5 >= 5);
  check bool_t "best first" true (Tuple.equal (List.hd top5) b)

let prop_rank_consistent_with_order =
  QCheck.Test.make ~name:"ranking refines the ◁ order" ~count:15
    rs_instance_gen (fun d ->
      let q = Parser.query_exn "Q(x) := exists y. R(x, y)" in
      let cands = Best.candidates d q in
      QCheck.assume (cands <> [] && List.length cands <= 6);
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              (not (Order.lt d q a b))
              || Compare.Rank.rank_of d q b < Compare.Rank.rank_of d q a)
            cands)
        cands)

let prop_best_nonempty =
  QCheck.Test.make ~name:"Best(Q,D) nonempty on nonempty domains" ~count:30
    rs_instance_gen (fun d ->
      QCheck.assume (Instance.adom d <> []);
      List.for_all
        (fun q -> not (Relation.is_empty (Best.best d q)))
        [ List.hd ucq_queries ])

let prop_certain_subset_best =
  QCheck.Test.make ~name:"certain ⊆ best; equal when certain nonempty"
    ~count:20 rs_instance_gen (fun d ->
      List.for_all
        (fun q ->
          let certain = Certain.certain_answers d q in
          let best = Best.best d q in
          Relation.subset certain best
          && (Relation.is_empty certain || Relation.equal certain best))
        [ Parser.query_exn "Q(x, y) := R(x, y)" ])

let () =
  Alcotest.run "compare"
    [ ( "section-5-example",
        [ Alcotest.test_case "certain empty" `Quick test_s5_certain_empty;
          Alcotest.test_case "ordering a ◁ b" `Quick test_s5_ordering;
          Alcotest.test_case "best = {(2,⊥2)}" `Quick test_s5_best
        ] );
      ( "intro-example",
        [ Alcotest.test_case "best likely answer" `Quick test_intro_best;
          Alcotest.test_case "certain nonempty = best" `Quick
            test_certain_nonempty_is_best
        ] );
      ( "naive-no-help",
        [ Alcotest.test_case "§5.1 counterexample" `Quick test_naive_no_help ] );
      ( "theorem-8",
        [ Alcotest.test_case "UCQ best = generic best" `Quick
            test_ucq_best_matches_generic;
          Alcotest.test_case "UCQ ordering example" `Quick test_ucq_s5_like_example
        ] );
      ( "orthogonality",
        [ Alcotest.test_case "Prop 7: all four combos" `Quick test_orthogonality;
          Alcotest.test_case "Prop 8: Best_µ" `Quick test_best_mu
        ] );
      ( "ranking",
        [ Alcotest.test_case "strata" `Quick test_rank_strata;
          Alcotest.test_case "top-k" `Quick test_rank_top_k
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ucq_sep_matches_generic; prop_best_nonempty;
            prop_certain_subset_best; prop_rank_consistent_with_order ] )
    ]
