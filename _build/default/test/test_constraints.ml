(* Tests for dependencies, their FO compilation, the chase, and the
   Proposition 6 satisfiability procedure. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module Parser = Logic.Parser
module Eval = Logic.Eval
module Naive = Incomplete.Naive
module Dependency = Constraints.Dependency
module Chase = Constraints.Chase
module Sat = Constraints.Sat
module Dep_parser = Constraints.Dep_parser

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let relation_t = Alcotest.testable Relation.pp Relation.equal

(* ------------------------------------------------------------------ *)
(* Compilation vs direct checks                                         *)
(* ------------------------------------------------------------------ *)

let schema2 = Schema.make_with_attrs [ ("R", [ "a"; "b" ]); ("U", [ "u" ]) ]

let test_fd_semantics () =
  let fd = Dependency.fd "R" [ 0 ] 1 in
  let good =
    Instance.of_rows schema2
      [ ("R", [ [ Value.named "x"; Value.named "1" ]; [ Value.named "y"; Value.named "1" ] ]) ]
  in
  let bad =
    Instance.of_rows schema2
      [ ("R", [ [ Value.named "x"; Value.named "1" ]; [ Value.named "x"; Value.named "2" ] ]) ]
  in
  check bool_t "fd holds" true (Dependency.holds good fd);
  check bool_t "fd violated" false (Dependency.holds bad fd);
  (* agreement with the FO compilation *)
  check bool_t "fo agrees (good)" true
    (Eval.sentence_holds good (Dependency.to_formula schema2 fd));
  check bool_t "fo agrees (bad)" false
    (Eval.sentence_holds bad (Dependency.to_formula schema2 fd))

let test_ind_semantics () =
  let ind = Dependency.ind "R" [ 1 ] "U" [ 0 ] in
  let good =
    Instance.of_rows schema2
      [ ("R", [ [ Value.named "x"; Value.named "1" ] ]);
        ("U", [ [ Value.named "1" ]; [ Value.named "2" ] ])
      ]
  in
  let bad =
    Instance.of_rows schema2
      [ ("R", [ [ Value.named "x"; Value.named "3" ] ]);
        ("U", [ [ Value.named "1" ] ])
      ]
  in
  check bool_t "ind holds" true (Dependency.holds good ind);
  check bool_t "ind violated" false (Dependency.holds bad ind);
  check bool_t "fo agrees (good)" true
    (Eval.sentence_holds good (Dependency.to_formula schema2 ind));
  check bool_t "fo agrees (bad)" false
    (Eval.sentence_holds bad (Dependency.to_formula schema2 ind))

let test_key_semantics () =
  let key = Dependency.key "R" [ 0 ] in
  let good =
    Instance.of_rows schema2
      [ ("R", [ [ Value.named "k1"; Value.named "v" ]; [ Value.named "k2"; Value.named "v" ] ]) ]
  in
  let bad =
    Instance.of_rows schema2
      [ ("R", [ [ Value.named "k1"; Value.named "v" ]; [ Value.named "k1"; Value.named "w" ] ]) ]
  in
  check bool_t "key holds" true (Dependency.holds good key);
  check bool_t "key violated" false (Dependency.holds bad key);
  check bool_t "null-free ok" true (Dependency.keys_null_free good [ key ]);
  let with_null =
    Instance.of_rows schema2 [ ("R", [ [ Value.null 1; Value.named "v" ] ]) ]
  in
  check bool_t "null in key column" false
    (Dependency.keys_null_free with_null [ key ])

let prop_compiled_matches_direct =
  (* On random complete instances, the FO compilation and the direct
     structural checks agree for FDs and INDs. *)
  let const_gen = QCheck.map (fun i -> Value.named ("c" ^ string_of_int i)) (QCheck.int_range 0 3) in
  let inst_gen =
    QCheck.map
      (fun (r_rows, u_rows) ->
        Instance.of_rows schema2
          [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
            ("U", List.map (fun a -> [ a ]) u_rows)
          ])
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_range 0 5)
            (QCheck.pair const_gen const_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3) const_gen))
  in
  let deps =
    [ Dependency.fd "R" [ 0 ] 1;
      Dependency.fd "R" [ 1 ] 0;
      Dependency.ind "R" [ 1 ] "U" [ 0 ];
      Dependency.ind "U" [ 0 ] "R" [ 0 ];
      Dependency.key "R" [ 0 ]
    ]
  in
  QCheck.Test.make ~name:"FO compilation = direct check" ~count:100 inst_gen
    (fun d ->
      List.for_all
        (fun dep ->
          Dependency.holds d dep
          = Eval.sentence_holds d (Dependency.to_formula schema2 dep))
        deps)

(* ------------------------------------------------------------------ *)
(* Chase                                                                *)
(* ------------------------------------------------------------------ *)

let intro_schema =
  Parser.schema_exn "R1(customer, product); R2(customer, product)"

let intro_db () =
  Parser.instance_exn intro_schema
    "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) };
     R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"

let test_chase_intro_fd () =
  (* The intro's last scenario: customer determines product. Chasing
     unifies ⊥1 and ⊥2, after which naive evaluation of R1 ∖ R2 is
     empty — "with the constraint we know with certainty that they will
     not be answers". *)
  let d = intro_db () in
  let fd = { Dependency.fd_relation = "R1"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  match Chase.chase [ fd ] d with
  | Chase.Failure _ -> Alcotest.fail "chase should succeed"
  | Chase.Success chased ->
      check int_t "R1 collapses" 2
        (Relation.cardinal (Instance.relation chased "R1"));
      check bool_t "fd holds naively" true
        (Dependency.holds chased (Dependency.Fd fd));
      let q = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)" in
      check relation_t "no more likely answers" (Relation.empty 2)
        (Naive.answers chased q)

let test_chase_failure () =
  let d =
    Instance.of_rows schema2
      [ ("R", [ [ Value.named "k"; Value.named "v1" ]; [ Value.named "k"; Value.named "v2" ] ]) ]
  in
  let fd = { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  match Chase.chase [ fd ] d with
  | Chase.Failure (fd', _, _) ->
      check Alcotest.string "right fd" "R" fd'.Dependency.fd_relation
  | Chase.Success _ -> Alcotest.fail "expected failure (constant clash)"

let test_chase_null_const () =
  (* null/const violation: the null takes the constant everywhere. *)
  let d =
    Instance.of_rows schema2
      [ ("R", [ [ Value.named "k"; Value.null 1 ]; [ Value.named "k"; Value.named "v" ] ]);
        ("U", [ [ Value.null 1 ] ])
      ]
  in
  let fd = { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  match Chase.chase [ fd ] d with
  | Chase.Failure _ -> Alcotest.fail "chase should succeed"
  | Chase.Success chased ->
      check int_t "tuples merged" 1
        (Relation.cardinal (Instance.relation chased "R"));
      (* the substitution is global: U was updated too *)
      check bool_t "U updated" true
        (Relation.mem (Tuple.consts [ "v" ]) (Instance.relation chased "U"));
      check bool_t "complete now" true (Instance.is_complete chased)

let test_chase_confluence () =
  (* Chasing with FDs listed in different orders yields the same result
     up to null renaming. *)
  let schema = Schema.make [ ("R", 3) ] in
  let d =
    Instance.of_rows schema
      [ ("R",
         [ [ Value.named "k"; Value.null 1; Value.null 2 ];
           [ Value.named "k"; Value.null 3; Value.null 4 ];
           [ Value.named "k2"; Value.null 3; Value.null 5 ]
         ])
      ]
  in
  let fd1 = { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  let fd2 = { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 2 } in
  match (Chase.chase [ fd1; fd2 ] d, Chase.chase [ fd2; fd1 ] d) with
  | Chase.Success a, Chase.Success b ->
      check bool_t "isomorphic results" true (Instance.isomorphic a b)
  | _ -> Alcotest.fail "both chases should succeed"

let test_chase_trace () =
  let d = intro_db () in
  let fd = { Dependency.fd_relation = "R1"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  let steps, outcome = Chase.trace [ fd ] d in
  check int_t "one unification" 1 (List.length steps);
  check bool_t "success" true (Option.is_some (Chase.successful outcome))

let prop_chase_result_satisfies_fds =
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 4)
        else Value.named ("cc" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 7)
  in
  let inst_gen =
    QCheck.map
      (fun rows ->
        Instance.of_rows (Schema.make [ ("R", 2) ])
          [ ("R", List.map (fun (a, b) -> [ a; b ]) rows) ])
      (QCheck.list_of_size (QCheck.Gen.int_range 0 5)
         (QCheck.pair value_gen value_gen))
  in
  let fd = { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  QCheck.Test.make ~name:"successful chase satisfies its FDs" ~count:200
    inst_gen (fun d ->
      match Chase.chase [ fd ] d with
      | Chase.Success chased -> Dependency.holds chased (Dependency.Fd fd)
      | Chase.Failure (fd', t, u) ->
          (* a genuine constant clash on the determined column *)
          Value.is_const (Tuple.get t fd'.Dependency.fd_rhs)
          && Value.is_const (Tuple.get u fd'.Dependency.fd_rhs)
          && not
               (Value.equal
                  (Tuple.get t fd'.Dependency.fd_rhs)
                  (Tuple.get u fd'.Dependency.fd_rhs)))

(* ------------------------------------------------------------------ *)
(* Proposition 6: satisfiability of unary keys and foreign keys         *)
(* ------------------------------------------------------------------ *)

let orders_schema =
  Schema.make_with_attrs
    [ ("Orders", [ "id"; "customer" ]); ("Customers", [ "cid" ]) ]

let test_sat_positive () =
  let d =
    Instance.of_rows orders_schema
      [ ("Orders", [ [ Value.named "o1"; Value.null 1 ]; [ Value.named "o2"; Value.named "alice" ] ]);
        ("Customers", [ [ Value.named "alice" ]; [ Value.named "bob" ] ])
      ]
  in
  let cs =
    [ Dependency.key "Orders" [ 0 ];
      Dependency.key "Customers" [ 0 ];
      Dependency.foreign_key "Orders" [ 1 ] "Customers" [ 0 ]
    ]
  in
  match Sat.unary_keys_fks orders_schema cs d with
  | Sat.Satisfiable v ->
      (* the witness must actually work *)
      let vd = Incomplete.Valuation.instance v d in
      check bool_t "witness satisfies" true (Dependency.all_hold vd cs)
  | Sat.Unsatisfiable reason -> Alcotest.fail ("unexpectedly unsat: " ^ reason)

let test_sat_key_clash () =
  (* Two orders share an id but have different constant customers. *)
  let d =
    Instance.of_rows orders_schema
      [ ("Orders",
         [ [ Value.named "o1"; Value.named "alice" ];
           [ Value.named "o1"; Value.named "bob" ]
         ]);
        ("Customers", [ [ Value.named "alice" ]; [ Value.named "bob" ] ])
      ]
  in
  let cs = [ Dependency.key "Orders" [ 0 ] ] in
  match Sat.unary_keys_fks orders_schema cs d with
  | Sat.Unsatisfiable _ -> ()
  | Sat.Satisfiable _ -> Alcotest.fail "expected unsat (key clash)"

let test_sat_fk_no_target () =
  let d =
    Instance.of_rows orders_schema
      [ ("Orders", [ [ Value.named "o1"; Value.null 1 ] ]);
        ("Customers", [])
      ]
  in
  let cs =
    [ Dependency.key "Customers" [ 0 ];
      Dependency.foreign_key "Orders" [ 1 ] "Customers" [ 0 ]
    ]
  in
  match Sat.unary_keys_fks orders_schema cs d with
  | Sat.Unsatisfiable _ -> ()
  | Sat.Satisfiable _ -> Alcotest.fail "expected unsat (empty fk target)"

let test_sat_null_in_key () =
  let d =
    Instance.of_rows orders_schema
      [ ("Orders", [ [ Value.null 1; Value.named "alice" ] ]);
        ("Customers", [ [ Value.named "alice" ] ])
      ]
  in
  let cs = [ Dependency.key "Orders" [ 0 ] ] in
  match Sat.unary_keys_fks orders_schema cs d with
  | Sat.Unsatisfiable _ -> ()
  | Sat.Satisfiable _ -> Alcotest.fail "expected unsat (null in key)"

let test_sat_rejects_non_unary () =
  let cs = [ Dependency.key "Orders" [ 0; 1 ] ] in
  let d = Instance.empty orders_schema in
  Alcotest.check_raises "non-unary rejected"
    (Invalid_argument
       "Sat.unary_keys_fks: constraint set must contain only unary keys and \
        unary foreign keys") (fun () ->
      ignore (Sat.unary_keys_fks orders_schema cs d))

let prop_sat_matches_generic =
  (* The polynomial procedure agrees with the exponential generic
     search on random small instances. *)
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 2)
        else Value.named ("s" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 3)
  in
  let const_gen =
    QCheck.map (fun i -> Value.named ("s" ^ string_of_int i)) (QCheck.int_range 0 2)
  in
  let inst_gen =
    QCheck.map
      (fun (orders, customers) ->
        Instance.of_rows orders_schema
          [ ("Orders", List.map (fun (a, b) -> [ a; b ]) orders);
            ("Customers", List.map (fun c -> [ c ]) customers)
          ])
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair const_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 2) const_gen))
  in
  let cs =
    [ Dependency.key "Orders" [ 0 ];
      Dependency.key "Customers" [ 0 ];
      Dependency.foreign_key "Orders" [ 1 ] "Customers" [ 0 ]
    ]
  in
  QCheck.Test.make ~name:"Prop 6 procedure = generic satisfiability" ~count:60
    inst_gen (fun d ->
      let fast =
        match Sat.unary_keys_fks orders_schema cs d with
        | Sat.Satisfiable _ -> true
        | Sat.Unsatisfiable _ -> false
      in
      fast = Sat.satisfiable_generic orders_schema cs d)

(* ------------------------------------------------------------------ *)
(* Constraint parser                                                    *)
(* ------------------------------------------------------------------ *)

let test_dep_parser () =
  let schema =
    Schema.make_with_attrs
      [ ("R", [ "a"; "b"; "c" ]); ("S", [ "x" ]) ]
  in
  let cs =
    Dep_parser.parse_exn schema
      "fd R : a, b -> c; key S : x\nind R[c] <= S[x]; fk R[b] -> S[1]"
  in
  check int_t "four constraints" 4 (List.length cs);
  (match cs with
  | [ Dependency.Fd f; Dependency.Key k; Dependency.Ind i; Dependency.ForeignKey fk ] ->
      check (Alcotest.list int_t) "fd lhs" [ 0; 1 ] f.Dependency.fd_lhs;
      check int_t "fd rhs" 2 f.Dependency.fd_rhs;
      check (Alcotest.list int_t) "key cols" [ 0 ] k.Dependency.key_cols;
      check (Alcotest.list int_t) "ind src" [ 2 ] i.Dependency.ind_src_cols;
      check (Alcotest.list int_t) "fk dst" [ 0 ] fk.Dependency.fk_dst_cols
  | _ -> Alcotest.fail "wrong shapes");
  check bool_t "unknown relation" true
    (Result.is_error (Dep_parser.parse schema "fd T : a -> b"));
  check bool_t "unknown attribute" true
    (Result.is_error (Dep_parser.parse schema "fd R : nope -> c"));
  check bool_t "bad position" true
    (Result.is_error (Dep_parser.parse schema "ind R[9] <= S[1]"))

let test_dep_printing () =
  let f = Dependency.fd "R" [ 0; 1 ] 2 in
  check Alcotest.string "fd positional" "fd R : 1, 2 -> 3" (Dependency.to_string f);
  let schema = Schema.make_with_attrs [ ("R", [ "a"; "b"; "c" ]) ] in
  check Alcotest.string "fd named" "fd R : a, b -> c"
    (Dependency.to_string ~schema f)

let () =
  Alcotest.run "constraints"
    [ ( "semantics",
        [ Alcotest.test_case "fd" `Quick test_fd_semantics;
          Alcotest.test_case "ind" `Quick test_ind_semantics;
          Alcotest.test_case "key" `Quick test_key_semantics
        ] );
      ( "chase",
        [ Alcotest.test_case "intro fd scenario" `Quick test_chase_intro_fd;
          Alcotest.test_case "constant clash fails" `Quick test_chase_failure;
          Alcotest.test_case "null/const unification" `Quick test_chase_null_const;
          Alcotest.test_case "confluence up to renaming" `Quick test_chase_confluence;
          Alcotest.test_case "trace" `Quick test_chase_trace
        ] );
      ( "satisfiability",
        [ Alcotest.test_case "satisfiable with witness" `Quick test_sat_positive;
          Alcotest.test_case "key clash" `Quick test_sat_key_clash;
          Alcotest.test_case "fk without target" `Quick test_sat_fk_no_target;
          Alcotest.test_case "null in key" `Quick test_sat_null_in_key;
          Alcotest.test_case "non-unary rejected" `Quick test_sat_rejects_non_unary
        ] );
      ( "parser",
        [ Alcotest.test_case "declarations" `Quick test_dep_parser;
          Alcotest.test_case "printing" `Quick test_dep_printing
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compiled_matches_direct; prop_chase_result_satisfies_fds;
            prop_sat_matches_generic ] )
    ]
