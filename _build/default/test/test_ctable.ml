(* Tests for conditional tables: semantics, the Imieliński–Lipski
   closure under relational algebra (property-checked against
   possible-world enumeration), and certainty from conditions. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module Valuation = Incomplete.Valuation
module Enumerate = Incomplete.Enumerate
module Ra = Logic.Ra
module Condition = Ctables.Condition
module CT = Ctables.Ctable

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let relation_t = Alcotest.testable Relation.pp Relation.equal

(* ------------------------------------------------------------------ *)
(* Conditions                                                           *)
(* ------------------------------------------------------------------ *)

let test_condition_simplify () =
  let a = Value.named "cta" and b = Value.named "ctb" in
  check bool_t "const eq folds" true (Condition.eq a a = Condition.True);
  check bool_t "const neq folds" true (Condition.eq a b = Condition.False);
  check bool_t "same null folds" true
    (Condition.eq (Value.null 1) (Value.null 1) = Condition.True);
  check bool_t "and false" true
    (Condition.simplify (Condition.And (Condition.True, Condition.False))
    = Condition.False);
  check bool_t "double negation" true
    (Condition.simplify (Condition.Not (Condition.Not Condition.True))
    = Condition.True)

let test_condition_eval_sat () =
  let n1 = Value.null 1 and n2 = Value.null 2 in
  let a = Relational.Names.intern "ct1" in
  let c = Condition.And (Condition.eq n1 n2, Condition.neq n1 (Value.const a)) in
  let v_good = Valuation.of_list [ (1, a + 1000); (2, a + 1000) ] in
  let v_bad = Valuation.of_list [ (1, a); (2, a) ] in
  check bool_t "eval true" true (Condition.eval v_good c);
  check bool_t "eval false" false (Condition.eval v_bad c);
  check bool_t "satisfiable" true (Condition.satisfiable c);
  check bool_t "contradiction unsat" false
    (Condition.satisfiable (Condition.And (Condition.eq n1 n2, Condition.neq n1 n2)));
  check bool_t "tautology valid" true
    (Condition.valid (Condition.Or (Condition.eq n1 n2, Condition.neq n1 n2)));
  check bool_t "not valid" false (Condition.valid (Condition.eq n1 n2))

(* ------------------------------------------------------------------ *)
(* C-table basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_ctable_basics () =
  let n1 = Value.null 1 in
  let t =
    CT.make 1
      [ { CT.tuple = Tuple.of_list [ n1 ]; cond = Condition.True };
        { CT.tuple = Tuple.consts [ "always" ]; cond = Condition.True };
        { CT.tuple = Tuple.consts [ "never" ];
          cond = Condition.And (Condition.eq n1 n1, Condition.False)
        }
      ]
  in
  (* the unsatisfiable row is dropped *)
  check int_t "rows" 2 (List.length (CT.rows t));
  let a = Relational.Names.intern "w1" in
  let rel = CT.instantiate (Valuation.of_list [ (1, a) ]) t in
  check int_t "instantiated" 2 (Relation.cardinal rel);
  check bool_t "contains valuated null" true
    (Relation.mem (Tuple.of_list [ Value.const a ]) rel)

(* ------------------------------------------------------------------ *)
(* The representation theorem                                           *)
(* ------------------------------------------------------------------ *)

let schema = Schema.make [ ("R", 2); ("S", 2) ]

let plans =
  [ Ra.Diff (Ra.Rel "R", Ra.Rel "S");
    Ra.Select (Ra.Eq_col (0, 1), Ra.Rel "R");
    Ra.Select (Ra.Neq_const (0, Value.named "ctv0"), Ra.Union (Ra.Rel "R", Ra.Rel "S"));
    Ra.Project ([ 1 ], Ra.Diff (Ra.Rel "R", Ra.Rel "S"));
    Ra.Project
      ([ 0; 3 ], Ra.Select (Ra.Eq_col (1, 2), Ra.Product (Ra.Rel "R", Ra.Rel "S")));
    Ra.Diff (Ra.Rel "R", Ra.Select (Ra.Eq_col (0, 1), Ra.Rel "S"))
  ]

let test_representation_theorem_example () =
  (* R = {(1,⊥1)}, S = {(1,⊥2)}: R ∖ S denotes {(1,v⊥1)} exactly when
     v⊥1 ≠ v⊥2 — not representable without conditions. *)
  let d =
    Instance.of_rows schema
      [ ("R", [ [ Value.named "one"; Value.null 1 ] ]);
        ("S", [ [ Value.named "one"; Value.null 2 ] ])
      ]
  in
  let ct = CT.eval d (Ra.Diff (Ra.Rel "R", Ra.Rel "S")) in
  check int_t "one guarded row" 1 (List.length (CT.rows ct));
  let a = Relational.Names.intern "cx" in
  let b = Relational.Names.intern "cy" in
  let v_neq = Valuation.of_list [ (1, a); (2, b) ] in
  let v_eq = Valuation.of_list [ (1, a); (2, a) ] in
  check int_t "kept when different" 1 (Relation.cardinal (CT.instantiate v_neq ct));
  check int_t "dropped when equal" 0 (Relation.cardinal (CT.instantiate v_eq ct))

let prop_representation_theorem =
  (* For every plan e and valuation v:
     instantiate v (ctable-eval e) = Ra.eval e on v(D). *)
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 3)
        else Value.named ("ctv" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 5)
  in
  let inst_gen =
    QCheck.map
      (fun (r_rows, s_rows) ->
        Instance.of_rows schema
          [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
            ("S", List.map (fun (a, b) -> [ a; b ]) s_rows)
          ])
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair value_gen value_gen)))
  in
  QCheck.Test.make ~name:"IL84: c-table eval commutes with valuations" ~count:60
    inst_gen (fun d ->
      let k = Instance.max_constant d + 2 in
      let nulls = Instance.nulls d in
      List.for_all
        (fun e ->
          let ct = CT.eval d e in
          Enumerate.fold_valuations ~nulls ~k
            (fun acc v ->
              acc
              && Relation.equal
                   (CT.instantiate v ct)
                   (Ra.eval (Valuation.instance v d) e))
            true)
        plans)

(* ------------------------------------------------------------------ *)
(* Certainty from conditions                                            *)
(* ------------------------------------------------------------------ *)

let test_certain_tuples () =
  (* R = {(a,⊥1)}, S = {(a,⊥1)}: R ∖ S is certainly empty; R ∪ S
     certainly contains... nothing null-free; but
     select[0='a'](R) project[0] certainly contains (a). *)
  let d =
    Instance.of_rows schema
      [ ("R", [ [ Value.named "cta2"; Value.null 1 ] ]);
        ("S", [ [ Value.named "cta2"; Value.null 1 ] ])
      ]
  in
  let diff = CT.eval d (Ra.Diff (Ra.Rel "R", Ra.Rel "S")) in
  check relation_t "difference certainly empty" (Relation.empty 2)
    (CT.certain_tuples diff);
  check relation_t "and not even possible" (Relation.empty 2)
    (CT.possible_tuples diff);
  let proj = CT.eval d (Ra.Project ([ 0 ], Ra.Rel "R")) in
  check bool_t "projection certain" true
    (Relation.mem (Tuple.consts [ "cta2" ]) (CT.certain_tuples proj))

let test_certain_matches_class_machinery () =
  (* c-table certainty agrees with the class-based certain answers for
     the compiled query, on null-free tuples. *)
  let d =
    Instance.of_rows schema
      [ ("R", [ [ Value.named "u"; Value.null 1 ]; [ Value.null 1; Value.named "u" ] ]);
        ("S", [ [ Value.named "u"; Value.named "u" ] ])
      ]
  in
  List.iter
    (fun e ->
      let ct = CT.eval d e in
      let q = Ra.to_query schema e in
      let from_classes =
        Relation.filter
          (fun t -> not (Tuple.has_null t))
          (Incomplete.Certain.certain_answers d q)
      in
      let from_conditions = CT.certain_tuples ct in
      (* certain_tuples candidates range over the c-table's constants,
         which cover all constants of certain answers *)
      check relation_t (Ra.to_string e) from_classes from_conditions)
    [ Ra.Diff (Ra.Rel "R", Ra.Rel "S"); Ra.Select (Ra.Eq_col (0, 1), Ra.Rel "R") ]

let () =
  Alcotest.run "ctable"
    [ ( "conditions",
        [ Alcotest.test_case "simplification" `Quick test_condition_simplify;
          Alcotest.test_case "evaluation and satisfiability" `Quick
            test_condition_eval_sat
        ] );
      ( "tables",
        [ Alcotest.test_case "basics" `Quick test_ctable_basics ] );
      ( "representation-theorem",
        [ Alcotest.test_case "difference example" `Quick
            test_representation_theorem_example;
          QCheck_alcotest.to_alcotest prop_representation_theorem
        ] );
      ( "certainty",
        [ Alcotest.test_case "certain tuples" `Quick test_certain_tuples;
          Alcotest.test_case "agrees with class machinery" `Quick
            test_certain_matches_class_machinery
        ] )
    ]
