(* Tests for the datalog engine and the generic-query measure machinery
   (Theorem 1 beyond first-order logic). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module F = Logic.Formula
module Program = Datalog.Program
module Generic = Zeroone.Generic
module R = Arith.Rat

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let relation_t = Alcotest.testable Relation.pp Relation.equal
let rat_t = Alcotest.testable R.pp R.equal

let graph_schema = Schema.make [ ("E", 2) ]

let tc_program () =
  Program.parse_exn graph_schema
    "TC(x, y) := E(x, y). TC(x, z) := E(x, y), TC(y, z)."

let chain_db names =
  let rec edges = function
    | a :: (b :: _ as rest) -> [ a; b ] :: edges rest
    | _ -> []
  in
  Instance.of_rows graph_schema [ ("E", edges names) ]

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let test_transitive_closure () =
  let d = chain_db [ Value.named "a"; Value.named "b"; Value.named "c"; Value.named "d" ] in
  let tc = Program.query d (tc_program ()) "TC" in
  (* chain of 4 nodes: 3+2+1 = 6 pairs *)
  check int_t "tc size" 6 (Relation.cardinal tc);
  check bool_t "a->d" true (Relation.mem (Tuple.consts [ "a"; "d" ]) tc);
  check bool_t "no d->a" false (Relation.mem (Tuple.consts [ "d"; "a" ]) tc)

let test_cycle () =
  let a = Value.named "a" and b = Value.named "b" in
  let d = Instance.of_rows graph_schema [ ("E", [ [ a; b ]; [ b; a ] ]) ] in
  let tc = Program.query d (tc_program ()) "TC" in
  check int_t "cycle closure" 4 (Relation.cardinal tc);
  check bool_t "self-reachable" true (Relation.mem (Tuple.of_list [ a; a ]) tc)

let test_facts_and_constants () =
  let schema = Schema.make [ ("E", 2) ] in
  let p =
    Program.parse_exn schema
      "Start('a'). Reach(x) := Start(x). Reach(y) := Reach(x), E(x, y)."
  in
  check int_t "one constant" 1 (List.length (Program.constants p));
  let d = chain_db [ Value.named "a"; Value.named "b"; Value.named "c" ] in
  let reach = Program.query d p "Reach" in
  check int_t "reachable" 3 (Relation.cardinal reach)

let test_well_formedness () =
  let schema = Schema.make [ ("E", 2) ] in
  check bool_t "unbound head var" true
    (Result.is_error (Program.parse schema "P(x, y) := E(x, x)."));
  check bool_t "unknown predicate" true
    (Result.is_error (Program.parse schema "P(x) := Q(x)."));
  check bool_t "wrong arity" true
    (Result.is_error (Program.parse schema "P(x) := E(x)."));
  check bool_t "idb shadows edb" true
    (Result.is_error (Program.parse schema "E(x, y) := E(y, x)."));
  check bool_t "ok program" true
    (Result.is_ok (Program.parse schema "P(x) := E(x, y)."))

let test_parser_roundtrip () =
  let p = tc_program () in
  let printed = Format.asprintf "%a" Program.pp p in
  let p' = Program.parse_exn graph_schema printed in
  check int_t "same rule count" (List.length p.Program.rules)
    (List.length p'.Program.rules)

let test_datalog_on_incomplete () =
  (* naive datalog evaluation: nulls act as constants, so TC jumps
     through them. *)
  let d =
    Instance.of_rows graph_schema
      [ ("E", [ [ Value.named "a"; Value.null 1 ]; [ Value.null 1; Value.named "c" ] ]) ]
  in
  let tc = Program.query d (tc_program ()) "TC" in
  check bool_t "a -> c through the null" true
    (Relation.mem (Tuple.consts [ "a"; "c" ]) tc);
  check int_t "tc size" 3 (Relation.cardinal tc)

(* ------------------------------------------------------------------ *)
(* Generic queries: the 0-1 law beyond FO                               *)
(* ------------------------------------------------------------------ *)

let tc_query () = Generic.of_datalog graph_schema (tc_program ()) ~goal:"TC"

let test_generic_naive () =
  let d =
    Instance.of_rows graph_schema
      [ ("E", [ [ Value.named "a"; Value.null 1 ]; [ Value.null 1; Value.named "c" ] ]) ]
  in
  let q = tc_query () in
  check bool_t "naive contains (a,c)" true
    (Relation.mem (Tuple.consts [ "a"; "c" ]) (Generic.naive_answers d q))

let test_generic_zero_one_law_tc () =
  (* (a,c) is reachable regardless of v(⊥1): certain, µ = 1.
     (a,a) requires v(⊥1) = a on one edge... here never: µ = 0. *)
  let d =
    Instance.of_rows graph_schema
      [ ("E", [ [ Value.named "a"; Value.null 1 ]; [ Value.null 1; Value.named "c" ] ]) ]
  in
  let q = tc_query () in
  check rat_t "µ(a,c) = 1" R.one
    (Generic.mu_symbolic d q (Tuple.consts [ "a"; "c" ]));
  check bool_t "certain too" true
    (Generic.is_certain d q (Tuple.consts [ "a"; "c" ]));
  check rat_t "µ(c,a) = 0" R.zero
    (Generic.mu_symbolic d q (Tuple.consts [ "c"; "a" ]));
  (* (a,⊥1) is a naive answer but not certain (if v⊥1 = a it still is…
     actually (a, v⊥1) ∈ TC always since edge (a,⊥1) exists): certain! *)
  check bool_t "(a,~1) certain" true
    (Generic.is_certain d q (Tuple.of_list [ Value.named "a"; Value.null 1 ]))

let test_generic_zero_one_matches_naive () =
  (* Theorem 1 for a recursive query: µ ∈ {0,1} and = naive membership,
     on a database where reachability genuinely depends on nulls. *)
  let d =
    Instance.of_rows graph_schema
      [ ("E",
         [ [ Value.named "a"; Value.null 1 ];
           [ Value.null 2; Value.named "b" ];
           [ Value.named "b"; Value.named "b2" ]
         ])
      ]
  in
  let q = tc_query () in
  let naive = Generic.naive_answers d q in
  List.iter
    (fun vals ->
      let t = Tuple.of_list vals in
      let mu = Generic.mu_symbolic d q t in
      check bool_t
        ("0-1 law for " ^ Tuple.to_string t)
        true
        (R.is_zero mu || R.is_one mu);
      check bool_t
        ("matches naive for " ^ Tuple.to_string t)
        (Relation.mem t naive) (R.is_one mu))
    (Arith.Combinat.tuples (Instance.adom d) 2)

let test_generic_mu_k_series () =
  (* a reaches b iff v⊥1 = b (direct edge), v⊥2 = a (direct edge), or
     v⊥1 = v⊥2 (two-step chain): 3(k−1) of k² valuations once k covers
     the constants, so µ^k = 3(k−1)/k² → 0. TC is not FO-expressible,
     so this series lives genuinely beyond the paper's FO examples. *)
  let d =
    Instance.of_rows graph_schema
      [ ("E", [ [ Value.named "a"; Value.null 1 ]; [ Value.null 2; Value.named "b" ] ]) ]
  in
  let q = tc_query () in
  let t = Tuple.consts [ "a"; "b" ] in
  let k0 = Instance.max_constant d in
  List.iter
    (fun i ->
      let k = k0 + i in
      check rat_t
        (Printf.sprintf "µ^k = 3(k-1)/k² at k=%d" k)
        (R.of_ints (3 * (k - 1)) (k * k))
        (Generic.mu_k d q t ~k))
    [ 1; 2; 4 ];
  check rat_t "limit 0" R.zero (Generic.mu_symbolic d q t)

let test_generic_of_fo_and_ra () =
  let schema = Schema.make [ ("R", 2); ("S", 2) ] in
  let d =
    Instance.of_rows schema
      [ ("R", [ [ Value.named "x"; Value.null 1 ] ]);
        ("S", [ [ Value.named "x"; Value.null 2 ] ])
      ]
  in
  let fo = Generic.of_fo (Logic.Parser.query_exn "Q(a, b) := R(a, b)") in
  check relation_t "fo naive" (Instance.relation d "R") (Generic.naive_answers d fo);
  let ra = Generic.of_ra schema (Logic.Ra.Diff (Logic.Ra.Rel "R", Logic.Ra.Rel "S")) in
  check int_t "ra naive" 1 (Relation.cardinal (Generic.naive_answers d ra));
  (* the difference tuple is naive but not certain: µ = 1 nonetheless *)
  let t = Tuple.of_list [ Value.named "x"; Value.null 1 ] in
  check rat_t "ra µ = 1" R.one (Generic.mu_symbolic d ra t);
  check bool_t "but not certain" false (Generic.is_certain d ra t)

let prop_generic_fo_matches_direct =
  (* For FO queries the generic wrapper must agree with the dedicated
     implementation everywhere. *)
  let schema = Schema.make [ ("R", 2); ("S", 2) ] in
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 3)
        else Value.named ("dg" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 5)
  in
  let inst_gen =
    QCheck.map
      (fun (r_rows, s_rows) ->
        Instance.of_rows schema
          [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
            ("S", List.map (fun (a, b) -> [ a; b ]) s_rows)
          ])
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 2)
            (QCheck.pair value_gen value_gen)))
  in
  QCheck.Test.make ~name:"generic wrapper = dedicated FO machinery" ~count:30
    inst_gen (fun d ->
      List.for_all
        (fun qs ->
          let q = Logic.Parser.query_exn qs in
          let g = Generic.of_fo q in
          R.equal
            (Generic.mu_symbolic d g Tuple.empty)
            (Zeroone.Measure.mu_symbolic d q Tuple.empty)
          && Generic.is_certain d g Tuple.empty
             = Incomplete.Certain.is_certain d q Tuple.empty)
        [ "Q() := exists x. exists y. R(x, y) & !S(x, y)";
          "Q() := exists x. R(x, x)"
        ])

let () =
  Alcotest.run "datalog"
    [ ( "engine",
        [ Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "cycles" `Quick test_cycle;
          Alcotest.test_case "facts and constants" `Quick test_facts_and_constants;
          Alcotest.test_case "well-formedness" `Quick test_well_formedness;
          Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "incomplete graphs" `Quick test_datalog_on_incomplete
        ] );
      ( "generic-0-1-law",
        [ Alcotest.test_case "naive answers" `Quick test_generic_naive;
          Alcotest.test_case "TC certainties" `Quick test_generic_zero_one_law_tc;
          Alcotest.test_case "0-1 law beyond FO" `Quick
            test_generic_zero_one_matches_naive;
          Alcotest.test_case "µ^k series" `Quick test_generic_mu_k_series;
          Alcotest.test_case "FO and RA wrappers" `Quick test_generic_of_fo_and_ra
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_generic_fo_matches_direct ] )
    ]
