(* Tests for the §6 future-work extensions: SQL three-valued logic,
   Codd nulls, non-uniform distributions, and approximation quality. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module Query = Logic.Query
module Parser = Logic.Parser
module Sql3vl = Logic.Sql3vl
module Eval = Logic.Eval
module Naive = Incomplete.Naive
module Certain = Incomplete.Certain
module Codd = Incomplete.Codd
module Support = Incomplete.Support
module Weighted = Zeroone.Weighted
module Approx = Zeroone.Approx
module R = Arith.Rat

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let rat_t = Alcotest.testable R.pp R.equal
let relation_t = Alcotest.testable Relation.pp Relation.equal

let rs_schema = Schema.make [ ("R", 2); ("S", 2) ]

let value_gen =
  QCheck.map
    (fun i ->
      if i >= 0 then Value.null (i mod 3)
      else Value.named ("ex" ^ string_of_int (-i mod 3)))
    (QCheck.int_range (-6) 5)

let rs_instance_gen =
  QCheck.map
    (fun (r_rows, s_rows) ->
      Instance.of_rows rs_schema
        [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
          ("S", List.map (fun (a, b) -> [ a; b ]) s_rows)
        ])
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
          (QCheck.pair value_gen value_gen))
       (QCheck.list_of_size (QCheck.Gen.int_range 0 2)
          (QCheck.pair value_gen value_gen)))

(* ------------------------------------------------------------------ *)
(* SQL 3-valued logic                                                   *)
(* ------------------------------------------------------------------ *)

let test_bool3_tables () =
  let open Sql3vl in
  check bool_t "and" true (band True Unknown = Unknown);
  check bool_t "and false dominates" true (band False Unknown = False);
  check bool_t "or true dominates" true (bor True Unknown = True);
  check bool_t "or" true (bor False Unknown = Unknown);
  check bool_t "not" true (bnot Unknown = Unknown);
  check bool_t "eq null" true (eq_value (Value.null 1) (Value.null 1) = Unknown);
  check bool_t "eq const" true
    (eq_value (Value.named "sq") (Value.named "sq") = True)

let test_sql_vs_marked_nulls () =
  (* The crucial difference: naive evaluation knows ⊥1 = ⊥1 and
     ⊥1 ≠ ⊥2; SQL's 3VL says Unknown to both. *)
  let d =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.null 1; Value.null 1 ] ]) ]
  in
  let self_join = Parser.formula_exn "exists x. R(x, x)" in
  check bool_t "naively true" true (Naive.sentence d self_join);
  check bool_t "SQL unknown" true
    (Sql3vl.sentence_holds d self_join = Sql3vl.Unknown);
  (* and in fact it IS certain: same null in both columns *)
  check bool_t "certain" true (Certain.is_certain_sentence d self_join)

let test_sql_agrees_on_complete () =
  let d =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.named "x"; Value.named "y" ] ]);
        ("S", [ [ Value.named "y"; Value.named "x" ] ])
      ]
  in
  List.iter
    (fun s ->
      let f = Parser.formula_exn s in
      check bool_t s
        (Eval.sentence_holds d f)
        (Sql3vl.sentence_holds d f = Sql3vl.True))
    [ "exists x. exists y. R(x, y) & S(y, x)";
      "forall x. forall y. R(x, y) -> S(x, y)";
      "exists x. R(x, x)";
      "exists x. exists y. R(x, y) & x != y"
    ]

let prop_sql_complete_matches_boolean =
  QCheck.Test.make ~name:"3VL = 2VL on complete databases" ~count:100
    (QCheck.map
       (fun (r_rows, s_rows) ->
         let const i = Value.named ("c3" ^ string_of_int (i mod 3)) in
         Instance.of_rows rs_schema
           [ ("R", List.map (fun (a, b) -> [ const a; const b ]) r_rows);
             ("S", List.map (fun (a, b) -> [ const a; const b ]) s_rows)
           ])
       (QCheck.pair
          (QCheck.list_of_size (QCheck.Gen.int_range 0 4)
             (QCheck.pair QCheck.small_nat QCheck.small_nat))
          (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
             (QCheck.pair QCheck.small_nat QCheck.small_nat))))
    (fun d ->
      List.for_all
        (fun s ->
          let f = Parser.formula_exn s in
          Eval.sentence_holds d f = (Sql3vl.sentence_holds d f = Sql3vl.True))
        [ "exists x. exists y. R(x, y) & !S(x, y)";
          "forall x. forall y. R(x, y) -> S(x, y)"
        ])

let test_sql_maybe_answers () =
  let d =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.named "a"; Value.null 1 ] ]) ]
  in
  let q = Parser.query_exn "Q(x) := R(x, 'a')" in
  (* R(a,⊥): is (a) an answer to R(x,'a')? Unknown (⊥ vs 'a'). *)
  check relation_t "no true answers" (Relation.empty 1) (Sql3vl.answers d q);
  check bool_t "maybe answer" true
    (Relation.mem (Tuple.consts [ "a" ]) (Sql3vl.maybe_answers d q))

(* ------------------------------------------------------------------ *)
(* Codd nulls                                                           *)
(* ------------------------------------------------------------------ *)

let test_codd_detection () =
  let codd =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.null 1; Value.null 2 ] ]) ]
  in
  let marked =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.null 1; Value.null 1 ] ]) ]
  in
  check bool_t "codd" true (Codd.is_codd codd);
  check bool_t "marked" false (Codd.is_codd marked);
  check (Alcotest.list int_t) "repeated" [ 1 ] (Codd.repeated_nulls marked)

let test_coddify () =
  let d =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.null 1; Value.null 1 ] ]);
        ("S", [ [ Value.null 1; Value.null 2 ] ])
      ]
  in
  let c = Codd.coddify d in
  check bool_t "result is codd" true (Codd.is_codd c);
  check int_t "same tuple count" (Instance.total_tuples d) (Instance.total_tuples c);
  (* the unique null ~2 keeps its identity *)
  check bool_t "singleton null preserved" true
    (List.mem 2 (Instance.nulls c));
  (* already-codd instances unchanged *)
  let codd =
    Instance.of_rows rs_schema [ ("R", [ [ Value.null 7; Value.null 8 ] ]) ]
  in
  check bool_t "noop" true (Instance.equal codd (Codd.coddify codd))

let prop_coddify_weakens =
  (* [[D]] ⊆ [[coddify D]]: certain truth can only be lost, possible
     truth only gained. *)
  QCheck.Test.make ~name:"coddify weakens the semantics" ~count:60
    rs_instance_gen (fun d ->
      let c = Codd.coddify d in
      List.for_all
        (fun s ->
          let f = Parser.formula_exn s in
          (* certain in coddified -> certain in original *)
          ((not (Certain.is_certain_sentence c f))
          || Certain.is_certain_sentence d f)
          (* possible in original -> possible in coddified *)
          && ((not (Certain.is_possible_sentence d f))
             || Certain.is_possible_sentence c f))
        [ "exists x. R(x, x)";
          "exists x. exists y. R(x, y) & !S(x, y)";
          "forall x. forall y. R(x, y) -> S(x, y)"
        ])

(* ------------------------------------------------------------------ *)
(* Weighted measures                                                    *)
(* ------------------------------------------------------------------ *)

let collision_db () =
  Instance.of_rows rs_schema [ ("R", [ [ Value.null 1; Value.null 2 ] ]) ]

let collision_q = Parser.query_exn "Q() := exists x. R(x, x)"

let prop_uniform_weights_recover_mu =
  QCheck.Test.make ~name:"uniform weighted measure = µ^k" ~count:40
    (QCheck.pair rs_instance_gen (QCheck.int_range 1 5)) (fun (d, k) ->
      List.for_all
        (fun qs ->
          let q = Parser.query_exn qs in
          R.equal
            (Weighted.mu_k Weighted.uniform d q Tuple.empty ~k)
            (Support.mu_k d q Tuple.empty ~k))
        [ "Q() := exists x. R(x, x)";
          "Q() := exists x. exists y. R(x, y) & !S(x, y)"
        ])

let test_weighted_favourite_changes_limit () =
  (* "The two nulls collide" has uniform measure 0, but if constant 1
     carries weight w among k constants, the collision probability is
     (w² + (k−1)) / (w + k − 1)², which stays ≥ some bound when w grows
     with... — here we just check the exact finite-k values and that the
     skewed series dominates the uniform one. *)
  let d = collision_db () and q = collision_q in
  List.iter
    (fun k ->
      let uniform = Weighted.mu_k_boolean Weighted.uniform d q ~k in
      let skewed =
        Weighted.mu_k_boolean (Weighted.favourite ~code:1 ~weight:(R.of_int 10)) d q ~k
      in
      check rat_t
        (Printf.sprintf "uniform at %d" k)
        (R.of_ints 1 k) uniform;
      (* skewed = (100 + (k-1)) / (10 + k - 1)^2 *)
      check rat_t
        (Printf.sprintf "skewed at %d" k)
        (R.of_ints (100 + k - 1) ((9 + k) * (9 + k)))
        skewed;
      check bool_t "skew increases collisions" true R.Infix.(skewed > uniform))
    [ 2; 4; 8 ]

let test_weighted_geometric_escapes_zero_one () =
  (* With geometric weights the mass does not spread out as k grows, so
     the collision query's measure converges to a strictly positive
     value < 1: the 0-1 law fails for this distribution. *)
  let d = collision_db () and q = collision_q in
  let scheme = Weighted.geometric ~ratio:R.half in
  let at k = Weighted.mu_k_boolean scheme d q ~k in
  (* collision prob = Σ w_i² / (Σ w_i)²  →  (1/3)/(1)² = 1/3 for ratio 1/2 *)
  let v16 = at 16 and v18 = at 18 in
  check bool_t "well inside (0,1)" true
    R.Infix.(v16 > R.of_ints 1 4 && v16 < R.half);
  check bool_t "converging towards 1/3" true
    R.Infix.(R.abs (R.sub v18 (R.of_ints 1 3)) < R.of_ints 1 1000)

let test_weighted_zipf_runs () =
  let d = collision_db () and q = collision_q in
  let v = Weighted.mu_k_boolean Weighted.zipf d q ~k:6 in
  check bool_t "in (0,1)" true R.Infix.(v > R.zero && v < R.one)

(* ------------------------------------------------------------------ *)
(* Approximation quality                                                *)
(* ------------------------------------------------------------------ *)

let test_approx_sql_on_paper_example () =
  (* On the intro example: certain answers empty, SQL returns nothing
     for the difference query (everything touching nulls is Unknown), so
     SQL is sound and trivially complete here. *)
  let schema = Parser.schema_exn "R1(c, p); R2(c, p)" in
  let d =
    Parser.instance_exn schema
      "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) };
       R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"
  in
  let q = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)" in
  let report = Approx.evaluate Approx.sql_scheme d q in
  check bool_t "sound" true (Approx.sound report);
  check bool_t "complete" true (Approx.complete report);
  check rat_t "recall" R.one (Approx.recall report);
  check rat_t "precision" R.one (Approx.precision report)

let test_approx_null_free_misses () =
  (* Null-free naive evaluation misses certain answers that carry
     nulls: Q returning R1 certainly contains (c1,~1). *)
  let schema = Parser.schema_exn "R1(c, p); R2(c, p)" in
  let d = Parser.instance_exn schema "R1 = { ('c1', ~1) }; R2 = { }" in
  let q = Parser.query_exn "Q(x, y) := R1(x, y)" in
  let report = Approx.evaluate Approx.naive_null_free_scheme d q in
  check bool_t "incomplete" false (Approx.complete report);
  check int_t "missed one" 1 (Relation.cardinal report.Approx.missed);
  check rat_t "recall 0" R.zero (Approx.recall report);
  check bool_t "but sound" true (Approx.sound report)

let test_approx_classifies_spurious () =
  (* A scheme that returns all naive answers: spurious answers (naive
     but not certain) are classified benign (µ=1) by Theorem 1. *)
  let schema = Parser.schema_exn "R1(c, p); R2(c, p)" in
  let d =
    Parser.instance_exn schema
      "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) };
       R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"
  in
  let q = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)" in
  let report = Approx.evaluate (fun d q -> Naive.answers d q) d q in
  check int_t "two benign spurious" 2
    (Relation.cardinal report.Approx.spurious_benign);
  check int_t "no harmful spurious" 0
    (Relation.cardinal report.Approx.spurious_harmful);
  check rat_t "recall trivially 1" R.one (Approx.recall report)

let prop_sql_sound_for_positive =
  (* SQL's True answers are certain for positive queries. *)
  QCheck.Test.make ~name:"SQL 3VL sound on positive queries" ~count:60
    rs_instance_gen (fun d ->
      List.for_all
        (fun qs ->
          let q = Parser.query_exn qs in
          Relation.subset (Sql3vl.answers d q) (Certain.certain_answers d q))
        [ "Q(x) := exists y. R(x, y)"; "Q(x, y) := R(x, y) | S(x, y)" ])

let () =
  Alcotest.run "extensions"
    [ ( "sql3vl",
        [ Alcotest.test_case "truth tables" `Quick test_bool3_tables;
          Alcotest.test_case "SQL vs marked nulls" `Quick test_sql_vs_marked_nulls;
          Alcotest.test_case "complete databases" `Quick test_sql_agrees_on_complete;
          Alcotest.test_case "maybe answers" `Quick test_sql_maybe_answers
        ] );
      ( "codd",
        [ Alcotest.test_case "detection" `Quick test_codd_detection;
          Alcotest.test_case "coddify" `Quick test_coddify
        ] );
      ( "weighted",
        [ Alcotest.test_case "favourite constant" `Quick
            test_weighted_favourite_changes_limit;
          Alcotest.test_case "geometric escapes 0-1" `Quick
            test_weighted_geometric_escapes_zero_one;
          Alcotest.test_case "zipf runs" `Quick test_weighted_zipf_runs
        ] );
      ( "approx",
        [ Alcotest.test_case "SQL on the intro example" `Quick
            test_approx_sql_on_paper_example;
          Alcotest.test_case "null-free misses" `Quick test_approx_null_free_misses;
          Alcotest.test_case "spurious classification" `Quick
            test_approx_classifies_spurious
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sql_complete_matches_boolean; prop_coddify_weakens;
            prop_uniform_weights_recover_mu; prop_sql_sound_for_positive ] )
    ]
