(* Tests for the possible-worlds probabilistic engine and its agreement
   with µ^k (the §3.2 remark, experiment E20). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Instance = Relational.Instance
module Query = Logic.Query
module Parser = Logic.Parser
module Support = Incomplete.Support
module Pworld = Probdb.Pworld
module R = Arith.Rat

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let rat_t = Alcotest.testable R.pp R.equal

let rs_schema = Schema.make [ ("R", 2); ("S", 2) ]

let test_of_worlds_validation () =
  let schema = Schema.make [ ("U", 1) ] in
  let d1 = Instance.of_rows schema [ ("U", [ [ Value.named "a" ] ]) ] in
  let d2 = Instance.empty schema in
  let t = Pworld.of_worlds [ (d1, R.half); (d2, R.half) ] in
  check int_t "two worlds" 2 (Pworld.world_count t);
  (* duplicates merge *)
  let t2 = Pworld.of_worlds [ (d1, R.half); (d1, R.half) ] in
  check int_t "merged" 1 (Pworld.world_count t2);
  check bool_t "bad sum rejected" true
    (match Pworld.of_worlds [ (d1, R.half) ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check bool_t "negative rejected" true
    (match Pworld.of_worlds [ (d1, R.of_ints (-1) 2); (d2, R.of_ints 3 2) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_world_collapse () =
  (* R = {(1,⊥),(1,⊥')}: valuations k², distinct worlds k(k+1)/2. *)
  let d =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.named "one"; Value.null 1 ]; [ Value.named "one"; Value.null 2 ] ]) ]
  in
  let k = Instance.max_constant d + 4 in
  let t = Pworld.of_incomplete d ~k in
  check int_t "collapsed world count" (k * (k + 1) / 2) (Pworld.world_count t);
  (* all probabilities positive and summing to one *)
  let total =
    List.fold_left (fun acc (_, p) -> R.add acc p) R.zero (Pworld.worlds t)
  in
  check rat_t "total mass" R.one total

let prop_prob_equals_mu_k =
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 3)
        else Value.named ("pw" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 5)
  in
  let inst_gen =
    QCheck.map
      (fun (r_rows, s_rows) ->
        Instance.of_rows rs_schema
          [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
            ("S", List.map (fun (a, b) -> [ a; b ]) s_rows)
          ])
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 2)
            (QCheck.pair value_gen value_gen)))
  in
  let queries =
    [ Parser.query_exn "Q() := exists x. exists y. R(x, y) & !S(x, y)";
      Parser.query_exn "Q() := exists x. R(x, x)";
      Parser.query_exn "Q() := forall x. forall y. R(x, y) -> S(x, y)"
    ]
  in
  QCheck.Test.make ~name:"probabilistic evaluation = µ^k (§3.2 remark)"
    ~count:40 inst_gen (fun d ->
      let k = Instance.max_constant d + 3 in
      let t = Pworld.of_incomplete d ~k in
      List.for_all
        (fun q ->
          R.equal
            (Pworld.prob_sentence t q.Query.body)
            (Support.mu_k_boolean d q ~k))
        queries)

let test_prob_tuple_and_expectation () =
  let d =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.named "one"; Value.null 1 ] ]) ]
  in
  let k = Instance.max_constant d + 3 in
  let t = Pworld.of_incomplete d ~k in
  let q = Parser.query_exn "Q(x, y) := R(x, y)" in
  (* ("one","one") is an answer iff v⊥ = "one": probability 1/k. *)
  check rat_t "tuple probability" (R.of_ints 1 k)
    (Pworld.prob_tuple t q (Tuple.consts [ "one"; "one" ]));
  (* exactly one answer in every world *)
  check rat_t "expected count" R.one (Pworld.expected_answer_count t q);
  check bool_t "null tuple rejected" true
    (match Pworld.prob_tuple t q (Tuple.of_list [ Value.null 1; Value.null 1 ]) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_map_worlds () =
  let schema = Schema.make [ ("U", 1) ] in
  let d1 = Instance.of_rows schema [ ("U", [ [ Value.named "a" ] ]) ] in
  let d2 = Instance.of_rows schema [ ("U", [ [ Value.named "b" ] ]) ] in
  let t = Pworld.of_worlds [ (d1, R.half); (d2, R.half) ] in
  (* collapse both worlds to the empty instance *)
  let collapsed = Pworld.map_worlds (fun _ -> Instance.empty schema) t in
  check int_t "one world after map" 1 (Pworld.world_count collapsed)

let () =
  Alcotest.run "probdb"
    [ ( "construction",
        [ Alcotest.test_case "validation" `Quick test_of_worlds_validation;
          Alcotest.test_case "world collapse" `Quick test_world_collapse
        ] );
      ( "queries",
        [ Alcotest.test_case "tuple prob and expectation" `Quick
            test_prob_tuple_and_expectation;
          Alcotest.test_case "map worlds" `Quick test_map_worlds
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_prob_equals_mu_k ] )
    ]
