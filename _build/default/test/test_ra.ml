(* Tests for the relational algebra front end: direct evaluation, FO
   compilation, and their agreement (including as naive evaluation on
   incomplete instances). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module Ra = Logic.Ra
module Eval = Logic.Eval
module Fragment = Logic.Fragment

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let relation_t = Alcotest.testable Relation.pp Relation.equal

let schema = Schema.make [ ("R", 2); ("S", 2); ("U", 1) ]

let sample_db () =
  Instance.of_rows schema
    [ ("R", [ [ Value.named "a"; Value.named "b" ]; [ Value.named "b"; Value.named "c" ] ]);
      ("S", [ [ Value.named "a"; Value.named "b" ] ]);
      ("U", [ [ Value.named "a" ]; [ Value.named "c" ] ])
    ]

let test_eval_basic () =
  let d = sample_db () in
  check int_t "base relation" 2 (Relation.cardinal (Ra.eval d (Ra.Rel "R")));
  let diff = Ra.Diff (Ra.Rel "R", Ra.Rel "S") in
  check int_t "difference" 1 (Relation.cardinal (Ra.eval d diff));
  check bool_t "difference content" true
    (Relation.mem (Tuple.consts [ "b"; "c" ]) (Ra.eval d diff));
  let proj = Ra.Project ([ 1 ], Ra.Rel "R") in
  check int_t "projection" 2 (Relation.cardinal (Ra.eval d proj));
  let sel = Ra.Select (Ra.Eq_const (0, Value.named "a"), Ra.Rel "R") in
  check int_t "selection" 1 (Relation.cardinal (Ra.eval d sel));
  let prod = Ra.Product (Ra.Rel "U", Ra.Rel "U") in
  check int_t "product" 4 (Relation.cardinal (Ra.eval d prod));
  let union = Ra.Union (Ra.Rel "R", Ra.Rel "S") in
  check int_t "union" 2 (Relation.cardinal (Ra.eval d union));
  (* join via product + select: R ⋈ R on second = first gives the
     2-step path (a,b,c) *)
  let join =
    Ra.Project
      ( [ 0; 1; 3 ],
        Ra.Select (Ra.Eq_col (1, 2), Ra.Product (Ra.Rel "R", Ra.Rel "R")) )
  in
  check int_t "join" 1 (Relation.cardinal (Ra.eval d join));
  check bool_t "join content" true
    (Relation.mem (Tuple.consts [ "a"; "b"; "c" ]) (Ra.eval d join))

let test_eval_duplicate_projection () =
  let d = sample_db () in
  let dup = Ra.Project ([ 0; 0 ], Ra.Rel "U") in
  let r = Ra.eval d dup in
  check int_t "arity" 2 (Relation.arity r);
  check bool_t "content" true (Relation.mem (Tuple.consts [ "a"; "a" ]) r)

let test_eval_nullary_projection () =
  let d = sample_db () in
  let nullary = Ra.Project ([], Ra.Rel "U") in
  check int_t "nonempty gives one empty tuple" 1
    (Relation.cardinal (Ra.eval d nullary));
  let empty_base =
    Instance.of_rows schema [ ("U", []) ]
  in
  check int_t "empty gives none" 0
    (Relation.cardinal (Ra.eval empty_base nullary))

let test_static_checks () =
  check bool_t "unknown relation" true
    (Result.is_error (Ra.well_formed schema (Ra.Rel "Nope")));
  check bool_t "column out of range" true
    (Result.is_error (Ra.well_formed schema (Ra.Project ([ 5 ], Ra.Rel "R"))));
  check bool_t "union arity mismatch" true
    (Result.is_error (Ra.well_formed schema (Ra.Union (Ra.Rel "R", Ra.Rel "U"))));
  check bool_t "selection out of range" true
    (Result.is_error
       (Ra.well_formed schema (Ra.Select (Ra.Eq_col (0, 3), Ra.Rel "R"))));
  check (Alcotest.result int_t Alcotest.string) "arity of product" (Ok 3)
    (Ra.arity schema (Ra.Product (Ra.Rel "R", Ra.Rel "U")))

let test_spju () =
  check bool_t "spju" true
    (Ra.is_spju
       (Ra.Union
          ( Ra.Project ([ 0 ], Ra.Select (Ra.Eq_col (0, 1), Ra.Rel "R")),
            Ra.Rel "U" )));
  check bool_t "difference not spju" false
    (Ra.is_spju (Ra.Diff (Ra.Rel "R", Ra.Rel "S")));
  check bool_t "negative selection not spju" false
    (Ra.is_spju (Ra.Select (Ra.Neq_col (0, 1), Ra.Rel "R")))

let test_compilation_agrees () =
  let d = sample_db () in
  let expressions =
    [ Ra.Rel "R";
      Ra.Diff (Ra.Rel "R", Ra.Rel "S");
      Ra.Union (Ra.Rel "R", Ra.Rel "S");
      Ra.Project ([ 1 ], Ra.Rel "R");
      Ra.Project ([ 1; 0 ], Ra.Rel "S");
      Ra.Select (Ra.Eq_const (0, Value.named "a"), Ra.Rel "R");
      Ra.Select (Ra.Neq_col (0, 1), Ra.Rel "R");
      Ra.Project
        ( [ 0; 3 ],
          Ra.Select (Ra.Eq_col (1, 2), Ra.Product (Ra.Rel "R", Ra.Rel "R")) );
      Ra.Product (Ra.Rel "U", Ra.Rel "U");
      Ra.Project ([], Ra.Rel "U")
    ]
  in
  List.iter
    (fun e ->
      let q = Ra.to_query schema e in
      check relation_t (Ra.to_string e) (Ra.eval d e) (Eval.answers d q))
    expressions

let prop_compilation_agrees_incomplete =
  (* On incomplete instances, direct RA evaluation (structural null
     comparison) is naive evaluation; the compiled FO query evaluated
     directly must agree. *)
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 3)
        else Value.named ("ra" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 5)
  in
  let inst_gen =
    QCheck.map
      (fun (r_rows, s_rows, u_rows) ->
        Instance.of_rows schema
          [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
            ("S", List.map (fun (a, b) -> [ a; b ]) s_rows);
            ("U", List.map (fun a -> [ a ]) u_rows)
          ])
      (QCheck.triple
         (QCheck.list_of_size (QCheck.Gen.int_range 0 4)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3) value_gen))
  in
  let expressions =
    [ Ra.Diff (Ra.Rel "R", Ra.Rel "S");
      Ra.Project ([ 0 ], Ra.Select (Ra.Eq_col (0, 1), Ra.Rel "R"));
      Ra.Union (Ra.Project ([ 0 ], Ra.Rel "R"), Ra.Rel "U");
      Ra.Project
        ([ 0; 3 ], Ra.Select (Ra.Eq_col (1, 2), Ra.Product (Ra.Rel "R", Ra.Rel "S")))
    ]
  in
  QCheck.Test.make ~name:"RA direct eval = compiled FO query" ~count:100
    inst_gen (fun d ->
      List.for_all
        (fun e ->
          Relation.equal (Ra.eval d e)
            (Eval.answers d (Ra.to_query schema e)))
        expressions)

let test_spju_compiles_to_ucq () =
  (* The SPJU fragment compiles into the ∃,∧,∨ fragment (UCQ modulo the
     equality atoms introduced by projection/selection). *)
  let e = Ra.Union (Ra.Project ([ 0 ], Ra.Rel "R"), Ra.Rel "U") in
  let q = Ra.to_query schema e in
  check bool_t "positive formula" true (Fragment.is_positive q.Logic.Query.body)

(* ------------------------------------------------------------------ *)
(* Optimizer                                                            *)
(* ------------------------------------------------------------------ *)

module Opt = Logic.Ra_opt

let test_opt_rules () =
  (* selection cascade *)
  let cascaded =
    Opt.optimize schema
      (Ra.Select (Ra.Eq_col (0, 1), Ra.Select (Ra.Eq_const (0, Value.named "a"), Ra.Rel "R")))
  in
  (match cascaded with
  | Ra.Select (Ra.And_p (_, _), Ra.Rel "R") -> ()
  | other -> Alcotest.failf "expected cascaded selection, got %s" (Ra.to_string other));
  (* identity projection removal *)
  check bool_t "identity projection removed" true
    (Opt.optimize schema (Ra.Project ([ 0; 1 ], Ra.Rel "R")) = Ra.Rel "R");
  (* projection fusion *)
  let fused = Opt.optimize schema (Ra.Project ([ 0 ], Ra.Project ([ 1; 0 ], Ra.Rel "R"))) in
  check bool_t "projections fused" true (fused = Ra.Project ([ 1 ], Ra.Rel "R"));
  (* push through union *)
  (match Opt.optimize schema (Ra.Select (Ra.Eq_col (0, 1), Ra.Union (Ra.Rel "R", Ra.Rel "S"))) with
  | Ra.Union (Ra.Select (_, Ra.Rel "R"), Ra.Select (_, Ra.Rel "S")) -> ()
  | other -> Alcotest.failf "expected pushed union, got %s" (Ra.to_string other));
  (* split across product: left conjunct + right conjunct + mixed *)
  let p =
    Ra.And_p
      ( Ra.Eq_const (0, Value.named "a"),
        Ra.And_p (Ra.Eq_const (2, Value.named "b"), Ra.Eq_col (1, 2)) )
  in
  let optimized = Opt.optimize schema (Ra.Select (p, Ra.Product (Ra.Rel "R", Ra.Rel "S"))) in
  (match optimized with
  | Ra.Select (Ra.Eq_col (1, 2), Ra.Product (Ra.Select (_, Ra.Rel "R"), Ra.Select (q2, Ra.Rel "S")))
    ->
      check bool_t "right predicate shifted" true (q2 = Ra.Eq_const (0, Value.named "b"))
  | other -> Alcotest.failf "unexpected shape: %s" (Ra.to_string other));
  (* pushdown puts selections directly on base relations *)
  let rec on_base = function
    | Ra.Select (_, Ra.Rel _) -> 1
    | Ra.Rel _ -> 0
    | Ra.Select (_, e) | Ra.Project (_, e) -> on_base e
    | Ra.Product (a, b) | Ra.Union (a, b) | Ra.Diff (a, b) -> on_base a + on_base b
  in
  let before = Ra.Select (p, Ra.Product (Ra.Rel "R", Ra.Rel "S")) in
  check int_t "no base selections before" 0 (on_base before);
  check int_t "two base selections after" 2 (on_base optimized);
  (* each remaining selection sits over a smaller subplan than the
     original monolith *)
  check bool_t "depth info available" true
    (List.length (Opt.selection_depths optimized)
    >= List.length (Opt.selection_depths before))

let test_opt_idempotent () =
  let e =
    Ra.Select
      ( Ra.Eq_col (0, 1),
        Ra.Project ([ 0; 1 ], Ra.Union (Ra.Rel "R", Ra.Diff (Ra.Rel "S", Ra.Rel "R"))) )
  in
  let once = Opt.optimize schema e in
  check bool_t "idempotent" true (Opt.optimize schema once = once)

let prop_optimize_preserves_semantics =
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 3)
        else Value.named ("ro" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 5)
  in
  let inst_gen =
    QCheck.map
      (fun (r_rows, s_rows, u_rows) ->
        Instance.of_rows schema
          [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
            ("S", List.map (fun (a, b) -> [ a; b ]) s_rows);
            ("U", List.map (fun a -> [ a ]) u_rows)
          ])
      (QCheck.triple
         (QCheck.list_of_size (QCheck.Gen.int_range 0 4)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3) value_gen))
  in
  let plans =
    [ Ra.Select (Ra.Eq_col (0, 1), Ra.Union (Ra.Rel "R", Ra.Rel "S"));
      Ra.Select
        ( Ra.And_p (Ra.Eq_const (0, Value.named "ro1"), Ra.Eq_col (1, 2)),
          Ra.Product (Ra.Rel "R", Ra.Rel "S") );
      Ra.Select (Ra.Neq_col (0, 1), Ra.Project ([ 1; 0 ], Ra.Diff (Ra.Rel "R", Ra.Rel "S")));
      Ra.Project ([ 0 ], Ra.Project ([ 1; 0 ], Ra.Select (Ra.Eq_col (0, 0), Ra.Rel "R")));
      Ra.Select
        ( Ra.Or_p (Ra.Eq_col (0, 1), Ra.Neq_const (0, Value.named "ro0")),
          Ra.Diff (Ra.Rel "R", Ra.Select (Ra.Eq_col (0, 1), Ra.Rel "S")) )
    ]
  in
  QCheck.Test.make ~name:"optimizer preserves Ra.eval" ~count:100 inst_gen
    (fun d ->
      List.for_all
        (fun e -> Relation.equal (Ra.eval d e) (Ra.eval d (Opt.optimize schema e)))
        plans)

let () =
  Alcotest.run "ra"
    [ ( "evaluation",
        [ Alcotest.test_case "operators" `Quick test_eval_basic;
          Alcotest.test_case "duplicate projection" `Quick
            test_eval_duplicate_projection;
          Alcotest.test_case "nullary projection" `Quick
            test_eval_nullary_projection
        ] );
      ( "static",
        [ Alcotest.test_case "checks" `Quick test_static_checks;
          Alcotest.test_case "spju fragment" `Quick test_spju
        ] );
      ( "compilation",
        [ Alcotest.test_case "agrees on complete db" `Quick
            test_compilation_agrees;
          Alcotest.test_case "spju is positive FO" `Quick
            test_spju_compiles_to_ucq
        ] );
      ( "optimizer",
        [ Alcotest.test_case "rewrite rules" `Quick test_opt_rules;
          Alcotest.test_case "idempotence" `Quick test_opt_idempotent
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_compilation_agrees_incomplete;
          QCheck_alcotest.to_alcotest prop_optimize_preserves_semantics
        ] )
    ]
