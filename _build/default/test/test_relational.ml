(* Tests for the relational substrate: values, tuples, relations,
   schemas, instances. *)

module Names = Relational.Names
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let value_t = Alcotest.testable Value.pp Value.equal
let tuple_t = Alcotest.testable Tuple.pp Tuple.equal
let relation_t = Alcotest.testable Relation.pp Relation.equal

let instance_t =
  Alcotest.testable (fun fmt i -> Format.fprintf fmt "%s" (Instance.to_string i))
    Instance.equal

(* ------------------------------------------------------------------ *)

let test_names () =
  let a = Names.intern "alice" in
  let a' = Names.intern "alice" in
  let b = Names.intern "bob" in
  check int_t "idempotent" a a';
  check bool_t "distinct" true (a <> b);
  check (Alcotest.option Alcotest.string) "reverse" (Some "alice") (Names.name_of a);
  check Alcotest.string "to_string known" "alice" (Names.to_string a);
  let f = Names.fresh () in
  check Alcotest.string "to_string fresh" ("#" ^ string_of_int f) (Names.to_string f)

let test_values () =
  check bool_t "null is null" true (Value.is_null (Value.null 0));
  check bool_t "const is const" true (Value.is_const (Value.named "x"));
  check bool_t "const <> null" false (Value.equal (Value.const 1) (Value.null 1));
  check value_t "named interning" (Value.named "carol") (Value.named "carol");
  check bool_t "ordering consts before nulls" true
    (Value.compare (Value.const 99) (Value.null 0) < 0);
  Alcotest.check_raises "bad const" (Invalid_argument "Value.const: codes are positive")
    (fun () -> ignore (Value.const 0));
  Alcotest.check_raises "bad null"
    (Invalid_argument "Value.null: negative null identifier") (fun () ->
      ignore (Value.null (-1)))

let test_tuples () =
  let t = Tuple.of_list [ Value.named "a"; Value.null 1; Value.null 1; Value.null 2 ] in
  check int_t "arity" 4 (Tuple.arity t);
  check (Alcotest.list int_t) "nulls dedup ordered" [ 1; 2 ] (Tuple.nulls t);
  check bool_t "has null" true (Tuple.has_null t);
  check bool_t "no null" false (Tuple.has_null (Tuple.consts [ "x"; "y" ]));
  check tuple_t "map identity" t (Tuple.map Fun.id t);
  check int_t "empty arity" 0 (Tuple.arity Tuple.empty);
  let t2 = Tuple.of_list [ Value.named "a"; Value.null 1; Value.null 1; Value.null 3 ] in
  check bool_t "compare distinguishes" true (Tuple.compare t t2 <> 0)

let test_relations () =
  let t1 = Tuple.consts [ "a"; "b" ] in
  let t2 = Tuple.consts [ "c"; "d" ] in
  let r = Relation.of_list 2 [ t1; t2; t1 ] in
  check int_t "set semantics" 2 (Relation.cardinal r);
  check bool_t "mem" true (Relation.mem t1 r);
  check relation_t "union idempotent" r (Relation.union r r);
  check relation_t "diff self" (Relation.empty 2) (Relation.diff r r);
  check relation_t "inter" r (Relation.inter r r);
  check bool_t "subset" true (Relation.subset (Relation.of_list 2 [ t1 ]) r);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.add: tuple of arity 1 into relation of arity 2")
    (fun () -> ignore (Relation.add (Tuple.consts [ "z" ]) r));
  let projected = Relation.project [ 1 ] r in
  check int_t "project arity" 1 (Relation.arity projected);
  check bool_t "project content" true
    (Relation.mem (Tuple.consts [ "b" ]) projected);
  let nr =
    Relation.of_list 2 [ Tuple.of_list [ Value.null 3; Value.named "a" ] ]
  in
  check (Alcotest.list int_t) "relation nulls" [ 3 ] (Relation.nulls nr)

let test_schema () =
  let s = Schema.make_with_attrs [ ("R", [ "customer"; "product" ]); ("U", [ "name" ]) ] in
  check int_t "arity" 2 (Schema.arity s "R");
  check int_t "attr index" 1 (Schema.attr_index s "R" "product");
  check (Alcotest.list Alcotest.string) "relations sorted" [ "R"; "U" ]
    (Schema.relations s);
  check bool_t "mem" true (Schema.mem "U" s);
  check bool_t "not mem" false (Schema.mem "V" s);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.add: duplicate relation R") (fun () ->
      ignore (Schema.add "R" 3 (Schema.make [ ("R", 2) ])))

let intro_schema () =
  Schema.make_with_attrs
    [ ("R1", [ "customer"; "product" ]); ("R2", [ "customer"; "product" ]) ]

(* The database of the paper's introduction. *)
let intro_db () =
  let c1 = Value.named "c1" and c2 = Value.named "c2" in
  let n1 = Value.null 1 and n2 = Value.null 2 and n3 = Value.null 3 in
  Instance.of_rows (intro_schema ())
    [ ("R1", [ [ c1; n1 ]; [ c2; n1 ]; [ c2; n2 ] ]);
      ("R2", [ [ c1; n2 ]; [ c2; n1 ]; [ n3; n1 ] ])
    ]

let test_instance_basics () =
  let d = intro_db () in
  check int_t "tuple count" 6 (Instance.total_tuples d);
  check (Alcotest.list int_t) "nulls" [ 1; 2; 3 ] (Instance.nulls d);
  check int_t "null count" 3 (Instance.null_count d);
  check bool_t "incomplete" false (Instance.is_complete d);
  check int_t "adom size" 5 (List.length (Instance.adom d));
  let consts = Instance.constants d in
  check int_t "two constants" 2 (List.length consts)

let test_instance_subst () =
  let d = intro_db () in
  let v = Value.named "widget" in
  let complete = Instance.subst_nulls (fun _ -> v) d in
  check bool_t "complete after subst" true (Instance.is_complete complete);
  (* R2 tuples (c2,~1) and (~3,~1) may collapse under substitution. *)
  check bool_t "R2 may shrink" true
    (Relation.cardinal (Instance.relation complete "R2") <= 3)

let test_instance_union_equal () =
  let d = intro_db () in
  check instance_t "union self" d (Instance.union d d);
  let d2 = Instance.add_tuple "R1" (Tuple.consts [ "x"; "y" ]) d in
  check bool_t "not equal" false (Instance.equal d d2);
  check bool_t "compare nonzero" true (Instance.compare d d2 <> 0)

let test_instance_isomorphic () =
  let schema = Schema.make [ ("R", 2) ] in
  let mk a b =
    Instance.of_rows schema [ ("R", [ [ Value.null a; Value.null b ] ]) ]
  in
  check bool_t "renamed nulls isomorphic" true
    (Instance.isomorphic (mk 1 2) (mk 5 9));
  let d1 = mk 1 2 in
  let d2 = Instance.of_rows schema [ ("R", [ [ Value.null 1; Value.null 1 ] ]) ] in
  check bool_t "different null structure" false (Instance.isomorphic d1 d2);
  check bool_t "reflexive" true (Instance.isomorphic d1 d1)

let test_instance_errors () =
  let d = intro_db () in
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Instance.add_tuple: unknown relation Nope") (fun () ->
      ignore (Instance.add_tuple "Nope" Tuple.empty d));
  Alcotest.check_raises "not found" Not_found (fun () ->
      ignore (Instance.relation d "Nope"))

let prop_relation_union_commutes =
  let tuple_gen =
    QCheck.map
      (fun (a, b) ->
        let v i = if i >= 0 then Value.null i else Value.named (string_of_int i) in
        Tuple.of_list [ v a; v b ])
      (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3))
  in
  let rel_gen =
    QCheck.map (fun ts -> Relation.of_list 2 ts)
      (QCheck.list_of_size (QCheck.Gen.int_range 0 6) tuple_gen)
  in
  QCheck.Test.make ~name:"relation set laws" ~count:200
    (QCheck.pair rel_gen rel_gen) (fun (r, s) ->
      Relation.equal (Relation.union r s) (Relation.union s r)
      && Relation.equal (Relation.inter r s) (Relation.inter s r)
      && Relation.subset (Relation.diff r s) r
      && Relation.equal (Relation.union (Relation.inter r s) (Relation.diff r s)) r)

let () =
  Alcotest.run "relational"
    [ ( "names", [ Alcotest.test_case "interning" `Quick test_names ] );
      ("values", [ Alcotest.test_case "basics" `Quick test_values ]);
      ("tuples", [ Alcotest.test_case "basics" `Quick test_tuples ]);
      ("relations", [ Alcotest.test_case "basics" `Quick test_relations ]);
      ("schema", [ Alcotest.test_case "basics" `Quick test_schema ]);
      ( "instance",
        [ Alcotest.test_case "basics" `Quick test_instance_basics;
          Alcotest.test_case "substitution" `Quick test_instance_subst;
          Alcotest.test_case "union/equality" `Quick test_instance_union_equal;
          Alcotest.test_case "isomorphism" `Quick test_instance_isomorphic;
          Alcotest.test_case "errors" `Quick test_instance_errors
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_relation_union_commutes ] )
    ]
