(* Tests for the paper's core results: support polynomials, the 0-1 law
   (Theorem 1), the alternative measure (Theorem 2), the open-world
   measure (Proposition 2), implication vs conditional measures
   (Propositions 3-4, Theorem 3), naive breakage under constraints
   (§4.3), almost-surely-true constraints (Theorem 4) and the chase
   shortcut for FDs (Theorem 5 / Corollary 4). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module F = Logic.Formula
module Query = Logic.Query
module Parser = Logic.Parser
module Support = Incomplete.Support
module Naive = Incomplete.Naive
module Dependency = Constraints.Dependency
module Support_poly = Zeroone.Support_poly
module Measure = Zeroone.Measure
module Alt_measure = Zeroone.Alt_measure
module Owa = Zeroone.Owa
module Conditional = Zeroone.Conditional
module Constructions = Zeroone.Constructions
module B = Arith.Bigint
module R = Arith.Rat
module P = Arith.Poly

let check = Alcotest.check
let bool_t = Alcotest.bool
let rat_t = Alcotest.testable R.pp R.equal
let poly_t = Alcotest.testable P.pp P.equal

(* Shared random generators for small incomplete databases over
   R(2), S(2). *)
let rs_schema = Schema.make [ ("R", 2); ("S", 2) ]

let value_gen =
  QCheck.map
    (fun i ->
      if i >= 0 then Value.null (i mod 3)
      else Value.named ("z" ^ string_of_int (-i mod 3)))
    (QCheck.int_range (-6) 5)

let rs_instance_gen =
  QCheck.map
    (fun (r_rows, s_rows) ->
      Instance.of_rows rs_schema
        [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
          ("S", List.map (fun (a, b) -> [ a; b ]) s_rows)
        ])
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
          (QCheck.pair value_gen value_gen))
       (QCheck.list_of_size (QCheck.Gen.int_range 0 2)
          (QCheck.pair value_gen value_gen)))

let fo_queries =
  [ Parser.query_exn "Q() := exists x. exists y. R(x, y) & !S(x, y)";
    Parser.query_exn "Q() := forall x. forall y. R(x, y) -> S(x, y)";
    Parser.query_exn "Q() := exists x. R(x, x)";
    Parser.query_exn "Q() := exists x. exists y. R(x, y) & S(y, x)";
    Parser.query_exn "Q() := exists x. exists y. R(x, y) & x != y"
  ]

(* ------------------------------------------------------------------ *)
(* Support polynomials                                                  *)
(* ------------------------------------------------------------------ *)

let test_support_poly_closed_form () =
  (* D: R = {(⊥,⊥')}, Q = ∃x R(x,x): |Supp^k| = k, |V^k| = k². *)
  let d =
    Instance.of_rows rs_schema [ ("R", [ [ Value.null 1; Value.null 2 ] ]) ]
  in
  let q = Parser.query_exn "exists x. R(x, x)" in
  let p = Support_poly.of_query d q Tuple.empty in
  check poly_t "equals k" P.x p;
  let pneg = Support_poly.of_query d (Query.negate q) Tuple.empty in
  check poly_t "equals k^2 - k" (P.sub (P.mul P.x P.x) P.x) pneg

let prop_support_poly_matches_bruteforce =
  QCheck.Test.make ~name:"support polynomial = brute-force count (Thm 3 proof)"
    ~count:60 rs_instance_gen (fun d ->
      List.for_all
        (fun q ->
          let sp = Support_poly.of_sentences d [ Query.instantiate q Tuple.empty ] in
          let kmin = List.fold_left max 1 sp.Support_poly.anchor_set in
          List.for_all
            (fun k ->
              let sym = P.eval_int (List.hd sp.Support_poly.polys) k in
              let brute = Support.supp_count d q Tuple.empty ~k in
              R.equal sym (R.of_bigint brute))
            [ kmin; kmin + 1; kmin + 2 ])
        fo_queries)

(* ------------------------------------------------------------------ *)
(* Theorem 1: the 0-1 law                                               *)
(* ------------------------------------------------------------------ *)

let prop_zero_one_law =
  QCheck.Test.make
    ~name:"0-1 law: µ symbolic ∈ {0,1} and µ=1 iff naive (Thm 1)" ~count:80
    rs_instance_gen (fun d ->
      List.for_all
        (fun q ->
          let symbolic = Measure.mu_symbolic d q Tuple.empty in
          let naive = Naive.boolean d q in
          (R.is_zero symbolic || R.is_one symbolic)
          && R.is_one symbolic = naive
          && Measure.is_almost_certainly_true (Measure.mu_boolean d q) = naive)
        fo_queries)

let prop_zero_one_law_tuples =
  (* Non-Boolean version: for every candidate tuple over the active
     domain, µ(Q,D,ā) ∈ {0,1} and equals 1 iff ā is a naive answer. *)
  let queries =
    [ Parser.query_exn "Q(x, y) := R(x, y) & !S(x, y)";
      Parser.query_exn "Q(x) := exists y. R(x, y) & S(y, x)"
    ]
  in
  QCheck.Test.make ~name:"0-1 law for answer tuples (Thm 1)" ~count:25
    rs_instance_gen (fun d ->
      List.for_all
        (fun q ->
          let naive = Naive.answers d q in
          List.for_all
            (fun vals ->
              let a = Tuple.of_list vals in
              let symbolic = Measure.mu_symbolic d q a in
              (R.is_zero symbolic || R.is_one symbolic)
              && R.is_one symbolic = Relation.mem a naive)
            (Arith.Combinat.tuples (Instance.adom d) (Query.arity q)))
        queries)

let test_certain_implies_mu_one () =
  (* Every certain answer is almost certainly true (immediate from the
     definitions; checked on the intro example). *)
  let schema = Parser.schema_exn "R1(c, p); R2(c, p)" in
  let d =
    Parser.instance_exn schema
      "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) };
       R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"
  in
  let q = Parser.query_exn "Q(x, y) := R1(x, y)" in
  Relation.iter
    (fun a ->
      check bool_t "certain -> mu=1" true
        (Measure.is_almost_certainly_true (Measure.mu d q a)))
    (Incomplete.Certain.certain_answers d q)

(* ------------------------------------------------------------------ *)
(* Theorem 2: the instance-counting measure                             *)
(* ------------------------------------------------------------------ *)

let test_alt_measure_closed_forms () =
  (* D: R = {(1,⊥),(1,⊥')}, Q = ∃x∃y∃z R(x,y) & R(x,z) & y≠z.
     Worlds at k: unordered pairs {v⊥,v⊥'}: C(k,2)+k of them; satisfying:
     C(k,2). So m^k = (k-1)/(k+1) while µ^k = (k-1)/k — different finite
     values, same limit 1 (Theorem 2). *)
  let d =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.named "one"; Value.null 1 ]; [ Value.named "one"; Value.null 2 ] ]) ]
  in
  let q =
    Parser.query_exn "exists x. exists y. exists z. R(x, y) & R(x, z) & y != z"
  in
  let k0 = Instance.max_constant d in
  List.iter
    (fun i ->
      let k = k0 + i in
      check rat_t
        (Printf.sprintf "m^k at k=%d" k)
        (R.of_ints (k - 1) (k + 1))
        (Alt_measure.m_k_boolean d q ~k);
      check rat_t
        (Printf.sprintf "mu^k at k=%d" k)
        (R.of_ints (k - 1) k)
        (Support.mu_k_boolean d q ~k))
    [ 1; 2; 3; 4 ];
  (* and the symbolic limit is 1 *)
  check rat_t "limit" R.one (Measure.mu_symbolic d q Tuple.empty)

let prop_alt_measure_same_verdict =
  (* Theorem 2 empirically: at a reasonably large k both measures are on
     the same side of 1/2 whenever the naive verdict is clear-cut. We
     check the stronger structural fact that m^k and µ^k agree exactly
     when all valuations collapse injectively (no repeated nulls), and
     otherwise still converge to the same verdict. *)
  QCheck.Test.make ~name:"m^k and µ^k share the limit (Thm 2)" ~count:25
    rs_instance_gen (fun d ->
      List.for_all
        (fun q ->
          let verdict = Naive.boolean d q in
          let kbig = Instance.max_constant d + 9 in
          let mu = Support.mu_k_boolean d q ~k:kbig in
          let m = Alt_measure.m_k_boolean d q ~k:kbig in
          let close_to v x =
            R.Infix.(R.abs (R.sub x (if v then R.one else R.zero)) < R.half)
          in
          (* skip the degenerate all-null-free case where both are 0/1 *)
          close_to verdict mu && close_to verdict m)
        [ List.hd fo_queries ])

(* ------------------------------------------------------------------ *)
(* Proposition 2: open-world semantics                                  *)
(* ------------------------------------------------------------------ *)

let test_owa_witness () =
  let w = Constructions.owa_witness () in
  (* Q1 = ¬∃x U(x): naively true, owa-m^k = 2^-k. *)
  check bool_t "Q1 naive true" true (Naive.boolean w.Constructions.ow_instance w.Constructions.ow_q1);
  List.iter
    (fun k ->
      check rat_t
        (Printf.sprintf "owa-m^%d(Q1) = 2^-%d" k k)
        (R.pow R.half k)
        (Owa.owa_m_k w.Constructions.ow_instance w.Constructions.ow_q1 ~k);
      check rat_t
        (Printf.sprintf "owa-m^%d(Q2) = 1 - 2^-%d" k k)
        (R.sub R.one (R.pow R.half k))
        (Owa.owa_m_k w.Constructions.ow_instance w.Constructions.ow_q2 ~k))
    [ 1; 2; 3; 4 ];
  check bool_t "Q2 naive false" false
    (Naive.boolean w.Constructions.ow_instance w.Constructions.ow_q2)

let test_owa_semantics_membership () =
  (* Every member of [[D]]_owa^k contains some v(D). *)
  let schema = Schema.make [ ("U", 1) ] in
  let d = Instance.of_rows schema [ ("U", [ [ Value.null 1 ] ]) ] in
  let members = Owa.owa_semantics_k d ~k:2 in
  (* v(D) ∈ {U={1}, U={2}}; supersets over {1,2}: {1},{2},{1,2} *)
  check Alcotest.int "member count" 3 (List.length members);
  List.iter
    (fun e ->
      check bool_t "nonempty U" false
        (Relation.is_empty (Instance.relation e "U")))
    members

let test_owa_guard () =
  let schema = Schema.make [ ("R", 3) ] in
  let d = Instance.empty schema in
  let q = Query.boolean (F.Not (F.exists [ "x"; "y"; "z" ] (F.Atom ("R", [ F.var "x"; F.var "y"; F.var "z" ])))) in
  check bool_t "guard fires" true
    (match Owa.owa_m_k d q ~k:5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Propositions 3-4, Theorem 3: conditional measures                    *)
(* ------------------------------------------------------------------ *)

let test_section4_example () =
  let e = Constructions.section4_example () in
  check rat_t "µ(Q|Σ,D,(1,⊥)) = 1/3" (R.of_ints 1 3)
    (Conditional.mu_cond ~sigma:e.Constructions.s4_sigma e.Constructions.s4_instance
       e.Constructions.s4_query e.Constructions.s4_tuple_third);
  check rat_t "µ(Q|Σ,D,(2,⊥)) = 2/3" (R.of_ints 2 3)
    (Conditional.mu_cond ~sigma:e.Constructions.s4_sigma e.Constructions.s4_instance
       e.Constructions.s4_query e.Constructions.s4_tuple_two_thirds);
  (* µ^k stabilizes at the limit once k covers the constants *)
  let k = Instance.max_constant e.Constructions.s4_instance + 2 in
  check rat_t "µ^k already 1/3" (R.of_ints 1 3)
    (Conditional.mu_cond_k ~sigma:e.Constructions.s4_sigma e.Constructions.s4_instance
       e.Constructions.s4_query e.Constructions.s4_tuple_third ~k)

let test_rational_witness_sweep () =
  List.iter
    (fun (p, r) ->
      let w = Constructions.rational_witness ~p ~r in
      check rat_t
        (Printf.sprintf "µ(Q|Σ,D) = %d/%d" p r)
        w.Constructions.rw_expected
        (Conditional.mu_cond_boolean ~sigma:w.Constructions.rw_sigma
           w.Constructions.rw_instance w.Constructions.rw_query))
    [ (1, 1); (1, 2); (2, 3); (3, 7); (5, 5); (1, 6); (4, 9) ]

let test_naive_breaks () =
  let e = Constructions.naive_breaks () in
  check bool_t "Q naively true" true
    (Naive.boolean e.Constructions.nb_instance e.Constructions.nb_query);
  check bool_t "Σ→Q naively true" true
    (Naive.sentence e.Constructions.nb_instance
       (F.Implies
          ( e.Constructions.nb_sigma,
            e.Constructions.nb_query.Query.body )));
  check rat_t "but µ(Q|Σ,D) = 0" R.zero
    (Conditional.mu_cond_boolean ~sigma:e.Constructions.nb_sigma
       e.Constructions.nb_instance e.Constructions.nb_query)

let test_implication_degenerate () =
  (* Proposition 3: µ(Σ → Q) is 1 when µ(Σ)=0, else equals µ(Q). *)
  let d =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.null 1; Value.null 2 ] ]) ]
  in
  (* Σ with µ(Σ)=0: the two nulls are equal. *)
  let sigma0 = Parser.formula_exn "exists x. R(x, x)" in
  (* Σ with µ(Σ)=1: the two nulls differ. *)
  let sigma1 = Parser.formula_exn "exists x. exists y. R(x, y) & x != y" in
  let q = Parser.query_exn "exists x. exists y. S(x, y)" in
  (* µ(Q,D) = 0 since S is empty *)
  check rat_t "µ(Σ0→Q)=1" R.one (Conditional.mu_implication ~sigma:sigma0 d q Tuple.empty);
  check rat_t "µ(Σ1→Q)=µ(Q)=0" R.zero
    (Conditional.mu_implication ~sigma:sigma1 d q Tuple.empty);
  let q_true = Parser.query_exn "exists x. exists y. R(x, y)" in
  check rat_t "µ(Σ1→Qtrue)=1" R.one
    (Conditional.mu_implication ~sigma:sigma1 d q_true Tuple.empty)

let prop_implication_law =
  QCheck.Test.make ~name:"Prop 3: µ(Σ→Q) = 1 or µ(Q)" ~count:40
    rs_instance_gen (fun d ->
      let sigmas =
        [ Parser.formula_exn "exists x. exists y. R(x, y)";
          Parser.formula_exn "forall x. forall y. R(x, y) -> S(x, y)"
        ]
      in
      List.for_all
        (fun sigma ->
          List.for_all
            (fun q ->
              let impl = Conditional.mu_implication ~sigma d q Tuple.empty in
              let mu_sigma = Measure.mu_symbolic d (Query.boolean sigma) Tuple.empty in
              let mu_q = Measure.mu_symbolic d q Tuple.empty in
              if R.is_zero mu_sigma then R.is_one impl else R.equal impl mu_q)
            fo_queries)
        sigmas)

let prop_conditional_poly_matches_bruteforce =
  (* The report's polynomials evaluated at finite k must reproduce the
     brute-force µ^k(Q|Σ). *)
  QCheck.Test.make ~name:"conditional polynomials = brute force at k" ~count:30
    rs_instance_gen (fun d ->
      let sigma = Parser.formula_exn "forall x. forall y. R(x, y) -> S(x, y)" in
      List.for_all
        (fun q ->
          let report = Conditional.mu_cond_report ~sigma d q Tuple.empty in
          let sp = Support_poly.of_sentences d [ sigma ] in
          let kmin = List.fold_left max 1 sp.Support_poly.anchor_set in
          List.for_all
            (fun k ->
              let num = P.eval_int report.Conditional.numerator k in
              let den = P.eval_int report.Conditional.denominator k in
              let sym = if R.is_zero den then R.zero else R.div num den in
              R.equal sym (Conditional.mu_cond_k ~sigma d q Tuple.empty ~k))
            [ kmin; kmin + 2 ])
        [ List.nth fo_queries 0; List.nth fo_queries 2 ])

(* ------------------------------------------------------------------ *)
(* Theorem 4: almost-certainly-true constraints                         *)
(* ------------------------------------------------------------------ *)

let prop_acc_constraints_vanish =
  QCheck.Test.make
    ~name:"Thm 4: Σ naively true ⇒ µ(Q|Σ) = µ(Q)" ~count:50 rs_instance_gen
    (fun d ->
      let sigmas =
        [ Parser.formula_exn "exists x. exists y. R(x, y)";
          Parser.formula_exn "forall x. forall y. R(x, y) -> S(x, y)";
          Parser.formula_exn "exists x. exists y. R(x, y) & x != y"
        ]
      in
      List.for_all
        (fun sigma ->
          (not (Naive.sentence d sigma))
          || List.for_all
               (fun q ->
                 R.equal
                   (Conditional.mu_cond ~sigma d q Tuple.empty)
                   (Measure.mu_symbolic d q Tuple.empty))
               fo_queries)
        sigmas)

(* ------------------------------------------------------------------ *)
(* Theorem 5 / Corollary 4: FDs via the chase                           *)
(* ------------------------------------------------------------------ *)

let fd_r = { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 1 }

let prop_chase_equals_conditional =
  (* For FDs and null-free tuples, the chase shortcut computes exactly
     the conditional measure. *)
  let boolean_queries = fo_queries in
  QCheck.Test.make
    ~name:"Thm 5/Cor 4: µ(Q|Σ_FD,D) = µ(Q, chase_Σ(D))" ~count:50
    rs_instance_gen (fun d ->
      let sigma = Dependency.set_to_formula rs_schema [ Dependency.Fd fd_r ] in
      List.for_all
        (fun q ->
          let via_chase = Conditional.mu_cond_fds [ fd_r ] d q Tuple.empty in
          let direct = Conditional.mu_cond ~sigma d q Tuple.empty in
          R.equal via_chase direct)
        boolean_queries)

let prop_deps_direct_matches_compiled =
  (* The structural-predicate fast path computes the same conditional
     measure as the compiled-FO path, for FDs and INDs. *)
  QCheck.Test.make ~name:"mu_cond_deps_direct = mu_cond_deps" ~count:40
    rs_instance_gen (fun d ->
      let dep_sets =
        [ [ Dependency.Fd fd_r ];
          [ Dependency.ind "R" [ 0 ] "S" [ 0 ] ];
          [ Dependency.Fd fd_r; Dependency.ind "R" [ 1 ] "S" [ 1 ] ]
        ]
      in
      List.for_all
        (fun deps ->
          List.for_all
            (fun q ->
              R.equal
                (Conditional.mu_cond_deps rs_schema deps d q Tuple.empty)
                (Conditional.mu_cond_deps_direct deps d q Tuple.empty))
            [ List.hd fo_queries; List.nth fo_queries 2 ])
        dep_sets)

let test_chase_shortcut_failure_convention () =
  (* If the chase fails, Σ is unsatisfiable and both sides are 0. *)
  let d =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.named "k"; Value.named "v1" ]; [ Value.named "k"; Value.named "v2" ] ]) ]
  in
  let q = Parser.query_exn "exists x. exists y. R(x, y)" in
  let sigma = Dependency.set_to_formula rs_schema [ Dependency.Fd fd_r ] in
  check rat_t "chase side" R.zero (Conditional.mu_cond_fds [ fd_r ] d q Tuple.empty);
  check rat_t "direct side" R.zero (Conditional.mu_cond ~sigma d q Tuple.empty)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Edge cases and conventions                                           *)
(* ------------------------------------------------------------------ *)

let test_unsatisfiable_sigma_convention () =
  (* Σ unsatisfiable in D: µ(Q|Σ,D) = 0 by convention (the paper adopts
     exactly this convention in §4.2). *)
  let d =
    Instance.of_rows rs_schema [ ("R", [ [ Value.null 1; Value.null 2 ] ]) ]
  in
  let sigma = Parser.formula_exn "(exists x. R(x, x)) & !(exists x. R(x, x))" in
  let q = Parser.query_exn "exists x. exists y. R(x, y)" in
  check rat_t "convention 0" R.zero
    (Conditional.mu_cond ~sigma d q Tuple.empty);
  (* and the implication measure is 1 (vacuous) *)
  check rat_t "implication 1" R.one
    (Conditional.mu_implication ~sigma d q Tuple.empty)

let test_semantics_size () =
  (* [[D]]^k for R = {(1,⊥),(1,⊥')}: unordered pairs of values. *)
  let d =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.named "one"; Value.null 1 ]; [ Value.named "one"; Value.null 2 ] ]) ]
  in
  List.iter
    (fun k ->
      check Alcotest.int
        (Printf.sprintf "semantics size at %d" k)
        (k * (k + 1) / 2)
        (Alt_measure.semantics_size d ~k))
    [ 1; 2; 3; 5 ]

let test_construction_validation () =
  check bool_t "p = 0 rejected" true
    (match Constructions.rational_witness ~p:0 ~r:3 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check bool_t "p > r rejected" true
    (match Constructions.rational_witness ~p:4 ~r:3 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* the generated witnesses satisfy their own constraints naively? No:
     the inclusion constraint is genuinely at stake — but the sigma must
     be satisfiable, i.e. have nonzero support. *)
  let w = Constructions.rational_witness ~p:2 ~r:4 in
  check bool_t "sigma satisfiable" true
    (Incomplete.Certain.is_possible_sentence w.Constructions.rw_instance
       w.Constructions.rw_sigma)

let test_measure_arity_guards () =
  let d = Instance.empty rs_schema in
  let q = Parser.query_exn "Q(x) := exists y. R(x, y)" in
  check bool_t "mu_boolean guards" true
    (match Measure.mu_boolean d q with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check bool_t "m_k_boolean guards" true
    (match Alt_measure.m_k_boolean d q ~k:2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let intro_like () =
  Instance.of_rows rs_schema
    [ ("R", [ [ Value.named "ca"; Value.null 1 ]; [ Value.named "cb"; Value.null 2 ] ]);
      ("S", [ [ Value.named "ca"; Value.null 2 ] ])
    ]

let test_mu_k_exact_matches_series () =
  let d = intro_like () in
  let q = Parser.query_exn "Q() := exists x. exists y. R(x, y) & !S(x, y)" in
  let sp = Support_poly.of_sentences d [ Query.instantiate q Tuple.empty ] in
  let kmin = List.fold_left max 1 sp.Support_poly.anchor_set in
  List.iter
    (fun k ->
      check rat_t
        (Printf.sprintf "exact µ^k at %d" k)
        (Support.mu_k_boolean d q ~k)
        (Support_poly.mu_k_exact sp ~sentence:0 ~k))
    [ kmin; kmin + 1; kmin + 3 ]

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_support_poly_matches_bruteforce; prop_zero_one_law;
      prop_zero_one_law_tuples; prop_alt_measure_same_verdict;
      prop_implication_law; prop_conditional_poly_matches_bruteforce;
      prop_acc_constraints_vanish; prop_chase_equals_conditional;
      prop_deps_direct_matches_compiled ]

let () =
  Alcotest.run "zeroone"
    [ ( "support-poly",
        [ Alcotest.test_case "closed forms" `Quick test_support_poly_closed_form ] );
      ( "theorem-1",
        [ Alcotest.test_case "certain answers have µ=1" `Quick
            test_certain_implies_mu_one ] );
      ( "theorem-2",
        [ Alcotest.test_case "closed forms µ^k vs m^k" `Quick
            test_alt_measure_closed_forms ] );
      ( "prop-2-owa",
        [ Alcotest.test_case "witness series" `Quick test_owa_witness;
          Alcotest.test_case "semantics membership" `Quick
            test_owa_semantics_membership;
          Alcotest.test_case "blow-up guard" `Quick test_owa_guard
        ] );
      ( "conditional",
        [ Alcotest.test_case "§4 example: 1/3 and 2/3" `Quick test_section4_example;
          Alcotest.test_case "Prop 4: rational sweep" `Quick
            test_rational_witness_sweep;
          Alcotest.test_case "§4.3: naive breaks" `Quick test_naive_breaks;
          Alcotest.test_case "Prop 3: implication degenerates" `Quick
            test_implication_degenerate;
          Alcotest.test_case "chase failure convention" `Quick
            test_chase_shortcut_failure_convention
        ] );
      ( "edge-cases",
        [ Alcotest.test_case "unsatisfiable Σ convention" `Quick
            test_unsatisfiable_sigma_convention;
          Alcotest.test_case "semantics size" `Quick test_semantics_size;
          Alcotest.test_case "construction validation" `Quick
            test_construction_validation;
          Alcotest.test_case "arity guards" `Quick test_measure_arity_guards;
          Alcotest.test_case "exact µ^k from polynomials" `Quick
            test_mu_k_exact_matches_series
        ] );
      ("properties", qcheck_cases)
    ]
