(* The statistical CI gate for the (ε,δ)-approximate measure engine
   (lib/approx_measure), run in CI by scripts/check-approx.sh:

     dune exec bench/main.exe -- --approx-gate

   Four checks, every one FATAL on violation (exit 1):

     1. accuracy     — 200 seeded trials of the estimator against the
                       exact µ^k on the intro example; at least
                       (1−δ)·200 must land within ε of the truth.
     2. determinism  — a fixed seed must reproduce every reported
                       figure (estimate, CI, hits, stratified pass)
                       bit-for-bit across jobs = 1/2/4.
     3. overflow     — a space ~10^3 times beyond the Bigint.Overflow
                       frontier (k = 3·10^7 over 3 nulls ≈ 2.7·10^22
                       valuations, vs 2^62 ≈ 4.6·10^18) must estimate
                       successfully where the exact path can only
                       refuse, and stay deterministic across jobs.
     4. conditional  — the (ε, δ/2)-sized conditional estimator's CI
                       must contain the exact µ^k(Q|Σ) on the
                       section-4 example for every probe seed.

   All four are deterministic: the estimator is seeded and
   reproducible across machines (splitmix64 over int64), so a seed set
   that passes once passes forever — the gate re-certifies the
   implementation, not the luck of the draw. *)

module AE = Approx_measure.Estimator
module R = Arith.Rat
module RInstance = Relational.Instance
module Tuple = Relational.Tuple
module Parser = Logic.Parser

let failures = ref 0

let fatal fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.eprintf "FATAL: %s\n%!" s)
    fmt

let ok fmt = Printf.ksprintf (fun s -> Printf.printf "  ok: %s\n%!" s) fmt

let rat s =
  match AE.rat_of_string s with Ok r -> r | Error e -> invalid_arg e

let rabs r = if R.compare r R.zero < 0 then R.sub R.zero r else r

(* --- fixture: the intro example — 3 nulls, exact µ^6 = 35/36 --- *)

let intro_db = lazy (Experiments.intro_db ())
let intro_q = lazy (Experiments.intro_query ())
let intro_t = lazy (Parser.tuple_exn "('c1', ~1)")

(* 1. Accuracy: the Hoeffding promise, verified frequentistly. With
   ε = 1/10, δ = 1/20 the bound guarantees > 95% of trials within ε;
   we demand exactly that on 200 fixed seeds. *)
let check_accuracy () =
  let d = Lazy.force intro_db
  and q = Lazy.force intro_q
  and t = Lazy.force intro_t in
  let k = 6 in
  let eps = rat "1/10" and delta = rat "1/20" in
  let exact = Incomplete.Support.mu_k d q t ~k in
  let cache = Incomplete.Support.create_cache () in
  let trials = 200 in
  let within = ref 0 in
  for seed = 1 to trials do
    let e = AE.mu_k ~cache d q t ~k ~eps ~delta ~seed in
    if R.compare (rabs (R.sub e.AE.estimate exact)) eps <= 0 then incr within
  done;
  (* need ≥ (1−δ)·trials = 190 *)
  let need = 190 in
  if !within >= need then
    ok "accuracy: %d/%d trials within ε = 1/10 of exact %s (need %d)" !within
      trials (R.to_string exact) need
  else
    fatal "accuracy: only %d/%d trials within ε = 1/10 of exact %s (need %d)"
      !within trials (R.to_string exact) need

(* 2. Determinism: digest every reported figure and compare across
   jobs. Stratification is on, so the second pass's allocations and
   per-stratum streams are covered too. *)
let digest (e : AE.t) =
  Printf.sprintf "%s|%s|%s|%d|%d|%d|%s" (R.to_string e.AE.estimate)
    (R.to_string e.AE.ci_lo) (R.to_string e.AE.ci_hi) e.AE.samples e.AE.hits
    e.AE.seed
    (match e.AE.stratified with
    | None -> "-"
    | Some s ->
        Printf.sprintf "%s|%s|%s|%d|%d"
          (R.to_string s.AE.s_estimate)
          (R.to_string s.AE.s_ci_lo)
          (R.to_string s.AE.s_ci_hi)
          s.AE.s_samples s.AE.s_strata)

let check_jobs_identity ~what run =
  List.iter
    (fun seed ->
      let digests = List.map (fun jobs -> digest (run ~jobs ~seed)) [ 1; 2; 4 ] in
      match digests with
      | d1 :: rest when List.for_all (String.equal d1) rest ->
          ok "%s: seed %d bit-identical across jobs 1/2/4" what seed
      | _ ->
          fatal "%s: seed %d differs across jobs: %s" what seed
            (String.concat " / " digests))
    [ 1; 7; 42 ]

let check_determinism () =
  let d = Lazy.force intro_db
  and q = Lazy.force intro_q
  and t = Lazy.force intro_t in
  let eps = rat "1/20" and delta = rat "1/100" in
  check_jobs_identity ~what:"determinism" (fun ~jobs ~seed ->
      AE.mu_k ~jobs ~stratify:true d q t ~k:6 ~eps ~delta ~seed)

(* 3. Overflow smoke: k = 3·10^7 over the intro example's 3 nulls is
   2.7·10^22 valuations — ~5.9·10^3 times past the 2^62 rank frontier,
   so [space_size] is [None] and the sampler must take the per-digit
   path. The exact engine raises Bigint.Overflow here by design. *)
let check_overflow_frontier () =
  let d = Lazy.force intro_db
  and q = Lazy.force intro_q
  and t = Lazy.force intro_t in
  let k = 30_000_000 in
  let nulls =
    List.sort_uniq Int.compare (RInstance.nulls d @ Tuple.nulls t)
  in
  (match Incomplete.Enumerate.space_size ~nulls ~k with
  | None -> ok "overflow: k = %d over %d nulls is past the rank frontier" k
              (List.length nulls)
  | Some n ->
      fatal "overflow: space fits a machine int (%d) — smoke is not testing \
             the per-digit path" n);
  let eps = rat "1/4" and delta = rat "1/4" in
  let run ~jobs ~seed = AE.mu_k ~jobs ~stratify:true d q t ~k ~eps ~delta ~seed in
  let e = run ~jobs:2 ~seed:42 in
  if R.compare e.AE.estimate R.zero >= 0 && R.compare e.AE.estimate R.one <= 0
     && R.compare e.AE.ci_lo e.AE.estimate <= 0
     && R.compare e.AE.estimate e.AE.ci_hi <= 0
  then
    ok "overflow: estimate %s in [0,1], CI [%s, %s] well-formed (%d samples)"
      (R.to_string e.AE.estimate) (R.to_string e.AE.ci_lo)
      (R.to_string e.AE.ci_hi) e.AE.samples
  else
    fatal "overflow: malformed result: estimate %s, CI [%s, %s]"
      (R.to_string e.AE.estimate) (R.to_string e.AE.ci_lo)
      (R.to_string e.AE.ci_hi);
  check_jobs_identity ~what:"overflow determinism" run

(* 4. Conditional: CI must contain the exact µ^k(Q|Σ) — 1/3 on the
   section-4 example's third tuple — for every probe seed. *)
let check_conditional () =
  let e = Zeroone.Constructions.section4_example () in
  let d = e.Zeroone.Constructions.s4_instance
  and q = e.Zeroone.Constructions.s4_query
  and t = e.Zeroone.Constructions.s4_tuple_third
  and sigma = e.Zeroone.Constructions.s4_sigma in
  (* k = 9 keeps the Σ-frequency (≈ 1/3) well above ε, so the ratio
     CI is informative — a [0,1] interval would contain 1/3 for free. *)
  let k = 9 in
  let exact = Zeroone.Conditional.mu_cond_k ~sigma d q t ~k in
  let eps = rat "1/10" and delta = rat "1/20" in
  let cache = Incomplete.Support.create_cache () in
  List.iter
    (fun seed ->
      let c = AE.mu_cond_k ~cache ~sigma d q t ~k ~eps ~delta ~seed in
      let vacuous =
        R.compare c.AE.c_ci_lo R.zero = 0 && R.compare c.AE.c_ci_hi R.one = 0
      in
      if vacuous then
        fatal "conditional: seed %d CI degenerated to [0, 1]" seed
      else if
        R.compare c.AE.c_ci_lo exact <= 0 && R.compare exact c.AE.c_ci_hi <= 0
      then
        ok "conditional: seed %d CI [%s, %s] contains exact %s (%d samples)"
          seed
          (R.to_string c.AE.c_ci_lo)
          (R.to_string c.AE.c_ci_hi)
          (R.to_string exact) c.AE.c_samples
      else
        fatal "conditional: seed %d CI [%s, %s] misses exact %s" seed
          (R.to_string c.AE.c_ci_lo)
          (R.to_string c.AE.c_ci_hi)
          (R.to_string exact))
    [ 1; 2; 3; 5; 8; 13; 21; 34; 42; 55 ]

let run () =
  print_endline "== approx-gate: (ε,δ) estimator vs exact measures ==";
  check_accuracy ();
  check_determinism ();
  check_overflow_frontier ();
  check_conditional ();
  if !failures > 0 then begin
    Printf.eprintf "approx-gate: %d check(s) FAILED\n%!" !failures;
    exit 1
  end;
  print_endline "approx-gate: all checks passed"
