(* Bench-regression diff: compare a freshly generated BENCH_*.json
   against the committed baseline and fail on a throughput regression.

     dune exec bench/main.exe -- --diff bench/BENCH_baseline.json \
         BENCH_smoke.json [--max-regression 0.25]

   Raw ns/op depends on the runner, so the comparison uses the
   machine-normalized [speedup_vs_baseline] column instead: every
   kernel's first row is the naive reference engine (always 1.0), and
   a kernel row whose speedup drops to less than (1 − tolerance) of
   the committed figure means the compiled/parallel engine lost ground
   relative to the naive engine on the same machine — a real
   regression, not runner noise. Rows are keyed (kernel, engine, jobs,
   cache); a key present in the baseline but missing from the fresh
   file fails too (a silently dropped configuration is not a pass).

   The parallel rows are diffed the same way: every jobs>1 row also
   contributes its [speedup_vs_jobs1] column (keyed with a vs_jobs1
   suffix), so losing parallel scaling relative to the committed
   baseline fails even when the single-threaded engine held its
   speedup over naive.

   Only schema_version 4 files are accepted — on a schema bump this
   check fails loudly until the baseline is regenerated. *)

(* --- a minimal JSON reader: just enough for the bench schema ---
   (the repo-wide policy of strict, dependency-free parsers; see
   Server.Wire and Obs.Trace's validator for the same spirit). *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> malformed "expected %c at byte %d, found %c" c !pos c'
    | None -> malformed "expected %c at byte %d, found end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else malformed "unrecognized token at byte %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> malformed "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              (* bench files never escape beyond ASCII; keep the code
                 point's hex form rather than decode UTF-16 *)
              if !pos + 4 >= n then malformed "truncated \\u escape";
              Buffer.add_string buf (String.sub s (!pos + 1) 4);
              pos := !pos + 5;
              go ()
          | _ -> malformed "bad escape at byte %d" !pos)
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> malformed "bad number %S at byte %d" tok start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> malformed "expected , or } at byte %d" !pos
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> malformed "expected , or ] at byte %d" !pos
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> malformed "unexpected %c at byte %d" c !pos
    | None -> malformed "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then malformed "trailing bytes at %d" !pos;
  v

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  try parse_json s
  with Malformed m -> failwith (Printf.sprintf "%s: malformed JSON: %s" path m)

(* --- schema access --- *)

let field obj name =
  match obj with
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let need path obj name =
  match field obj name with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: missing field %S" path name)

let num path = function
  | Num f -> f
  | _ -> failwith (Printf.sprintf "%s: expected a number" path)

let str path = function
  | Str s -> s
  | _ -> failwith (Printf.sprintf "%s: expected a string" path)

type bench_row = { key : string; speedup : float }

(* Flatten a BENCH_*.json into keyed speedup rows, enforcing schema 4. *)
let rows_of path json =
  (match need path json "schema_version" with
  | Num 4.0 -> ()
  | v ->
      failwith
        (Printf.sprintf "%s: schema_version %s, this differ understands 4 — \
                         regenerate the baseline"
           path
           (match v with Num f -> string_of_float f | _ -> "?")));
  let kernels =
    match need path json "kernels" with
    | Arr ks -> ks
    | _ -> failwith (Printf.sprintf "%s: kernels is not an array" path)
  in
  List.concat_map
    (fun kernel ->
      let kname = str path (need path kernel "name") in
      let results =
        match need path kernel "results" with
        | Arr rs -> rs
        | _ -> failwith (Printf.sprintf "%s: results is not an array" path)
      in
      List.concat_map
        (fun row ->
          let engine = str path (need path row "engine") in
          let jobs = int_of_float (num path (need path row "jobs")) in
          let cache =
            match need path row "cache" with
            | Bool b -> b
            | _ -> failwith (Printf.sprintf "%s: cache is not a bool" path)
          in
          let key = Printf.sprintf "%s engine=%s jobs=%d cache=%b" kname engine jobs cache in
          let speedup = num path (need path row "speedup_vs_baseline") in
          let base = { key; speedup } in
          if jobs <= 1 then [ base ]
          else
            [ base;
              { key = key ^ " vs_jobs1";
                speedup = num path (need path row "speedup_vs_jobs1")
              }
            ])
        results)
    kernels

let run ~baseline ~fresh ~tolerance =
  let base_rows = rows_of baseline (load baseline) in
  let fresh_rows = rows_of fresh (load fresh) in
  Printf.printf
    "== bench-regression: %s vs baseline %s (tolerance %.0f%%) ==\n" fresh
    baseline (tolerance *. 100.);
  let failures = ref 0 in
  List.iter
    (fun b ->
      match List.find_opt (fun f -> f.key = b.key) fresh_rows with
      | None ->
          incr failures;
          Printf.eprintf "FATAL: row missing from %s: %s\n" fresh b.key
      | Some f ->
          let floor = b.speedup *. (1. -. tolerance) in
          if f.speedup < floor then begin
            incr failures;
            Printf.eprintf
              "FATAL: %s: speedup %.3fx < %.3fx (baseline %.3fx − %.0f%%)\n"
              b.key f.speedup floor b.speedup (tolerance *. 100.)
          end
          else
            Printf.printf "  ok: %-60s %.3fx (baseline %.3fx)\n" b.key
              f.speedup b.speedup)
    base_rows;
  if !failures > 0 then begin
    Printf.eprintf "bench-regression: %d row(s) regressed or went missing\n%!"
      !failures;
    exit 1
  end;
  Printf.printf "bench-regression: %d rows within tolerance\n%!"
    (List.length base_rows)
