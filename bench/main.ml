(* Benchmark harness: regenerates every experiment E1-E20 (the paper's
   theorems, propositions and worked examples — see EXPERIMENTS.md),
   runs bechamel micro-benchmarks over the computational kernels, and
   benchmarks the parallel measure engine against its sequential
   fallback, recording the trajectory in BENCH_parallel.json.

   Run with:  dune exec bench/main.exe
   Only experiments:       dune exec bench/main.exe -- --experiments
   Only timings:           dune exec bench/main.exe -- --timings
   Parallel engine + JSON: dune exec bench/main.exe -- --parallel [--jobs N] [--smoke]
   Query service + JSON:   dune exec bench/main.exe -- --serve [--smoke]
                           [--socket PATH to drive an external server]
   Update vs rebuild:      dune exec bench/main.exe -- --update [--smoke]
   Approx CI gate:         dune exec bench/main.exe -- --approx-gate
   Regression diff:        dune exec bench/main.exe -- --diff BASE FRESH
                           [--max-regression 0.25] *)

module RInstance = Relational.Instance
module Relation = Relational.Relation
module Value = Relational.Value
module Tuple = Relational.Tuple
module Parser = Logic.Parser
module Query = Logic.Query
module Dependency = Constraints.Dependency

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmark kernels: one per experiment family                   *)
(* ------------------------------------------------------------------ *)

let intro_db = lazy (Experiments.intro_db ())
let intro_q = lazy (Experiments.intro_query ())

let kernel_naive () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore (Incomplete.Naive.answers d q)

let kernel_mu_symbolic () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore (Zeroone.Measure.mu_symbolic d q (Parser.tuple_exn "('c1', ~1)"))

let kernel_mu_k_bruteforce () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore (Incomplete.Support.mu_k d q (Parser.tuple_exn "('c1', ~1)") ~k:6)

let kernel_certain () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore (Incomplete.Certain.certain_answers d q)

let section4 = lazy (Zeroone.Constructions.section4_example ())

let kernel_conditional () =
  let e = Lazy.force section4 in
  ignore
    (Zeroone.Conditional.mu_cond ~sigma:e.Zeroone.Constructions.s4_sigma
       e.Zeroone.Constructions.s4_instance e.Zeroone.Constructions.s4_query
       e.Zeroone.Constructions.s4_tuple_third)

let chase_input =
  lazy
    (RInstance.of_rows Experiments.rs_schema
       [ ("R",
          List.concat
            (List.init 4 (fun i ->
                 [ [ Value.named ("key" ^ string_of_int i); Value.null (2 * i) ];
                   [ Value.named ("key" ^ string_of_int i); Value.null ((2 * i) + 1) ]
                 ])))
       ])

let kernel_chase () =
  let fd = { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 1 } in
  ignore (Constraints.Chase.chase [ fd ] (Lazy.force chase_input))

let sat_input = lazy (Experiments.orders_instance ~rows:64 ~nulls:3)

let kernel_sat () =
  let cs =
    [ Dependency.key "Orders" [ 0 ]; Dependency.key "Customers" [ 0 ];
      Dependency.foreign_key "Orders" [ 1 ] "Customers" [ 0 ]
    ]
  in
  ignore
    (Constraints.Sat.unary_keys_fks Experiments.orders_schema cs
       (Lazy.force sat_input))

let kernel_sep_generic () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore
    (Compare.Sep.sep d q (Parser.tuple_exn "('c1', ~1)")
       (Parser.tuple_exn "('c2', ~2)"))

let ucq_ctx =
  lazy
    (let q = Parser.query_exn "Q(x) := exists y. R(x, y) & S(y, x)" in
     let u = Option.get (Logic.Ucq.of_query q) in
     let d =
       RInstance.of_rows Experiments.rs_schema
         [ ("R",
            List.init 3 (fun i ->
                [ Value.named ("a" ^ string_of_int i); Value.null i ]));
           ("S",
            List.init 3 (fun i ->
                [ Value.null i; Value.named ("a" ^ string_of_int i) ]))
         ]
     in
     (d, u))

let kernel_sep_ucq () =
  let d, u = Lazy.force ucq_ctx in
  ignore
    (Compare.Ucq_compare.sep d u
       (Tuple.of_list [ Value.named "a0" ])
       (Tuple.of_list [ Value.null 2 ]))

let kernel_best () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  ignore (Compare.Best.best d q)

let probdb_sentence =
  lazy
    (Parser.query_exn "Q() := exists x. exists y. R1(x, y) & !R2(x, y)").Query.body

let kernel_probdb () =
  let d = Lazy.force intro_db in
  let worlds = Probdb.Pworld.of_incomplete d ~k:5 in
  ignore (Probdb.Pworld.prob_sentence worlds (Lazy.force probdb_sentence))

let tests =
  Test.make_grouped ~name:"certainty" ~fmt:"%s/%s"
    [ Test.make ~name:"e2_naive_eval" (Staged.stage kernel_naive);
      Test.make ~name:"e2_mu_symbolic" (Staged.stage kernel_mu_symbolic);
      Test.make ~name:"e2_mu_k_bruteforce_k6" (Staged.stage kernel_mu_k_bruteforce);
      Test.make ~name:"e13_certain_answers" (Staged.stage kernel_certain);
      Test.make ~name:"e6_conditional_measure" (Staged.stage kernel_conditional);
      Test.make ~name:"e12_chase_8_nulls" (Staged.stage kernel_chase);
      Test.make ~name:"e10_sat_64_rows" (Staged.stage kernel_sat);
      Test.make ~name:"e14_sep_generic" (Staged.stage kernel_sep_generic);
      Test.make ~name:"e15_sep_ucq_thm8" (Staged.stage kernel_sep_ucq);
      Test.make ~name:"e13_best_answers" (Staged.stage kernel_best);
      Test.make ~name:"e20_probdb_mu_k5" (Staged.stage kernel_probdb)
    ]

let run_timings () =
  print_endline "\n== bechamel micro-benchmarks (ns/run, OLS estimate) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%12.1f" t
        | Some [] | None -> "     (n/a)"
      in
      Printf.printf "  %-40s %s ns/run\n" name estimate)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* Parallel measure engine: speedup + cache benchmarks, JSON output    *)
(* ------------------------------------------------------------------ *)

(* Each variant runs one counting workload and returns a printable
   digest of its result, so the harness can assert that every (engine,
   jobs, cache) configuration produced exactly the same answer. The
   first variant of every kernel is the uncompiled naive reference —
   the seed's engine — so [identical] certifies the compiled kernel
   against the original semantics and [speedup_vs_baseline] reads as
   "times faster than the naive engine". *)
type variant = {
  engine : string;  (* "naive" or "kernel" *)
  jobs : int;
  cached : bool;
  run : unit -> string;
}

type row = {
  v : variant;
  ns_per_op : float;
  speedup : float;
  speedup_vs_jobs1 : float;
      (* ns/op of the same engine+cache at jobs=1 over this row's —
         the parallel-scaling column the check-parallel gate reads.
         1.0 when the variant has no jobs=1 counterpart. *)
  metrics : (string * int) list;  (* counter snapshot of the capture run *)
}

type pkernel_result = {
  name : string;
  params : string;
  identical : bool;
  rows : row list;
}

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let best_of ~reps f =
  let r, t0 = wall f in
  let best = ref t0 in
  for _ = 2 to reps do
    let _, t = wall f in
    if t < !best then best := t
  done;
  (r, !best)

(* One extra, untimed run with the counters switched on: the timed reps
   above run with observability off (so the ns/op figures stay
   unperturbed), while the row still carries its variant's counter
   profile. The capture run's digest joins the identity check — a
   variant must produce the same answer observed and unobserved. *)
let capture_metrics run =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let digest = run () in
  Obs.Metrics.disable ();
  let snap = Obs.Metrics.snapshot () in
  (digest, snap.Obs.Metrics.counters)

let measure_kernel ~reps ~name ~params variants =
  let timed =
    List.map
      (fun v ->
        let digest, secs = best_of ~reps v.run in
        (v, digest, secs *. 1e9))
      variants
  in
  let baseline_ns =
    match timed with (_, _, ns) :: _ -> ns | [] -> invalid_arg "no variants"
  in
  let captures = List.map (fun (v, _, _) -> capture_metrics v.run) timed in
  let digests =
    List.map (fun (_, d, _) -> d) timed @ List.map fst captures
  in
  let identical =
    List.for_all (fun d -> d = List.hd digests) digests
  in
  let jobs1_ns v =
    List.find_map
      (fun (v', _, ns) ->
        if v'.engine = v.engine && v'.cached = v.cached && v'.jobs = 1 then
          Some ns
        else None)
      timed
  in
  let rows =
    List.map2
      (fun (v, _, ns) (_, metrics) ->
        let speedup_vs_jobs1 =
          match jobs1_ns v with Some ns1 -> ns1 /. ns | None -> 1.0
        in
        { v; ns_per_op = ns; speedup = baseline_ns /. ns; speedup_vs_jobs1;
          metrics })
      timed captures
  in
  { name; params; identical; rows }

let jobs_variants ~jobs_list run =
  List.map
    (fun jobs -> { engine = "kernel"; jobs; cached = false; run = run ~jobs })
    jobs_list

let intro_tuple = lazy (Parser.tuple_exn "('c1', ~1)")

(* --- naive references: the seed's engine, reimplemented on
   sentence_in_support_naive so the compiled kernel is certified
   against the original complete-then-interpret semantics --- *)

let naive_mu_k d q tuple ~k =
  let sentence = Query.instantiate q tuple in
  let nulls =
    List.sort_uniq Int.compare (RInstance.nulls d @ Tuple.nulls tuple)
  in
  let count, total =
    Incomplete.Enumerate.fold_valuations ~nulls ~k
      (fun (c, t) v ->
        ( (if Incomplete.Support.sentence_in_support_naive d sentence v then
             c + 1
           else c),
          t + 1 ))
      (0, 0)
  in
  if total = 0 then Arith.Rat.zero else Arith.Rat.of_ints count total

let naive_mu_cond_k ~sigma d q tuple ~k =
  let answer = Query.instantiate q tuple in
  let nulls =
    List.sort_uniq Int.compare
      (RInstance.nulls d @ Tuple.nulls tuple @ Logic.Formula.nulls sigma)
  in
  let num, den =
    Incomplete.Enumerate.fold_valuations ~nulls ~k
      (fun (num, den) v ->
        if Incomplete.Support.sentence_in_support_naive d sigma v then
          ( (if Incomplete.Support.sentence_in_support_naive d answer v then
               num + 1
             else num),
            den + 1 )
        else (num, den))
      (0, 0)
  in
  if den = 0 then Arith.Rat.zero else Arith.Rat.of_ints num den

let naive_certain_answers d q =
  let m = Query.arity q in
  let cands = List.map Tuple.of_list (Arith.Combinat.tuples (RInstance.adom d) m) in
  let certain tuple =
    let sentence = Query.instantiate q tuple in
    let anchor_set = Incomplete.Support.anchor_set_sentences d [ sentence ] in
    let nulls =
      List.sort_uniq Int.compare (RInstance.nulls d @ Tuple.nulls tuple)
    in
    List.for_all
      (fun c ->
        Incomplete.Support.sentence_in_support_naive d sentence
          (Incomplete.Classes.representative ~anchor_set c))
      (Incomplete.Classes.enumerate ~anchor_set ~nulls)
  in
  List.fold_left
    (fun rel t -> if certain t then Relation.add t rel else rel)
    (Relation.empty m) cands

(* --- workloads; sizes shrink under --smoke so CI stays fast --- *)

type workload = {
  mu_k_k : int;
  cond_k : int;
  series_ks : int list;
  decomp_k : int;
  reps : int;
}

let full_workload =
  { mu_k_k = 32; cond_k = 20000; series_ks = List.init 11 (fun i -> i + 4);
    decomp_k = 12; reps = 3 }

let smoke_workload =
  { mu_k_k = 16; cond_k = 2000; series_ks = List.init 5 (fun i -> i + 4);
    decomp_k = 8; reps = 1 }

let digest_rel rel =
  String.concat ";" (List.map Tuple.to_string (Relation.to_list rel))

let digest_series series =
  String.concat ";"
    (List.map
       (fun (k, v) -> Printf.sprintf "%d=%s" k (Arith.Rat.to_string v))
       series)

let pk_mu_k_naive ~w () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  Arith.Rat.to_string (naive_mu_k d q (Lazy.force intro_tuple) ~k:w.mu_k_k)

let pk_mu_k ~w ~jobs () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  Arith.Rat.to_string
    (Incomplete.Support.mu_k ~jobs d q (Lazy.force intro_tuple) ~k:w.mu_k_k)

let pk_mu_cond_k_naive ~w () =
  let e = Lazy.force section4 in
  Arith.Rat.to_string
    (naive_mu_cond_k ~sigma:e.Zeroone.Constructions.s4_sigma
       e.Zeroone.Constructions.s4_instance e.Zeroone.Constructions.s4_query
       e.Zeroone.Constructions.s4_tuple_third ~k:w.cond_k)

let pk_mu_cond_k ~w ~jobs () =
  let e = Lazy.force section4 in
  Arith.Rat.to_string
    (Zeroone.Conditional.mu_cond_k ~jobs
       ~sigma:e.Zeroone.Constructions.s4_sigma e.Zeroone.Constructions.s4_instance
       e.Zeroone.Constructions.s4_query e.Zeroone.Constructions.s4_tuple_third
       ~k:w.cond_k)

let pk_certain_naive () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  digest_rel (naive_certain_answers d q)

let pk_certain ~jobs () =
  let d = Lazy.force intro_db and q = Lazy.force intro_q in
  digest_rel (Incomplete.Certain.certain_answers ~jobs d q)

(* A universally quantified Boolean query: each verdict costs a full
   |dom|^2 evaluation sweep (no existential short-circuit), which is
   what makes memoizing verdicts worthwhile. The µ^k spaces are nested
   (V^4 ⊆ V^6 ⊆ …), so with a shared cache every verdict of a smaller
   k is a hit at the larger ones. *)
let series_query =
  lazy
    (Parser.query_exn
       "Q() := forall x. forall y. (R2(x, y) -> (R1(x, y) | R1(y, x)))")

let pk_series_naive ~w () =
  let d = Lazy.force intro_db and q = Lazy.force series_query in
  digest_series
    (List.map (fun k -> (k, naive_mu_k d q Tuple.empty ~k)) w.series_ks)

let pk_series ~w ~cached () =
  let d = Lazy.force intro_db and q = Lazy.force series_query in
  let cache = if cached then Some (Incomplete.Support.create_cache ()) else None in
  digest_series
    (Incomplete.Support.mu_k_series ~jobs:1 ?cache d q Tuple.empty
       ~ks:w.series_ks)

(* --- decomposable workload: two independent 3-null blocks. The
   support sentence splits into an R-component and an S-component with
   disjoint nulls, so µ^k factorizes (ANL401) and the monolithic k^6
   sweep collapses to 2·k^3. The monolithic compiled kernel is the
   baseline variant; the identity gate then certifies the factorized
   engine bit-for-bit against it, and speedup_vs_baseline reads as
   "times faster than the monolithic exact engine". --- *)
let decomp_ctx =
  lazy
    (let sch = Parser.schema_exn "R1(a, b); R2(a, b); S1(a, b); S2(a, b)" in
     let d =
       Parser.instance_exn sch
         "R1 = { ('c1', ~1), ('c2', ~2), ('c3', ~3) }; R2 = { ('c1', ~2), \
          ('c2', ~3) }; S1 = { ('d1', ~4), ('d2', ~5), ('d3', ~6) }; S2 = { \
          ('d1', ~5), ('d2', ~6) }"
     in
     let q =
       Parser.query_exn
         "Q() := R1('c1', 'c1') & !R2('c2', 'c2') & S1('d1', 'd1') & \
          !S2('d2', 'd2')"
     in
     let cert = Analysis.Decomp.analyze d (Query.instantiate q Tuple.empty) in
     let plan =
       match (cert.Analysis.Decomp.verdict, Analysis.Decomp.plan cert) with
       | Analysis.Decomp.Decomposable, Some p -> p
       | _ -> failwith "bench: decomposable workload did not decompose"
     in
     (d, q, plan))

let pk_mu_k_monolithic ~w ~jobs () =
  let d, q, _ = Lazy.force decomp_ctx in
  Arith.Rat.to_string
    (Incomplete.Support.mu_k ~jobs d q Tuple.empty ~k:w.decomp_k)

let pk_mu_k_decomposed ~w ~jobs () =
  let d, _, plan = Lazy.force decomp_ctx in
  Arith.Rat.to_string
    (Incomplete.Support.mu_k_plan ~jobs d plan ~k:w.decomp_k)

let json_escape = Obs.Json.escape

let emit_json ~smoke path results =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema_version\": 4,\n";
  out "  \"generated_by\": \"bench/main.exe --parallel%s\",\n"
    (if smoke then " --smoke" else "");
  out "  \"recommended_domain_count\": %d,\n" (Exec.Pool.default_jobs ());
  out "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      out "    {\n";
      out "      \"name\": \"%s\",\n" (json_escape r.name);
      out "      \"params\": \"%s\",\n" (json_escape r.params);
      out "      \"identical\": %b,\n" r.identical;
      out "      \"results\": [\n";
      List.iteri
        (fun j row ->
          let metrics =
            String.concat ", "
              (List.map
                 (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v)
                 row.metrics)
          in
          out
            "        {\"engine\": \"%s\", \"jobs\": %d, \"cache\": %b, \
             \"ns_per_op\": %.1f, \"speedup_vs_baseline\": %.3f, \
             \"speedup_vs_jobs1\": %.3f, \"metrics\": {%s}}%s\n"
            (json_escape row.v.engine) row.v.jobs row.v.cached row.ns_per_op
            row.speedup row.speedup_vs_jobs1 metrics
            (if j = List.length r.rows - 1 then "" else ","))
        r.rows;
      out "      ]\n";
      out "    }%s\n" (if i = List.length results - 1 then "" else ","))
    results;
  out "  ]\n";
  out "}\n";
  close_out oc

let run_parallel ~smoke ~max_jobs ~out ?reps ?trace () =
  let w = if smoke then smoke_workload else full_workload in
  (* --reps N: override best-of-N — the bench-regression gate uses a
     higher N than the smoke default so one descheduled run doesn't
     read as a throughput regression. *)
  let w = match reps with None -> w | Some reps -> { w with reps } in
  (* --trace: every run (timed and capture) emits spans to the JSONL
     sink — use for the CI smoke gate, not for timing comparisons. *)
  Option.iter Obs.Trace.enable_file trace;
  let jobs_list =
    List.sort_uniq compare
      (List.filter (fun j -> j >= 1 && j <= max_jobs) [ 1; 2; 4; max_jobs ])
  in
  Printf.printf
    "\n== parallel measure engine (%s; jobs: %s; recommended domains: %d) ==\n%!"
    (if smoke then "smoke" else "full")
    (String.concat "," (List.map string_of_int jobs_list))
    (Exec.Pool.default_jobs ());
  let naive run = { engine = "naive"; jobs = 1; cached = false; run } in
  let measure = measure_kernel ~reps:w.reps in
  let results =
    [ measure ~name:"mu_k_bruteforce"
        ~params:
          (Printf.sprintf "intro example, k=%d, 3 nulls (%d valuations)"
             w.mu_k_k (w.mu_k_k * w.mu_k_k * w.mu_k_k))
        (naive (pk_mu_k_naive ~w) :: jobs_variants ~jobs_list (pk_mu_k ~w));
      measure ~name:"mu_k_decomposed"
        ~params:
          (Printf.sprintf
             "two 3-null blocks, k=%d: monolithic k^6 = %d vs factorized \
              2k^3 = %d valuations"
             w.decomp_k
             (int_of_float (float_of_int w.decomp_k ** 6.))
             (2 * w.decomp_k * w.decomp_k * w.decomp_k))
        ({ engine = "kernel"; jobs = 1; cached = false;
           run = pk_mu_k_monolithic ~w ~jobs:1
         }
        :: List.map
             (fun jobs ->
               { engine = "decomp"; jobs; cached = false;
                 run = pk_mu_k_decomposed ~w ~jobs
               })
             jobs_list);
      measure ~name:"mu_cond_k_bruteforce"
        ~params:
          (Printf.sprintf
             "section-4 example, k=%d, 1 null (numerator+denominator in one pass)"
             w.cond_k)
        (naive (pk_mu_cond_k_naive ~w)
        :: jobs_variants ~jobs_list (pk_mu_cond_k ~w));
      measure ~name:"certain_answers_sweep"
        ~params:"intro example, 25 candidate tuples over adom^2"
        (naive pk_certain_naive :: jobs_variants ~jobs_list pk_certain);
      measure ~name:"mu_k_series_eval_cache"
        ~params:
          (Printf.sprintf "intro example, ks=%d..%d, sequential, cache off vs on"
             (List.hd w.series_ks)
             (List.nth w.series_ks (List.length w.series_ks - 1)))
        [ naive (pk_series_naive ~w);
          { engine = "kernel"; jobs = 1; cached = false;
            run = pk_series ~w ~cached:false };
          { engine = "kernel"; jobs = 1; cached = true;
            run = pk_series ~w ~cached:true }
        ]
    ]
  in
  Option.iter (fun _ -> Obs.Trace.close ()) trace;
  List.iter
    (fun r ->
      Printf.printf "  %-24s %s\n" r.name
        (if r.identical then "[results identical]" else "[RESULTS DIFFER!]");
      List.iter
        (fun row ->
          Printf.printf
            "    %-6s jobs=%d cache=%-5b %12.1f ns/op   %6.2fx   \
             vs_jobs1=%.2fx   vals=%d\n"
            row.v.engine row.v.jobs row.v.cached row.ns_per_op row.speedup
            row.speedup_vs_jobs1
            (Option.value ~default:0
               (List.assoc_opt "valuations_evaluated" row.metrics)))
        r.rows)
    results;
  emit_json ~smoke out results;
  Printf.printf "wrote %s\n%!" out;
  if List.exists (fun r -> not r.identical) results then begin
    prerr_endline
      "FATAL: a kernel/parallel/cached run disagreed with the naive reference";
    exit 1
  end;
  (* The executable form of the observability acceptance criterion: a
     µ^k brute-force sweep must request exactly one verdict per point
     of V^k — k^3 for the 3-null intro example — in every engine, for
     every jobs/cache configuration. *)
  let expected_vals = w.mu_k_k * w.mu_k_k * w.mu_k_k in
  List.iter
    (fun r ->
      if r.name = "mu_k_bruteforce" then
        List.iter
          (fun row ->
            let vals =
              Option.value ~default:(-1)
                (List.assoc_opt "valuations_evaluated" row.metrics)
            in
            if vals <> expected_vals then begin
              Printf.eprintf
                "FATAL: %s (engine=%s jobs=%d) evaluated %d valuations, \
                 expected k^3 = %d\n"
                r.name row.v.engine row.v.jobs vals expected_vals;
              exit 1
            end)
          r.rows)
    results

let run_experiments () =
  print_endline "=====================================================";
  print_endline " Certain Answers Meet Zero-One Laws  --  experiments";
  print_endline " (one block per theorem/proposition/example; see";
  print_endline "  EXPERIMENTS.md for the paper-vs-measured record)";
  print_endline "=====================================================";
  List.iter
    (fun (name, f) ->
      let t0 = Sys.time () in
      f ();
      Printf.printf "[%s: %.2fs]\n%!" name (Sys.time () -. t0))
    Experiments.all

let () =
  let args = Array.to_list Sys.argv in
  let experiments = List.mem "--experiments" args in
  let timings = List.mem "--timings" args in
  let parallel = List.mem "--parallel" args in
  let serve = List.mem "--serve" args in
  let router = List.mem "--router" args in
  let update = List.mem "--update" args in
  let smoke = List.mem "--smoke" args in
  let rec flag_value key = function
    | k :: v :: _ when k = key -> Some v
    | _ :: rest -> flag_value key rest
    | [] -> None
  in
  let rec two_after key = function
    | k :: a :: b :: _ when k = key -> Some (a, b)
    | _ :: rest -> two_after key rest
    | [] -> None
  in
  if List.mem "--approx-gate" args then begin
    Approx_gate.run ();
    exit 0
  end;
  (match two_after "--diff" args with
  | Some (baseline, fresh) ->
      let tolerance =
        match flag_value "--max-regression" args with
        | None -> 0.25
        | Some v -> (
            match float_of_string_opt v with
            | Some t when t > 0. && t < 1. -> t
            | _ ->
                Printf.eprintf
                  "error: --max-regression expects a fraction in (0,1), got %S\n"
                  v;
                exit 2)
      in
      Bench_diff.run ~baseline ~fresh ~tolerance;
      exit 0
  | None ->
      if List.mem "--diff" args then begin
        Printf.eprintf "error: --diff expects two files: BASE FRESH\n";
        exit 2
      end);
  let max_jobs =
    match flag_value "--jobs" args with
    | None -> 4
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> n
        | _ ->
            Printf.eprintf "error: --jobs expects a positive integer, got %S\n"
              v;
            exit 2)
  in
  let out =
    match flag_value "--out" args with
    | Some p -> p
    | None ->
        if serve then "BENCH_serve.json"
        else if router then "BENCH_router.json"
        else if update then "BENCH_update.json"
        else if smoke then "BENCH_smoke.json"
        else "BENCH_parallel.json"
  in
  let trace = flag_value "--trace" args in
  let reps =
    match flag_value "--reps" args with
    | None -> None
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> Some n
        | _ ->
            Printf.eprintf "error: --reps expects a positive integer, got %S\n"
              v;
            exit 2)
  in
  if serve then
    (* --serve is its own mode: the service bench spawns threads and an
       in-process server, which would only perturb the timing modes. *)
    Serve_bench.run ~smoke ~out ?socket:(flag_value "--socket" args) ()
  else if router then
    Router_bench.run ~smoke ~out
      ?socket:(flag_value "--socket" args)
      ?ref_socket:(flag_value "--ref-socket" args)
      ()
  else if update then
    (* --update too: it wants a quiet process to time the mutation
       path against a from-scratch session rebuild. *)
    Update_bench.run ~smoke ~out ()
  else
    match (experiments, timings, parallel) with
    | true, false, false -> run_experiments ()
    | false, true, false -> run_timings ()
    | false, false, true -> run_parallel ~smoke ~max_jobs ~out ?reps ?trace ()
    | _, _, _ ->
        if experiments || not (timings || parallel) then run_experiments ();
        if timings || not (experiments || parallel) then run_timings ();
        if parallel || not (experiments || timings) then
          run_parallel ~smoke ~max_jobs ~out ?reps ?trace ()
