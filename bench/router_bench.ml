(* bench --router: load-generate against the sharded serving tier and
   gate on bit-identity with the single-process engine.

   The workload spreads 8 (schema, db) sessions over the ring —
   certain/measure/analyze per session — and every response must be
   byte-identical to the line Service.handle with jobs = 1 produces on
   a fresh sequential session store. The router proxies raw lines, so
   identity holds by construction; this bench is the gate that keeps
   it that way. The only normalization: [update] responses carry an
   [Instance] generation stamp drawn from a process-global counter,
   which cannot agree across processes, so update responses are
   compared with the generation field blanked.

   In-process mode (default) measures one shard vs a 4-shard ring
   behind a router, then runs the failover phase: apply updates
   through the router (replicas = 2), drain the primary of a hot
   session mid-load, and require every in-flight response to be either
   the correct bytes or a typed shard_unavailable — then restart the
   shard, wait for re-admission, and require byte-identical service to
   resume. NOTE: in-process shards share one OCaml domain (systhreads),
   so the in-process speedup figure is meaningless and not gated.

   External mode (--socket ROUTER --ref-socket SHARD) drives processes
   started by scripts/check-router.sh: phase timings against the ref
   shard and the router yield speedup_vs_1shard, gated by the script
   on multicore runners. *)

module W = Server.Wire
module Daemon = Server.Daemon
module Router = Shard.Router

type item = { line : string; expected : string; is_update : bool }

type phase = {
  label : string;
  requests : int;
  protocol_errors : int;
  mismatches : (string * string) list;
  wall_s : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
}

type failover = {
  fo_updates : int;
  fo_update_mismatches : int;
  fo_replicated_identical : bool;
  fo_load_responses : int;
  fo_identical : int;
  fo_unavailable : int;
  fo_wrong : int;
  fo_readmitted : bool;
  fo_recovered_identical : bool;
}

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let nsessions = 8
let schema = "R(a,b); S(a,b)"

let db i =
  Printf.sprintf "R = { ('c%d', ~1), ('d%d', 'v') }; S = { ('c%d', 'v') }" i i i

let req id op fields =
  W.obj
    ([ ("id", W.S id); ("op", W.S op) ]
    @ List.map (fun (k, v) -> (k, W.S v)) fields)

let query_lines i =
  let s = [ ("schema", schema); ("db", db i) ] in
  [ req (Printf.sprintf "s%dq1" i) "certain"
      (s @ [ ("query", "Q(x,y) := R(x,y) & !S(x,y)") ]);
    req (Printf.sprintf "s%dq2" i) "measure"
      (s
      @ [ ("query", "Q(x,y) := R(x,y)");
          ("tuple", Printf.sprintf "('c%d', ~1)" i); ("ks", "2,3")
        ]);
    req (Printf.sprintf "s%dq3" i) "analyze"
      (s @ [ ("query", "Q(x) := exists y. R(x,y) & !S(x,y)"); ("scheme", "sql") ])
  ]

let update_line i =
  req (Printf.sprintf "s%du" i) "update"
    [ ("schema", schema); ("db", db i); ("action", "insert");
      ("relation", "R"); ("tuple", Printf.sprintf "('e%d', 'v')" i)
    ]

let base_lines = List.concat (List.init nsessions query_lines)
let update_lines = List.init nsessions update_line

(* Blank the process-global generation stamp in update responses. *)
let norm resp =
  let pat = "\"generation\":" in
  let np = String.length pat and nh = String.length resp in
  let b = Buffer.create nh in
  let i = ref 0 in
  while !i < nh do
    if !i + np <= nh && String.sub resp !i np = pat then begin
      Buffer.add_string b pat;
      Buffer.add_char b '_';
      i := !i + np;
      while !i < nh && (match resp.[!i] with '0' .. '9' -> true | _ -> false)
      do
        incr i
      done
    end
    else begin
      Buffer.add_char b resp.[!i];
      incr i
    end
  done;
  Buffer.contents b

let matches item got =
  if item.is_update then String.equal (norm got) (norm item.expected)
  else String.equal got item.expected

(* The reference: one sequential pass through Service.handle in the
   exact phase order the bench drives — base queries on pristine
   sessions, then the updates, then the same queries post-update. *)
let build_reference () =
  let sessions = Server.Session.create ~max_sessions:64 () in
  let eval line =
    match W.parse_request line with
    | Error msg -> failwith ("bench workload line does not parse: " ^ msg)
    | Ok r ->
        let expected =
          match Server.Service.handle ~sessions ~jobs:1 r with
          | Ok payload -> W.ok_line ~id:r.W.id ~op:r.W.op payload
          | Error (err, msg) -> W.error_line ~id:r.W.id err msg
        in
        { line; expected; is_update = r.W.op = "update" }
  in
  let base = List.map eval base_lines in
  let updates = List.map eval update_lines in
  let updated = List.map eval base_lines in
  (base, updates, updated)

(* ------------------------------------------------------------------ *)
(* Load phases                                                         *)
(* ------------------------------------------------------------------ *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let run_phase ~label ~addr ~clients ~iters items =
  let lock = Mutex.create () in
  let latencies = ref [] in
  let errors = ref 0 in
  let mismatches = ref [] in
  let body () =
    Server.Client.with_conn addr @@ fun c ->
    Server.Client.set_timeout c 60.0;
    let lats = Array.make (iters * List.length items) 0 in
    let n = ref 0 in
    for _ = 1 to iters do
      List.iter
        (fun item ->
          let t0 = Obs.Clock.now_ns () in
          let resp = Server.Client.request c item.line in
          lats.(!n) <- Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0);
          incr n;
          match resp with
          | None -> Mutex.protect lock (fun () -> incr errors)
          | Some got ->
              if not (matches item got) then
                Mutex.protect lock (fun () ->
                    if List.length !mismatches < 3 then
                      mismatches := (item.expected, got) :: !mismatches))
        items
    done;
    Mutex.protect lock (fun () -> latencies := lats :: !latencies)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun _ -> Thread.create body ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let all = Array.concat !latencies in
  Array.sort compare all;
  { label;
    requests = Array.length all;
    protocol_errors = !errors;
    mismatches = List.rev !mismatches;
    wall_s;
    p50_ns = percentile all 0.50;
    p95_ns = percentile all 0.95;
    p99_ns = percentile all 0.99
  }

let req_s p =
  if p.wall_s > 0. then float_of_int p.requests /. p.wall_s else 0.

let print_phase p =
  Printf.printf
    "  %-10s %d requests in %.2fs (%.0f req/s)  p50=%.1fus p95=%.1fus \
     p99=%.1fus  errors=%d  %s\n%!"
    p.label p.requests p.wall_s (req_s p)
    (float_of_int p.p50_ns /. 1e3)
    (float_of_int p.p95_ns /. 1e3)
    (float_of_int p.p99_ns /. 1e3)
    p.protocol_errors
    (if p.mismatches = [] then "[responses identical]"
     else "[RESPONSES DIFFER!]");
  List.iter
    (fun (expected, got) ->
      Printf.printf "    expected: %s\n    got:      %s\n" expected got)
    p.mismatches

(* One sequential identity pass; returns (checked, mismatches). *)
let identity_pass ~addr items =
  Server.Client.with_conn addr @@ fun c ->
  Server.Client.set_timeout c 60.0;
  List.fold_left
    (fun (n, bad) item ->
      match Server.Client.request c item.line with
      | Some got when matches item got -> (n + 1, bad)
      | _ -> (n + 1, bad + 1))
    (0, 0) items

(* ------------------------------------------------------------------ *)
(* Failover (in-process mode)                                          *)
(* ------------------------------------------------------------------ *)

let shard_cfg ~sock =
  { (Daemon.default_config (Daemon.Unix_sock sock)) with
    service_threads = 2;
    max_sessions = 32
  }

let wait_member ~addr ~name ~state ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let want = name ^ "=" ^ state in
  let rec go () =
    if Unix.gettimeofday () > deadline then false
    else
      let seen =
        match
          Server.Client.with_conn addr (fun c ->
              Server.Client.request c (req "mb" "health" []))
        with
        | Some resp -> contains resp want
        | None | (exception Unix.Unix_error _) -> false
      in
      if seen then true
      else begin
        Thread.delay 0.05;
        go ()
      end
  in
  go ()

let run_failover ~router_addr ~router ~daemons ~updates ~updated =
  (* 1. Updates through the router: accepted, and (modulo the
     generation stamp) the same response the reference produced. *)
  let _, update_bad = identity_pass ~addr:router_addr updates in
  (* 2. Reads after updates round-robin over both replicas: one full
     identity pass proves the forwarded state is verdict-identical on
     every replica that serves. Two passes make sure the round-robin
     cursor visits both sides. *)
  let replicated_ok =
    let _, bad1 = identity_pass ~addr:router_addr updated in
    let _, bad2 = identity_pass ~addr:router_addr updated in
    bad1 = 0 && bad2 = 0
  in
  (* 3. Drain the primary of session 0 under load; every response must
     be the correct bytes or a typed shard_unavailable. *)
  let victim_name =
    match Router.primary_of router ~schema ~db:(db 0) with
    | Some n -> n
    | None -> failwith "router has no primary for session 0"
  in
  let victim =
    match List.find_opt (fun (name, _, _) -> name = victim_name) daemons with
    | Some d -> d
    | None -> failwith ("no in-process daemon named " ^ victim_name)
  in
  let stop = Atomic.make false in
  let lock = Mutex.create () in
  let identical = ref 0 and unavailable = ref 0 and wrong = ref 0 in
  let body () =
    Server.Client.with_conn router_addr @@ fun c ->
    Server.Client.set_timeout c 60.0;
    while not (Atomic.get stop) do
      List.iter
        (fun item ->
          if not (Atomic.get stop) then
            match Server.Client.request c item.line with
            | Some got when matches item got ->
                Mutex.protect lock (fun () -> incr identical)
            | Some got when contains got "\"error\":\"shard_unavailable\"" ->
                Mutex.protect lock (fun () -> incr unavailable)
            | Some _ | None -> Mutex.protect lock (fun () -> incr wrong))
        updated
    done
  in
  let threads = List.init 4 (fun _ -> Thread.create body ()) in
  Thread.delay 0.2;
  let _, victim_t, victim_cfg = victim in
  Daemon.drain victim_t;
  Daemon.wait victim_t;
  (* Let the prober eject it and the ring remap while load continues. *)
  let _ = wait_member ~addr:router_addr ~name:victim_name ~state:"down"
      ~timeout_s:10.0
  in
  Thread.delay 0.3;
  Atomic.set stop true;
  List.iter Thread.join threads;
  (* 4. Restart on the same address; the probe re-admits it under a
     fresh generation and replay restores its sessions on first
     touch. *)
  let revived = Daemon.start victim_cfg in
  let readmitted =
    wait_member ~addr:router_addr ~name:victim_name ~state:"up" ~timeout_s:10.0
  in
  let _, recover_bad = identity_pass ~addr:router_addr updated in
  let _, recover_bad2 = identity_pass ~addr:router_addr updated in
  let fo =
    { fo_updates = List.length updates;
      fo_update_mismatches = update_bad;
      fo_replicated_identical = replicated_ok;
      fo_load_responses = !identical + !unavailable + !wrong;
      fo_identical = !identical;
      fo_unavailable = !unavailable;
      fo_wrong = !wrong;
      fo_readmitted = readmitted;
      fo_recovered_identical = recover_bad = 0 && recover_bad2 = 0
    }
  in
  (fo, revived)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let emit_json ~smoke ~mode ~shards ~replicas path (one : phase) (rtr : phase)
    (fo : failover option) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  let phase_json name p comma =
    out "  \"%s\": {\n" name;
    out "    \"requests\": %d,\n" p.requests;
    out "    \"protocol_errors\": %d,\n" p.protocol_errors;
    out "    \"identical\": %b,\n" (p.mismatches = []);
    out "    \"wall_s\": %.3f,\n" p.wall_s;
    out "    \"requests_per_s\": %.1f,\n" (req_s p);
    out "    \"p50_ns\": %d,\n" p.p50_ns;
    out "    \"p95_ns\": %d,\n" p.p95_ns;
    out "    \"p99_ns\": %d\n" p.p99_ns;
    out "  }%s\n" (if comma then "," else "")
  in
  out "{\n";
  out "  \"schema_version\": 1,\n";
  out "  \"generated_by\": \"bench/main.exe --router%s\",\n"
    (if smoke then " --smoke" else "");
  out "  \"mode\": \"%s\",\n" mode;
  out "  \"shards\": %d,\n" shards;
  out "  \"replicas\": %d,\n" replicas;
  out "  \"recommended_domain_count\": %d,\n" (Exec.Pool.default_jobs ());
  phase_json "one_shard" one true;
  phase_json "router" rtr true;
  out "  \"speedup_vs_1shard\": %.2f%s\n"
    (if req_s one > 0. then req_s rtr /. req_s one else 0.)
    (if fo = None then "" else ",");
  (match fo with
  | None -> ()
  | Some f ->
      out "  \"failover\": {\n";
      out "    \"updates\": %d,\n" f.fo_updates;
      out "    \"update_mismatches\": %d,\n" f.fo_update_mismatches;
      out "    \"replicated_identical\": %b,\n" f.fo_replicated_identical;
      out "    \"load_responses\": %d,\n" f.fo_load_responses;
      out "    \"identical\": %d,\n" f.fo_identical;
      out "    \"shard_unavailable\": %d,\n" f.fo_unavailable;
      out "    \"wrong\": %d,\n" f.fo_wrong;
      out "    \"readmitted\": %b,\n" f.fo_readmitted;
      out "    \"recovered_identical\": %b\n" f.fo_recovered_identical;
      out "  }\n");
  out "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let tmp_sock tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "certainty-router-%s-%d.sock" tag (Unix.getpid ()))

let run ~smoke ~out ?socket ?ref_socket () =
  Obs.Metrics.enable ();
  let clients, iters = if smoke then (4, 6) else (8, 25) in
  let nshards = 4 and replicas = 2 in
  let base, updates, updated = build_reference () in
  Printf.printf
    "\n== router tier (%s; %d shards, %d replicas; %d clients x %d iterations \
     x %d ops) ==\n%!"
    (if socket = None then "in-process" else "external --socket")
    nshards replicas clients iters (List.length base);
  match (socket, ref_socket) with
  | Some router_sock, Some ref_sock ->
      (* External mode: both tiers already running; measure and check
         identity, leave failover to the orchestrating script. *)
      let one =
        run_phase ~label:"1 shard" ~addr:(Daemon.Unix_sock ref_sock) ~clients
          ~iters base
      in
      let rtr =
        run_phase ~label:"router" ~addr:(Daemon.Unix_sock router_sock) ~clients
          ~iters base
      in
      print_phase one;
      print_phase rtr;
      Printf.printf "  speedup vs 1 shard: %.2fx\n%!"
        (if req_s one > 0. then req_s rtr /. req_s one else 0.);
      emit_json ~smoke ~mode:"external" ~shards:nshards ~replicas out one rtr
        None;
      Printf.printf "wrote %s\n%!" out;
      if
        one.protocol_errors > 0 || one.mismatches <> []
        || rtr.protocol_errors > 0 || rtr.mismatches <> []
      then begin
        prerr_endline
          "FATAL: router bench failed (protocol error or response divergence)";
        exit 1
      end
  | Some _, None | None, Some _ ->
      prerr_endline "error: --router external mode needs both --socket ROUTER and --ref-socket SHARD";
      exit 2
  | None, None ->
      (* One-shard reference timing. *)
      let one_sock = tmp_sock "one" in
      let one_t = Daemon.start (shard_cfg ~sock:one_sock) in
      let one =
        run_phase ~label:"1 shard" ~addr:(Daemon.Unix_sock one_sock) ~clients
          ~iters base
      in
      Daemon.drain one_t;
      Daemon.wait one_t;
      (* The ring. *)
      let daemons =
        List.init nshards (fun i ->
            let sock = tmp_sock (string_of_int i) in
            let cfg = shard_cfg ~sock in
            (sock, Daemon.start cfg, cfg))
      in
      let router_sock = tmp_sock "front" in
      let router_addr = Daemon.Unix_sock router_sock in
      let rcfg =
        { (Router.default_config ~addr:router_addr
             ~shards:
               (List.map (fun (s, _, _) -> Daemon.Unix_sock s) daemons))
          with
          replicas;
          probe_interval_s = 0.1;
          fail_threshold = 2;
          shard_timeout_s = 30.0;
          drain_grace_s = 5.0
        }
      in
      let router = Router.start rcfg in
      let rtr = run_phase ~label:"router" ~addr:router_addr ~clients ~iters base in
      print_phase one;
      print_phase rtr;
      Printf.printf
        "  speedup vs 1 shard: %.2fx (in-process: shards share one domain — \
         informational only)\n%!"
        (if req_s one > 0. then req_s rtr /. req_s one else 0.);
      let fo, revived =
        run_failover ~router_addr ~router ~daemons ~updates ~updated
      in
      Printf.printf
        "  failover: updates=%d (mismatches=%d) replicated_identical=%b\n\
        \            under drain: %d responses (%d identical, %d \
         shard_unavailable, %d wrong)\n\
        \            readmitted=%b recovered_identical=%b\n%!"
        fo.fo_updates fo.fo_update_mismatches fo.fo_replicated_identical
        fo.fo_load_responses fo.fo_identical fo.fo_unavailable fo.fo_wrong
        fo.fo_readmitted fo.fo_recovered_identical;
      Router.drain router;
      Router.wait router;
      Daemon.drain revived;
      Daemon.wait revived;
      (* Draining the failover victim a second time is a no-op. *)
      List.iter
        (fun (_, t, _) ->
          Daemon.drain t;
          Daemon.wait t)
        daemons;
      emit_json ~smoke ~mode:"in-process" ~shards:nshards ~replicas out one rtr
        (Some fo);
      Printf.printf "wrote %s\n%!" out;
      let failed =
        one.protocol_errors > 0 || one.mismatches <> []
        || rtr.protocol_errors > 0 || rtr.mismatches <> []
        || fo.fo_update_mismatches > 0
        || (not fo.fo_replicated_identical)
        || fo.fo_wrong > 0 || fo.fo_load_responses = 0 || fo.fo_identical = 0
        || (not fo.fo_readmitted)
        || not fo.fo_recovered_identical
      in
      if failed then begin
        prerr_endline
          "FATAL: router bench failed (response divergence, wrong answer \
           under failover, or no re-admission)";
        exit 1
      end
