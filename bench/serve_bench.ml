(* bench --serve: load-generate against the query service and gate on
   bit-identity.

   Phase A (throughput): N client threads replay a fixed workload of
   certain/measure/conditional/analyze requests over their own
   connections and record per-request latency. Every response must be
   byte-identical to the expected line, which is built beforehand by
   running the same parsed requests through Service.handle with
   jobs = 1 on a fresh session store — i.e. the sequential CLI engine.
   Exact accumulators make the server's parallel sweeps bit-identical
   to that reference, so any diff is a real bug, not jitter.

   Phase B (saturation): a deliberately tiny server (one worker,
   max_queue = 1) against a burst of slow requests — the admission
   queue must shed load with typed 'overloaded' responses and keep
   answering health, rather than queue without bound or fall over.

   With --socket PATH, phase A drives an externally started server
   (the CI smoke job) and phase B is skipped — the external server's
   queue geometry is not ours to saturate. *)

module W = Server.Wire
module Daemon = Server.Daemon

type item = { line : string; expected : string }

type phase_a = {
  clients : int;
  iters : int;
  requests : int;
  protocol_errors : int;
  mismatches : (string * string) list;  (* (expected, got), first few *)
  wall_s : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
}

type phase_b = {
  burst : int;
  ok : int;
  overloaded : int;
  other : int;
  health_ok : bool;
  overloaded_counter : int;
}

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let schema_a = "R(a,b); S(a,b)"
let db_a = "R = { ('c1', ~1), ('c2', 'v') }; S = { ('c1', 'v') }"
let schema_b = "T(a,b)"
let db_b = "T = { ('k1', ~1), ('k1', ~2) }"

let req id op fields =
  W.obj
    ([ ("id", W.S id); ("op", W.S op) ]
    @ List.map (fun (k, v) -> (k, W.S v)) fields)

let workload_lines =
  [ req "w1" "certain"
      [ ("schema", schema_a); ("db", db_a);
        ("query", "Q(x,y) := R(x,y) & !S(x,y)")
      ];
    req "w2" "measure"
      [ ("schema", schema_a); ("db", db_a); ("query", "Q(x,y) := R(x,y)");
        ("tuple", "('c1', ~1)"); ("ks", "2,3")
      ];
    req "w3" "conditional"
      [ ("schema", schema_b); ("db", db_b); ("constraints", "fd T : a -> b");
        ("query", "Q() := exists x. exists y. T(x, y)"); ("ks", "2,3")
      ];
    req "w4" "analyze"
      [ ("schema", schema_a); ("db", db_a);
        ("query", "Q(x) := exists y. R(x,y) & !S(x,y)"); ("scheme", "sql")
      ]
  ]

(* The reference: the same requests through the sequential engine. *)
let build_workload () =
  let sessions = Server.Session.create () in
  List.map
    (fun line ->
      match W.parse_request line with
      | Error msg -> failwith ("bench workload line does not parse: " ^ msg)
      | Ok r ->
          let expected =
            match Server.Service.handle ~sessions ~jobs:1 r with
            | Ok payload -> W.ok_line ~id:r.W.id ~op:r.W.op payload
            | Error (err, msg) -> W.error_line ~id:r.W.id err msg
          in
          { line; expected })
    workload_lines

(* ------------------------------------------------------------------ *)
(* Phase A: throughput, latency, identity                              *)
(* ------------------------------------------------------------------ *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let run_phase_a ~addr ~clients ~iters items =
  let lock = Mutex.create () in
  let latencies = ref [] in
  let errors = ref 0 in
  let mismatches = ref [] in
  let body () =
    Server.Client.with_conn addr @@ fun c ->
    let lats = Array.make (iters * List.length items) 0 in
    let n = ref 0 in
    for _ = 1 to iters do
      List.iter
        (fun item ->
          let t0 = Obs.Clock.now_ns () in
          let resp = Server.Client.request c item.line in
          lats.(!n) <- Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0);
          incr n;
          match resp with
          | None -> Mutex.protect lock (fun () -> incr errors)
          | Some got ->
              if not (String.equal got item.expected) then
                Mutex.protect lock (fun () ->
                    if List.length !mismatches < 3 then
                      mismatches := (item.expected, got) :: !mismatches))
        items
    done;
    Mutex.protect lock (fun () -> latencies := lats :: !latencies)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun _ -> Thread.create body ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let all = Array.concat !latencies in
  Array.sort compare all;
  { clients;
    iters;
    requests = Array.length all;
    protocol_errors = !errors;
    mismatches = List.rev !mismatches;
    wall_s;
    p50_ns = percentile all 0.50;
    p95_ns = percentile all 0.95;
    p99_ns = percentile all 0.99
  }

(* ------------------------------------------------------------------ *)
(* Phase B: saturation                                                 *)
(* ------------------------------------------------------------------ *)

(* Slow enough (4 nulls, k = 25: 390 625 valuations) that the single
   worker is still busy when the rest of the burst lands. *)
let slow_line =
  req "slow" "measure"
    [ ("schema", "U(a,b,c,d)"); ("db", "U = { (~1, ~2, ~3, ~4) }");
      ("query", "Q() := exists x. U(x, x, x, x)"); ("ks", "25")
    ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let run_phase_b ~burst =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "certainty-bench-sat-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    { (Daemon.default_config (Daemon.Unix_sock sock)) with
      service_threads = 1;
      max_queue = 1
    }
  in
  let before = Obs.Metrics.value Obs.Metrics.serve_overloaded in
  let t = Daemon.start cfg in
  let lock = Mutex.create () in
  let ok = ref 0 and overloaded = ref 0 and other = ref 0 in
  let body () =
    Server.Client.with_conn (Daemon.Unix_sock sock) @@ fun c ->
    match Server.Client.request c slow_line with
    | Some resp when contains resp "\"ok\":true" ->
        Mutex.protect lock (fun () -> incr ok)
    | Some resp when contains resp "\"error\":\"overloaded\"" ->
        Mutex.protect lock (fun () -> incr overloaded)
    | Some _ | None -> Mutex.protect lock (fun () -> incr other)
  in
  let threads = List.init burst (fun _ -> Thread.create body ()) in
  List.iter Thread.join threads;
  let health_ok =
    Server.Client.with_conn (Daemon.Unix_sock sock) @@ fun c ->
    match Server.Client.request c (req "hb" "health" []) with
    | Some resp -> contains resp "\"ok\":true"
    | None -> false
  in
  Daemon.drain t;
  Daemon.wait t;
  { burst;
    ok = !ok;
    overloaded = !overloaded;
    other = !other;
    health_ok;
    overloaded_counter = Obs.Metrics.value Obs.Metrics.serve_overloaded - before
  }

(* ------------------------------------------------------------------ *)
(* Driver and JSON                                                     *)
(* ------------------------------------------------------------------ *)

let emit_json ~smoke ~external_socket path (a : phase_a) (b : phase_b option) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema_version\": 1,\n";
  out "  \"generated_by\": \"bench/main.exe --serve%s\",\n"
    (if smoke then " --smoke" else "");
  out "  \"external_socket\": %b,\n" external_socket;
  out "  \"throughput\": {\n";
  out "    \"clients\": %d,\n" a.clients;
  out "    \"iterations_per_client\": %d,\n" a.iters;
  out "    \"requests\": %d,\n" a.requests;
  out "    \"protocol_errors\": %d,\n" a.protocol_errors;
  out "    \"identical\": %b,\n" (a.mismatches = []);
  out "    \"wall_s\": %.3f,\n" a.wall_s;
  out "    \"requests_per_s\": %.1f,\n"
    (if a.wall_s > 0. then float_of_int a.requests /. a.wall_s else 0.);
  out "    \"p50_ns\": %d,\n" a.p50_ns;
  out "    \"p95_ns\": %d,\n" a.p95_ns;
  out "    \"p99_ns\": %d\n" a.p99_ns;
  out "  }%s\n" (if b = None then "" else ",");
  (match b with
  | None -> ()
  | Some b ->
      out "  \"saturation\": {\n";
      out "    \"burst\": %d,\n" b.burst;
      out "    \"ok\": %d,\n" b.ok;
      out "    \"overloaded\": %d,\n" b.overloaded;
      out "    \"other\": %d,\n" b.other;
      out "    \"health_ok\": %b,\n" b.health_ok;
      out "    \"serve_overloaded_counter\": %d\n" b.overloaded_counter;
      out "  }\n");
  out "}\n";
  close_out oc

let run ~smoke ~out ?socket () =
  Obs.Metrics.enable ();
  let clients, iters = if smoke then (4, 25) else (8, 100) in
  let items = build_workload () in
  let addr, server =
    match socket with
    | Some path -> (Daemon.Unix_sock path, None)
    | None ->
        let sock =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "certainty-bench-%d.sock" (Unix.getpid ()))
        in
        let t = Daemon.start (Daemon.default_config (Daemon.Unix_sock sock)) in
        (Daemon.Unix_sock sock, Some t)
  in
  Printf.printf "\n== query service (%s; %d clients x %d iterations x %d ops) ==\n%!"
    (if socket = None then "in-process" else "external --socket")
    clients iters (List.length items);
  let a = run_phase_a ~addr ~clients ~iters items in
  Option.iter
    (fun t ->
      Daemon.drain t;
      Daemon.wait t)
    server;
  Printf.printf
    "  throughput: %d requests in %.2fs (%.0f req/s)  p50=%.1fus p95=%.1fus \
     p99=%.1fus  errors=%d  %s\n"
    a.requests a.wall_s
    (if a.wall_s > 0. then float_of_int a.requests /. a.wall_s else 0.)
    (float_of_int a.p50_ns /. 1e3)
    (float_of_int a.p95_ns /. 1e3)
    (float_of_int a.p99_ns /. 1e3)
    a.protocol_errors
    (if a.mismatches = [] then "[responses identical]" else "[RESPONSES DIFFER!]");
  List.iter
    (fun (expected, got) ->
      Printf.printf "    expected: %s\n    got:      %s\n" expected got)
    a.mismatches;
  let b =
    if socket <> None then None
    else begin
      let b = run_phase_b ~burst:(if smoke then 16 else 64) in
      Printf.printf
        "  saturation (1 worker, max_queue=1, burst=%d): ok=%d overloaded=%d \
         other=%d health_ok=%b counter=%d\n"
        b.burst b.ok b.overloaded b.other b.health_ok b.overloaded_counter;
      Some b
    end
  in
  emit_json ~smoke ~external_socket:(socket <> None) out a b;
  Printf.printf "wrote %s\n%!" out;
  let phase_b_bad =
    match b with
    | None -> false
    | Some b ->
        b.ok < 1 || b.overloaded < 1 || b.other > 0 || not b.health_ok
        || b.overloaded_counter < 1
  in
  if a.protocol_errors > 0 || a.mismatches <> [] || phase_b_bad then begin
    prerr_endline
      "FATAL: query-service bench failed (protocol error, response \
       divergence, or bad saturation behavior)";
    exit 1
  end
