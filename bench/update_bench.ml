(* bench --update: single-tuple mutation vs session rebuild, gated on
   bit-identity.

   The claim being certified is the update path's reason to exist: on
   a session holding a few thousand ground tuples, applying one
   insert/delete through Session.update and re-answering — certain
   answers, the µ^k series, and the chase-backed conditional value —
   must be much cheaper than handing the server the updated database
   text and letting it rebuild the session from scratch (re-parse,
   re-split, re-index, re-chase, cold verdict cache).

   Both sides answer the same three queries after every step of the
   same update sequence, and every answer string must be byte-equal
   between the live session and the rebuilt one; any divergence is a
   stale cache (kernel db, verdict epoch, chase memo) and the bench
   FATALs, exactly like the --parallel digest gate.

   The update mix is deliberately the common case the delta machinery
   targets: mutations hit the big ground relation R while the small
   null-carrying relation S (and the FD set on it) stay put, so the
   epoch-keyed verdicts over S and the resumed chase survive every
   step on the live side, while the rebuilt side pays for everything
   each time. Mixed-relation sequences are correctness-tested in
   test/test_update.ml; this file is the performance gate. *)

module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Names = Relational.Names
module Support = Incomplete.Support
module Dependency = Constraints.Dependency
module Session = Server.Session
module Parser = Logic.Parser
module Rat = Arith.Rat

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let schema_text = "R(a,b); S(a,b)"

(* Named constants round-trip through the parser ('g7'); bare ints and
   Tuple.to_string's display form (_|_1) would not. 96 constants give
   9216 distinct pairs — room for the full-mode relation plus the
   update stream.

   Everything that interns a name or parses a query is lazy, forced on
   first use inside [run]: this module links into bench/main.exe next
   to every other mode, Names codes come from one global counter, and
   µ^k valuation spaces range over codes 1..k — interning 96 pool
   constants at module init would push the constants of every workload
   built after startup (e.g. the approx gate's section-4 example) past
   any usable k and silently empty their support counts. *)
let n_consts = 96

let const_pool =
  lazy
    (Array.init n_consts (fun i ->
         Value.const (Names.intern (Printf.sprintf "g%d" i))))

let pool i = (Lazy.force const_pool).(i)

let render_value = function
  | Value.Const c -> "'" ^ Names.to_string c ^ "'"
  | Value.Null n -> Printf.sprintf "~%d" n

let render_tuple t =
  "(" ^ String.concat ", " (List.map render_value (Tuple.to_list t)) ^ ")"

let render_db rows_r rows_s =
  let body rows = String.concat ", " (List.map render_tuple rows) in
  Printf.sprintf "R = { %s }; S = { %s }" (body rows_r) (body rows_s)

(* S: the stable, null-carrying core. One null, not more: every class
   sweep (certain answers, the naive evaluation inside the chase
   answer) enumerates |anchors|^|nulls| classes {e on both sides}, and
   anchors grow with the constant pool — a second null would add an
   O(rows) term to both sides of the ratio and measure query
   evaluation instead of session maintenance. The two 'g0' rows make
   the FD fire a real unification step (~1 := 'g5'), so the resumed
   chase memo is exercised with a nonempty substitution. *)
let rows_s =
  lazy
    [ Tuple.of_list [ pool 0; Value.null 1 ];
      Tuple.of_list [ pool 0; pool 5 ];
      Tuple.of_list [ pool 2; pool 3 ]
    ]

let fds_s = [ { Dependency.fd_relation = "S"; fd_lhs = [ 0 ]; fd_rhs = 1 } ]

(* [rows] distinct ground pairs over the pool, plus [updates] fresh
   pairs held back as the insert stream. Deterministic: the bench must
   emit the same JSON on every run. *)
let gen_pairs st ~rows ~updates =
  let seen = Hashtbl.create (4 * (rows + updates)) in
  let rec fresh () =
    let i = Random.State.int st n_consts in
    let j = Random.State.int st n_consts in
    if Hashtbl.mem seen (i, j) then fresh ()
    else begin
      Hashtbl.add seen (i, j) ();
      Tuple.of_list [ pool i; pool j ]
    end
  in
  let take n = List.rev (List.fold_left (fun acc _ -> fresh () :: acc) []
                           (List.init n Fun.id)) in
  let base = take rows in
  let stream = take updates in
  (base, stream)

(* Alternating insert/delete of the same fresh tuple keeps the model
   at [rows] tuples and — because every pool constant keeps occurring
   elsewhere — keeps the active domain stable, which is what lets the
   live side's adom-keyed verdicts survive. *)
let update_steps stream =
  List.concat_map
    (fun t -> [ (Session.Insert, t); (Session.Delete, t) ])
    stream

(* ------------------------------------------------------------------ *)
(* The three answers                                                   *)
(* ------------------------------------------------------------------ *)

(* The re-queries are deliberately cheap to {e answer} — one
   quantifier, not a quantifier-pair scan over adom² — so that what
   the clock sees is the cost of {e getting ready} to answer: parse,
   split, index, kernel build and chase on the rebuilt side, against
   delta maintenance on the live side. A heavyweight query would add
   the same evaluation time to both sides and flatten the ratio
   without testing anything the oracle tests don't. *)
let q_cert = lazy (Parser.query_exn "Q() := exists x. S(x, x)")

let q_series =
  lazy (Parser.query_exn "Q() := exists x. R('g0', x) & S('g0', x)")

let ks = [ 2; 3 ]

let rel_string rel =
  String.concat "; " (List.map Tuple.to_string (Relation.to_list rel))

let series_string series =
  String.concat ";"
    (List.map (fun (k, v) -> Printf.sprintf "%d=%s" k (Rat.to_string v)) series)

let t_certain = ref 0.
let t_series = ref 0.
let t_chase = ref 0.

let timed acc f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  acc := !acc +. (Unix.gettimeofday () -. t0);
  r

(* One snapshot of the entry, three answers, one digest string. *)
let answers (entry : Session.entry) =
  let inst = entry.Session.inst and cache = entry.Session.cache in
  let q_cert = Lazy.force q_cert and q_series = Lazy.force q_series in
  let certain =
    timed t_certain @@ fun () ->
    rel_string (Incomplete.Certain.certain_answers ~cache inst q_cert)
  in
  let series =
    timed t_series @@ fun () ->
    series_string (Support.mu_k_series ~cache inst q_series Tuple.empty ~ks)
  in
  let chase =
    timed t_chase @@ fun () ->
    Rat.to_string
      (Zeroone.Conditional.mu_cond_chased
         (Session.chase_outcome entry ~inst fds_s)
         q_cert Tuple.empty)
  in
  certain ^ " | " ^ series ^ " | " ^ chase

let get_exn store ~db =
  match Session.get store ~schema:schema_text ~db with
  | Ok entry -> entry
  | Error msg ->
      Printf.eprintf "FATAL: bench db does not parse: %s\n" msg;
      exit 1

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type side = { total_s : float; digests : string list (* in step order *) }

(* Each side runs the full update sequence [passes] times and keeps
   the fastest pass — one pass per side would let a scheduler hiccup
   flip the CI gate. The stream is insert-then-delete pairs, so a
   complete pass returns the model (and the live session) to its
   starting state and every pass computes the same digests; digests
   from all passes feed the identity check. *)
let passes = 3

let best_of_passes run =
  let first = run () in
  let rec go best n =
    if n = 0 then best
    else begin
      let next = run () in
      if next.digests <> first.digests then begin
        prerr_endline "FATAL: update bench digests differ between passes";
        exit 1
      end;
      go (if next.total_s < best.total_s then next else best) (n - 1)
    end
  in
  go first (passes - 1)

(* Live side: one store, one session; each step is Session.update plus
   the three re-answers, against warm generation/epoch-keyed caches. *)
let run_live ~db0 steps =
  let store = Session.create () in
  let entry = get_exn store ~db:db0 in
  ignore (answers entry);
  (* warm: steady-state cost, not first-query cost *)
  best_of_passes @@ fun () ->
  let digests = ref [] in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (action, tuple) ->
      (match
         Session.update store ~schema:schema_text ~db:db0 ~action ~relation:"R"
           ~tuple
       with
      | Ok (entry, _gen) -> digests := answers entry :: !digests
      | Error msg ->
          Printf.eprintf "FATAL: live update refused: %s\n" msg;
          exit 1))
    steps;
  { total_s = Unix.gettimeofday () -. t0; digests = List.rev !digests }

(* Rebuild side: every step hands a fresh store the re-rendered
   database text — parse, split, index, chase and verdict sweep all
   run from zero. Rendering happens before the clock starts: the
   rebuild cost charged here is the server's, not the client's
   string-building. *)
let run_rebuild ~base_rows steps =
  let rows_r = ref base_rows and rows_s = Lazy.force rows_s in
  let texts =
    List.map
      (fun (action, tuple) ->
        (match action with
        | Session.Insert -> rows_r := !rows_r @ [ tuple ]
        | Session.Delete ->
            rows_r := List.filter (fun u -> not (Tuple.equal u tuple)) !rows_r);
        render_db !rows_r rows_s)
      steps
  in
  best_of_passes @@ fun () ->
  let digests = ref [] in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun db ->
      let store = Session.create () in
      digests := answers (get_exn store ~db) :: !digests)
    texts;
  { total_s = Unix.gettimeofday () -. t0; digests = List.rev !digests }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let emit_json ~smoke ~rows ~updates ~identical ~rebuild_ns ~live_ns ~speedup
    path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema_version\": 1,\n";
  out "  \"generated_by\": \"bench/main.exe --update%s\",\n"
    (if smoke then " --smoke" else "");
  out "  \"rows\": %d,\n" rows;
  out "  \"updates\": %d,\n" updates;
  out "  \"identical\": %b,\n" identical;
  out "  \"results\": [\n";
  out "    { \"mode\": \"rebuild\", \"ns_per_update\": %.0f },\n" rebuild_ns;
  out
    "    { \"mode\": \"incremental\", \"ns_per_update\": %.0f, \
     \"speedup_vs_rebuild\": %.2f }\n"
    live_ns speedup;
  out "  ]\n";
  out "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)

let run ~smoke ~out () =
  let rows = if smoke then 2500 else 6000 in
  let n_stream = if smoke then 8 else 20 in
  let st = Random.State.make [| 0x5eed; 7 |] in
  let base_rows, stream = gen_pairs st ~rows ~updates:n_stream in
  let steps = update_steps stream in
  let updates = List.length steps in
  let db0 = render_db base_rows (Lazy.force rows_s) in
  Printf.printf
    "\n== update vs rebuild (%d ground rows, %d single-tuple updates) ==\n%!"
    rows updates;
  let live = run_live ~db0 steps in
  Printf.printf "  live components: certain=%.1fms series=%.1fms chase=%.1fms\n"
    (!t_certain *. 1e3) (!t_series *. 1e3) (!t_chase *. 1e3);
  t_certain := 0.; t_series := 0.; t_chase := 0.;
  let rebuild = run_rebuild ~base_rows steps in
  Printf.printf "  rebuild components: certain=%.1fms series=%.1fms chase=%.1fms\n"
    (!t_certain *. 1e3) (!t_series *. 1e3) (!t_chase *. 1e3);
  let diverging =
    List.filter
      (fun (l, r) -> not (String.equal l r))
      (List.combine live.digests rebuild.digests)
  in
  let identical = diverging = [] in
  let per side = side.total_s /. float_of_int updates *. 1e9 in
  let rebuild_ns = per rebuild and live_ns = per live in
  let speedup = if live_ns > 0. then rebuild_ns /. live_ns else 0. in
  Printf.printf
    "  rebuild:     %8.1f us/update   (parse + split + index + chase + cold \
     sweep)\n"
    (rebuild_ns /. 1e3);
  Printf.printf "  incremental: %8.1f us/update   (Session.update + re-query)\n"
    (live_ns /. 1e3);
  Printf.printf "  speedup: %.1fx   %s\n" speedup
    (if identical then "[answers identical]" else "[ANSWERS DIFFER!]");
  List.iteri
    (fun i (l, r) ->
      if i < 3 then Printf.printf "    live:    %s\n    rebuilt: %s\n" l r)
    diverging;
  emit_json ~smoke ~rows ~updates ~identical ~rebuild_ns ~live_ns ~speedup out;
  Printf.printf "wrote %s\n%!" out;
  if not identical then begin
    prerr_endline
      "FATAL: update bench diverged from the rebuilt session (stale cache)";
    exit 1
  end
