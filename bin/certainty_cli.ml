(* certainty — a command-line laboratory for query answering over
   incomplete databases, after L. Libkin, "Certain Answers Meet
   Zero-One Laws" (PODS 2018).

   Inputs are given inline or, when prefixed with '@', read from files:

     certainty naive \
       --schema "R1(c,p); R2(c,p)" \
       --db "R1 = { ('c1', ~1) }; R2 = { }" \
       --query "Q(x,y) := R1(x,y) & !R2(x,y)"
*)

module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Query = Logic.Query
module Parser = Logic.Parser
module F = Logic.Formula
module R = Arith.Rat
module P = Arith.Poly
module AE = Approx_measure.Estimator

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Argument plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let read_input s =
  if String.length s > 0 && s.[0] = '@' then begin
    let path = String.sub s 1 (String.length s - 1) in
    let ic = open_in path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    content
  end
  else s

let or_die = function
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2

let schema_arg =
  let doc =
    "Relational schema, e.g. 'R(customer, product); U(name)'. Prefix with @ \
     to read from a file."
  in
  Arg.(required & opt (some string) None & info [ "s"; "schema" ] ~docv:"SCHEMA" ~doc)

let db_arg =
  let doc =
    "Database instance, e.g. \"R = { ('c1', ~1), (~2, 'x') }\". Nulls are \
     ~1, ~2, ...; constants are quoted, integers, or bare identifiers."
  in
  Arg.(required & opt (some string) None & info [ "d"; "db" ] ~docv:"DB" ~doc)

let query_arg =
  let doc =
    "Query: 'Q(x, y) := R(x, y) & !S(x, y)' or a bare formula (free \
     variables become answer variables)."
  in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let constraints_arg =
  let doc =
    "Constraints: 'fd R : a -> b; key S : x; ind R[2] <= S[1]; fk R[1] -> \
     S[1]'."
  in
  Arg.(required & opt (some string) None & info [ "c"; "constraints" ] ~docv:"CONSTRAINTS" ~doc)

let tuple_arg =
  let doc = "Candidate answer tuple, e.g. \"('c1', ~1)\"." in
  Arg.(value & opt (some string) None & info [ "t"; "tuple" ] ~docv:"TUPLE" ~doc)

let tuple2_arg =
  let doc = "Second tuple for comparisons." in
  Arg.(value & opt (some string) None & info [ "u"; "tuple2" ] ~docv:"TUPLE" ~doc)

let ks_arg =
  let doc = "Domain sizes k at which to sample µ^k (comma-separated)." in
  Arg.(value & opt (some string) None & info [ "k"; "ks" ] ~docv:"K,K,..." ~doc)

let approx_arg =
  let doc =
    "Estimate the µ^k series by seeded Monte-Carlo sampling instead of exact \
     enumeration: draw a Hoeffding-sized sample of valuations so that \
     P(|estimate − µ^k| > EPS) < DELTA. Works on valuation spaces far beyond \
     the exact engine's overflow frontier; with a fixed --seed the figures \
     are bit-identical for every --jobs."
  in
  Arg.(value & opt (some string) None
       & info [ "approx" ] ~docv:"EPS,DELTA" ~doc)

let seed_arg =
  let doc = "PRNG seed for --approx (the sampler is fully deterministic)." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let stratify_arg =
  let doc =
    "With --approx, add the stratified second pass: the sample is allocated \
     across the null-support strata (how many nulls map into the anchor set \
     C ∪ Const(D)), with exact stratum weights — same (EPS, DELTA) \
     guarantee, usually tighter in practice."
  in
  Arg.(value & flag & info [ "stratify" ] ~doc)

let no_decomp_arg =
  let doc =
    "Disable the factorized evaluation path: sweep the full k^m valuation \
     space even when the support sentence decomposes into independent \
     components (ANL401). The factorized and monolithic engines agree \
     bit-for-bit; this flag exists for cross-checking and timing."
  in
  Arg.(value & flag & info [ "no-decomp" ] ~doc)

let parse_approx = function
  | None -> None
  | Some s -> (
      let die msg =
        Printf.eprintf "error: --approx %s\n" msg;
        exit 2
      in
      match String.split_on_char ',' s with
      | [ e; d ] -> (
          match (AE.rat_of_string e, AE.rat_of_string d) with
          | Ok eps, Ok delta ->
              let ok v = R.compare v R.zero > 0 && R.compare v R.one < 0 in
              if ok eps && ok delta then Some (eps, delta)
              else die "expects EPS and DELTA strictly between 0 and 1"
          | Error msg, _ | _, Error msg -> die msg)
      | _ -> die "expects EPS,DELTA (e.g. --approx 0.05,0.01)")

let jobs_arg =
  let doc =
    "Chunk count for the parallel valuation sweeps: 0 picks the number the \
     runtime recommends for this machine, 1 forces sequential evaluation. \
     Chunks run on a persistent worker pool sized to the machine's cores, \
     so values larger than the core count are safe — concurrency is \
     clamped, only the work partition changes. All accumulation is exact, \
     so the answers are identical for every value of $(docv)."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc =
    "Disable the evaluation cache (completed instances and per-valuation \
     verdicts are then recomputed from scratch every time)."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let strict_arg =
  let doc =
    "Treat static-analysis errors as fatal: exit with a nonzero status \
     instead of proceeding (the default merely prints them)."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let json_arg =
  let doc = "Emit the report as JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let metrics_arg =
  let doc =
    "Collect engine counters during the run (valuations evaluated, kernel \
     refreshes, cache traffic, pool scheduling, chase steps) and print them \
     after the command's output."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_json_arg =
  let doc = "Like --metrics, but as a single JSON line on stdout." in
  Arg.(value & flag & info [ "metrics-json" ] ~doc)

let trace_arg =
  let doc =
    "Write a structured span trace of the run to $(docv) as JSON lines (one \
     flat object per event); also enables counter collection, and span \
     wall-time aggregates join the --metrics report. Validate the file with \
     'certainty trace-check'."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Observability envelope for the evaluating subcommands: reset and
   enable the counters, open the trace sink, run the command body, then
   render the report after its output. The sink is closed even when the
   body exits or raises, so the JSONL on disk is always complete. *)
let with_obs ~metrics ~metrics_json ~trace f =
  let observing = metrics || metrics_json || trace <> None in
  if not observing then f ()
  else begin
    Obs.Metrics.reset ();
    Obs.Metrics.enable ();
    Option.iter Obs.Trace.enable_file trace;
    Fun.protect ~finally:Obs.Trace.close f;
    Obs.Metrics.disable ();
    let snap = Obs.Metrics.snapshot () in
    if metrics then print_string (Obs.Report.to_text snap);
    if metrics_json then print_endline (Obs.Report.to_json snap)
  end

let jobs_opt n = if n <= 0 then None else Some n
let cache_opt no_cache =
  if no_cache then None else Some (Incomplete.Support.create_cache ())

let load_schema s = or_die (Parser.schema (read_input s))
let load_db schema s = or_die (Parser.instance schema (read_input s))
let load_query s = or_die (Parser.query (read_input s))
let load_constraints schema s =
  or_die (Constraints.Dep_parser.parse schema (read_input s))

let load_tuple = function
  | None -> None
  | Some s -> Some (or_die (Parser.tuple (read_input s)))

let parse_ks inst = function
  | None ->
      let base = Instance.max_constant inst in
      List.map (fun i -> base + i) [ 1; 2; 4; 8; 16 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
      |> List.map int_of_string

let print_relation label rel =
  Printf.printf "%s (%d tuple%s):\n" label (Relation.cardinal rel)
    (if Relation.cardinal rel = 1 then "" else "s");
  if Relation.is_empty rel then print_endline "  (empty)"
  else Relation.iter (fun t -> Printf.printf "  %s\n" (Tuple.to_string t)) rel

let with_context schema db query f =
  let schema = load_schema schema in
  let inst = load_db schema db in
  let q = load_query query in
  (match Query.well_formed schema q with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "error: ill-formed query: %s\n" msg;
      exit 2);
  f schema inst q

(* The static-analysis gate of the evaluating subcommands: report
   errors and warnings (never hints) on stderr; under --strict, errors
   abort before any evaluation starts. *)
let precheck ?deps ?tuple ~strict schema inst q =
  let report = Analysis.Report.analyze ~inst ?deps ?tuple schema q in
  let visible =
    List.filter
      (fun d -> d.Analysis.Diag.severity <> Analysis.Diag.Hint)
      (report.Analysis.Report.diags @ report.Analysis.Report.hints)
  in
  let abort = strict && Analysis.Report.has_errors report in
  List.iter
    (fun d ->
      Printf.eprintf "analysis %s[%s] %s: %s\n"
        (if abort then Analysis.Diag.severity_string d.Analysis.Diag.severity
         else "warning")
        d.Analysis.Diag.code d.Analysis.Diag.loc d.Analysis.Diag.message)
    (Analysis.Diag.sort visible);
  if abort then begin
    Printf.eprintf
      "error: static analysis failed (--strict); run 'certainty analyze' \
       for the full report\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Subcommands                                                          *)
(* ------------------------------------------------------------------ *)

let naive_cmd =
  let run schema db query =
    with_context schema db query (fun _ inst q ->
        Printf.printf "query: %s\n" (Query.to_string q);
        Printf.printf "database:\n%s\n" (Instance.to_string inst);
        print_relation "naive answers (= almost certainly true, Thm 1)"
          (Incomplete.Naive.answers inst q))
  in
  let doc = "Evaluate a query naively (= almost-certainly-true answers)." in
  Cmd.v (Cmd.info "naive" ~doc)
    Term.(const run $ schema_arg $ db_arg $ query_arg)

let certain_cmd =
  let run schema db query jobs no_cache strict metrics metrics_json trace =
    with_obs ~metrics ~metrics_json ~trace @@ fun () ->
    with_context schema db query (fun sch inst q ->
        precheck ~strict sch inst q;
        let jobs = jobs_opt jobs and cache = cache_opt no_cache in
        Printf.printf "query: %s\n\n" (Query.to_string q);
        print_relation "certain answers"
          (Incomplete.Certain.certain_answers ?jobs ?cache inst q);
        print_relation "possible answers"
          (Incomplete.Certain.possible_answers ?jobs ?cache inst q);
        print_relation "naive answers" (Incomplete.Naive.answers inst q))
  in
  let doc =
    "Compute certain and possible answers exactly (exponential in the number \
     of nulls)."
  in
  Cmd.v (Cmd.info "certain" ~doc)
    Term.(const run $ schema_arg $ db_arg $ query_arg $ jobs_arg $ no_cache_arg
          $ strict_arg $ metrics_arg $ metrics_json_arg $ trace_arg)

(* Refuse a µ^k series whose valuation space does not even fit in an
   int: the brute-force sweep would spin forever, and before the typed
   Bigint.Overflow it died with an anonymous Failure deep inside the
   engine. Report the k and the exact k^m instead. *)
let check_space_sizes ?plan ~nulls ks =
  match plan with
  | None ->
      List.iter
        (fun k ->
          try ignore (Incomplete.Enumerate.space_size_exn ~nulls ~k)
          with Arith.Bigint.Overflow size ->
            Printf.eprintf
              "error: k = %d over %d nulls gives a valuation space of %s \
               valuations — too large to enumerate; pick smaller --ks, or \
               estimate it with --approx EPS,DELTA (e.g. --approx 0.05,0.01)\n"
              k (List.length nulls)
              (Arith.Bigint.to_string size);
            exit 2)
        ks
  | Some plan ->
      (* Factorized sweep: only the per-component spaces k^mᵢ must fit;
         the free-null factor is pure bigint arithmetic. *)
      List.iter
        (fun k ->
          List.iteri
            (fun i c ->
              let cn = c.Incomplete.Factor.c_nulls in
              try ignore (Incomplete.Enumerate.space_size_exn ~nulls:cn ~k)
              with Arith.Bigint.Overflow size ->
                Printf.eprintf
                  "error: k = %d still gives component %d (%d of the %d \
                   nulls) a space of %s valuations — too large to enumerate \
                   even factorized (ANL403); pick smaller --ks, or estimate \
                   with --approx EPS,DELTA (the sampler works per component)\n"
                  k (i + 1) (List.length cn) (List.length nulls)
                  (Arith.Bigint.to_string size);
                exit 2)
            plan.Incomplete.Factor.components)
        ks

let measure_cmd =
  let run schema db query tuple ks approx seed stratify no_decomp jobs
      no_cache strict metrics metrics_json trace =
    with_obs ~metrics ~metrics_json ~trace @@ fun () ->
    with_context schema db query (fun sch inst q ->
        let jobs = jobs_opt jobs and cache = cache_opt no_cache in
        let approx = parse_approx approx in
        let tuple =
          match load_tuple tuple with
          | Some t -> t
          | None ->
              if Query.arity q = 0 then Tuple.empty
              else begin
                Printf.eprintf "error: non-Boolean query needs --tuple\n";
                exit 2
              end
        in
        precheck ~tuple ~strict sch inst q;
        Printf.printf "query:  %s\n" (Query.to_string q);
        Printf.printf "tuple:  %s\n" (Tuple.to_string tuple);
        let sp = Zeroone.Support_poly.of_query inst q tuple in
        let m = Instance.null_count inst in
        Printf.printf "|Supp^k| = %s   (|V^k| = k^%d)\n" (P.to_string sp) m;
        let mu = Zeroone.Measure.mu_symbolic inst q tuple in
        Printf.printf "µ(Q,D,t) = %s   [0-1 law: %s]\n" (R.to_string mu)
          (Format.asprintf "%a" Zeroone.Measure.pp_verdict
             (Zeroone.Measure.mu inst q tuple));
        let ks = parse_ks inst ks in
        let nulls =
          List.sort_uniq Int.compare
            (Instance.nulls inst @ Tuple.nulls tuple)
        in
        (* Decomposition certificate: the factorized path only fires on
           a genuine [Decomposable] verdict (≥ 2 independent parts), so
           single-component workloads keep the monolithic sweep
           bit-for-bit. [Decomp.plan] is sound by construction — the
           engines agree exactly; --no-decomp forces the old path. *)
        let decomp =
          if no_decomp then None
          else
            let kc = List.fold_left max 1 ks in
            let d =
              Analysis.Decomp.analyze ~k:kc
                ~extra_nulls:(Tuple.nulls tuple) inst
                (Query.instantiate q tuple)
            in
            match (d.Analysis.Decomp.verdict, Analysis.Decomp.plan d) with
            | Analysis.Decomp.Decomposable, Some p -> Some (d, p)
            | _ -> None
        in
        (match decomp with
        | None -> ()
        | Some (d, _) ->
            Printf.printf "decomposition: %d independent parts, %s (ANL401)\n"
              (Analysis.Decomp.parts d)
              (Analysis.Decomp.sizes_string d));
        match approx with
        | None -> (
            match decomp with
            | Some (_, plan) ->
                check_space_sizes ~plan ~nulls ks;
                print_endline "µ^k series (brute force, factorized):";
                List.iter
                  (fun (k, v) ->
                    Printf.printf "  k = %3d   µ^k = %-12s ≈ %.6f\n" k
                      (R.to_string v) (R.to_float v))
                  (Incomplete.Support.mu_k_series_plan ?jobs ?cache inst plan
                     ~ks)
            | None ->
                check_space_sizes ~nulls ks;
                print_endline "µ^k series (brute force):";
                List.iter
                  (fun (k, v) ->
                    Printf.printf "  k = %3d   µ^k = %-12s ≈ %.6f\n" k
                      (R.to_string v) (R.to_float v))
                  (Incomplete.Support.mu_k_series ?jobs ?cache inst q tuple
                     ~ks))
        | Some (eps, delta) -> (
            (* No space preflight here — sampling beyond the exact
               engine's overflow frontier is the point. *)
            match decomp with
            | Some (_, plan) when not stratify ->
                Printf.printf
                  "µ^k estimates (Monte-Carlo, factorized, ε = %s, δ = %s, \
                   seed %d):\n"
                  (R.to_string eps) (R.to_string delta) seed;
                List.iter
                  (fun k ->
                    let r =
                      AE.mu_k_plan ?jobs ?cache inst plan ~k ~eps ~delta ~seed
                    in
                    Printf.printf
                      "  k = %3d   µ^k ≈ %-12s (%.6f)   CI [%s, %s]   (%d \
                       exact / %d sampled parts, %d samples)\n"
                      k
                      (R.to_string r.AE.f_estimate)
                      (R.to_float r.AE.f_estimate)
                      (R.to_string r.AE.f_ci_lo) (R.to_string r.AE.f_ci_hi)
                      r.AE.f_exact_parts r.AE.f_sampled_parts r.AE.f_samples)
                  ks
            | _ ->
                let n = AE.sample_size ~eps ~delta in
                Printf.printf
                  "µ^k estimates (Monte-Carlo, ε = %s, δ = %s, %d samples/k, \
                   seed %d):\n"
                  (R.to_string eps) (R.to_string delta) n seed;
                List.iter
                  (fun k ->
                    let r =
                      AE.mu_k ?jobs ?cache ~stratify inst q tuple ~k ~eps
                        ~delta ~seed
                    in
                    Printf.printf
                      "  k = %3d   µ^k ≈ %-12s (%.6f)   CI [%s, %s]\n" k
                      (R.to_string r.AE.estimate)
                      (R.to_float r.AE.estimate)
                      (R.to_string r.AE.ci_lo) (R.to_string r.AE.ci_hi);
                    match r.AE.stratified with
                    | None -> ()
                    | Some s ->
                        Printf.printf
                          "            stratified (%d null-support strata, %d \
                           samples) ≈ %-12s (%.6f)   CI [%s, %s]\n"
                          s.AE.s_strata s.AE.s_samples
                          (R.to_string s.AE.s_estimate)
                          (R.to_float s.AE.s_estimate)
                          (R.to_string s.AE.s_ci_lo) (R.to_string s.AE.s_ci_hi))
                  ks))
  in
  let doc =
    "Measure how close an answer is to certainty: the support polynomial, the \
     asymptotic measure µ (0 or 1 by the 0-1 law), and a µ^k series — exact \
     by brute force, or (ε,δ)-approximate with --approx."
  in
  Cmd.v (Cmd.info "measure" ~doc)
    Term.(const run $ schema_arg $ db_arg $ query_arg $ tuple_arg $ ks_arg
          $ approx_arg $ seed_arg $ stratify_arg $ no_decomp_arg $ jobs_arg
          $ no_cache_arg $ strict_arg $ metrics_arg $ metrics_json_arg
          $ trace_arg)

let conditional_cmd =
  let run schema db query cstr tuple ks no_decomp jobs no_cache strict metrics
      metrics_json trace =
    with_obs ~metrics ~metrics_json ~trace @@ fun () ->
    with_context schema db query (fun sch inst q ->
        let jobs = jobs_opt jobs and cache = cache_opt no_cache in
        let deps = load_constraints sch cstr in
        let sigma = Constraints.Dependency.set_to_formula sch deps in
        let tuple =
          match load_tuple tuple with
          | Some t -> t
          | None ->
              if Query.arity q = 0 then Tuple.empty
              else begin
                Printf.eprintf "error: non-Boolean query needs --tuple\n";
                exit 2
              end
        in
        precheck ~deps ~tuple ~strict sch inst q;
        Printf.printf "query:       %s\n" (Query.to_string q);
        Printf.printf "tuple:       %s\n" (Tuple.to_string tuple);
        List.iter
          (fun d ->
            Printf.printf "constraint:  %s\n"
              (Constraints.Dependency.to_string ~schema:sch d))
          deps;
        let report =
          Zeroone.Conditional.mu_cond_report ?jobs ?cache ~sigma inst q tuple
        in
        Printf.printf "|Supp^k(Σ∧Q)| = %s\n"
          (P.to_string report.Zeroone.Conditional.numerator);
        Printf.printf "|Supp^k(Σ)|   = %s\n"
          (P.to_string report.Zeroone.Conditional.denominator);
        Printf.printf "µ(Q|Σ,D,t)    = %s ≈ %.6f   (Theorem 3: always exists, rational)\n"
          (R.to_string report.Zeroone.Conditional.value)
          (R.to_float report.Zeroone.Conditional.value);
        (* The classifier, not an ad hoc scan, decides whether the
           Theorem 5 chase shortcut applies. *)
        (match Zeroone.Conditional.strategy deps tuple with
        | Zeroone.Conditional.Chase_fds ->
            let fds = Constraints.Dependency.fds_of_schema sch deps in
            let via_chase = Zeroone.Conditional.mu_cond_fds fds inst q tuple in
            Printf.printf "via chase (Thm 5) = %s\n" (R.to_string via_chase)
        | Zeroone.Conditional.Symbolic -> ());
        match ks with
        | None -> ()
        | Some _ -> (
            let ks = parse_ks inst ks in
            let nulls =
              List.sort_uniq Int.compare
                (Instance.nulls inst @ Tuple.nulls tuple @ F.nulls sigma)
            in
            (* Both the Σ∧Q and Σ counts factorize over their own
               interaction graphs, on the shared sweep set — the
               quotient is then the identical reduced rational. Fire
               only when at least one side genuinely decomposes. *)
            let plans =
              if no_decomp then None
              else
                let kc = List.fold_left max 1 ks in
                let dnum, dden =
                  Zeroone.Conditional.cond_decomp ~k:kc ~sigma inst q tuple
                in
                let decomposable d =
                  match d.Analysis.Decomp.verdict with
                  | Analysis.Decomp.Decomposable -> true
                  | _ -> false
                in
                if decomposable dnum || decomposable dden then
                  match
                    (Analysis.Decomp.plan dnum, Analysis.Decomp.plan dden)
                  with
                  | Some np, Some dp -> Some (dnum, dden, np, dp)
                  | _ -> None
                else None
            in
            match plans with
            | Some (dnum, dden, num_plan, den_plan) ->
                Printf.printf
                  "decomposition: Σ∧Q %d part%s (%s); Σ %d part%s (%s) \
                   (ANL401)\n"
                  (Analysis.Decomp.parts dnum)
                  (if Analysis.Decomp.parts dnum = 1 then "" else "s")
                  (Analysis.Decomp.sizes_string dnum)
                  (Analysis.Decomp.parts dden)
                  (if Analysis.Decomp.parts dden = 1 then "" else "s")
                  (Analysis.Decomp.sizes_string dden);
                check_space_sizes ~plan:num_plan ~nulls ks;
                check_space_sizes ~plan:den_plan ~nulls ks;
                print_endline "µ^k(Q|Σ) series (brute force, factorized):";
                List.iter
                  (fun k ->
                    let v =
                      Zeroone.Conditional.mu_cond_k_plans ?jobs ?cache
                        ~num_plan ~den_plan inst ~k
                    in
                    Printf.printf "  k = %3d   %-12s ≈ %.6f\n" k
                      (R.to_string v) (R.to_float v))
                  ks
            | None ->
                check_space_sizes ~nulls ks;
                print_endline "µ^k(Q|Σ) series (brute force):";
                List.iter
                  (fun k ->
                    let v =
                      Zeroone.Conditional.mu_cond_k ?jobs ?cache ~sigma inst q
                        tuple ~k
                    in
                    Printf.printf "  k = %3d   %-12s ≈ %.6f\n" k
                      (R.to_string v) (R.to_float v))
                  ks))
  in
  let doc =
    "Conditional measure µ(Q|Σ,D,t) under integrity constraints (Theorem 3); \
     uses the chase shortcut for pure FD sets (Theorem 5)."
  in
  Cmd.v (Cmd.info "conditional" ~doc)
    Term.(const run $ schema_arg $ db_arg $ query_arg $ constraints_arg
          $ tuple_arg $ ks_arg $ no_decomp_arg $ jobs_arg $ no_cache_arg
          $ strict_arg $ metrics_arg $ metrics_json_arg $ trace_arg)

let best_cmd =
  let run schema db query tuple tuple2 =
    with_context schema db query (fun _ inst q ->
        Printf.printf "query: %s\n\n" (Query.to_string q);
        (match (load_tuple tuple, load_tuple tuple2) with
        | Some a, Some b ->
            Printf.printf "%s ⊴ %s : %b\n" (Tuple.to_string a) (Tuple.to_string b)
              (Compare.Order.leq inst q a b);
            Printf.printf "%s ◁ %s : %b\n" (Tuple.to_string a) (Tuple.to_string b)
              (Compare.Order.lt inst q a b);
            Printf.printf "%s ⊴ %s : %b\n" (Tuple.to_string b) (Tuple.to_string a)
              (Compare.Order.leq inst q b a)
        | _ -> ());
        print_relation "best answers  Best(Q,D)" (Compare.Best.best inst q);
        print_relation "best ∩ almost-certain  Best_µ(Q,D)"
          (Compare.Best.best_mu inst q);
        print_endline "ranking by support (strata of the ⊴ preorder):";
        List.iteri
          (fun i stratum ->
            Printf.printf "  rank %d: %s\n" i
              (String.concat " "
                 (List.map Tuple.to_string (Relation.to_list stratum))))
          (Compare.Rank.strata inst q);
        match Logic.Ucq.of_query q with
        | Some u ->
            print_relation "best via Theorem 8 (UCQ polynomial algorithm)"
              (Compare.Ucq_compare.best inst u)
        | None -> print_endline "(not a UCQ: Theorem 8 algorithm not applicable)")
  in
  let doc =
    "Compare answers by support and compute the best answers (and Best_µ); \
     for unions of conjunctive queries also runs the polynomial algorithm of \
     Theorem 8."
  in
  Cmd.v (Cmd.info "best" ~doc)
    Term.(const run $ schema_arg $ db_arg $ query_arg $ tuple_arg $ tuple2_arg)

let chase_cmd =
  let max_steps_arg =
    let doc =
      "Budget of tuple-generating chase steps before giving up (only \
       consulted when the dependency set has inclusions/foreign keys; the \
       FD chase always terminates)."
    in
    Arg.(value & opt int 1_000 & info [ "max-steps" ] ~docv:"N" ~doc)
  in
  let run schema db cstr max_steps metrics metrics_json trace =
    with_obs ~metrics ~metrics_json ~trace @@ fun () ->
    let sch = load_schema schema in
    let inst = load_db sch db in
    let deps = load_constraints sch cstr in
    let run_fd_chase () =
      let fds = Constraints.Dependency.fds_of_schema sch deps in
      Printf.printf "chasing with %d functional dependenc%s\n" (List.length fds)
        (if List.length fds = 1 then "y" else "ies");
      let steps, outcome = Constraints.Chase.trace fds inst in
      List.iter
        (fun (fd, from_v, to_v) ->
          Printf.printf "  step: %s forces %s := %s\n"
            (Constraints.Dependency.to_string ~schema:sch (Constraints.Dependency.Fd fd))
            (Relational.Value.to_string from_v)
            (Relational.Value.to_string to_v))
        steps;
      match outcome with
      | Constraints.Chase.Failure (fd, t, u) ->
          Printf.printf "chase FAILED on %s: %s vs %s\n"
            (Constraints.Dependency.to_string ~schema:sch (Constraints.Dependency.Fd fd))
            (Tuple.to_string t) (Tuple.to_string u);
          exit 1
      | Constraints.Chase.Success chased ->
          Printf.printf "chase succeeded:\n%s\n" (Instance.to_string chased)
    in
    let run_tgd_chase w =
      Printf.printf "chasing with %d dependenc%s (tuple-generating set)\n"
        (List.length deps)
        (if List.length deps = 1 then "y" else "ies");
      Printf.printf "termination: %s (%d regular, %d special edge%s)\n"
        (Constraints.Wacyclic.verdict_string w)
        w.Constraints.Wacyclic.n_regular w.Constraints.Wacyclic.n_special
        (if w.Constraints.Wacyclic.n_special = 1 then "" else "s");
      (match w.Constraints.Wacyclic.verdict with
      | Constraints.Wacyclic.Weakly_acyclic ->
          print_endline
            "  ANL306: the chase terminates on every instance (certificate: \
             no special-edge cycle)"
      | Constraints.Wacyclic.Special_cycle _ ->
          Printf.printf
            "  ANL307: special-edge cycle %s — termination not guaranteed, \
             bounded run (--max-steps %d)\n"
            (Constraints.Wacyclic.cycle_string w)
            max_steps);
      match Constraints.Chase.chase_tgds ~max_steps sch deps inst with
      | Constraints.Chase.Tgd_fixpoint chased ->
          Printf.printf "chase reached a fixpoint:\n%s\n"
            (Instance.to_string chased)
      | Constraints.Chase.Tgd_failed (fd, t, u) ->
          Printf.printf "chase FAILED on %s: %s vs %s\n"
            (Constraints.Dependency.to_string ~schema:sch (Constraints.Dependency.Fd fd))
            (Tuple.to_string t) (Tuple.to_string u);
          exit 1
      | Constraints.Chase.Tgd_budget _ ->
          Printf.printf
            "chase stopped: %d-step budget exhausted without a fixpoint\n"
            max_steps;
          exit 1
    in
    (* The classifier picks the engine: the plain FD chase when no
       dependency generates tuples (output unchanged), otherwise the
       TGD chase under the weak-acyclicity certificate. *)
    match Analysis.Classify.chase_strategy sch deps with
    | Analysis.Classify.Fd_chase -> run_fd_chase ()
    | Analysis.Classify.Terminating_chase w
    | Analysis.Classify.Bounded_chase w ->
        run_tgd_chase w
  in
  let doc =
    "Chase an incomplete database with its dependencies (§4.4): the \
     terminating FD chase, or — for sets with inclusions/foreign keys — the \
     TGD chase dispatched on the weak-acyclicity certificate."
  in
  Cmd.v (Cmd.info "chase" ~doc)
    Term.(const run $ schema_arg $ db_arg $ constraints_arg $ max_steps_arg
          $ metrics_arg $ metrics_json_arg $ trace_arg)

let sat_cmd =
  let run schema db cstr =
    let sch = load_schema schema in
    let inst = load_db sch db in
    let deps = load_constraints sch cstr in
    (* Route through the static classifier: the Proposition 6 polynomial
       procedure fires automatically whenever the dependency set
       qualifies. *)
    let cclass = Analysis.Classify.constraint_class deps in
    if cclass.Analysis.Classify.unary_keys_fks then begin
      match Constraints.Sat.unary_keys_fks sch deps inst with
      | Constraints.Sat.Satisfiable v ->
          Printf.printf "SATISFIABLE (Prop 6 polynomial procedure)\nwitness: %s\n"
            (Incomplete.Valuation.to_string v)
      | Constraints.Sat.Unsatisfiable reason ->
          Printf.printf "UNSATISFIABLE: %s\n" reason
    end
    else begin
      let sat = Constraints.Sat.satisfiable_generic sch deps inst in
      Printf.printf "%s (generic exponential procedure)\n"
        (if sat then "SATISFIABLE" else "UNSATISFIABLE")
    end
  in
  let doc =
    "Decide satisfiability of constraints in an incomplete database; uses the \
     Proposition 6 polynomial procedure for unary keys and foreign keys."
  in
  Cmd.v (Cmd.info "sat" ~doc) Term.(const run $ schema_arg $ db_arg $ constraints_arg)

let approx_cmd =
  let scheme_arg =
    let doc =
      "Approximation scheme to grade: 'sql' (3-valued WHERE), 'naive' \
       (marked-null naive evaluation) or 'naive-null-free'."
    in
    Arg.(value & opt string "sql" & info [ "scheme" ] ~docv:"SCHEME" ~doc)
  in
  let run schema db query scheme_name =
    with_context schema db query (fun _ inst q ->
        let scheme =
          match scheme_name with
          | "sql" -> Zeroone.Approx.sql_scheme
          | "naive" -> fun d q -> Incomplete.Naive.answers d q
          | "naive-null-free" -> Zeroone.Approx.naive_null_free_scheme
          | other ->
              Printf.eprintf "error: unknown scheme %s\n" other;
              exit 2
        in
        let r = Zeroone.Approx.evaluate scheme inst q in
        Printf.printf "query:  %s\nscheme: %s\n\n" (Query.to_string q) scheme_name;
        print_relation "certain answers" r.Zeroone.Approx.certain;
        print_relation "returned by the scheme" r.Zeroone.Approx.returned;
        print_relation "missed certain answers" r.Zeroone.Approx.missed;
        print_relation "spurious but almost certainly true (benign)"
          r.Zeroone.Approx.spurious_benign;
        print_relation "spurious and almost certainly false (harmful)"
          r.Zeroone.Approx.spurious_harmful;
        Printf.printf "recall = %s   precision = %s   sound = %b   complete = %b\n"
          (R.to_string (Zeroone.Approx.recall r))
          (R.to_string (Zeroone.Approx.precision r))
          (Zeroone.Approx.sound r) (Zeroone.Approx.complete r))
  in
  let doc =
    "Grade a certain-answer approximation scheme against the exact certain \
     answers, classifying its errors by the measure µ (§6 of the paper)."
  in
  Cmd.v (Cmd.info "approx" ~doc)
    Term.(const run $ schema_arg $ db_arg $ query_arg $ scheme_arg)

let datalog_cmd =
  let program_arg =
    let doc =
      "Datalog program, e.g. 'TC(x, y) := E(x, y). TC(x, z) := E(x, y), TC(y, \
       z).' Prefix with @ to read from a file."
    in
    Arg.(required & opt (some string) None & info [ "p"; "program" ] ~docv:"PROGRAM" ~doc)
  in
  let goal_arg =
    let doc = "IDB predicate whose answers to report." in
    Arg.(required & opt (some string) None & info [ "g"; "goal" ] ~docv:"GOAL" ~doc)
  in
  let run schema db program goal =
    let sch = load_schema schema in
    let inst = load_db sch db in
    let prog =
      match Datalog.Program.parse sch (read_input program) with
      | Ok p -> p
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2
    in
    let q =
      try Zeroone.Generic.of_datalog sch prog ~goal
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    in
    Printf.printf "program:\n%s" (Format.asprintf "%a" Datalog.Program.pp prog);
    print_relation
      ("almost certainly true " ^ goal ^ " facts (naive fixpoint, Thm 1)")
      (Zeroone.Generic.naive_answers inst q);
    let certain =
      List.filter
        (fun t -> Zeroone.Generic.is_certain inst q t)
        (Relation.to_list (Zeroone.Generic.naive_answers inst q))
    in
    Printf.printf "of these, certain under every valuation: %d\n"
      (List.length certain);
    List.iter (fun t -> Printf.printf "  %s\n" (Tuple.to_string t)) certain
  in
  let doc =
    "Evaluate a recursive datalog program over an incomplete database; the \
     0-1 law applies to these generic queries too."
  in
  Cmd.v (Cmd.info "datalog" ~doc)
    Term.(const run $ schema_arg $ db_arg $ program_arg $ goal_arg)

let analyze_cmd =
  let db_opt_arg =
    let doc =
      "Database instance (optional): enables the k^m cost analysis."
    in
    Arg.(value & opt (some string) None & info [ "d"; "db" ] ~docv:"DB" ~doc)
  in
  let constraints_opt_arg =
    let doc =
      "Constraints (optional): enables the constraint-class verdict \
       (FD-only, unary keys+FKs)."
    in
    Arg.(value & opt (some string) None
         & info [ "c"; "constraints" ] ~docv:"CONSTRAINTS" ~doc)
  in
  let k_arg =
    let doc =
      "Domain size k for the concrete cost bound (default: the largest k of \
       the µ^k series, max-constant + 16)."
    in
    Arg.(value & opt (some int) None & info [ "domain-size" ] ~docv:"K" ~doc)
  in
  let run schema db query cstr tuple k json strict =
    let sch = load_schema schema in
    let q = load_query query in
    let inst = Option.map (load_db sch) db in
    let deps = Option.map (load_constraints sch) cstr in
    let tuple = load_tuple tuple in
    let report = Analysis.Report.analyze ?inst ?deps ?tuple ?k sch q in
    if json then print_endline (Analysis.Report.to_json report)
    else print_string (Analysis.Report.to_text report);
    if strict && Analysis.Report.has_errors report then exit 1
  in
  let doc =
    "Statically analyze a query (and optionally constraints) without \
     evaluating anything: tightest fragment (CQ/UCQ/Pos∀G/FO), \
     safety/range-restriction and genericity verdicts, schema conformance, \
     constraint class, the k^m valuation-space cost bound, and the \
     paper-backed dispatch consequences — with stable diagnostic codes, as \
     text or JSON. With --strict, exit nonzero when errors are found (the \
     CI lint gate)."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ schema_arg $ db_opt_arg $ query_arg
          $ constraints_opt_arg $ tuple_arg $ k_arg $ json_arg $ strict_arg)

let trace_check_cmd =
  let file_arg =
    let doc = "JSONL span trace written by --trace." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    match Obs.Trace.validate_file file with
    | Ok n -> Printf.printf "trace ok: %d completed span(s)\n" n
    | Error msg ->
        Printf.eprintf "error: malformed trace: %s\n" msg;
        exit 1
    | exception Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
  in
  let doc =
    "Validate a span trace: every line a flat JSON event, every span closed \
     exactly once with non-decreasing timestamps. Nonzero exit on any \
     malformed or unclosed span — the CI trace gate."
  in
  Cmd.v (Cmd.info "trace-check" ~doc) Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* The query service                                                    *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Serve on (or connect to) the Unix-domain socket $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Serve on (or connect to) TCP port $(docv)." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "Host for --port." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let addr_of ~socket ~port ~host =
  match (socket, port) with
  | Some path, None -> Server.Daemon.Unix_sock path
  | None, Some port -> Server.Daemon.Tcp (host, port)
  | Some _, Some _ ->
      Printf.eprintf "error: pass --socket or --port, not both\n";
      exit 2
  | None, None ->
      Printf.eprintf "error: pass --socket PATH or --port PORT\n";
      exit 2

let serve_cmd =
  let workers_arg =
    let doc =
      "Service threads executing requests concurrently (each may in turn \
       fan its valuation sweep out over --jobs pool chunks)."
    in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Bound on the admission queue: requests arriving while $(docv) are \
       already waiting are refused with a typed 'overloaded' response \
       instead of queueing without limit."
    in
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc =
      "Default per-request deadline in milliseconds (0 = none). Enforced at \
       valuation-chunk boundaries: an expired request gets a typed \
       'deadline_exceeded' response and its partial work is discarded. A \
       request's own deadline_ms field overrides this."
    in
    Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let max_sessions_arg =
    let doc =
      "Cap on cached sessions (parsed database + evaluation caches); \
       oldest-loaded sessions are evicted beyond it."
    in
    Arg.(value & opt int 16 & info [ "max-sessions" ] ~docv:"N" ~doc)
  in
  let drain_grace_arg =
    let doc =
      "Seconds graceful drain waits for queued and in-flight work before \
       force-closing connections (so a peer that stopped reading cannot \
       hold the shutdown hostage)."
    in
    Arg.(value & opt float 30.0 & info [ "drain-grace" ] ~docv:"SECONDS" ~doc)
  in
  let shard_id_arg =
    let doc =
      "Stable shard identity reported by the health op (defaults to the \
       listen address) — what a router uses to tell shards apart."
    in
    Arg.(value & opt (some string) None & info [ "shard-id" ] ~docv:"ID" ~doc)
  in
  let run socket port host jobs workers max_queue deadline_ms max_sessions
      drain_grace shard_id metrics metrics_json trace =
    with_obs ~metrics ~metrics_json ~trace @@ fun () ->
    let addr = addr_of ~socket ~port ~host in
    let cfg =
      { Server.Daemon.addr;
        jobs = jobs_opt jobs;
        service_threads = workers;
        max_queue;
        deadline_ms = (if deadline_ms <= 0 then None else Some deadline_ms);
        max_sessions;
        drain_grace_s = drain_grace;
        shard_id
      }
    in
    (match addr with
    | Server.Daemon.Unix_sock path ->
        Printf.eprintf "certainty: serving on %s\n%!" path
    | Server.Daemon.Tcp (host, port) ->
        Printf.eprintf "certainty: serving on %s:%d\n%!" host port);
    match Server.Daemon.run ~signals:true cfg with
    | () -> ()
    | exception Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | exception Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "error: cannot serve: %s (%s)\n" (Unix.error_message e)
          fn;
        exit 2
  in
  let doc =
    "Run the long-lived query service: newline-delimited JSON requests \
     (certain, measure, conditional, approx, analyze, update, health) over \
     a Unix or TCP socket, with shared per-database caches, bounded admission, \
     per-request deadlines, and graceful drain on SIGTERM/SIGINT. The \
     protocol is documented in docs/PROTOCOL.md."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ port_arg $ host_arg $ jobs_arg
          $ workers_arg $ max_queue_arg $ deadline_arg $ max_sessions_arg
          $ drain_grace_arg $ shard_id_arg $ metrics_arg $ metrics_json_arg
          $ trace_arg)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let client_cmd =
  let op_arg =
    let doc =
      "Operation to request: certain, measure, conditional, approx, analyze, \
       update or health."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let opt_str names docv doc =
    Arg.(value & opt (some string) None & info names ~docv ~doc)
  in
  let schema_arg = opt_str [ "s"; "schema" ] "SCHEMA" "Schema text (@file ok)." in
  let db_arg = opt_str [ "d"; "db" ] "DB" "Database text (@file ok)." in
  let query_arg = opt_str [ "q"; "query" ] "QUERY" "Query text (@file ok)." in
  let constraints_arg =
    opt_str [ "c"; "constraints" ] "CONSTRAINTS" "Constraints text (@file ok)."
  in
  let tuple_arg = opt_str [ "t"; "tuple" ] "TUPLE" "Candidate answer tuple." in
  let ks_arg = opt_str [ "k"; "ks" ] "K,K,..." "Domain sizes for µ^k series." in
  let scheme_arg =
    opt_str [ "scheme" ] "SCHEME"
      "Approximation scheme for analyze: sql, naive or naive-null-free."
  in
  let id_arg = opt_str [ "id" ] "ID" "Request id, echoed in the response." in
  let action_arg =
    opt_str [ "action" ] "ACTION"
      "For the update op: insert or delete (sent as the action field)."
  in
  let relation_arg =
    opt_str [ "relation" ] "NAME"
      "For the update op: the relation the tuple goes into or out of."
  in
  let capprox_arg =
    opt_str [ "approx" ] "EPS,DELTA"
      "For the approx op: the (ε, δ) guarantee, sent as the eps and delta \
       fields."
  in
  let cseed_arg =
    let doc = "For the approx op: PRNG seed (sent as the seed field)." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)
  in
  let cstratify_arg =
    let doc = "For the approx op: request the stratified second pass." in
    Arg.(value & flag & info [ "stratify" ] ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline in milliseconds (0 = server default)." in
    Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let raw_arg =
    let doc =
      "Send $(docv) verbatim as a request line before the main request \
       (repeatable, in order) — for probing the protocol, e.g. with \
       malformed input."
    in
    Arg.(value & opt_all string [] & info [ "raw" ] ~docv:"LINE" ~doc)
  in
  let run socket port host op schema db query cstr tuple ks approx seed
      stratify scheme action relation deadline_ms id raws =
    let addr = addr_of ~socket ~port ~host in
    let build op =
      let fields = ref [] in
      let add name v =
        match v with
        | Some s -> fields := (name, Server.Wire.S (read_input s)) :: !fields
        | None -> ()
      in
      add "scheme" scheme;
      add "action" action;
      add "relation" relation;
      (* The approx op takes a single domain size "k" (plus eps/delta/
         seed/stratify); every other op reads the "ks" list. *)
      if op = "approx" then begin
        if stratify then fields := ("stratify", Server.Wire.I 1) :: !fields;
        Option.iter
          (fun n -> fields := ("seed", Server.Wire.I n) :: !fields)
          seed;
        (match Option.map (String.split_on_char ',') approx with
        | Some [ e; d ] ->
            fields :=
              ("delta", Server.Wire.S (String.trim d))
              :: ("eps", Server.Wire.S (String.trim e))
              :: !fields
        | Some _ ->
            Printf.eprintf "error: --approx expects EPS,DELTA\n";
            exit 2
        | None -> ());
        add "k" ks
      end
      else add "ks" ks;
      add "tuple" tuple;
      add "constraints" cstr;
      add "query" query;
      add "db" db;
      add "schema" schema;
      if deadline_ms > 0 then
        fields := ("deadline_ms", Server.Wire.I deadline_ms) :: !fields;
      fields := ("op", Server.Wire.S op) :: !fields;
      add "id" id;
      Server.Wire.obj !fields
    in
    if op = None && raws = [] then begin
      Printf.eprintf "error: nothing to send; pass OP or --raw LINE\n";
      exit 2
    end;
    let failed = ref false in
    (try
       Server.Client.with_conn addr (fun c ->
           let exec line =
             match Server.Client.request c line with
             | Some resp ->
                 print_endline resp;
                 if contains_substring resp "\"ok\":false" then failed := true
             | None ->
                 Printf.eprintf "error: server closed the connection\n";
                 failed := true
           in
           List.iter exec raws;
           Option.iter (fun op -> exec (build op)) op)
     with
     | Failure msg ->
         Printf.eprintf "error: %s\n" msg;
         exit 2
     | Unix.Unix_error (e, fn, _) ->
         Printf.eprintf "error: cannot connect: %s (%s)\n"
           (Unix.error_message e) fn;
         exit 2);
    if !failed then exit 1
  in
  let doc =
    "Send one request (plus any --raw probe lines, on the same connection) \
     to a running 'certainty serve' and print the response lines; exits \
     nonzero if any response is an error."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const run $ socket_arg $ port_arg $ host_arg $ op_arg $ schema_arg
          $ db_arg $ query_arg $ constraints_arg $ tuple_arg $ ks_arg
          $ capprox_arg $ cseed_arg $ cstratify_arg $ scheme_arg
          $ action_arg $ relation_arg $ deadline_arg $ id_arg $ raw_arg)

let router_cmd =
  let shards_arg =
    let doc =
      "Backend shard address (repeatable, in ring order): host:port for TCP, \
       anything else a Unix socket path. The ring is built from every \
       configured shard; liveness is probed, not configured."
    in
    Arg.(value & opt_all string [] & info [ "shard" ] ~docv:"ADDR" ~doc)
  in
  let replicas_arg =
    let doc =
      "Read replicas per session: reads round-robin over the session's \
       $(docv) first live ring successors; updates go to the primary and \
       are forwarded to the rest in order."
    in
    Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"R" ~doc)
  in
  let window_arg =
    let doc = "Bound on in-flight requests per shard." in
    Arg.(value & opt int 32 & info [ "window" ] ~docv:"N" ~doc)
  in
  let fail_threshold_arg =
    let doc = "Consecutive health-probe failures before a shard is ejected." in
    Arg.(value & opt int 3 & info [ "fail-threshold" ] ~docv:"K" ~doc)
  in
  let probe_interval_arg =
    let doc = "Seconds between health-probe rounds." in
    Arg.(value & opt float 0.25 & info [ "probe-interval" ] ~docv:"SECONDS" ~doc)
  in
  let shard_timeout_arg =
    let doc =
      "Bound in seconds on any single shard conversation (send and receive); \
       past it the request fails over or returns shard_unavailable instead \
       of hanging."
    in
    Arg.(value & opt float 30.0 & info [ "shard-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let drain_grace_arg =
    let doc =
      "Seconds the rolling drain waits for each shard's in-flight window to \
       empty before closing its connections."
    in
    Arg.(value & opt float 30.0 & info [ "drain-grace" ] ~docv:"SECONDS" ~doc)
  in
  let run socket port host shards replicas window fail_threshold probe_interval
      shard_timeout drain_grace metrics metrics_json trace =
    with_obs ~metrics ~metrics_json ~trace @@ fun () ->
    let addr = addr_of ~socket ~port ~host in
    if shards = [] then begin
      Printf.eprintf "error: pass at least one --shard ADDR\n";
      exit 2
    end;
    let shard_addrs =
      List.map
        (fun s ->
          match Shard.Router.parse_addr s with
          | Ok a -> a
          | Error msg ->
              Printf.eprintf "error: bad --shard %s: %s\n" s msg;
              exit 2)
        shards
    in
    let cfg =
      { (Shard.Router.default_config ~addr ~shards:shard_addrs) with
        replicas;
        window;
        fail_threshold;
        probe_interval_s = probe_interval;
        shard_timeout_s = shard_timeout;
        drain_grace_s = drain_grace
      }
    in
    Printf.eprintf "certainty: routing %d shard(s) on %s\n%!"
      (List.length shards)
      (Server.Daemon.addr_string addr);
    match Shard.Router.run ~signals:true cfg with
    | () -> ()
    | exception Invalid_argument msg | exception Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | exception Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "error: cannot route: %s (%s)\n" (Unix.error_message e)
          fn;
        exit 2
  in
  let doc =
    "Run the sharded serving tier's front router: consistent-hash the \
     (schema, db) session key of every wire-protocol request onto a ring of \
     backend 'certainty serve' shards, with health-gated membership, \
     replicated reads, ordered update forwarding, and typed \
     shard_unavailable errors. Clients speak the exact same protocol as to \
     a single daemon."
  in
  Cmd.v (Cmd.info "router" ~doc)
    Term.(const run $ socket_arg $ port_arg $ host_arg $ shards_arg
          $ replicas_arg $ window_arg $ fail_threshold_arg
          $ probe_interval_arg $ shard_timeout_arg $ drain_grace_arg
          $ metrics_arg $ metrics_json_arg $ trace_arg)

let default =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let doc =
    "measures of certainty for query answering over incomplete databases \
     (Libkin, PODS 2018)"
  in
  let info = Cmd.info "certainty" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ analyze_cmd; naive_cmd; certain_cmd; measure_cmd; conditional_cmd; best_cmd;
            approx_cmd; datalog_cmd; chase_cmd; sat_cmd; trace_check_cmd;
            serve_cmd; router_cmd; client_cmd ]))
