(* Static analysis as a gate: catch a non-generic query before spending
   exponential time measuring it, then read the classifier's dispatch
   facts programmatically.

   The measures of the paper are built on genericity (Theorem 1 needs
   it), and the brute-force kernels visit k^m valuations. Both failure
   modes — a query that silently mentions a constant, and a database
   with too many nulls — are static properties, so we can refuse (or
   reroute) before evaluating anything.

   Run with:  dune exec examples/static_analysis.exe *)

module Instance = Relational.Instance
module Parser = Logic.Parser
module Fragment = Logic.Fragment
module Diag = Analysis.Diag
module Report = Analysis.Report

let schema = Parser.schema_exn "Orders(customer, product); Stock(product)"

let db =
  Parser.instance_exn schema
    "Orders = { ('c1', ~1), ('c2', 'p2') }; Stock = { ('p2'), (~2) }"

(* The gate: analyze, print findings, and only call [measure] when the
   report is clean. This is exactly what `certainty ... --strict`
   does. *)
let gated name q measure =
  Printf.printf "-- %s: %s\n" name (Logic.Query.to_string q);
  let r = Report.analyze ~inst:db schema q in
  List.iter
    (fun d -> Printf.printf "   %s\n" (Diag.to_string d))
    (Diag.sort r.Report.diags);
  if Report.has_errors r then
    print_endline "   refused: fix the query before measuring.\n"
  else begin
    Printf.printf "   fragment %s; analysis clean — measuring.\n"
      (Fragment.fragment_name r.Report.fragment);
    measure ();
    print_newline ()
  end

let () =
  (* A non-generic query: the constant 'p2' anchors the random
     valuations, so the unconditional 0-1 law does not apply. The gate
     refuses it (error ANL002) without evaluating anything. *)
  let bad = Parser.query_exn "Q(x) := Orders(x, 'p2')" in
  gated "non-generic" bad (fun () -> assert false);

  (* The generic repair: make the product an answer variable and let
     the caller select. The analysis is clean, and the classifier also
     tells us the query is a CQ, so the naive fast path inside
     [certain_answers] applies (Corollary 3) — dispatch the analysis
     already decided for us. *)
  let good = Parser.query_exn "Q(x, y) := Orders(x, y) & Stock(y)" in
  gated "generic repair" good (fun () ->
      let certain = Incomplete.Certain.certain_answers db good in
      let naive = Incomplete.Naive.answers db good in
      Printf.printf "   certain answers: %d tuple(s); almost-certain: %d\n"
        (Relational.Relation.cardinal certain)
        (Relational.Relation.cardinal naive));

  (* The cost analysis is a plain record: use it to pick between the
     enumerating and symbolic paths in your own code. *)
  let r = Report.analyze ~inst:db schema good in
  (match r.Report.cost with
  | None -> ()
  | Some c ->
      Printf.printf
        "valuation space: %d null(s), |V^k| = %s at k = %d — %s\n"
        c.Analysis.Cost.nulls
        (Arith.Bigint.to_string c.Analysis.Cost.space)
        c.Analysis.Cost.k
        (match c.Analysis.Cost.machine with
        | Some _ -> "enumerable"
        | None -> "overflow: symbolic path only"));

  (* ---------------------------------------------------------------- *)
  (* Decomposition: when the support sentence splits into independent  *)
  (* null blocks, µ^k factorizes and the k^m sweep collapses.          *)
  (* ---------------------------------------------------------------- *)
  print_newline ();
  let dschema = Parser.schema_exn "R1(a, b); R2(a, b); S1(a, b); S2(a, b)" in
  let ddb =
    Parser.instance_exn dschema
      "R1 = { ('c1', ~1), ('c2', ~2), ('c3', ~3) }; R2 = { ('c1', ~2) }; S1 \
       = { ('d1', ~4), ('d2', ~5), ('d3', ~6) }; S2 = { ('d1', ~5) }"
  in
  (* Each guarded conjunct touches one block: nulls ~1..~3 never meet
     ~4..~6, so the interaction graph has two components. *)
  let dq =
    Parser.query_exn "Q() := (exists x. R1(x, x)) & (exists y. S1(y, y))"
  in
  let sentence = Logic.Query.instantiate dq Relational.Tuple.empty in
  let cert = Analysis.Decomp.analyze ddb sentence in
  Printf.printf "-- decomposable: %s\n" (Logic.Query.to_string dq);
  Printf.printf "   verdict: %s — %d part(s), %s\n"
    (Analysis.Decomp.verdict_string cert.Analysis.Decomp.verdict)
    (Analysis.Decomp.parts cert)
    (Analysis.Decomp.sizes_string cert);
  (match Analysis.Decomp.plan cert with
  | None -> print_endline "   no sound plan: monolithic sweep only"
  | Some plan ->
      (* The certificate is what makes the shortcut safe: the
         factorized evaluator multiplies per-component measures and is
         bit-identical to the monolithic k^m sweep. *)
      let k = 5 in
      let mono = Incomplete.Support.mu_k ddb dq Relational.Tuple.empty ~k in
      let fact = Incomplete.Support.mu_k_plan ddb plan ~k in
      Printf.printf "   µ^%d monolithic (k^6 sweep)  = %s\n" k
        (Arith.Rat.to_string mono);
      Printf.printf "   µ^%d factorized (2·k^3 sweep) = %s  [%s]\n" k
        (Arith.Rat.to_string fact)
        (if Arith.Rat.compare mono fact = 0 then "identical" else "MISMATCH"));

  (* ---------------------------------------------------------------- *)
  (* Chase termination: the weak-acyclicity certificate decides        *)
  (* statically whether the TGD chase needs a step budget.             *)
  (* ---------------------------------------------------------------- *)
  print_newline ();
  let report sch deps =
    match Analysis.Classify.chase_strategy sch deps with
    | Analysis.Classify.Fd_chase ->
        print_endline "   FD-only: the chase always terminates"
    | Analysis.Classify.Terminating_chase w ->
        Printf.printf
          "   ANL306: weakly acyclic (%d regular, %d special edge(s)) — \
           chase to a fixpoint, no budget\n"
          w.Constraints.Wacyclic.n_regular w.Constraints.Wacyclic.n_special
    | Analysis.Classify.Bounded_chase w ->
        Printf.printf "   ANL307: %s — bounded runs only\n"
          (Constraints.Wacyclic.verdict_string w)
  in
  let acyclic = [ Constraints.Dependency.ind "R2" [ 0 ] "R1" [ 0 ] ] in
  Printf.printf "-- dependencies: R2[1] ⊆ R1[1]\n";
  report dschema acyclic;
  (* The same shape turned self-feeding: copying E's second column back
     into its first closes a cycle through the special edge, so no
     static termination proof exists. *)
  let esch = Parser.schema_exn "E(a, b)" in
  let cyclic = [ Constraints.Dependency.ind "E" [ 1 ] "E" [ 0 ] ] in
  Printf.printf "-- dependencies: E[2] ⊆ E[1]\n";
  report esch cyclic
