(* Static analysis as a gate: catch a non-generic query before spending
   exponential time measuring it, then read the classifier's dispatch
   facts programmatically.

   The measures of the paper are built on genericity (Theorem 1 needs
   it), and the brute-force kernels visit k^m valuations. Both failure
   modes — a query that silently mentions a constant, and a database
   with too many nulls — are static properties, so we can refuse (or
   reroute) before evaluating anything.

   Run with:  dune exec examples/static_analysis.exe *)

module Instance = Relational.Instance
module Parser = Logic.Parser
module Fragment = Logic.Fragment
module Diag = Analysis.Diag
module Report = Analysis.Report

let schema = Parser.schema_exn "Orders(customer, product); Stock(product)"

let db =
  Parser.instance_exn schema
    "Orders = { ('c1', ~1), ('c2', 'p2') }; Stock = { ('p2'), (~2) }"

(* The gate: analyze, print findings, and only call [measure] when the
   report is clean. This is exactly what `certainty ... --strict`
   does. *)
let gated name q measure =
  Printf.printf "-- %s: %s\n" name (Logic.Query.to_string q);
  let r = Report.analyze ~inst:db schema q in
  List.iter
    (fun d -> Printf.printf "   %s\n" (Diag.to_string d))
    (Diag.sort r.Report.diags);
  if Report.has_errors r then
    print_endline "   refused: fix the query before measuring.\n"
  else begin
    Printf.printf "   fragment %s; analysis clean — measuring.\n"
      (Fragment.fragment_name r.Report.fragment);
    measure ();
    print_newline ()
  end

let () =
  (* A non-generic query: the constant 'p2' anchors the random
     valuations, so the unconditional 0-1 law does not apply. The gate
     refuses it (error ANL002) without evaluating anything. *)
  let bad = Parser.query_exn "Q(x) := Orders(x, 'p2')" in
  gated "non-generic" bad (fun () -> assert false);

  (* The generic repair: make the product an answer variable and let
     the caller select. The analysis is clean, and the classifier also
     tells us the query is a CQ, so the naive fast path inside
     [certain_answers] applies (Corollary 3) — dispatch the analysis
     already decided for us. *)
  let good = Parser.query_exn "Q(x, y) := Orders(x, y) & Stock(y)" in
  gated "generic repair" good (fun () ->
      let certain = Incomplete.Certain.certain_answers db good in
      let naive = Incomplete.Naive.answers db good in
      Printf.printf "   certain answers: %d tuple(s); almost-certain: %d\n"
        (Relational.Relation.cardinal certain)
        (Relational.Relation.cardinal naive));

  (* The cost analysis is a plain record: use it to pick between the
     enumerating and symbolic paths in your own code. *)
  let r = Report.analyze ~inst:db schema good in
  match r.Report.cost with
  | None -> ()
  | Some c ->
      Printf.printf
        "valuation space: %d null(s), |V^k| = %s at k = %d — %s\n"
        c.Analysis.Cost.nulls
        (Arith.Bigint.to_string c.Analysis.Cost.space)
        c.Analysis.Cost.k
        (match c.Analysis.Cost.machine with
        | Some _ -> "enumerable"
        | None -> "overflow: symbolic path only")
