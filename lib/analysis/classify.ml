module Fragment = Logic.Fragment
module Dep = Constraints.Dependency

type fragment = Fragment.fragment

let fragment (q : Logic.Query.t) = Fragment.classify q.Logic.Query.body

type constraint_class = {
  n_constraints : int;
  fd_only : bool;
  unary_keys_fks : bool;
}

let constraint_class deps =
  let fd_only =
    List.for_all
      (function Dep.Fd _ | Dep.Key _ -> true | Dep.Ind _ | Dep.ForeignKey _ -> false)
      deps
  in
  let unary_keys_fks =
    List.for_all
      (function
        | Dep.Key { Dep.key_cols = [ _ ]; _ }
        | Dep.ForeignKey { Dep.fk_src_cols = [ _ ]; fk_dst_cols = [ _ ]; _ } ->
            true
        | _ -> false)
      deps
  in
  { n_constraints = List.length deps; fd_only; unary_keys_fks }

let dispatch_hints ?deps q =
  let fr = fragment q in
  let query_hints =
    (if Fragment.naive_eval_sound fr then
       [ Diag.hint ~code:"ANL301" ~loc:"dispatch"
           (Printf.sprintf
              "%s ⊆ Pos∀G: naive evaluation computes certain answers \
               (Corollary 3) — no valuation enumeration needed"
              (Fragment.fragment_name fr))
       ]
     else [])
    @
    if Fragment.leq fr Fragment.Ucq then
      [ Diag.hint ~code:"ANL302" ~loc:"dispatch"
          (Printf.sprintf
             "%s ⊆ UCQ: support comparisons and best answers run in \
              polynomial time (Theorem 8)"
             (Fragment.fragment_name fr))
      ]
    else []
  in
  let constraint_hints =
    match deps with
    | None -> []
    | Some deps ->
        let c = constraint_class deps in
        (if c.fd_only then
           [ Diag.hint ~code:"ANL303" ~loc:"dispatch"
               "constraints are FD-only: the chase computes µ(Q|Σ) for \
                null-free tuples (Theorem 5) — no support counting"
           ]
         else [])
        @ (if c.unary_keys_fks then
             [ Diag.hint ~code:"ANL304" ~loc:"dispatch"
                 "unary keys + foreign keys: satisfiability is decidable in \
                  polynomial time (Proposition 6)"
             ]
           else [])
        @
        if (not c.fd_only) && not c.unary_keys_fks then
          [ Diag.hint ~code:"ANL305" ~loc:"dispatch"
              "constraint set is neither FD-only nor unary keys+FKs: only \
               the generic (exponential) procedures apply"
          ]
        else []
  in
  query_hints @ constraint_hints
