module Fragment = Logic.Fragment
module Dep = Constraints.Dependency

type fragment = Fragment.fragment

let fragment (q : Logic.Query.t) = Fragment.classify q.Logic.Query.body

type constraint_class = {
  n_constraints : int;
  fd_only : bool;
  unary_keys_fks : bool;
}

let constraint_class deps =
  let fd_only =
    List.for_all
      (function Dep.Fd _ | Dep.Key _ -> true | Dep.Ind _ | Dep.ForeignKey _ -> false)
      deps
  in
  let unary_keys_fks =
    List.for_all
      (function
        | Dep.Key { Dep.key_cols = [ _ ]; _ }
        | Dep.ForeignKey { Dep.fk_src_cols = [ _ ]; fk_dst_cols = [ _ ]; _ } ->
            true
        | _ -> false)
      deps
  in
  { n_constraints = List.length deps; fd_only; unary_keys_fks }

type chase_class =
  | Fd_chase
  | Terminating_chase of Constraints.Wacyclic.t
  | Bounded_chase of Constraints.Wacyclic.t

let chase_strategy schema deps =
  let c = constraint_class deps in
  if c.fd_only then Fd_chase
  else
    let cert = Constraints.Wacyclic.check schema deps in
    if Constraints.Wacyclic.is_weakly_acyclic cert then Terminating_chase cert
    else Bounded_chase cert

let termination_hints schema deps =
  match chase_strategy schema deps with
  | Fd_chase -> []
  | Terminating_chase cert ->
      [ Diag.hint ~code:"ANL306" ~loc:"dispatch"
          (Printf.sprintf
             "dependency set is weakly acyclic (%d regular, %d special \
              edges, no special cycle): the chase terminates on every \
              instance — static certificate, no step budget"
             cert.Constraints.Wacyclic.n_regular
             cert.Constraints.Wacyclic.n_special)
      ]
  | Bounded_chase cert ->
      [ Diag.warning ~code:"ANL307" ~loc:"dispatch"
          ~hint:"only bounded chase runs are sound; raise --max-steps with care"
          (Printf.sprintf
             "dependency set has a special-edge cycle (%s): chase \
              termination is not guaranteed"
             (Constraints.Wacyclic.cycle_string cert))
      ]

let dispatch_hints ?deps ?schema q =
  let fr = fragment q in
  let query_hints =
    (if Fragment.naive_eval_sound fr then
       [ Diag.hint ~code:"ANL301" ~loc:"dispatch"
           (Printf.sprintf
              "%s ⊆ Pos∀G: naive evaluation computes certain answers \
               (Corollary 3) — no valuation enumeration needed"
              (Fragment.fragment_name fr))
       ]
     else [])
    @
    if Fragment.leq fr Fragment.Ucq then
      [ Diag.hint ~code:"ANL302" ~loc:"dispatch"
          (Printf.sprintf
             "%s ⊆ UCQ: support comparisons and best answers run in \
              polynomial time (Theorem 8)"
             (Fragment.fragment_name fr))
      ]
    else []
  in
  let constraint_hints =
    match deps with
    | None -> []
    | Some deps ->
        let c = constraint_class deps in
        (if c.fd_only then
           [ Diag.hint ~code:"ANL303" ~loc:"dispatch"
               "constraints are FD-only: the chase computes µ(Q|Σ) for \
                null-free tuples (Theorem 5) — no support counting"
           ]
         else [])
        @ (if c.unary_keys_fks then
             [ Diag.hint ~code:"ANL304" ~loc:"dispatch"
                 "unary keys + foreign keys: satisfiability is decidable in \
                  polynomial time (Proposition 6)"
             ]
           else [])
        @
        (if (not c.fd_only) && not c.unary_keys_fks then
           [ Diag.hint ~code:"ANL305" ~loc:"dispatch"
               "constraint set is neither FD-only nor unary keys+FKs: only \
                the generic (exponential) procedures apply"
           ]
         else [])
        @
        match schema with
        | Some schema when not c.fd_only -> termination_hints schema deps
        | _ -> []
  in
  query_hints @ constraint_hints
