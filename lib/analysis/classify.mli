(** The fragment classifier and its dispatch consequences.

    This is the routing brain of the system: it names the tightest
    syntactic fragment a query lives in and the tractable class a
    constraint set falls into, and spells out which of the paper's
    algorithmic shortcuts those memberships unlock. Engine code
    ({!Incomplete.Certain}, {!Zeroone.Conditional}, the CLI) consults
    this module instead of re-deriving fragment facts ad hoc. *)

type fragment = Logic.Fragment.fragment

val fragment : Logic.Query.t -> fragment
(** Tightest fragment of the query body ({!Logic.Fragment.classify}). *)

type constraint_class = {
  n_constraints : int;
  fd_only : bool;
      (** only functional dependencies and keys: the chase shortcut of
          Theorem 5 computes [µ(Q|Σ)] for null-free tuples *)
  unary_keys_fks : bool;
      (** only unary keys and unary foreign keys: satisfiability is
          polynomial (Proposition 6, {!Constraints.Sat.unary_keys_fks}) *)
}

val constraint_class : Constraints.Dependency.t list -> constraint_class
(** Both flags hold vacuously for the empty set. *)

val dispatch_hints :
  ?deps:Constraints.Dependency.t list -> Logic.Query.t -> Diag.t list
(** The paper-backed consequences as hint diagnostics: ANL301 (naïve
    evaluation sound, Corollary 3), ANL302 (UCQ polynomial comparisons,
    Theorem 8), and — when [?deps] is given — ANL303 (chase shortcut,
    Theorem 5), ANL304 (Proposition 6 satisfiability) or ANL305
    (generic procedures only). *)
