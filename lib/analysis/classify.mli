(** The fragment classifier and its dispatch consequences.

    This is the routing brain of the system: it names the tightest
    syntactic fragment a query lives in and the tractable class a
    constraint set falls into, and spells out which of the paper's
    algorithmic shortcuts those memberships unlock. Engine code
    ({!Incomplete.Certain}, {!Zeroone.Conditional}, the CLI) consults
    this module instead of re-deriving fragment facts ad hoc. *)

type fragment = Logic.Fragment.fragment

val fragment : Logic.Query.t -> fragment
(** Tightest fragment of the query body ({!Logic.Fragment.classify}). *)

type constraint_class = {
  n_constraints : int;
  fd_only : bool;
      (** only functional dependencies and keys: the chase shortcut of
          Theorem 5 computes [µ(Q|Σ)] for null-free tuples *)
  unary_keys_fks : bool;
      (** only unary keys and unary foreign keys: satisfiability is
          polynomial (Proposition 6, {!Constraints.Sat.unary_keys_fks}) *)
}

val constraint_class : Constraints.Dependency.t list -> constraint_class
(** Both flags hold vacuously for the empty set. *)

type chase_class =
  | Fd_chase
      (** EGD-only set: the FD chase always terminates (each step
          removes a null or fails) — no certificate needed *)
  | Terminating_chase of Constraints.Wacyclic.t
      (** TGDs present but weakly acyclic: {!Constraints.Chase.chase_tgds}
          reaches a fixpoint on every instance — run it uncapped *)
  | Bounded_chase of Constraints.Wacyclic.t
      (** special-edge cycle: only bounded chase runs are sound *)

val chase_strategy :
  Relational.Schema.t -> Constraints.Dependency.t list -> chase_class
(** The dispatch decision the chase front ends consume: which chase to
    run and whether a step budget is required, backed by the static
    weak-acyclicity certificate ({!Constraints.Wacyclic.check}). *)

val termination_hints :
  Relational.Schema.t -> Constraints.Dependency.t list -> Diag.t list
(** ANL306 (weakly acyclic: chase terminates on every instance) or
    ANL307 (special-edge cycle: bounded runs only); empty for EGD-only
    sets, where ANL303 already covers termination. *)

val dispatch_hints :
  ?deps:Constraints.Dependency.t list ->
  ?schema:Relational.Schema.t ->
  Logic.Query.t ->
  Diag.t list
(** The paper-backed consequences as hint diagnostics: ANL301 (naïve
    evaluation sound, Corollary 3), ANL302 (UCQ polynomial comparisons,
    Theorem 8), and — when [?deps] is given — ANL303 (chase shortcut,
    Theorem 5), ANL304 (Proposition 6 satisfiability) or ANL305
    (generic procedures only), plus — when [?schema] is also given and
    the set has TGDs — the {!termination_hints}. *)
