module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Enumerate = Incomplete.Enumerate
module B = Arith.Bigint

type t = {
  nulls : int;
  k : int;
  space : B.t;
  machine : int option;
}

let big_space_threshold = 1_000_000

let analyse ?k ?tuple inst =
  let nulls =
    List.sort_uniq Int.compare
      (Instance.nulls inst
      @ match tuple with None -> [] | Some t -> Tuple.nulls t)
  in
  (* Content-determined default: |Const(D)| + 16, never the max intern
     code. Intern codes are assigned in process arrival order, so a
     max-code default would make the reported cost depend on what else
     the process has served — a long-lived daemon (or a differently
     loaded shard behind a router) would report different k, space and
     machine figures for the very same database. *)
  let k =
    match k with Some k -> max 1 k | None -> Instance.constant_count inst + 16
  in
  { nulls = List.length nulls;
    k;
    space = Enumerate.count ~nulls ~k;
    machine = Enumerate.space_size ~nulls ~k
  }

(* The largest independent sweep a sound decomposition leaves: what
   enumeration cost the engine actually pays. [None] when the
   certificate is indecomposable (or absent) — then the monolithic
   k^m stands. *)
let largest_component (d : Decomp.t) =
  match d.Decomp.verdict with
  | Decomp.Indecomposable _ -> None
  | Decomp.Decomposable | Decomp.Trivial ->
      let largest =
        List.fold_left
          (fun acc ((c : Incomplete.Factor.component), (space, machine)) ->
            let nulls = List.length c.Incomplete.Factor.c_nulls in
            match acc with
            | Some (n, _, _) when n >= nulls -> acc
            | _ -> Some (nulls, space, machine))
          None
          (List.combine d.Decomp.components
             (List.combine d.Decomp.spaces d.Decomp.machines))
      in
      (* No components: the sentence reads no nulls; one sweep of the
         empty valuation decides it. *)
      Some (Option.value largest ~default:(0, B.one, Some 1))

let diagnostics ?decomp c =
  let post = Option.bind decomp largest_component in
  match (c.machine, post) with
  | None, None ->
      [ Diag.warning ~code:"ANL201" ~loc:"cost"
          ~hint:
            "exhaustive enumeration cannot terminate; use the symbolic \
             support-polynomial path (measure's µ_symbolic) which is \
             polynomial in k"
          (Printf.sprintf
             "valuation space blows up: k^m = %d^%d = %s overflows machine \
              integers"
             c.k c.nulls (B.to_string c.space))
      ]
  | None, Some (nulls, space, None) ->
      (* Decomposed, but the largest component alone still overflows:
         only that component needs --approx (ANL403 names it). *)
      [ Diag.warning ~code:"ANL201" ~loc:"cost"
          ~hint:
            "route the oversized component to --approx; the other \
             components stay exact"
          (Printf.sprintf
             "valuation space blows up even after decomposition: largest \
              component k^m_i = %d^%d = %s overflows machine integers"
             c.k nulls (B.to_string space))
      ]
  | None, Some (nulls, _, Some n) ->
      (* The decomposition rescued an exact sweep the monolithic bound
         had written off. *)
      if n > big_space_threshold then
        [ Diag.hint ~code:"ANL202" ~loc:"cost"
            ~hint:"pass --jobs 0 to sweep valuations on parallel domains"
            (Printf.sprintf
               "large valuation space: largest component k^m_i = %d^%d = %d \
                valuations per sweep (monolithic k^%d overflows)"
               c.k nulls n c.nulls)
        ]
      else []
  | Some _, Some (nulls, _, Some n) when n > big_space_threshold ->
      [ Diag.hint ~code:"ANL202" ~loc:"cost"
          ~hint:"pass --jobs 0 to sweep valuations on parallel domains"
          (Printf.sprintf
             "large valuation space: largest component k^m_i = %d^%d = %d \
              valuations per sweep"
             c.k nulls n)
      ]
  | Some _, Some _ -> []
  | Some n, None when n > big_space_threshold ->
      [ Diag.hint ~code:"ANL202" ~loc:"cost"
          ~hint:"pass --jobs 0 to sweep valuations on parallel domains"
          (Printf.sprintf
             "large valuation space: k^m = %d^%d = %d valuations per sweep"
             c.k c.nulls n)
      ]
  | Some _, None -> []

let to_json c =
  Printf.sprintf
    "{\"nulls\": %d, \"k\": %d, \"space\": %s, \"overflow\": %b%s}" c.nulls
    c.k
    (Diag.json_string (B.to_string c.space))
    (c.machine = None)
    (match c.machine with
    | None -> ""
    | Some n -> Printf.sprintf ", \"machine\": %d" n)
