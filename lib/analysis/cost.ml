module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Enumerate = Incomplete.Enumerate
module B = Arith.Bigint

type t = {
  nulls : int;
  k : int;
  space : B.t;
  machine : int option;
}

let big_space_threshold = 1_000_000

let analyse ?k ?tuple inst =
  let nulls =
    List.sort_uniq Int.compare
      (Instance.nulls inst
      @ match tuple with None -> [] | Some t -> Tuple.nulls t)
  in
  let k =
    match k with Some k -> max 1 k | None -> Instance.max_constant inst + 16
  in
  { nulls = List.length nulls;
    k;
    space = Enumerate.count ~nulls ~k;
    machine = Enumerate.space_size ~nulls ~k
  }

let diagnostics c =
  match c.machine with
  | None ->
      [ Diag.warning ~code:"ANL201" ~loc:"cost"
          ~hint:
            "exhaustive enumeration cannot terminate; use the symbolic \
             support-polynomial path (measure's µ_symbolic) which is \
             polynomial in k"
          (Printf.sprintf
             "valuation space blows up: k^m = %d^%d = %s overflows machine \
              integers"
             c.k c.nulls (B.to_string c.space))
      ]
  | Some n when n > big_space_threshold ->
      [ Diag.hint ~code:"ANL202" ~loc:"cost"
          ~hint:"pass --jobs 0 to sweep valuations on parallel domains"
          (Printf.sprintf
             "large valuation space: k^m = %d^%d = %d valuations per sweep"
             c.k c.nulls n)
      ]
  | Some _ -> []

let to_json c =
  Printf.sprintf
    "{\"nulls\": %d, \"k\": %d, \"space\": %s, \"overflow\": %b%s}" c.nulls
    c.k
    (Diag.json_string (B.to_string c.space))
    (c.machine = None)
    (match c.machine with
    | None -> ""
    | Some n -> Printf.sprintf ", \"machine\": %d" n)
