(** Cost analysis of the brute-force valuation sweeps.

    The exhaustive computations ([µ^k], certain/possible answers by
    class enumeration, generic satisfiability) visit up to [k^m]
    valuations for [m] nulls. This module bounds that space through
    {!Incomplete.Enumerate.space_size}/{!Incomplete.Enumerate.count}
    and turns the bound into diagnostics: a blow-up warning when [k^m]
    overflows machine integers (exhaustive enumeration is hopeless;
    the symbolic support-polynomial path is the only exact option) and
    a parallelism hint when the space is large but tractable. *)

type t = {
  nulls : int;  (** [m], counting nulls of the database and the tuple *)
  k : int;  (** the sampled domain size for the concrete bound *)
  space : Arith.Bigint.t;  (** [k^m], exact *)
  machine : int option;  (** [k^m] as a machine int, [None] on overflow *)
}

val big_space_threshold : int
(** Above this many valuations the ANL202 parallelism hint fires. *)

val analyse :
  ?k:int -> ?tuple:Relational.Tuple.t -> Relational.Instance.t -> t
(** [k] defaults to [Instance.max_constant + 16], the largest domain of
    the CLI's default [µ^k] series. *)

val diagnostics : ?decomp:Decomp.t -> t -> Diag.t list
(** ANL201 (overflow) or ANL202 (large but machine-representable);
    empty when the space is small. With a decomposition certificate
    the bounds are post-decomposition: the largest component's space
    replaces the monolithic [k^m], so ANL201 only fires when a
    component is genuinely over the frontier and the [--approx] hint
    targets that component alone. *)

val to_json : t -> string
