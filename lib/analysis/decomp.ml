module Formula = Logic.Formula
module Instance = Relational.Instance
module Relation = Relational.Relation
module Factor = Incomplete.Factor
module Split = Incomplete.Split
module Enumerate = Incomplete.Enumerate
module B = Arith.Bigint

type verdict =
  | Decomposable
  | Trivial
  | Indecomposable of string

type t = {
  verdict : verdict;
  components : Factor.component list;
  free_nulls : int list;
  all_nulls : int list;
  k : int;
  spaces : B.t list;  (** per component, k^mᵢ *)
  machines : int option list;
}

let default_k inst = Instance.max_constant inst + 16

(* A quantified component must evaluate over a provably nonempty
   domain: its restricted base constants, its formula constants, or a
   null whose image lands in the domain. The fresh-extension lemma
   behind [Factor.dsafe] silently assumes nonemptiness (∀ over the
   empty domain is true, falsified-for-all is not false there), so an
   empty-domain candidate is not factored. *)
let component_domain_nonempty inst (c : Factor.component) =
  c.Factor.c_nulls <> []
  || Formula.constants c.Factor.c_sentence <> []
  || List.exists
       (fun r -> Relation.constants (Instance.relation inst r) <> [])
       c.Factor.c_relations

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let analyze ?k ?(extra_nulls = []) inst sentence =
  Obs.Trace.span "analysis.decomp" @@ fun () ->
  Obs.Metrics.incr Obs.Metrics.decomp_plans;
  let k = match k with Some k -> max 1 k | None -> default_k inst in
  let split = Split.of_instance inst in
  let all_nulls =
    List.sort_uniq Int.compare (Split.nulls split @ extra_nulls)
  in
  let graph = Depgraph.build ~all_nulls split sentence in
  let finish verdict components free_nulls =
    (match verdict with
    | Indecomposable _ -> Obs.Metrics.incr Obs.Metrics.decomp_indecomposable
    | Decomposable | Trivial ->
        Obs.Metrics.add Obs.Metrics.decomp_components (List.length components));
    { verdict;
      components;
      free_nulls;
      all_nulls;
      k;
      spaces = List.map (fun c -> Factor.component_space c ~k) components;
      machines =
        List.map
          (fun (c : Factor.component) ->
            Enumerate.space_size ~nulls:c.Factor.c_nulls ~k)
          components
    }
  in
  if not (Formula.is_sentence sentence) then
    finish (Indecomposable "open formula: free variables left") [] []
  else if not (subset (Formula.nulls sentence) all_nulls) then
    finish
      (Indecomposable "sentence mentions nulls outside the valuation space")
      [] []
  else
    match Depgraph.first_unsafe graph with
    | Some node ->
        finish
          (Indecomposable
             (Printf.sprintf
                "conjunct %s has an unguarded quantifier (domain-dependent)"
                (Formula.to_string node.Depgraph.n_sentence)))
          [] []
    | None ->
        let components = Depgraph.components graph in
        if
          List.exists
            (fun c ->
              Factor.has_quantifier c.Factor.c_sentence
              && not (component_domain_nonempty inst c))
            components
        then
          finish
            (Indecomposable
               "a quantified component has an empty evaluation domain")
            [] []
        else
          let free = Depgraph.free_nulls graph components in
          let verdict =
            if List.length components + (if free = [] then 0 else 1) >= 2
            then Decomposable
            else Trivial
          in
          finish verdict components free

let plan cert =
  match cert.verdict with
  | Indecomposable _ -> None
  | Decomposable | Trivial ->
      Some
        { Factor.components = cert.components;
          free_nulls = cert.free_nulls;
          all_nulls = cert.all_nulls
        }

let parts cert =
  List.length cert.components + if cert.free_nulls = [] then 0 else 1

let verdict_string = function
  | Decomposable -> "decomposable"
  | Trivial -> "trivial"
  | Indecomposable _ -> "indecomposable"

let sizes_string cert =
  String.concat " + "
    (List.map
       (fun (c : Factor.component) ->
         Printf.sprintf "%d^%d" cert.k (List.length c.Factor.c_nulls))
       cert.components
    @ if cert.free_nulls = [] then []
      else [ Printf.sprintf "%d^%d free" cert.k (List.length cert.free_nulls) ])

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let diagnostics cert =
  match cert.verdict with
  | Indecomposable reason ->
      [ Diag.hint ~code:"ANL402" ~loc:"decomp"
          (Printf.sprintf
             "support sentence does not decompose: %s — the monolithic k^%d \
              sweep stands"
             reason
             (List.length cert.all_nulls))
      ]
  | Trivial ->
      [ Diag.hint ~code:"ANL402" ~loc:"decomp"
          (Printf.sprintf
             "no decomposition win: a single interaction component spans all \
              %d nulls"
             (List.length cert.all_nulls))
      ]
  | Decomposable ->
      let m = List.length cert.all_nulls in
      let overflowing =
        List.filteri
          (fun _ (machine : int option) -> machine = None)
          cert.machines
      in
      Diag.hint ~code:"ANL401" ~loc:"decomp"
        ~hint:
          "factorized evaluation multiplies exact per-component measures — \
           bit-identical to the monolithic sweep at a fraction of the cost"
        (Printf.sprintf
           "support sentence decomposes into %d independent part%s: k^%d \
            collapses to %s"
           (parts cert)
           (if parts cert = 1 then "" else "s")
           m (sizes_string cert))
      ::
      (if overflowing = [] then []
       else
         List.concat
           (List.mapi
              (fun i (machine, (c : Factor.component)) ->
                if machine <> None then []
                else
                  [ Diag.warning ~code:"ANL403" ~loc:"decomp"
                      ~hint:
                        "pass --approx EPS,DELTA: the estimator samples \
                         oversized components and keeps the rest exact"
                      (Printf.sprintf
                         "component %d (%d nulls over %s) still exceeds the \
                          exact enumeration frontier at k = %d; route that \
                          component alone to --approx"
                         (i + 1)
                         (List.length c.Factor.c_nulls)
                         (String.concat ", " c.Factor.c_relations)
                         cert.k)
                  ])
              (List.combine cert.machines cert.components)))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let to_json cert =
  let component_json ((c : Factor.component), (space, machine)) =
    Printf.sprintf
      "{\"nulls\": %d, \"space\": %s, \"overflow\": %b%s, \"relations\": \
       [%s], \"conjuncts\": %d}"
      (List.length c.Factor.c_nulls)
      (Diag.json_string (B.to_string space))
      (machine = None)
      (match machine with
      | None -> ""
      | Some n -> Printf.sprintf ", \"machine\": %d" n)
      (String.concat ", " (List.map Diag.json_string c.Factor.c_relations))
      c.Factor.c_conjuncts
  in
  let fields =
    [ ("verdict", Diag.json_string (verdict_string cert.verdict)) ]
    @ (match cert.verdict with
      | Indecomposable reason -> [ ("reason", Diag.json_string reason) ]
      | _ -> [])
    @ [ ("k", string_of_int cert.k);
        ("nulls", string_of_int (List.length cert.all_nulls));
        ("parts", string_of_int (parts cert));
        ("free_nulls", string_of_int (List.length cert.free_nulls));
        ( "components",
          "["
          ^ String.concat ", "
              (List.map component_json
                 (List.combine cert.components
                    (List.combine cert.spaces cert.machines)))
          ^ "]" )
      ]
  in
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Diag.json_string k ^ ": " ^ v) fields)
  ^ "}"
