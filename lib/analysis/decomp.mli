(** Decomposition certificates: the machine-checkable output of the
    null-dependency analysis.

    [analyze] builds the interaction graph ({!Depgraph}) of a support
    sentence over a database, proves (or refuses to prove) that the
    sentence factorizes over the graph's connected components, and
    packages the result as a certificate: per-component null sets,
    exact [Bigint] space sizes, and stable diagnostics —

    - [ANL401] (hint): decomposable, with the component sizes and the
      collapsed cost [Σᵢ k^{mᵢ}];
    - [ANL402] (hint): no decomposition — a single component spans
      every null, or a conjunct fails the {!Incomplete.Factor.dsafe}
      guardedness check;
    - [ANL403] (warning): a component exceeds the exact enumeration
      frontier even after decomposition — route that component alone
      to [--approx].

    A [Decomposable] or [Trivial] certificate converts to the
    {!Incomplete.Factor.plan} the factorized evaluators run on; the
    planner's side conditions (guardedness, nonempty quantified
    domains, sweep-set coverage) are exactly what makes that plan
    bit-identical to the monolithic path. *)

type verdict =
  | Decomposable  (** ≥ 2 independent parts — factorization pays *)
  | Trivial  (** sound but a single component spans all nulls *)
  | Indecomposable of string  (** reason; no sound plan *)

type t = {
  verdict : verdict;
  components : Incomplete.Factor.component list;
  free_nulls : int list;
  all_nulls : int list;
  k : int;  (** sampled domain size the space bounds are quoted at *)
  spaces : Arith.Bigint.t list;  (** per component, [k^mᵢ], exact *)
  machines : int option list;
      (** per component, [k^mᵢ] as machine int; [None] = over the
          exact frontier *)
}

val analyze :
  ?k:int ->
  ?extra_nulls:int list ->
  Relational.Instance.t ->
  Logic.Formula.t ->
  t
(** [k] defaults to [Instance.max_constant + 16] (as {!Cost.analyse});
    [extra_nulls] adds sweep nulls not occurring in the database (a
    candidate tuple's nulls). Emits the [analysis.decomp] trace span
    and bumps the [decomp_*] metrics. *)

val plan : t -> Incomplete.Factor.plan option
(** [None] exactly when the verdict is [Indecomposable]. *)

val parts : t -> int
val verdict_string : verdict -> string
val sizes_string : t -> string
(** ["8^3 + 8^3"] — the collapsed cost, human form. *)

val diagnostics : t -> Diag.t list
val to_json : t -> string
