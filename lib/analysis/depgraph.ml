module Formula = Logic.Formula
module Factor = Incomplete.Factor
module Split = Incomplete.Split

(* A conjunct's dependency set: the nulls its verdict may read. That
   is every null written in the conjunct itself plus, for each
   relation it mentions, every null occurring in that relation's
   null-carrying tuples — atom membership probes the valuation's image
   of those tuples. Nulls co-occurring in an atom or linked through a
   shared quantified variable always land in the same conjunct after
   normalization, so per-conjunct cliques subsume those finer edges. *)
type node = {
  n_sentence : Formula.t;
  n_relations : string list;
  n_nulls : int list;  (** the dependency set, sorted *)
  n_dsafe : bool;
}

type t = {
  nodes : node list;
  g_all_nulls : int list;
}

let relation_nulls split =
  List.map
    (fun (name, tuples) ->
      ( name,
        List.sort_uniq Int.compare
          (Array.to_list tuples |> List.concat_map Relational.Tuple.nulls) ))
    (Split.null_tuples split)

let build ~all_nulls split sentence =
  let rel_nulls = relation_nulls split in
  let nodes =
    List.map
      (fun conj ->
        let relations = Factor.relations conj in
        let db_nulls =
          List.concat_map
            (fun r ->
              match List.assoc_opt r rel_nulls with
              | Some ns -> ns
              | None -> [])
            relations
        in
        { n_sentence = conj;
          n_relations = relations;
          n_nulls =
            List.sort_uniq Int.compare (Formula.nulls conj @ db_nulls);
          n_dsafe = Factor.dsafe conj
        })
      (Factor.conjuncts sentence)
  in
  { nodes; g_all_nulls = List.sort_uniq Int.compare all_nulls }

let all_dsafe g = List.for_all (fun n -> n.n_dsafe) g.nodes

let first_unsafe g = List.find_opt (fun n -> not n.n_dsafe) g.nodes

(* ------------------------------------------------------------------ *)
(* Connected components by union-find over conjunct indices            *)
(* ------------------------------------------------------------------ *)

let components g =
  let nodes = Array.of_list g.nodes in
  let n = Array.length nodes in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  (* Conjuncts sharing a null are one component; ground conjuncts
     (empty dependency set) are merged into one zero-null block
     evaluated once. *)
  let owner : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let ground = ref (-1) in
  Array.iteri
    (fun i node ->
      match node.n_nulls with
      | [] ->
          if !ground < 0 then ground := i else union !ground i
      | nulls ->
          List.iter
            (fun nl ->
              match Hashtbl.find_opt owner nl with
              | None -> Hashtbl.add owner nl i
              | Some j -> union i j)
            nulls)
    nodes;
  let groups : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i _ ->
      let r = find i in
      Hashtbl.replace groups r
        (i :: (Option.value ~default:[] (Hashtbl.find_opt groups r))))
    nodes;
  let comps =
    Hashtbl.fold
      (fun root members acc -> (root, List.rev members) :: acc)
      groups []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.map
    (fun (_, members) ->
      let members = List.map (fun i -> nodes.(i)) members in
      { Factor.c_nulls =
          List.sort_uniq Int.compare
            (List.concat_map (fun m -> m.n_nulls) members);
        c_sentence = Formula.conj (List.map (fun m -> m.n_sentence) members);
        c_relations =
          List.sort_uniq String.compare
            (List.concat_map (fun m -> m.n_relations) members);
        c_conjuncts = List.length members
      })
    comps

let free_nulls g comps =
  let covered =
    List.sort_uniq Int.compare
      (List.concat_map (fun (c : Factor.component) -> c.Factor.c_nulls) comps)
  in
  List.filter (fun nl -> not (List.mem nl covered)) g.g_all_nulls

let covered_nulls g =
  List.sort_uniq Int.compare (List.concat_map (fun n -> n.n_nulls) g.nodes)
