(** The null interaction graph of a support sentence.

    Nulls are linked when a conjunct's verdict may read both: they
    co-occur in an atom or equality of the conjunct, or they occur in
    null tuples of a relation the conjunct mentions (membership probes
    the valuation's image of those tuples), or they are bridged by the
    conjunct's shared quantified variables. After {!Incomplete.Factor.normalize}
    every such link lives inside a single top-level conjunct, so the
    graph is the per-conjunct cliques over the conjunct dependency
    sets, and connected components are computed by union-find.

    [Decomp] turns the components into a certificate and an evaluation
    plan; this module only builds the graph. *)

type node = {
  n_sentence : Logic.Formula.t;  (** one top-level conjunct *)
  n_relations : string list;
  n_nulls : int list;
      (** dependency set: conjunct nulls + null-tuple nulls of its
          relations, sorted *)
  n_dsafe : bool;  (** {!Incomplete.Factor.dsafe} verdict *)
}

type t = {
  nodes : node list;
  g_all_nulls : int list;  (** the monolithic sweep set *)
}

val build :
  all_nulls:int list -> Incomplete.Split.t -> Logic.Formula.t -> t
(** [all_nulls] is the sweep set of the monolithic engine
    ([Support.all_nulls]); the split supplies the per-relation null
    tuples of the database the sentence is evaluated on. *)

val all_dsafe : t -> bool
val first_unsafe : t -> node option

val components : t -> Incomplete.Factor.component list
(** Connected components in order of first conjunct; ground conjuncts
    (empty dependency set) merge into one zero-null component. *)

val free_nulls : t -> Incomplete.Factor.component list -> int list
(** Swept nulls no component touches. *)

val covered_nulls : t -> int list
