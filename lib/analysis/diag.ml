type severity = Error | Warning | Hint

type span = { span_start : int; span_stop : int }

type t = {
  code : string;
  severity : severity;
  loc : string;
  span : span option;
  message : string;
  hint : string option;
}

let make severity ~code ?span ?hint ~loc message =
  { code; severity; loc; span; message; hint }

let error ~code = make Error ~code
let warning ~code = make Warning ~code
let hint ~code = make Hint ~code

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match String.compare a.code b.code with
      | 0 -> String.compare a.message b.message
      | c -> c)
  | c -> c

let sort ds = List.sort compare ds

let has_errors = List.exists (fun d -> d.severity = Error)
let count sev = List.fold_left (fun n d -> if d.severity = sev then n + 1 else n) 0

let registry =
  [ ("ANL001", Error, "unsafe query: answer variable not range-restricted");
    ("ANL002", Error, "non-generic query: constants void the unconditional 0-1 law (Thm 1)");
    ("ANL003", Error, "schema conformance: unknown relation or arity mismatch");
    ("ANL101", Warning, "unused quantified variable");
    ("ANL102", Warning, "trivially true/false subformula");
    ("ANL103", Warning, "implication query: degenerate measure (Prop 3); prefer µ(Q|Σ)");
    ("ANL201", Warning, "valuation space k^m overflows machine integers");
    ("ANL202", Hint, "large valuation space: use --jobs or the symbolic path");
    ("ANL301", Hint, "fragment ⊆ Pos∀G: naive evaluation computes certain answers (Cor 3)");
    ("ANL302", Hint, "fragment ⊆ UCQ: polynomial-time comparisons and best answers (Thm 8)");
    ("ANL303", Hint, "FD-only constraints: chase shortcut applies (Thm 5)");
    ("ANL304", Hint, "unary keys + foreign keys: polynomial satisfiability (Prop 6)");
    ("ANL305", Hint, "constraint set needs the generic exponential procedures");
    ("ANL306", Hint, "weakly acyclic dependencies: chase terminates on every instance");
    ("ANL307", Warning, "special-edge cycle: chase termination not guaranteed, bounded run only");
    ("ANL401", Hint, "support sentence decomposes: factorized evaluation collapses k^m to sum of k^m_i");
    ("ANL402", Hint, "support sentence does not decompose (single component or unguarded quantifier)");
    ("ANL403", Warning, "a component exceeds the exact frontier even after decomposition: route it to --approx")
  ]

(* ------------------------------------------------------------------ *)
(* Text rendering                                                       *)
(* ------------------------------------------------------------------ *)

let to_string d =
  let span =
    match d.span with
    | None -> ""
    | Some s -> Printf.sprintf " [%d-%d]" s.span_start s.span_stop
  in
  let head =
    Printf.sprintf "%s[%s] %s%s: %s"
      (severity_string d.severity)
      d.code d.loc span d.message
  in
  match d.hint with
  | None -> head
  | Some h -> head ^ "\n  = " ^ h

let render_text ds =
  String.concat "\n" (List.map to_string (sort ds))

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled; no JSON library in the build)           *)
(* ------------------------------------------------------------------ *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  let fields =
    [ ("code", json_string d.code);
      ("severity", json_string (severity_string d.severity));
      ("loc", json_string d.loc);
      ("message", json_string d.message)
    ]
    @ (match d.span with
      | None -> []
      | Some s ->
          [ ("span", Printf.sprintf "[%d, %d]" s.span_start s.span_stop) ])
    @ match d.hint with None -> [] | Some h -> [ ("hint", json_string h) ]
  in
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_string k ^ ": " ^ v) fields)
  ^ "}"

let render_json ds =
  "[" ^ String.concat ", " (List.map to_json (sort ds)) ^ "]"
