(** The diagnostics engine: stable error codes, severities, optional
    source spans, and text + JSON renderers.

    Every check in this library reports through this module so that the
    CLI, the pre-evaluation gate of [certain]/[measure]/[conditional],
    and the CI lint job all speak the same language. Codes are {e
    stable}: scripts may match on them, so a code is never reused for a
    different condition (retired codes are retired forever).

    {2 Code registry}

    Errors (fail the [--strict] gate):
    - [ANL001] — unsafe query: an answer variable is not
      range-restricted, so answers are domain-dependent.
    - [ANL002] — non-generic query: the query mentions constants, so
      the 0–1 law of Theorem 1 only holds relative to the genericity
      set [C].
    - [ANL003] — schema conformance: unknown relation or arity
      mismatch.

    Warnings:
    - [ANL101] — unused quantified variable.
    - [ANL102] — trivially true/false subformula.
    - [ANL103] — implication query: [µ(Σ → Q)] degenerates to 1
      whenever [µ(Σ) = 0] (Proposition 3); prefer the conditional
      measure.
    - [ANL201] — valuation space [k^m] overflows machine integers
      even after decomposition (the largest component's space is
      quoted when a decomposition certificate is available);
      exhaustive enumeration is hopeless.
    - [ANL307] — the dependency set has a cycle through a special
      edge of the position graph: the chase may not terminate; only
      bounded runs are available.
    - [ANL403] — a component of the decomposition still exceeds the
      exact enumeration frontier; route that component alone to
      [--approx] (the estimator samples it and keeps the rest exact).

    Hints (dispatch consequences; never gate):
    - [ANL202] — valuation space is large; recommend [--jobs] or the
      symbolic support-polynomial path.
    - [ANL301] — fragment within Pos∀G: naïve evaluation computes
      certain answers (Corollary 3).
    - [ANL302] — fragment within UCQ: polynomial-time comparisons and
      best answers (Theorem 8).
    - [ANL303] — FD-only constraint set: chase shortcut available
      (Theorem 5).
    - [ANL304] — unary keys + foreign keys: polynomial-time
      satisfiability (Proposition 6).
    - [ANL305] — constraint set outside both tractable classes: only
      the generic exponential procedures apply.
    - [ANL306] — the dependency set is weakly acyclic (no special-edge
      cycle in the position graph): the chase terminates on every
      instance — a static termination certificate, no step budget.
    - [ANL401] — the support sentence decomposes into independent
      components: factorized evaluation collapses the [k^m] sweep to
      [Σᵢ k^{mᵢ}], bit-identical to the monolithic path.
    - [ANL402] — no decomposition: a single interaction component
      spans every null, or a conjunct fails the guardedness check. *)

type severity = Error | Warning | Hint

type span = { span_start : int; span_stop : int }
(** Character offsets into the source text, when the parser provides
    them (none of the current parsers do; the field is part of the
    stable interface so renderers need not change when they start to). *)

type t = {
  code : string;  (** stable code, e.g. ["ANL001"] *)
  severity : severity;
  loc : string;  (** which input: ["query"], ["constraints"], … *)
  span : span option;
  message : string;
  hint : string option;  (** remediation or paper pointer *)
}

val error : code:string -> ?span:span -> ?hint:string -> loc:string -> string -> t
val warning : code:string -> ?span:span -> ?hint:string -> loc:string -> string -> t
val hint : code:string -> ?span:span -> ?hint:string -> loc:string -> string -> t

val severity_string : severity -> string
(** ["error"], ["warning"], ["hint"]. *)

val compare : t -> t -> int
(** Errors before warnings before hints; then by code, then message. *)

val sort : t list -> t list

val has_errors : t list -> bool
val count : severity -> t list -> int

val registry : (string * severity * string) list
(** All stable codes with their default severity and a one-line
    description — the source of the README table. *)

(** {1 Rendering} *)

val to_string : t -> string
(** One line: [severity[CODE] loc: message] followed, on an indented
    second line, by the hint if present. *)

val render_text : t list -> string
(** Sorted, one diagnostic per entry; [""] for the empty list. *)

val json_string : string -> string
(** A JSON string literal with the necessary escapes — shared by every
    JSON renderer in this library (there is no JSON dependency). *)

val to_json : t -> string
val render_json : t list -> string
(** A JSON array of diagnostic objects. *)
