module Fragment = Logic.Fragment
module Query = Logic.Query
module B = Arith.Bigint

type t = {
  query : Query.t;
  fragment : Fragment.fragment;
  safe : bool;
  generic : bool;
  cclass : Classify.constraint_class option;
  cost : Cost.t option;
  decomp : Decomp.t option;
  wacyclic : Constraints.Wacyclic.t option;
  diags : Diag.t list;
  hints : Diag.t list;
}

let has_tgds deps =
  List.exists
    (function
      | Constraints.Dependency.Ind _ | Constraints.Dependency.ForeignKey _ ->
          true
      | Constraints.Dependency.Fd _ | Constraints.Dependency.Key _ -> false)
    deps

let analyze ?inst ?deps ?tuple ?k schema q =
  let cost = Option.map (fun inst -> Cost.analyse ?k ?tuple inst) inst in
  (* The decomposition certificate needs a concrete support sentence:
     the query instantiated on the candidate tuple (or closed already
     for Boolean queries). *)
  let decomp =
    match (inst, tuple) with
    | Some inst, Some tuple when Relational.Tuple.arity tuple = Query.arity q
      ->
        Some
          (Decomp.analyze ?k
             ~extra_nulls:(Relational.Tuple.nulls tuple)
             inst
             (Query.instantiate q tuple))
    | Some inst, None when Query.arity q = 0 ->
        Some (Decomp.analyze ?k inst (Query.instantiate q Relational.Tuple.empty))
    | _ -> None
  in
  let wacyclic =
    match deps with
    | Some deps when has_tgds deps -> Some (Constraints.Wacyclic.check schema deps)
    | _ -> None
  in
  { query = q;
    fragment = Classify.fragment q;
    safe = Safety.is_safe q;
    generic = Query.constants q = [];
    cclass = Option.map Classify.constraint_class deps;
    cost;
    decomp;
    wacyclic;
    diags = Safety.check_query schema q;
    hints =
      Classify.dispatch_hints ?deps ~schema q
      @ (match cost with None -> [] | Some c -> Cost.diagnostics ?decomp c)
      @ (match decomp with None -> [] | Some d -> Decomp.diagnostics d)
  }

let has_errors r = Diag.has_errors r.diags

let all_diags r = Diag.sort (r.diags @ r.hints)

let yesno b = if b then "yes" else "no"

let to_text r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "query:       %s" (Query.to_string r.query);
  line "fragment:    %s   (CQ ⊆ UCQ ⊆ Pos∀G ⊆ FO)"
    (Fragment.fragment_name r.fragment);
  line "safe:        %s" (yesno r.safe);
  line "generic:     %s" (yesno r.generic);
  (match r.cclass with
  | None -> ()
  | Some c ->
      line "constraints: %d dependenc%s; FD-only: %s; unary keys+FKs: %s"
        c.Classify.n_constraints
        (if c.Classify.n_constraints = 1 then "y" else "ies")
        (yesno c.Classify.fd_only)
        (yesno c.Classify.unary_keys_fks));
  (match r.cost with
  | None -> ()
  | Some c ->
      line "cost:        |V^k| = k^%d; at k = %d: %s valuation%s%s"
        c.Cost.nulls c.Cost.k (B.to_string c.Cost.space)
        (if B.equal c.Cost.space B.one then "" else "s")
        (match c.Cost.machine with
        | None -> " (overflows machine integers)"
        | Some _ -> ""));
  (match r.decomp with
  | None -> ()
  | Some d ->
      line "decomp:      %s%s"
        (Decomp.verdict_string d.Decomp.verdict)
        (match d.Decomp.verdict with
        | Decomp.Indecomposable reason -> Printf.sprintf " (%s)" reason
        | Decomp.Decomposable | Decomp.Trivial ->
            Printf.sprintf ": %d part%s, %s" (Decomp.parts d)
              (if Decomp.parts d = 1 then "" else "s")
              (Decomp.sizes_string d)));
  (match r.wacyclic with
  | None -> ()
  | Some w ->
      line "chase:       %s (%d regular, %d special edge%s)%s"
        (Constraints.Wacyclic.verdict_string w)
        w.Constraints.Wacyclic.n_regular w.Constraints.Wacyclic.n_special
        (if w.Constraints.Wacyclic.n_special = 1 then "" else "s")
        (match w.Constraints.Wacyclic.verdict with
        | Constraints.Wacyclic.Weakly_acyclic -> ""
        | Constraints.Wacyclic.Special_cycle _ ->
            ": " ^ Constraints.Wacyclic.cycle_string w));
  let errors = Diag.count Diag.Error r.diags
  and warnings = Diag.count Diag.Warning r.diags in
  line "verdict:     %s (%d error%s, %d warning%s)"
    (if errors > 0 then "issues found" else "ok")
    errors
    (if errors = 1 then "" else "s")
    warnings
    (if warnings = 1 then "" else "s");
  (match Diag.sort r.diags with
  | [] -> line "diagnostics: none"
  | ds ->
      line "diagnostics:";
      List.iter (fun d -> line "  %s" (String.concat "\n  " (String.split_on_char '\n' (Diag.to_string d)))) ds);
  (match Diag.sort r.hints with
  | [] -> ()
  | ds ->
      line "dispatch:";
      List.iter (fun d -> line "  %s" (String.concat "\n  " (String.split_on_char '\n' (Diag.to_string d)))) ds);
  Buffer.contents buf

let to_json r =
  let fields =
    [ ("query", Diag.json_string (Query.to_string r.query));
      ("fragment", Diag.json_string (Fragment.fragment_name r.fragment));
      ("safe", string_of_bool r.safe);
      ("generic", string_of_bool r.generic)
    ]
    @ (match r.cclass with
      | None -> []
      | Some c ->
          [ ( "constraints",
              Printf.sprintf
                "{\"count\": %d, \"fd_only\": %b, \"unary_keys_fks\": %b}"
                c.Classify.n_constraints c.Classify.fd_only
                c.Classify.unary_keys_fks )
          ])
    @ (match r.cost with
      | None -> []
      | Some c -> [ ("cost", Cost.to_json c) ])
    @ (match r.decomp with
      | None -> []
      | Some d -> [ ("decomp", Decomp.to_json d) ])
    @ (match r.wacyclic with
      | None -> []
      | Some w -> [ ("wacyclic", Constraints.Wacyclic.to_json w) ])
    @ [ ("errors", string_of_int (Diag.count Diag.Error r.diags));
        ("warnings", string_of_int (Diag.count Diag.Warning r.diags));
        ("hints", string_of_int (List.length r.hints));
        ("diagnostics", Diag.render_json (all_diags r))
      ]
  in
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Diag.json_string k ^ ": " ^ v) fields)
  ^ "}"
