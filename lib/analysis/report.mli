(** The aggregate static-analysis report: one call runs every check and
    bundles verdicts, dispatch consequences and diagnostics, with text
    and JSON renderers. This is what the [analyze] CLI subcommand and
    the pre-evaluation gate of [certain]/[measure]/[conditional]
    consume. *)

type t = {
  query : Logic.Query.t;
  fragment : Logic.Fragment.fragment;
  safe : bool;
  generic : bool;
  cclass : Classify.constraint_class option;  (** when constraints given *)
  cost : Cost.t option;  (** when a database is given *)
  decomp : Decomp.t option;
      (** decomposition certificate — when a database is given and the
          support sentence is closed (a candidate tuple, or arity 0) *)
  wacyclic : Constraints.Wacyclic.t option;
      (** chase-termination certificate — when the constraint set has
          tuple-generating dependencies *)
  diags : Diag.t list;  (** checks: errors and warnings *)
  hints : Diag.t list;  (** dispatch consequences and cost hints *)
}

val analyze :
  ?inst:Relational.Instance.t ->
  ?deps:Constraints.Dependency.t list ->
  ?tuple:Relational.Tuple.t ->
  ?k:int ->
  Relational.Schema.t ->
  Logic.Query.t ->
  t

val has_errors : t -> bool

val all_diags : t -> Diag.t list
(** Checks and hints together, sorted. *)

val to_text : t -> string
(** The human-facing report (fragment, verdicts, cost bound,
    diagnostics, dispatch). *)

val to_json : t -> string
