module F = Logic.Formula
module Query = Logic.Query
module Names = Relational.Names
module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Range restriction (safe-range analysis)                              *)
(* ------------------------------------------------------------------ *)

let rec conjuncts = function
  | F.And (g, h) -> conjuncts g @ conjuncts h
  | f -> [ f ]

let term_vars ts =
  List.fold_left
    (fun s t -> match t with F.Var x -> SS.add x s | F.Val _ -> s)
    SS.empty ts

let rec rr = function
  | F.True | F.False -> SS.empty
  | F.Atom (_, ts) -> term_vars ts
  | F.Eq (F.Var x, F.Val _) | F.Eq (F.Val _, F.Var x) -> SS.singleton x
  | F.Eq _ -> SS.empty
  | F.Not _ -> SS.empty
  (* Implication and universal quantification are negations in
     disguise: they restrict nothing. *)
  | F.Implies _ | F.Forall _ -> SS.empty
  | F.Or (g, h) -> SS.inter (rr g) (rr h)
  | F.Exists (x, g) -> SS.remove x (rr g)
  | F.And _ as f ->
      (* Union over the conjuncts, then close under the equality
         conjuncts: x = y propagates restriction either way. *)
      let cs = conjuncts f in
      let base =
        List.fold_left (fun s g -> SS.union s (rr g)) SS.empty cs
      in
      let eqs =
        List.filter_map
          (function F.Eq (F.Var x, F.Var y) -> Some (x, y) | _ -> None)
          cs
      in
      let step s =
        List.fold_left
          (fun s (x, y) ->
            if SS.mem x s then SS.add y s
            else if SS.mem y s then SS.add x s
            else s)
          s eqs
      in
      let rec fix s =
        let s' = step s in
        if SS.equal s s' then s else fix s'
      in
      fix base

let restricted f = SS.elements (rr f)

let unsafe_answer_vars (q : Query.t) =
  let r = rr q.Query.body in
  List.sort String.compare
    (List.filter (fun x -> not (SS.mem x r)) q.Query.free)

let is_safe q = unsafe_answer_vars q = []

(* ------------------------------------------------------------------ *)
(* Individual checks                                                    *)
(* ------------------------------------------------------------------ *)

let loc_query = "query"

let check_safety q =
  match unsafe_answer_vars q with
  | [] -> []
  | vars ->
      [ Diag.error ~code:"ANL001" ~loc:loc_query
          ~hint:
            "bind every answer variable by a relational atom (or equate it \
             with one that is); unsafe answers are domain-dependent"
          (Printf.sprintf
             "unsafe query: answer variable%s %s not range-restricted"
             (if List.length vars = 1 then "" else "s")
             (String.concat ", " vars))
      ]

let genericity_diag ~loc constants =
  match constants with
  | [] -> []
  | cs ->
      [ Diag.error ~code:"ANL002" ~loc
          ~hint:
            "Theorem 1's 0-1 law needs generic queries; with constants the \
             measures are relative to the genericity set C (anchored \
             valuation classes)"
          (Printf.sprintf "not generic: mentions constant%s %s"
             (if List.length cs = 1 then "" else "s")
             (String.concat ", "
                (List.map (fun c -> "'" ^ Names.to_string c ^ "'") cs)))
      ]

let check_genericity q = genericity_diag ~loc:loc_query (Query.constants q)

let check_schema schema q =
  match Query.well_formed schema q with
  | Ok () -> []
  | Error msg ->
      [ Diag.error ~code:"ANL003" ~loc:loc_query
          ~hint:"declare the relation in --schema or fix the atom's arity"
          msg
      ]

let check_unused q =
  let rec go acc = function
    | F.True | F.False | F.Atom _ | F.Eq _ -> acc
    | F.Not g -> go acc g
    | F.And (g, h) | F.Or (g, h) | F.Implies (g, h) -> go (go acc g) h
    | (F.Exists (x, g) | F.Forall (x, g)) as f ->
        let acc =
          if List.mem x (F.free_vars g) then acc
          else
            Diag.warning ~code:"ANL101" ~loc:loc_query
              ~hint:"drop the binder or use the variable"
              (Printf.sprintf "quantified variable %s is unused in %s" x
                 (F.to_string f))
            :: acc
        in
        go acc g
  in
  List.rev (go [] q.Query.body)

let check_trivial q =
  let warn what sub acc =
    Diag.warning ~code:"ANL102" ~loc:loc_query
      ~hint:"simplify the formula; the subformula does not constrain answers"
      (Printf.sprintf "%s: %s" what (F.to_string sub))
    :: acc
  in
  let rec go acc f =
    let acc =
      match f with
      | F.And (F.False, _) | F.And (_, F.False) ->
          warn "trivially false conjunction" f acc
      | F.Or (F.True, _) | F.Or (_, F.True) ->
          warn "trivially true disjunction" f acc
      | F.Implies (_, F.True) | F.Implies (F.False, _) ->
          warn "trivially true implication" f acc
      | F.Not F.True -> warn "trivially false subformula" f acc
      | F.Not F.False -> warn "trivially true subformula" f acc
      | F.Eq (F.Var x, F.Var y) when x = y ->
          warn "trivially true equality" f acc
      | F.Eq (F.Val a, F.Val b)
        when Relational.Value.is_const a && Relational.Value.is_const b ->
          if Relational.Value.equal a b then
            warn "trivially true equality" f acc
          else warn "trivially false equality" f acc
      | _ -> acc
    in
    match f with
    | F.True | F.False | F.Atom _ | F.Eq _ -> acc
    | F.Not g | F.Exists (_, g) | F.Forall (_, g) -> go acc g
    | F.And (g, h) | F.Or (g, h) | F.Implies (g, h) -> go (go acc g) h
  in
  List.rev (go [] q.Query.body)

let check_implication q =
  match q.Query.body with
  | F.Implies _ ->
      [ Diag.warning ~code:"ANL103" ~loc:loc_query
          ~hint:
            "µ(Σ → Q) is 1 whenever µ(Σ) = 0 (Prop 3); if the antecedent is \
             a constraint, use the conditional measure µ(Q|Σ) instead"
          "top-level implication: the measure of Σ → Q degenerates"
      ]
  | _ -> []

let check_query schema q =
  check_schema schema q
  @ check_safety q
  @ check_genericity q
  @ check_unused q
  @ check_trivial q
  @ check_implication q

(* ------------------------------------------------------------------ *)
(* Datalog programs and algebra plans                                   *)
(* ------------------------------------------------------------------ *)

let check_program schema prog =
  let wf =
    match Datalog.Program.well_formed schema prog with
    | Ok () -> []
    | Error msg ->
        [ Diag.error ~code:"ANL003" ~loc:"program"
            ~hint:"fix the rule against the EDB schema" msg
        ]
  in
  wf @ genericity_diag ~loc:"program" (Datalog.Program.constants prog)

let check_ra schema expr =
  let module Ra = Logic.Ra in
  let wf =
    match Ra.well_formed schema expr with
    | Ok () -> []
    | Error msg ->
        [ Diag.error ~code:"ANL003" ~loc:"ra"
            ~hint:"fix the plan against the schema" msg
        ]
  in
  let rec pred_consts acc = function
    | Ra.Eq_const (_, v) | Ra.Neq_const (_, v) -> (
        match Relational.Value.const_code v with
        | Some c -> c :: acc
        | None -> acc)
    | Ra.Eq_col _ | Ra.Neq_col _ -> acc
    | Ra.And_p (p, r) | Ra.Or_p (p, r) -> pred_consts (pred_consts acc p) r
  in
  let rec consts acc = function
    | Ra.Rel _ -> acc
    | Ra.Select (p, e) -> consts (pred_consts acc p) e
    | Ra.Project (_, e) -> consts acc e
    | Ra.Product (e, f) | Ra.Union (e, f) | Ra.Diff (e, f) ->
        consts (consts acc e) f
  in
  wf @ genericity_diag ~loc:"ra" (List.sort_uniq Int.compare (consts [] expr))
