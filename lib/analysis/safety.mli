(** Static checks on queries: safety/range-restriction, genericity,
    schema conformance, and formula hygiene.

    Safety here is the classical syntactic safe-range analysis
    (Abiteboul–Hull–Vianu): a free variable is {e range-restricted}
    when every way of satisfying the formula forces it into the active
    domain — bound by a relational atom, equated with a value, or
    equated (within a conjunction) with a variable that is itself
    restricted. Disjunction restricts only what both branches restrict;
    negation, implication and universal quantification restrict
    nothing. An answer variable that is not range-restricted makes the
    query domain-dependent: its answers change with the domain the
    quantifiers range over, so certain answers and the measures [µ^k]
    are only meaningful relative to the active-domain semantics this
    engine uses. *)

val restricted : Logic.Formula.t -> string list
(** The range-restricted free variables, sorted. *)

val unsafe_answer_vars : Logic.Query.t -> string list
(** Answer variables that are not range-restricted (the witnesses for
    code ANL001), sorted. *)

val is_safe : Logic.Query.t -> bool

val check_query :
  Relational.Schema.t -> Logic.Query.t -> Diag.t list
(** All query diagnostics: ANL001 (safety), ANL002 (genericity),
    ANL003 (schema conformance), ANL101 (unused quantified variables),
    ANL102 (trivially true/false subformulas), ANL103 (top-level
    implication). The list is unsorted; callers render through
    {!Diag.render_text}/{!Diag.render_json} which sort. *)

val check_program :
  Relational.Schema.t -> Datalog.Program.t -> Diag.t list
(** Datalog programs: ANL003 for well-formedness violations (range
    restriction of rules is part of [Datalog.Program.well_formed]),
    ANL002 when the program mentions constants. *)

val check_ra : Relational.Schema.t -> Logic.Ra.t -> Diag.t list
(** Relational-algebra plans: ANL003 for ill-formed expressions,
    ANL002 for constant selections. *)
