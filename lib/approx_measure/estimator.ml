module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module F = Logic.Formula
module B = Arith.Bigint
module R = Arith.Rat
module Support = Incomplete.Support
module Enumerate = Incomplete.Enumerate
module Valuation = Incomplete.Valuation
module Factor = Incomplete.Factor
module Kernel = Incomplete.Kernel

(* ------------------------------------------------------------------ *)
(* Parameters                                                          *)
(* ------------------------------------------------------------------ *)

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let rat_of_string s =
  let s = String.trim s in
  let invalid () =
    Error (Printf.sprintf "expected a decimal or p/q fraction, got %S" s)
  in
  match String.index_opt s '.' with
  | None ->
      (* "p" or "p/q" — Rat.of_string's grammar. *)
      let ok =
        match String.split_on_char '/' s with
        | [ p ] -> is_digits p
        | [ p; q ] -> is_digits p && is_digits q && q <> String.make (String.length q) '0'
        | _ -> false
      in
      if ok then Ok (R.of_string s) else invalid ()
  | Some i ->
      let int_part = String.sub s 0 i in
      let frac = String.sub s (i + 1) (String.length s - i - 1) in
      if (int_part = "" && frac = "")
         || (int_part <> "" && not (is_digits int_part))
         || (frac <> "" && not (is_digits frac))
      then invalid ()
      else
        let int_part = if int_part = "" then "0" else int_part in
        let frac = if frac = "" then "0" else frac in
        let scale = B.pow (B.of_int 10) (String.length frac) in
        let num = B.add (B.mul (B.of_string int_part) scale) (B.of_string frac) in
        Ok (R.make num scale)

let check_prob name v =
  if R.compare v R.zero <= 0 || R.compare v R.one >= 0 then
    invalid_arg (Printf.sprintf "Estimator: %s must lie in (0, 1)" name)

let sample_size ~eps ~delta =
  check_prob "eps" eps;
  check_prob "delta" delta;
  (* Hoeffding: P(|p̂ − µ| > ε) ≤ 2·exp(−2nε²) ≤ δ once
     n ≥ ln(2/δ) / (2ε²). The float excursion is only this ceiling —
     every reported quantity stays rational. *)
  let e = R.to_float eps and d = R.to_float delta in
  let n = Float.ceil (log (2.0 /. d) /. (2.0 *. e *. e)) in
  Stdlib.max 1 (int_of_float n)

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type stratified = {
  s_estimate : R.t;
  s_ci_lo : R.t;
  s_ci_hi : R.t;
  s_samples : int;
  s_strata : int;
}

type t = {
  estimate : R.t;
  ci_lo : R.t;
  ci_hi : R.t;
  samples : int;
  hits : int;
  seed : int;
  eps : R.t;
  delta : R.t;
  stratified : stratified option;
}

type cond = {
  c_estimate : R.t;
  c_ci_lo : R.t;
  c_ci_hi : R.t;
  c_samples : int;
  c_hits_num : int;
  c_hits_den : int;
  c_seed : int;
}

(* ------------------------------------------------------------------ *)
(* Uniform sampling of V^k(D)                                          *)
(* ------------------------------------------------------------------ *)

(* Chunks under a guard are capped at 2^16 items by the pool; this
   lower threshold just lets moderate sample counts (~10^3) actually
   fan out. *)
let min_work = 256

let draw_uniform ~rng ~nulls ~k ~space =
  match space with
  | Some size ->
      (* Small space: a uniform rank, decoded mixed-radix — the visit
         order of the exact sweep. *)
      Enumerate.valuation_of_rank ~nulls ~k (Srng.uniform rng size)
  | None ->
      (* Beyond the int frontier: draw the m digits independently.
         A uniform rank in [0, k^m) *is* m independent uniform digits
         in [0, k), so the distribution is identical — with no bigint
         arithmetic per sample. *)
      Valuation.of_list (List.map (fun nl -> (nl, 1 + Srng.uniform rng k)) nulls)

(* Count how many of the samples [base, base+n) hit every checker.
   Sample index i draws from its own (seed, i) stream, so the counts
   are independent of the chunk partition; int subtotals are summed in
   chunk order — bit-identical for any ?jobs, guarded or not. *)
let count_hits ?jobs ?guard ?cache ~db ~sentences ~nulls ~k ~space ~seed ~base n =
  let nsent = List.length sentences in
  let chunk lo hi =
    let checkers = List.map (fun s -> Support.checker ?cache db s) sentences in
    let hits = Array.make nsent 0 in
    for i = lo to hi - 1 do
      let rng = Srng.stream ~seed ~index:(base + i) in
      let v = draw_uniform ~rng ~nulls ~k ~space in
      List.iteri
        (fun s chk -> if Support.check chk v then hits.(s) <- hits.(s) + 1)
        checkers
    done;
    Obs.Metrics.add Obs.Metrics.approx_samples (hi - lo);
    hits
  in
  let combine a b = Array.map2 ( + ) a b in
  Exec.Pool.fold_range ?jobs ?guard ~min_work ~n ~chunk ~combine
    (Array.make nsent 0)

(* ------------------------------------------------------------------ *)
(* Stratification by null support                                      *)
(* ------------------------------------------------------------------ *)

(* Stratum j of V^k(D): the valuations mapping exactly j of the m
   nulls into the anchor set C ∪ Const(D) (restricted to codes ≤ k).
   Collisions with the anchors are what flip support checks (§3.3), so
   conditioning on their number is the natural variance-reduction
   axis. The strata partition V^k exactly:
     |stratum j| = C(m,j) · a^j · (k−a)^(m−j),  Σ_j = k^m. *)

type stratum = { s_j : int; weight : R.t; mutable alloc : int }

let strata_of ~m ~a ~free ~total =
  List.filter_map
    (fun j ->
      let card =
        B.mul
          (B.mul (Arith.Combinat.binomial m j) (B.pow (B.of_int a) j))
          (B.pow (B.of_int free) (m - j))
      in
      if B.sign card <= 0 then None
      else Some { s_j = j; weight = R.make card total; alloc = 0 })
    (List.init (m + 1) (fun j -> j))

(* Proportional allocation by largest remainder (deterministic: ties
   break toward the smaller stratum index), with every positive-weight
   stratum granted at least one sample. *)
let allocate strata n =
  let floors =
    List.map
      (fun s ->
        let exact = R.mul_int s.weight n in
        let fl = B.div (R.num exact) (R.den exact) in
        let rem = R.sub exact (R.of_bigint fl) in
        (s, B.to_int_exn fl, rem))
      strata
  in
  List.iter (fun (s, fl, _) -> s.alloc <- fl) floors;
  let given = List.fold_left (fun acc (_, fl, _) -> acc + fl) 0 floors in
  let by_remainder =
    List.stable_sort (fun (_, _, r1) (_, _, r2) -> R.compare r2 r1) floors
  in
  let rec grant k = function
    | [] -> ()
    | (s, _, _) :: rest when k > 0 ->
        s.alloc <- s.alloc + 1;
        grant (k - 1) rest
    | _ -> ()
  in
  grant (n - given) by_remainder;
  List.iter (fun s -> if s.alloc = 0 then s.alloc <- 1) strata

(* The weighted Hoeffding bound for Σ_j w_j·hits_j/n_j needs
   Σ_j w_j²/n_j ≤ 1/n to carry the same ε at confidence δ. The
   proportional allocation already lands within rounding of it; bump
   every stratum until the exact rational inequality holds. *)
let enforce_bound strata n =
  let sum2 () =
    List.fold_left
      (fun acc s -> R.add acc (R.div_int (R.mul s.weight s.weight) s.alloc))
      R.zero strata
  in
  let target = R.of_ints 1 n in
  while R.compare (sum2 ()) target > 0 do
    List.iter (fun s -> s.alloc <- s.alloc + 1) strata
  done

(* The idx-th code of [1..k] \ anchors (anchors sorted ascending, all
   ≤ k): walk the anchors, shifting the candidate past each one it
   meets. *)
let nth_non_anchor anchors k idx =
  let c = ref (idx + 1) in
  Array.iter (fun a -> if a <= !c then incr c) anchors;
  assert (!c <= k);
  !c

(* One valuation of stratum j: a uniform j-subset of the nulls gets
   uniform anchor codes, the rest uniform non-anchor codes — exactly
   the uniform distribution on V^k conditioned on the stratum. *)
let draw_stratum ~rng ~nulls_arr ~anchors ~k ~a ~free ~j =
  let m = Array.length nulls_arr in
  let picked = ref j and left = ref m in
  let bindings = ref [] in
  Array.iter
    (fun nl ->
      (* Sequential sampling: include this null with probability
         picked/left — uniform over the C(m,j) subsets. *)
      let anchored = Srng.uniform rng !left < !picked in
      let code =
        if anchored then begin
          decr picked;
          anchors.(Srng.uniform rng a)
        end
        else nth_non_anchor anchors k (Srng.uniform rng free)
      in
      decr left;
      bindings := (nl, code) :: !bindings)
    nulls_arr;
  Valuation.of_list (List.rev !bindings)

let stratified_pass ?jobs ?guard ?cache ~db ~sentence ~anchors_all ~nulls ~k
    ~eps ~seed ~base n =
  let nulls_arr = Array.of_list nulls in
  let m = Array.length nulls_arr in
  let anchors =
    Array.of_list (List.filter (fun c -> c >= 1 && c <= k) anchors_all)
  in
  let a = Array.length anchors and total = Enumerate.count ~nulls ~k in
  let free = k - a in
  let strata = strata_of ~m ~a ~free ~total in
  allocate strata n;
  enforce_bound strata n;
  Obs.Metrics.add Obs.Metrics.approx_strata (List.length strata);
  let estimate, samples, _ =
    List.fold_left
      (fun (acc, count, offset) s ->
        let chunk lo hi =
          let chk = Support.checker ?cache db sentence in
          let hits = ref 0 in
          for i = lo to hi - 1 do
            let rng = Srng.stream ~seed ~index:(base + offset + i) in
            let v =
              draw_stratum ~rng ~nulls_arr ~anchors ~k ~a ~free ~j:s.s_j
            in
            if Support.check chk v then incr hits
          done;
          Obs.Metrics.add Obs.Metrics.approx_samples (hi - lo);
          !hits
        in
        let hits =
          Exec.Pool.fold_range ?jobs ?guard ~min_work ~n:s.alloc ~chunk
            ~combine:( + ) 0
        in
        ( R.add acc (R.mul s.weight (R.of_ints hits s.alloc)),
          count + s.alloc,
          offset + s.alloc ))
      (R.zero, 0, 0) strata
  in
  { s_estimate = estimate;
    s_ci_lo = R.max R.zero (R.sub estimate eps);
    s_ci_hi = R.min R.one (R.add estimate eps);
    s_samples = samples;
    s_strata = List.length strata
  }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let mu_k ?jobs ?guard ?cache ?(stratify = false) inst q tuple ~k ~eps ~delta
    ~seed =
  if k < 1 then invalid_arg "Estimator.mu_k: k must be >= 1";
  let n = sample_size ~eps ~delta in
  let sentence = Query.instantiate q tuple in
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)
  in
  Obs.Trace.span
    ~attrs:
      [ ("k", string_of_int k); ("samples", string_of_int n);
        ("seed", string_of_int seed);
        ("stratify", if stratify then "true" else "false")
      ]
    "approx.run"
  @@ fun () ->
  let db = Support.kernel_db ?cache inst in
  let space = Enumerate.space_size ~nulls ~k in
  let hits =
    (count_hits ?jobs ?guard ?cache ~db ~sentences:[ sentence ] ~nulls ~k
       ~space ~seed ~base:0 n).(0)
  in
  let estimate = R.of_ints hits n in
  let stratified =
    if not stratify then None
    else
      let anchors_all = Support.anchor_set_sentences inst [ sentence ] in
      Some
        (stratified_pass ?jobs ?guard ?cache ~db ~sentence ~anchors_all ~nulls
           ~k ~eps ~seed ~base:n n)
  in
  { estimate;
    ci_lo = R.max R.zero (R.sub estimate eps);
    ci_hi = R.min R.one (R.add estimate eps);
    samples = n;
    hits;
    seed;
    eps;
    delta;
    stratified
  }

(* ------------------------------------------------------------------ *)
(* Factorized estimation over a decomposition plan                     *)
(* ------------------------------------------------------------------ *)

(* Components at most this large are swept exactly instead of sampled:
   2^16 support checks cost less than a Hoeffding-sized sample and
   contribute a zero-width factor to the interval. *)
let exact_component_cutoff = 65536

type part = {
  p_nulls : int;
  p_exact : bool;
  p_estimate : R.t;
  p_samples : int;
}

type factored = {
  f_estimate : R.t;
  f_ci_lo : R.t;
  f_ci_hi : R.t;
  f_samples : int;
  f_exact_parts : int;
  f_sampled_parts : int;
  f_parts : part list;
  f_seed : int;
  f_eps : R.t;
  f_delta : R.t;
}

let mu_k_plan ?jobs ?guard ?cache inst plan ~k ~eps ~delta ~seed =
  if k < 1 then invalid_arg "Estimator.mu_k_plan: k must be >= 1";
  check_prob "eps" eps;
  check_prob "delta" delta;
  let comps =
    List.map
      (fun c ->
        let space = Enumerate.space_size ~nulls:c.Factor.c_nulls ~k in
        let exact =
          match space with
          | Some s -> s <= exact_component_cutoff
          | None -> false
        in
        (c, space, exact))
      plan.Factor.components
  in
  let b = List.length (List.filter (fun (_, _, e) -> not e) comps) in
  (* Each sampled component gets (ε/b, δ/b): the factors live in [0,1],
     so |∏p̂ − ∏p| ≤ Σᵢ|p̂ᵢ − pᵢ| ≤ ε whenever every per-component bound
     holds — which fails with probability < Σᵢ δ/b = δ (union bound).
     Exact components contribute a zero-width factor. Free nulls
     contribute factor 1 and never appear. *)
  let eps_i = if b = 0 then eps else R.div_int eps b in
  let n_i =
    if b = 0 then 0 else sample_size ~eps:eps_i ~delta:(R.div_int delta b)
  in
  Obs.Trace.span "approx.run"
    ~attrs:
      [ ("k", string_of_int k); ("mode", "factored");
        ("components", string_of_int (List.length comps));
        ("sampled", string_of_int b);
        ("samples", string_of_int (n_i * b)); ("seed", string_of_int seed)
      ]
  @@ fun () ->
  let estimate, lo, hi, samples, parts_rev, _ =
    List.fold_left
      (fun (est, lo, hi, samples, parts, base) (c, space, exact) ->
        let nulls = c.Factor.c_nulls in
        (* One kernel per component restriction — deliberately not the
           unit-keyed [kernel_db] cache, which is tied to the
           monolithic instance. *)
        let db =
          Kernel.db_of_instance
            (Factor.restricted_instance inst c.Factor.c_relations)
        in
        let sentence = c.Factor.c_sentence in
        if exact then
          let count =
            Support.count_satisfying ?jobs ?guard ?cache ~db ~sentence ~nulls
              ~k ()
          in
          let p = R.make count (Enumerate.count ~nulls ~k) in
          ( R.mul est p, R.mul lo p, R.mul hi p, samples,
            { p_nulls = List.length nulls; p_exact = true; p_estimate = p;
              p_samples = 0
            }
            :: parts,
            base )
        else
          (* Sample index [base + i] keys its own (seed, index) stream:
             the per-component bases are cumulative, so no two
             components ever share a stream and the whole figure is
             reproducible for any ?jobs. *)
          let hits =
            (count_hits ?jobs ?guard ?cache ~db ~sentences:[ sentence ] ~nulls
               ~k ~space ~seed ~base n_i).(0)
          in
          let p = R.of_ints hits n_i in
          ( R.mul est p,
            R.mul lo (R.max R.zero (R.sub p eps_i)),
            R.mul hi (R.min R.one (R.add p eps_i)),
            samples + n_i,
            { p_nulls = List.length nulls; p_exact = false; p_estimate = p;
              p_samples = n_i
            }
            :: parts,
            base + n_i ))
      (R.one, R.one, R.one, 0, [], 0)
      comps
  in
  { f_estimate = estimate;
    f_ci_lo = R.max R.zero lo;
    f_ci_hi = R.min R.one hi;
    f_samples = samples;
    f_exact_parts = List.length comps - b;
    f_sampled_parts = b;
    f_parts = List.rev parts_rev;
    f_seed = seed;
    f_eps = eps;
    f_delta = delta
  }

let mu_k_boolean ?jobs ?guard ?cache ?stratify inst q ~k ~eps ~delta ~seed =
  if Query.arity q <> 0 then
    invalid_arg "Estimator.mu_k_boolean: query is not Boolean";
  mu_k ?jobs ?guard ?cache ?stratify inst q Tuple.empty ~k ~eps ~delta ~seed

let mu_cond_k ?jobs ?guard ?cache ~sigma inst q tuple ~k ~eps ~delta ~seed =
  if k < 1 then invalid_arg "Estimator.mu_cond_k: k must be >= 1";
  check_prob "delta" delta;
  (* δ/2 per Hoeffding event: the numerator and denominator frequencies
     must hold simultaneously (union bound). *)
  let n = sample_size ~eps ~delta:(R.div_int delta 2) in
  let answer = Query.instantiate q tuple in
  let both = F.And (sigma, answer) in
  let nulls =
    List.sort_uniq Int.compare
      (Instance.nulls inst @ Tuple.nulls tuple @ F.nulls sigma)
  in
  Obs.Trace.span
    ~attrs:
      [ ("k", string_of_int k); ("samples", string_of_int n);
        ("seed", string_of_int seed); ("mode", "conditional")
      ]
    "approx.run"
  @@ fun () ->
  let db = Support.kernel_db ?cache inst in
  let space = Enumerate.space_size ~nulls ~k in
  let hits =
    count_hits ?jobs ?guard ?cache ~db ~sentences:[ both; sigma ] ~nulls ~k
      ~space ~seed ~base:0 n
  in
  let num = hits.(0) and den = hits.(1) in
  let p_and = R.of_ints num n and p_sig = R.of_ints den n in
  let c_estimate = if den = 0 then R.zero else R.of_ints num den in
  let c_ci_lo =
    R.div (R.max R.zero (R.sub p_and eps)) (R.min R.one (R.add p_sig eps))
  in
  let c_ci_hi =
    let margin = R.sub p_sig eps in
    if R.compare margin R.zero <= 0 then R.one
    else R.min R.one (R.div (R.min R.one (R.add p_and eps)) margin)
  in
  { c_estimate; c_ci_lo; c_ci_hi; c_samples = n; c_hits_num = num;
    c_hits_den = den; c_seed = seed
  }
