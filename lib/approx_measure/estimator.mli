(** Seeded Monte-Carlo (ε,δ)-estimation of the finite measures [µ^k].

    The exact engine ({!Incomplete.Support}) enumerates all [k^m]
    valuations; beyond the [Arith.Bigint.Overflow] frontier it can
    only refuse. Following the randomized-approximation line of Arenas,
    Barceló & Monet (arXiv 1912.11064, 2011.06330), this module instead
    draws [n] valuations uniformly from [V^k(D)] and reports the hit
    frequency, with [n] sized by Hoeffding's inequality so that

      [P(|estimate − µ^k| > ε) < δ].

    {b Sampling.} When [k^m] fits a machine int the sampler draws a
    uniform rank and decodes it with {!Incomplete.Enumerate.valuation_of_rank}.
    Beyond the overflow frontier it draws the [m] mixed-radix digits
    independently — the same distribution (a uniform bigint rank {e is}
    [m] independent uniform digits in [\[0,k)]), with no bigint in the
    loop. Every quantity reported is an exact {!Arith.Rat}; floats
    appear only inside the one-off Hoeffding sample-size ceiling.

    {b Determinism.} Sample [i] draws from its own {!Srng.stream}
    keyed by [(seed, i)], so its verdict is independent of the chunk
    partition; chunk subtotals are ints summed in chunk order by
    {!Exec.Pool.fold_range}. A fixed seed therefore reproduces every
    figure bit-for-bit for any [?jobs] (1/2/4/…), guarded or not —
    enforced by [scripts/check-approx.sh] in CI.

    {b Stratification.} The optional second pass partitions [V^k(D)]
    by {e null support}: stratum [j] holds the valuations mapping
    exactly [j] of the [m] nulls into the anchor set [C ∪ Const(D)]
    (the constants collisions with which decide most support checks —
    paper §3.3). Stratum weights [C(m,j)·a^j·(k−a)^{m−j} / k^m] are
    exact rationals; allocations are inflated until the weighted
    Hoeffding bound again guarantees (ε,δ), so both passes carry the
    same-width confidence interval.

    Observability: each estimate runs under an [approx.run] trace span
    and bumps {!Obs.Metrics.approx_samples} / [approx_strata]. *)

(** {1 Parameters} *)

val rat_of_string : string -> (Arith.Rat.t, string) result
(** Parse a CLI/wire probability parameter: ["0.05"], [".5"], ["1/20"]
    or ["3"]. Exact — ["0.05"] is [1/20], no float round-trip. *)

val sample_size : eps:Arith.Rat.t -> delta:Arith.Rat.t -> int
(** The Hoeffding bound [⌈ln(2/δ) / (2ε²)⌉] (at least 1): the number
    of samples after which [P(|estimate − µ| > ε) < δ].
    @raise Invalid_argument unless [0 < ε < 1] and [0 < δ < 1]. *)

(** {1 Results} *)

type stratified = {
  s_estimate : Arith.Rat.t;
      (** [Σ_j w_j · hits_j/n_j] — unbiased for any allocation. *)
  s_ci_lo : Arith.Rat.t;
  s_ci_hi : Arith.Rat.t;
  s_samples : int;  (** total across strata; ≥ the first pass's [n]. *)
  s_strata : int;  (** strata of positive weight actually sampled. *)
}

type t = {
  estimate : Arith.Rat.t;  (** [hits/samples], exact. *)
  ci_lo : Arith.Rat.t;  (** [max(0, estimate − ε)]. *)
  ci_hi : Arith.Rat.t;  (** [min(1, estimate + ε)]. *)
  samples : int;
  hits : int;
  seed : int;
  eps : Arith.Rat.t;
  delta : Arith.Rat.t;
  stratified : stratified option;
}

(** {1 Estimators} *)

val mu_k :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:Incomplete.Support.cache ->
  ?stratify:bool ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  eps:Arith.Rat.t ->
  delta:Arith.Rat.t ->
  seed:int ->
  t
(** Estimate [µ^k(Q,D,ā)]. [?jobs]/[?guard]/[?cache] mean what they
    mean on {!Incomplete.Support.mu_k}; [?stratify] (default false)
    adds the null-support second pass.
    @raise Invalid_argument if [k < 1] or ε/δ are out of range. *)

(** {1 Factorized estimation} *)

type part = {
  p_nulls : int;  (** nulls of the component *)
  p_exact : bool;  (** swept exactly rather than sampled *)
  p_estimate : Arith.Rat.t;  (** the component factor [p̂ᵢ] *)
  p_samples : int;  (** 0 when exact *)
}

type factored = {
  f_estimate : Arith.Rat.t;  (** [∏ᵢ p̂ᵢ], exact rational. *)
  f_ci_lo : Arith.Rat.t;
  f_ci_hi : Arith.Rat.t;
  f_samples : int;  (** total drawn across sampled components. *)
  f_exact_parts : int;
  f_sampled_parts : int;
  f_parts : part list;  (** in component order. *)
  f_seed : int;
  f_eps : Arith.Rat.t;
  f_delta : Arith.Rat.t;
}

val mu_k_plan :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:Incomplete.Support.cache ->
  Relational.Instance.t ->
  Incomplete.Factor.plan ->
  k:int ->
  eps:Arith.Rat.t ->
  delta:Arith.Rat.t ->
  seed:int ->
  factored
(** Estimate [µ^k] component-by-component on a sound decomposition
    plan ({!Analysis.Decomp.plan} via {!Incomplete.Factor}): since
    [µ^k = ∏ᵢ µ^k_i] over the components, each factor is measured on
    its own restricted kernel. Components whose space [k^{mᵢ}] fits
    under a small cutoff are counted exactly (zero-width factor); the
    [b] oversized ones are sampled with [(ε/b, δ/b)] Hoeffding
    parameters, so the product carries
    [P(|f_estimate − µ^k| > ε) < δ] by the union bound — usually with
    far fewer samples than {!mu_k} needs for the same width, because
    each sample only evaluates one component's sentence. With [b = 0]
    the result is the exact measure and the interval collapses to a
    point. Deterministic for a fixed seed and any [?jobs]: sample
    index [i] of component [c] draws from the [(seed, baseᶜ + i)]
    stream with cumulative per-component bases.
    @raise Invalid_argument if [k < 1] or ε/δ are out of range. *)

val mu_k_boolean :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:Incomplete.Support.cache ->
  ?stratify:bool ->
  Relational.Instance.t ->
  Logic.Query.t ->
  k:int ->
  eps:Arith.Rat.t ->
  delta:Arith.Rat.t ->
  seed:int ->
  t
(** [µ^k(Q,D)] for Boolean [Q]. *)

type cond = {
  c_estimate : Arith.Rat.t;
      (** [hits_num/hits_den] — a ratio estimate of [µ^k(Q|Σ)]. *)
  c_ci_lo : Arith.Rat.t;
  c_ci_hi : Arith.Rat.t;
  c_samples : int;
  c_hits_num : int;  (** samples satisfying [Σ ∧ Q(ā)]. *)
  c_hits_den : int;  (** samples satisfying [Σ]. *)
  c_seed : int;
}

val mu_cond_k :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:Incomplete.Support.cache ->
  sigma:Logic.Formula.t ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  eps:Arith.Rat.t ->
  delta:Arith.Rat.t ->
  seed:int ->
  cond
(** Estimate the conditional measure [µ^k(Q|Σ,D,ā)] from one sample
    pass counting both [Σ ∧ Q(ā)] and [Σ]. Each frequency gets an
    (ε, δ/2) Hoeffding guarantee (so the sample is sized with δ/2 and
    the interval [\[(p̂_∧−ε)/(p̂_Σ+ε), (p̂_∧+ε)/(p̂_Σ−ε)\] ∩ \[0,1\]]
    holds with probability [> 1−δ] by the union bound); when [p̂_Σ ≤ ε]
    the upper bound degrades to 1, and with no [Σ]-hit at all the
    estimate is reported as 0 over the full interval. *)
