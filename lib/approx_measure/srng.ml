(* splitmix64 (Steele, Lea & Flood, OOPSLA 2014) — the same finalizer
   Java's SplittableRandom uses. Chosen over Stdlib.Random because the
   output must be identical across compiler versions, and over a
   heavier generator because each sample needs only a handful of
   draws from its own stream. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed seed = { state = mix64 (Int64.of_int seed) }

let stream ~seed ~index =
  (* Hash the pair, not just the sum: mixing the seed first keeps
     nearby (seed, index) pairs from colliding into nearby states. *)
  { state =
      mix64
        (Int64.add
           (mix64 (Int64.of_int seed))
           (Int64.mul golden (Int64.of_int index)))
  }

let next t =
  t.state <- Int64.add t.state golden;
  mix64 t.state

(* Top 62 bits: the widest draw that fits a nonnegative OCaml int. *)
let next62 t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let uniform t bound =
  if bound < 1 then invalid_arg "Srng.uniform: bound must be positive";
  if bound = 1 then 0
  else
    (* Rejection sampling: accept u iff its block [u - u mod bound,
       ... + bound) lies inside [0, 2^62), which makes every residue
       exactly equally likely. max_int - bound + 1 = 2^62 - bound. *)
    let rec go () =
      let u = next62 t in
      let r = u mod bound in
      if u - r <= max_int - bound + 1 then r else go ()
    in
    go ()
