(** Seeded, splittable pseudo-random streams for the Monte-Carlo
    estimator — a vendored splitmix64.

    [Stdlib.Random] is deliberately not used: its algorithm is an
    implementation detail of the compiler version, while the estimates
    printed by [certainty measure --approx] are cram-tested and gated
    byte-for-byte in CI, so the generator itself must be part of this
    code base.

    The determinism contract of the estimator rests on {!stream}: the
    draw sequence of sample [i] is a pure function of [(seed, i)] —
    never of which pool chunk the sample landed in — so any partition
    of the sample range produces bit-identical totals. *)

type t
(** A mutable generator state. Single-threaded, like {!Kernel.t}:
    parallel folds derive one stream per sample, never share one. *)

val of_seed : int -> t
(** A stream keyed by [seed] alone. *)

val stream : seed:int -> index:int -> t
(** The stream of sample [index] under [seed]. Distinct indices give
    decorrelated streams (each initial state is a splitmix64 hash of
    the pair). *)

val next : t -> int64
(** The next raw 64-bit draw. *)

val uniform : t -> int -> int
(** [uniform t bound] draws uniformly from [\[0, bound)], unbiased, by
    rejection over the top 62 bits of {!next} (so [bound] may be any
    positive OCaml int, including a full [max_int]-sized valuation
    space). [uniform t 1] is [0] and consumes no draw.
    @raise Invalid_argument if [bound < 1]. *)
