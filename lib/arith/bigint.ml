(* Sign-magnitude arbitrary-precision integers in base 10^9.

   Invariants: [mag] is little-endian with no most-significant zero
   digit; [sign = 0] iff [mag] is empty; every digit is in [0, base). *)

let base = 1_000_000_000
let base_digits = 9

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let t = top (n - 1) in
  if t < 0 then zero
  else if t = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (t + 1) }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int negation is safe digit-by-digit via arithmetic on the
       absolute value computed with care: use Int64-free trick by
       peeling the low digit before negating. *)
    let rec digits acc n =
      if n = 0 then acc else digits ((n mod base) :: acc) (n / base)
    in
    let ds =
      if n <> min_int then digits [] (abs n)
      else
        (* |min_int| overflows; peel one digit first. *)
        let low = -(n mod base) and high = -(n / base) in
        List.rev (low :: List.rev (digits [] high))
    in
    let ds = List.rev ds in
    { sign; mag = Array.of_list ds }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let sign t = t.sign
let is_zero t = t.sign = 0

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash t =
  Array.fold_left (fun acc d -> (acc * 31) + d) t.sign t.mag land max_int

(* Magnitude addition: no sign involved. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    if s >= base then begin
      r.(i) <- s - base;
      carry := 1
    end
    else begin
      r.(i) <- s;
      carry := 0
    end
  done;
  r

(* Magnitude subtraction; requires [a >= b]. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  assert (cmp_mag a b >= 0);
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let da = a.(i) in
    let db = if i < lb then b.(i) else 0 in
    let s = da - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then normalize a.sign (sub_mag a.mag b.mag)
    else normalize b.sign (sub_mag b.mag a.mag)

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t
let sub a b = add a (neg b)
let succ t = add t one
let pred t = sub t one

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    for j = 0 to lb - 1 do
      let cur = r.(i + j) + (ai * b.(j)) + !carry in
      r.(i + j) <- cur mod base;
      carry := cur / base
    done;
    let k = ref (i + lb) in
    while !carry > 0 do
      let cur = r.(!k) + !carry in
      r.(!k) <- cur mod base;
      carry := cur / base;
      incr k
    done
  done;
  r

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

(* Multiply a magnitude by a small non-negative int (< base). *)
let mul_mag_small a m =
  if m = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * m) + !carry in
      r.(i) <- cur mod base;
      carry := cur / base
    done;
    let k = ref la in
    while !carry > 0 do
      r.(!k) <- !carry mod base;
      carry := !carry / base;
      incr k
    done;
    r
  end

(* Long division of magnitudes: processes dividend digits from the most
   significant end, keeping the running remainder as a magnitude and
   finding each quotient digit by binary search. Quadratic, but our
   operands are tiny. *)
let divmod_mag a b =
  assert (Array.length b > 0);
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref [||] in
  for i = la - 1 downto 0 do
    (* rem := rem * base + a.(i) *)
    let shifted =
      let lr = Array.length !rem in
      let r' = Array.make (lr + 1) 0 in
      Array.blit !rem 0 r' 1 lr;
      r'.(0) <- a.(i);
      r'
    in
    let cur = (normalize 1 shifted).mag in
    (* find the largest d in [0, base) with d*b <= cur *)
    let lo = ref 0 and hi = ref (base - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if cmp_mag (normalize 1 (mul_mag_small b mid)).mag cur <= 0 then
        lo := mid
      else hi := mid - 1
    done;
    q.(i) <- !lo;
    let prod = (normalize 1 (mul_mag_small b !lo)).mag in
    rem := sub_mag cur prod;
    rem := (normalize 1 !rem).mag
  done;
  (normalize 1 q, normalize 1 !rem)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else
    let q, r = divmod_mag a.mag b.mag in
    let q = if q.sign = 0 then zero else { q with sign = a.sign * b.sign } in
    let r = if r.sign = 0 then zero else { r with sign = a.sign } in
    (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent"
  else begin
    let rec go acc b n =
      if n = 0 then acc
      else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
      else go acc (mul b b) (n lsr 1)
    in
    go one b n
  end

let rec gcd a b = if is_zero b then abs a else gcd b (rem a b)
let mul_int a n = mul a (of_int n)
let add_int a n = add a (of_int n)

let to_int_opt =
  (* Range check against precomputed bounds, then accumulate; inside the
     bounds no intermediate step can overflow. *)
  let max_int_b = lazy (of_int Stdlib.max_int) in
  let min_int_b = lazy (of_int Stdlib.min_int) in
  fun t ->
    if compare t (Lazy.force max_int_b) > 0 then None
    else if compare t (Lazy.force min_int_b) < 0 then None
    else begin
      let n = Array.length t.mag in
      let acc = ref 0 in
      for i = n - 1 downto 0 do
        acc := (!acc * base) + (t.sign * t.mag.(i))
      done;
      Some !acc
    end

exception Overflow of t

let to_int_exn t =
  match to_int_opt t with
  | Some n -> n
  | None -> raise (Overflow t)

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let b = Buffer.create 16 in
    if t.sign < 0 then Buffer.add_char b '-';
    let n = Array.length t.mag in
    Buffer.add_string b (string_of_int t.mag.(n - 1));
    for i = n - 2 downto 0 do
      Buffer.add_string b (Printf.sprintf "%09d" t.mag.(i))
    done;
    Buffer.contents b
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign_given, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  String.iter
    (fun c ->
      if not (c >= '0' && c <= '9') && c <> '-' && c <> '+' then
        invalid_arg "Bigint.of_string: invalid character")
    s;
  let ndigits = len - start in
  let nlimbs = (ndigits + base_digits - 1) / base_digits in
  let mag = Array.make nlimbs 0 in
  (* Fill limbs from the least-significant end of the string. *)
  let pos = ref len in
  for i = 0 to nlimbs - 1 do
    let lo = Stdlib.max start (!pos - base_digits) in
    mag.(i) <- int_of_string (String.sub s lo (!pos - lo));
    pos := lo
  done;
  normalize sign_given mag

let to_float t =
  let f = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  float_of_int t.sign *. !f

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
  let ( ~- ) = neg
end

let pp fmt t = Format.pp_print_string fmt (to_string t)

let () =
  Printexc.register_printer (function
    | Overflow t ->
        Some
          (Printf.sprintf "Bigint.Overflow: %s does not fit in a native int"
             (to_string t))
    | _ -> None)
