(** Arbitrary-precision signed integers.

    Vendored because the sealed build environment provides no [zarith].
    The representation is sign–magnitude with little-endian digit arrays
    in base [10^9], which keeps every intermediate product within the
    63-bit native integer range and makes decimal printing trivial.

    All values are immutable and all operations are purely functional.
    Sizes arising in this project (counts of valuations, polynomial
    coefficients) stay small — at most a few hundred digits — so the
    schoolbook algorithms used here are entirely adequate. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int_opt : t -> int option
(** [None] if the value does not fit in a native [int]. *)

exception Overflow of t
(** Raised by {!to_int_exn} with the offending value, so callers (the
    CLI in particular) can report {e which} space size overflowed
    instead of dying on an anonymous [Failure]. A printer is
    registered, so uncaught it still shows the value. *)

val to_int_exn : t -> int
(** @raise Overflow if the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optionally-signed decimal literal.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val to_float : t -> float
(** Approximate conversion, for display only. *)

(** {1 Predicates and comparisons} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod a b = (q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] carrying the sign of [a] (as for OCaml's
    [(/)] and [(mod)]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val pow : t -> int -> t
(** [pow b n] is [b] raised to the non-negative power [n].
    @raise Invalid_argument if [n < 0]. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative; [gcd 0 0 = 0]. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( ~- ) : t -> t
end

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
