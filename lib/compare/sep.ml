module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Classes = Incomplete.Classes
module Support = Incomplete.Support

let witness inst q a b =
  if Tuple.arity a <> Query.arity q || Tuple.arity b <> Query.arity q then
    invalid_arg "Sep: tuple arity does not match the query"
  else begin
    Obs.Trace.span "sep.witness" @@ fun () ->
    let sa = Query.instantiate q a and sb = Query.instantiate q b in
    let db = Support.kernel_db inst in
    let split = Incomplete.Kernel.split db in
    let anchor_set = Support.anchor_set_sentences_split split [ sa; sb ] in
    let nulls =
      List.sort_uniq Int.compare
        (Incomplete.Split.nulls split @ Tuple.nulls a @ Tuple.nulls b)
    in
    (* Both sentences compiled once for the whole class sweep. *)
    let ca = Support.checker db sa and cb = Support.checker db sb in
    List.find_map
      (fun cls ->
        let v = Classes.representative ~anchor_set cls in
        if Support.check ca v && not (Support.check cb v) then Some v
        else None)
      (Classes.enumerate ~anchor_set ~nulls)
  end

let sep inst q a b = Option.is_some (witness inst q a b)
