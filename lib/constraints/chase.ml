module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value

type outcome =
  | Success of Relational.Instance.t
  | Failure of Dependency.fd * Relational.Tuple.t * Relational.Tuple.t

let find_violation inst (fd : Dependency.fd) =
  let rel = Instance.relation inst fd.Dependency.fd_relation in
  let tuples = Relation.to_list rel in
  let key t = List.map (Tuple.get t) fd.Dependency.fd_lhs in
  let rec scan = function
    | [] -> None
    | t :: rest -> (
        let kt = key t in
        match
          List.find_opt
            (fun u ->
              List.for_all2 Value.equal kt (key u)
              && not (Value.equal (Tuple.get t fd.Dependency.fd_rhs)
                        (Tuple.get u fd.Dependency.fd_rhs)))
            rest
        with
        | Some u -> Some (t, u)
        | None -> scan rest)
  in
  scan tuples

(* Replace value [from_v] by [to_v] everywhere in the instance. *)
let substitute from_v to_v inst =
  Instance.map_values (fun v -> if Value.equal v from_v then to_v else v) inst

type step = Dependency.fd * Value.t * Value.t

let rec run fds inst (steps : step list) =
  let violation =
    List.find_map
      (fun fd ->
        match find_violation inst fd with
        | Some (t, u) -> Some (fd, t, u)
        | None -> None)
      fds
  in
  match violation with
  | None -> (List.rev steps, Success inst)
  | Some (fd, t, u) -> (
      let a = Tuple.get t fd.Dependency.fd_rhs in
      let b = Tuple.get u fd.Dependency.fd_rhs in
      match (a, b) with
      | Value.Null _, _ ->
          Obs.Metrics.incr Obs.Metrics.chase_steps;
          run fds (substitute a b inst) ((fd, a, b) :: steps)
      | Value.Const _, Value.Null _ ->
          Obs.Metrics.incr Obs.Metrics.chase_steps;
          run fds (substitute b a inst) ((fd, b, a) :: steps)
      | Value.Const _, Value.Const _ -> (List.rev steps, Failure (fd, t, u)))

let trace fds inst = Obs.Trace.span "chase.run" (fun () -> run fds inst [])
let chase fds inst = snd (trace fds inst)

let chase_constraints schema cs inst =
  chase (Dependency.fds_of_schema schema cs) inst

let successful = function Success i -> Some i | Failure _ -> None
