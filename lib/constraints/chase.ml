module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value

type outcome =
  | Success of Relational.Instance.t
  | Failure of Dependency.fd * Relational.Tuple.t * Relational.Tuple.t

let find_violation inst (fd : Dependency.fd) =
  let rel = Instance.relation inst fd.Dependency.fd_relation in
  let tuples = Relation.to_list rel in
  let key t = List.map (Tuple.get t) fd.Dependency.fd_lhs in
  let rec scan = function
    | [] -> None
    | t :: rest -> (
        let kt = key t in
        match
          List.find_opt
            (fun u ->
              List.for_all2 Value.equal kt (key u)
              && not (Value.equal (Tuple.get t fd.Dependency.fd_rhs)
                        (Tuple.get u fd.Dependency.fd_rhs)))
            rest
        with
        | Some u -> Some (t, u)
        | None -> scan rest)
  in
  scan tuples

(* Replace value [from_v] by [to_v] everywhere in the instance. A
   unification step always rewrites away a null (a constant pair is a
   hard violation, not a step), so relations without a single null
   cannot mention [from_v] and are kept physically — on the typical
   mostly-ground database the rewrite touches only the small
   null-carrying relations instead of rebuilding everything. *)
let substitute from_v to_v inst =
  List.fold_left
    (fun acc name ->
      let r = Instance.relation inst name in
      if Relation.exists Tuple.has_null r then
        Instance.set_relation name
          (Relation.map_values
             (fun v -> if Value.equal v from_v then to_v else v)
             r)
          acc
      else acc)
    inst
    (Relational.Schema.relations (Instance.schema inst))

type step = Dependency.fd * Value.t * Value.t

let rec run fds inst (steps : step list) =
  let violation =
    List.find_map
      (fun fd ->
        match find_violation inst fd with
        | Some (t, u) -> Some (fd, t, u)
        | None -> None)
      fds
  in
  match violation with
  | None -> (List.rev steps, Success inst)
  | Some (fd, t, u) -> (
      let a = Tuple.get t fd.Dependency.fd_rhs in
      let b = Tuple.get u fd.Dependency.fd_rhs in
      match (a, b) with
      | Value.Null _, _ ->
          Obs.Metrics.incr Obs.Metrics.chase_steps;
          run fds (substitute a b inst) ((fd, a, b) :: steps)
      | Value.Const _, Value.Null _ ->
          Obs.Metrics.incr Obs.Metrics.chase_steps;
          run fds (substitute b a inst) ((fd, b, a) :: steps)
      | Value.Const _, Value.Const _ -> (List.rev steps, Failure (fd, t, u)))

let trace fds inst = Obs.Trace.span "chase.run" (fun () -> run fds inst [])
let chase fds inst = snd (trace fds inst)

let chase_constraints schema cs inst =
  chase (Dependency.fds_of_schema schema cs) inst

let successful = function Success i -> Some i | Failure _ -> None

(* ------------------------------------------------------------------ *)
(* Incremental chase under single-tuple insertion                      *)
(* ------------------------------------------------------------------ *)

(* The recorded steps of a finished chase of [D] form a valid prefix of
   a chase sequence of [D + t]: each step fired on a violating pair
   that the insertion cannot remove. So instead of re-chasing from
   scratch we replay the cumulative substitution on the incoming tuple
   alone, add it to the already-chased instance, and resume the
   fixpoint — which, by confluence, agrees with [chase fds (D + t)] up
   to a renaming of nulls (and exactly on success/failure). When no FD
   constrains the touched relation the resume is free: the new tuple
   cannot create a violation, so the chased instance plus the
   substituted tuple already is the fixpoint. *)
let apply_steps (steps : step list) tuple =
  List.fold_left
    (fun t (_, from_v, to_v) ->
      Tuple.map (fun v -> if Value.equal v from_v then to_v else v) t)
    tuple steps

let chase_inc_insert fds ~chased ~steps ~name ~tuple =
  Obs.Trace.span "chase.inc_insert" @@ fun () ->
  let tuple = apply_steps steps tuple in
  let inst = Instance.add_tuple name tuple chased in
  if List.exists (fun fd -> String.equal fd.Dependency.fd_relation name) fds
  then run fds inst (List.rev steps)
  else (steps, Success inst)

let chase_inc fds ~prev ~name ~tuple =
  match prev with
  | _, Failure _ ->
      (* An FD clash between two constant tuples survives any
         insertion: the chase of the grown instance fails too (with
         the same witness pair), so the memo stands as-is. *)
      prev
  | steps, Success chased -> chase_inc_insert fds ~chased ~steps ~name ~tuple

(* ------------------------------------------------------------------ *)
(* Bounded chase with tuple-generating dependencies                    *)
(* ------------------------------------------------------------------ *)

type tgd_outcome =
  | Tgd_fixpoint of Relational.Instance.t
  | Tgd_failed of Dependency.fd * Relational.Tuple.t * Relational.Tuple.t
  | Tgd_budget of Relational.Instance.t

(* The standard chase: alternate EGD repair (the FD chase above, which
   always terminates — each step removes a null or fails) with TGD
   steps that repair an unmatched inclusion by inserting a target
   tuple, exported columns copied, existential columns filled with
   fresh nulls. Only TGD insertions count against [max_steps]: they
   are the only steps a cyclic dependency set can fire forever.
   Weakly acyclic sets ({!Wacyclic.check}) reach a fixpoint within a
   polynomial number of steps on every instance — the certificate the
   property tests hold this oracle against. *)
let inclusions deps =
  List.filter_map
    (function
      | Dependency.Ind i ->
          Some
            ( i.Dependency.ind_src, i.Dependency.ind_src_cols,
              i.Dependency.ind_dst, i.Dependency.ind_dst_cols )
      | Dependency.ForeignKey fk ->
          Some
            ( fk.Dependency.fk_src, fk.Dependency.fk_src_cols,
              fk.Dependency.fk_dst, fk.Dependency.fk_dst_cols )
      | Dependency.Fd _ | Dependency.Key _ -> None)
    deps

let find_ind_violation inst (src, src_cols, dst, dst_cols) =
  let dst_rel = Instance.relation inst dst in
  let matched proj =
    Relation.exists
      (fun u ->
        List.for_all2 Value.equal proj (List.map (Tuple.get u) dst_cols))
      dst_rel
  in
  Relation.fold
    (fun t acc ->
      match acc with
      | Some _ -> acc
      | None ->
          let proj = List.map (Tuple.get t) src_cols in
          if matched proj then None else Some proj)
    (Instance.relation inst src)
    None

let chase_tgds ?(max_steps = 10_000) schema deps inst =
  let fds = Dependency.fds_of_schema schema deps in
  let inds = inclusions deps in
  let fresh =
    ref (List.fold_left max 0 (Instance.nulls inst))
  in
  let fresh_null () =
    incr fresh;
    Value.Null !fresh
  in
  let rec loop inst steps =
    match chase fds inst with
    | Failure (fd, t, u) -> Tgd_failed (fd, t, u)
    | Success inst -> (
        let violation =
          List.find_map
            (fun ind ->
              match find_ind_violation inst ind with
              | Some proj -> Some (ind, proj)
              | None -> None)
            inds
        in
        match violation with
        | None -> Tgd_fixpoint inst
        | Some ((_, _, dst, dst_cols), proj) ->
            if steps >= max_steps then Tgd_budget inst
            else (
              Obs.Metrics.incr Obs.Metrics.chase_steps;
              let arity = Relational.Schema.arity (Instance.schema inst) dst in
              let cells =
                Array.init arity (fun p ->
                    match List.assoc_opt p (List.combine dst_cols proj) with
                    | Some v -> v
                    | None -> fresh_null ())
              in
              loop
                (Instance.add_tuple dst (Tuple.of_array cells) inst)
                (steps + 1)))
  in
  loop inst 0

let tgd_result = function
  | Tgd_fixpoint i | Tgd_budget i -> Some i
  | Tgd_failed _ -> None
