(** The chase with functional dependencies (paper §4.4).

    A chase step picks two tuples violating an FD [X → A] (equal on
    [X], different on [A]) and
    - replaces a null by the other side's constant everywhere, or
    - replaces one null by the other everywhere, or
    - fails when both sides are distinct constants.

    Every successful chase sequence yields the same instance up to
    renaming of nulls; its length is polynomial (each step removes a
    null or fails). [chase_Σ(D)] is the basis of Theorem 5 and
    Corollary 4: for FDs, [µ(Q|Σ,D,ā) = µ(Q, chase_Σ(D), ā)]. *)

type outcome =
  | Success of Relational.Instance.t
  | Failure of Dependency.fd * Relational.Tuple.t * Relational.Tuple.t
      (** the violated FD and the two clashing tuples *)

val chase : Dependency.fd list -> Relational.Instance.t -> outcome

val chase_constraints :
  Relational.Schema.t -> Dependency.t list -> Relational.Instance.t -> outcome
(** Chases with all FDs contributed by the constraint set (keys and
    foreign-key targets included); inclusion dependencies are ignored —
    the FD chase does not handle them. *)

val successful : outcome -> Relational.Instance.t option

val trace :
  Dependency.fd list ->
  Relational.Instance.t ->
  (Dependency.fd * Relational.Value.t * Relational.Value.t) list * outcome
(** Like {!chase} but also returns the substitution steps performed
    (the FD fired, the value replaced, the value it was replaced by). *)

(** {1 Incremental chase}

    Resuming a finished chase after a single-tuple insertion, instead
    of re-chasing the grown instance from scratch. The recorded steps
    of [chase_Σ(D)] are a valid prefix of a chase sequence of [D + t]
    (an insertion removes no violation), so it suffices to apply their
    cumulative substitution to [t] alone, add the result to the chased
    instance, and resume the fixpoint — by confluence this agrees with
    the from-scratch chase up to a renaming of nulls, and exactly on
    success versus failure. Cost: [O(|steps|)] plus the resumed
    fixpoint, which is empty whenever no FD constrains the touched
    relation. Deletions get no such shortcut (removing a tuple can
    retract a forced merge): drop the memo and re-chase lazily. *)

val chase_inc :
  Dependency.fd list ->
  prev:
    ((Dependency.fd * Relational.Value.t * Relational.Value.t) list * outcome) ->
  name:string ->
  tuple:Relational.Tuple.t ->
  (Dependency.fd * Relational.Value.t * Relational.Value.t) list * outcome
(** [chase_inc fds ~prev ~name ~tuple] where [prev = trace fds d]
    returns the steps and outcome of the chase of [d] with [tuple]
    added to relation [name], reusing [prev]'s work. A failed [prev]
    is returned unchanged — an FD clash between constant tuples
    survives any insertion. *)

(** {1 Chase with tuple-generating dependencies}

    The standard chase over the full constraint set: EGD repair (the
    FD chase above) alternated with TGD steps that insert a target
    tuple for each unmatched inclusion, fresh nulls in existential
    positions. Unlike the FD-only chase this need not terminate — the
    step budget applies to TGD insertions only. {!Wacyclic.check}
    certifies termination statically: on a weakly acyclic set the
    fixpoint is reached on every instance within polynomially many
    steps, so a generous budget never triggers (the property-tested
    agreement between certificate and oracle). *)

type tgd_outcome =
  | Tgd_fixpoint of Relational.Instance.t
      (** all dependencies satisfied (naïve reading) *)
  | Tgd_failed of Dependency.fd * Relational.Tuple.t * Relational.Tuple.t
      (** an FD clashed two constants — no repair exists *)
  | Tgd_budget of Relational.Instance.t
      (** TGD budget exhausted before a fixpoint; partial result *)

val chase_tgds :
  ?max_steps:int ->
  Relational.Schema.t ->
  Dependency.t list ->
  Relational.Instance.t ->
  tgd_outcome
(** [max_steps] defaults to 10_000 TGD insertions. *)

val tgd_result : tgd_outcome -> Relational.Instance.t option
(** The (possibly partial) chased instance; [None] on failure. *)
