module Schema = Relational.Schema

type position = { pos_rel : string; pos_col : int }

type verdict =
  | Weakly_acyclic
  | Special_cycle of position list
      (** a cycle through at least one special edge, in traversal
          order (last position closes back to the first) *)

type t = {
  n_positions : int;
  n_regular : int;
  n_special : int;
  verdict : verdict;
}

let position_string p = Printf.sprintf "%s[%d]" p.pos_rel (p.pos_col + 1)

(* The dependency graph of Fagin et al.: nodes are (relation, column)
   positions; every inclusion dependency π_src(R) ⊆ π_dst(S) — the TGD
   ∀x̄(R(x̄) → ∃ȳ(S(ȳ) ∧ agree)) — contributes, for each exported
   column pair (src_i, dst_i), a regular edge (R,src_i) → (S,dst_i)
   and a special edge (R,src_i) → (S,p) for every existential position
   p of S (those the TGD invents fresh values for). FDs and keys are
   equality-generating and add no edges. *)
let edges schema deps =
  let ind_edges src src_cols dst dst_cols =
    let dst_arity = Schema.arity schema dst in
    let existential =
      List.filter
        (fun p -> not (List.mem p dst_cols))
        (List.init dst_arity Fun.id)
    in
    List.concat_map
      (fun (sc, dc) ->
        let u = { pos_rel = src; pos_col = sc } in
        ((u, { pos_rel = dst; pos_col = dc }), false)
        :: List.map
             (fun p -> ((u, { pos_rel = dst; pos_col = p }), true))
             existential)
      (List.combine src_cols dst_cols)
  in
  List.concat_map
    (function
      | Dependency.Ind i ->
          ind_edges i.Dependency.ind_src i.Dependency.ind_src_cols
            i.Dependency.ind_dst i.Dependency.ind_dst_cols
      | Dependency.ForeignKey fk ->
          (* The inclusion half; the key half is an EGD. *)
          ind_edges fk.Dependency.fk_src fk.Dependency.fk_src_cols
            fk.Dependency.fk_dst fk.Dependency.fk_dst_cols
      | Dependency.Fd _ | Dependency.Key _ -> [])
    deps

let check schema deps =
  let all_edges = edges schema deps in
  let n_special =
    List.length (List.filter (fun (_, special) -> special) all_edges)
  in
  let n_regular = List.length all_edges - n_special in
  let n_positions =
    List.fold_left (fun acc r -> acc + Schema.arity schema r) 0
      (Schema.relations schema)
  in
  (* A special edge u → v lies on a cycle iff u is reachable from v.
     BFS with parents recovers a witness path v ⇝ u; closing it with
     the edge gives the cycle. Graphs here are tiny (positions ×
     dependencies), so per-edge BFS is fine. *)
  let succs u =
    List.filter_map
      (fun ((a, b), _) -> if a = u then Some b else None)
      all_edges
  in
  let find_path src dst =
    if src = dst then Some [ src ]
    else
      let parent = Hashtbl.create 16 in
      let queue = Queue.create () in
      Queue.add src queue;
      Hashtbl.replace parent src src;
      let rec bfs () =
        if Queue.is_empty queue then None
        else
          let u = Queue.pop queue in
          if u = dst then (
            let rec walk v acc =
              if v = src then src :: acc
              else walk (Hashtbl.find parent v) (v :: acc)
            in
            Some (walk dst []))
          else (
            List.iter
              (fun v ->
                if not (Hashtbl.mem parent v) then (
                  Hashtbl.replace parent v u;
                  Queue.add v queue))
              (succs u);
            bfs ())
      in
      bfs ()
  in
  let special_cycle =
    List.find_map
      (fun ((u, v), special) ->
        if not special then None
        else
          match find_path v u with
          | None -> None
          | Some path -> Some path)
      all_edges
  in
  { n_positions;
    n_regular;
    n_special;
    verdict =
      (match special_cycle with
      | None -> Weakly_acyclic
      | Some cyc -> Special_cycle cyc)
  }

let is_weakly_acyclic t =
  match t.verdict with Weakly_acyclic -> true | Special_cycle _ -> false

let verdict_string t =
  match t.verdict with
  | Weakly_acyclic -> "weakly acyclic"
  | Special_cycle _ -> "special-edge cycle"

let cycle_string t =
  match t.verdict with
  | Weakly_acyclic -> ""
  | Special_cycle cyc ->
      String.concat " -> " (List.map position_string cyc)

(* Local JSON string escaper: [Analysis.Diag.json_string] lives above
   this library in the dependency DAG. Position/verdict strings are
   ASCII, so escaping quote/backslash/control chars suffices. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json t =
  let fields =
    [ ("verdict", json_string (verdict_string t));
      ("weakly_acyclic", string_of_bool (is_weakly_acyclic t));
      ("positions", string_of_int t.n_positions);
      ("regular_edges", string_of_int t.n_regular);
      ("special_edges", string_of_int t.n_special)
    ]
    @
    match t.verdict with
    | Weakly_acyclic -> []
    | Special_cycle cyc ->
        [ ( "cycle",
            "["
            ^ String.concat ", "
                (List.map (fun p -> json_string (position_string p)) cyc)
            ^ "]" )
        ]
  in
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_string k ^ ": " ^ v) fields)
  ^ "}"
