(** Weak acyclicity of a dependency set: a static chase-termination
    certificate (Fagin–Kolaitis–Miller–Popa).

    Inclusion dependencies are tuple-generating: chasing them invents
    fresh nulls, and a cyclic flow of invented values into positions
    that invent more can run forever. The dependency graph has one
    node per (relation, column) position; each IND (and the inclusion
    half of each foreign key) adds a {e regular} edge from every
    exported source position to the matching target position and a
    {e special} edge from every exported source position to every
    existential target position. FDs and keys are equality-generating
    and add no edges. The set is {e weakly acyclic} iff no cycle goes
    through a special edge — and then the chase terminates on every
    instance in polynomially many steps, no step budget needed.

    [Analysis.Classify] turns the verdict into dispatch (ANL306 /
    ANL307) and the CLI [chase] command into an unbounded-vs-bounded
    run decision; the qcheck suite cross-checks the verdict against a
    bounded-chase oracle ({!Chase.chase_tgds}). *)

type position = { pos_rel : string; pos_col : int }

type verdict =
  | Weakly_acyclic
  | Special_cycle of position list
      (** witness: a path closing a cycle through a special edge *)

type t = {
  n_positions : int;
  n_regular : int;
  n_special : int;
  verdict : verdict;
}

val check : Relational.Schema.t -> Dependency.t list -> t
(** The certificate; [Weakly_acyclic] vacuously for EGD-only sets. *)

val is_weakly_acyclic : t -> bool
val verdict_string : t -> string
val cycle_string : t -> string
(** ["R[1] -> S[2] -> R[1]"]; [""] when weakly acyclic. Columns are
    printed 1-based, matching the constraint syntax. *)

val position_string : position -> string
val to_json : t -> string
