module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Formula = Logic.Formula
module Enumerate = Incomplete.Enumerate
module Support = Incomplete.Support
module Poly = Arith.Poly
module Rat = Arith.Rat
module B = Arith.Bigint

type report = { numerator : Poly.t; denominator : Poly.t; value : Rat.t }

let limit num den =
  match Poly.limit_ratio num den with
  | Poly.Finite r -> r
  | Poly.Undefined -> Rat.zero (* Σ unsatisfiable in D: convention µ = 0 *)
  | Poly.Infinite ->
      (* impossible: Supp(Σ∧Q) ⊆ Supp(Σ) gives deg num ≤ deg den *)
      assert false

let mu_cond_report ?jobs ?cache ~sigma inst q tuple =
  Obs.Trace.span "conditional.report" @@ fun () ->
  let answer = Query.instantiate q tuple in
  (* One class pass counts |Supp^k(Σ∧Q)| and |Supp^k(Σ)| together; with
     ?jobs the pass is chunked over domains, so the numerator and
     denominator polynomials are accumulated concurrently. *)
  let sp =
    Support_poly.of_sentences ?jobs ?cache inst
      [ Formula.And (sigma, answer); sigma ]
  in
  match sp.Support_poly.polys with
  | [ numerator; denominator ] ->
      { numerator; denominator; value = limit numerator denominator }
  | _ -> assert false

let mu_cond ?jobs ?cache ~sigma inst q tuple =
  (mu_cond_report ?jobs ?cache ~sigma inst q tuple).value

let mu_cond_boolean ?jobs ?cache ~sigma inst q =
  if Query.arity q <> 0 then
    invalid_arg "Conditional.mu_cond_boolean: query not Boolean"
  else mu_cond ?jobs ?cache ~sigma inst q Tuple.empty

let mu_cond_deps ?jobs ?cache schema deps inst q tuple =
  mu_cond ?jobs ?cache
    ~sigma:(Constraints.Dependency.set_to_formula schema deps) inst q tuple

let mu_cond_deps_direct ?jobs deps inst q tuple =
  let answer = Query.instantiate q tuple in
  (* Dependencies mention no constants, so the anchor set only needs the
     database's constants and those of Q(ā). *)
  let anchor_set = Incomplete.Support.anchor_set_sentences inst [ answer ] in
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)
  in
  let sigma_holds _v complete = Constraints.Dependency.all_hold complete deps in
  (* [of_predicates] already materialized v(D) for the dependency
     check; reuse it for the answer sentence instead of completing the
     instance a second time. *)
  let answer_holds v complete =
    Logic.Eval.sentence_holds complete
      (Formula.map_values (Incomplete.Valuation.value v) answer)
  in
  let both v complete = sigma_holds v complete && answer_holds v complete in
  let sp =
    Support_poly.of_predicates ?jobs ~anchor_set ~nulls inst
      [ both; sigma_holds ]
  in
  match sp.Support_poly.polys with
  | [ numerator; denominator ] -> limit numerator denominator
  | _ -> assert false

let mu_cond_k ?jobs ?guard ?cache ~sigma inst q tuple ~k =
  Obs.Trace.span "conditional.mu_k" ~attrs:[ ("k", string_of_int k) ]
  @@ fun () ->
  let answer = Query.instantiate q tuple in
  let nulls =
    List.sort_uniq Int.compare
      (Instance.nulls inst @ Tuple.nulls tuple @ Formula.nulls sigma)
  in
  let db = Support.kernel_db ?cache inst in
  let num, den =
    match Enumerate.space_size ~nulls ~k with
    | Some n ->
        (* The exhaustive sweep: each chunk steps one odometer through
           its rank range and feeds the digit fast path of the calling
           domain's memoized Σ and Q(ā) kernels — an answer check only
           when Σ holds, exactly like the sequential pass, and no
           verdict-cache traffic (every key of the sweep is distinct).
           Bigint partial sums are exact, so any chunking gives the
           sequential pair. *)
        Exec.Pool.fold_range ?jobs ?guard ~min_work:512 ~n
          ~chunk:(fun lo hi ->
            let sig_kern = Support.domain_kernel db sigma in
            let ans_kern = Support.domain_kernel db answer in
            Incomplete.Kernel.prepare_digits sig_kern ~nulls;
            Incomplete.Kernel.prepare_digits ans_kern ~nulls;
            Obs.Metrics.add Obs.Metrics.valuations_evaluated (hi - lo);
            Obs.Metrics.add Obs.Metrics.kernel_refreshes (hi - lo);
            let num, den =
              Enumerate.fold_digits_range ~nulls ~k ~lo ~hi
                (fun ((num, den) as acc) digits ->
                  if Incomplete.Kernel.holds_digits sig_kern digits then begin
                    Obs.Metrics.incr Obs.Metrics.valuations_evaluated;
                    Obs.Metrics.incr Obs.Metrics.kernel_refreshes;
                    let num =
                      if Incomplete.Kernel.holds_digits ans_kern digits then
                        num + 1
                      else num
                    in
                    (num, den + 1)
                  end
                  else acc)
                (0, 0)
            in
            (B.of_int num, B.of_int den))
          ~combine:(fun (n1, d1) (n2, d2) -> (B.add n1 n2, B.add d1 d2))
          (B.zero, B.zero)
    | None ->
        (match guard with Some g -> g () | None -> ());
        let sig_chk = Support.checker ?cache db sigma in
        let ans_chk = Support.checker ?cache db answer in
        Enumerate.fold_valuations ~nulls ~k
          (fun (num, den) v ->
            if Support.check sig_chk v then
              let num = if Support.check ans_chk v then B.succ num else num in
              (num, B.succ den)
            else (num, den))
          (B.zero, B.zero)
  in
  if B.is_zero den then Rat.zero else Rat.make num den

(* Factorized µ^k(Q|Σ): numerator and denominator counts factorize
   independently (Σ∧Q(ā) and Σ have their own interaction graphs),
   but both plans must sweep the same null set — the one the
   monolithic pass above uses — so the quotient is the identical
   reduced rational. [cond_decomp] builds both certificates on that
   shared sweep. *)
let cond_decomp ?k ~sigma inst q tuple =
  let answer = Query.instantiate q tuple in
  let extra =
    List.sort_uniq Int.compare (Tuple.nulls tuple @ Formula.nulls sigma)
  in
  ( Analysis.Decomp.analyze ?k ~extra_nulls:extra inst
      (Formula.And (sigma, answer)),
    Analysis.Decomp.analyze ?k ~extra_nulls:extra inst sigma )

let mu_cond_k_plans ?jobs ?guard ?cache ~num_plan ~den_plan inst ~k =
  Obs.Trace.span "conditional.mu_k"
    ~attrs:[ ("k", string_of_int k); ("decomp", "1") ]
  @@ fun () ->
  let num = Support.supp_count_plan ?jobs ?guard ?cache inst num_plan ~k in
  let den = Support.supp_count_plan ?jobs ?guard ?cache inst den_plan ~k in
  if B.is_zero den then Rat.zero else Rat.make num den

let mu_implication ?jobs ?cache ~sigma inst q tuple =
  let answer = Query.instantiate q tuple in
  let sp =
    Support_poly.of_sentences ?jobs ?cache inst
      [ Formula.Or (Formula.Not sigma, answer) ]
  in
  match sp.Support_poly.polys with
  | [ p ] -> limit p sp.Support_poly.total
  | _ -> assert false

type strategy = Chase_fds | Symbolic

let strategy deps tuple =
  if
    (Analysis.Classify.constraint_class deps).Analysis.Classify.fd_only
    && not (Tuple.has_null tuple)
  then Chase_fds
  else Symbolic

let mu_cond_chased outcome q tuple =
  if Tuple.has_null tuple then
    invalid_arg "Conditional.mu_cond_chased: tuple must be null-free"
  else begin
    match outcome with
    | Constraints.Chase.Failure _ -> Rat.zero
    | Constraints.Chase.Success chased ->
        if Incomplete.Naive.tuple_in chased q tuple then Rat.one else Rat.zero
  end

let mu_cond_fds fds inst q tuple =
  if Tuple.has_null tuple then
    invalid_arg "Conditional.mu_cond_fds: tuple must be null-free"
  else mu_cond_chased (Constraints.Chase.chase fds inst) q tuple

let mu_cond_auto ?jobs ?cache schema deps inst q tuple =
  match strategy deps tuple with
  | Chase_fds ->
      let fds = Constraints.Dependency.fds_of_schema schema deps in
      (Chase_fds, mu_cond_fds fds inst q tuple)
  | Symbolic -> (Symbolic, mu_cond_deps ?jobs ?cache schema deps inst q tuple)
