(** Conditional measures of certainty under constraints (paper §4).

    [µ(Q|Σ,D,ā) = lim_k |Supp^k(Σ ∧ Q(ā),D)| / |Supp^k(Σ,D)|] — the
    probability that a random valuation satisfying the constraints also
    witnesses the answer. Theorem 3: the limit always exists and is a
    rational in [0,1] (computed here as a ratio of leading coefficients
    of support polynomials). By convention the measure is 0 when [Σ] is
    unsatisfiable in [D].

    Also provided: the degenerate implication measure [µ(Σ → Q, D)]
    (Proposition 3), and the chase shortcut for sets of functional
    dependencies (Theorem 5 / Corollary 4), under which the 0–1 law is
    recovered.

    [?jobs] runs the underlying support counts — numerator and
    denominator together, in one chunked pass — on parallel domains
    ({!Exec.Pool}); all accumulation is exact bigint/rational
    arithmetic, so results are identical for any [jobs]. [?cache]
    shares an {!Incomplete.Support.cache} of completed instances and
    evaluation verdicts across calls on the same database. *)

type report = {
  numerator : Arith.Poly.t;  (** [|Supp^k(Σ ∧ Q(ā), D)|] *)
  denominator : Arith.Poly.t;  (** [|Supp^k(Σ, D)|] *)
  value : Arith.Rat.t;  (** the limit [µ(Q|Σ,D,ā)] *)
}

val mu_cond :
  ?jobs:int ->
  ?cache:Incomplete.Support.cache ->
  sigma:Logic.Formula.t ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Arith.Rat.t
(** [µ(Q|Σ,D,ā)] for a constraint sentence [Σ]. *)

val mu_cond_boolean :
  ?jobs:int ->
  ?cache:Incomplete.Support.cache ->
  sigma:Logic.Formula.t ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Arith.Rat.t

val mu_cond_report :
  ?jobs:int ->
  ?cache:Incomplete.Support.cache ->
  sigma:Logic.Formula.t ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  report
(** The polynomials behind the limit, for inspection (experiment E7). *)

val mu_cond_deps :
  ?jobs:int ->
  ?cache:Incomplete.Support.cache ->
  Relational.Schema.t ->
  Constraints.Dependency.t list ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Arith.Rat.t
(** Constraints given as dependencies; compiled through
    {!Constraints.Dependency.set_to_formula}. *)

val mu_cond_deps_direct :
  ?jobs:int ->
  Constraints.Dependency.t list ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Arith.Rat.t
(** Same value as {!mu_cond_deps} but checks the constraints
    structurally on each class representative
    ({!Constraints.Dependency.holds}) instead of evaluating a compiled
    [∀…∀]-sentence — typically orders of magnitude faster for FDs and
    keys on wider relations. Agreement with {!mu_cond_deps} is
    property-tested. *)

val mu_cond_k :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:Incomplete.Support.cache ->
  sigma:Logic.Formula.t ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Arith.Rat.t
(** Brute-force [µ^k(Q|Σ,D,ā)] for cross-checking; 0 when no valuation
    in [V^k] satisfies [Σ]. *)

val cond_decomp :
  ?k:int ->
  sigma:Logic.Formula.t ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Analysis.Decomp.t * Analysis.Decomp.t
(** Decomposition certificates for the numerator sentence [Σ ∧ Q(ā)]
    and the denominator sentence [Σ], both over the sweep set of
    {!mu_cond_k} (database, tuple and [Σ] nulls). *)

val mu_cond_k_plans :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:Incomplete.Support.cache ->
  num_plan:Incomplete.Factor.plan ->
  den_plan:Incomplete.Factor.plan ->
  Relational.Instance.t ->
  k:int ->
  Arith.Rat.t
(** Factorized [µ^k(Q|Σ)]: both counts run component-by-component on
    restricted kernels ({!Incomplete.Support.supp_count_plan}) and the
    quotient of the exact bigint counts is formed — bit-identical to
    {!mu_cond_k} on sound plans sharing its sweep set (which
    {!cond_decomp} guarantees). *)

val mu_implication :
  ?jobs:int ->
  ?cache:Incomplete.Support.cache ->
  sigma:Logic.Formula.t ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Arith.Rat.t
(** [µ(Σ → Q(ā), D)] — by Proposition 3, 1 when [µ(Σ,D) = 0] and
    [µ(Q,D,ā)] otherwise. Computed symbolically. *)

val mu_cond_fds :
  Constraints.Dependency.fd list ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Arith.Rat.t
(** Theorem 5 / Corollary 4: for FDs and a tuple of constants,
    [µ(Q|Σ,D,ā) = µ(Q, chase_Σ(D), ā)] — i.e. 1 if the chase succeeds
    and [ā ∈ Q^naïve(chase_Σ(D))], else 0. Polynomial in the size of
    [D] (given the query).
    @raise Invalid_argument if [ā] contains nulls (the chase renames
    nulls, so the statement only makes sense for constant tuples). *)

val mu_cond_chased :
  Constraints.Chase.outcome ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Arith.Rat.t
(** {!mu_cond_fds} on an already-chased outcome — for callers that
    maintain the chase incrementally across updates
    ({!Constraints.Chase.chase_inc}) and answer many conditional
    queries against it. The value only reads success/failure and the
    naïve answer, both invariant under the null renaming incremental
    resumption may introduce, so memoized and from-scratch outcomes
    give the same measure.
    @raise Invalid_argument if [ā] contains nulls. *)

(** {1 Classifier-driven dispatch} *)

type strategy =
  | Chase_fds  (** the Theorem 5 chase shortcut applies *)
  | Symbolic  (** support-polynomial counting over valuation classes *)

val strategy : Constraints.Dependency.t list -> Relational.Tuple.t -> strategy
(** Consults {!Analysis.Classify.constraint_class}: [Chase_fds] exactly
    when the dependency set is FD-only and the tuple is null-free. *)

val mu_cond_auto :
  ?jobs:int ->
  ?cache:Incomplete.Support.cache ->
  Relational.Schema.t ->
  Constraints.Dependency.t list ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  strategy * Arith.Rat.t
(** [µ(Q|Σ,D,ā)] by the cheapest sound algorithm: routes through
    {!strategy} and returns the route taken together with the value.
    Both routes compute the same measure (Theorem 5); agreement is
    property-tested. *)
