module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Formula = Logic.Formula
module Classes = Incomplete.Classes
module Support = Incomplete.Support
module Split = Incomplete.Split
module Kernel = Incomplete.Kernel
module Poly = Arith.Poly

type t = {
  anchor_set : int list;
  nulls : int list;
  polys : Poly.t list;
  total : Poly.t;
}

(* Both constructors fold one pass over the equivalence classes,
   accumulating one polynomial per sentence/predicate. The class list
   is carved into contiguous chunks on pool domains; each chunk calls
   [mk_weigh ()] to build its own weigher, so mutable evaluation state
   (the compiled kernels, single-threaded and memoized per domain via
   [Support.domain_checker]) is never shared across domains.
   Per-chunk partial sums are merged with Poly.add, whose
   bigint-rational coefficients make the sum exact and
   order-independent — parallel results are bit-identical to
   sequential ones. Classes below don't share work, so even short
   class lists benefit from a second domain. *)
let sum_over_classes ?jobs ~width classes mk_weigh =
  Obs.Trace.span "support_poly.sum"
    ~attrs:[ ("classes", string_of_int (List.length classes)) ]
  @@ fun () ->
  let zero = List.map (fun _ -> Poly.zero) width in
  Exec.Pool.fold_list ?jobs ~min_work:8
    ~chunk:(fun chunk -> List.fold_left (mk_weigh ()) zero chunk)
    ~combine:(List.map2 Poly.add) zero classes

let of_predicates ?jobs ~anchor_set ~nulls inst predicates =
  let classes = Classes.enumerate ~anchor_set ~nulls in
  (* The instance is split once; each representative completion then
     only touches the null-carrying tuples on top of the shared ground
     fragment. *)
  let split = Split.of_instance inst in
  let polys =
    sum_over_classes ?jobs ~width:predicates classes (fun () acc cls ->
        let v = Classes.representative ~anchor_set cls in
        let complete = Split.complete split v in
        let weight = Classes.count_poly ~anchor_set cls in
        List.map2
          (fun p predicate ->
            if predicate v complete then Poly.add p weight else p)
          acc predicates)
  in
  { anchor_set; nulls; polys; total = Poly.pow Poly.x (List.length nulls) }

let of_sentences ?jobs ?cache inst sentences =
  let db = Support.kernel_db ?cache inst in
  let split = Kernel.split db in
  let anchor_set = Support.anchor_set_sentences_split split sentences in
  let nulls =
    List.sort_uniq Int.compare
      (Split.nulls split @ List.concat_map Formula.nulls sentences)
  in
  let classes = Classes.enumerate ~anchor_set ~nulls in
  let polys =
    (* Class representatives repeat across calls (and across the two
       sentences of a conditional report), so the verdict cache stays
       on; the kernels behind the checkers are memoized per pool
       domain, so chunks landing on one domain share a compile. *)
    sum_over_classes ?jobs ~width:sentences classes (fun () ->
        let checkers =
          List.map (fun s -> Support.domain_checker ?cache db s) sentences
        in
        fun acc cls ->
          let v = Classes.representative ~anchor_set cls in
          let weight = Classes.count_poly ~anchor_set cls in
          List.map2
            (fun p chk -> if Support.check chk v then Poly.add p weight else p)
            acc checkers)
  in
  { anchor_set;
    nulls;
    polys;
    total = Poly.pow Poly.x (List.length nulls)
  }

let of_sentence ?jobs ?cache inst sentence =
  match (of_sentences ?jobs ?cache inst [ sentence ]).polys with
  | [ p ] -> p
  | _ -> assert false

let of_query ?jobs ?cache inst q tuple =
  of_sentence ?jobs ?cache inst (Query.instantiate q tuple)

let mu_k_exact t ~sentence ~k =
  let p = List.nth t.polys sentence in
  let total = Poly.eval_int t.total k in
  if Arith.Rat.is_zero total then Arith.Rat.zero
  else Arith.Rat.div (Poly.eval_int p k) total
