module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Formula = Logic.Formula
module Classes = Incomplete.Classes
module Support = Incomplete.Support
module Poly = Arith.Poly

type t = {
  anchor_set : int list;
  nulls : int list;
  polys : Poly.t list;
  total : Poly.t;
}

(* Both constructors fold one pass over the equivalence classes,
   accumulating one polynomial per sentence/predicate. The class list
   is carved into contiguous chunks on pool domains; per-chunk partial
   sums are merged with Poly.add, whose bigint-rational coefficients
   make the sum exact and order-independent — parallel results are
   bit-identical to sequential ones. Classes below don't share work, so
   even short class lists benefit from a second domain. *)
let sum_over_classes ?jobs ~width classes weigh =
  let zero = List.map (fun _ -> Poly.zero) width in
  Exec.Pool.fold_list ?jobs ~min_work:8
    ~chunk:(fun chunk -> List.fold_left weigh zero chunk)
    ~combine:(List.map2 Poly.add) zero classes

let of_predicates ?jobs ~anchor_set ~nulls inst predicates =
  let classes = Classes.enumerate ~anchor_set ~nulls in
  let polys =
    sum_over_classes ?jobs ~width:predicates classes (fun acc cls ->
        let v = Classes.representative ~anchor_set cls in
        let complete = Incomplete.Valuation.instance v inst in
        let weight = Classes.count_poly ~anchor_set cls in
        List.map2
          (fun p predicate ->
            if predicate v complete then Poly.add p weight else p)
          acc predicates)
  in
  { anchor_set; nulls; polys; total = Poly.pow Poly.x (List.length nulls) }

let of_sentences ?jobs ?cache inst sentences =
  let anchor_set = Support.anchor_set_sentences inst sentences in
  let nulls =
    List.sort_uniq Int.compare
      (Instance.nulls inst @ List.concat_map Formula.nulls sentences)
  in
  let classes = Classes.enumerate ~anchor_set ~nulls in
  let polys =
    sum_over_classes ?jobs ~width:sentences classes (fun acc cls ->
        let v = Classes.representative ~anchor_set cls in
        let weight = Classes.count_poly ~anchor_set cls in
        List.map2
          (fun p sentence ->
            if Support.sentence_in_support ?cache inst sentence v then
              Poly.add p weight
            else p)
          acc sentences)
  in
  { anchor_set;
    nulls;
    polys;
    total = Poly.pow Poly.x (List.length nulls)
  }

let of_sentence ?jobs ?cache inst sentence =
  match (of_sentences ?jobs ?cache inst [ sentence ]).polys with
  | [ p ] -> p
  | _ -> assert false

let of_query ?jobs ?cache inst q tuple =
  of_sentence ?jobs ?cache inst (Query.instantiate q tuple)

let mu_k_exact t ~sentence ~k =
  let p = List.nth t.polys sentence in
  let total = Poly.eval_int t.total k in
  if Arith.Rat.is_zero total then Arith.Rat.zero
  else Arith.Rat.div (Poly.eval_int p k) total
