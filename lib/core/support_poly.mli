(** Symbolic support counting: [|Supp^k(q,D)|] as a polynomial in [k].

    This is the construction at the heart of the proof of Theorem 3:
    partition the valuations of [D] into equivalence classes
    ({!Incomplete.Classes}) on which the truth of a generic sentence is
    constant and whose sizes are falling-factorial polynomials in [k];
    then
    [|Supp^k(q,D)| = Σ {count_poly(c) | class c satisfies q}].

    The polynomials are exact for every [k ≥ max(anchor codes)], so
    {e all} asymptotic quantities of the paper — [µ(Q,D,ā)] (Theorem 1),
    [µ(Q|Σ,D,ā)] (Theorem 3), the values of Propositions 3–4 — reduce to
    {!Arith.Poly.limit_ratio} on these polynomials. *)

type t = {
  anchor_set : int list;  (** [A = C ∪ Const(D)], sorted *)
  nulls : int list;  (** nulls of [D] (and of the sentences) *)
  polys : Arith.Poly.t list;  (** one support polynomial per sentence *)
  total : Arith.Poly.t;  (** [k^m], the size of [V^k(D)] *)
}

val of_sentences :
  ?jobs:int ->
  ?cache:Incomplete.Support.cache ->
  Relational.Instance.t -> Logic.Formula.t list -> t
(** Computes the support polynomials of several sentences over the same
    database in one pass over the valuation classes (sharing the anchor
    set, as required when forming conditional measures). Cost:
    [Bell(m) · Σ_j C(m,j)·P(|A|,j)] class evaluations.

    [?jobs] chunks the class list over pool domains; the per-chunk
    partial polynomial sums have exact coefficients, so the result is
    identical to the sequential one for any [jobs]. [?cache] memoizes
    the completed representatives and verdicts across calls. *)

val of_sentence :
  ?jobs:int ->
  ?cache:Incomplete.Support.cache ->
  Relational.Instance.t -> Logic.Formula.t -> Arith.Poly.t
(** [|Supp^k(φ,D)|] for one sentence. *)

val of_query :
  ?jobs:int ->
  ?cache:Incomplete.Support.cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Arith.Poly.t
(** [|Supp^k(Q,D,ā)|]: the support polynomial of the sentence [Q(ā)]. *)

val mu_k_exact : t -> sentence:int -> k:int -> Arith.Rat.t
(** [µ^k] of the [sentence]-th sentence, read off the polynomials
    (valid for [k ≥ max(anchor codes)]). *)

val of_predicates :
  ?jobs:int ->
  anchor_set:int list ->
  nulls:int list ->
  Relational.Instance.t ->
  (Incomplete.Valuation.t -> Relational.Instance.t -> bool) list ->
  t
(** Like {!of_sentences} but with opaque predicates receiving each class
    representative [v] and the complete instance [v(D)]. Much faster
    when a property has a direct structural check (e.g. functional
    dependencies via {!Constraints.Dependency.holds}, instead of a
    compiled [∀∀]-sentence).

    {b Caller's obligation}: each predicate must be generic with
    genericity constants inside [anchor_set] — i.e. invariant under
    bijections of [Const] fixing [anchor_set] pointwise — and
    [anchor_set] must contain [Const(D)]; otherwise the class sums are
    meaningless. [nulls] must cover [Null(D)]. *)
