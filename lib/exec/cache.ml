type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  max_entries : int option;
  order : 'k Queue.t; (* insertion order; maintained only when capped *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; entries : int; evictions : int }

let create ?(size = 256) ?max_entries () =
  (match max_entries with
  | Some m when m < 0 -> invalid_arg "Cache.create: negative max_entries"
  | _ -> ());
  { table = Hashtbl.create size;
    lock = Mutex.create ();
    max_entries;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    evictions = 0
  }

let find_or_add t key compute =
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
            t.hits <- t.hits + 1;
            Obs.Metrics.incr Obs.Metrics.cache_hits;
            Some v
        | None ->
            t.misses <- t.misses + 1;
            Obs.Metrics.incr Obs.Metrics.cache_misses;
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = compute () in
      (* Double-checked insert: another domain may have stored [key]
         while [compute] ran outside the lock; the first store wins.
         The eviction scan runs under the same lock, so the FIFO queue
         and the table never disagree. *)
      Mutex.protect t.lock (fun () ->
          if not (Hashtbl.mem t.table key) then begin
            Hashtbl.add t.table key v;
            match t.max_entries with
            | None -> ()
            | Some cap ->
                Queue.add key t.order;
                while Hashtbl.length t.table > cap do
                  let victim = Queue.pop t.order in
                  Hashtbl.remove t.table victim;
                  t.evictions <- t.evictions + 1;
                  Obs.Metrics.incr Obs.Metrics.cache_evictions
                done
          end);
      v

let stats t =
  Mutex.protect t.lock (fun () ->
      { hits = t.hits;
        misses = t.misses;
        entries = Hashtbl.length t.table;
        evictions = t.evictions
      })

let remove_matching t pred =
  Mutex.protect t.lock (fun () ->
      let victims =
        Hashtbl.fold
          (fun k _ acc -> if pred k then k :: acc else acc)
          t.table []
      in
      List.iter (Hashtbl.remove t.table) victims;
      (* Keep the FIFO queue in sync with the table so later capped
         evictions never pop keys that are already gone. *)
      (match t.max_entries with
      | None -> ()
      | Some _ ->
          let keep = Queue.create () in
          Queue.iter
            (fun k -> if Hashtbl.mem t.table k then Queue.add k keep)
            t.order;
          Queue.clear t.order;
          Queue.transfer keep t.order);
      List.length victims)

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      Queue.clear t.order;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
