type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int; entries : int }

let create ?(size = 256) () =
  { table = Hashtbl.create size; lock = Mutex.create (); hits = 0; misses = 0 }

let find_or_add t key compute =
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
            t.hits <- t.hits + 1;
            Some v
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = compute () in
      Mutex.protect t.lock (fun () ->
          if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v);
      v

let stats t =
  Mutex.protect t.lock (fun () ->
      { hits = t.hits; misses = t.misses; entries = Hashtbl.length t.table })

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
