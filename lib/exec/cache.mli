(** Domain-safe memoization tables for the evaluation hot paths.

    A cache maps keys to computed values behind a mutex, so a single
    cache can be shared by all the domains of a {!Pool} fold (the
    critical section is a hash-table probe; the memoized computation
    itself runs outside the lock). Hit/miss counters are kept for
    benchmark reporting.

    Keys are compared with structural equality and hashed with
    [Hashtbl.hash]; do not use keys containing functions or cyclic
    values. *)

type ('k, 'v) t

type stats = { hits : int; misses : int; entries : int }

val create : ?size:int -> unit -> ('k, 'v) t
(** [size] is the initial hash-table capacity (default 256). *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t key compute] returns the cached value for [key], or
    runs [compute ()], stores the result, and returns it. [compute]
    runs outside the lock: two domains racing on the same fresh key may
    both compute it (the first store wins), which is harmless for the
    pure evaluations cached here. *)

val stats : _ t -> stats
val clear : _ t -> unit
