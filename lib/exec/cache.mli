(** Domain-safe memoization tables for the evaluation hot paths.

    A cache maps keys to computed values behind a mutex, so a single
    cache can be shared by all the domains of a {!Pool} fold (the
    critical section is a hash-table probe; the memoized computation
    itself runs outside the lock). Hit/miss/eviction counters are kept
    per cache for benchmark reporting, and mirrored into the global
    {!Obs.Metrics} counters when metrics are enabled.

    Keys are compared with structural equality and hashed with
    [Hashtbl.hash]; do not use keys containing functions or cyclic
    values. *)

type ('k, 'v) t

type stats = { hits : int; misses : int; entries : int; evictions : int }

val create : ?size:int -> ?max_entries:int -> unit -> ('k, 'v) t
(** [size] is the initial hash-table capacity (default 256).
    [max_entries] caps the table: once more than [max_entries] keys
    are resident, the oldest inserted entries are evicted (FIFO) until
    the cap holds again, so long-running sessions cannot grow a cache
    without bound. Omitted means unbounded (the pre-cap behaviour).
    Eviction only discards memoized values — the computations cached
    here are pure, so an evicted key is simply recomputed on its next
    miss. @raise Invalid_argument if [max_entries < 0]. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t key compute] returns the cached value for [key], or
    runs [compute ()], stores the result, and returns it. [compute]
    runs outside the lock: two domains racing on the same fresh key may
    both compute it (the first store wins), which is harmless for the
    pure evaluations cached here. *)

val remove_matching : ('k, 'v) t -> ('k -> bool) -> int
(** Remove every entry whose key satisfies the predicate, returning
    how many were dropped. Runs under the cache lock (the predicate
    must be pure and fast); the eviction queue is filtered in the same
    critical section. The tool of {e precise invalidation}: a mutation
    path drops exactly the memoized results its update could have
    changed and leaves the rest warm. *)

val stats : _ t -> stats
val clear : _ t -> unit
