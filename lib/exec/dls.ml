(* Per-domain compiled-state memos.

   A parallel valuation sweep wants exactly one compiled kernel per
   pool domain: kernels carry mutable scratch (single-threaded by
   construction), and compiling one per *chunk* — the previous
   discipline — multiplies compile cost by the chunk count (up to 8192
   under the pool guard) and churns the minor heap mid-sweep. A [Dls]
   table keys values by the caller's choice of equality inside
   [Domain.DLS], so each domain compiles once per (db, sentence) and
   every chunk that lands on that domain reuses the same scratch;
   domains never see each other's entries, so no synchronization is
   involved.

   The per-domain store is a bounded association list scanned
   linearly: a domain touches a handful of distinct keys (one or two
   sentences per sweep, a few sessions on a server), so a scan of ≤
   [cap] entries is cheaper than hashing structural keys. Eviction
   drops the oldest entry — insertion order, newest first. *)

type ('k, 'v) t = {
  eq : 'k -> 'k -> bool;
  cap : int;
  key : ('k * 'v) list ref Domain.DLS.key;
}

let default_cap = 32

let create ?(cap = default_cap) ~eq () =
  if cap < 1 then invalid_arg "Exec.Dls.create: cap < 1";
  { eq; cap; key = Domain.DLS.new_key (fun () -> ref []) }

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let find_or_add t k ~mk =
  let slot = Domain.DLS.get t.key in
  match List.find_opt (fun (k', _) -> t.eq k k') !slot with
  | Some (_, v) -> v
  | None ->
      let v = mk () in
      slot := take t.cap ((k, v) :: !slot);
      v
