(** Per-domain memo tables ([Domain.DLS]).

    The pool's unit of state reuse: a [('k, 'v) t] memoizes one value
    per key {e per domain}. Sweep loops use it to compile one kernel
    per pool domain instead of one per chunk — each domain's entry is
    created on first use by that domain and reused by every subsequent
    chunk it runs, with no locking (domains never observe each other's
    entries).

    Values handed out are therefore domain-local but {e not}
    re-entrant: a caller that obtains [v] for key [k] must finish with
    it before asking for [k] again in a nested computation on the same
    domain (pool chunks never nest, so sweep loops satisfy this by
    construction). *)

type ('k, 'v) t

val create : ?cap:int -> eq:('k -> 'k -> bool) -> unit -> ('k, 'v) t
(** A memo whose per-domain store keeps at most [cap] entries
    (default 32), evicting the oldest. [eq] compares keys — use
    physical equality on shared immutable structure (e.g. a
    [Kernel.db]) where possible.
    @raise Invalid_argument if [cap < 1]. *)

val find_or_add : ('k, 'v) t -> 'k -> mk:(unit -> 'v) -> 'v
(** The calling domain's value for this key, building it with [mk] on
    that domain's first use. *)
