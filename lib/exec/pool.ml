let default_jobs () = Domain.recommended_domain_count ()

(* Chunk i of [0,n) over j chunks is [i*n/j, (i+1)*n/j): contiguous,
   sizes differ by at most one, independent of how many domains
   actually run — the partition (and hence the combine order) is a
   function of (n, jobs) only. *)
let bounds ~n ~jobs i = i * n / jobs

(* ------------------------------------------------------------------ *)
(* Persistent worker pool                                              *)
(* ------------------------------------------------------------------ *)

(* Workers are spawned once and fed closures over a queue; folds no
   longer pay a Domain.spawn per chunk. Tasks wrap their own result
   storage and completion signalling, so the pool only moves opaque
   [unit -> unit] thunks. *)
type t = {
  mutex : Mutex.t;
  cond_work : Condition.t;  (* signalled on enqueue and on shutdown *)
  work : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  mutable joined : bool;
}

let worker_loop pool () =
  let rec next () =
    Mutex.lock pool.mutex;
    let rec await () =
      match Queue.take_opt pool.work with
      | Some task -> Some task
      | None ->
          if pool.stop then None
          else begin
            Condition.wait pool.cond_work pool.mutex;
            await ()
          end
    in
    let task = await () in
    Mutex.unlock pool.mutex;
    match task with
    | None -> ()
    | Some task ->
        (* Tasks never raise: they store exceptions in their slot. *)
        task ();
        next ()
  in
  next ()

let default_workers () = max 0 (Domain.recommended_domain_count () - 1)

let create ?workers () =
  let workers = match workers with Some w -> max 0 w | None -> default_workers () in
  let pool =
    { mutex = Mutex.create ();
      cond_work = Condition.create ();
      work = Queue.create ();
      stop = false;
      workers = [||];
      joined = false
    }
  in
  pool.workers <- Array.init workers (fun _ -> Domain.spawn (worker_loop pool));
  pool

let worker_count pool = Array.length pool.workers

let shutdown pool =
  Mutex.lock pool.mutex;
  let must_join = not pool.joined in
  pool.joined <- true;
  pool.stop <- true;
  Condition.broadcast pool.cond_work;
  Mutex.unlock pool.mutex;
  if must_join then Array.iter Domain.join pool.workers

let is_stopped pool = Mutex.protect pool.mutex (fun () -> pool.stop)

let with_pool ?workers f =
  let pool = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* The shared pool behind [fold_range ~pool:None]: created on first
   use, shut down at exit. Sized to recommended_domain_count - 1 so
   that workers plus the calling domain never oversubscribe the
   machine — on a single-core box this is zero workers and every fold
   runs on the caller, which is exactly the fastest schedule there. *)
let global =
  lazy
    (let pool = create () in
     at_exit (fun () -> shutdown pool);
     pool)

let get_pool = function Some pool -> pool | None -> Lazy.force global

(* ------------------------------------------------------------------ *)
(* Deterministic fork-join folds                                       *)
(* ------------------------------------------------------------------ *)

(* With a guard installed, chunks are additionally capped at
   [guard_granularity] items so the guard runs at a bounded interval
   even over huge ranges; [guard_max_chunks] bounds the partition (and
   the slot array) for astronomically large [n]. The partition is
   still a pure function of [(n, effective jobs)], and every
   accumulator in the tree is exact, so guarded and unguarded folds
   produce bit-identical results. *)
let guard_granularity = 1 lsl 16
let guard_max_chunks = 8192

let fold_range ?pool ?jobs ?guard ?(min_work = 1024) ~n ~chunk ~combine init =
  if n < 0 then invalid_arg "Pool.fold_range: negative n";
  (* Empty range: nothing to partition, so never touch the pool — a
     fold over zero items must work even against a shut-down pool. *)
  if n = 0 then init
  else begin
  let check () = match guard with None -> () | Some g -> g () in
  let jobs =
    match jobs with Some j -> (if j < 1 then 1 else j) | None -> default_jobs ()
  in
  let jobs =
    match guard with
    | None -> jobs
    | Some _ ->
        max jobs
          (min guard_max_chunks ((n + guard_granularity - 1) / guard_granularity))
  in
  let jobs = min jobs n in
  if jobs <= 1 || n < min_work then begin
    check ();
    combine init (chunk 0 n)
  end
  else Obs.Trace.span "pool.fold"
         ~attrs:[ ("n", string_of_int n); ("jobs", string_of_int jobs) ]
  @@ fun () ->
  begin
    let pool = get_pool pool in
    let slots = Array.make jobs None in
    let run i () =
      let lo = bounds ~n ~jobs i and hi = bounds ~n ~jobs (i + 1) in
      slots.(i) <-
        Some (match check (); chunk lo hi with v -> Ok v | exception e -> Error e)
    in
    if worker_count pool = 0 then
      (* No workers to feed: run every chunk on the calling domain, in
         chunk order, skipping the queue entirely. Same partition, same
         combine order — only the schedule differs. *)
      for i = 0 to jobs - 1 do
        run i ()
      done
    else begin
      let cond_done = Condition.create () in
      let remaining = ref (jobs - 1) in
      let task i () =
        run i ();
        Obs.Metrics.incr Obs.Metrics.pool_tasks_completed;
        Mutex.lock pool.mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast cond_done;
        Mutex.unlock pool.mutex
      in
      Obs.Metrics.add Obs.Metrics.pool_tasks_queued (jobs - 1);
      Mutex.lock pool.mutex;
      for i = 1 to jobs - 1 do
        Queue.add (task i) pool.work
      done;
      Condition.broadcast pool.cond_work;
      Mutex.unlock pool.mutex;
      (* Chunk 0 runs on the calling domain while the workers start. *)
      run 0 ();
      (* Caller helps: drain whatever is still queued (this fold's
         chunks or another fold's — progress either way) and only
         sleep when the queue is empty but chunks are still running on
         workers. *)
      Mutex.lock pool.mutex;
      while !remaining > 0 do
        match Queue.take_opt pool.work with
        | Some task ->
            Mutex.unlock pool.mutex;
            Obs.Metrics.incr Obs.Metrics.pool_tasks_stolen;
            task ();
            Mutex.lock pool.mutex
        | None -> Condition.wait cond_done pool.mutex
      done;
      Mutex.unlock pool.mutex
    end;
    (* Combine in chunk order; on failure raise the first error, also
       in chunk order — every chunk has run either way. *)
    Array.fold_left
      (fun acc slot ->
        match slot with
        | Some (Ok v) -> combine acc v
        | Some (Error e) -> raise e
        | None -> assert false)
      init slots
  end
  end

let fold_list ?pool ?jobs ?guard ?min_work ~chunk ~combine init xs =
  let arr = Array.of_list xs in
  fold_range ?pool ?jobs ?guard ?min_work ~n:(Array.length arr)
    ~chunk:(fun lo hi -> chunk (Array.to_list (Array.sub arr lo (hi - lo))))
    ~combine init
