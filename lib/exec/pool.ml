let default_jobs () = Domain.recommended_domain_count ()

(* Chunk i of [0,n) over j chunks is [i*n/j, (i+1)*n/j): contiguous,
   sizes differ by at most one, independent of how many domains
   actually run — the partition (and hence the combine order) is a
   function of (n, jobs) only. *)
let bounds ~n ~jobs i = i * n / jobs

let fold_range ?jobs ?(min_work = 1024) ~n ~chunk ~combine init =
  if n < 0 then invalid_arg "Pool.fold_range: negative n";
  let jobs =
    match jobs with Some j -> (if j < 1 then 1 else j) | None -> default_jobs ()
  in
  let jobs = min jobs n in
  if jobs <= 1 || n < min_work then
    if n = 0 then init else combine init (chunk 0 n)
  else begin
    let workers =
      Array.init (jobs - 1) (fun i ->
          let lo = bounds ~n ~jobs (i + 1) and hi = bounds ~n ~jobs (i + 2) in
          Domain.spawn (fun () -> chunk lo hi))
    in
    (* Chunk 0 runs on the calling domain while the others work. *)
    let first =
      match chunk (bounds ~n ~jobs 0) (bounds ~n ~jobs 1) with
      | v -> Ok v
      | exception e -> Error e
    in
    (* Join every domain before raising anything, so no domain leaks. *)
    let rest =
      Array.map
        (fun d -> match Domain.join d with v -> Ok v | exception e -> Error e)
        workers
    in
    let get = function Ok v -> v | Error e -> raise e in
    Array.fold_left
      (fun acc r -> combine acc (get r))
      (combine init (get first))
      rest
  end

let fold_list ?jobs ?min_work ~chunk ~combine init xs =
  let arr = Array.of_list xs in
  fold_range ?jobs ?min_work ~n:(Array.length arr)
    ~chunk:(fun lo hi -> chunk (Array.to_list (Array.sub arr lo (hi - lo))))
    ~combine init
