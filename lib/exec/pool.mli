(** Deterministic fork-join parallelism over a persistent pool of
    OCaml 5 domains.

    The measures of the paper ([µ^k], [µ(Q|Σ,D)], the support
    polynomials) are all folds over large finite spaces — [k^m]
    valuations or the equivalence classes of §3.3. This module splits
    such a fold into contiguous chunks, runs the chunks on pool
    domains, and combines the partial results {e in chunk order}.

    Domains are spawned {e once} (lazily, sized to
    [recommended_domain_count - 1] so workers plus the calling domain
    never oversubscribe the machine) and fed chunk closures over a
    work queue; a fold never pays [Domain.spawn]. While its chunks run
    elsewhere the calling domain helps, draining the queue, and only
    sleeps when every outstanding chunk is already running — so folds
    may nest and pools may be shared without deadlock. On a
    single-core machine the shared pool has zero workers and every
    fold runs on the caller: requesting [~jobs:4] there costs nothing
    over the sequential fold.

    Determinism: the partition of [\[0,n)] is a pure function of
    [(n, jobs)] — independent of pool size or scheduling — and the
    partial results are always combined left-to-right in increasing
    chunk order, so [fold_range] is reproducible run to run for any
    [combine]. Moreover every accumulator used in this code base
    ({!Arith.Bigint} addition, {!Arith.Rat} addition, {!Arith.Poly}
    addition, relation union) is exact and associative-commutative, so
    the result is {e bit-identical} to the sequential fold regardless
    of the number of domains — property-tested in
    [test/test_parallel.ml] and re-checked by [bench --parallel].

    Fallback: when [jobs <= 1], when the range is smaller than
    [min_work], or when fewer than two items remain, the fold runs
    sequentially on the calling domain without touching the pool. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [?jobs] defaults to. *)

(** {1 Pools} *)

type t
(** A persistent set of worker domains sharing one work queue. *)

val create : ?workers:int -> unit -> t
(** Spawn a pool. [workers] defaults to {!default_workers}; [0] is
    valid (folds then run entirely on the calling domain). *)

val default_workers : unit -> int
(** [recommended_domain_count - 1]: the pool size that, together with
    the calling domain, matches the machine. *)

val worker_count : t -> int

val shutdown : t -> unit
(** Stop and join the workers. Idempotent. Folds on the shared pool
    ([?pool] omitted) never need this — it is shut down at exit. *)

val is_stopped : t -> bool
(** Whether {!shutdown} has been initiated on this pool. *)

val with_pool : ?workers:int -> (t -> 'a) -> 'a
(** [with_pool f] spawns a pool, runs [f pool], and shuts the pool
    down whether [f] returns or raises — spawned domains can never
    leak past an exceptional exit. Prefer this over a bare {!create}
    wherever the pool's lifetime is a scope. *)

(** {1 Folds} *)

val fold_range :
  ?pool:t ->
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?min_work:int ->
  n:int ->
  chunk:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a ->
  'a
(** [fold_range ~jobs ~min_work ~n ~chunk ~combine init] evaluates
    [chunk lo hi] over a partition of [\[0,n)] into at most [jobs]
    contiguous half-open intervals (sizes differing by at most one) and
    folds the results with [combine], seeded with [init], in interval
    order. With one interval this is [combine init (chunk 0 n)].

    [jobs] controls the {e partition}; how many chunks actually run
    concurrently is bounded by the pool's workers + 1. [jobs] defaults
    to {!default_jobs}; values [< 1] are treated as 1. [min_work]
    (default [1024]) is the smallest [n] worth chunking; below it the
    fold is sequential. [pool] defaults to the lazily-created shared
    pool.

    If any chunk raises, every chunk still runs to completion and the
    first exception (in chunk order) is re-raised.

    [guard], when given, is called on the executing domain before
    {e every} chunk (and once before the sequential fallback); if it
    raises, that chunk is treated as failed and the remaining chunks
    fail fast at their own guard call. This is the cancellation hook
    behind request deadlines: a guard that raises once its deadline
    has passed aborts the fold at the next chunk boundary, with the
    partial work discarded. A guard also {e refines the partition} —
    chunks are capped at [2^16] items (at most 8192 chunks) so the
    guard runs at a bounded interval even over huge ranges. All
    accumulators used in this code base are exact, so guarded folds
    remain bit-identical to unguarded ones.

    [n = 0] returns [init] immediately without touching the pool, so
    an empty fold is safe even against a pool that has been shut down.
    @raise Invalid_argument if [n < 0]. *)

val fold_list :
  ?pool:t ->
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?min_work:int ->
  chunk:('b list -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a ->
  'b list ->
  'a
(** Same, over contiguous sublists of a list. [chunk] receives each
    sublist in original order; partials are combined in list order. *)
