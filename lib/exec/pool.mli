(** Deterministic fork-join parallelism over OCaml 5 domains.

    The measures of the paper ([µ^k], [µ(Q|Σ,D)], the support
    polynomials) are all folds over large finite spaces — [k^m]
    valuations or the equivalence classes of §3.3. This module splits
    such a fold into contiguous chunks, runs the chunks on separate
    domains, and combines the partial results {e in chunk order}.

    Determinism: the partial results are always combined left-to-right
    in increasing chunk order, so [fold_range] is reproducible run to
    run for any [combine]. Moreover every accumulator used in this
    code base ({!Arith.Bigint} addition, {!Arith.Rat} addition,
    {!Arith.Poly} addition, relation union) is exact and
    associative-commutative, so the result is {e bit-identical} to the
    sequential fold regardless of the number of domains — this is
    property-tested in [test/test_parallel.ml].

    Fallback: when [jobs <= 1], when the range is smaller than
    [min_work], or when fewer than two items remain, no domain is
    spawned and the fold runs sequentially on the calling domain. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [?jobs] defaults to. *)

val fold_range :
  ?jobs:int ->
  ?min_work:int ->
  n:int ->
  chunk:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a ->
  'a
(** [fold_range ~jobs ~min_work ~n ~chunk ~combine init] evaluates
    [chunk lo hi] over a partition of [\[0,n)] into at most [jobs]
    contiguous half-open intervals (sizes differing by at most one) and
    folds the results with [combine], seeded with [init], in interval
    order. With one interval this is [combine init (chunk 0 n)].

    [jobs] defaults to {!default_jobs}; values [< 1] are treated as 1.
    [min_work] (default [1024]) is the smallest [n] worth spawning
    domains for; below it the fold is sequential.

    If any chunk raises, all spawned domains are still joined and the
    first exception (in chunk order) is re-raised.
    @raise Invalid_argument if [n < 0]. *)

val fold_list :
  ?jobs:int ->
  ?min_work:int ->
  chunk:('b list -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a ->
  'b list ->
  'a
(** Same, over contiguous sublists of a list. [chunk] receives each
    sublist in original order; partials are combined in list order. *)
