module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Query = Logic.Query
module Formula = Logic.Formula

let all_nulls inst tuple =
  List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)

let witnessing_classes ?cache inst q tuple =
  (* Anchor on the constants of the instantiated sentence Q(ā) too, so
     tuples carrying constants from outside the database are handled. *)
  let anchor_set =
    Support.anchor_set_sentences inst [ Query.instantiate q tuple ]
  in
  let nulls = all_nulls inst tuple in
  List.map
    (fun c ->
      let v = Classes.representative ~anchor_set c in
      (c, Support.in_support ?cache inst q tuple v))
    (Classes.enumerate ~anchor_set ~nulls)

let is_certain ?cache inst q tuple =
  List.for_all snd (witnessing_classes ?cache inst q tuple)

let is_possible ?cache inst q tuple =
  List.exists snd (witnessing_classes ?cache inst q tuple)

let candidates inst m =
  List.map Tuple.of_list (Arith.Combinat.tuples (Instance.adom inst) m)

(* The candidate sweep is embarrassingly parallel: each candidate's
   certainty check is independent, and the per-chunk result relations
   are merged with set union (commutative), combined in chunk order.
   Candidates are few but each check enumerates all equivalence
   classes, so even tiny ranges are worth a domain. *)
let filter_candidates ?jobs ?cache pred inst q =
  let m = Query.arity q in
  let cands = Array.of_list (candidates inst m) in
  Exec.Pool.fold_range ?jobs ~min_work:4 ~n:(Array.length cands)
    ~chunk:(fun lo hi ->
      let rel = ref (Relation.empty m) in
      for i = lo to hi - 1 do
        if pred ?cache inst q cands.(i) then rel := Relation.add cands.(i) !rel
      done;
      !rel)
    ~combine:Relation.union (Relation.empty m)

let certain_answers_enumerated ?jobs ?cache inst q =
  filter_candidates ?jobs ?cache is_certain inst q

(* Fragment dispatch (Corollary 3): for queries within Pos∀G naïve
   evaluation computes certain answers, so the class enumeration is
   unnecessary. Restricted to constant-free queries so that the naïve
   evaluation domain (adom + query constants) coincides with the
   candidate space adom^m of the enumeration path; queries with
   constants keep the exact path. *)
let certain_answers ?jobs ?cache inst q =
  if
    Logic.Fragment.naive_eval_sound
      (Logic.Fragment.classify q.Query.body)
    && Query.constants q = []
  then Naive.answers inst q
  else certain_answers_enumerated ?jobs ?cache inst q

let certain_answers_null_free ?jobs ?cache inst q =
  Relation.filter
    (fun t -> not (Tuple.has_null t))
    (certain_answers ?jobs ?cache inst q)

let possible_answers ?jobs ?cache inst q =
  filter_candidates ?jobs ?cache is_possible inst q

let sentence_classes ?cache inst sentence =
  let anchor_set = Support.anchor_set_sentences inst [ sentence ] in
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ Formula.nulls sentence)
  in
  List.map
    (fun c ->
      let v = Classes.representative ~anchor_set c in
      Support.sentence_in_support ?cache inst sentence v)
    (Classes.enumerate ~anchor_set ~nulls)

let is_certain_sentence ?cache inst sentence =
  List.for_all Fun.id (sentence_classes ?cache inst sentence)

let is_possible_sentence ?cache inst sentence =
  List.exists Fun.id (sentence_classes ?cache inst sentence)
