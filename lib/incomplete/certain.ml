module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Query = Logic.Query
module Formula = Logic.Formula

let all_nulls_split split tuple =
  List.sort_uniq Int.compare (Split.nulls split @ Tuple.nulls tuple)

(* One compiled checker per candidate sentence, applied to every class
   representative — the kernel db (split + indexes) and the hoisted
   constants are shared across the whole sweep. *)
let witnessing_classes_db ?cache db q tuple =
  let split = Kernel.split db in
  (* Anchor on the constants of the instantiated sentence Q(ā) too, so
     tuples carrying constants from outside the database are handled. *)
  let sentence = Query.instantiate q tuple in
  let anchor_set = Support.anchor_set_sentences_split split [ sentence ] in
  let nulls = all_nulls_split split tuple in
  let chk = Support.domain_checker ?cache db sentence in
  List.map
    (fun c ->
      (c, Support.check chk (Classes.representative ~anchor_set c)))
    (Classes.enumerate ~anchor_set ~nulls)

let witnessing_classes ?cache inst q tuple =
  witnessing_classes_db ?cache (Support.kernel_db ?cache inst) q tuple

(* Short-circuiting check: certainty needs every class to witness, so
   stop at the first refuting class (possibility dually at the first
   witnessing one) instead of materializing all verdicts. The metric
   counts each early stop that actually skipped at least one item. *)
let rec for_all_sc p = function
  | [] -> true
  | [ x ] -> p x
  | x :: rest ->
      if p x then for_all_sc p rest
      else begin
        Obs.Metrics.incr Obs.Metrics.short_circuits;
        false
      end

let rec exists_sc p = function
  | [] -> false
  | [ x ] -> p x
  | x :: rest ->
      if p x then begin
        Obs.Metrics.incr Obs.Metrics.short_circuits;
        true
      end
      else exists_sc p rest

let check_candidate ?cache ~all db q tuple =
  let split = Kernel.split db in
  let sentence = Query.instantiate q tuple in
  let anchor_set = Support.anchor_set_sentences_split split [ sentence ] in
  let nulls = all_nulls_split split tuple in
  (* Repeated certainty probes for the same (db, Q(ā)) — a server
     session re-asking, a test loop — reuse the calling domain's
     memoized kernel; class representatives repeat, so the verdict
     cache stays on (this is the repeated-valuation path the sweep
     bypass in [Support.count_satisfying] preserves the cache for). *)
  let chk = Support.domain_checker ?cache db sentence in
  let verdict c = Support.check chk (Classes.representative ~anchor_set c) in
  let classes = Classes.enumerate ~anchor_set ~nulls in
  if all then for_all_sc verdict classes else exists_sc verdict classes

let is_certain ?cache inst q tuple =
  check_candidate ?cache ~all:true (Support.kernel_db ?cache inst) q tuple

let is_possible ?cache inst q tuple =
  check_candidate ?cache ~all:false (Support.kernel_db ?cache inst) q tuple

let candidates inst m =
  List.map Tuple.of_list (Arith.Combinat.tuples (Instance.adom inst) m)

(* The candidate sweep is embarrassingly parallel: each candidate's
   certainty check is independent, and the per-chunk result relations
   are merged with set union (commutative), combined in chunk order.
   Candidates are few but each check sweeps equivalence classes, so
   even tiny ranges are worth a pool task.

   Candidates are drawn from adom^m, so their constants and nulls are
   already the database's: the anchor set, the class list and the
   class representatives are the same for every candidate and are
   computed once, outside the sweep. Only the instantiated sentence
   (and its compiled checker) is per-candidate. *)
let filter_candidates ?jobs ?guard ?cache ~all inst q =
  Obs.Trace.span "certain.sweep"
    ~attrs:[ ("all", string_of_bool all); ("arity", string_of_int (Query.arity q)) ]
  @@ fun () ->
  let m = Query.arity q in
  let db = Support.kernel_db ?cache inst in
  let split = Kernel.split db in
  let anchor_set =
    Support.anchor_set_sentences_split split [ q.Query.body ]
  in
  let nulls =
    List.sort_uniq Int.compare
      (Split.nulls split @ Formula.nulls q.Query.body)
  in
  let representatives =
    List.map
      (Classes.representative ~anchor_set)
      (Classes.enumerate ~anchor_set ~nulls)
  in
  let cands = Array.of_list (candidates inst m) in
  Exec.Pool.fold_range ?jobs ?guard ~min_work:4 ~n:(Array.length cands)
    ~chunk:(fun lo hi ->
      let rel = ref (Relation.empty m) in
      for i = lo to hi - 1 do
        (* Deliberately NOT [domain_checker]: every candidate has its
           own instantiated sentence, so a per-domain memo would only
           churn its bounded store — each sentence is compiled exactly
           once either way. *)
        let chk = Support.checker ?cache db (Query.instantiate q cands.(i)) in
        let keep =
          if all then for_all_sc (Support.check chk) representatives
          else exists_sc (Support.check chk) representatives
        in
        if keep then rel := Relation.add cands.(i) !rel
      done;
      !rel)
    ~combine:Relation.union (Relation.empty m)

let certain_answers_enumerated ?jobs ?guard ?cache inst q =
  filter_candidates ?jobs ?guard ?cache ~all:true inst q

(* Fragment dispatch (Corollary 3): for queries within Pos∀G naïve
   evaluation computes certain answers, so the class enumeration is
   unnecessary. Restricted to constant-free queries so that the naïve
   evaluation domain (adom + query constants) coincides with the
   candidate space adom^m of the enumeration path; queries with
   constants keep the exact path. *)
let certain_answers ?jobs ?guard ?cache inst q =
  if
    Logic.Fragment.naive_eval_sound
      (Logic.Fragment.classify q.Query.body)
    && Query.constants q = []
  then Naive.answers inst q
  else certain_answers_enumerated ?jobs ?guard ?cache inst q

let certain_answers_null_free ?jobs ?guard ?cache inst q =
  Relation.filter
    (fun t -> not (Tuple.has_null t))
    (certain_answers ?jobs ?guard ?cache inst q)

let possible_answers ?jobs ?guard ?cache inst q =
  filter_candidates ?jobs ?guard ?cache ~all:false inst q

let sentence_classes ?cache inst sentence =
  let db = Support.kernel_db ?cache inst in
  let split = Kernel.split db in
  let anchor_set = Support.anchor_set_sentences_split split [ sentence ] in
  let nulls =
    List.sort_uniq Int.compare (Split.nulls split @ Formula.nulls sentence)
  in
  let chk = Support.domain_checker ?cache db sentence in
  List.map
    (fun c -> Support.check chk (Classes.representative ~anchor_set c))
    (Classes.enumerate ~anchor_set ~nulls)

let is_certain_sentence ?cache inst sentence =
  List.for_all Fun.id (sentence_classes ?cache inst sentence)

let is_possible_sentence ?cache inst sentence =
  List.exists Fun.id (sentence_classes ?cache inst sentence)

(* Factorized certainty: valuations restrict and recombine freely
   across components (they assign nulls independently), so
   ∀v.φ[v] ⟺ ∧ⱼ ∀vⱼ.φⱼ[vⱼ] and ∃v.φ[v] ⟺ ∧ⱼ ∃vⱼ.φⱼ[vⱼ] for a sound
   plan. Each component runs the class machinery on its own kernel
   restriction — and on its own fresh cache: the shared Support cache
   pins one kernel db per instance, which would be wrong across
   restrictions. *)
let component_instances inst (plan : Factor.plan) =
  List.map
    (fun (c : Factor.component) ->
      (Factor.restricted_instance inst c.Factor.c_relations, c.Factor.c_sentence))
    plan.Factor.components

let is_certain_sentence_plan inst plan =
  List.for_all
    (fun (restricted, sentence) ->
      is_certain_sentence ~cache:(Support.create_cache ()) restricted sentence)
    (component_instances inst plan)

let is_possible_sentence_plan inst plan =
  List.for_all
    (fun (restricted, sentence) ->
      is_possible_sentence ~cache:(Support.create_cache ()) restricted sentence)
    (component_instances inst plan)
