(** Certain and possible answers, decided exactly.

    A tuple [ā] is a certain answer ([ā ∈ □(Q,D)]) iff
    [Supp(Q,D,ā) = V(D)], and a possible answer iff
    [Supp(Q,D,ā) ≠ ∅] (paper §2). Although [V(D)] is infinite, by
    [C]-genericity the truth of [v(ā) ∈ Q(v(D))] is constant on each
    valuation equivalence class ({!Classes}), and every class is
    non-empty; hence certainty is universality over class
    representatives and possibility is existence of one. This is exact
    for {e every} generic query — including full first-order queries,
    where naïve evaluation is unsound for certainty — at exponential
    cost in the number of nulls (coNP-hardness is Theorem 6's
    territory; no polynomial algorithm is expected).

    The answer sweeps take [?jobs] to check candidate tuples on
    parallel domains (each candidate is independent; chunk results are
    merged by set union, so the answer set is identical for any
    [jobs]), and [?cache] to share one {!Support.cache} across all
    candidates — the class representatives recur from candidate to
    candidate, so their completed instances [v(D)] are computed once.
    [?guard] is called at candidate-chunk boundaries and cancels the
    sweep by raising (the query service's deadline hook). *)

val is_certain :
  ?cache:Support.cache ->
  Relational.Instance.t -> Logic.Query.t -> Relational.Tuple.t -> bool

val certain_answers :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:Support.cache ->
  Relational.Instance.t -> Logic.Query.t -> Relational.Relation.t
(** [□(Q,D)]: all certain answers among tuples over the active domain
    (certain answers {e with nulls}, after [Lipski 1984]).

    Dispatches on {!Logic.Fragment.classify}: for constant-free queries
    within Pos∀G, naïve evaluation computes certain answers (Corollary
    3), so the class enumeration is skipped entirely — certain answers
    then cost one query evaluation instead of exponentially many. All
    other queries take the exact enumeration path
    ({!certain_answers_enumerated}). The two paths agree wherever both
    apply — a property the test suite checks. *)

val certain_answers_enumerated :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:Support.cache ->
  Relational.Instance.t -> Logic.Query.t -> Relational.Relation.t
(** The class-enumeration path, unconditionally: ground truth for every
    generic query, exponential in the number of nulls. *)

val certain_answers_null_free :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:Support.cache ->
  Relational.Instance.t -> Logic.Query.t -> Relational.Relation.t
(** The classical intersection-based certain answers: the restriction
    of [□(Q,D)] to null-free tuples (paper §1: "this is simply the
    restriction of □(Q,D) to tuples without nulls"). *)

val is_possible :
  ?cache:Support.cache ->
  Relational.Instance.t -> Logic.Query.t -> Relational.Tuple.t -> bool

val possible_answers :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:Support.cache ->
  Relational.Instance.t -> Logic.Query.t -> Relational.Relation.t

val is_certain_sentence :
  ?cache:Support.cache -> Relational.Instance.t -> Logic.Formula.t -> bool
(** Certain truth of a Boolean query: [Q(D') = true] for all
    [D' ∈ [[D]]]. *)

val is_possible_sentence :
  ?cache:Support.cache -> Relational.Instance.t -> Logic.Formula.t -> bool

val is_certain_sentence_plan :
  Relational.Instance.t -> Factor.plan -> bool
(** Decomposition-aware certainty: each component of a sound plan is
    decided by {!is_certain_sentence} on its own kernel restriction
    and the verdicts are conjoined — valuations assign nulls
    independently, so the class sweeps shrink from the product of the
    component spaces to their sum. Agrees with {!is_certain_sentence}
    on the undecomposed sentence (property-tested). *)

val is_possible_sentence_plan :
  Relational.Instance.t -> Factor.plan -> bool
(** Same factorization for possibility ([∃v] distributes over
    independent components just like [∀v]). *)

val witnessing_classes :
  ?cache:Support.cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  (Classes.t * bool) list
(** Every valuation class together with the truth of
    [v(ā) ∈ Q(v(D))] on it — the raw data behind all the decisions
    above (and behind the measure computations in [Zeroone]). *)
