module B = Arith.Bigint

let fold_valuations ~nulls ~k f acc =
  let rec go acc assigned = function
    | [] -> f acc (Valuation.of_list assigned)
    | n :: rest ->
        let acc = ref acc in
        for c = 1 to k do
          acc := go !acc ((n, c) :: assigned) rest
        done;
        !acc
  in
  if k < 0 then invalid_arg "Enumerate.fold_valuations: negative k"
  else go acc [] nulls

let all_valuations ~nulls ~k =
  List.rev (fold_valuations ~nulls ~k (fun acc v -> v :: acc) [])

let count ~nulls ~k = Arith.Combinat.power k (List.length nulls)

(* Both versions defer to the exact [count]: the Bigint is tiny (a few
   digits) and this keeps the overflow boundary in exactly one place,
   [Bigint.to_int_opt]/[to_int_exn]. *)
let space_size ~nulls ~k =
  if k < 0 then invalid_arg "Enumerate.space_size: negative k"
  else B.to_int_opt (count ~nulls ~k)

let space_size_exn ~nulls ~k =
  if k < 0 then invalid_arg "Enumerate.space_size_exn: negative k"
  else B.to_int_exn (count ~nulls ~k)

let valuation_of_rank ~nulls ~k rank =
  if k < 1 then invalid_arg "Enumerate.valuation_of_rank: k < 1"
  else if rank < 0 then invalid_arg "Enumerate.valuation_of_rank: negative rank"
  else begin
    (* Mixed-radix decoding, last null least significant, so rank order
       coincides with the visit order of [fold_valuations]. *)
    let rec go r acc = function
      | [] ->
          if r <> 0 then
            invalid_arg "Enumerate.valuation_of_rank: rank out of range"
          else acc
      | n :: rest -> go (r / k) ((n, (r mod k) + 1) :: acc) rest
    in
    Valuation.of_list (go rank [] (List.rev nulls))
  end

(* In-place mixed-radix odometer over [V^k(D)]. Seeding decodes a rank
   once; every subsequent valuation is an O(1)-amortized [step] on the
   shared digit array — the allocation per valuation that
   [valuation_of_rank] pays (list + IMap) disappears from the sweep
   hot path. Digit order matches [valuation_of_rank]: position [i]
   holds the code of the [i]-th null of [nulls], the last null being
   the least significant digit. *)
type odometer = { od_nulls : int array; od_digits : int array; od_k : int }

let odometer ~nulls ~k ~rank =
  if k < 1 then invalid_arg "Enumerate.odometer: k < 1"
  else if rank < 0 then invalid_arg "Enumerate.odometer: negative rank"
  else begin
    let od_nulls = Array.of_list nulls in
    let m = Array.length od_nulls in
    let od_digits = Array.make m 1 in
    let r = ref rank in
    for i = m - 1 downto 0 do
      od_digits.(i) <- (!r mod k) + 1;
      r := !r / k
    done;
    if !r <> 0 then invalid_arg "Enumerate.odometer: rank out of range";
    { od_nulls; od_digits; od_k = k }
  end

let digits od = od.od_digits

let step od =
  let d = od.od_digits in
  let i = ref (Array.length d - 1) in
  while !i >= 0 && Array.unsafe_get d !i = od.od_k do
    Array.unsafe_set d !i 1;
    decr i
  done;
  if !i >= 0 then Array.unsafe_set d !i (Array.unsafe_get d !i + 1)

let valuation od =
  Valuation.of_list
    (Array.to_list (Array.mapi (fun i n -> (n, od.od_digits.(i))) od.od_nulls))

let fold_digits_range ~nulls ~k ~lo ~hi f acc =
  if hi <= lo then acc
  else begin
    let od = odometer ~nulls ~k ~rank:lo in
    let acc = ref acc in
    for _ = lo to hi - 1 do
      acc := f !acc od.od_digits;
      step od
    done;
    !acc
  end

let fold_valuations_range ~nulls ~k ~lo ~hi f acc =
  if hi <= lo then acc
  else begin
    let od = odometer ~nulls ~k ~rank:lo in
    let acc = ref acc in
    for _ = lo to hi - 1 do
      acc := f !acc (valuation od);
      step od
    done;
    !acc
  end

let fold_bijective ~nulls ~avoid ~k f acc =
  (* [free.(c)] ⟺ code [c] is neither in [avoid] nor taken by an
     earlier null — one O(1) flag probe per candidate code instead of
     the former [List.mem] scans over both lists. *)
  let free = Array.make (k + 1) true in
  List.iter (fun c -> if c >= 1 && c <= k then free.(c) <- false) avoid;
  let rec go acc assigned = function
    | [] -> f acc (Valuation.of_list assigned)
    | n :: rest ->
        let acc = ref acc in
        for c = 1 to k do
          if free.(c) then begin
            free.(c) <- false;
            acc := go !acc ((n, c) :: assigned) rest;
            free.(c) <- true
          end
        done;
        !acc
  in
  go acc [] nulls

let count_bijective ~nulls ~avoid ~k =
  let a = List.length (List.filter (fun c -> c <= k && c >= 1) avoid) in
  Arith.Combinat.falling_factorial (k - a) (List.length nulls)

let fresh_bijective ~nulls ~avoid =
  let base = List.fold_left max 0 avoid in
  Valuation.of_list (List.mapi (fun i n -> (n, base + i + 1)) nulls)
