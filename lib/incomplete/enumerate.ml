module B = Arith.Bigint

let fold_valuations ~nulls ~k f acc =
  let rec go acc assigned = function
    | [] -> f acc (Valuation.of_list assigned)
    | n :: rest ->
        let acc = ref acc in
        for c = 1 to k do
          acc := go !acc ((n, c) :: assigned) rest
        done;
        !acc
  in
  if k < 0 then invalid_arg "Enumerate.fold_valuations: negative k"
  else go acc [] nulls

let all_valuations ~nulls ~k =
  List.rev (fold_valuations ~nulls ~k (fun acc v -> v :: acc) [])

let count ~nulls ~k = Arith.Combinat.power k (List.length nulls)

(* Both versions defer to the exact [count]: the Bigint is tiny (a few
   digits) and this keeps the overflow boundary in exactly one place,
   [Bigint.to_int_opt]/[to_int_exn]. *)
let space_size ~nulls ~k =
  if k < 0 then invalid_arg "Enumerate.space_size: negative k"
  else B.to_int_opt (count ~nulls ~k)

let space_size_exn ~nulls ~k =
  if k < 0 then invalid_arg "Enumerate.space_size_exn: negative k"
  else B.to_int_exn (count ~nulls ~k)

let valuation_of_rank ~nulls ~k rank =
  if k < 1 then invalid_arg "Enumerate.valuation_of_rank: k < 1"
  else if rank < 0 then invalid_arg "Enumerate.valuation_of_rank: negative rank"
  else begin
    (* Mixed-radix decoding, last null least significant, so rank order
       coincides with the visit order of [fold_valuations]. *)
    let rec go r acc = function
      | [] ->
          if r <> 0 then
            invalid_arg "Enumerate.valuation_of_rank: rank out of range"
          else acc
      | n :: rest -> go (r / k) ((n, (r mod k) + 1) :: acc) rest
    in
    Valuation.of_list (go rank [] (List.rev nulls))
  end

let fold_valuations_range ~nulls ~k ~lo ~hi f acc =
  let acc = ref acc in
  for r = lo to hi - 1 do
    acc := f !acc (valuation_of_rank ~nulls ~k r)
  done;
  !acc

let fold_bijective ~nulls ~avoid ~k f acc =
  let rec go acc used assigned = function
    | [] -> f acc (Valuation.of_list assigned)
    | n :: rest ->
        let acc = ref acc in
        for c = 1 to k do
          if (not (List.mem c avoid)) && not (List.mem c used) then
            acc := go !acc (c :: used) ((n, c) :: assigned) rest
        done;
        !acc
  in
  go acc [] [] nulls

let count_bijective ~nulls ~avoid ~k =
  let a = List.length (List.filter (fun c -> c <= k && c >= 1) avoid) in
  Arith.Combinat.falling_factorial (k - a) (List.length nulls)

let fresh_bijective ~nulls ~avoid =
  let base = List.fold_left max 0 avoid in
  Valuation.of_list (List.mapi (fun i n -> (n, base + i + 1)) nulls)
