(** Enumeration of the finite valuation spaces [V^k(D)].

    [V^k(D)] is the set of valuations whose range lies in the first [k]
    constants [{c1,…,ck}] (represented by codes [1..k]); it has [k^m]
    elements for [m] nulls. These enumerations drive the brute-force
    computation of [µ^k] that cross-checks the symbolic machinery. *)

val fold_valuations :
  nulls:int list -> k:int -> ('a -> Valuation.t -> 'a) -> 'a -> 'a
(** Folds over all of [V^k(D)] without materializing the list. *)

val all_valuations : nulls:int list -> k:int -> Valuation.t list
(** Materialized version; beware the [k^m] blow-up. *)

val count : nulls:int list -> k:int -> Arith.Bigint.t
(** [k^m]. *)

val space_size : nulls:int list -> k:int -> int option
(** [k^m] as a machine integer, or [None] when it overflows (in which
    case rank-based chunking — and any exhaustive enumeration — is
    hopeless anyway). *)

val space_size_exn : nulls:int list -> k:int -> int
(** Same, but raises {!Arith.Bigint.Overflow} carrying the exact
    [k^m], so front ends can tell the user how large the space they
    asked for actually is. *)

val valuation_of_rank : nulls:int list -> k:int -> int -> Valuation.t
(** The [r]-th valuation of [V^k(D)] in the visit order of
    {!fold_valuations} (the last null of [nulls] is the least
    significant mixed-radix digit). Ranks index [\[0, k^m)]; this is
    what lets a work pool carve the valuation space into contiguous,
    disjoint chunks.
    @raise Invalid_argument if [k < 1] or the rank is out of range. *)

val fold_valuations_range :
  nulls:int list -> k:int -> lo:int -> hi:int -> ('a -> Valuation.t -> 'a) -> 'a -> 'a
(** Folds over the valuations of ranks [\[lo, hi)], in rank order. The
    full-range call [~lo:0 ~hi:(k^m)] visits exactly the valuations of
    {!fold_valuations}, in the same order. *)

val fold_bijective :
  nulls:int list -> avoid:int list -> k:int -> ('a -> Valuation.t -> 'a) -> 'a -> 'a
(** Folds over the [C]-bijective valuations with range in [{c1..ck}]:
    injective, range disjoint from [avoid]. *)

val count_bijective : nulls:int list -> avoid:int list -> k:int -> Arith.Bigint.t
(** Number of the above: the falling factorial [(k−a)·…] where [a] is
    the number of codes of [avoid] that are [≤ k]. *)

val fresh_bijective : nulls:int list -> avoid:int list -> Valuation.t
(** One canonical [C]-bijective valuation assigning to each null a
    distinct constant beyond [max(avoid)] — the witness used by naïve
    evaluation (Definition 3). *)
