(** Enumeration of the finite valuation spaces [V^k(D)].

    [V^k(D)] is the set of valuations whose range lies in the first [k]
    constants [{c1,…,ck}] (represented by codes [1..k]); it has [k^m]
    elements for [m] nulls. These enumerations drive the brute-force
    computation of [µ^k] that cross-checks the symbolic machinery. *)

val fold_valuations :
  nulls:int list -> k:int -> ('a -> Valuation.t -> 'a) -> 'a -> 'a
(** Folds over all of [V^k(D)] without materializing the list. *)

val all_valuations : nulls:int list -> k:int -> Valuation.t list
(** Materialized version; beware the [k^m] blow-up. *)

val count : nulls:int list -> k:int -> Arith.Bigint.t
(** [k^m]. *)

val space_size : nulls:int list -> k:int -> int option
(** [k^m] as a machine integer, or [None] when it overflows (in which
    case rank-based chunking — and any exhaustive enumeration — is
    hopeless anyway). *)

val space_size_exn : nulls:int list -> k:int -> int
(** Same, but raises {!Arith.Bigint.Overflow} carrying the exact
    [k^m], so front ends can tell the user how large the space they
    asked for actually is. *)

val valuation_of_rank : nulls:int list -> k:int -> int -> Valuation.t
(** The [r]-th valuation of [V^k(D)] in the visit order of
    {!fold_valuations} (the last null of [nulls] is the least
    significant mixed-radix digit). Ranks index [\[0, k^m)]; this is
    what lets a work pool carve the valuation space into contiguous,
    disjoint chunks.
    @raise Invalid_argument if [k < 1] or the rank is out of range. *)

(** {1 Odometer enumeration}

    The sweep hot path. An odometer is an in-place mixed-radix digit
    array over [V^k(D)]: seeded once per valuation-range chunk by
    decoding the chunk's first rank, then advanced by an O(1)-amortized
    {!step} — no list, [Valuation.t] or any other allocation per
    valuation. Digit position [i] holds the code ([1..k]) of the [i]-th
    null of [nulls]; the last null is the least significant digit, so
    step order coincides with the rank order of {!valuation_of_rank}
    and the visit order of {!fold_valuations}. *)

type odometer

val odometer : nulls:int list -> k:int -> rank:int -> odometer
(** Seed an odometer at the given rank of [\[0, k^m)].
    @raise Invalid_argument if [k < 1] or the rank is out of range. *)

val digits : odometer -> int array
(** The live digit array — mutated in place by {!step}; callers must
    read it (e.g. via {!Kernel.holds_digits}) before stepping again and
    must not retain or modify it. *)

val step : odometer -> unit
(** Advance to the next valuation in rank order. The all-[k] digit
    vector wraps to all-[1] (rank [k^m − 1] → rank [0]). *)

val valuation : odometer -> Valuation.t
(** Materialize the current position as a {!Valuation.t} — for
    boundary/debug use; the sweep loops stay on {!digits}. *)

val fold_digits_range :
  nulls:int list -> k:int -> lo:int -> hi:int -> ('a -> int array -> 'a) -> 'a -> 'a
(** Folds [f] over the digit vectors of ranks [\[lo, hi)], in rank
    order, seeding one odometer and stepping it in place. [f] receives
    the {e shared} live digit array and must not retain it across
    calls. *)

val fold_valuations_range :
  nulls:int list -> k:int -> lo:int -> hi:int -> ('a -> Valuation.t -> 'a) -> 'a -> 'a
(** Folds over the valuations of ranks [\[lo, hi)], in rank order. The
    full-range call [~lo:0 ~hi:(k^m)] visits exactly the valuations of
    {!fold_valuations}, in the same order. Materializes a
    [Valuation.t] per rank — sweeps that can consume raw digit vectors
    should use {!fold_digits_range} instead. *)

val fold_bijective :
  nulls:int list -> avoid:int list -> k:int -> ('a -> Valuation.t -> 'a) -> 'a -> 'a
(** Folds over the [C]-bijective valuations with range in [{c1..ck}]:
    injective, range disjoint from [avoid]. *)

val count_bijective : nulls:int list -> avoid:int list -> k:int -> Arith.Bigint.t
(** Number of the above: the falling factorial [(k−a)·…] where [a] is
    the number of codes of [avoid] that are [≤ k]. *)

val fresh_bijective : nulls:int list -> avoid:int list -> Valuation.t
(** One canonical [C]-bijective valuation assigning to each null a
    distinct constant beyond [max(avoid)] — the witness used by naïve
    evaluation (Definition 3). *)
