module Instance = Relational.Instance
module Relation = Relational.Relation
module Schema = Relational.Schema
module Formula = Logic.Formula
module B = Arith.Bigint

type component = {
  c_nulls : int list;
  c_sentence : Formula.t;
  c_relations : string list;
  c_conjuncts : int;
}

type plan = {
  components : component list;
  free_nulls : int list;
  all_nulls : int list;
}

let parts plan =
  List.length plan.components + if plan.free_nulls = [] then 0 else 1

let component_space c ~k = Enumerate.count ~nulls:c.c_nulls ~k

let free_space plan ~k = Enumerate.count ~nulls:plan.free_nulls ~k

let max_component_nulls plan =
  List.fold_left (fun m c -> max m (List.length c.c_nulls)) 0 plan.components

(* The component keeps only the relations its conjuncts mention; the
   other relations are emptied (schema preserved) so the component's
   kernel sees exactly the tuples — and therefore exactly the nulls and
   base constants — its verdict may depend on. *)
let restricted_instance inst relations =
  let schema = Instance.schema inst in
  List.fold_left
    (fun acc name ->
      if List.mem name relations then
        Instance.set_relation name (Instance.relation inst name) acc
      else acc)
    (Instance.empty schema) (Schema.relations schema)

(* ------------------------------------------------------------------ *)
(* Normalization and conjunct extraction                               *)
(* ------------------------------------------------------------------ *)

(* ∀x.(g ∧ h) ⟺ (∀x.g) ∧ (∀x.h) holds over every domain (including
   the empty one), so universal quantifiers are pushed through
   conjunctions before splitting. Binders are kept even when their
   variable is unused in a branch: dropping one would change the
   verdict on an empty evaluation domain. *)
let rec normalize (f : Formula.t) : Formula.t =
  match f with
  | Formula.And (g, h) -> Formula.And (normalize g, normalize h)
  | Formula.Forall (x, g) -> (
      match normalize g with
      | Formula.And (a, b) ->
          Formula.And
            (normalize (Formula.Forall (x, a)), normalize (Formula.Forall (x, b)))
      | g' -> Formula.Forall (x, g'))
  | other -> other

let conjuncts f =
  let rec flatten f acc =
    match f with Formula.And (g, h) -> flatten g (flatten h acc) | g -> g :: acc
  in
  flatten (normalize f) []

(* ------------------------------------------------------------------ *)
(* Domain-safety                                                       *)
(* ------------------------------------------------------------------ *)

(* The kernel evaluates quantifiers over the active domain of v(D)
   plus the constants of φ[v] — a set that grows with every null image
   and every constant of the *whole* sentence. Factoring a conjunct
   out is sound only if its verdict cannot change when that domain is
   extended with elements fresh to the conjunct: elements occurring in
   none of its relations (after valuation) and none of its constants.

   [falsified_fresh x f]: f is definitely false whenever x is bound to
   such a fresh element (whatever the other variables hold).
   [satisfied_fresh x f]: f is definitely true under the same regime.
   Both assume a nonempty evaluation domain (the planner refuses to
   factor a quantified conjunct whose restricted domain could be
   empty). [dsafe f]: every quantifier of f is guarded — ∃x only ever
   witnessed by non-fresh elements, ∀x never refuted by fresh ones —
   so extending the domain never flips a verdict. *)

let term_is_var x = function Formula.Var y -> String.equal x y | _ -> false

let is_val = function Formula.Val _ -> true | Formula.Var _ -> false

let rec falsified_fresh x (f : Formula.t) =
  match f with
  | Formula.False -> true
  | Formula.True -> false
  | Formula.Atom (_, ts) ->
      (* A fresh element occurs in no tuple of any relation. *)
      List.exists (term_is_var x) ts
  | Formula.Eq (a, b) ->
      (* fresh = constant/null-image is false; fresh = other-variable is
         unknown (the other variable may hold the same fresh element). *)
      (term_is_var x a && is_val b) || (term_is_var x b && is_val a)
  | Formula.Not g -> satisfied_fresh x g
  | Formula.And (g, h) -> falsified_fresh x g || falsified_fresh x h
  | Formula.Or (g, h) -> falsified_fresh x g && falsified_fresh x h
  | Formula.Implies (g, h) -> satisfied_fresh x g && falsified_fresh x h
  | Formula.Exists (y, g) | Formula.Forall (y, g) ->
      (* Either quantifier: false for every binding of y (nonempty
         domain makes both collapse). Shadowing stops the analysis. *)
      (not (String.equal y x)) && falsified_fresh x g

and satisfied_fresh x (f : Formula.t) =
  match f with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Atom _ -> false
  | Formula.Eq _ -> false
  | Formula.Not g -> falsified_fresh x g
  | Formula.And (g, h) -> satisfied_fresh x g && satisfied_fresh x h
  | Formula.Or (g, h) -> satisfied_fresh x g || satisfied_fresh x h
  | Formula.Implies (g, h) -> falsified_fresh x g || satisfied_fresh x h
  | Formula.Exists (y, g) | Formula.Forall (y, g) ->
      (not (String.equal y x)) && satisfied_fresh x g

let rec dsafe (f : Formula.t) =
  match f with
  | Formula.True | Formula.False | Formula.Atom _ | Formula.Eq _ -> true
  | Formula.Not g -> dsafe g
  | Formula.And (g, h) | Formula.Or (g, h) | Formula.Implies (g, h) ->
      dsafe g && dsafe h
  | Formula.Exists (x, g) -> dsafe g && falsified_fresh x g
  | Formula.Forall (x, g) -> dsafe g && satisfied_fresh x g

let rec has_quantifier (f : Formula.t) =
  match f with
  | Formula.Exists _ | Formula.Forall _ -> true
  | Formula.Not g -> has_quantifier g
  | Formula.And (g, h) | Formula.Or (g, h) | Formula.Implies (g, h) ->
      has_quantifier g || has_quantifier h
  | Formula.True | Formula.False | Formula.Atom _ | Formula.Eq _ -> false

let rec relations_of (f : Formula.t) acc =
  match f with
  | Formula.Atom (r, _) -> if List.mem r acc then acc else r :: acc
  | Formula.Not g | Formula.Exists (_, g) | Formula.Forall (_, g) ->
      relations_of g acc
  | Formula.And (g, h) | Formula.Or (g, h) | Formula.Implies (g, h) ->
      relations_of g (relations_of h acc)
  | Formula.True | Formula.False | Formula.Eq _ -> acc

let relations f = List.sort String.compare (relations_of f [])
