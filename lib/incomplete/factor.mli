(** Decomposition plans: the data factorized µ^k evaluation runs on.

    Valuations assign nulls independently, so whenever a support
    sentence [φ] splits into conjuncts touching disjoint null sets the
    measure factorizes over the connected components of the null
    interaction graph and the [k^m] sweep collapses to [Σᵢ k^{mᵢ}].
    This module holds the plan representation shared by the planner
    ([Analysis.Decomp], which builds plans and proves them sound) and
    the evaluators ({!Support.supp_count_plan},
    [Certain.is_certain_sentence_plan], the per-component sampler of
    [Approx_measure.Estimator]).

    The soundness side conditions live here too, next to the kernel
    they reason about: {!dsafe} is the syntactic guardedness check
    certifying that a conjunct's verdict is invariant under extending
    the evaluation domain with elements fresh to the conjunct — the
    exact gap between a component's restricted kernel domain and the
    monolithic one. *)

type component = {
  c_nulls : int list;  (** the component's null ids, sorted *)
  c_sentence : Logic.Formula.t;
      (** conjunction of the conjuncts assigned to this component *)
  c_relations : string list;
      (** relations the conjuncts mention — the kernel restriction *)
  c_conjuncts : int;
}

type plan = {
  components : component list;
  free_nulls : int list;
      (** swept nulls no conjunct depends on: factor [k^f] in the
          support count, factor 1 in the measure *)
  all_nulls : int list;  (** the monolithic sweep set, sorted *)
}

val parts : plan -> int
(** Components plus one for a nonempty free block — [≥ 2] is a real
    decomposition. *)

val component_space : component -> k:int -> Arith.Bigint.t
(** [k^{mᵢ}], exact. *)

val free_space : plan -> k:int -> Arith.Bigint.t

val max_component_nulls : plan -> int

val restricted_instance :
  Relational.Instance.t -> string list -> Relational.Instance.t
(** Same schema, but only the named relations keep their tuples. *)

(** {1 Conjunct extraction} *)

val normalize : Logic.Formula.t -> Logic.Formula.t
(** Distributes [∀] over [∧] (valid on every domain, empty included)
    so independent conjuncts under a shared universal become separate
    top-level conjuncts. Binders are never dropped. *)

val conjuncts : Logic.Formula.t -> Logic.Formula.t list
(** Top-level conjuncts of {!normalize}, in order; at least one. *)

(** {1 Domain-safety} *)

val dsafe : Logic.Formula.t -> bool
(** Every quantifier is guarded: no existential is witnessed and no
    universal refuted by an element fresh to the formula's relations
    and constants. A dsafe conjunct evaluated on its kernel
    restriction (nonempty domain) returns exactly the monolithic
    verdict — the soundness lemma behind the bit-identity gate. *)

val falsified_fresh : string -> Logic.Formula.t -> bool
(** [falsified_fresh x f]: f is definitely false whenever [x] holds an
    element fresh to f's relations and values, whatever the other
    variables hold (assumes a nonempty domain). *)

val satisfied_fresh : string -> Logic.Formula.t -> bool
(** Dual: definitely true under the same regime. *)

val has_quantifier : Logic.Formula.t -> bool

val relations : Logic.Formula.t -> string list
(** Relation names mentioned, sorted, deduplicated. *)
