module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Instance = Relational.Instance
module Index = Relational.Index
module Formula = Logic.Formula
module Compiled = Logic.Compiled

(* The support-check inner loop asks, for thousands of valuations v,
   whether v(D) ⊨ φ[v]. The naive path pays, per valuation: a full
   instance rebuild (Valuation.instance), a formula rewrite
   (Formula.map_values), an active-domain fold (Eval.domain via
   Instance.constants), and an interpretive evaluation. This kernel
   pays all instance- and sentence-dependent costs once:

   - the instance is split (Split) into a ground fragment — indexed
     once, shared by every valuation and every domain — and the few
     null-carrying tuples;
   - the sentence is compiled (Logic.Compiled) with nulls resolved
     through a valuation-image array rewritten in place;
   - per valuation only the null images, the domain suffix and the
     completed null tuples (a small hash table per mentioned relation)
     are refreshed.

   The immutable, shareable part is [db]; a [t] adds mutable
   per-valuation scratch and is single-threaded. Parallel folds share
   one [db] and compile one [t] per chunk. *)

type db = {
  split : Split.t;
  indexes : (string * Index.t) list; (* ground fragment, per relation *)
}

let db_of_instance inst =
  let split = Split.of_instance inst in
  let ground = Split.ground split in
  let indexes =
    List.map
      (fun name -> (name, Index.of_relation (Instance.relation ground name)))
      (Schema.relations (Instance.schema inst))
  in
  { split; indexes }

let db_of_split split =
  let ground = Split.ground split in
  let indexes =
    List.map
      (fun name -> (name, Index.of_relation (Instance.relation ground name)))
      (Schema.relations (Instance.schema (Split.base split)))
  in
  { split; indexes }

let split t = t.split
let instance t = Split.base t.split

(* One null-carrying tuple, precompiled: the constant cells, and for
   each null cell its position in the kernel's null-image array. *)
type template = { cells : Value.t array; null_cells : (int * int) array }

type table = { templates : template array; tbl : (Tuple.t, unit) Hashtbl.t }

type t = {
  db : db;
  sentence : Formula.t;
  knulls : int array; (* Null(D) ∪ nulls(φ), sorted *)
  null_img : Value.t array; (* image of knulls under the current v *)
  tables : table list; (* mentioned relations with null tuples *)
  base_codes : int array; (* Const(D) ∪ consts(φ), sorted *)
  dom : Value.t array; (* base values ++ room for the null images *)
  base_dom_n : int;
  compiled : Compiled.t;
}

let rec mentioned acc = function
  | Formula.True | Formula.False | Formula.Eq _ -> acc
  | Formula.Atom (r, _) -> if List.mem r acc then acc else r :: acc
  | Formula.Not g | Formula.Exists (_, g) | Formula.Forall (_, g) ->
      mentioned acc g
  | Formula.And (g, h) | Formula.Or (g, h) | Formula.Implies (g, h) ->
      mentioned (mentioned acc g) h

let compile db sentence =
  if not (Formula.is_sentence sentence) then
    invalid_arg "Kernel.compile: formula is not a sentence";
  let knulls =
    Array.of_list
      (List.sort_uniq Int.compare
         (Split.nulls db.split @ Formula.nulls sentence))
  in
  let m = Array.length knulls in
  let null_img = Array.make (max m 1) (Value.null 0) in
  let pos_of =
    let tbl = Hashtbl.create (max m 1) in
    Array.iteri (fun i n -> Hashtbl.replace tbl n i) knulls;
    fun n ->
      match Hashtbl.find_opt tbl n with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Kernel: unknown null ~%d" n)
  in
  let rels = mentioned [] sentence in
  let tables_by_name =
    List.filter_map
      (fun (name, tuples) ->
        if not (List.mem name rels) then None
        else
          let templates =
            Array.map
              (fun tup ->
                let cells = Tuple.to_array tup in
                let null_cells =
                  Array.of_list
                    (List.concat
                       (List.mapi
                          (fun i v ->
                            match Value.null_id v with
                            | Some n -> [ (i, pos_of n) ]
                            | None -> [])
                          (Array.to_list cells)))
                in
                { cells; null_cells })
              tuples
          in
          Some
            ( name,
              {
                templates;
                tbl = Hashtbl.create (max 8 (2 * Array.length templates));
              } ))
      (Split.null_tuples db.split)
  in
  let tables = List.map snd tables_by_name in
  let src_mem r _arity =
    let ground =
      match List.assoc_opt r db.indexes with
      | Some idx -> Some idx
      | None -> None
    in
    let null_tbl = List.assoc_opt r tables_by_name in
    match (ground, null_tbl) with
    | None, _ ->
        (* Unknown relation: fail only if the atom is evaluated, like
           Instance.relation in the naive path. *)
        fun _ -> raise Not_found
    | Some idx, None -> Index.mem_values idx
    | Some idx, Some { tbl; _ } ->
        fun buf ->
          Index.mem_values idx buf
          || Hashtbl.mem tbl (Tuple.unsafe_of_array buf)
  in
  let src_null n =
    let p = pos_of n in
    fun () -> Array.unsafe_get null_img p
  in
  let compiled = Compiled.of_source { src_mem; src_null } sentence in
  let base_codes =
    Array.of_list
      (List.sort_uniq Int.compare
         (Split.constants db.split @ Formula.constants sentence))
  in
  let base_dom_n = Array.length base_codes in
  let dom = Array.make (base_dom_n + m + 1) (Value.null 0) in
  Array.iteri (fun i c -> dom.(i) <- Value.const c) base_codes;
  Compiled.set_domain compiled dom base_dom_n;
  { db; sentence; knulls; null_img; tables; base_codes; dom; base_dom_n;
    compiled }

let sentence t = t.sentence

let base_mem codes c =
  let rec go lo hi =
    lo < hi
    && begin
         let mid = (lo + hi) / 2 in
         let d = Int.compare c codes.(mid) in
         if d = 0 then true else if d < 0 then go lo mid else go (mid + 1) hi
       end
  in
  go 0 (Array.length codes)

let holds t v =
  (* Refreshes are the misses of the verdict cache: requests minus
     refreshes ≈ cache-served verdicts. *)
  Obs.Metrics.incr Obs.Metrics.kernel_refreshes;
  let m = Array.length t.knulls in
  (* 1. Null images under v (raises like Valuation.instance would if a
     null of D or of the sentence is unassigned). *)
  for i = 0 to m - 1 do
    t.null_img.(i) <- Value.const (Valuation.find_exn v t.knulls.(i))
  done;
  (* 2. Evaluation domain of v(D) ⊨ φ[v]: the base constants plus the
     distinct fresh constants among the null images. *)
  if Compiled.has_quantifier t.compiled then begin
    let n = ref t.base_dom_n in
    for i = 0 to m - 1 do
      let img = t.null_img.(i) in
      let c = match img with Value.Const c -> c | Value.Null _ -> assert false in
      if not (base_mem t.base_codes c) then begin
        let dup = ref false in
        for j = t.base_dom_n to !n - 1 do
          if Value.equal t.dom.(j) img then dup := true
        done;
        if not !dup then begin
          t.dom.(!n) <- img;
          incr n
        end
      end
    done;
    Compiled.set_domain t.compiled t.dom !n
  end;
  (* 3. Complete the null tuples into the per-relation side tables. *)
  List.iter
    (fun { templates; tbl } ->
      Hashtbl.clear tbl;
      Array.iter
        (fun { cells; null_cells } ->
          let tup = Array.copy cells in
          Array.iter
            (fun (cell, pos) -> tup.(cell) <- t.null_img.(pos))
            null_cells;
          Hashtbl.replace tbl (Tuple.unsafe_of_array tup) ())
        templates)
    t.tables;
  (* 4. Evaluate the compiled sentence. *)
  Compiled.run t.compiled
