module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Instance = Relational.Instance
module Index = Relational.Index
module Formula = Logic.Formula
module Compiled = Logic.Compiled

(* The support-check inner loop asks, for thousands of valuations v,
   whether v(D) ⊨ φ[v]. The naive path pays, per valuation: a full
   instance rebuild (Valuation.instance), a formula rewrite
   (Formula.map_values), an active-domain fold (Eval.domain via
   Instance.constants), and an interpretive evaluation. This kernel
   pays all instance- and sentence-dependent costs once:

   - the instance is split (Split) into a ground fragment — indexed
     once, shared by every valuation and every domain — and the few
     null-carrying tuples;
   - the sentence is compiled (Logic.Compiled) with nulls resolved
     through a valuation-image array rewritten in place;
   - the null-carrying tuples are completed *in place*: each becomes a
     fixed row whose constant cells are written at compile time and
     whose null cells are plain array slots, reachable from a
     precomputed null → (row, cell) dependency map. Refreshing a
     valuation is a handful of cell writes — no hash table is cleared
     or repopulated, and nothing is allocated.

   Two refresh entry points share this machinery. [holds] takes a
   {!Valuation.t} and rewrites every null image. [holds_digits] is the
   sweep fast path: it takes the live digit array of an
   [Enumerate.odometer] and, by comparing against the digits of the
   previous call, refreshes only the images, dependent row cells and
   domain suffix that the changed digits touch — an odometer step
   changes the low-order digits only, so consecutive checks degenerate
   to one or two cell writes plus the compiled run.

   The immutable, shareable part is [db]; a [t] adds mutable
   per-valuation scratch and is single-threaded. Parallel folds share
   one [db] and compile one [t] per domain (see [Support]). *)

type db = {
  split : Split.t;
  indexes : (string * Index.t) list; (* ground fragment, per relation *)
}

let db_of_instance inst =
  let split = Split.of_instance inst in
  let ground = Split.ground split in
  let indexes =
    List.map
      (fun name -> (name, Index.of_relation (Instance.relation ground name)))
      (Schema.relations (Instance.schema inst))
  in
  { split; indexes }

let db_of_split split =
  let ground = Split.ground split in
  let indexes =
    List.map
      (fun name -> (name, Index.of_relation (Instance.relation ground name)))
      (Schema.relations (Instance.schema (Split.base split)))
  in
  { split; indexes }

let split t = t.split
let instance t = Split.base t.split

(* The db inherits the generation stamp of the instance it presents:
   caches (Support's kernel-db cache, the per-domain compiled-kernel
   memo) key on it, so a delta-updated db — whose base instance is a
   new value with a fresh stamp — can never be confused with the
   pre-update one, while two dbs built from the same instance value
   share their derived state. *)
let db_generation t = Instance.generation (Split.base t.split)

(* Single-tuple deltas: patch the split and, for a ground tuple, the
   touched relation's index (incremental overlay — Index.add/remove);
   indexes of untouched relations are shared physically. Null-carrying
   tuples live outside the ground indexes, so only the split moves.
   Validation (unknown relation, arity, duplicate insert / absent
   delete) is inherited from Split/Instance and raises
   Invalid_argument. *)
let db_update ~index_op ~split_op db ~name ~tuple =
  let split = split_op db.split ~name ~tuple in
  let indexes =
    if Tuple.has_null tuple then db.indexes
    else
      List.map
        (fun (n, idx) ->
          if String.equal n name then (n, index_op idx tuple) else (n, idx))
        db.indexes
  in
  { split; indexes }

let db_insert db ~name ~tuple =
  db_update ~index_op:Index.add ~split_op:Split.insert db ~name ~tuple

let db_delete db ~name ~tuple =
  db_update ~index_op:Index.remove ~split_op:Split.remove db ~name ~tuple

type t = {
  db : db;
  sentence : Formula.t;
  knulls : int array; (* Null(D) ∪ nulls(φ), sorted *)
  null_img : Value.t array; (* image of knulls under the current v *)
  ndeps : (Value.t array * int) array array;
      (* knull index → the (completed row, cell) slots its image
         occupies across all mentioned relations *)
  base_codes : int array; (* Const(D) ∪ consts(φ), sorted *)
  dom : Value.t array; (* base values ++ room for the null images *)
  base_dom_n : int;
  compiled : Compiled.t;
  (* Digit-sweep state ([prepare_digits]/[holds_digits]). *)
  mutable prepared : bool;
  mutable sweep_nulls : int list; (* nulls the map was built for *)
  mutable sweep_map : int array; (* digit position → knull index or -1 *)
  mutable prev_digits : int array; (* digits of the last [holds_digits] *)
  mutable prev_valid : bool;
}

let compile db sentence =
  if not (Formula.is_sentence sentence) then
    invalid_arg "Kernel.compile: formula is not a sentence";
  let knulls =
    Array.of_list
      (List.sort_uniq Int.compare
         (Split.nulls db.split @ Formula.nulls sentence))
  in
  let m = Array.length knulls in
  let null_img = Array.make (max m 1) (Value.null 0) in
  let pos_of =
    let tbl = Hashtbl.create (max m 1) in
    Array.iteri (fun i n -> Hashtbl.replace tbl n i) knulls;
    fun n ->
      match Hashtbl.find_opt tbl n with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Kernel: unknown null ~%d" n)
  in
  let rels = Formula.relations sentence in
  (* Complete each null tuple into a reusable row: constant cells are
     final; null cells are recorded in the per-null dependency lists
     and overwritten in place at refresh time. *)
  let deps = Array.make (max m 1) [] in
  let rows_by_name =
    List.filter_map
      (fun (name, tuples) ->
        if not (List.mem name rels) then None
        else
          let rows =
            Array.map
              (fun tup ->
                let row = Tuple.to_array tup in
                Array.iteri
                  (fun i v ->
                    match Value.null_id v with
                    | Some n ->
                        let p = pos_of n in
                        deps.(p) <- (row, i) :: deps.(p)
                    | None -> ())
                  row;
                row)
              tuples
          in
          Some (name, rows))
      (Split.null_tuples db.split)
  in
  let ndeps = Array.map (fun l -> Array.of_list (List.rev l)) deps in
  let row_eq row buf =
    let len = Array.length buf in
    Array.length row = len
    && begin
         let rec go i =
           i >= len
           || (Value.equal (Array.unsafe_get row i) (Array.unsafe_get buf i)
              && go (i + 1))
         in
         go 0
       end
  in
  let src_mem r _arity =
    let ground =
      match List.assoc_opt r db.indexes with
      | Some idx -> Some idx
      | None -> None
    in
    let null_rows = List.assoc_opt r rows_by_name in
    match (ground, null_rows) with
    | None, _ ->
        (* Unknown relation: fail only if the atom is evaluated, like
           Instance.relation in the naive path. *)
        fun _ -> raise Not_found
    | Some idx, None -> Index.mem_values idx
    | Some idx, Some rows ->
        (* Null-tuple counts per relation are small (that is the
           regime of the paper's examples and of [Split]); a linear
           scan beats rebuilding a hash table per valuation and
           allocates nothing. *)
        let n = Array.length rows in
        fun buf ->
          Index.mem_values idx buf
          || begin
               let rec go i =
                 i < n && (row_eq (Array.unsafe_get rows i) buf || go (i + 1))
               in
               go 0
             end
  in
  let src_null n =
    let p = pos_of n in
    fun () -> Array.unsafe_get null_img p
  in
  let compiled = Compiled.of_source { src_mem; src_null } sentence in
  let base_codes =
    Array.of_list
      (List.sort_uniq Int.compare
         (Split.constants db.split @ Formula.constants sentence))
  in
  let base_dom_n = Array.length base_codes in
  let dom = Array.make (base_dom_n + m + 1) (Value.null 0) in
  Array.iteri (fun i c -> dom.(i) <- Value.const c) base_codes;
  Compiled.set_domain compiled dom base_dom_n;
  {
    db;
    sentence;
    knulls;
    null_img;
    ndeps;
    base_codes;
    dom;
    base_dom_n;
    compiled;
    prepared = false;
    sweep_nulls = [];
    sweep_map = [||];
    prev_digits = [||];
    prev_valid = false;
  }

let sentence t = t.sentence

let base_mem codes c =
  let rec go lo hi =
    lo < hi
    && begin
         let mid = (lo + hi) / 2 in
         let d = Int.compare c codes.(mid) in
         if d = 0 then true else if d < 0 then go lo mid else go (mid + 1) hi
       end
  in
  go 0 (Array.length codes)

(* Set the image of the [ki]-th kernel null and propagate it to every
   completed-row cell that mentions it. *)
let refresh_null t ki img =
  Array.unsafe_set t.null_img ki img;
  Array.iter
    (fun (row, cell) -> Array.unsafe_set row cell img)
    (Array.unsafe_get t.ndeps ki)

(* Evaluation domain of v(D) ⊨ φ[v]: the base constants plus the
   distinct fresh constants among the null images. The suffix is a
   function of the whole image set (deduplication), so it is recomputed
   wholesale whenever any image changed — it is O(m · suffix) on a
   handful of values, dwarfed by the compiled run. *)
let refresh_domain t =
  if Compiled.has_quantifier t.compiled then begin
    let m = Array.length t.knulls in
    let n = ref t.base_dom_n in
    for i = 0 to m - 1 do
      let img = t.null_img.(i) in
      let c = match img with Value.Const c -> c | Value.Null _ -> assert false in
      if not (base_mem t.base_codes c) then begin
        let dup = ref false in
        for j = t.base_dom_n to !n - 1 do
          if Value.equal t.dom.(j) img then dup := true
        done;
        if not !dup then begin
          t.dom.(!n) <- img;
          incr n
        end
      end
    done;
    Compiled.set_domain t.compiled t.dom !n
  end

let holds t v =
  (* Refreshes are the misses of the verdict cache: requests minus
     refreshes ≈ cache-served verdicts. *)
  Obs.Metrics.incr Obs.Metrics.kernel_refreshes;
  let m = Array.length t.knulls in
  (* Null images under v (raises like Valuation.instance would if a
     null of D or of the sentence is unassigned). *)
  for i = 0 to m - 1 do
    refresh_null t i (Value.const (Valuation.find_exn v t.knulls.(i)))
  done;
  refresh_domain t;
  (* The row cells no longer reflect [prev_digits]. *)
  t.prev_valid <- false;
  Compiled.run t.compiled

let prepare_digits t ~nulls =
  let same =
    t.prepared
    && (t.sweep_nulls == nulls || List.equal Int.equal t.sweep_nulls nulls)
  in
  if not same then begin
    let sweep = Array.of_list nulls in
    let len = Array.length sweep in
    let map = Array.make len (-1) in
    let covered = Array.make (Array.length t.knulls) false in
    let find_knull n =
      let rec go lo hi =
        if lo >= hi then -1
        else
          let mid = (lo + hi) / 2 in
          let d = Int.compare n t.knulls.(mid) in
          if d = 0 then mid else if d < 0 then go lo mid else go (mid + 1) hi
      in
      go 0 (Array.length t.knulls)
    in
    Array.iteri
      (fun p n ->
        let ki = find_knull n in
        if ki >= 0 then begin
          if covered.(ki) then
            invalid_arg
              (Printf.sprintf "Kernel.prepare_digits: duplicate null ~%d" n);
          covered.(ki) <- true;
          map.(p) <- ki
        end)
      sweep;
    Array.iteri
      (fun ki c ->
        if not c then
          invalid_arg
            (Printf.sprintf
               "Kernel.prepare_digits: sweep misses null ~%d of the instance \
                or sentence"
               t.knulls.(ki)))
      covered;
    t.sweep_nulls <- nulls;
    t.sweep_map <- map;
    t.prev_digits <- Array.make len 0;
    t.prev_valid <- false;
    t.prepared <- true
  end

let holds_digits t digits =
  let len = Array.length t.sweep_map in
  if not t.prepared || Array.length digits <> len then
    invalid_arg
      "Kernel.holds_digits: prepare_digits with the sweep's nulls first";
  let prev = t.prev_digits in
  let fresh = not t.prev_valid in
  let changed = ref fresh in
  for p = 0 to len - 1 do
    let d = Array.unsafe_get digits p in
    if fresh || Array.unsafe_get prev p <> d then begin
      let ki = Array.unsafe_get t.sweep_map p in
      if ki >= 0 then begin
        if d < 1 then invalid_arg "Kernel.holds_digits: code < 1";
        refresh_null t ki (Value.const d);
        changed := true
      end;
      Array.unsafe_set prev p d
    end
  done;
  if !changed then refresh_domain t;
  t.prev_valid <- true;
  Compiled.run t.compiled
