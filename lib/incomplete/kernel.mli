(** Compiled support-check kernel.

    Computes [v(D) ⊨ φ[v]] — the predicate behind every measure of the
    paper ([µ^k], support polynomials, conditional measures, certain
    answers) — without rebuilding anything per valuation. It is the
    composition of the two halves of the evaluation pipeline:

    - {!Split}: the instance is partitioned once into its ground
      fragment (hash-indexed, {!Relational.Index}) and the few
      null-carrying tuples;
    - {!Logic.Compiled}: the sentence is compiled once, with nulls
      resolved through a per-valuation image array.

    The null-carrying tuples are completed {e in place}: at compile
    time each becomes a fixed row whose constant cells are final and
    whose null cells are recorded in a null → (row, cell) dependency
    map. Checking a valuation refreshes only the null images, the
    dependent row cells, and the fresh-constant suffix of the
    evaluation domain — no per-valuation hash table, no allocation.

    [holds (compile (db_of_instance d) φ) v =
     Eval.sentence_holds (Valuation.instance v d)
       (Formula.map_values (Valuation.value v) φ)]
    for every sentence and valuation defined on the nulls of [d] and
    [φ] — property-tested in [test/test_kernel.ml] and re-verified
    bit-for-bit by [bench --parallel] on every run.

    A {!db} is immutable and may be shared across domains; a compiled
    {!t} carries mutable scratch and is single-threaded — parallel
    folds compile one [t] per chunk from the shared [db]. *)

type db
(** The shareable half: split instance + ground-fragment indexes. *)

val db_of_instance : Relational.Instance.t -> db
val db_of_split : Split.t -> db

val split : db -> Split.t
val instance : db -> Relational.Instance.t

val db_generation : db -> int
(** The {!Relational.Instance.generation} stamp of the presented
    instance. Caches key dbs and their compiled kernels by this stamp
    (equal stamps ⇒ the same instance value), so derived state can
    never outlive a mutation: a delta-updated db carries the fresh
    stamp of its new base instance. *)

(** {1 Single-tuple deltas}

    [db_insert]/[db_delete] return a new db without rebuilding: the
    split is patched for the touched relation ({!Split.insert} /
    {!Split.remove}), a ground tuple additionally updates that
    relation's index incrementally ({!Relational.Index.add} /
    [remove] — overlay, not rebuild), and the indexes of every other
    relation are shared physically with the input. Equivalent to
    [db_of_instance] of the updated instance (property-tested); the
    input db is untouched, so in-flight readers of the old generation
    stay consistent. *)

val db_insert : db -> name:string -> tuple:Relational.Tuple.t -> db
(** @raise Invalid_argument on unknown relation, arity mismatch, or a
    tuple already present. *)

val db_delete : db -> name:string -> tuple:Relational.Tuple.t -> db
(** @raise Invalid_argument on unknown relation or a tuple not
    present. *)

type t
(** A sentence compiled against a [db]; single-threaded. *)

val compile : db -> Logic.Formula.t -> t
(** @raise Invalid_argument if the formula is not a sentence. *)

val sentence : t -> Logic.Formula.t

val holds : t -> Valuation.t -> bool
(** [v(D) ⊨ φ[v]].
    @raise Invalid_argument if [v] misses a null of [D] or [φ]. *)

(** {1 Digit fast path}

    The exhaustive-sweep loop: an {!Enumerate.odometer} steps an
    in-place digit array through [V^k(D)] in rank order, and
    {!holds_digits} consumes it directly — bypassing [Valuation.t]
    construction and [Valuation.find_exn] lookups entirely. Because
    the kernel remembers the digits of the previous call, and an
    odometer step changes only trailing digits, each check refreshes
    only the null images, completed-row cells and domain suffix the
    changed digits actually touch (delta refresh). *)

val prepare_digits : t -> nulls:int list -> unit
(** Bind the kernel to a sweep over [nulls]: digit position [i] of
    every subsequent {!holds_digits} call assigns the [i]-th null of
    [nulls] (the {!Enumerate.odometer} digit convention). Idempotent
    when called again with an equal null list; switching lists rebuilds
    the position map and invalidates the delta state.
    @raise Invalid_argument if [nulls] misses a null of [D] or the
    sentence, or lists a null twice. *)

val holds_digits : t -> int array -> bool
(** [v(D) ⊨ φ[v]] for the valuation sending the [i]-th null of the
    prepared sweep to constant code [digits.(i)]. Allocation-free; the
    array is read, never retained, so passing an odometer's live
    {!Enumerate.digits} between steps is safe. Agrees with {!holds} on
    the corresponding {!Valuation.t} — property-tested and bench-gated.
    @raise Invalid_argument without a matching {!prepare_digits}, on a
    length mismatch, or on a code [< 1]. *)
