(** Compiled support-check kernel.

    Computes [v(D) ⊨ φ[v]] — the predicate behind every measure of the
    paper ([µ^k], support polynomials, conditional measures, certain
    answers) — without rebuilding anything per valuation. It is the
    composition of the two halves of the evaluation pipeline:

    - {!Split}: the instance is partitioned once into its ground
      fragment (hash-indexed, {!Relational.Index}) and the few
      null-carrying tuples;
    - {!Logic.Compiled}: the sentence is compiled once, with nulls
      resolved through a per-valuation image array.

    Checking a valuation then refreshes only the null images, the
    fresh-constant suffix of the evaluation domain, and one small hash
    table of completed null tuples per mentioned relation.

    [holds (compile (db_of_instance d) φ) v =
     Eval.sentence_holds (Valuation.instance v d)
       (Formula.map_values (Valuation.value v) φ)]
    for every sentence and valuation defined on the nulls of [d] and
    [φ] — property-tested in [test/test_kernel.ml] and re-verified
    bit-for-bit by [bench --parallel] on every run.

    A {!db} is immutable and may be shared across domains; a compiled
    {!t} carries mutable scratch and is single-threaded — parallel
    folds compile one [t] per chunk from the shared [db]. *)

type db
(** The shareable half: split instance + ground-fragment indexes. *)

val db_of_instance : Relational.Instance.t -> db
val db_of_split : Split.t -> db

val split : db -> Split.t
val instance : db -> Relational.Instance.t

type t
(** A sentence compiled against a [db]; single-threaded. *)

val compile : db -> Logic.Formula.t -> t
(** @raise Invalid_argument if the formula is not a sentence. *)

val sentence : t -> Logic.Formula.t

val holds : t -> Valuation.t -> bool
(** [v(D) ⊨ φ[v]].
    @raise Invalid_argument if [v] misses a null of [D] or [φ]. *)
