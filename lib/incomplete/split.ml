module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance

type t = {
  base : Instance.t;
  ground : Instance.t;
  null_tuples : (string * Tuple.t array) list;
  nulls : int list;
  constants : int list;
}

let of_instance base =
  let schema = Instance.schema base in
  let ground, null_tuples =
    List.fold_left
      (fun (ground, nts) name ->
        let rel = Instance.relation base name in
        let with_nulls =
          Relation.fold
            (fun tup acc -> if Tuple.has_null tup then tup :: acc else acc)
            rel []
        in
        match with_nulls with
        | [] -> (Instance.set_relation name rel ground, nts)
        | _ :: _ ->
            let g =
              Relation.filter (fun tup -> not (Tuple.has_null tup)) rel
            in
            (* [with_nulls] was accumulated by a fold over an ordered
               set, so reversing restores Relation.to_list order —
               completion visits tuples deterministically. *)
            ( Instance.set_relation name g ground,
              (name, Array.of_list (List.rev with_nulls)) :: nts ))
      (Instance.empty schema, [])
      (Schema.relations schema)
  in
  {
    base;
    ground;
    null_tuples = List.rev null_tuples;
    nulls = Instance.nulls base;
    constants = Instance.constants base;
  }

let base t = t.base
let ground t = t.ground
let null_tuples t = t.null_tuples
let nulls t = t.nulls
let constants t = t.constants

let null_tuple_count t =
  List.fold_left (fun n (_, a) -> n + Array.length a) 0 t.null_tuples

let complete t v =
  List.fold_left
    (fun inst (name, tuples) ->
      Array.fold_left
        (fun inst tup -> Instance.add_tuple name (Valuation.tuple v tup) inst)
        inst tuples)
    t.ground t.null_tuples
