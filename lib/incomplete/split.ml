module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance

type t = {
  base : Instance.t;
  ground : Instance.t;
  null_tuples : (string * Tuple.t array) list;
  nulls : int list;
  constants : int list;
}

let of_instance base =
  let schema = Instance.schema base in
  let ground, null_tuples =
    List.fold_left
      (fun (ground, nts) name ->
        let rel = Instance.relation base name in
        let with_nulls =
          Relation.fold
            (fun tup acc -> if Tuple.has_null tup then tup :: acc else acc)
            rel []
        in
        match with_nulls with
        | [] -> (Instance.set_relation name rel ground, nts)
        | _ :: _ ->
            let g =
              Relation.filter (fun tup -> not (Tuple.has_null tup)) rel
            in
            (* [with_nulls] was accumulated by a fold over an ordered
               set, so reversing restores Relation.to_list order —
               completion visits tuples deterministically. *)
            ( Instance.set_relation name g ground,
              (name, Array.of_list (List.rev with_nulls)) :: nts ))
      (Instance.empty schema, [])
      (Schema.relations schema)
  in
  {
    base;
    ground;
    null_tuples = List.rev null_tuples;
    nulls = Instance.nulls base;
    constants = Instance.constants base;
  }

let base t = t.base
let ground t = t.ground
let null_tuples t = t.null_tuples

(* ------------------------------------------------------------------ *)
(* Single-tuple deltas                                                 *)
(* ------------------------------------------------------------------ *)

(* Sorted-int-list union/merge; both inputs sorted, output sorted. The
   lists are Null(D)/Const(D) — small relative to the instance. *)
let merge_sorted xs ys =
  let rec go xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | x :: xs', y :: ys' ->
        let c = Int.compare x y in
        if c = 0 then x :: go xs' ys'
        else if c < 0 then x :: go xs' ys
        else y :: go xs ys'
  in
  go xs ys

(* Replace the null-tuple array of one relation, preserving the
   [of_instance] invariants: the assoc list keeps Schema.relations
   order and only lists relations with at least one null tuple. *)
let set_null_tuples t ~base name arr =
  List.filter_map
    (fun n ->
      if String.equal n name then
        if Array.length arr = 0 then None else Some (n, arr)
      else Option.map (fun a -> (n, a)) (List.assoc_opt n t.null_tuples))
    (Schema.relations (Instance.schema base))

let null_array t name =
  Option.value ~default:[||] (List.assoc_opt name t.null_tuples)

let check_relation fn t name =
  if not (Schema.mem name (Instance.schema t.base)) then
    invalid_arg ("Split." ^ fn ^ ": unknown relation " ^ name)

let insert t ~name ~tuple =
  check_relation "insert" t name;
  if Instance.mem t.base name tuple then
    invalid_arg ("Split.insert: tuple already present in " ^ name)
  else
    let base = Instance.add_tuple name tuple t.base in
    let constants =
      merge_sorted t.constants
        (List.sort_uniq Int.compare (Tuple.constants tuple))
    in
    if Tuple.has_null tuple then
      let arr = null_array t name in
      let n = Array.length arr in
      (* Keep the array in Tuple.compare (= Relation.to_list) order, so
         the delta split is indistinguishable from [of_instance base]. *)
      let pos =
        let rec go i =
          if i >= n || Tuple.compare arr.(i) tuple > 0 then i else go (i + 1)
        in
        go 0
      in
      let arr' =
        Array.init (n + 1) (fun i ->
            if i < pos then arr.(i)
            else if i = pos then tuple
            else arr.(i - 1))
      in
      { base;
        ground = t.ground;
        null_tuples = set_null_tuples t ~base name arr';
        nulls =
          merge_sorted t.nulls (List.sort_uniq Int.compare (Tuple.nulls tuple));
        constants
      }
    else
      { base;
        ground = Instance.add_tuple name tuple t.ground;
        null_tuples = t.null_tuples;
        nulls = t.nulls;
        constants
      }

let remove t ~name ~tuple =
  check_relation "remove" t name;
  if not (Instance.mem t.base name tuple) then
    invalid_arg ("Split.remove: tuple not present in " ^ name)
  else
    let base = Instance.remove_tuple name tuple t.base in
    (* A removed value may or may not still occur elsewhere, so the
       hoisted domain lists are recomputed from the new base — O(|D|),
       but with no re-parse, re-split or re-index; the partition and
       untouched relations are patched in place below. *)
    let nulls = if Tuple.has_null tuple then Instance.nulls base else t.nulls in
    let constants =
      if Tuple.constants tuple = [] then t.constants
      else Instance.constants base
    in
    if Tuple.has_null tuple then
      let arr' =
        Array.of_list
          (List.filter
             (fun u -> not (Tuple.equal u tuple))
             (Array.to_list (null_array t name)))
      in
      { base;
        ground = t.ground;
        null_tuples = set_null_tuples t ~base name arr';
        nulls;
        constants
      }
    else
      { base;
        ground = Instance.remove_tuple name tuple t.ground;
        null_tuples = t.null_tuples;
        nulls;
        constants
      }
let nulls t = t.nulls
let constants t = t.constants

let null_tuple_count t =
  List.fold_left (fun n (_, a) -> n + Array.length a) 0 t.null_tuples

let complete t v =
  List.fold_left
    (fun inst (name, tuples) ->
      Array.fold_left
        (fun inst tup -> Instance.add_tuple name (Valuation.tuple v tup) inst)
        inst tuples)
    t.ground t.null_tuples
