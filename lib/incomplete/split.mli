(** Split-instance completion.

    Applying a valuation with {!Valuation.instance} rebuilds the whole
    instance — [Instance.map_values] walks every tuple of every
    relation even though a valuation can only change tuples that
    mention nulls. This module partitions each relation {e once} into
    its ground (null-free) fragment, shared untouched across all
    valuations, and its null-carrying fragment; {!complete} then maps
    only the null fragment.

    [complete (of_instance d) v = Valuation.instance v d] for every
    valuation defined on [Null(d)] (property-tested in
    [test/test_kernel.ml]); the cost drops from [O(|d|)] set rebuilding
    to [O(#null tuples · log |d|)] insertions.

    The split also hoists [Null(d)] and [Const(d)] — the quantities
    support checks used to recompute per valuation via
    [Instance.constants]. *)

type t

val of_instance : Relational.Instance.t -> t

val base : t -> Relational.Instance.t
(** The instance the split was built from. *)

val ground : t -> Relational.Instance.t
(** Only the null-free tuples, same schema. *)

val null_tuples : t -> (string * Relational.Tuple.t array) list
(** Per relation (only those with at least one), the tuples mentioning
    nulls, in {!Relational.Relation.to_list} order. *)

val nulls : t -> int list
(** [Null(base)], sorted — hoisted at build time. *)

val constants : t -> int list
(** [Const(base)], sorted — hoisted at build time. *)

val null_tuple_count : t -> int

(** {1 Single-tuple deltas}

    [insert]/[remove] patch the partition for one touched relation
    instead of re-splitting the instance: the ground fragment or the
    relation's null-tuple array is updated, every other relation's
    fragment is shared physically with the input split, and the hoisted
    domain lists are merged ([insert], O(|Null| + |Const|)) or
    recomputed from the new base ([remove] of a tuple carrying that
    value class). The result equals [of_instance] of the updated base —
    same partition, same orders — so downstream kernels cannot tell a
    delta split from a rebuilt one (property-tested). *)

val insert : t -> name:string -> tuple:Relational.Tuple.t -> t
(** @raise Invalid_argument if the tuple is already present, the
    relation is unknown, or the arity mismatches. *)

val remove : t -> name:string -> tuple:Relational.Tuple.t -> t
(** @raise Invalid_argument if the tuple is absent or the relation is
    unknown. *)

val complete : t -> Valuation.t -> Relational.Instance.t
(** [complete t v = Valuation.instance v (base t)]: the ground fragment
    plus the valuation's image of each null tuple.
    @raise Invalid_argument if [v] misses a null of [base t]. *)
