module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Formula = Logic.Formula
module Eval = Logic.Eval
module B = Arith.Bigint
module Rat = Arith.Rat

let anchor_set inst q =
  List.sort_uniq Int.compare (Query.constants q @ Instance.constants inst)

let anchor_set_sentences inst sentences =
  List.sort_uniq Int.compare
    (Instance.constants inst @ List.concat_map Formula.constants sentences)

let anchor_set_sentences_split split sentences =
  (* Same anchor set, but from the constants hoisted at split time —
     no Instance.constants re-fold per call. *)
  List.sort_uniq Int.compare
    (Split.constants split @ List.concat_map Formula.constants sentences)

(* ------------------------------------------------------------------ *)
(* Evaluation cache                                                    *)
(* ------------------------------------------------------------------ *)

type cache = {
  verdicts : (int * (int * int) list * Formula.t, bool) Exec.Cache.t;
      (* (epoch, valuation bindings, sentence) ↦ v(D) ⊨ sentence[v].
         The bindings sit early in the key: Hashtbl.hash only samples
         the first few nodes, and the bindings are what distinguishes
         the thousands of keys sharing one sentence. The epoch (below)
         is what makes verdicts survive database updates soundly. *)
  dbs : (int, Kernel.db) Exec.Cache.t;
      (* instance generation ↦ its split + indexed form. Keyed by the
         monotone Instance.generation stamp, so after a mutation the
         new instance can never be served the old kernel db; a session
         update pre-installs the delta-maintained db under the new
         stamp ({!install_kernel_db}). Capped: old generations age
         out. *)
  (* Relation update epochs: how verdicts stay warm across updates.
     Each relation's epoch counts the updates that touched it;
     [adom_epoch] counts the updates that changed the instance's
     constant or null set (the active domain quantifiers range over).
     A sentence's verdicts are keyed under [sentence_epoch] = max of
     its mentioned relations' epochs (plus [adom_epoch] if it
     quantifies): an update bumps exactly the epochs it invalidates,
     so verdicts of untouched sentences keep matching — precise
     invalidation, and in-flight checkers of the old state can never
     poison the new epoch's keys. *)
  epochs : (string, int) Hashtbl.t;
  mutable adom_epoch : int;
  elock : Mutex.t;
}

type cache_stats = {
  eval_verdicts : Exec.Cache.stats;
  kernel_dbs : Exec.Cache.stats;
}

(* Verdict keys are (epoch, bindings, sentence) triples — one per
   valuation per sentence — so a long µ^k series over a big space would
   grow the table without bound. The cap makes the cache an LRU-ish
   window (FIFO eviction) instead; 2^18 entries comfortably covers
   every space the brute-force engine can sweep in reasonable time.
   The dbs cache keeps the last few instance generations a session
   passed through. *)
let default_verdict_cap = 1 lsl 18
let default_dbs_cap = 4

let create_cache () =
  { verdicts = Exec.Cache.create ~max_entries:default_verdict_cap ();
    dbs = Exec.Cache.create ~size:8 ~max_entries:default_dbs_cap ();
    epochs = Hashtbl.create 8;
    adom_epoch = 0;
    elock = Mutex.create ()
  }

let cache_stats c =
  { eval_verdicts = Exec.Cache.stats c.verdicts;
    kernel_dbs = Exec.Cache.stats c.dbs
  }

let kernel_db ?cache inst =
  match cache with
  | None -> Kernel.db_of_instance inst
  | Some c ->
      Exec.Cache.find_or_add c.dbs (Instance.generation inst) (fun () ->
          Kernel.db_of_instance inst)

let install_kernel_db c db =
  ignore
    (Exec.Cache.find_or_add c.dbs (Kernel.db_generation db) (fun () -> db))

(* The epoch a sentence's verdicts are currently keyed under (0 until
   the first relevant update). Quantified sentences range over the
   active domain, so they additionally track [adom_epoch] — an update
   inserting only already-present values leaves it, and them, alone. *)
let sentence_epoch_of c sentence =
  match c with
  | None -> 0
  | Some c ->
      Mutex.protect c.elock (fun () ->
          let e =
            List.fold_left
              (fun acc r ->
                max acc (Option.value ~default:0 (Hashtbl.find_opt c.epochs r)))
              0
              (Formula.relations sentence)
          in
          if Formula.has_quantifier sentence then max e c.adom_epoch else e)

let note_update c ~rels ~adom_changed =
  Mutex.protect c.elock (fun () ->
      List.iter
        (fun r ->
          Hashtbl.replace c.epochs r
            (1 + Option.value ~default:0 (Hashtbl.find_opt c.epochs r)))
        rels;
      if adom_changed then c.adom_epoch <- c.adom_epoch + 1);
  (* Precise invalidation: drop exactly the verdicts stranded on an
     epoch the bump above retired — entries of sentences mentioning a
     touched relation (or quantifying, when the domain changed). The
     epoch key already guarantees they can never be served again; the
     purge just frees their capacity for live entries. *)
  ignore
    (Exec.Cache.remove_matching c.verdicts (fun (e, _, sentence) ->
         e < sentence_epoch_of (Some c) sentence))

(* ------------------------------------------------------------------ *)
(* Support checks                                                      *)
(* ------------------------------------------------------------------ *)

(* [valuations_evaluated] counts verdict {e requests} — one per
   valuation submitted to a support check, cache hit or not — so the
   metric equals the size of the space swept. The raw helper below is
   the uncounted computation shared by the counted entry points;
   keeping the [incr] out of it prevents double counting when one
   entry point delegates to another. *)
let sentence_in_support_raw inst sentence v =
  let complete = Valuation.instance v inst in
  let concrete = Formula.map_values (Valuation.value v) sentence in
  Eval.sentence_holds complete concrete

let sentence_in_support_naive inst sentence v =
  Obs.Metrics.incr Obs.Metrics.valuations_evaluated;
  sentence_in_support_raw inst sentence v

let sentence_in_support ?cache inst sentence v =
  Obs.Metrics.incr Obs.Metrics.valuations_evaluated;
  match cache with
  | None -> sentence_in_support_raw inst sentence v
  | Some c ->
      Exec.Cache.find_or_add c.verdicts
        (sentence_epoch_of cache sentence, Valuation.bindings v, sentence)
        (fun () -> sentence_in_support_raw inst sentence v)

let in_support ?cache inst q tuple v =
  if Tuple.arity tuple <> Query.arity q then
    invalid_arg "Support.in_support: arity mismatch"
  else sentence_in_support ?cache inst (Query.instantiate q tuple) v

(* ------------------------------------------------------------------ *)
(* Hoisted checkers: one kernel per loop, not one instance per check   *)
(* ------------------------------------------------------------------ *)

type checker = { kern : Kernel.t; cache : cache option; epoch : int }
(* The epoch is sampled when the checker is hoisted, so every verdict
   it stores is keyed to the database state it was compiled against —
   a checker outliving an update keeps writing to its own (retired)
   epoch and can never poison the post-update cache. *)

let checker ?cache db sentence =
  { kern = Kernel.compile db sentence;
    cache;
    epoch = sentence_epoch_of cache sentence
  }

(* One compiled kernel per pool domain per (db, sentence), memoized in
   domain-local storage: chunks of a parallel fold that land on the
   same domain reuse one kernel's mutable scratch instead of paying a
   compile per chunk (up to 8192 chunks under the pool guard). The db
   is keyed by its generation stamp — equal stamps guarantee the same
   underlying instance value, unlike the physical comparison this memo
   used before, which would silently reuse a stale compiled kernel if
   a db were ever revived at the same address after a mutation. The
   sentence is structural, so repeated sweeps over the same session
   hit even when the sentence value was rebuilt. *)
let domain_kernels : (Kernel.db * Formula.t, Kernel.t) Exec.Dls.t =
  Exec.Dls.create
    ~eq:(fun (db1, s1) (db2, s2) ->
      Kernel.db_generation db1 = Kernel.db_generation db2 && s1 = s2)
    ()

let domain_kernel db sentence =
  Exec.Dls.find_or_add domain_kernels (db, sentence) ~mk:(fun () ->
      Kernel.compile db sentence)

let domain_checker ?cache db sentence =
  { kern = domain_kernel db sentence;
    cache;
    epoch = sentence_epoch_of cache sentence
  }

let check c v =
  Obs.Metrics.incr Obs.Metrics.valuations_evaluated;
  match c.cache with
  | None -> Kernel.holds c.kern v
  | Some cc ->
      Exec.Cache.find_or_add cc.verdicts
        (c.epoch, Valuation.bindings v, Kernel.sentence c.kern)
        (fun () -> Kernel.holds c.kern v)

(* ------------------------------------------------------------------ *)
(* µ^k by (possibly parallel) enumeration                              *)
(* ------------------------------------------------------------------ *)

(* Below this many valuations the chunking overhead dominates and the
   fold stays in one piece on the calling domain. *)
let parallel_threshold = 512

let all_nulls inst tuple =
  List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)

(* Count the valuations of V^k satisfying the compiled sentence,
   splitting the rank space across pool domains. Each chunk seeds an
   odometer at its first rank and runs the kernel's digit fast path on
   that domain's memoized kernel ({!domain_kernel}) — no Valuation.t,
   no compile per chunk, no allocation per valuation.

   The verdict cache is deliberately {e bypassed} here: an exhaustive
   sweep visits every key of the space exactly once, so each lookup is
   a guaranteed miss that pays the global cache mutex, hashes the
   bindings key, and evicts verdicts the repeated-valuation paths
   (Certain / Support_poly class loops) actually want. [?cache] still
   feeds those paths and {!kernel_db}; here it only matters to the
   overflow fallback below.

   Per-chunk subcounts fit in [int] because the whole space does; they
   are summed as bigints in chunk order — bit-identical to the
   sequential count since addition is exact. *)
let count_satisfying ?jobs ?guard ?cache ~db ~sentence ~nulls ~k () =
  Obs.Trace.span "support.count"
    ~attrs:
      [ ("k", string_of_int k); ("nulls", string_of_int (List.length nulls)) ]
  @@ fun () ->
  match Enumerate.space_size ~nulls ~k with
  | Some n ->
      Exec.Pool.fold_range ?jobs ?guard ~min_work:parallel_threshold ~n
        ~chunk:(fun lo hi ->
          let kern = domain_kernel db sentence in
          Kernel.prepare_digits kern ~nulls;
          (* Every digit vector is a verdict request and a kernel
             refresh; counted in bulk to keep the loop branch-free. *)
          Obs.Metrics.add Obs.Metrics.valuations_evaluated (hi - lo);
          Obs.Metrics.add Obs.Metrics.kernel_refreshes (hi - lo);
          let count =
            Enumerate.fold_digits_range ~nulls ~k ~lo ~hi
              (fun count digits ->
                if Kernel.holds_digits kern digits then count + 1 else count)
              0
          in
          B.of_int count)
        ~combine:B.add B.zero
  | None ->
      (* Space too large for rank indexing; the sequential fold is
         equally hopeless but at least semantically right. *)
      (match guard with Some g -> g () | None -> ());
      let chk = checker ?cache db sentence in
      Enumerate.fold_valuations ~nulls ~k
        (fun acc v -> if check chk v then B.succ acc else acc)
        B.zero

let supp_count ?jobs ?guard ?cache inst q tuple ~k =
  if Tuple.arity tuple <> Query.arity q then
    invalid_arg "Support.in_support: arity mismatch";
  let nulls = all_nulls inst tuple in
  let sentence = Query.instantiate q tuple in
  let db = kernel_db ?cache inst in
  count_satisfying ?jobs ?guard ?cache ~db ~sentence ~nulls ~k ()

let mu_k ?jobs ?guard ?cache inst q tuple ~k =
  let nulls = all_nulls inst tuple in
  let total = Enumerate.count ~nulls ~k in
  if B.is_zero total then Rat.zero
  else Rat.make (supp_count ?jobs ?guard ?cache inst q tuple ~k) total

let mu_k_boolean ?jobs ?guard ?cache inst q ~k =
  if Query.arity q <> 0 then invalid_arg "Support.mu_k_boolean: query not Boolean"
  else mu_k ?jobs ?guard ?cache inst q Tuple.empty ~k

let mu_k_series ?jobs ?guard ?cache inst q tuple ~ks =
  List.map (fun k -> (k, mu_k ?jobs ?guard ?cache inst q tuple ~k)) ks

(* ------------------------------------------------------------------ *)
(* Factorized counting over a decomposition plan                       *)
(* ------------------------------------------------------------------ *)

(* One kernel db per component, restricted to the relations the
   component mentions, hoisted so a µ^k series compiles each component
   once. The shared verdict cache stays sound across components: keys
   are (bindings, sentence) and each conjunct belongs to exactly one
   component, so no two restricted kernels ever answer for the same
   key. The unit-keyed kernel-db cache is for the monolithic instance
   only and is deliberately not consulted here. *)
type compiled_plan = {
  cp_parts : (Kernel.db * Formula.t * int list) list;
      (* restricted db, component sentence, component nulls *)
  cp_free : int list;
  cp_all : int list;
}

let compile_plan inst (plan : Factor.plan) =
  { cp_parts =
      List.map
        (fun (c : Factor.component) ->
          ( Kernel.db_of_instance
              (Factor.restricted_instance inst c.Factor.c_relations),
            c.Factor.c_sentence,
            c.Factor.c_nulls ))
        plan.Factor.components;
    cp_free = plan.Factor.free_nulls;
    cp_all = plan.Factor.all_nulls
  }

let supp_count_compiled ?jobs ?guard ?cache cp ~k =
  let component_counts =
    List.map
      (fun (db, sentence, nulls) ->
        count_satisfying ?jobs ?guard ?cache ~db ~sentence ~nulls ~k ())
      cp.cp_parts
  in
  let product = List.fold_left B.mul B.one component_counts in
  B.mul product (Enumerate.count ~nulls:cp.cp_free ~k)

(* µ^k as the exact product of per-component measures; the free block
   contributes count k^f over space k^f, i.e. factor 1. Each factor is
   a reduced Rat, and the product of reduced rationals re-reduces, so
   the result is bit-identical to the monolithic
   supp_count / k^m quotient. *)
let mu_k_compiled ?jobs ?guard ?cache cp ~k =
  List.fold_left
    (fun acc (db, sentence, nulls) ->
      let count =
        count_satisfying ?jobs ?guard ?cache ~db ~sentence ~nulls ~k ()
      in
      Rat.mul acc (Rat.make count (Enumerate.count ~nulls ~k)))
    Rat.one cp.cp_parts

let supp_count_plan ?jobs ?guard ?cache inst plan ~k =
  supp_count_compiled ?jobs ?guard ?cache (compile_plan inst plan) ~k

let mu_k_plan ?jobs ?guard ?cache inst plan ~k =
  mu_k_compiled ?jobs ?guard ?cache (compile_plan inst plan) ~k

let mu_k_series_plan ?jobs ?guard ?cache inst plan ~ks =
  let cp = compile_plan inst plan in
  List.map (fun k -> (k, mu_k_compiled ?jobs ?guard ?cache cp ~k)) ks

let support_valuations ?cache inst q tuple ~k =
  let nulls = all_nulls inst tuple in
  let db = kernel_db ?cache inst in
  let chk = checker ?cache db (Query.instantiate q tuple) in
  List.rev
    (Enumerate.fold_valuations ~nulls ~k
       (fun acc v -> if check chk v then v :: acc else acc)
       [])
