module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Query = Logic.Query
module Formula = Logic.Formula
module Eval = Logic.Eval
module B = Arith.Bigint
module Rat = Arith.Rat

let anchor_set inst q =
  List.sort_uniq Int.compare (Query.constants q @ Instance.constants inst)

let anchor_set_sentences inst sentences =
  List.sort_uniq Int.compare
    (Instance.constants inst @ List.concat_map Formula.constants sentences)

(* ------------------------------------------------------------------ *)
(* Evaluation cache                                                    *)
(* ------------------------------------------------------------------ *)

type cache = {
  completed : ((int * int) list, Instance.t) Exec.Cache.t;
      (* valuation bindings ↦ v(D): completing the instance is the
         expensive part of a support check and depends only on v. *)
  verdicts : ((int * int) list * Formula.t, bool) Exec.Cache.t;
      (* (valuation bindings, sentence) ↦ v(D) ⊨ sentence[v]. The
         bindings come first: Hashtbl.hash only samples the first few
         nodes of a key, and the bindings are what distinguishes the
         thousands of keys sharing one sentence. *)
}

type cache_stats = {
  completed_instances : Exec.Cache.stats;
  eval_verdicts : Exec.Cache.stats;
}

let create_cache () =
  { completed = Exec.Cache.create (); verdicts = Exec.Cache.create () }

let cache_stats c =
  {
    completed_instances = Exec.Cache.stats c.completed;
    eval_verdicts = Exec.Cache.stats c.verdicts;
  }

(* ------------------------------------------------------------------ *)
(* Support checks                                                      *)
(* ------------------------------------------------------------------ *)

let sentence_in_support_uncached inst sentence v =
  let complete = Valuation.instance v inst in
  let concrete = Formula.map_values (Valuation.value v) sentence in
  Eval.sentence_holds complete concrete

let sentence_in_support ?cache inst sentence v =
  match cache with
  | None -> sentence_in_support_uncached inst sentence v
  | Some c ->
      let key = Valuation.bindings v in
      Exec.Cache.find_or_add c.verdicts (key, sentence) (fun () ->
          let complete =
            Exec.Cache.find_or_add c.completed key (fun () ->
                Valuation.instance v inst)
          in
          let concrete = Formula.map_values (Valuation.value v) sentence in
          Eval.sentence_holds complete concrete)

let in_support ?cache inst q tuple v =
  if Tuple.arity tuple <> Query.arity q then
    invalid_arg "Support.in_support: arity mismatch"
  else sentence_in_support ?cache inst (Query.instantiate q tuple) v

(* ------------------------------------------------------------------ *)
(* µ^k by (possibly parallel) enumeration                              *)
(* ------------------------------------------------------------------ *)

(* Below this many valuations the domain-spawn overhead dominates and
   the fold stays on the calling domain. *)
let parallel_threshold = 512

let all_nulls inst tuple =
  List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)

(* Count the valuations of V^k satisfying [test], splitting the rank
   space across domains. Per-chunk subcounts fit in [int] because the
   whole space does; they are summed as bigints in chunk order —
   bit-identical to the sequential count since addition is exact. *)
let count_satisfying ?jobs ~nulls ~k test =
  match Enumerate.space_size ~nulls ~k with
  | Some n ->
      Exec.Pool.fold_range ?jobs ~min_work:parallel_threshold ~n
        ~chunk:(fun lo hi ->
          let count = ref 0 in
          for r = lo to hi - 1 do
            if test (Enumerate.valuation_of_rank ~nulls ~k r) then incr count
          done;
          B.of_int !count)
        ~combine:B.add B.zero
  | None ->
      (* Space too large for rank indexing; the sequential fold is
         equally hopeless but at least semantically right. *)
      Enumerate.fold_valuations ~nulls ~k
        (fun acc v -> if test v then B.succ acc else acc)
        B.zero

let supp_count ?jobs ?cache inst q tuple ~k =
  if Tuple.arity tuple <> Query.arity q then
    invalid_arg "Support.in_support: arity mismatch";
  let nulls = all_nulls inst tuple in
  let sentence = Query.instantiate q tuple in
  count_satisfying ?jobs ~nulls ~k (fun v ->
      sentence_in_support ?cache inst sentence v)

let mu_k ?jobs ?cache inst q tuple ~k =
  let nulls = all_nulls inst tuple in
  let total = Enumerate.count ~nulls ~k in
  if B.is_zero total then Rat.zero
  else Rat.make (supp_count ?jobs ?cache inst q tuple ~k) total

let mu_k_boolean ?jobs ?cache inst q ~k =
  if Query.arity q <> 0 then invalid_arg "Support.mu_k_boolean: query not Boolean"
  else mu_k ?jobs ?cache inst q Tuple.empty ~k

let mu_k_series ?jobs ?cache inst q tuple ~ks =
  List.map (fun k -> (k, mu_k ?jobs ?cache inst q tuple ~k)) ks

let support_valuations ?cache inst q tuple ~k =
  let nulls = all_nulls inst tuple in
  List.rev
    (Enumerate.fold_valuations ~nulls ~k
       (fun acc v -> if in_support ?cache inst q tuple v then v :: acc else acc)
       [])
