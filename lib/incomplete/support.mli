(** Supports of query answers and the finite measures [µ^k].

    [Supp(Q,D,ā)] is the set of valuations [v] with [v(ā) ∈ Q(v(D))];
    [µ^k(Q,D,ā) = |Supp^k(Q,D,ā)| / |V^k(D)|] is the probability that a
    valuation drawn uniformly from [V^k(D)] witnesses [ā] (paper §3.2).
    This module computes these quantities by brute-force enumeration —
    the ground truth against which the symbolic machinery
    ([Zeroone.Support_poly]) is verified.

    The enumeration is the [FP^#P]-hard counting workload of the
    measures, so every counting entry point takes two optional knobs,
    off by default:

    - [?jobs] — split the [k^m]-valuation space into contiguous rank
      chunks folded on separate OCaml 5 domains ({!Exec.Pool}).
      Defaults to {!Exec.Pool.default_jobs}; chunk subcounts are summed
      exactly in chunk order, so the result is bit-identical to the
      sequential count for any [jobs].
    - [?cache] — a {!cache} memoizing completed instances [v(D)] and
      evaluation verdicts across calls. Sharing one cache over a
      [µ^k]-series pays off because the spaces [V^k ⊆ V^{k'}] are
      nested. A cache is tied to the instance it was first used with —
      never reuse it across databases. *)

val anchor_set : Relational.Instance.t -> Logic.Query.t -> int list
(** [C ∪ Const(D)]: the query's genericity constants plus the
    database's constants, sorted. *)

val anchor_set_sentences :
  Relational.Instance.t -> Logic.Formula.t list -> int list
(** Anchor set for a family of sentences evaluated on the same
    database (e.g. [Σ ∧ Q(ā)] and [Σ]). *)

(** {1 Evaluation cache} *)

type cache
(** Memoizes, behind mutexes (safe to share across pool domains):
    completed instances [v(D)] keyed by the valuation's bindings, and
    sentence verdicts keyed by (sentence, bindings). *)

type cache_stats = {
  completed_instances : Exec.Cache.stats;
  eval_verdicts : Exec.Cache.stats;
}

val create_cache : unit -> cache
val cache_stats : cache -> cache_stats

(** {1 Support checks} *)

val in_support :
  ?cache:cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Valuation.t ->
  bool
(** [v ∈ Supp(Q,D,ā)], i.e. [v(ā) ∈ Q(v(D))].
    @raise Invalid_argument on arity mismatch or if the valuation
    misses a null of [D] or [ā]. *)

val sentence_in_support :
  ?cache:cache ->
  Relational.Instance.t -> Logic.Formula.t -> Valuation.t -> bool
(** [v(D) ⊨ φ[v]] for a sentence [φ] (whose nulls, if any, are replaced
    through [v] as well). *)

(** {1 Counting} *)

val supp_count :
  ?jobs:int ->
  ?cache:cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Arith.Bigint.t
(** [|Supp^k(Q,D,ā)|] by enumeration of all [k^m] valuations. *)

val mu_k :
  ?jobs:int ->
  ?cache:cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Arith.Rat.t
(** [µ^k(Q,D,ā)]. By convention 1 when [D] has no nulls and the tuple
    is an answer, 0 when it is not ([V^k(D)] is the singleton empty
    valuation). *)

val mu_k_boolean :
  ?jobs:int ->
  ?cache:cache ->
  Relational.Instance.t -> Logic.Query.t -> k:int -> Arith.Rat.t
(** [µ^k(Q,D)] for Boolean [Q]. *)

val mu_k_series :
  ?jobs:int ->
  ?cache:cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  ks:int list ->
  (int * Arith.Rat.t) list
(** The convergence series [(k, µ^k)] — the paper's limit object,
    sampled. Passing a shared [?cache] makes later, larger [k]s reuse
    every verdict already computed for smaller [k]s. *)

val support_valuations :
  ?cache:cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Valuation.t list
(** The materialized [Supp^k(Q,D,ā)] (for small [k] and few nulls). *)
