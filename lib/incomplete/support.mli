(** Supports of query answers and the finite measures [µ^k].

    [Supp(Q,D,ā)] is the set of valuations [v] with [v(ā) ∈ Q(v(D))];
    [µ^k(Q,D,ā) = |Supp^k(Q,D,ā)| / |V^k(D)|] is the probability that a
    valuation drawn uniformly from [V^k(D)] witnesses [ā] (paper §3.2).
    This module computes these quantities by brute-force enumeration —
    the ground truth against which the symbolic machinery
    ([Zeroone.Support_poly]) is verified.

    The per-valuation check runs on the compiled kernel ({!Kernel}):
    the instance is split and indexed once ({!kernel_db}), the sentence
    compiled once per pool domain ({!domain_checker}), and each
    valuation only delta-refreshes the null images the previous one
    did not share ([Kernel.holds_digits] fed by an
    [Enumerate.odometer]). [sentence_in_support_naive] keeps the
    original complete-then-interpret path as the executable reference;
    the two agree on every input (property-tested, and re-verified
    bit-for-bit by [bench --parallel]).

    The enumeration is the [FP^#P]-hard counting workload of the
    measures, so every counting entry point takes two optional knobs,
    off by default:

    - [?jobs] — split the [k^m]-valuation space into contiguous rank
      chunks folded on the persistent domain pool ({!Exec.Pool}).
      Defaults to {!Exec.Pool.default_jobs}; chunk subcounts are summed
      exactly in chunk order, so the result is bit-identical to the
      sequential count for any [jobs].
    - [?cache] — a {!cache} memoizing the kernel database and the
      evaluation verdicts across calls. Verdict memoization serves the
      {e repeated-valuation} paths (per-candidate class loops in
      Certain, support-polynomial weights); the exhaustive sweeps of
      {!count_satisfying} bypass it — every key of a sweep is distinct
      by construction, so each lookup would be a guaranteed miss paying
      the global cache mutex. A cache is tied to the instance it was
      first used with — never reuse it across databases.

    A third knob, [?guard], is the cancellation hook of the query
    service: it is invoked at every valuation-chunk boundary
    ({!Exec.Pool.fold_range}'s [?guard]) and aborts the count by
    raising — the mechanism behind per-request deadlines. *)

val anchor_set : Relational.Instance.t -> Logic.Query.t -> int list
(** [C ∪ Const(D)]: the query's genericity constants plus the
    database's constants, sorted. *)

val anchor_set_sentences :
  Relational.Instance.t -> Logic.Formula.t list -> int list
(** Anchor set for a family of sentences evaluated on the same
    database (e.g. [Σ ∧ Q(ā)] and [Σ]). *)

val anchor_set_sentences_split : Split.t -> Logic.Formula.t list -> int list
(** Same anchor set, served from the constants hoisted when the split
    was built — for per-candidate loops that would otherwise re-fold
    the instance each time. *)

(** {1 Evaluation cache} *)

type cache
(** Memoizes, behind mutexes (safe to share across pool domains): the
    kernel databases (split + indexes) of the last few instance
    generations, and sentence verdicts keyed by
    (epoch, bindings, sentence).

    A cache follows a {e session} across single-tuple updates: the
    kernel-db side is keyed by the monotone
    {!Relational.Instance.generation} stamp (a mutated instance can
    never be served a stale db), and the verdict side by a per-relation
    {e update epoch} sampled when each checker is hoisted. An update
    bumps the epochs of exactly the relations it touched (plus a
    domain epoch when the constant/null set changed, which quantified
    sentences also track), so verdicts of unaffected sentences stay
    warm across updates while affected ones are retired — and an
    in-flight checker of the old state keeps writing under its own
    retired epoch, never poisoning post-update reads. *)

type cache_stats = {
  eval_verdicts : Exec.Cache.stats;
  kernel_dbs : Exec.Cache.stats;
}

val create_cache : unit -> cache
val cache_stats : cache -> cache_stats

val kernel_db : ?cache:cache -> Relational.Instance.t -> Kernel.db
(** The split + indexed form of the instance. With [?cache] it is
    built once per instance generation and shared by every subsequent
    loop on that cache. *)

(** {1 Update hooks}

    The session mutation path (lib/server) applies a single-tuple
    delta to the kernel db ({!Kernel.db_insert}/[db_delete]) and then
    tells the cache about it with these two calls; query paths need no
    change — they pick the new state up through the generation and
    epoch keys. *)

val install_kernel_db : cache -> Kernel.db -> unit
(** Seed the kernel-db memo with a (delta-maintained) db under its own
    generation stamp, so the next query for that instance generation
    reuses it instead of rebuilding from scratch. *)

val note_update :
  cache -> rels:string list -> adom_changed:bool -> unit
(** Record that an update touched [rels] (bumping their epochs, plus
    the domain epoch when the update changed the instance's
    constant/null set) and purge the verdicts thereby retired.
    Verdicts of sentences not mentioning a touched relation — and, for
    an adom-preserving update, not quantifying — remain valid and are
    kept. *)

(** {1 Support checks} *)

val in_support :
  ?cache:cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  Valuation.t ->
  bool
(** [v ∈ Supp(Q,D,ā)], i.e. [v(ā) ∈ Q(v(D))].
    @raise Invalid_argument on arity mismatch or if the valuation
    misses a null of [D] or [ā]. *)

val sentence_in_support :
  ?cache:cache ->
  Relational.Instance.t -> Logic.Formula.t -> Valuation.t -> bool
(** [v(D) ⊨ φ[v]] for a sentence [φ] (whose nulls, if any, are replaced
    through [v] as well). One-shot entry point; loops should hoist a
    {!checker} instead. *)

val sentence_in_support_naive :
  Relational.Instance.t -> Logic.Formula.t -> Valuation.t -> bool
(** The original uncompiled path — materialize [v(D)], rewrite [φ[v]],
    interpret with {!Logic.Eval}. Kept as the executable reference the
    kernel is verified against (tests, bench identity checks). *)

(** {1 Hoisted checkers}

    One compiled kernel per (sentence, loop) instead of one completed
    instance per check. A checker wraps a single-threaded
    {!Kernel.t} — parallel folds create one checker per chunk from the
    shared {!Kernel.db}. *)

type checker

val checker : ?cache:cache -> Kernel.db -> Logic.Formula.t -> checker
(** Compile a sentence for repeated support checks; with [?cache],
    verdicts are memoized under the same keys as
    {!sentence_in_support}. @raise Invalid_argument on open formulas. *)

val check : checker -> Valuation.t -> bool
(** [check (checker db φ) v = sentence_in_support (base db) φ v]. *)

val domain_kernel : Kernel.db -> Logic.Formula.t -> Kernel.t
(** The calling pool domain's compiled kernel for [(db, sentence)],
    memoized in domain-local storage ({!Exec.Dls}): every chunk of a
    parallel fold that lands on the same domain reuses one kernel's
    scratch instead of compiling per chunk. The [db] is keyed
    physically — hoist it once per loop. Kernels are single-threaded;
    the domain-local key is what makes handing them out safe. *)

val domain_checker : ?cache:cache -> Kernel.db -> Logic.Formula.t -> checker
(** {!checker} on the calling domain's memoized kernel — for
    repeated-valuation loops (class sweeps, per-candidate checks) that
    want the verdict cache {e and} per-domain compile reuse. *)

(** {1 Counting} *)

val count_satisfying :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:cache ->
  db:Kernel.db ->
  sentence:Logic.Formula.t ->
  nulls:int list ->
  k:int ->
  unit ->
  Arith.Bigint.t
(** The raw sweep: how many of the [k^|nulls|] valuations of [nulls]
    satisfy [sentence] on [db]. The building block of {!supp_count}
    and of the per-component counts of {!supp_count_plan}; exposed so
    the approximate engine can count small components exactly.

    This is the odometer hot path: each pool chunk steps an in-place
    digit array through its rank range and feeds it to
    [Kernel.holds_digits] on the domain's memoized kernel. The verdict
    cache is bypassed (each key occurs exactly once per sweep);
    [?cache] still short-cuts the overflow fallback and is accepted so
    callers can thread one cache through mixed workloads. *)

val supp_count :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Arith.Bigint.t
(** [|Supp^k(Q,D,ā)|] by enumeration of all [k^m] valuations. *)

val mu_k :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Arith.Rat.t
(** [µ^k(Q,D,ā)]. By convention 1 when [D] has no nulls and the tuple
    is an answer, 0 when it is not ([V^k(D)] is the singleton empty
    valuation). *)

val mu_k_boolean :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:cache ->
  Relational.Instance.t -> Logic.Query.t -> k:int -> Arith.Rat.t
(** [µ^k(Q,D)] for Boolean [Q]. *)

val mu_k_series :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  ks:int list ->
  (int * Arith.Rat.t) list
(** The convergence series [(k, µ^k)] — the paper's limit object,
    sampled. Passing a shared [?cache] makes later, larger [k]s reuse
    every verdict already computed for smaller [k]s. *)

(** {1 Factorized counting}

    The decomposition-aware path: a {!Factor.plan} (built and proven
    sound by the planner in [Analysis.Decomp]) names independent
    components of the support sentence; each is counted on its own
    kernel restriction and the exact [Rat.t]/[Bigint.t] products are
    combined. Bit-identical to the monolithic entry points above on
    every sound plan — property-tested and enforced by the bench
    identity gate. *)

type compiled_plan
(** Per-component restricted kernels, compiled once per plan. *)

val compile_plan : Relational.Instance.t -> Factor.plan -> compiled_plan

val supp_count_compiled :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:cache ->
  compiled_plan ->
  k:int ->
  Arith.Bigint.t
(** [∏ᵢ |Suppᵢ| · k^f] — equals the monolithic [|Supp^k|]. *)

val mu_k_compiled :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:cache ->
  compiled_plan ->
  k:int ->
  Arith.Rat.t
(** [∏ᵢ µᵢ^k] — equals the monolithic [µ^k] (free nulls cancel). *)

val supp_count_plan :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:cache ->
  Relational.Instance.t ->
  Factor.plan ->
  k:int ->
  Arith.Bigint.t

val mu_k_plan :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:cache ->
  Relational.Instance.t ->
  Factor.plan ->
  k:int ->
  Arith.Rat.t

val mu_k_series_plan :
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  ?cache:cache ->
  Relational.Instance.t ->
  Factor.plan ->
  ks:int list ->
  (int * Arith.Rat.t) list
(** Like {!mu_k_series} but sweeping [Σᵢ k^{mᵢ}] valuations per [k]
    instead of [k^m]; component kernels are compiled once. *)

val support_valuations :
  ?cache:cache ->
  Relational.Instance.t ->
  Logic.Query.t ->
  Relational.Tuple.t ->
  k:int ->
  Valuation.t list
(** The materialized [Supp^k(Q,D,ā)] (for small [k] and few nulls). *)
