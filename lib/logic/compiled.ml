module Value = Relational.Value
module Tuple = Relational.Tuple
module Instance = Relational.Instance
module Index = Relational.Index

(* Compilation target: the formula is translated once into a tree of
   closures. All per-evaluation costs that the naive interpreter
   (Eval.holds) pays on every call are hoisted to compile time:

   - variables resolve to slots of a preallocated environment array
     (no List.assoc chains);
   - the evaluation domain is computed once and stored as an array
     (Eval recomputes adom(D) — a fold over the whole instance — on
     every sentence check);
   - atoms probe per-relation hash indexes (O(1) expected) instead of
     TSet membership (O(log n) with a tuple comparison per level), with
     a reused argument buffer so a probe allocates nothing.

   A compiled formula carries mutable scratch (environment, domain) and
   is therefore single-threaded; compiling is cheap, so parallel code
   compiles one per domain. *)

type source = {
  src_mem : string -> int -> Value.t array -> bool;
      (* [src_mem r arity] is applied once per atom at compile time;
         the returned closure answers membership probes at eval time.
         The probe buffer is only valid for the duration of the call. *)
  src_null : int -> unit -> Value.t;
      (* Eval-time meaning of a null constant appearing in the formula.
         The identity [fun n () -> Value.null n] gives naive-evaluation
         semantics; the incomplete-side kernel resolves nulls through
         the current valuation. *)
}

type state = {
  env : Value.t array;
  mutable dom : Value.t array;
  mutable dom_n : int;
}

type t = {
  formula : Formula.t;
  free : string list;
  slots : (string * int) list; (* free variable ↦ env slot *)
  state : state;
  prog : unit -> bool;
  has_quantifier : bool;
}

let rec quantifier_depth = function
  | Formula.True | Formula.False | Formula.Atom _ | Formula.Eq _ -> 0
  | Formula.Not g -> quantifier_depth g
  | Formula.And (g, h) | Formula.Or (g, h) | Formula.Implies (g, h) ->
      max (quantifier_depth g) (quantifier_depth h)
  | Formula.Exists (_, g) | Formula.Forall (_, g) -> 1 + quantifier_depth g

let dummy = Value.const 1

let of_source ?free source f =
  let free = match free with Some xs -> xs | None -> Formula.free_vars f in
  let nfree = List.length free in
  let nslots = nfree + quantifier_depth f in
  let st =
    {
      env = Array.make (max nslots 1) dummy;
      dom = [||];
      dom_n = 0;
    }
  in
  let env = st.env in
  let slot_of vars x =
    match List.assoc_opt x vars with
    | Some s -> s
    | None -> invalid_arg ("Compiled: unbound variable " ^ x)
  in
  let compile_term vars = function
    | Formula.Val (Value.Const _ as v) -> fun () -> v
    | Formula.Val (Value.Null n) -> source.src_null n
    | Formula.Var x ->
        let s = slot_of vars x in
        fun () -> Array.unsafe_get env s
  in
  (* [vars] maps in-scope variables to slots; [depth] counts enclosing
     binders, so binder slots never collide with free-variable slots or
     with each other along a path (shadowing gets a fresh slot). *)
  let rec go vars depth = function
    | Formula.True -> fun () -> true
    | Formula.False -> fun () -> false
    | Formula.Atom (r, ts) ->
        let mem = source.src_mem r (List.length ts) in
        let terms = Array.of_list (List.map (compile_term vars) ts) in
        let nt = Array.length terms in
        let buf = Array.make nt dummy in
        fun () ->
          for i = 0 to nt - 1 do
            Array.unsafe_set buf i ((Array.unsafe_get terms i) ())
          done;
          mem buf
    | Formula.Eq (a, b) ->
        let ca = compile_term vars a and cb = compile_term vars b in
        fun () -> Value.equal (ca ()) (cb ())
    | Formula.Not g ->
        let cg = go vars depth g in
        fun () -> not (cg ())
    | Formula.And (g, h) ->
        let cg = go vars depth g and ch = go vars depth h in
        fun () -> cg () && ch ()
    | Formula.Or (g, h) ->
        let cg = go vars depth g and ch = go vars depth h in
        fun () -> cg () || ch ()
    | Formula.Implies (g, h) ->
        let cg = go vars depth g and ch = go vars depth h in
        fun () -> (not (cg ())) || ch ()
    | Formula.Exists (x, g) ->
        let s = nfree + depth in
        let cg = go ((x, s) :: vars) (depth + 1) g in
        fun () ->
          let dom = st.dom and n = st.dom_n in
          let rec loop i =
            i < n
            && begin
                 Array.unsafe_set env s (Array.unsafe_get dom i);
                 cg () || loop (i + 1)
               end
          in
          loop 0
    | Formula.Forall (x, g) ->
        let s = nfree + depth in
        let cg = go ((x, s) :: vars) (depth + 1) g in
        fun () ->
          let dom = st.dom and n = st.dom_n in
          let rec loop i =
            i >= n
            || begin
                 Array.unsafe_set env s (Array.unsafe_get dom i);
                 cg () && loop (i + 1)
               end
          in
          loop 0
  in
  let slots = List.mapi (fun i x -> (x, i)) free in
  {
    formula = f;
    free;
    slots;
    state = st;
    prog = go slots 0 f;
    has_quantifier = quantifier_depth f > 0;
  }

let set_domain t dom n =
  if n < 0 || n > Array.length dom then
    invalid_arg "Compiled.set_domain: bad prefix length"
  else begin
    t.state.dom <- dom;
    t.state.dom_n <- n
  end

let formula t = t.formula
let free_vars t = t.free
let has_quantifier t = t.has_quantifier

let instance_source inst =
  let indexes : (string, Index.t) Hashtbl.t = Hashtbl.create 8 in
  let src_mem r _arity =
    match Hashtbl.find_opt indexes r with
    | Some idx -> Index.mem_values idx
    | None -> (
        match Instance.relation inst r with
        | rel ->
            let idx = Index.of_relation rel in
            Hashtbl.replace indexes r idx;
            Index.mem_values idx
        | exception Not_found ->
            (* Mirror Eval: an unknown relation only fails if the atom
               is actually evaluated. *)
            fun _ -> raise Not_found)
  in
  { src_mem; src_null = (fun n () -> Value.null n) }

let compile ?domain inst f =
  let t = of_source (instance_source inst) f in
  let dom =
    Array.of_list (match domain with Some d -> d | None -> Eval.domain inst f)
  in
  set_domain t dom (Array.length dom);
  t

let holds t env =
  List.iter
    (fun (x, s) ->
      match List.assoc_opt x env with
      | Some v -> t.state.env.(s) <- v
      | None -> invalid_arg ("Compiled: unbound variable " ^ x))
    t.slots;
  t.prog ()

let sentence_holds t =
  if t.free <> [] then invalid_arg "Compiled.sentence_holds: formula is open"
  else t.prog ()

let run t = t.prog ()
