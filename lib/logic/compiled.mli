(** Compiled first-order evaluation.

    {!Eval} interprets a formula structurally on every call: variables
    resolve through [List.assoc] environments, quantifiers re-walk the
    domain list, atoms pay a balanced-set membership, and
    [Eval.domain] re-folds the whole instance for the active domain.
    This module performs that work {e once}: {!compile} translates a
    formula into a tree of closures with

    - variables resolved to slots of a preallocated environment array,
    - the evaluation domain hoisted into an array,
    - atom lookups served by per-relation hash indexes
      ({!Relational.Index}) probed with a reused buffer.

    Truth values agree with {!Eval.holds} on every instance,
    environment and formula (property-tested in [test/test_kernel.ml]);
    only the cost model changes.

    A compiled formula owns mutable scratch (environment and domain
    arrays), so a value of type {!t} must be used from one domain at a
    time. Compilation is cheap — parallel folds compile one per chunk.

    The {!source}/{!of_source} layer exposes the compiler over abstract
    atom/null resolvers; {!Incomplete.Kernel} plugs in split-instance
    completion to evaluate one sentence under thousands of valuations
    without materializing any completed instance. *)

type t

(** {1 Compiling against an instance} *)

val compile :
  ?domain:Relational.Value.t list -> Relational.Instance.t -> Formula.t -> t
(** Compile for repeated evaluation on a fixed instance. [?domain]
    overrides the hoisted evaluation domain (default
    {!Eval.domain}, i.e. [adom(D)] plus the formula's constants).
    Nulls evaluate to themselves — naive-evaluation semantics, exactly
    like {!Eval}. *)

val holds : t -> (string * Relational.Value.t) list -> bool
(** Truth under an environment binding the free variables — the
    compiled counterpart of {!Eval.holds}.
    @raise Invalid_argument if a free variable is unbound. *)

val sentence_holds : t -> bool
(** @raise Invalid_argument if the formula is open. *)

(** {1 Generic compilation (kernel plumbing)} *)

type source = {
  src_mem : string -> int -> Relational.Value.t array -> bool;
      (** [src_mem r arity] is applied once per atom at compile time;
          the resulting closure answers membership probes. The probe
          buffer is only valid during the call — copy to retain. *)
  src_null : int -> unit -> Relational.Value.t;
      (** Eval-time meaning of a null occurring in the formula.
          [fun n () -> Value.null n] gives naive semantics. *)
}

val of_source : ?free:string list -> source -> Formula.t -> t
(** Compile against abstract resolvers. [?free] fixes the slot order of
    the free variables (default {!Formula.free_vars} order). The domain
    starts empty — call {!set_domain} before evaluating quantifiers. *)

val set_domain : t -> Relational.Value.t array -> int -> unit
(** [set_domain t dom n]: quantifiers range over [dom.(0..n-1)]. The
    array is adopted, not copied — callers may refresh it between
    evaluations (the kernel rewrites a suffix per valuation).
    @raise Invalid_argument if [n] is not a valid prefix length. *)

val run : t -> bool
(** Evaluate with the environment array as-is: {!sentence_holds}
    without the open-formula check, for compiled-sentence hot loops. *)

(** {1 Introspection} *)

val formula : t -> Formula.t
val free_vars : t -> string list
val has_quantifier : t -> bool
