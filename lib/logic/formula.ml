module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema

type term = Var of string | Val of Value.t

type t =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t
  | Forall of string * t

let atom r ts = Atom (r, ts)
let eq a b = Eq (a, b)
let neq a b = Not (Eq (a, b))

let conj = function
  | [] -> True
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let disj = function
  | [] -> False
  | f :: rest -> List.fold_left (fun acc g -> Or (acc, g)) f rest

let exists vars body = List.fold_right (fun v f -> Exists (v, f)) vars body
let forall vars body = List.fold_right (fun v f -> Forall (v, f)) vars body
let var x = Var x
let cst name = Val (Value.named name)
let vl v = Val v

let dedup_keep_order l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let free_vars f =
  let rec go bound acc f =
    match f with
    | True | False -> acc
    | Atom (_, ts) ->
        List.fold_left
          (fun acc t ->
            match t with
            | Var x when not (List.mem x bound) -> x :: acc
            | Var _ | Val _ -> acc)
          acc ts
    | Eq (a, b) ->
        let add acc = function
          | Var x when not (List.mem x bound) -> x :: acc
          | Var _ | Val _ -> acc
        in
        add (add acc a) b
    | Not g -> go bound acc g
    | And (g, h) | Or (g, h) | Implies (g, h) -> go bound (go bound acc g) h
    | Exists (x, g) | Forall (x, g) -> go (x :: bound) acc g
  in
  dedup_keep_order (List.rev (go [] [] f))

let is_sentence f = free_vars f = []

let fold_values add acc f =
  let rec go acc = function
    | True | False -> acc
    | Atom (_, ts) ->
        List.fold_left
          (fun acc t -> match t with Val v -> add acc v | Var _ -> acc)
          acc ts
    | Eq (a, b) ->
        let one acc = function Val v -> add acc v | Var _ -> acc in
        one (one acc a) b
    | Not g -> go acc g
    | And (g, h) | Or (g, h) | Implies (g, h) -> go (go acc g) h
    | Exists (_, g) | Forall (_, g) -> go acc g
  in
  go acc f

let constants f =
  fold_values
    (fun acc v -> match Value.const_code v with Some c -> c :: acc | None -> acc)
    [] f
  |> List.sort_uniq Int.compare

let nulls f =
  fold_values
    (fun acc v -> match Value.null_id v with Some n -> n :: acc | None -> acc)
    [] f
  |> List.sort_uniq Int.compare

let relations f =
  let rec go acc = function
    | True | False | Eq _ -> acc
    | Atom (r, _) -> if List.mem r acc then acc else r :: acc
    | Not g | Exists (_, g) | Forall (_, g) -> go acc g
    | And (g, h) | Or (g, h) | Implies (g, h) -> go (go acc g) h
  in
  List.sort String.compare (go [] f)

let rec has_quantifier = function
  | True | False | Atom _ | Eq _ -> false
  | Exists _ | Forall _ -> true
  | Not g -> has_quantifier g
  | And (g, h) | Or (g, h) | Implies (g, h) ->
      has_quantifier g || has_quantifier h

let all_vars f =
  let rec go acc = function
    | True | False -> acc
    | Atom (_, ts) ->
        List.fold_left
          (fun acc t -> match t with Var x -> x :: acc | Val _ -> acc)
          acc ts
    | Eq (a, b) ->
        let one acc = function Var x -> x :: acc | Val _ -> acc in
        one (one acc a) b
    | Not g -> go acc g
    | And (g, h) | Or (g, h) | Implies (g, h) -> go (go acc g) h
    | Exists (x, g) | Forall (x, g) -> go (x :: acc) g
  in
  List.sort_uniq String.compare (go [] f)

let rec fresh_var taken base i =
  let candidate = Printf.sprintf "%s_%d" base i in
  if List.mem candidate taken then fresh_var taken base (i + 1) else candidate

let subst bindings f =
  let subst_term bindings = function
    | Var x as t -> ( match List.assoc_opt x bindings with Some u -> u | None -> t)
    | Val _ as t -> t
  in
  let term_vars = function Var x -> [ x ] | Val _ -> [] in
  let rec go bindings f =
    match f with
    | True | False -> f
    | Atom (r, ts) -> Atom (r, List.map (subst_term bindings) ts)
    | Eq (a, b) -> Eq (subst_term bindings a, subst_term bindings b)
    | Not g -> Not (go bindings g)
    | And (g, h) -> And (go bindings g, go bindings h)
    | Or (g, h) -> Or (go bindings g, go bindings h)
    | Implies (g, h) -> Implies (go bindings g, go bindings h)
    | Exists (x, g) -> quant (fun (x, g) -> Exists (x, g)) x g bindings
    | Forall (x, g) -> quant (fun (x, g) -> Forall (x, g)) x g bindings
  and quant rebuild x g bindings =
    let bindings = List.filter (fun (y, _) -> y <> x) bindings in
    let incoming =
      List.concat_map (fun (_, t) -> term_vars t) bindings
    in
    if List.mem x incoming then begin
      (* Rename the binder to avoid capturing a substituted variable. *)
      let taken = incoming @ all_vars g in
      let x' = fresh_var taken x 0 in
      let g' = go [ (x, Var x') ] g in
      rebuild (x', go bindings g')
    end
    else rebuild (x, go bindings g)
  in
  go bindings f

let instantiate free tuple f =
  if List.length free <> Tuple.arity tuple then
    invalid_arg "Formula.instantiate: arity mismatch"
  else
    subst (List.mapi (fun i x -> (x, Val (Tuple.get tuple i))) free) f

let map_values fn f =
  let mt = function Var _ as t -> t | Val v -> Val (fn v) in
  let rec go = function
    | True -> True
    | False -> False
    | Atom (r, ts) -> Atom (r, List.map mt ts)
    | Eq (a, b) -> Eq (mt a, mt b)
    | Not g -> Not (go g)
    | And (g, h) -> And (go g, go h)
    | Or (g, h) -> Or (go g, go h)
    | Implies (g, h) -> Implies (go g, go h)
    | Exists (x, g) -> Exists (x, go g)
    | Forall (x, g) -> Forall (x, go g)
  in
  go f

let rec size = function
  | True | False | Atom _ | Eq _ -> 1
  | Not g | Exists (_, g) | Forall (_, g) -> 1 + size g
  | And (g, h) | Or (g, h) | Implies (g, h) -> 1 + size g + size h

let well_formed schema f =
  let rec go = function
    | True | False | Eq _ -> Ok ()
    | Atom (r, ts) -> (
        match Schema.arity_opt schema r with
        | None -> Error (Printf.sprintf "unknown relation %s" r)
        | Some a when a <> List.length ts ->
            Error
              (Printf.sprintf "relation %s has arity %d, used with %d terms" r a
                 (List.length ts))
        | Some _ -> Ok ())
    | Not g | Exists (_, g) | Forall (_, g) -> go g
    | And (g, h) | Or (g, h) | Implies (g, h) -> (
        match go g with Ok () -> go h | Error _ as e -> e)
  in
  go f

let equal (a : t) (b : t) = a = b

let compare_term a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Val v, Val w -> Value.compare v w
  | Var _, Val _ -> -1
  | Val _, Var _ -> 1

let pp_term fmt = function
  | Var x -> Format.pp_print_string fmt x
  | Val (Value.Const c) ->
      (* Quote constants so that printed formulas re-parse. *)
      Format.fprintf fmt "'%s'" (Relational.Names.to_string c)
  | Val (Value.Null n) -> Format.fprintf fmt "~%d" n

let rec pp fmt f =
  (* Precedence: quantifiers/implication lowest, then or, and, not. *)
  pp_implies fmt f

and pp_implies fmt = function
  | Implies (g, h) -> Format.fprintf fmt "%a -> %a" pp_or g pp_implies h
  | Exists _ | Forall _ as f -> pp_quant fmt f
  | f -> pp_or fmt f

and pp_quant fmt = function
  | Exists (x, g) -> Format.fprintf fmt "exists %s. %a" x pp_implies g
  | Forall (x, g) -> Format.fprintf fmt "forall %s. %a" x pp_implies g
  | f -> pp_or fmt f

and pp_or fmt = function
  | Or (g, h) -> Format.fprintf fmt "%a | %a" pp_or g pp_and h
  | f -> pp_and fmt f

and pp_and fmt = function
  | And (g, h) -> Format.fprintf fmt "%a & %a" pp_and g pp_unary h
  | f -> pp_unary fmt f

and pp_unary fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Atom (r, ts) ->
      Format.fprintf fmt "%s(%s)" r
        (String.concat ", " (List.map (Format.asprintf "%a" pp_term) ts))
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp_term a pp_term b
  | Not (Eq (a, b)) -> Format.fprintf fmt "%a != %a" pp_term a pp_term b
  | Not g -> Format.fprintf fmt "!%a" pp_unary g
  | And _ | Or _ | Implies _ | Exists _ | Forall _ as f ->
      Format.fprintf fmt "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
