(** First-order formulas over a relational schema.

    This is the query language of the paper's Section 5 (relational
    calculus with Boolean connectives and both quantifiers) and the
    carrier for constraints compiled to logic. Terms are variables or
    values; values may be nulls so that formulas can also express
    membership of specific tuples (e.g. [Q(ā)] for a tuple [ā] with
    nulls, used by the comparison machinery of §5). *)

type term =
  | Var of string
  | Val of Relational.Value.t

type t =
  | True
  | False
  | Atom of string * term list  (** [R(t̄)] *)
  | Eq of term * term
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t
  | Forall of string * t

(** {1 Smart constructors} *)

val atom : string -> term list -> t
val eq : term -> term -> t
val neq : term -> term -> t
val conj : t list -> t
(** [And]-fold; [True] for the empty list. *)

val disj : t list -> t
(** [Or]-fold; [False] for the empty list. *)

val exists : string list -> t -> t
val forall : string list -> t -> t
val var : string -> term
val cst : string -> term
(** A named constant term. *)

val vl : Relational.Value.t -> term

(** {1 Structure} *)

val free_vars : t -> string list
(** Free variables in order of first occurrence, deduplicated. *)

val is_sentence : t -> bool

val constants : t -> int list
(** Codes of constants mentioned (the finite set [C] witnessing
    [C]-genericity — Definition 1), sorted, deduplicated. *)

val nulls : t -> int list
(** Nulls mentioned (normally empty for user queries; nonempty after
    instantiating free variables with null-carrying tuples). *)

val relations : t -> string list
(** Relation names appearing in atoms, sorted, deduplicated — the
    relations a verdict for this formula can depend on directly (a
    quantified formula additionally depends on the active domain of
    the whole database; see {!has_quantifier}). *)

val has_quantifier : t -> bool
(** Whether any [Exists]/[Forall] occurs. Quantifier-free formulas are
    insensitive to the active domain, so their verdicts survive
    updates that only touch unmentioned relations. *)

val subst : (string * term) list -> t -> t
(** Capture-avoiding substitution of free variables. Bound variables
    shadow; substituting a term containing a variable that would be
    captured renames the binder. *)

val instantiate : string list -> Relational.Tuple.t -> t -> t
(** [instantiate free ā φ] replaces the free variables [free]
    (positionally) by the values of [ā].
    @raise Invalid_argument on arity mismatch. *)

val map_values : (Relational.Value.t -> Relational.Value.t) -> t -> t
(** Applies a function to every value occurring in the formula. *)

val size : t -> int
(** Number of connectives, atoms and quantifiers. *)

val well_formed : Relational.Schema.t -> t -> (unit, string) result
(** Checks that every atom uses a declared relation with the right
    arity. *)

val equal : t -> t -> bool
val compare_term : term -> term -> int

(** {1 Printing} *)

val pp_term : Format.formatter -> term -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
