open Formula

let rec is_conjunctive = function
  | True | Atom _ -> true
  | And (g, h) -> is_conjunctive g && is_conjunctive h
  | Exists (_, g) -> is_conjunctive g
  | False | Eq _ | Not _ | Or _ | Implies _ | Forall _ -> false

let rec is_ucq = function
  | True | False | Atom _ -> true
  | And (g, h) | Or (g, h) -> is_ucq g && is_ucq h
  | Exists (_, g) -> is_ucq g
  | Eq _ | Not _ | Implies _ | Forall _ -> false

let rec is_positive = function
  | True | False | Atom _ | Eq _ -> true
  | And (g, h) | Or (g, h) -> is_positive g && is_positive h
  | Exists (_, g) | Forall (_, g) -> is_positive g
  | Not _ | Implies _ -> false

let guard_vars_if_valid ts =
  (* The guard must be an atom over pairwise distinct variables. *)
  let vars = List.map (function Var x -> Some x | Val _ -> None) ts in
  if List.for_all Option.is_some vars then begin
    let names = List.filter_map Fun.id vars in
    if List.length (List.sort_uniq String.compare names) = List.length names
    then Some names
    else None
  end
  else None

let is_pos_forall_guard f =
  (* The guarded rule is ∀x̄ (α(x̄) → φ): the guard's variables are
     exactly the universally quantified tuple, so a guard mentioning a
     variable bound further out (or free) does NOT qualify — such
     formulas genuinely escape the fragment (and naïve evaluation can
     then fail to compute certain answers).

     Audited corner cases (regression-tested in test_logic.ml):

     - Guard variables not pairwise distinct (∀x R(x,x) → φ):
       [guard_vars_if_valid] rejects the guard, we fall back to [go] on
       the body, and the bare implication makes the check fail. Correct:
       the guarded rule requires an atom over distinct variables.
     - Guarded ∀ under ∨ ((∀x R(x) → S(x)) ∨ ∃z T(z)): the fragment is
       closed under ∨, and [go] descends into both disjuncts; accepted.
     - Guard variables a strict subset of the ∀-prefix
       (∀x∀y R(y) → S(x,y)): accepted, and soundly so — universal
       quantifiers commute, so the formula rewrites to
       ∀ȳ (α(ȳ) → ∀z̄ φ) with the unguarded universals pushed into the
       (positive, hence Pos∀G) body.
     - Vacuous guards (0-ary guard atom, ∀x P() → S(x)): accepted. The
       guard's truth value is valuation-independent — a valuation never
       adds or removes a 0-ary fact — so naïve evaluation of the
       implication remains exact.
     - Guards mentioning constants (∀x R(x,'a') → φ): rejected; the
       guard must be an atom over variables only.
     - Guards mentioning a variable bound further out
       (∃y ∀x R(x,y) → φ): rejected, per the contract above. This is
       deliberately conservative: the classifier's verdict gates the
       naïve-evaluation fast path, so under-approximating the fragment
       is safe while over-approximating would be unsound. *)
  let rec go = function
    | True | False | Atom _ | Eq _ -> true
    | And (g, h) | Or (g, h) -> go g && go h
    | Exists (_, g) -> go g
    | Forall (_, body) as f -> begin
        match strip_foralls f with
        | prefix, Implies (Atom (_, ts), phi) -> begin
            match guard_vars_if_valid ts with
            | Some guard_vars
              when List.for_all (fun v -> List.mem v prefix) guard_vars ->
                go phi
            | Some _ | None -> go body
          end
        | _, _ -> go body
      end
    | Not _ | Implies _ -> false
  and strip_foralls = function
    | Forall (x, g) ->
        let xs, body = strip_foralls g in
        (x :: xs, body)
    | f -> ([], f)
  in
  go f

type fragment = Cq | Ucq | PosForallG | Fo

let fragment_name = function
  | Cq -> "CQ"
  | Ucq -> "UCQ"
  | PosForallG -> "Pos∀G"
  | Fo -> "FO"

let rank = function Cq -> 0 | Ucq -> 1 | PosForallG -> 2 | Fo -> 3
let leq a b = rank a <= rank b

let classify f =
  if is_conjunctive f then Cq
  else if is_ucq f then Ucq
  else if is_pos_forall_guard f then PosForallG
  else Fo

let naive_eval_sound fr = leq fr PosForallG

let rec is_quantifier_free = function
  | True | False | Atom _ | Eq _ -> true
  | Not g -> is_quantifier_free g
  | And (g, h) | Or (g, h) | Implies (g, h) ->
      is_quantifier_free g && is_quantifier_free h
  | Exists _ | Forall _ -> false
