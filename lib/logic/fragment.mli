(** Syntactic fragments of first-order logic used in the paper.

    - conjunctive queries (CQ): the [∃,∧]-fragment over relational atoms;
    - unions of conjunctive queries (UCQ): the [∃,∧,∨]-fragment;
    - Pos∀G (Compton's positive FO with universal guards): atomic
      formulas closed under [∧], [∨], [∃], [∀] and the guarded rule
      [∀x̄ (α(x̄) → φ)] with [α] an atom over distinct variables.
      For Pos∀G queries naïve evaluation computes certain answers
      (Gheerbrant–Libkin–Sirangelo), which gives the paper's
      Corollary 3. *)

type fragment =
  | Cq  (** conjunctive queries *)
  | Ucq  (** unions of conjunctive queries *)
  | PosForallG  (** Compton's Pos∀G *)
  | Fo  (** full first-order logic *)

val fragment_name : fragment -> string
(** ["CQ"], ["UCQ"], ["Pos∀G"], ["FO"]. *)

val leq : fragment -> fragment -> bool
(** The (linear) inclusion order [CQ ⊆ UCQ ⊆ Pos∀G ⊆ FO]. *)

val classify : Formula.t -> fragment
(** The tightest fragment containing the formula. This is the single
    source of fragment facts for dispatch decisions: naïve evaluation
    computes certain answers when [leq (classify f) PosForallG]
    (Corollary 3), and the Theorem 8 polynomial comparison algorithms
    apply when [leq (classify f) Ucq]. *)

val naive_eval_sound : fragment -> bool
(** [leq fragment PosForallG]: naïve evaluation computes certain
    answers for queries in the fragment (Corollary 3, via
    Gheerbrant–Libkin–Sirangelo). *)

val is_conjunctive : Formula.t -> bool
(** Built from relational atoms and [True] with [∧] and [∃] only. *)

val is_ucq : Formula.t -> bool
(** Built from relational atoms, [True], [False] with [∧], [∨], [∃]. *)

val is_positive : Formula.t -> bool
(** No negation and no implication (quantifiers unrestricted). *)

val is_pos_forall_guard : Formula.t -> bool
(** Membership in Pos∀G. *)

val is_quantifier_free : Formula.t -> bool
