external now_ns : unit -> int64 = "obs_monotonic_ns"
