(** Monotonic time source for span timestamps. *)

val now_ns : unit -> int64
(** Nanoseconds on CLOCK_MONOTONIC. Only differences are meaningful;
    the epoch is unspecified (typically boot time). *)
