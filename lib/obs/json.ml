let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let escape s =
  let b = Buffer.create (String.length s) in
  add_escaped b s;
  Buffer.contents b
