(** Shared JSON string escaping.

    Every JSON emitter in the tree — {!Report}'s metrics objects,
    {!Trace}'s span events, the bench records, and the server wire
    protocol — writes strings with exactly this escaping, so their
    output is mutually parseable by the one strict reader
    ({!Trace.validate_lines} and the wire-protocol request parser).

    The encoding: double quotes and backslashes are backslash-escaped,
    newline becomes [\\n], every other byte below [0x20] becomes
    [\\u00XX], and all other bytes — including non-ASCII bytes, i.e.
    UTF-8 continuation sequences — pass through unchanged. *)

val add_escaped : Buffer.t -> string -> unit
(** Append the escaped form of the string to the buffer (no quotes). *)

val escape : string -> string
(** [escape s] is the escaped form of [s] (no surrounding quotes). *)
