(* One process-wide registry of atomic counters. Counters are atomics,
   not mutexed ints, because the hot increments happen inside pool
   chunks running on several domains at once: a lock would serialize
   the very loops the pool exists to parallelize, while a contended
   atomic increment costs tens of nanoseconds — and nothing at all
   when metrics are disabled, since every entry point first reads the
   [enabled] flag and leaves. *)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

type t = { cname : string; cell : int Atomic.t }

let make cname = { cname; cell = Atomic.make 0 }
let valuations_evaluated = make "valuations_evaluated"
let kernel_refreshes = make "kernel_refreshes"
let short_circuits = make "short_circuits"
let cache_hits = make "cache_hits"
let cache_misses = make "cache_misses"
let cache_evictions = make "cache_evictions"
let pool_tasks_queued = make "pool_tasks_queued"
let pool_tasks_stolen = make "pool_tasks_stolen"
let pool_tasks_completed = make "pool_tasks_completed"
let chase_steps = make "chase_steps"
let approx_samples = make "approx_samples"
let approx_strata = make "approx_strata"
let serve_connections = make "serve_connections"
let serve_requests = make "serve_requests"
let serve_parse_errors = make "serve_parse_errors"
let serve_overloaded = make "serve_overloaded"
let serve_deadline_exceeded = make "serve_deadline_exceeded"
let serve_session_loads = make "serve_session_loads"
let serve_session_evictions = make "serve_session_evictions"
let serve_updates = make "serve_updates"
let decomp_plans = make "decomp_plans"
let decomp_components = make "decomp_components"
let decomp_indecomposable = make "decomp_indecomposable"
let router_requests = make "router_requests"
let router_forwards = make "router_forwards"
let router_retries = make "router_retries"
let router_replica_forwards = make "router_replica_forwards"
let router_shard_unavailable = make "router_shard_unavailable"
let router_ring_remaps = make "router_ring_remaps"
let router_probe_failures = make "router_probe_failures"

let all =
  [ valuations_evaluated; kernel_refreshes; short_circuits; cache_hits;
    cache_misses; cache_evictions; pool_tasks_queued; pool_tasks_stolen;
    pool_tasks_completed; chase_steps; approx_samples; approx_strata;
    serve_connections; serve_requests;
    serve_parse_errors; serve_overloaded; serve_deadline_exceeded;
    serve_session_loads; serve_session_evictions; serve_updates;
    decomp_plans; decomp_components; decomp_indecomposable;
    router_requests; router_forwards; router_retries;
    router_replica_forwards; router_shard_unavailable; router_ring_remaps;
    router_probe_failures
  ]

let name c = c.cname
let value c = Atomic.get c.cell
let incr c = if Atomic.get enabled then Atomic.incr c.cell

let add c n =
  if Atomic.get enabled then ignore (Atomic.fetch_and_add c.cell n)

(* ------------------------------------------------------------------ *)
(* Span histograms                                                     *)
(* ------------------------------------------------------------------ *)

let hist_buckets = 63

type hist = {
  buckets : int Atomic.t array;
  hcount : int Atomic.t;
  total_ns : int Atomic.t;
  max_ns : int Atomic.t;
}

(* The table itself is touched rarely (once per span completion) and
   is guarded by a mutex; the cells inside a histogram are atomics, so
   concurrent observations of the same span name never lose counts. *)
let hists : (string, hist) Hashtbl.t = Hashtbl.create 16
let hists_lock = Mutex.create ()

let hist_for name =
  Mutex.protect hists_lock (fun () ->
      match Hashtbl.find_opt hists name with
      | Some h -> h
      | None ->
          let h =
            { buckets = Array.init hist_buckets (fun _ -> Atomic.make 0);
              hcount = Atomic.make 0;
              total_ns = Atomic.make 0;
              max_ns = Atomic.make 0
            }
          in
          Hashtbl.add hists name h;
          h)

let bucket_of ns =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  if ns <= 1 then 0 else Stdlib.min (hist_buckets - 1) (go 0 ns)

let rec store_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then store_max cell v

let observe_span name ns =
  if Atomic.get enabled && ns >= 0 then begin
    let h = hist_for name in
    Atomic.incr h.hcount;
    ignore (Atomic.fetch_and_add h.total_ns ns);
    Atomic.incr h.buckets.(bucket_of ns);
    store_max h.max_ns ns
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type span_stats = {
  count : int;
  total_ns : int;
  max_ns : int;
  buckets : int array;
}

type snapshot = {
  counters : (string * int) list;
  spans : (string * span_stats) list;
}

let snapshot () =
  let counters = List.map (fun c -> (c.cname, value c)) all in
  let spans =
    Mutex.protect hists_lock (fun () ->
        Hashtbl.fold
          (fun name h acc ->
            ( name,
              { count = Atomic.get h.hcount;
                total_ns = Atomic.get h.total_ns;
                max_ns = Atomic.get h.max_ns;
                buckets = Array.map Atomic.get h.buckets
              } )
            :: acc)
          hists [])
  in
  { counters;
    spans = List.sort (fun (a, _) (b, _) -> String.compare a b) spans
  }

let reset () =
  List.iter (fun c -> Atomic.set c.cell 0) all;
  Mutex.protect hists_lock (fun () -> Hashtbl.reset hists)
