(** Process-wide observability counters and histograms.

    Every hot path of the engine increments one of the counters below
    (valuations checked, kernel refreshes, cache traffic, pool
    scheduling, chase steps). The counters are [Atomic.t] cells, so
    they are safe to bump from any {!Exec.Pool} worker domain without
    taking a lock, and reading them never perturbs the run.

    Metrics are {e disabled by default}: every [incr]/[add]/
    [observe_span] first reads one atomic flag and returns — a load
    and a predictable branch, no allocation — so instrumented code
    costs nothing measurable when observability is off. Enabling is
    global (there is one process-wide registry, shared by all domains,
    matching the process-wide worker pool). *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter and drop every histogram. *)

(** {1 Counters} *)

type t
(** A named monotone counter. *)

val name : t -> string

val value : t -> int
(** Current value; readable whether or not metrics are enabled. *)

val incr : t -> unit
(** No-op when disabled. *)

val add : t -> int -> unit
(** No-op when disabled. *)

val valuations_evaluated : t
(** Support checks performed: one per valuation (or class
    representative) whose verdict was requested, cache hits included. *)

val kernel_refreshes : t
(** {!Incomplete.Kernel.holds} runs: per-valuation refreshes of the
    compiled kernel's null images / domain suffix / null tables.
    [valuations_evaluated - kernel_refreshes ≈ verdicts served by the
    cache or the naive path]. *)

val short_circuits : t
(** Certainty/possibility class sweeps that stopped before exhausting
    the class list (a refuting class for [∀], a witnessing one for
    [∃]). *)

val cache_hits : t
val cache_misses : t
val cache_evictions : t
(** Aggregated over every {!Exec.Cache} in the process; per-cache
    figures remain available from [Exec.Cache.stats]. *)

val pool_tasks_queued : t
(** Chunk tasks enqueued on a {!Exec.Pool} work queue. *)

val pool_tasks_stolen : t
(** Queued tasks drained by the {e calling} domain while helping. *)

val pool_tasks_completed : t
(** Queued tasks that finished running (worker or caller). *)

val chase_steps : t
(** Null substitutions applied by {!Constraints.Chase}. *)

val approx_samples : t
(** Valuations drawn by the Monte-Carlo estimator
    ([Approx_measure.Estimator]) — uniform and stratified passes
    both; each sampled valuation also counts one
    {!valuations_evaluated} per sentence checked on it. *)

val approx_strata : t
(** Null-support strata sampled by the estimator's stratified second
    pass (strata of weight zero are skipped and not counted). *)

(** {2 Query-service counters}

    Bumped by the concurrent query service ([Server], [certainty
    serve]); zero in one-shot CLI runs. *)

val serve_connections : t
(** Client connections accepted. *)

val serve_requests : t
(** Request lines received (well-formed or not, all endpoints). *)

val serve_parse_errors : t
(** Request lines rejected with a [parse_error] response. *)

val serve_overloaded : t
(** Requests shed with an [overloaded] response because the admission
    queue was full. *)

val serve_deadline_exceeded : t
(** Requests answered with [deadline_exceeded] — whether the deadline
    expired while queued or during evaluation. *)

val serve_session_loads : t
(** Databases parsed and indexed into the session store (misses; a
    request for an already-loaded database does not count). *)

val serve_session_evictions : t
(** Sessions dropped by the store's LRU cap. *)

val serve_updates : t
(** Single-tuple updates applied to live sessions (the [update] op). *)

(** {2 Decomposition-analysis counters}

    Bumped by the null-dependency planner ([Analysis.Decomp]). *)

val decomp_plans : t
(** Decomposition analyses run (every [analysis.decomp] span). *)

val decomp_components : t
(** Independent components certified across all sound plans. *)

val decomp_indecomposable : t
(** Analyses that ended [Indecomposable] (no sound plan). *)

(** {2 Router-tier counters}

    Bumped by the sharding router ([Shard.Router], [certainty
    router]); zero everywhere else. Per-shard latency lands in the
    [router.shard.<name>] span histograms. *)

val router_requests : t
(** Request lines received by the router (well-formed or not). *)

val router_forwards : t
(** Request lines sent to backend shards — proxied client requests
    and replayed [update] lines both. *)

val router_retries : t
(** Reads retried on another replica after a shard conversation
    failed. *)

val router_replica_forwards : t
(** Accepted [update] lines forwarded to read replicas (one count per
    replica reached). *)

val router_shard_unavailable : t
(** Requests answered with the typed [shard_unavailable] error. *)

val router_ring_remaps : t
(** Membership transitions (shard ejected, re-admitted, or observed
    restarting under a new generation) — each remaps one ring arc. *)

val router_probe_failures : t
(** Health probes that failed (connect refused, timeout, bad reply). *)

(** {1 Span histograms}

    {!Trace.span} feeds the wall-time of every completed span into a
    per-name histogram (log2 buckets of nanoseconds), so a trace run
    also yields aggregate timings without post-processing the JSONL. *)

val observe_span : string -> int -> unit
(** [observe_span name ns] — no-op when disabled or [ns < 0]. *)

type span_stats = {
  count : int;
  total_ns : int;
  max_ns : int;
  buckets : int array;  (** [buckets.(i)] counts durations in [[2^i, 2^{i+1})]. *)
}

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;  (** declaration order, all counters *)
  spans : (string * span_stats) list;  (** sorted by span name *)
}

val snapshot : unit -> snapshot
