/* Monotonic clock for Obs.Trace span timestamps.
 *
 * CLOCK_MONOTONIC never jumps backwards (unlike gettimeofday under
 * NTP), which is what makes span_end - span_begin a duration and lets
 * the trace validator assert per-span monotonicity. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
