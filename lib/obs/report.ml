let to_text (s : Metrics.snapshot) =
  let b = Buffer.create 512 in
  Buffer.add_string b "== metrics ==\n";
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-24s %d\n" name v))
    s.Metrics.counters;
  if s.Metrics.spans <> [] then begin
    Buffer.add_string b "== spans (wall time) ==\n";
    List.iter
      (fun (name, st) ->
        let mean =
          if st.Metrics.count = 0 then 0.
          else float_of_int st.Metrics.total_ns /. float_of_int st.Metrics.count
        in
        Buffer.add_string b
          (Printf.sprintf "  %-24s count=%-6d total=%.3fms mean=%.1fus max=%.1fus\n"
             name st.Metrics.count
             (float_of_int st.Metrics.total_ns /. 1e6)
             (mean /. 1e3)
             (float_of_int st.Metrics.max_ns /. 1e3)))
      s.Metrics.spans
  end;
  Buffer.contents b

let json_escape = Json.escape

let to_json (s : Metrics.snapshot) =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %d" (json_escape name) v))
    s.Metrics.counters;
  Buffer.add_string b "}, \"spans\": {";
  List.iteri
    (fun i (name, st) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\": {\"count\": %d, \"total_ns\": %d, \"max_ns\": %d}"
           (json_escape name) st.Metrics.count st.Metrics.total_ns
           st.Metrics.max_ns))
    s.Metrics.spans;
  Buffer.add_string b "}}";
  Buffer.contents b
