(** Renderers for {!Metrics.snapshot}: the human table behind
    [certainty ... --metrics] and the JSON dump behind
    [--metrics-json] / the bench metrics column. *)

val to_text : Metrics.snapshot -> string
(** Counter table (always, in declaration order) followed by a span
    wall-time table when any span completed under tracing. Counters
    are deterministic for sequential runs; span timings are not, so
    they only appear when a trace was requested. *)

val to_json : Metrics.snapshot -> string
(** [{"counters": {...}, "spans": {name: {count, total_ns, max_ns}}}]
    on one line. *)
