type sink = { oc : out_channel; lock : Mutex.t; close_oc : bool }

(* The sink is read on every span entry, including from pool worker
   domains, so it lives in an atomic rather than behind the mutex; the
   mutex only serializes the actual line writes. *)
let current : sink option Atomic.t = Atomic.make None
let ids = Atomic.make 1
let enabled () = Atomic.get current <> None

let close () =
  match Atomic.exchange current None with
  | None -> ()
  | Some s ->
      Mutex.protect s.lock (fun () ->
          flush s.oc;
          if s.close_oc then close_out s.oc)

let at_exit_registered = Atomic.make false

let enable_channel ?(close_channel = false) oc =
  close ();
  Atomic.set current (Some { oc; lock = Mutex.create (); close_oc = close_channel });
  if not (Atomic.exchange at_exit_registered true) then at_exit close

let enable_file path = enable_channel ~close_channel:true (open_out path)

(* ------------------------------------------------------------------ *)
(* Event writer                                                        *)
(* ------------------------------------------------------------------ *)

let add_escaped = Json.add_escaped

let emit s ~ev ~id ~name ~t ~attrs =
  let b = Buffer.create 96 in
  Buffer.add_string b "{\"ev\":\"";
  Buffer.add_string b ev;
  Buffer.add_string b "\",\"id\":";
  Buffer.add_string b (string_of_int id);
  Buffer.add_string b ",\"name\":\"";
  add_escaped b name;
  Buffer.add_string b "\",\"t\":";
  Buffer.add_string b (Int64.to_string t);
  Buffer.add_string b ",\"dom\":";
  Buffer.add_string b (string_of_int (Domain.self () :> int));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ",\"a_";
      add_escaped b k;
      Buffer.add_string b "\":\"";
      add_escaped b v;
      Buffer.add_string b "\"")
    attrs;
  Buffer.add_string b "}\n";
  Mutex.protect s.lock (fun () -> Buffer.output_buffer s.oc b)

let span_begin name =
  match Atomic.get current with
  | None -> 0
  | Some s ->
      let id = Atomic.fetch_and_add ids 1 in
      emit s ~ev:"b" ~id ~name ~t:(Clock.now_ns ()) ~attrs:[];
      id

let span_end ?(attrs = []) ~id name =
  if id <> 0 then
    match Atomic.get current with
    | None -> ()
    | Some s -> emit s ~ev:"e" ~id ~name ~t:(Clock.now_ns ()) ~attrs

let span ?(attrs = []) name f =
  match Atomic.get current with
  | None -> f ()
  | Some _ ->
      let t0 = Clock.now_ns () in
      let id = span_begin name in
      let finish extra =
        Metrics.observe_span name
          (Int64.to_int (Int64.sub (Clock.now_ns ()) t0));
        span_end ~id name ~attrs:(attrs @ extra)
      in
      (match f () with
      | v ->
          finish [];
          v
      | exception e ->
          finish [ ("error", Printexc.to_string e) ];
          raise e)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

exception Bad of string

(* Strict parser for the flat objects this module writes: one JSON
   object per line, keys and string values with the escapes of
   [add_escaped], integer values otherwise. Anything else is an error
   — the point of the gate is to reject truncated or interleaved
   lines, not to accept all of JSON. *)
let parse_flat line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else raise (Bad "truncated line") in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then
      raise (Bad (Printf.sprintf "expected %c at column %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | ('"' | '\\' | '/') as c ->
              Buffer.add_char b c;
              advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'u' ->
              advance ();
              for _ = 1 to 4 do
                (match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> raise (Bad "bad \\u escape"));
                advance ()
              done;
              Buffer.add_char b '?'
          | _ -> raise (Bad "bad escape"));
          go ()
      | c ->
          if Char.code c < 0x20 then raise (Bad "raw control character");
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    match peek () with
    | '"' -> parse_string ()
    | '-' | '0' .. '9' ->
        let start = !pos in
        if peek () = '-' then advance ();
        let digits = ref 0 in
        while !pos < n && (match line.[!pos] with '0' .. '9' -> true | _ -> false) do
          incr digits;
          advance ()
        done;
        if !digits = 0 then raise (Bad "bare minus sign");
        String.sub line start (!pos - start)
    | c -> raise (Bad (Printf.sprintf "unexpected %C in value position" c))
  in
  expect '{';
  let fields = ref [] in
  let rec pairs () =
    let k = parse_string () in
    expect ':';
    let v = parse_value () in
    if List.mem_assoc k !fields then raise (Bad ("duplicate key " ^ k));
    fields := (k, v) :: !fields;
    match peek () with
    | ',' -> advance (); pairs ()
    | '}' -> advance ()
    | c -> raise (Bad (Printf.sprintf "expected ',' or '}', got %C" c))
  in
  (match peek () with
  | '}' -> advance () (* empty object: still flat JSON, rejected later *)
  | _ -> pairs ());
  if !pos <> n then raise (Bad "trailing characters after object");
  List.rev !fields

let validate_lines lines =
  let open_spans : (int, string * int64) Hashtbl.t = Hashtbl.create 64 in
  let completed = ref 0 in
  try
    List.iteri
      (fun i line ->
        let where msg = raise (Bad (Printf.sprintf "line %d: %s" (i + 1) msg)) in
        let fields = try parse_flat line with Bad m -> where m in
        let get k =
          match List.assoc_opt k fields with
          | Some v -> v
          | None -> where ("missing field " ^ k)
        in
        let ev = get "ev" and name = get "name" in
        let id =
          match int_of_string_opt (get "id") with
          | Some id when id > 0 -> id
          | _ -> where "id is not a positive integer"
        in
        let t =
          match Int64.of_string_opt (get "t") with
          | Some t -> t
          | None -> where "t is not an integer"
        in
        (match int_of_string_opt (get "dom") with
        | Some _ -> ()
        | None -> where "dom is not an integer");
        match ev with
        | "b" ->
            if Hashtbl.mem open_spans id then
              where (Printf.sprintf "span %d begun twice" id);
            Hashtbl.add open_spans id (name, t)
        | "e" -> (
            match Hashtbl.find_opt open_spans id with
            | None -> where (Printf.sprintf "span %d ended but never begun" id)
            | Some (bname, bt) ->
                if bname <> name then
                  where
                    (Printf.sprintf "span %d begun as %s but ended as %s" id
                       bname name);
                if Int64.compare t bt < 0 then
                  where (Printf.sprintf "span %d ends before it begins" id);
                Hashtbl.remove open_spans id;
                incr completed)
        | other -> where (Printf.sprintf "unknown event %S" other))
      lines;
    if Hashtbl.length open_spans > 0 then
      Error
        (Printf.sprintf "%d unclosed span(s): %s"
           (Hashtbl.length open_spans)
           (String.concat ", "
              (Hashtbl.fold
                 (fun id (name, _) acc ->
                   Printf.sprintf "%d (%s)" id name :: acc)
                 open_spans [])))
    else Ok !completed
  with Bad msg -> Error msg

let validate_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      validate_lines (read []))
