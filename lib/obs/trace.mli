(** Structured span tracing as JSON lines.

    A span wraps one engine entry point (a µ^k count, a certain-answer
    sweep, a chase, a pool fold). Each span emits two events to the
    sink:

    {v
    {"ev":"b","id":7,"name":"support.count","t":123456789,"dom":0}
    {"ev":"e","id":7,"name":"support.count","t":123999999,"dom":0,"a_k":"16"}
    v}

    [t] is a monotonic nanosecond timestamp ({!Clock}); [dom] the
    OCaml domain that emitted the event (spans from pool workers carry
    their worker's id); [a_*] keys are the caller-supplied attributes.
    Events are flat JSON objects — string or integer values only — one
    per line, so the file is greppable and trivially parseable.

    Tracing is disabled by default; {!span} then just runs its thunk
    (one atomic load, no allocation). Writes are serialized by a mutex
    around the line write, so events from concurrent domains never
    interleave mid-line. Completed spans also feed
    {!Metrics.observe_span} with their wall time. *)

val enable_file : string -> unit
(** Open (truncate) a sink file. Replaces any current sink. The sink
    is flushed and closed at [close] or process exit. *)

val enable_channel : ?close_channel:bool -> out_channel -> unit
(** Trace into an existing channel (e.g. [stderr]). [close_channel]
    (default false) transfers ownership to {!close}. *)

val close : unit -> unit
(** Flush and detach the sink. Idempotent; registered [at_exit]. *)

val enabled : unit -> bool

val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] emits the begin event, runs [f ()], emits the end
    event (attributes included, plus ["error"] if [f] raised — the
    exception is re-raised), and records the duration with
    {!Metrics.observe_span}. When tracing is off this is [f ()]. *)

val span_begin : string -> int
(** Low-level: emit a begin event, returning the span id ([0] when
    tracing is off). Prefer {!span}: ids are process-unique and ends
    are matched by id, but durations are only histogrammed by {!span}. *)

val span_end : ?attrs:(string * string) list -> id:int -> string -> unit
(** Emit the matching end event. No-op for [id = 0]. *)

(** {1 Validation}

    The checker used by [certainty trace-check], the test-suite and
    the CI gate: every line must parse as a flat JSON object with the
    event fields, every span must close exactly once with a
    non-decreasing timestamp, and no span may be left open. *)

val validate_lines : string list -> (int, string) result
(** [Ok n] for a well-formed trace containing [n] completed spans. *)

val validate_file : string -> (int, string) result
