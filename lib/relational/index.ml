(* Hash indexes over a relation: O(1) full-tuple membership plus
   per-column postings for selections. Built once from a Relation.t and
   immutable afterwards, so an index may be shared freely across
   domains (concurrent reads of an unmutated Hashtbl are safe). *)

type t = {
  arity : int;
  tuples : Tuple.t array; (* in Relation.to_list (= Tuple.compare) order *)
  members : (Tuple.t, unit) Hashtbl.t;
  columns : (Value.t, int list) Hashtbl.t array;
      (* columns.(i) : value ↦ rows (indexes into [tuples]) whose
         column [i] holds it, in increasing row order *)
}

let of_relation r =
  let arity = Relation.arity r in
  let tuples = Relation.to_array r in
  let n = Array.length tuples in
  let members = Hashtbl.create (max 16 (2 * n)) in
  Array.iter (fun t -> Hashtbl.replace members t ()) tuples;
  let columns =
    Array.init arity (fun _ -> Hashtbl.create (max 16 (2 * n)))
  in
  (* Walk rows backwards so each posting list comes out in increasing
     row order without a final reverse. *)
  for row = n - 1 downto 0 do
    let t = tuples.(row) in
    for col = 0 to arity - 1 do
      let v = Tuple.get t col in
      let prev = Option.value ~default:[] (Hashtbl.find_opt columns.(col) v) in
      Hashtbl.replace columns.(col) v (row :: prev)
    done
  done;
  { arity; tuples; members; columns }

let arity t = t.arity
let cardinal t = Array.length t.tuples
let mem t tuple = Hashtbl.mem t.members tuple

let mem_values t values =
  Array.length values = t.arity && Hashtbl.mem t.members (Tuple.unsafe_of_array values)

let postings t ~column v =
  if column < 0 || column >= t.arity then
    invalid_arg "Index.postings: column out of range"
  else Option.value ~default:[] (Hashtbl.find_opt t.columns.(column) v)

let column_cardinal t ~column v = List.length (postings t ~column v)

let select t bindings =
  List.iter
    (fun (col, _) ->
      if col < 0 || col >= t.arity then
        invalid_arg "Index.select: column out of range")
    bindings;
  match bindings with
  | [] -> Array.to_list t.tuples
  | (c0, v0) :: rest ->
      (* Start from the shortest posting list, then filter the other
         bound columns by direct access. *)
      let start, others =
        List.fold_left
          (fun ((bc, bv), others) (c, v) ->
            if
              column_cardinal t ~column:c v
              < column_cardinal t ~column:bc bv
            then ((c, v), (bc, bv) :: others)
            else ((bc, bv), (c, v) :: others))
          ((c0, v0), []) rest
      in
      let bc, bv = start in
      List.filter_map
        (fun row ->
          let tup = t.tuples.(row) in
          if
            List.for_all
              (fun (c, v) -> Value.equal (Tuple.get tup c) v)
              others
          then Some tup
          else None)
        (postings t ~column:bc bv)
