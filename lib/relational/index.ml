(* Hash indexes over a relation: O(1) full-tuple membership plus
   per-column postings for selections.

   The bulk of an index — the [base] below — is built once from a
   Relation.t and immutable afterwards, so it may be shared freely
   across domains (concurrent reads of an unmutated Hashtbl are safe).
   Single-tuple updates ({!add}/{!remove}) do not rebuild it: they are
   pure and return a new index sharing the same base plus a small
   overlay of added/removed tuples, consulted after the base on every
   probe. Once the overlay outgrows [overlay_cap] the live contents
   are compacted into a fresh base, amortizing the O(n) rebuild over
   [overlay_cap] updates. Un-updated indexes carry empty overlays, so
   the probe hot path pays only a [[] = []]-style check. *)

type base = {
  arity : int;
  tuples : Tuple.t array; (* in Relation.to_list (= Tuple.compare) order *)
  members : (Tuple.t, unit) Hashtbl.t;
  columns : (Value.t, int list) Hashtbl.t array;
      (* columns.(i) : value ↦ rows (indexes into [tuples]) whose
         column [i] holds it, in increasing row order *)
}

type t = {
  b : base;
  extra : Tuple.t list; (* added since the base, newest first, ∉ base *)
  gone : Tuple.t list; (* removed since the base, ∈ base *)
  card : int; (* live cardinality *)
}

let overlay_cap = 16

let build arity tuples =
  let n = Array.length tuples in
  let members = Hashtbl.create (max 16 (2 * n)) in
  Array.iter (fun t -> Hashtbl.replace members t ()) tuples;
  let columns = Array.init arity (fun _ -> Hashtbl.create (max 16 (2 * n))) in
  (* Walk rows backwards so each posting list comes out in increasing
     row order without a final reverse. *)
  for row = n - 1 downto 0 do
    let t = tuples.(row) in
    for col = 0 to arity - 1 do
      let v = Tuple.get t col in
      let prev = Option.value ~default:[] (Hashtbl.find_opt columns.(col) v) in
      Hashtbl.replace columns.(col) v (row :: prev)
    done
  done;
  { arity; tuples; members; columns }

let of_relation r =
  let b = build (Relation.arity r) (Relation.to_array r) in
  { b; extra = []; gone = []; card = Array.length b.tuples }

let arity t = t.b.arity
let cardinal t = t.card
let overlay t = List.length t.extra + List.length t.gone

let in_list tuple l = List.exists (fun u -> Tuple.equal u tuple) l

let mem t tuple =
  if Hashtbl.mem t.b.members tuple then not (in_list tuple t.gone)
  else in_list tuple t.extra

let mem_values t values =
  Array.length values = t.b.arity
  && mem t (Tuple.unsafe_of_array values)

(* Live tuples in deterministic order: surviving base rows in row
   order, then the added tuples oldest first. *)
let to_list t =
  let from_base =
    if t.gone = [] then Array.to_list t.b.tuples
    else
      Array.to_list t.b.tuples
      |> List.filter (fun tup -> not (in_list tup t.gone))
  in
  from_base @ List.rev t.extra

(* Compaction: fold the overlay into a fresh base, restoring the
   canonical Tuple.compare order of [of_relation]. *)
let compact t =
  let live = List.sort Tuple.compare (to_list t) in
  let b = build t.b.arity (Array.of_list live) in
  { b; extra = []; gone = []; card = Array.length b.tuples }

let maybe_compact t = if overlay t > overlay_cap then compact t else t

let add t tuple =
  if Tuple.arity tuple <> t.b.arity then
    invalid_arg "Index.add: arity mismatch"
  else if mem t tuple then t
  else if Hashtbl.mem t.b.members tuple then
    (* Present in the base, currently shadowed by [gone]: resurrect. *)
    { t with
      gone = List.filter (fun u -> not (Tuple.equal u tuple)) t.gone;
      card = t.card + 1
    }
  else
    maybe_compact { t with extra = tuple :: t.extra; card = t.card + 1 }

let remove t tuple =
  if not (mem t tuple) then t
  else if in_list tuple t.extra then
    { t with
      extra = List.filter (fun u -> not (Tuple.equal u tuple)) t.extra;
      card = t.card - 1
    }
  else maybe_compact { t with gone = tuple :: t.gone; card = t.card - 1 }

let check_column t column name =
  if column < 0 || column >= t.b.arity then
    invalid_arg (name ^ ": column out of range")

let base_postings b ~column v =
  Option.value ~default:[] (Hashtbl.find_opt b.columns.(column) v)

let postings t ~column v =
  check_column t column "Index.postings";
  let from_base =
    List.filter_map
      (fun row ->
        let tup = t.b.tuples.(row) in
        if t.gone <> [] && in_list tup t.gone then None else Some tup)
      (base_postings t.b ~column v)
  in
  from_base
  @ List.filter
      (fun tup -> Value.equal (Tuple.get tup column) v)
      (List.rev t.extra)

let column_cardinal t ~column v = List.length (postings t ~column v)

let select t bindings =
  List.iter
    (fun (col, _) -> check_column t col "Index.select")
    bindings;
  match bindings with
  | [] -> to_list t
  | (c0, v0) :: rest ->
      (* Start from the shortest base posting list, then filter the
         other bound columns by direct access; the base-length
         comparison is a heuristic, so the (small) overlay is ignored
         when picking the start column. *)
      let posting_len (c, v) = List.length (base_postings t.b ~column:c v) in
      let start, others =
        List.fold_left
          (fun (best, others) cand ->
            if posting_len cand < posting_len best then (cand, best :: others)
            else (best, cand :: others))
          ((c0, v0), []) rest
      in
      let bc, bv = start in
      let matches tup =
        List.for_all (fun (c, v) -> Value.equal (Tuple.get tup c) v) others
      in
      let from_base =
        List.filter_map
          (fun row ->
            let tup = t.b.tuples.(row) in
            if matches tup && not (t.gone <> [] && in_list tup t.gone) then
              Some tup
            else None)
          (base_postings t.b ~column:bc bv)
      in
      from_base
      @ List.filter
          (fun tup ->
            Value.equal (Tuple.get tup bc) bv && matches tup)
          (List.rev t.extra)
