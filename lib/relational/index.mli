(** Hash indexes over a relation.

    {!Relation.t} is a balanced set — membership is [O(log n)] with a
    full-tuple comparison per level. The evaluation kernels probe
    relations millions of times with freshly built tuples, so this
    module trades one [O(n)] build for [O(1)] membership and indexed
    selections: a full-tuple hash table plus one posting-list table per
    column.

    An index value is immutable and may be shared across OCaml 5
    domains (reads of an unmutated hash table race with nothing). It is
    a snapshot: it does {e not} follow later updates of the relation it
    was built from. Single-tuple maintenance is {e incremental}:
    {!add} and {!remove} are pure and return a new index that shares
    the hashed bulk of the original plus a small overlay of
    added/removed tuples — no rebuild per update. The overlay is
    compacted into a fresh base automatically once it outgrows a fixed
    cap, so probe overhead stays bounded and un-updated indexes pay
    (almost) nothing. *)

type t

val of_relation : Relation.t -> t

val arity : t -> int
val cardinal : t -> int

val add : t -> Tuple.t -> t
(** The index with the tuple present; [t] itself when already a member.
    O(overlay) — shares the original's hashed base.
    @raise Invalid_argument on arity mismatch. *)

val remove : t -> Tuple.t -> t
(** The index without the tuple; [t] itself when not a member.
    O(overlay + postings touched at compaction). *)

val overlay : t -> int
(** Number of pending overlay entries (added + removed since the last
    base build); 0 for a freshly built or just-compacted index.
    Exposed for tests and diagnostics. *)

val mem : t -> Tuple.t -> bool
(** [O(1)] expected; tuples of the wrong arity are never members. *)

val mem_values : t -> Value.t array -> bool
(** Membership probed directly with a value array, avoiding the
    {!Tuple.of_array} copy. The array is only read. *)

val postings : t -> column:int -> Value.t -> Tuple.t list
(** Live tuples whose [column] holds the value: base tuples in
    {!Relation.to_list} row order, then tuples added since the base in
    insertion order. @raise Invalid_argument on a bad column. *)

val column_cardinal : t -> column:int -> Value.t -> int
(** [List.length (postings …)]. *)

val select : t -> (int * Value.t) list -> Tuple.t list
(** Tuples matching all [(column, value)] bindings — the selection
    [σ_{c₁=v₁,…}(R)] served from the smallest posting list, in the same
    order as {!postings}. [select t \[\]] lists every live tuple.
    @raise Invalid_argument on a bad column. *)

val to_list : t -> Tuple.t list
(** Every live tuple, same order as [select t \[\]]. *)
