(** Hash indexes over a relation.

    {!Relation.t} is a balanced set — membership is [O(log n)] with a
    full-tuple comparison per level. The evaluation kernels probe
    relations millions of times with freshly built tuples, so this
    module trades one [O(n)] build for [O(1)] membership and indexed
    selections: a full-tuple hash table plus one posting-list table per
    column.

    An index is immutable after {!of_relation} and may be shared across
    OCaml 5 domains (reads of an unmutated hash table race with
    nothing). It is a snapshot: it does {e not} follow later updates of
    the relation it was built from. *)

type t

val of_relation : Relation.t -> t

val arity : t -> int
val cardinal : t -> int

val mem : t -> Tuple.t -> bool
(** [O(1)] expected; tuples of the wrong arity are never members. *)

val mem_values : t -> Value.t array -> bool
(** Membership probed directly with a value array, avoiding the
    {!Tuple.of_array} copy. The array is only read. *)

val postings : t -> column:int -> Value.t -> int list
(** Rows (positions in {!Relation.to_list} order) whose [column] holds
    the value, increasing. @raise Invalid_argument on a bad column. *)

val column_cardinal : t -> column:int -> Value.t -> int
(** [List.length (postings …)]. *)

val select : t -> (int * Value.t) list -> Tuple.t list
(** Tuples matching all [(column, value)] bindings, in row order:
    the selection [σ_{c₁=v₁,…}(R)] served from the smallest posting
    list. [select t \[\]] lists every tuple.
    @raise Invalid_argument on a bad column. *)
