module SMap = Map.Make (String)

type t = {
  gen : int;
  schema : Schema.t;
  relations : Relation.t SMap.t;
  dom : (int list * int list) option Atomic.t;
      (* memoized (Const(D), Null(D)), both sorted: filled on first
         demand, merged through add_tuple, dropped by every other
         update. Identity metadata like [gen] — ignored by equal and
         compare, never shared between instances. *)
}

(* Monotone generation stamps. Every instance value carries a
   process-unique stamp, allocated from one atomic counter at each
   construction (including every functional update): two instances
   share a stamp only when one IS the other. Caches key derived
   structures (kernel databases, compiled kernels) by the stamp instead
   of by physical equality — a mutation path that produces a new
   instance can never silently reuse state derived from the old one.
   The stamp is identity metadata, not content: {!equal}, {!compare}
   and {!isomorphic} ignore it. *)
let gen_counter = Atomic.make 1
let next_gen () = Atomic.fetch_and_add gen_counter 1

let generation t = t.gen

(* Active-domain memo. Computing Const(D)/Null(D) is a full scan of
   every tuple; evaluation paths (anchor sets, µ^k null lists, naive
   quantifier ranges) ask for them on every call, so each instance
   value computes them at most once and publishes the result through
   its own atomic cell. An insert merges the parent's memo instead of
   invalidating it — the domain only grows; a delete cannot know
   whether a value still occurs elsewhere and drops the memo, so the
   next demand pays one rescan. *)
let merge_sorted xs ys =
  let rec go xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | x :: xs', y :: ys' ->
        let c = Int.compare x y in
        if c = 0 then x :: go xs' ys'
        else if c < 0 then x :: go xs' ys
        else y :: go xs ys'
  in
  go xs ys

let dom_after_add dom tuple =
  match Atomic.get dom with
  | None -> None
  | Some (cs, ns) ->
      Some
        ( merge_sorted cs (List.sort_uniq Int.compare (Tuple.constants tuple)),
          merge_sorted ns (List.sort_uniq Int.compare (Tuple.nulls tuple)) )

let empty schema =
  let relations =
    List.fold_left
      (fun m name -> SMap.add name (Relation.empty (Schema.arity schema name)) m)
      SMap.empty (Schema.relations schema)
  in
  { gen = next_gen (); schema; relations; dom = Atomic.make (Some ([], [])) }

let schema t = t.schema

let relation t name =
  match SMap.find_opt name t.relations with
  | Some r -> r
  | None -> raise Not_found

let set_relation name r t =
  match Schema.arity_opt t.schema name with
  | None -> invalid_arg ("Instance.set_relation: unknown relation " ^ name)
  | Some a when a <> Relation.arity r ->
      invalid_arg ("Instance.set_relation: arity mismatch for " ^ name)
  | Some _ ->
      { t with
        gen = next_gen ();
        relations = SMap.add name r t.relations;
        dom = Atomic.make None
      }

let add_tuple name tuple t =
  match SMap.find_opt name t.relations with
  | None -> invalid_arg ("Instance.add_tuple: unknown relation " ^ name)
  | Some r ->
      { t with
        gen = next_gen ();
        relations = SMap.add name (Relation.add tuple r) t.relations;
        dom = Atomic.make (dom_after_add t.dom tuple)
      }

let remove_tuple name tuple t =
  match SMap.find_opt name t.relations with
  | None -> invalid_arg ("Instance.remove_tuple: unknown relation " ^ name)
  | Some r ->
      { t with
        gen = next_gen ();
        relations = SMap.add name (Relation.remove tuple r) t.relations;
        dom = Atomic.make None
      }

let of_rows schema rows =
  List.fold_left
    (fun inst (name, tuples) ->
      List.fold_left
        (fun inst row -> add_tuple name (Tuple.of_list row) inst)
        inst tuples)
    (empty schema) rows

let mem t name tuple = Relation.mem tuple (relation t name)

let fold f t acc =
  SMap.fold
    (fun name r acc -> Relation.fold (fun tuple acc -> f name tuple acc) r acc)
    t.relations acc

let total_tuples t = fold (fun _ _ n -> n + 1) t 0

let domains t =
  match Atomic.get t.dom with
  | Some d -> d
  | None ->
      let cs, ns =
        fold
          (fun _ tuple (cs, ns) ->
            (Tuple.constants tuple @ cs, Tuple.nulls tuple @ ns))
          t ([], [])
      in
      let d =
        (List.sort_uniq Int.compare cs, List.sort_uniq Int.compare ns)
      in
      (* A racing demand computes the same value; last write wins. *)
      Atomic.set t.dom (Some d);
      d

let nulls t = snd (domains t)
let constants t = fst (domains t)

let adom t =
  List.map Value.const (constants t) @ List.map Value.null (nulls t)

let null_count t = List.length (nulls t)
let is_complete t = nulls t = []
let max_constant t = List.fold_left max 0 (constants t)
let constant_count t = List.length (constants t)

let map_values f t =
  { t with
    gen = next_gen ();
    relations = SMap.map (Relation.map_values f) t.relations;
    dom = Atomic.make None
  }

let subst_nulls f t =
  map_values (function Value.Const _ as c -> c | Value.Null i -> f i) t

let union a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Instance.union: different schemas"
  else
    { a with
      gen = next_gen ();
      relations =
        SMap.merge
          (fun _ ra rb ->
            match (ra, rb) with
            | Some ra, Some rb -> Some (Relation.union ra rb)
            | Some r, None | None, Some r -> Some r
            | None, None -> None)
          a.relations b.relations;
      dom = Atomic.make None
    }

let equal a b = SMap.equal Relation.equal a.relations b.relations

let compare a b =
  SMap.compare Relation.compare a.relations b.relations

let isomorphic a b =
  let na = nulls a and nb = nulls b in
  List.length na = List.length nb
  && begin
       let try_map assoc =
         let f i = Value.null (List.assoc i assoc) in
         equal (subst_nulls f a) b
       in
       List.exists
         (fun perm -> try_map (List.combine na perm))
         (Arith.Combinat.permutations nb)
     end

let pp fmt t =
  let names = Schema.relations t.schema in
  let non_empty = List.filter (fun n -> not (Relation.is_empty (relation t n))) names in
  if non_empty = [] then Format.fprintf fmt "(empty instance)"
  else
    List.iteri
      (fun idx name ->
        if idx > 0 then Format.pp_print_newline fmt ();
        let r = relation t name in
        let rows =
          List.map
            (fun tup -> List.map Value.to_string (Tuple.to_list tup))
            (Relation.to_list r)
        in
        let arity = Relation.arity r in
        let header =
          match Schema.attrs t.schema name with
          | Some attrs -> attrs
          | None -> List.init arity (fun i -> "col" ^ string_of_int i)
        in
        let widths = Array.of_list (List.map String.length header) in
        List.iter
          (fun row ->
            List.iteri
              (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
              row)
          rows;
        let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
        Format.fprintf fmt "%s:@." name;
        if arity > 0 then begin
          Format.fprintf fmt "  | %s |@."
            (String.concat " | " (List.mapi pad header));
          Format.fprintf fmt "  |%s|@."
            (String.concat "+"
               (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)));
          List.iter
            (fun row ->
              Format.fprintf fmt "  | %s |@."
                (String.concat " | " (List.mapi pad row)))
            rows
        end
        else Format.fprintf fmt "  (nullary, %d tuple(s))@." (Relation.cardinal r))
      non_empty

let to_string t = Format.asprintf "%a" pp t
