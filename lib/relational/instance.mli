(** Incomplete database instances.

    An instance interprets every relation name of its schema as a finite
    relation over [Const ∪ Null] (paper, §2). An instance with no nulls
    is {e complete}. The semantics [[D]] of an incomplete instance is
    the set of complete instances [v(D)] for valuations [v] — that
    machinery lives in [certainty.incomplete]; this module is the purely
    structural substrate. *)

type t

(** {1 Construction} *)

val empty : Schema.t -> t

val of_rows : Schema.t -> (string * Value.t list list) list -> t
(** [of_rows schema [("R", rows); …]]. Relations not listed are empty.
    @raise Invalid_argument on unknown relations or arity mismatches. *)

val add_tuple : string -> Tuple.t -> t -> t
(** @raise Invalid_argument on unknown relation or arity mismatch. *)

val remove_tuple : string -> Tuple.t -> t -> t
(** Removes the tuple if present (no-op content otherwise; the result
    carries a fresh {!generation} either way).
    @raise Invalid_argument on unknown relation. *)

val set_relation : string -> Relation.t -> t -> t
(** @raise Invalid_argument on unknown relation or arity mismatch. *)

(** {1 Access} *)

val generation : t -> int
(** A process-unique, monotone stamp allocated at construction: every
    instance value — including the result of every functional update
    ({!add_tuple}, {!remove_tuple}, {!set_relation}, {!map_values},
    {!union}) — gets a fresh stamp. Caches key instance-derived state
    (kernel databases, compiled kernels) by this stamp: equal stamps
    guarantee the same underlying value, so a stale derivation can
    never be served for a mutated database. The stamp is identity
    metadata only; {!equal}/{!compare}/{!isomorphic} ignore it. *)

val schema : t -> Schema.t

val relation : t -> string -> Relation.t
(** @raise Not_found on unknown relation names. *)

val mem : t -> string -> Tuple.t -> bool
val fold : (string -> Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val total_tuples : t -> int

(** {1 Domains}

    Both lists are memoized per instance value: the first demand scans
    every tuple, later demands are O(1). [add_tuple] carries the memo
    forward (the domain only grows under insertion); a removal or a
    value map drops it, and the next demand rescans. The memo is
    identity metadata like the generation stamp — invisible to
    {!equal} and {!compare}. *)

val nulls : t -> int list
(** [Null(D)]: identifiers of nulls occurring, sorted, deduplicated. *)

val constants : t -> int list
(** [Const(D)]: codes of constants occurring, sorted, deduplicated. *)

val adom : t -> Value.t list
(** Active domain: all values occurring, constants first. *)

val null_count : t -> int
val is_complete : t -> bool

val max_constant : t -> int
(** Largest constant code occurring; [0] when none. Constant codes are
    process-global intern order, so this depends on what else the
    process has parsed — use {!constant_count} for anything that must
    be a function of the instance's content alone. *)

val constant_count : t -> int
(** [|Const(D)|], the number of distinct constants — content-determined,
    identical in every process that holds this instance. *)

(** {1 Transformation} *)

val map_values : (Value.t -> Value.t) -> t -> t

val subst_nulls : (int -> Value.t) -> t -> t
(** Replaces each null [⊥i] by the image of [i] (constants unchanged). *)

val union : t -> t -> t
(** Relation-wise union; schemas must be equal.
    @raise Invalid_argument otherwise. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int

val isomorphic : t -> t -> bool
(** Equality up to a bijective renaming of nulls (used, e.g., to state
    chase confluence; the paper notes the chase result is unique "up to
    renaming of nulls"). Exponential in the number of nulls; intended
    for small instances and tests. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering with one table per non-empty relation. *)

val to_string : t -> string
