(* The intern tables are global mutable state shared by every domain of
   a parallel fold (Exec.Pool), so all access goes through one mutex.
   The evaluation hot paths only handle integer codes and never intern,
   so the lock is uncontended where performance matters. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 64
let reverse : (int, string) Hashtbl.t = Hashtbl.create 64
let next = ref 1
let lock = Mutex.create ()

let intern name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some code -> code
      | None ->
          let code = !next in
          incr next;
          Hashtbl.add table name code;
          Hashtbl.add reverse code name;
          code)

let name_of code = Mutex.protect lock (fun () -> Hashtbl.find_opt reverse code)

let to_string code =
  match name_of code with Some n -> n | None -> "#" ^ string_of_int code

let fresh () =
  Mutex.protect lock (fun () ->
      let code = !next in
      incr next;
      code)

let registered_count () = Mutex.protect lock (fun () -> !next - 1)

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset table;
      Hashtbl.reset reverse;
      next := 1)
