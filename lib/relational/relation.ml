module TSet = Set.Make (Tuple)

type t = { arity : int; tuples : TSet.t }

let empty arity =
  if arity < 0 then invalid_arg "Relation.empty: negative arity"
  else { arity; tuples = TSet.empty }

let arity r = r.arity

let add t r =
  if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation.add: tuple of arity %d into relation of arity %d"
         (Tuple.arity t) r.arity)
  else { r with tuples = TSet.add t r.tuples }

let remove t r = { r with tuples = TSet.remove t r.tuples }
let mem t r = TSet.mem t r.tuples
let of_list arity ts = List.fold_left (fun r t -> add t r) (empty arity) ts
let of_rows arity rows = of_list arity (List.map Tuple.of_list rows)
let to_list r = TSet.elements r.tuples

let to_array r =
  (* One traversal, no intermediate list: fill left to right in
     TSet.fold (= increasing element) order. *)
  let n = TSet.cardinal r.tuples in
  if n = 0 then [||]
  else begin
    let arr = Array.make n Tuple.empty in
    let i = ref 0 in
    TSet.iter
      (fun t ->
        arr.(!i) <- t;
        incr i)
      r.tuples;
    arr
  end

let cardinal r = TSet.cardinal r.tuples
let is_empty r = TSet.is_empty r.tuples
let subset a b = TSet.subset a.tuples b.tuples
let equal a b = a.arity = b.arity && TSet.equal a.tuples b.tuples

let compare a b =
  let c = Int.compare a.arity b.arity in
  if c <> 0 then c else TSet.compare a.tuples b.tuples

let union a b = { a with tuples = TSet.union a.tuples b.tuples }
let inter a b = { a with tuples = TSet.inter a.tuples b.tuples }
let diff a b = { a with tuples = TSet.diff a.tuples b.tuples }
let filter f r = { r with tuples = TSet.filter f r.tuples }
let fold f r acc = TSet.fold f r.tuples acc
let iter f r = TSet.iter f r.tuples
let exists f r = TSet.exists f r.tuples
let for_all f r = TSet.for_all f r.tuples

let map f r =
  fold
    (fun t acc ->
      let t' = f t in
      if Tuple.arity t' <> r.arity then
        invalid_arg "Relation.map: function changed tuple arity"
      else add t' acc)
    r (empty r.arity)

let map_values f r = map (Tuple.map f) r

let nulls r =
  fold (fun t acc -> Tuple.nulls t @ acc) r []
  |> List.sort_uniq Int.compare

let constants r =
  fold (fun t acc -> Tuple.constants t @ acc) r []
  |> List.sort_uniq Int.compare

let project positions r =
  let width = List.length positions in
  fold
    (fun t acc ->
      let projected =
        Tuple.of_list (List.map (fun i -> Tuple.get t i) positions)
      in
      add projected acc)
    r (empty width)

let pp fmt r =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun t ->
      if !first then first := false else Format.pp_print_string fmt ", ";
      Tuple.pp fmt t)
    r;
  Format.fprintf fmt "}"
