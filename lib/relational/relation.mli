(** Relations: finite sets of tuples of a fixed arity.

    A relation over [Const ∪ Null] — the interpretation of one relation
    symbol in an incomplete instance (paper, §2). Backed by a balanced
    set; all operations are purely functional. *)

type t

val empty : int -> t
(** The empty relation of the given arity. @raise Invalid_argument on
    negative arity. *)

val arity : t -> int

val add : Tuple.t -> t -> t
(** @raise Invalid_argument on arity mismatch. *)

val remove : Tuple.t -> t -> t
val mem : Tuple.t -> t -> bool
val of_list : int -> Tuple.t list -> t
val of_rows : int -> Value.t list list -> t
val to_list : t -> Tuple.t list
(** In increasing {!Tuple.compare} order. *)

val to_array : t -> Tuple.t array
(** Same order as {!to_list}, without building an intermediate list —
    the fast path for bulk consumers ({!Index.of_relation}). *)

val cardinal : t -> int
val is_empty : t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val filter : (Tuple.t -> bool) -> t -> t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool

val map : (Tuple.t -> Tuple.t) -> t -> t
(** Applies a tuple transformation and rebuilds the set (the image may
    be smaller when the function identifies tuples).
    @raise Invalid_argument if the function changes the arity. *)

val map_values : (Value.t -> Value.t) -> t -> t

val nulls : t -> int list
(** Null identifiers occurring, deduplicated, sorted. *)

val constants : t -> int list
(** Constant codes occurring, deduplicated, sorted. *)

val project : int list -> t -> t
(** [project positions r] keeps the given 0-based columns, in order. *)

val pp : Format.formatter -> t -> unit
