type t = Value.t array

let of_list = Array.of_list
let of_array = Array.copy
let unsafe_of_array (a : Value.t array) : t = a
let to_list = Array.to_list
let to_array = Array.copy
let empty : t = [||]
let arity = Array.length
let get (t : t) i = t.(i)

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && begin
       let rec go i =
         i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1))
       in
       go 0
     end

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t land max_int

let dedup_keep_order l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let nulls (t : t) =
  Array.to_list t |> List.filter_map Value.null_id |> dedup_keep_order

let constants (t : t) =
  Array.to_list t |> List.filter_map Value.const_code |> dedup_keep_order

let has_null (t : t) = Array.exists Value.is_null t
let map f (t : t) : t = Array.map f t
let consts names = Array.of_list (List.map Value.named names)

let pp fmt (t : t) =
  Format.pp_print_string fmt "(";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.pp_print_string fmt ", ";
      Value.pp fmt v)
    t;
  Format.pp_print_string fmt ")"

let to_string t = Format.asprintf "%a" pp t
