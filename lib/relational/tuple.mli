(** Tuples of database values.

    A tuple is an immutable array of {!Value.t}. Tuples are the elements
    of relations and also the candidate answers to queries ([m]-tuples
    over the active domain, possibly containing nulls — the paper uses
    the permissive notion of certain answers with nulls, after Lipski). *)

type t

val of_list : Value.t list -> t
val of_array : Value.t array -> t

val unsafe_of_array : Value.t array -> t
(** Adopts the array without copying. The caller must not mutate it
    while the tuple is live — reserved for hot paths (the compiled
    evaluation kernel probes indexes with a reused buffer). *)

val to_list : t -> Value.t list
val to_array : t -> Value.t array

val empty : t
(** The unique 0-ary tuple [()]. *)

val arity : t -> int
val get : t -> int -> Value.t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val nulls : t -> int list
(** Identifiers of the nulls occurring, without duplicates, in order of
    first occurrence. *)

val constants : t -> int list
(** Codes of the constants occurring, without duplicates. *)

val has_null : t -> bool

val map : (Value.t -> Value.t) -> t -> t

val consts : string list -> t
(** Convenience: a tuple of named constants. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
