type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect addr =
  let fd =
    match addr with
    | Daemon.Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
        fd
    | Daemon.Tcp (host, port) ->
        let ip = Daemon.resolve_ipv4 host in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_INET (ip, port))
         with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
        fd
  in
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(* The deterministic backoff schedule, kept separate from the jittered
   sleep so tests can check growth and cap without racing a clock. *)
let retry_delays ?(delay = 0.1) ?(backoff = 2.0) ?(cap = 2.0) attempts =
  List.init (max 0 attempts) (fun i ->
      Float.min cap (delay *. (backoff ** float_of_int i)))

let jitter =
  (* One lazily seeded PRNG per process: jitter only has to decorrelate
     concurrent reconnectors, not be reproducible. *)
  let st = lazy (Random.State.make_self_init ()) in
  let lock = Mutex.create () in
  fun d ->
    Mutex.protect lock (fun () ->
        d *. (0.75 +. (0.5 *. Random.State.float (Lazy.force st) 1.0)))

let connect_retry ?(attempts = 50) ?(delay = 0.1) ?(backoff = 2.0) ?(cap = 2.0)
    addr =
  let rec go i n =
    match connect addr with
    | conn -> conn
    | exception Unix.Unix_error _ when n > 1 ->
        Unix.sleepf (jitter (Float.min cap (delay *. (backoff ** float_of_int i))));
        go (i + 1) (n - 1)
  in
  go 0 (max 1 attempts)

let set_timeout c seconds =
  Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO seconds;
  Unix.setsockopt_float c.fd Unix.SO_SNDTIMEO seconds

let shutdown c =
  try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let send_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv_line c =
  match input_line c.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _) -> None

let request c line =
  send_line c line;
  recv_line c

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let with_conn addr f =
  let c = connect addr in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
