type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect addr =
  let fd =
    match addr with
    | Daemon.Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
        fd
    | Daemon.Tcp (host, port) ->
        let ip = Daemon.resolve_ipv4 host in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_INET (ip, port))
         with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
        fd
  in
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_retry ?(attempts = 50) ?(delay = 0.1) addr =
  let rec go n =
    match connect addr with
    | conn -> conn
    | exception Unix.Unix_error _ when n > 1 ->
        Unix.sleepf delay;
        go (n - 1)
  in
  go (max 1 attempts)

let send_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv_line c =
  match input_line c.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _) -> None

let request c line =
  send_line c line;
  recv_line c

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let with_conn addr f =
  let c = connect addr in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
