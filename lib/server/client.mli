(** A minimal blocking client for the wire protocol — the [certainty
    client] subcommand, the load generators of [bench --serve] and the
    CI smoke test all speak through this. One request line out, one
    response line back, in order, over a single connection. *)

type conn

val connect : Daemon.addr -> conn
(** @raise Unix.Unix_error when the server is not there.
    @raise Failure when a TCP host name does not resolve. *)

val connect_retry :
  ?attempts:int -> ?delay:float -> ?backoff:float -> ?cap:float ->
  Daemon.addr -> conn
(** Retry [connect] with exponential backoff — for scripts that just
    started the server and are waiting for the socket, and for the
    router's shard-reconnect loop. Attempt [i] (0-based) sleeps
    [min cap (delay *. backoff^i)] scaled by ±25% jitter (defaults:
    50 attempts, [delay = 0.1], [backoff = 2.0], [cap = 2.0]).
    @raise Unix.Unix_error when the last attempt still fails. *)

val retry_delays :
  ?delay:float -> ?backoff:float -> ?cap:float -> int -> float list
(** The jitter-free schedule [connect_retry] draws from:
    [retry_delays n] is the capped geometric series of [n] sleeps. *)

val set_timeout : conn -> float -> unit
(** Bound every subsequent send/receive on the connection by [seconds]
    ([SO_RCVTIMEO]/[SO_SNDTIMEO]); a timed-out read surfaces as
    [recv_line = None]. *)

val shutdown : conn -> unit
(** [Unix.shutdown] both directions, waking any thread blocked on the
    connection; never raises. Follow with {!close}. *)

val send_line : conn -> string -> unit
val recv_line : conn -> string option
(** [None] on EOF (server hung up). *)

val request : conn -> string -> string option
(** [send_line] then [recv_line]. *)

val close : conn -> unit

val with_conn : Daemon.addr -> (conn -> 'a) -> 'a
(** Connect, run, always close. *)
