(** A minimal blocking client for the wire protocol — the [certainty
    client] subcommand, the load generators of [bench --serve] and the
    CI smoke test all speak through this. One request line out, one
    response line back, in order, over a single connection. *)

type conn

val connect : Daemon.addr -> conn
(** @raise Unix.Unix_error when the server is not there.
    @raise Failure when a TCP host name does not resolve. *)

val connect_retry : ?attempts:int -> ?delay:float -> Daemon.addr -> conn
(** Retry [connect] (default 50 attempts, 0.1s apart) — for scripts
    that just started the server and are waiting for the socket.
    @raise Unix.Unix_error when the last attempt still fails. *)

val send_line : conn -> string -> unit
val recv_line : conn -> string option
(** [None] on EOF (server hung up). *)

val request : conn -> string -> string option
(** [send_line] then [recv_line]. *)

val close : conn -> unit

val with_conn : Daemon.addr -> (conn -> 'a) -> 'a
(** Connect, run, always close. *)
