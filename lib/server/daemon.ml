module Metrics = Obs.Metrics

type addr = Unix_sock of string | Tcp of string * int

type config = {
  addr : addr;
  jobs : int option;
  service_threads : int;
  max_queue : int;
  deadline_ms : int option;
  max_sessions : int;
}

let default_config addr =
  { addr;
    jobs = None;
    service_threads = 4;
    max_queue = 64;
    deadline_ms = None;
    max_sessions = 16
  }

(* A connection. Writes are serialized by [wlock]; [closed] guards the
   file descriptor so shutdown/close happen exactly once — never on a
   descriptor number the kernel may have already reused. *)
type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t;
  mutable closed : bool;
}

type job = { req : Wire.request; jconn : conn; deadline_ns : int64 option }

type t = {
  cfg : config;
  sessions : Session.t;
  lock : Mutex.t;
  queue : job Queue.t;
  nonempty : Condition.t;  (* workers wait here for jobs *)
  idle : Condition.t;  (* drain waits here for queue empty ∧ inflight 0 *)
  mutable inflight : int;
  mutable admission_closed : bool;  (* set under [lock] when draining *)
  mutable stop_workers : bool;
  draining : bool Atomic.t;  (* fast path for health/readers *)
  wake_r : Unix.file_descr;  (* self-pipe: signal handler → listener *)
  wake_w : Unix.file_descr;
  listen_fd : Unix.file_descr;
  sock_path : string option;  (* Unix socket file to unlink on drain *)
  mutable conns : conn list;  (* under [lock] *)
  mutable readers : Thread.t list;  (* under [lock] *)
  mutable workers : Thread.t list;
  mutable listener : Thread.t option;
}

(* ------------------------------------------------------------------ *)
(* Connection plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let send conn line =
  Mutex.protect conn.wlock (fun () ->
      if not conn.closed then
        try
          output_string conn.oc line;
          output_char conn.oc '\n';
          flush conn.oc
        with Sys_error _ -> ())
(* A dead peer surfaces as Sys_error (SIGPIPE is ignored); the reader
   thread sees the hangup on its side and cleans up. *)

let close_conn conn =
  Mutex.protect conn.wlock (fun () ->
      if not conn.closed then begin
        conn.closed <- true;
        (try flush conn.oc with Sys_error _ -> ());
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)

let shutdown_conn conn =
  Mutex.protect conn.wlock (fun () ->
      if not conn.closed then
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())

let respond_error conn ~id err msg = send conn (Wire.error_line ~id err msg)

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let deadline_guard deadline_ns () =
  if Int64.compare (Obs.Clock.now_ns ()) deadline_ns > 0 then
    raise Service.Deadline

let process t job =
  let id = job.req.Wire.id and op = job.req.Wire.op in
  let expired =
    match job.deadline_ns with
    | Some d -> Int64.compare (Obs.Clock.now_ns ()) d > 0
    | None -> false
  in
  if expired then begin
    (* Spent its whole budget waiting in the queue. *)
    Metrics.incr Metrics.serve_deadline_exceeded;
    respond_error job.jconn ~id Wire.Deadline_exceeded "deadline exceeded"
  end
  else begin
    let guard = Option.map deadline_guard job.deadline_ns in
    let t0 = Obs.Clock.now_ns () in
    let outcome =
      Obs.Trace.span "serve.request"
        ~attrs:
          [ ("op", op); ("id", match id with Some i -> i | None -> "") ]
        (fun () ->
          Service.handle ~sessions:t.sessions ?jobs:t.cfg.jobs ?guard job.req)
    in
    (* Trace.span only feeds the histogram when a trace sink is open;
       the service's latency distribution must not depend on that. *)
    Metrics.observe_span ("serve." ^ op)
      (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0));
    match outcome with
    | Ok payload -> send job.jconn (Wire.ok_line ~id ~op payload)
    | Error (Wire.Deadline_exceeded, msg) ->
        Metrics.incr Metrics.serve_deadline_exceeded;
        respond_error job.jconn ~id Wire.Deadline_exceeded msg
    | Error (err, msg) -> respond_error job.jconn ~id err msg
  end

let worker_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    let rec take () =
      match Queue.take_opt t.queue with
      | Some job -> Some job
      | None ->
          if t.stop_workers then None
          else begin
            Condition.wait t.nonempty t.lock;
            take ()
          end
    in
    match take () with
    | None -> Mutex.unlock t.lock
    | Some job ->
        t.inflight <- t.inflight + 1;
        Mutex.unlock t.lock;
        (try process t job
         with e ->
           (* Belt and braces: Service.handle already catches; anything
              that still escapes must not kill the worker. *)
           respond_error job.jconn ~id:job.req.Wire.id Wire.Internal_error
             (Printexc.to_string e));
        Mutex.lock t.lock;
        t.inflight <- t.inflight - 1;
        if Queue.is_empty t.queue && t.inflight = 0 then
          Condition.broadcast t.idle;
        Mutex.unlock t.lock;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)
(* ------------------------------------------------------------------ *)

let health_line t req =
  let queue_len, inflight =
    Mutex.protect t.lock (fun () -> (Queue.length t.queue, t.inflight))
  in
  Wire.ok_line ~id:req.Wire.id ~op:"health"
    [ ( "status",
        Wire.S (if Atomic.get t.draining then "draining" else "serving") );
      ("sessions", Wire.I (Session.count t.sessions));
      ("queue", Wire.I queue_len);
      ("inflight", Wire.I inflight);
      ("workers", Wire.I t.cfg.service_threads);
      ("max_queue", Wire.I t.cfg.max_queue)
    ]

let admit t job =
  Mutex.protect t.lock (fun () ->
      if t.admission_closed then `Draining
      else if Queue.length t.queue >= t.cfg.max_queue then `Full
      else begin
        Queue.add job t.queue;
        Condition.signal t.nonempty;
        `Admitted
      end)

let handle_line t conn line =
  Metrics.incr Metrics.serve_requests;
  match Wire.parse_request line with
  | Error msg ->
      Metrics.incr Metrics.serve_parse_errors;
      respond_error conn ~id:None Wire.Parse_error msg
  | Ok req when req.Wire.op = "health" -> send conn (health_line t req)
  | Ok req when Atomic.get t.draining ->
      respond_error conn ~id:req.Wire.id Wire.Shutting_down
        "server is draining"
  | Ok req -> (
      let deadline_ms =
        match Wire.int_field req "deadline_ms" with
        | Some ms -> Some ms
        | None -> t.cfg.deadline_ms
      in
      let deadline_ns =
        match deadline_ms with
        | Some ms when ms > 0 ->
            Some
              (Int64.add (Obs.Clock.now_ns ())
                 (Int64.mul (Int64.of_int ms) 1_000_000L))
        | _ -> None
      in
      match admit t { req; jconn = conn; deadline_ns } with
      | `Admitted -> ()
      | `Full ->
          Metrics.incr Metrics.serve_overloaded;
          respond_error conn ~id:req.Wire.id Wire.Overloaded
            "admission queue full"
      | `Draining ->
          respond_error conn ~id:req.Wire.id Wire.Shutting_down
            "server is draining")

let reader_loop t conn =
  Metrics.incr Metrics.serve_connections;
  let rec loop () =
    match input_line conn.ic with
    | "" -> loop ()  (* blank keep-alive lines are ignored *)
    | line ->
        handle_line t conn line;
        loop ()
    | exception (End_of_file | Sys_error _) -> ()
  in
  loop ();
  close_conn conn;
  Mutex.protect t.lock (fun () ->
      t.conns <- List.filter (fun c -> c != conn) t.conns)

(* ------------------------------------------------------------------ *)
(* Listener and drain                                                  *)
(* ------------------------------------------------------------------ *)

let accept_one t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      let conn =
        { fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          wlock = Mutex.create ();
          closed = false
        }
      in
      let thread = Thread.create (fun () -> reader_loop t conn) () in
      Mutex.protect t.lock (fun () ->
          t.conns <- conn :: t.conns;
          t.readers <- thread :: t.readers)
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
      ()

let drain_shutdown t =
  (* Stop accepting: new connect()s fail from here on. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
    t.sock_path;
  Mutex.lock t.lock;
  t.admission_closed <- true;
  while not (Queue.is_empty t.queue && t.inflight = 0) do
    Condition.wait t.idle t.lock
  done;
  t.stop_workers <- true;
  Condition.broadcast t.nonempty;
  let conns = t.conns in
  Mutex.unlock t.lock;
  (* In-flight responses are on the wire; hang up so readers unblock. *)
  List.iter shutdown_conn conns

let listener_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | readable, _, _ ->
          if List.mem t.wake_r readable then ()  (* drain requested *)
          else begin
            if List.mem t.listen_fd readable then accept_one t;
            loop ()
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ();
  drain_shutdown t

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let bind_listener addr =
  match addr with
  | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (* A previous unclean exit may have left the socket file behind. *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Some path)
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      (fd, None)

let start_common cfg =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let listen_fd, sock_path = bind_listener cfg.addr in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    { cfg;
      sessions = Session.create ~max_sessions:cfg.max_sessions ();
      lock = Mutex.create ();
      queue = Queue.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      inflight = 0;
      admission_closed = false;
      stop_workers = false;
      draining = Atomic.make false;
      wake_r;
      wake_w;
      listen_fd;
      sock_path;
      conns = [];
      readers = [];
      workers = [];
      listener = None
    }
  in
  t.workers <-
    List.init (max 1 cfg.service_threads) (fun _ ->
        Thread.create (fun () -> worker_loop t) ());
  t

let start cfg =
  let t = start_common cfg in
  t.listener <- Some (Thread.create (fun () -> listener_loop t) ());
  t

let drain t =
  if not (Atomic.exchange t.draining true) then
    (* Async-signal-safe: one flag, one write. The listener owns the
       actual teardown. *)
    ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)

let wait t =
  Option.iter Thread.join t.listener;
  List.iter Thread.join t.workers;
  let readers = Mutex.protect t.lock (fun () -> t.readers) in
  List.iter Thread.join readers;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

(* The accept loop runs on the calling (main) thread, not a spawned
   one: a signal interrupting [select] with EINTR re-enters OCaml code
   right here, which is what lets the runtime actually execute the
   OCaml-level handler. With every thread parked in [Thread.join] /
   [Condition.wait] / [select] — the shape [start] + [wait] has — no
   thread reaches a poll point and a SIGTERM would sit pending
   forever. *)
let run ?(signals = true) cfg =
  let t = start_common cfg in
  if signals then begin
    let handler = Sys.Signal_handle (fun _ -> drain t) in
    ignore (Sys.signal Sys.sigterm handler);
    ignore (Sys.signal Sys.sigint handler)
  end;
  listener_loop t;
  wait t
