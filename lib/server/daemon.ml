module Metrics = Obs.Metrics

type addr = Unix_sock of string | Tcp of string * int

type config = {
  addr : addr;
  jobs : int option;
  service_threads : int;
  max_queue : int;
  deadline_ms : int option;
  max_sessions : int;
  drain_grace_s : float;
  shard_id : string option;
}

let default_config addr =
  { addr;
    jobs = None;
    service_threads = 4;
    max_queue = 64;
    deadline_ms = None;
    max_sessions = 16;
    drain_grace_s = 30.0;
    shard_id = None
  }

let addr_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

(* Protocol limits. A request line longer than [max_line_bytes] is
   refused (the admission design bounds memory everywhere else; the
   reader must not be the exception). [max_pipeline] bounds the
   per-connection reorder buffer: past it the reader stops reading —
   backpressure through the socket — instead of buffering without
   limit. [send_timeout_s] caps how long a single write to a peer
   that stopped reading can block a worker. *)
let max_line_bytes = 1 lsl 20
let max_pipeline = 128
let send_timeout_s = 30.0

(* A connection. PROTOCOL.md promises responses in request order on
   the connection, but inline replies (health, parse_error, …) are
   produced by the reader thread while admitted requests finish on
   worker threads in any order — so every non-blank request line gets
   a sequence number and responses pass through a reorder buffer
   ([pending]/[wnext], under [wlock]) that flushes them strictly in
   sequence.

   Two locks: [wlock] serializes writes and the reorder buffer;
   [flock] guards the descriptor's lifecycle ([closed], close,
   shutdown). They are split so that {!shutdown_fd} never has to wait
   on a writer blocked mid-[send] — shutting the socket down is
   exactly what unblocks such a writer. Lock order is wlock ⊃ flock;
   close runs under both, so a held [wlock] also pins the fd open and
   a send can never write to a recycled descriptor number. *)
type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t;
  flock : Mutex.t;
  wroom : Condition.t;  (* with [wlock]: reader waits for buffer room *)
  pending : (int, string) Hashtbl.t;  (* seq → unflushed response line *)
  mutable wnext : int;  (* next seq to go on the wire *)
  mutable next_seq : int;  (* next seq to assign; reader thread only *)
  mutable wfailed : bool;  (* a write failed: drop all further output *)
  mutable closed : bool;
}

type job = {
  seq : int;
  req : Wire.request;
  jconn : conn;
  deadline_ns : int64 option;
}

type t = {
  cfg : config;
  generation : int;  (* fresh per [start]: lets a router spot restarts *)
  sessions : Session.t;
  lock : Mutex.t;
  queue : job Queue.t;
  nonempty : Condition.t;  (* workers wait here for jobs *)
  mutable inflight : int;
  mutable admission_closed : bool;  (* set under [lock] when draining *)
  mutable stop_workers : bool;
  draining : bool Atomic.t;  (* fast path for health/readers *)
  wake_r : Unix.file_descr;  (* self-pipe: signal handler → listener *)
  wake_w : Unix.file_descr;
  listen_fd : Unix.file_descr;
  sock_path : string option;  (* Unix socket file to unlink on drain *)
  mutable conns : conn list;  (* under [lock] *)
  mutable readers : Thread.t list;  (* under [lock] *)
  mutable workers : Thread.t list;
  mutable listener : Thread.t option;
}

(* ------------------------------------------------------------------ *)
(* Connection plumbing                                                 *)
(* ------------------------------------------------------------------ *)

(* Safe concurrently with a send blocked in write(2): shutdown does
   not free the descriptor number (close_conn holds [flock] for that)
   and it is what makes the blocked write return. *)
let shutdown_fd conn =
  Mutex.protect conn.flock (fun () ->
      if not conn.closed then
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())

(* Deliver response [line] for request [seq]: buffer it, then flush
   whatever prefix of the sequence is now complete. A dead peer
   surfaces as Sys_error (SIGPIPE is ignored) or — via SO_SNDTIMEO —
   as a timed-out write; either way the connection stops producing
   output and the socket is shut down so its reader cleans up. *)
let send conn seq line =
  Mutex.protect conn.wlock (fun () ->
      if not (conn.closed || conn.wfailed) then begin
        Hashtbl.replace conn.pending seq line;
        try
          let wrote = ref false in
          while Hashtbl.mem conn.pending conn.wnext do
            let l = Hashtbl.find conn.pending conn.wnext in
            Hashtbl.remove conn.pending conn.wnext;
            conn.wnext <- conn.wnext + 1;
            output_string conn.oc l;
            output_char conn.oc '\n';
            wrote := true
          done;
          if !wrote then flush conn.oc
        with Sys_error _ ->
          conn.wfailed <- true;
          Hashtbl.reset conn.pending;
          shutdown_fd conn
      end;
      Condition.broadcast conn.wroom)

(* Only the connection's own reader closes the fd (after its read loop
   ends), so no thread can still be blocked reading it when the number
   is recycled. *)
let close_conn conn =
  Mutex.protect conn.wlock (fun () ->
      Mutex.protect conn.flock (fun () ->
          if not conn.closed then begin
            conn.closed <- true;
            Hashtbl.reset conn.pending;
            if not conn.wfailed then (try flush conn.oc with Sys_error _ -> ());
            try Unix.close conn.fd with Unix.Unix_error _ -> ()
          end);
      Condition.broadcast conn.wroom)

let respond_error conn ~seq ~id err msg =
  send conn seq (Wire.error_line ~id err msg)

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let deadline_guard deadline_ns () =
  if Int64.compare (Obs.Clock.now_ns ()) deadline_ns > 0 then
    raise Service.Deadline

let process t job =
  let id = job.req.Wire.id and op = job.req.Wire.op in
  let expired =
    match job.deadline_ns with
    | Some d -> Int64.compare (Obs.Clock.now_ns ()) d > 0
    | None -> false
  in
  if expired then begin
    (* Spent its whole budget waiting in the queue. *)
    Metrics.incr Metrics.serve_deadline_exceeded;
    respond_error job.jconn ~seq:job.seq ~id Wire.Deadline_exceeded
      "deadline exceeded"
  end
  else begin
    let guard = Option.map deadline_guard job.deadline_ns in
    let t0 = Obs.Clock.now_ns () in
    let outcome =
      Obs.Trace.span "serve.request"
        ~attrs:
          [ ("op", op); ("id", match id with Some i -> i | None -> "") ]
        (fun () ->
          Service.handle ~sessions:t.sessions ?jobs:t.cfg.jobs ?guard job.req)
    in
    (* Trace.span only feeds the histogram when a trace sink is open;
       the service's latency distribution must not depend on that. *)
    Metrics.observe_span ("serve." ^ op)
      (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0));
    match outcome with
    | Ok payload -> send job.jconn job.seq (Wire.ok_line ~id ~op payload)
    | Error (Wire.Deadline_exceeded, msg) ->
        Metrics.incr Metrics.serve_deadline_exceeded;
        respond_error job.jconn ~seq:job.seq ~id Wire.Deadline_exceeded msg
    | Error (err, msg) -> respond_error job.jconn ~seq:job.seq ~id err msg
  end

let worker_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    let rec take () =
      match Queue.take_opt t.queue with
      | Some job -> Some job
      | None ->
          if t.stop_workers then None
          else begin
            Condition.wait t.nonempty t.lock;
            take ()
          end
    in
    match take () with
    | None -> Mutex.unlock t.lock
    | Some job ->
        t.inflight <- t.inflight + 1;
        Mutex.unlock t.lock;
        (try process t job
         with e ->
           (* Belt and braces: Service.handle already catches; anything
              that still escapes must not kill the worker. *)
           respond_error job.jconn ~seq:job.seq ~id:job.req.Wire.id
             Wire.Internal_error (Printexc.to_string e));
        Mutex.lock t.lock;
        t.inflight <- t.inflight - 1;
        Mutex.unlock t.lock;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)
(* ------------------------------------------------------------------ *)

let health_line t req =
  let queue_len, inflight =
    Mutex.protect t.lock (fun () -> (Queue.length t.queue, t.inflight))
  in
  Wire.ok_line ~id:req.Wire.id ~op:"health"
    [ ( "status",
        Wire.S (if Atomic.get t.draining then "draining" else "serving") );
      ("sessions", Wire.I (Session.count t.sessions));
      ("queue", Wire.I queue_len);
      ("inflight", Wire.I inflight);
      ("workers", Wire.I t.cfg.service_threads);
      ("max_queue", Wire.I t.cfg.max_queue);
      ( "shard_id",
        Wire.S
          (match t.cfg.shard_id with
          | Some id -> id
          | None -> addr_string t.cfg.addr) );
      ("generation", Wire.I t.generation)
    ]

let admit t job =
  Mutex.protect t.lock (fun () ->
      if t.admission_closed then `Draining
      else if Queue.length t.queue >= t.cfg.max_queue then `Full
      else begin
        Queue.add job t.queue;
        Condition.signal t.nonempty;
        `Admitted
      end)

let handle_line t conn seq line =
  Metrics.incr Metrics.serve_requests;
  match Wire.parse_request line with
  | Error msg ->
      Metrics.incr Metrics.serve_parse_errors;
      respond_error conn ~seq ~id:None Wire.Parse_error msg
  | Ok req when req.Wire.op = "health" -> send conn seq (health_line t req)
  | Ok req when Atomic.get t.draining ->
      respond_error conn ~seq ~id:req.Wire.id Wire.Shutting_down
        "server is draining"
  | Ok req -> (
      match Wire.int_field req "deadline_ms" with
      | Some ms when ms <= 0 ->
          (* A non-positive override must not cancel the operator's
             budget cap ("no deadline" is not a client's to grant). *)
          respond_error conn ~seq ~id:req.Wire.id Wire.Bad_request
            "deadline_ms must be positive"
      | client_deadline -> (
          let deadline_ms =
            match client_deadline with
            | Some _ -> client_deadline
            | None -> t.cfg.deadline_ms
          in
          let deadline_ns =
            match deadline_ms with
            | Some ms when ms > 0 ->
                Some
                  (Int64.add (Obs.Clock.now_ns ())
                     (Int64.mul (Int64.of_int ms) 1_000_000L))
            | _ -> None
          in
          match admit t { seq; req; jconn = conn; deadline_ns } with
          | `Admitted -> ()
          | `Full ->
              Metrics.incr Metrics.serve_overloaded;
              respond_error conn ~seq ~id:req.Wire.id Wire.Overloaded
                "admission queue full"
          | `Draining ->
              respond_error conn ~seq ~id:req.Wire.id Wire.Shutting_down
                "server is draining"))

(* [input_line] is unbounded; a hostile client could stream one
   endless line into our heap. Read by hand with a cap instead. *)
let read_request_line conn =
  let buf = Buffer.create 256 in
  let rec go () =
    match input_char conn.ic with
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
        if Buffer.length buf >= max_line_bytes then `Too_long
        else begin
          Buffer.add_char buf c;
          go ()
        end
    | exception End_of_file ->
        if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | exception Sys_error _ -> `Eof
  in
  go ()

(* Backpressure: once [max_pipeline] responses are buffered behind a
   slow head-of-line request, stop reading until the buffer drains.
   Progress is guaranteed — the head of the sequence is always owed by
   an admitted job, and drain only stops workers once the queue is
   empty — and close/send failure both broadcast [wroom]. *)
let wait_room conn =
  Mutex.protect conn.wlock (fun () ->
      while
        Hashtbl.length conn.pending >= max_pipeline
        && not (conn.closed || conn.wfailed)
      do
        Condition.wait conn.wroom conn.wlock
      done)

let reader_loop t conn =
  Metrics.incr Metrics.serve_connections;
  let rec loop () =
    wait_room conn;
    match read_request_line conn with
    | `Eof -> ()
    | `Line "" -> loop ()  (* blank keep-alive lines are ignored *)
    | `Line line ->
        let seq = conn.next_seq in
        conn.next_seq <- seq + 1;
        handle_line t conn seq line;
        loop ()
    | `Too_long ->
        (* Cannot resync mid-line: answer and hang up. *)
        Metrics.incr Metrics.serve_requests;
        Metrics.incr Metrics.serve_parse_errors;
        let seq = conn.next_seq in
        conn.next_seq <- seq + 1;
        respond_error conn ~seq ~id:None Wire.Parse_error
          (Printf.sprintf "request line exceeds %d bytes; closing connection"
             max_line_bytes)
  in
  loop ();
  close_conn conn;
  Mutex.protect t.lock (fun () ->
      t.conns <- List.filter (fun c -> c != conn) t.conns)

(* ------------------------------------------------------------------ *)
(* Listener and drain                                                  *)
(* ------------------------------------------------------------------ *)

let accept_one t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO send_timeout_s
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let conn =
        { fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          wlock = Mutex.create ();
          flock = Mutex.create ();
          wroom = Condition.create ();
          pending = Hashtbl.create 8;
          wnext = 0;
          next_seq = 0;
          wfailed = false;
          closed = false
        }
      in
      let thread = Thread.create (fun () -> reader_loop t conn) () in
      Mutex.protect t.lock (fun () ->
          t.conns <- conn :: t.conns;
          t.readers <- thread :: t.readers)
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
      ()

let drain_shutdown t =
  (* Stop accepting: new connect()s fail from here on. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
    t.sock_path;
  Mutex.lock t.lock;
  t.admission_closed <- true;
  (* Let queued and in-flight work finish — but only for so long. A
     worker can be stuck in [send] to a peer that stopped reading; it
     holds the connection's write lock and keeps [inflight] up, so an
     unconditional wait would never end. Past the grace deadline,
     shut every socket down ([shutdown_fd] takes only [flock], so a
     stuck writer cannot block it) — the blocked writes fail, the
     workers finish, and the wait completes. *)
  let deadline = Unix.gettimeofday () +. t.cfg.drain_grace_s in
  let forced = ref false in
  while not (Queue.is_empty t.queue && t.inflight = 0) do
    if (not !forced) && Unix.gettimeofday () >= deadline then begin
      forced := true;
      let conns = t.conns in
      Mutex.unlock t.lock;
      List.iter shutdown_fd conns;
      Mutex.lock t.lock
    end
    else begin
      Mutex.unlock t.lock;
      Thread.delay 0.02;
      Mutex.lock t.lock
    end
  done;
  t.stop_workers <- true;
  Condition.broadcast t.nonempty;
  let conns = t.conns in
  Mutex.unlock t.lock;
  (* In-flight responses are on the wire; hang up so readers unblock. *)
  List.iter shutdown_fd conns

let listener_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | readable, _, _ ->
          if List.mem t.wake_r readable then ()  (* drain requested *)
          else begin
            if List.mem t.listen_fd readable then accept_one t;
            loop ()
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ();
  drain_shutdown t

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let resolve_ipv4 host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
        failwith (Printf.sprintf "host %s resolves to no addresses" host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found ->
        failwith (Printf.sprintf "cannot resolve host %s" host))

let bind_listener addr =
  match addr with
  | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (* A previous unclean exit may have left the socket file behind. *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Some path)
  | Tcp (host, port) ->
      let ip = resolve_ipv4 host in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      (fd, None)

let start_common cfg =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let listen_fd, sock_path = bind_listener cfg.addr in
  let wake_r, wake_w = Unix.pipe () in
  (* Monotone clock mixed with the pid: distinct across restarts of a
     shard behind the same address, which is all a router needs. *)
  let generation =
    (Int64.to_int (Obs.Clock.now_ns ()) lxor (Unix.getpid () * 0x9E3779B1))
    land max_int lor 1
  in
  let t =
    { cfg;
      generation;
      sessions = Session.create ~max_sessions:cfg.max_sessions ();
      lock = Mutex.create ();
      queue = Queue.create ();
      nonempty = Condition.create ();
      inflight = 0;
      admission_closed = false;
      stop_workers = false;
      draining = Atomic.make false;
      wake_r;
      wake_w;
      listen_fd;
      sock_path;
      conns = [];
      readers = [];
      workers = [];
      listener = None
    }
  in
  t.workers <-
    List.init (max 1 cfg.service_threads) (fun _ ->
        Thread.create (fun () -> worker_loop t) ());
  t

let start cfg =
  let t = start_common cfg in
  t.listener <- Some (Thread.create (fun () -> listener_loop t) ());
  t

let drain t =
  if not (Atomic.exchange t.draining true) then
    (* Async-signal-safe: one flag, one write. The listener owns the
       actual teardown. *)
    ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)

let wait t =
  Option.iter Thread.join t.listener;
  List.iter Thread.join t.workers;
  let readers = Mutex.protect t.lock (fun () -> t.readers) in
  List.iter Thread.join readers;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

(* The accept loop runs on the calling (main) thread, not a spawned
   one: a signal interrupting [select] with EINTR re-enters OCaml code
   right here, which is what lets the runtime actually execute the
   OCaml-level handler. With every thread parked in [Thread.join] /
   [Condition.wait] / [select] — the shape [start] + [wait] has — no
   thread reaches a poll point and a SIGTERM would sit pending
   forever. *)
let run ?(signals = true) cfg =
  let t = start_common cfg in
  if signals then begin
    let handler = Sys.Signal_handle (fun _ -> drain t) in
    ignore (Sys.signal Sys.sigterm handler);
    ignore (Sys.signal Sys.sigint handler)
  end;
  listener_loop t;
  wait t
